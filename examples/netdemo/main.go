// netdemo runs the ASVM protocol across real OS processes. It spawns one
// asvmd daemon per node on localhost (2-4 nodes), drives the Table-1
// demo scenario through their control ports — first-touch writes, remote
// read faults, invalidating writes, re-reads — then drains the mesh,
// shuts the daemons down, and prints each operation's measured wall-clock
// fault latency next to the latency the deterministic simulator predicts
// for the identical scenario on 1996 Paragon hardware.
//
//	go run ./examples/netdemo -nodes 3
//	go run ./examples/netdemo -nodes 2 -asvmd ./bin/asvmd
//
// Without -asvmd the demo re-executes itself in daemon mode, so a plain
// `go run` works with no prebuilt binary.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"text/tabwriter"
	"time"

	"asvm/internal/dsm"
)

func main() {
	nodes := flag.Int("nodes", 3, "mesh size (2-4 processes)")
	asvmd := flag.String("asvmd", "", "path to an asvmd binary (default: re-exec this binary in -serve mode)")
	serve := flag.Bool("serve", false, "internal: run as a mesh daemon instead of the orchestrator")
	configPath := flag.String("config", "", "internal: mesh config for -serve")
	nodeID := flag.Int("node", -1, "internal: node ID for -serve")
	flag.Parse()

	if *serve {
		runDaemon(*configPath, *nodeID)
		return
	}
	if *nodes < 2 || *nodes > 4 {
		log.Fatalf("netdemo: -nodes must be 2-4, have %d", *nodes)
	}
	if err := orchestrate(*nodes, *asvmd); err != nil {
		log.Fatalf("netdemo: %v", err)
	}
}

// runDaemon is the -serve mode: one mesh node, exactly what cmd/asvmd
// does, so the demo needs no second binary under `go run`.
func runDaemon(configPath string, nodeID int) {
	cfg, err := dsm.LoadConfig(configPath)
	if err != nil {
		log.Fatalf("netdemo daemon: %v", err)
	}
	spec := cfg.Node(nodeID)
	if spec == nil {
		log.Fatalf("netdemo daemon: node %d not in config", nodeID)
	}
	n, err := dsm.Open(cfg, nodeID)
	if err != nil {
		log.Fatalf("netdemo daemon: %v", err)
	}
	defer n.Close()
	ctrl, err := dsm.ServeCtrl(n, spec.Ctrl)
	if err != nil {
		log.Fatalf("netdemo daemon: %v", err)
	}
	defer ctrl.Close()
	log.Printf("netdemo daemon: node %d up (xport %s, ctrl %s)", nodeID, n.Addr(), ctrl.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-ctrl.Shutdown:
	case <-sig:
	}
}

// freeAddr reserves a localhost port by binding and releasing it. The
// tiny race against another process grabbing it is acceptable for a demo.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer ln.Close()
	return ln.Addr().String(), nil
}

func orchestrate(nodes int, asvmdPath string) error {
	ops := dsm.DemoScenario(nodes)

	cfg := &dsm.MeshConfig{Region: "netdemo", Pages: dsm.ScenarioPages(ops), Home: 0}
	for i := 0; i < nodes; i++ {
		xp, err := freeAddr()
		if err != nil {
			return err
		}
		ct, err := freeAddr()
		if err != nil {
			return err
		}
		cfg.Nodes = append(cfg.Nodes, dsm.NodeSpec{ID: i, Xport: xp, Ctrl: ct})
	}

	dir, err := os.MkdirTemp("", "netdemo")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfgPath := filepath.Join(dir, "mesh.json")
	if err := cfg.WriteFile(cfgPath); err != nil {
		return err
	}

	// One daemon process per node. Daemon logs go to our stderr so a
	// crashing node is visible, not silent.
	var procs []*exec.Cmd
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()
	for i := 0; i < nodes; i++ {
		var cmd *exec.Cmd
		if asvmdPath != "" {
			cmd = exec.Command(asvmdPath, "-config", cfgPath, "-node", fmt.Sprint(i))
		} else {
			self, err := os.Executable()
			if err != nil {
				return err
			}
			cmd = exec.Command(self, "-serve", "-config", cfgPath, "-node", fmt.Sprint(i))
		}
		cmd.Stderr = os.Stderr
		cmd.Stdout = os.Stdout
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("starting node %d: %w", i, err)
		}
		procs = append(procs, cmd)
	}
	fmt.Printf("netdemo: %d asvmd processes up, region %q (%d pages), home node %d\n",
		nodes, cfg.Region, cfg.Pages, cfg.Home)

	var clients []*dsm.Client
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < nodes; i++ {
		c, err := dsm.DialCtrl(cfg.Nodes[i].Ctrl, 15*time.Second)
		if err != nil {
			return fmt.Errorf("node %d control: %w", i, err)
		}
		clients = append(clients, c)
	}

	// The scenario, one op at a time, drained between ops — the schedule
	// under which the simulator's twin run takes identical protocol
	// decisions, making the latency table like-for-like.
	realLat := make([]time.Duration, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case "write":
			lat, err := clients[op.Node].Write(op.Addr, op.Val)
			if err != nil {
				return fmt.Errorf("%s: %w", op.Label, err)
			}
			realLat[i] = lat
		case "read":
			v, lat, err := clients[op.Node].Read(op.Addr)
			if err != nil {
				return fmt.Errorf("%s: %w", op.Label, err)
			}
			if op.Check && v != op.Want {
				return fmt.Errorf("%s: read %d, want %d", op.Label, v, op.Want)
			}
			realLat[i] = lat
		}
		if err := dsm.DrainMesh(clients, 3, 15*time.Second); err != nil {
			return fmt.Errorf("after %s: %w", op.Label, err)
		}
	}

	if err := dsm.DrainMesh(clients, 5, 15*time.Second); err != nil {
		return err
	}
	fmt.Println("netdemo: clean drain — mesh quiescent, all values verified")

	realCtrs := make(map[string]int64)
	for _, c := range clients {
		m, err := c.Counters()
		if err != nil {
			return err
		}
		for k, v := range m {
			realCtrs[k] += v
		}
	}

	for i, c := range clients {
		if err := c.Shutdown(); err != nil {
			return fmt.Errorf("shutting down node %d: %w", i, err)
		}
	}
	for i, p := range procs {
		if err := p.Wait(); err != nil {
			return fmt.Errorf("node %d exited uncleanly: %w", i, err)
		}
	}
	procs = nil
	fmt.Println("netdemo: all daemons exited cleanly")

	fmt.Println("netdemo: running the simulated twin (calibrated 1996 Paragon costs)...")
	simRes, err := dsm.RunSimulated(nodes, ops)
	if err != nil {
		return fmt.Errorf("simulated twin: %w", err)
	}

	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "operation\treal (TCP localhost)\tsimulated (Paragon '96)")
	for i, op := range ops {
		fmt.Fprintf(tw, "%s\t%v\t%v\n", op.Label, realLat[i].Round(time.Microsecond), simRes.PerOp[i])
	}
	tw.Flush()

	fmt.Println()
	fmt.Printf("protocol counters (summed over nodes), real vs simulated:\n")
	for _, k := range []string{"faults", "invalidations", "msgs", "nacks"} {
		marker := ""
		if realCtrs[k] != simRes.Counters[k] {
			marker = "   <-- MISMATCH"
		}
		fmt.Printf("  %-14s real %5d   sim %5d%s\n", k, realCtrs[k], simRes.Counters[k], marker)
	}
	for _, k := range []string{"faults", "invalidations", "msgs", "nacks"} {
		if realCtrs[k] != simRes.Counters[k] {
			return fmt.Errorf("counter %q diverged: real %d, simulated %d", k, realCtrs[k], simRes.Counters[k])
		}
	}
	fmt.Println("netdemo: real mesh and simulator agree on every protocol counter")
	return nil
}
