// netdemo runs the ASVM protocol across real OS processes. It spawns one
// asvmd daemon per node on localhost (2-4 nodes) and drives a registered
// portable workload (app.Workload) through their control ports — the
// Table-1 walk by default, or the kv store with -workload kv — then
// drains the mesh, shuts the daemons down, and prints each operation's
// measured wall-clock fault latency next to the latency the deterministic
// simulator predicts for the identical op stream on 1996 Paragon
// hardware. Both runs go through the same app.Run on the same ops: only
// the app.Env differs (dsmhost over TCP vs simhost over the engine).
//
//	go run ./examples/netdemo -nodes 3
//	go run ./examples/netdemo -nodes 3 -workload kv
//	go run ./examples/netdemo -nodes 2 -asvmd ./bin/asvmd
//
// Without -asvmd the demo re-executes itself in daemon mode, so a plain
// `go run` works with no prebuilt binary.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"asvm/internal/app"
	"asvm/internal/app/dsmhost"
	"asvm/internal/app/simhost"
	"asvm/internal/dsm"
)

func main() {
	nodes := flag.Int("nodes", 3, "mesh size (2-4 processes)")
	workload := flag.String("workload", "table1",
		fmt.Sprintf("registered workload to run (%s)", strings.Join(app.Names(), "|")))
	seed := flag.Uint64("seed", 1, "workload generator seed")
	asvmd := flag.String("asvmd", "", "path to an asvmd binary (default: re-exec this binary in -serve mode)")
	serve := flag.Bool("serve", false, "internal: run as a mesh daemon instead of the orchestrator")
	configPath := flag.String("config", "", "internal: mesh config for -serve")
	nodeID := flag.Int("node", -1, "internal: node ID for -serve")
	flag.Parse()

	if *serve {
		runDaemon(*configPath, *nodeID)
		return
	}
	if *nodes < 2 || *nodes > 4 {
		log.Fatalf("netdemo: -nodes must be 2-4, have %d", *nodes)
	}
	if err := orchestrate(*nodes, *workload, *seed, *asvmd); err != nil {
		log.Fatalf("netdemo: %v", err)
	}
}

// runDaemon is the -serve mode: one mesh node, exactly what cmd/asvmd
// does, so the demo needs no second binary under `go run`.
func runDaemon(configPath string, nodeID int) {
	cfg, err := dsm.LoadConfig(configPath)
	if err != nil {
		log.Fatalf("netdemo daemon: %v", err)
	}
	spec := cfg.Node(nodeID)
	if spec == nil {
		log.Fatalf("netdemo daemon: node %d not in config", nodeID)
	}
	n, err := dsm.Open(cfg, nodeID)
	if err != nil {
		log.Fatalf("netdemo daemon: %v", err)
	}
	defer n.Close()
	ctrl, err := dsm.ServeCtrl(n, spec.Ctrl)
	if err != nil {
		log.Fatalf("netdemo daemon: %v", err)
	}
	defer ctrl.Close()
	log.Printf("netdemo daemon: node %d up (xport %s, ctrl %s)", nodeID, n.Addr(), ctrl.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-ctrl.Shutdown:
	case <-sig:
	}
}

// freeAddr reserves a localhost port by binding and releasing it. The
// tiny race against another process grabbing it is acceptable for a demo.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer ln.Close()
	return ln.Addr().String(), nil
}

// parityCounters is the set the demo asserts to exact equality between
// the real mesh and the simulated twin.
var parityCounters = []string{
	"faults", "invalidations", "msgs", "nacks",
	"proto_transitions", "ring_scan_hops",
}

func orchestrate(nodes int, workload string, seed uint64, asvmdPath string) error {
	wl, ok := app.Lookup(workload)
	if !ok {
		return fmt.Errorf("unknown workload %q (have %s)", workload, strings.Join(app.Names(), ", "))
	}
	ops := wl.Ops(nodes, seed)
	pages := wl.Pages(nodes)

	cfg := &dsm.MeshConfig{Region: "netdemo", Pages: pages, Home: 0}
	for i := 0; i < nodes; i++ {
		xp, err := freeAddr()
		if err != nil {
			return err
		}
		ct, err := freeAddr()
		if err != nil {
			return err
		}
		cfg.Nodes = append(cfg.Nodes, dsm.NodeSpec{ID: i, Xport: xp, Ctrl: ct})
	}

	dir, err := os.MkdirTemp("", "netdemo")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfgPath := filepath.Join(dir, "mesh.json")
	if err := cfg.WriteFile(cfgPath); err != nil {
		return err
	}

	// One daemon process per node. Daemon logs go to our stderr so a
	// crashing node is visible, not silent.
	var procs []*exec.Cmd
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()
	for i := 0; i < nodes; i++ {
		var cmd *exec.Cmd
		if asvmdPath != "" {
			cmd = exec.Command(asvmdPath, "-config", cfgPath, "-node", fmt.Sprint(i))
		} else {
			self, err := os.Executable()
			if err != nil {
				return err
			}
			cmd = exec.Command(self, "-serve", "-config", cfgPath, "-node", fmt.Sprint(i))
		}
		cmd.Stderr = os.Stderr
		cmd.Stdout = os.Stdout
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("starting node %d: %w", i, err)
		}
		procs = append(procs, cmd)
	}
	fmt.Printf("netdemo: %d asvmd processes up, region %q (%d pages), home node %d, workload %q (%d ops)\n",
		nodes, cfg.Region, cfg.Pages, cfg.Home, workload, len(ops))

	var clients []*dsm.Client
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < nodes; i++ {
		c, err := dsm.DialCtrl(cfg.Nodes[i].Ctrl, 15*time.Second)
		if err != nil {
			return fmt.Errorf("node %d control: %w", i, err)
		}
		clients = append(clients, c)
	}

	// The op stream, one op at a time, drained between ops — the schedule
	// under which the simulator's twin run takes identical protocol
	// decisions, making the latency table like-for-like.
	env := dsmhost.FromClients(clients)
	env.DrainTimeout = 15 * time.Second
	realRes, err := app.Run(env, ops)
	if err != nil {
		return err
	}
	fmt.Println("netdemo: clean drain — mesh quiescent, all values verified")

	// Per-node transport/protocol ledger over the stats control op.
	fmt.Println("netdemo: per-node ledger (frames / bytes / nacks / proto transitions / ring scan hops):")
	for i, c := range clients {
		st, err := c.Stats()
		if err != nil {
			return fmt.Errorf("node %d stats: %w", i, err)
		}
		fmt.Printf("  node %d: %d frames, %d bytes, %d nacks, %d transitions, %d hops\n",
			i, st.Frames, st.Bytes, st.Nacks, st.ProtoTransitions, st.RingScanHops)
	}

	for i, c := range clients {
		if err := c.Shutdown(); err != nil {
			return fmt.Errorf("shutting down node %d: %w", i, err)
		}
	}
	for i, p := range procs {
		if err := p.Wait(); err != nil {
			return fmt.Errorf("node %d exited uncleanly: %w", i, err)
		}
	}
	procs = nil
	fmt.Println("netdemo: all daemons exited cleanly")

	fmt.Println("netdemo: running the simulated twin (calibrated 1996 Paragon costs)...")
	simEnv, err := simhost.NewEnv(nodes, pages)
	if err != nil {
		return fmt.Errorf("simulated twin: %w", err)
	}
	simRes, err := app.Run(simEnv, ops)
	if err != nil {
		return fmt.Errorf("simulated twin: %w", err)
	}

	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "operation\treal (TCP localhost)\tsimulated (Paragon '96)")
	for i, op := range ops {
		fmt.Fprintf(tw, "%s\t%v\t%v\n", op.Label, realRes.PerOp[i].Round(time.Microsecond), simRes.PerOp[i])
	}
	tw.Flush()

	fmt.Println()
	fmt.Printf("protocol counters (summed over nodes), real vs simulated:\n")
	for _, k := range parityCounters {
		marker := ""
		if realRes.Counters[k] != simRes.Counters[k] {
			marker = "   <-- MISMATCH"
		}
		fmt.Printf("  %-17s real %5d   sim %5d%s\n", k, realRes.Counters[k], simRes.Counters[k], marker)
	}
	for _, k := range parityCounters {
		if realRes.Counters[k] != simRes.Counters[k] {
			return fmt.Errorf("counter %q diverged: real %d, simulated %d", k, realRes.Counters[k], simRes.Counters[k])
		}
	}
	fmt.Println("netdemo: real mesh and simulator agree on every protocol counter")
	return nil
}
