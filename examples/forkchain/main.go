// Forkchain: the paper's Figure 9 scenario. A task initializes a region,
// forks to a remote node, the child forks onward, and the last task in the
// chain faults pages that must be pulled back through every copy object —
// under both ASVM (cheap asynchronous pulls) and XMM (blocking internal
// copy pagers), showing why load-balanced task migration needs ASVM.
package main

import (
	"fmt"
	"log"
	"time"

	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

const (
	chainLen    = 5
	regionPages = 8
)

func run(sys machine.System) time.Duration {
	params := machine.DefaultParams(chainLen + 1)
	params.System = sys
	params.TrackData = true
	cluster := machine.New(params)

	parent := cluster.Kerns[0].NewTask("gen0")
	region := cluster.Kerns[0].NewAnonymous(regionPages)
	if _, err := parent.Map.MapObject(0, region, 0, regionPages, vm.ProtWrite, vm.InheritCopy); err != nil {
		log.Fatal(err)
	}

	var perPage time.Duration
	cluster.Spawn("chain", func(p *sim.Proc) {
		for i := 0; i < regionPages; i++ {
			if err := parent.WriteU64(p, vm.Addr(i*vm.PageSize), uint64(1000+i)); err != nil {
				log.Fatal(err)
			}
		}
		// Fork down the chain: generation i runs on node i.
		cur := parent
		for i := 1; i <= chainLen; i++ {
			child, err := cluster.RemoteFork(cur, i, fmt.Sprintf("gen%d", i))
			if err != nil {
				log.Fatal(err)
			}
			cur = child
		}
		// The last generation faults every inherited page: each fault
		// traverses the whole copy chain back to the original data.
		t0 := p.Now()
		for i := 0; i < regionPages; i++ {
			v, err := cur.ReadU64(p, vm.Addr(i*vm.PageSize))
			if err != nil {
				log.Fatal(err)
			}
			if v != uint64(1000+i) {
				log.Fatalf("inheritance corrupted: page %d = %d", i, v)
			}
		}
		perPage = (p.Now() - t0) / regionPages

		// Writes stay private to the last generation.
		if err := cur.WriteU64(p, 0, 9999); err != nil {
			log.Fatal(err)
		}
		pv, err := parent.ReadU64(p, 0)
		if err != nil {
			log.Fatal(err)
		}
		if pv != 1000 {
			log.Fatalf("copy semantics broken: parent sees %d", pv)
		}
	})
	cluster.Run()
	return perPage
}

func main() {
	fmt.Printf("copy chain of length %d, %d pages inherited end to end\n\n", chainLen, regionPages)
	a := run(machine.SysASVM)
	x := run(machine.SysXMM)
	fmt.Printf("ASVM: %8.2f ms per inherited-page fault\n", float64(a)/float64(time.Millisecond))
	fmt.Printf("XMM:  %8.2f ms per inherited-page fault (%.1fx slower)\n",
		float64(x)/float64(time.Millisecond), float64(x)/float64(a))
	fmt.Println("\n(every additional migration hop costs ASVM ~0.5 ms and XMM ~4 ms — paper Figure 11)")
}
