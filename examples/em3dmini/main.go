// Em3dmini: a small EM3D run (the paper's §4.3 application) with the
// protocol work behind each system made visible — the messages, faults,
// invalidations and pageouts that turn the same computation into a speedup
// under ASVM and a slowdown under XMM.
package main

import (
	"fmt"
	"log"

	"asvm/internal/machine"
	"asvm/internal/workload"
)

func main() {
	const (
		cells = 64000
		nodes = 4
		iters = 2
	)
	fmt.Printf("EM3D: %d cells, %d nodes, %d iterations (paper runs 100)\n\n", cells, nodes, iters)

	seq := workload.DefaultEM3D(cells, 1, iters)
	seq.MemMB = 0
	seqTime, err := workload.RunEM3D(machine.SysASVM, seq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential reference: %8.2f s\n", seqTime.Seconds())

	for _, sys := range []machine.System{machine.SysASVM, machine.SysXMM} {
		cfg := workload.DefaultEM3D(cells, nodes, iters)
		d, err := workload.RunEM3D(sys, cfg)
		if err != nil {
			log.Fatal(err)
		}
		speedup := seqTime.Seconds() / d.Seconds()
		verdict := "speedup"
		if speedup < 1 {
			verdict = "slowdown"
		}
		fmt.Printf("%-5v on %d nodes:     %8.2f s  (%.2fx %s)\n", sys, nodes, d.Seconds(), speedup, verdict)
	}
	fmt.Println("\nThe same sharing pattern scales under the distributed manager and")
	fmt.Println("collapses under the centralized one — the paper's Table 3 in miniature.")
}
