// Sor: a red-black successive over-relaxation solver on a shared grid —
// the halo-exchange access pattern of iterative PDE solvers, the other
// classic shared-virtual-memory application of the era. Each node updates
// its band of rows and reads its neighbours' boundary rows every sweep.
package main

import (
	"fmt"
	"log"

	"asvm/internal/machine"
	"asvm/internal/workload"
)

func main() {
	const (
		rows, cols = 1024, 1024
		nodes      = 8
		iters      = 3
	)
	fmt.Printf("red-black SOR: %dx%d grid, %d nodes, %d sweeps\n\n", rows, cols, nodes, iters)
	seq, err := workload.RunSOR(machine.SysASVM, workload.DefaultSOR(rows, cols, 1, iters))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential:     %8.3f s\n", seq.Seconds())
	for _, sys := range []machine.System{machine.SysASVM, machine.SysXMM} {
		d, err := workload.RunSOR(sys, workload.DefaultSOR(rows, cols, nodes, iters))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5v %d nodes:  %8.3f s  (%.2fx)\n", sys, nodes, d.Seconds(), seq.Seconds()/d.Seconds())
	}
}
