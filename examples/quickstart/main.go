// Quickstart: build a 4-node simulated Paragon running ASVM, share a
// memory region between tasks on different nodes, and watch coherence and
// ownership migration at work.
package main

import (
	"fmt"
	"log"

	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

func main() {
	// A 4-node machine with the calibrated Paragon parameters. TrackData
	// carries real page contents so we can check values end to end.
	params := machine.DefaultParams(4)
	params.System = machine.SysASVM
	params.TrackData = true
	cluster := machine.New(params)

	// One shared memory object, 8 pages, mapped on every node.
	region := cluster.NewSharedRegion("demo", 8, []int{0, 1, 2, 3})

	// A task per node, each mapping the region at address 0.
	tasks := make([]*vm.Task, 4)
	for n := range tasks {
		t, err := cluster.TaskOn(n, fmt.Sprintf("task%d", n), region, 0)
		if err != nil {
			log.Fatal(err)
		}
		tasks[n] = t
	}

	cluster.Spawn("demo", func(p *sim.Proc) {
		// Node 0 writes: the first touch zero-fills and makes node 0 the
		// page owner.
		if err := tasks[0].WriteU64(p, 0, 42); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%8v  node 0 wrote 42 (owner: node 0)\n", p.Now())

		// Nodes 1..3 read: each fault is forwarded to the owner, which
		// grants read copies and remembers the readers.
		for n := 1; n < 4; n++ {
			v, err := tasks[n].ReadU64(p, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("t=%8v  node %d read %d\n", p.Now(), n, v)
		}

		// Node 3 writes: the owner invalidates all read copies, then
		// transfers the page and its ownership.
		if err := tasks[3].WriteU64(p, 0, 43); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%8v  node 3 wrote 43 (ownership migrated to node 3)\n", p.Now())

		// Node 1 reads again: its dynamic hint cache already points at the
		// new owner, so the request takes the short path.
		v, err := tasks[1].ReadU64(p, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%8v  node 1 read %d (via dynamic owner hint)\n", p.Now(), v)
	})
	cluster.Run()

	fmt.Println("\nper-node ASVM statistics:")
	for n, a := range cluster.ASVMs {
		fmt.Printf("  node %d:", n)
		for _, name := range a.Ctr.Names() {
			fmt.Printf(" %s=%d", name, a.Ctr.Get(name))
		}
		fmt.Println()
	}
}
