// Stripelock: the paper's §6 future-work file system, assembled from the
// two extensions this library provides on top of ASVM — files striped
// round-robin across multiple I/O-node pagers, and exclusive page-range
// locks that make multi-page file writes atomic without the old NORMA-IPC
// token server.
package main

import (
	"fmt"
	"log"

	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

func main() {
	params := machine.DefaultParams(8)
	params.System = machine.SysASVM
	params.TrackData = true
	cluster := machine.New(params)

	// A 32-page file striped over two I/O nodes (0 and 4): page i is
	// backed by disk i%2.
	const filePages = 32
	users := []int{1, 2, 3}
	file, stripes, err := cluster.NewStripedFile("records", filePages, users, []int{0, 4}, false)
	if err != nil {
		log.Fatal(err)
	}

	tasks := make(map[int]*vm.Task)
	for _, n := range users {
		t, err := cluster.TaskOn(n, fmt.Sprintf("writer%d", n), file, 0)
		if err != nil {
			log.Fatal(err)
		}
		tasks[n] = t
	}

	// Two nodes append 2-page "records" concurrently. Each append locks
	// its record's page range first, so a record is never observed half
	// written — the atomic read/write guarantee §6 asks for.
	recordOf := func(writer, round int) uint64 { return uint64(writer*1000 + round) }
	done := 0
	for i, n := range []int{1, 2} {
		i, n := i, n
		cluster.Spawn("writer", func(p *sim.Proc) {
			in := cluster.ASVMs[n].Instance(file.ID)
			for round := 0; round < 4; round++ {
				lo := vm.PageIdx((i*4 + round) * 2) // disjoint 2-page records
				if err := in.AcquireRange(p, tasks[n], 0, lo, lo+2); err != nil {
					log.Fatal(err)
				}
				v := recordOf(n, round)
				if err := tasks[n].WriteU64(p, vm.Addr(lo)*vm.PageSize, v); err != nil {
					log.Fatal(err)
				}
				p.Sleep(2e6) // the window a torn write would be visible in
				if err := tasks[n].WriteU64(p, vm.Addr(lo+1)*vm.PageSize, v); err != nil {
					log.Fatal(err)
				}
				in.ReleaseRange(lo, lo+2)
			}
			done++
		})
	}
	// A third node audits: under the lock it must always see records whole.
	torn := 0
	cluster.Spawn("auditor", func(p *sim.Proc) {
		in := cluster.ASVMs[3].Instance(file.ID)
		for round := 0; round < 12; round++ {
			p.Sleep(5e6)
			for rec := vm.PageIdx(0); rec < 16; rec += 2 {
				if err := in.AcquireRange(p, tasks[3], 0, rec, rec+2); err != nil {
					log.Fatal(err)
				}
				a, _ := tasks[3].ReadU64(p, vm.Addr(rec)*vm.PageSize)
				b, _ := tasks[3].ReadU64(p, vm.Addr(rec+1)*vm.PageSize)
				if a != b {
					torn++
				}
				in.ReleaseRange(rec, rec+2)
			}
		}
	})
	cluster.Run()

	fmt.Printf("writers finished: %d/2, torn records observed: %d\n", done, torn)
	fmt.Printf("stripe 0 (node 0): %d page-ins, %d page-outs\n", stripes[0].PageIns, stripes[0].PageOuts)
	fmt.Printf("stripe 1 (node 4): %d page-ins, %d page-outs\n", stripes[1].PageIns, stripes[1].PageOuts)
	if torn == 0 && done == 2 {
		fmt.Println("\natomic striped-file records over ASVM: no token server required.")
	}
}
