// Filegrid: parallel access to one memory-mapped file from a grid of
// nodes (the paper's §4.2 workload). With ASVM, once any node has fetched
// a page from the file pager, other nodes get it from that owner — the
// physical memory of the whole machine becomes the file cache. With XMM,
// every fault funnels through the centralized manager and the pager.
package main

import (
	"fmt"
	"log"

	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

const (
	nodes     = 8
	filePages = 64 // 512 KB file
)

func run(sys machine.System) (perNodeMBs float64, pagerReads uint64) {
	params := machine.DefaultParams(nodes + 1) // node 0 is the I/O node
	params.System = sys
	cluster := machine.New(params)

	users := make([]int, nodes)
	for i := range users {
		users[i] = i + 1
	}
	file, srv := cluster.NewMappedFile("data", filePages, users, true)

	done := make([]sim.Time, nodes)
	for i, nIdx := range users {
		i, nIdx := i, nIdx
		task, err := cluster.TaskOn(nIdx, fmt.Sprintf("reader%d", i), file, 0)
		if err != nil {
			log.Fatal(err)
		}
		cluster.Spawn("reader", func(p *sim.Proc) {
			start := i * filePages / nodes
			for k := 0; k < filePages; k++ {
				pg := (start + k) % filePages
				if _, err := task.Touch(p, vm.Addr(pg*vm.PageSize), vm.ProtRead); err != nil {
					log.Fatal(err)
				}
			}
			done[i] = p.Now()
		})
	}
	cluster.Run()

	var worst sim.Time
	for _, d := range done {
		if d > worst {
			worst = d
		}
	}
	bytes := float64(filePages * vm.PageSize)
	return bytes / worst.Seconds() / 1e6, srv.PageIns
}

func main() {
	fmt.Printf("%d nodes each read a %d KB mapped file in parallel\n\n", nodes, filePages*vm.PageSize/1024)
	aRate, aPagerReads := run(machine.SysASVM)
	xRate, xPagerReads := run(machine.SysXMM)
	fmt.Printf("ASVM: %6.2f MB/s per node, %4d page-ins at the file pager\n", aRate, aPagerReads)
	fmt.Printf("XMM:  %6.2f MB/s per node, %4d page-ins at the file pager\n", xRate, xPagerReads)
	fmt.Printf("\nASVM served %d of %d page fetches from peer memory instead of the pager.\n",
		int(nodes*filePages-int(aPagerReads)), nodes*filePages)
}
