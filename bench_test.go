// Benchmarks regenerating every table and figure of the paper's
// evaluation (one per artifact; DESIGN.md §4 maps them). Each iteration
// runs the full deterministic simulation; the interesting output is the
// reported custom metrics (simulated milliseconds, MB/s, simulated
// seconds), which correspond directly to the paper's numbers.
//
// Run: go test -bench=. -benchmem
package asvm_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	"asvm/internal/exp"
	"asvm/internal/machine"
	"asvm/internal/workload"
)

// BenchmarkTable1 regenerates Table 1: the seven basic page-fault
// scenarios under both systems. Metrics: simulated milliseconds per fault.
func BenchmarkTable1(b *testing.B) {
	for _, sys := range []machine.System{machine.SysASVM, machine.SysXMM} {
		for _, sc := range workload.Table1Scenarios() {
			b.Run(fmt.Sprintf("%v/%s", sys, sc.Name), func(b *testing.B) {
				var lat time.Duration
				for i := 0; i < b.N; i++ {
					var err error
					lat, err = workload.MeasureFault(sys, sc, 1)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(lat)/1e6, "sim-ms")
			})
		}
	}
}

// BenchmarkFigure10 regenerates Figure 10: write-fault latency vs. the
// number of read copies, for plain and upgrade faults.
func BenchmarkFigure10(b *testing.B) {
	for _, sys := range []machine.System{machine.SysASVM, machine.SysXMM} {
		for _, readers := range []int{1, 2, 8, 32, 64} {
			for _, upgrade := range []bool{false, true} {
				kind := "write"
				if upgrade {
					kind = "upgrade"
				}
				b.Run(fmt.Sprintf("%v/%s/readers=%d", sys, kind, readers), func(b *testing.B) {
					var lat time.Duration
					for i := 0; i < b.N; i++ {
						var err error
						lat, err = workload.MeasureFault(sys, workload.FaultScenario{
							Readers: readers, Write: true, FaulterHasCopy: upgrade,
						}, 1)
						if err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(lat)/1e6, "sim-ms")
				})
			}
		}
	}
}

// BenchmarkFigure11 regenerates Figure 11: inherited-memory fault latency
// across copy chains of growing length (lb + n*la).
func BenchmarkFigure11(b *testing.B) {
	for _, sys := range []machine.System{machine.SysASVM, machine.SysXMM} {
		for _, chain := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%v/chain=%d", sys, chain), func(b *testing.B) {
				var lat time.Duration
				for i := 0; i < b.N; i++ {
					var err error
					lat, err = workload.MeasureChainFault(sys, chain, 1)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(lat)/1e6, "sim-ms/page")
			})
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (and Figures 12/13): mapped-file
// write and read transfer rates per node.
func BenchmarkTable2(b *testing.B) {
	for _, sys := range []machine.System{machine.SysASVM, machine.SysXMM} {
		for _, nodes := range []int{1, 2, 8, 32, 64} {
			b.Run(fmt.Sprintf("%v/write/nodes=%d", sys, nodes), func(b *testing.B) {
				var rate float64
				for i := 0; i < b.N; i++ {
					var err error
					rate, err = workload.MeasureFileWrite(sys, nodes, 1)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(rate, "sim-MB/s")
			})
			b.Run(fmt.Sprintf("%v/read/nodes=%d", sys, nodes), func(b *testing.B) {
				var rate float64
				for i := 0; i < b.N; i++ {
					var err error
					rate, err = workload.MeasureFileRead(sys, nodes, 1)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(rate, "sim-MB/s")
			})
		}
	}
}

// BenchmarkTable3 regenerates Table 3: EM3D execution times (scaled to
// the paper's 100 iterations). Only memory-feasible combinations run; the
// paper marks the rest **.
func BenchmarkTable3(b *testing.B) {
	iters := 2
	for _, sys := range []machine.System{machine.SysASVM, machine.SysXMM} {
		for _, cells := range []int{64000, 256000} {
			for _, nodes := range []int{1, 2, 8, 32} {
				cfg := workload.DefaultEM3D(cells, nodes, iters)
				if nodes == 1 {
					cfg.MemMB = 0
				}
				if !cfg.Feasible() || cells%nodes != 0 {
					continue
				}
				b.Run(fmt.Sprintf("%v/cells=%d/nodes=%d", sys, cells, nodes), func(b *testing.B) {
					var d time.Duration
					for i := 0; i < b.N; i++ {
						var err error
						d, err = workload.RunEM3D(sys, cfg)
						if err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(d.Seconds()*100/float64(iters), "sim-s/100iters")
				})
			}
		}
	}
}

// BenchmarkAblationForwarding (A1) compares the three request-forwarding
// strategies on an ownership-migration workload.
func BenchmarkAblationForwarding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.AblationForwarding(io.Discard, 8, 4, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTransport (A2) carries the ASVM protocol over
// NORMA-IPC vs. the dedicated STS.
func BenchmarkAblationTransport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.AblationTransport(io.Discard, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationInternodePaging (A3) measures memory pressure with and
// without internode paging.
func BenchmarkAblationInternodePaging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.AblationInternodePaging(io.Discard, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures the simulator itself: events
// executed per wall-clock second on a busy 16-node coherence workload —
// the cost of the reproduction, not a paper artifact.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.MeasureFileRead(machine.SysASVM, 16, 1); err != nil {
			b.Fatal(err)
		}
	}
}
