// Command meshsim explores the simulated Paragon interconnect and
// transport stack in isolation: round-trip latencies and streaming
// bandwidth between arbitrary nodes, over NORMA-IPC and the STS — the raw
// numbers underneath every experiment.
package main

import (
	"flag"
	"fmt"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/norma"
	"asvm/internal/sim"
	"asvm/internal/sts"
	"asvm/internal/xport"
)

var (
	pingProto = xport.RegisterProto("ping")
	pongProto = xport.RegisterProto("pong")
)

func main() {
	var (
		n    = flag.Int("nodes", 64, "mesh size")
		src  = flag.Int("src", 0, "source node")
		dst  = flag.Int("dst", -1, "destination node (-1 = farthest corner)")
		page = flag.Bool("page", false, "carry an 8 KB page payload")
	)
	flag.Parse()
	if *dst < 0 {
		*dst = *n - 1
	}

	build := func(mk func(e *sim.Engine, net *mesh.Network, nodes []*node.Node) xport.Transport) (xport.Transport, *sim.Engine) {
		e := sim.NewEngine()
		net := mesh.New(e, *n, mesh.DefaultConfig(*n))
		hw := make([]*node.Node, *n)
		for i := range hw {
			hw[i] = node.New(e, mesh.NodeID(i))
		}
		return mk(e, net, hw), e
	}

	payload := 0
	if *page {
		payload = 8192
	}

	for _, name := range []string{"sts", "norma"} {
		var tr xport.Transport
		var e *sim.Engine
		switch name {
		case "sts":
			tr, e = build(func(e *sim.Engine, net *mesh.Network, hw []*node.Node) xport.Transport {
				return sts.New(e, net, hw, sts.DefaultCosts())
			})
		case "norma":
			tr, e = build(func(e *sim.Engine, net *mesh.Network, hw []*node.Node) xport.Transport {
				return norma.New(e, net, hw, norma.DefaultCosts())
			})
		}
		var rtt time.Duration
		tr.Register(mesh.NodeID(*dst), pingProto, func(from mesh.NodeID, m interface{}) {
			tr.Send(mesh.NodeID(*dst), from, pongProto, payload, m)
		})
		tr.Register(mesh.NodeID(*src), pongProto, func(from mesh.NodeID, m interface{}) {
			rtt = e.Now()
		})
		tr.Send(mesh.NodeID(*src), mesh.NodeID(*dst), pingProto, 0, "x")
		e.Run()
		fmt.Printf("%-6s %d->%d round trip (reply payload %d B): %v\n", name, *src, *dst, payload, rtt)
	}
}
