// Command em3d runs the EM3D electromagnetic wave propagation benchmark
// (paper §4.3) standalone, on either memory system, printing the execution
// time and the per-node protocol statistics behind it.
package main

import (
	"flag"
	"fmt"
	"os"

	"asvm/internal/machine"
	"asvm/internal/workload"
)

func main() {
	var (
		cells  = flag.Int("cells", 64000, "total E+H cells (64000/256000/1024000 in the paper)")
		nodes  = flag.Int("nodes", 8, "compute nodes")
		iters  = flag.Int("iters", 10, "iterations (paper: 100)")
		system = flag.String("system", "asvm", "memory system: asvm|xmm")
		memMB  = flag.Int("mem", 16, "per-node memory in MB (0 = unlimited)")
		seed   = flag.Uint64("seed", 1, "graph seed")
		stats  = flag.Bool("stats", false, "print cluster protocol statistics")
	)
	flag.Parse()

	sys := machine.SysASVM
	if *system == "xmm" {
		sys = machine.SysXMM
	}
	cfg := workload.DefaultEM3D(*cells, *nodes, *iters)
	cfg.MemMB = *memMB
	cfg.Seed = *seed
	if !cfg.Feasible() {
		fmt.Fprintf(os.Stderr, "em3d: %d cells (%d MB) do not fit in %d nodes x %d MB (the paper marks this **)\n",
			*cells, cfg.DatasetBytes()>>20, *nodes, *memMB)
		os.Exit(1)
	}
	mp := machine.DefaultParams(*nodes)
	mp.System = sys
	mp.MemMB = *memMB
	mp.Seed = *seed
	cluster := machine.New(mp)
	d, err := workload.RunEM3DOn(cluster, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "em3d: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("EM3D %v: cells=%d nodes=%d iters=%d\n", sys, *cells, *nodes, *iters)
	fmt.Printf("execution time: %.2f s (scaled to 100 iterations: %.1f s)\n",
		d.Seconds(), d.Seconds()*100/float64(*iters))
	if *stats {
		fmt.Println()
		cluster.StatsReport(os.Stdout)
	}
}
