// Command asvmd runs one node of a real ASVM mesh: the same protocol
// stack the simulator drives, on the wall clock, talking to its peers
// over TCP. Every mesh process loads the same JSON config and picks out
// its own node by ID:
//
//	asvmd -config mesh.json -node 2
//
// The config lists each node's transport and control addresses:
//
//	{
//	  "region": "demo", "pages": 4, "home": 0,
//	  "nodes": [
//	    {"id": 0, "xport": "127.0.0.1:7000", "ctrl": "127.0.0.1:7100"},
//	    {"id": 1, "xport": "127.0.0.1:7001", "ctrl": "127.0.0.1:7101"}
//	  ]
//	}
//
// The daemon serves shared-memory operations (read/write/lock) plus the
// quiet/counters/stats introspection ops over the control address until
// it receives a shutdown request or a signal. Orchestrators drive a mesh
// of daemons through the portable application layer (internal/app with
// app/dsmhost wrapping the control clients); see examples/netdemo for an
// orchestrated multi-process run of the table1 and kv workloads.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"asvm/internal/dsm"
)

func main() {
	configPath := flag.String("config", "", "mesh config file (JSON)")
	nodeID := flag.Int("node", -1, "this process's node ID")
	flag.Parse()
	if *configPath == "" || *nodeID < 0 {
		fmt.Fprintln(os.Stderr, "usage: asvmd -config mesh.json -node N")
		os.Exit(2)
	}

	cfg, err := dsm.LoadConfig(*configPath)
	if err != nil {
		log.Fatalf("asvmd: %v", err)
	}
	spec := cfg.Node(*nodeID)
	if spec == nil {
		log.Fatalf("asvmd: node %d is not in %s", *nodeID, *configPath)
	}

	n, err := dsm.Open(cfg, *nodeID)
	if err != nil {
		log.Fatalf("asvmd: %v", err)
	}
	defer n.Close()

	ctrl, err := dsm.ServeCtrl(n, spec.Ctrl)
	if err != nil {
		log.Fatalf("asvmd: %v", err)
	}
	defer ctrl.Close()

	log.Printf("asvmd: node %d up (xport %s, ctrl %s, region %q, %d pages, home %d)",
		*nodeID, n.Addr(), ctrl.Addr(), cfg.Region, cfg.Pages, cfg.Home)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-ctrl.Shutdown:
		log.Printf("asvmd: node %d shutting down (control request)", *nodeID)
	case s := <-sig:
		log.Printf("asvmd: node %d shutting down (%v)", *nodeID, s)
	}
}
