// Command asvmbench regenerates the paper's evaluation: every table and
// figure of "A New Approach to Distributed Memory Management in the Mach
// Microkernel" (USENIX '96), plus the ablations described in DESIGN.md.
//
// Independent experiment cells (each its own seeded simulation) run on a
// worker pool sized by -workers; parallelism changes wall-clock time only,
// never a simulated metric.
//
// Usage:
//
//	asvmbench -list                  # print the valid -exp names
//	asvmbench -exp table1            # one experiment
//	asvmbench -exp all -quick        # everything, reduced sweeps
//	asvmbench -exp table3 -iters 10  # EM3D with 10 iterations (scaled)
//	asvmbench -chaos                 # degradation sweep under message faults
//	asvmbench -crash                 # degradation sweep under node crashes
//	asvmbench -scale                 # 64-1024 node zipf scale-out sweep
//	asvmbench -exp kv                # portable kv workload (netdemo's sim twin)
//	asvmbench -explore               # schedule-exploration smoke (asvmcheck)
//	asvmbench -workers 1             # serial cells (for profiling a cell)
//	asvmbench -json BENCH.json       # machine-readable perf snapshot only
//	asvmbench -engine parallel       # lane-parallel engine (same results)
//	asvmbench -cpuprofile cpu.pb.gz  # pprof the run (see EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"asvm/internal/exp"
	"asvm/internal/explore"
	"asvm/internal/machine"
	"asvm/internal/workload"
	"asvm/internal/xport"
)

func main() {
	var (
		which   = flag.String("exp", "all", "experiment: table1|fig10|fig11|table2|table3|dist|ablations|chaos|crash|scale|kv|all")
		chaos   = flag.Bool("chaos", false, "run the chaos degradation sweep (same as -exp chaos)")
		crash   = flag.Bool("crash", false, "run the crash-stop degradation sweep (same as -exp crash)")
		scale   = flag.Bool("scale", false, "run the 64-1024 node scale-out sweep (same as -exp scale)")
		explOpt = flag.Bool("explore", false, "run the schedule-exploration smoke pass and exit")
		quick   = flag.Bool("quick", false, "reduced sweeps (small node counts, few iterations)")
		iters   = flag.Int("iters", 10, "EM3D iterations (results are scaled to the paper's 100)")
		seed    = flag.Uint64("seed", 1, "workload RNG seed")
		workers = flag.Int("workers", 0, "parallel experiment cells (0 = GOMAXPROCS, 1 = serial)")
		jsonOut = flag.String("json", "", "write a machine-readable benchmark snapshot to this path and exit")
		list    = flag.Bool("list", false, "list the valid -exp experiment names and exit")
		engine  = flag.String("engine", "serial", "event engine: serial | parallel (per-node event lanes; identical results)")
		lanes   = flag.Int("lanes", exp.SnapshotEngineLanes, "event lanes for -engine=parallel")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProf = flag.String("memprofile", "", "write an allocation profile to this path at exit")
		rto     = flag.Duration("rto", 0, "chaos/crash sweeps: initial retransmit timeout (0 = calibrated 4ms)")
		rtoMax  = flag.Duration("rtomax", 0, "chaos/crash sweeps: retransmit backoff cap (0 = calibrated 64ms)")
		retries = flag.Int("retries", 0, "chaos/crash sweeps: retransmits before a peer is declared down (0 = calibrated 30)")
	)
	flag.Parse()

	// Reliability-layer tuning for the chaos and crash sweeps. Zero values
	// keep the calibrated defaults, so plain runs are unchanged.
	workload.ReliableCfg = xport.ReliableConfig{
		RTO:        *rto,
		MaxRTO:     *rtoMax,
		MaxRetries: *retries,
	}

	switch *engine {
	case "serial":
	case "parallel":
		// Set once at startup, before any cluster is built: every
		// DefaultParams in every experiment cell picks it up.
		machine.DefaultEngineLanes = *lanes
	default:
		fmt.Fprintf(os.Stderr, "asvmbench: -engine must be serial or parallel, got %q\n", *engine)
		os.Exit(2)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asvmbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "asvmbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		path := *memProf
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "asvmbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush accurate allocation stats
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "asvmbench: %v\n", err)
			}
		}()
	}

	if *list {
		for _, n := range exp.ExpNames() {
			fmt.Println(n)
		}
		return
	}

	if *jsonOut != "" {
		t0 := time.Now()
		snap, err := exp.CollectSnapshot(*seed, *workers, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asvmbench: snapshot failed: %v\n", err)
			os.Exit(1)
		}
		if err := snap.WriteFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "asvmbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (engine %.0f events/sec, %.1fs total)\n",
			*jsonOut, snap.EngineEventsPerSec, time.Since(t0).Seconds())
		return
	}

	nodesSweep := []int{1, 2, 4, 8, 16, 32, 64}
	readerSweep := []int{1, 2, 4, 8, 16, 32, 64}
	chainSweep := []int{1, 2, 4, 8, 12, 16}
	em3dSizes := []int{64000, 256000, 1024000}
	em3dNodes := []int{1, 2, 4, 8, 16, 32, 64}
	if *quick {
		nodesSweep = []int{1, 2, 4, 8}
		readerSweep = []int{1, 2, 8}
		chainSweep = []int{1, 2, 4}
		em3dSizes = []int{64000}
		em3dNodes = []int{1, 2, 4, 8}
		if *iters > 3 {
			*iters = 3
		}
	}

	run := func(name string, fn func() error) {
		t0 := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "asvmbench: %s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %.1fs]\n\n", name, time.Since(t0).Seconds())
	}

	if *explOpt {
		// Schedule exploration is a protocol check, not an experiment cell:
		// it perturbs schedules, so its runs never feed the result tables.
		run("explore", func() error { return explore.Smoke(os.Stdout, 200, *seed) })
		return
	}
	if *chaos {
		*which = "chaos"
	}
	if *crash {
		*which = "crash"
	}
	if *scale {
		*which = "scale"
	}
	all := *which == "all"
	if _, err := exp.ParseExp(*which); err != nil {
		fmt.Fprintf(os.Stderr, "asvmbench: %v\n", err)
		os.Exit(2)
	}
	if all || *which == "table1" {
		run("table1", func() error { return exp.Table1(os.Stdout, *seed, *workers) })
	}
	if all || *which == "fig10" {
		run("fig10", func() error { return exp.Figure10(os.Stdout, readerSweep, *seed, *workers) })
	}
	if all || *which == "fig11" {
		run("fig11", func() error { return exp.Figure11(os.Stdout, chainSweep, *seed, *workers) })
	}
	if all || *which == "table2" {
		run("table2", func() error { return exp.Table2(os.Stdout, nodesSweep, *seed, *workers) })
	}
	if all || *which == "table3" {
		run("table3", func() error { return exp.Table3(os.Stdout, em3dSizes, em3dNodes, *iters, *seed, *workers) })
	}
	if all || *which == "dist" {
		run("dist", func() error { return exp.Distribution(os.Stdout, 8, 16, 4, *seed, *workers) })
	}
	// The chaos sweep is opt-in (not part of "all"): it measures the
	// fault-injected configurations, so its output is additional to — never
	// mixed into — the paper-reproduction tables in results_full.txt.
	if *which == "chaos" {
		run("chaos", func() error { return exp.Chaos(os.Stdout, exp.ChaosRates, *seed, *workers, *quick) })
	}
	// Likewise opt-in: the crash sweep measures crash-stop degradation, not
	// the paper's fault-free numbers.
	if *which == "crash" {
		run("crash", func() error { return exp.Crash(os.Stdout, *seed, *workers, *quick) })
	}
	// Opt-in as well: the scale sweep runs 64-1024-node machines, beyond the
	// paper's evaluation envelope, so it never lands in results_full.txt.
	if *which == "scale" {
		run("scale", func() error { return exp.Scale(os.Stdout, *seed, *workers, *quick) })
	}
	// Opt-in: the kv workload demonstrates the portable application layer
	// (the simulated twin of `netdemo -workload kv`), not a paper table.
	if *which == "kv" {
		run("kv", func() error { return exp.KV(os.Stdout, *seed, *workers, *quick) })
	}
	if all || *which == "ablations" {
		run("ablation-forwarding", func() error { return exp.AblationForwarding(os.Stdout, 8, 6, *seed, *workers) })
		run("ablation-transport", func() error { return exp.AblationTransport(os.Stdout, *seed, *workers) })
		run("ablation-internode-paging", func() error { return exp.AblationInternodePaging(os.Stdout, *seed, *workers) })
		run("ablation-chain-threads", func() error { return exp.AblationChainThreads(os.Stdout, *seed, *workers) })
	}
}
