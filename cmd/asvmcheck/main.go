// Command asvmcheck hunts schedule-dependent protocol bugs in the ASVM
// state machines by exploring message orderings the deterministic seed-1
// runs never exercise. It drives the internal/explore subsystem over small
// scenarios, checking protocol invariants at every busy-bit quiesce and at
// drain, and watching for deadlock and non-termination.
//
// Usage:
//
//	asvmcheck                         # exhaustive DFS over all bounded scenarios
//	asvmcheck -scenario rw2           # one scenario
//	asvmcheck -walk 200 -quick        # 200 random schedules per scenario
//	asvmcheck -live -walk 200         # liveness walk over crash/fault scenarios
//	asvmcheck -replay bug.repro       # re-run a saved reproducer
//	asvmcheck -selftest               # inject a known bug; exit 0 iff found
//	asvmcheck -live -selftest         # inject a livelock; exit 0 iff found
//
// On a violation it prints the failing choice string, the shrunk
// reproducer, and each node's protocol trace, then exits 1 (except under
// -selftest, where finding the planted bug is success).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"asvm/internal/asvm"
	"asvm/internal/explore"
	"asvm/internal/machine"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "restrict to one scenario (default: all eligible)")
		walk     = flag.Int("walk", 0, "random-walk N schedules per scenario instead of DFS")
		replay   = flag.String("replay", "", "replay a reproducer file and exit")
		seed     = flag.Uint64("seed", 1, "random-walk seed")
		depth    = flag.Int("depth", 0, "DFS perturbation depth (0 = default)")
		branch   = flag.Int("branch", 0, "DFS branch cap per choice point (0 = default)")
		runs     = flag.Int("runs", 0, "DFS schedule budget per scenario (0 = default)")
		quick    = flag.Bool("quick", false, "reduced budgets (CI smoke)")
		out      = flag.String("o", "", "write a reproducer file here on failure")
		selftest = flag.Bool("selftest", false, "plant a known protocol bug and verify the explorer finds it")
		live     = flag.Bool("live", false, "liveness mode: walk the crash/fault scenarios; with -selftest, plant a livelock instead")
		mincover = flag.Float64("mincover", 0, "fail unless at least this fraction of legal protocol transitions was exercised")
	)
	flag.Parse()

	if *replay != "" {
		os.Exit(doReplay(*replay))
	}
	if *selftest {
		if *live {
			os.Exit(doLiveSelftest(*quick, *seed))
		}
		os.Exit(doSelftest(*quick))
	}
	if *live && *walk == 0 {
		// Liveness hunting needs deep interleavings (crash fates fire only
		// on perturbed schedules), so -live defaults to a random walk.
		*walk = 300
		if *quick {
			*walk = 100
		}
	}

	opt := explore.DFSOptions{MaxChoices: *depth, MaxBranch: *branch, MaxRuns: *runs}
	if *quick {
		if opt.MaxChoices == 0 {
			opt.MaxChoices = 8
		}
		if opt.MaxRuns == 0 {
			opt.MaxRuns = 400
		}
	}

	scs := pick(*scenario, *walk > 0, *live)
	var cover asvm.Coverage
	for _, sc := range scs {
		t0 := time.Now()
		var v *explore.Violation
		var repro []int
		var label string
		if *walk > 0 {
			r := explore.Walk(sc, *walk, *seed, nil)
			v, repro = r.V, r.Reproducer
			cover.Merge(&r.Cover)
			label = fmt.Sprintf("walk %-10s %4d schedules", sc.Name, r.Runs)
		} else {
			r := explore.DFS(sc, opt, nil)
			v, repro = r.V, r.Reproducer
			cover.Merge(&r.Cover)
			state := "budget-capped"
			if r.Complete {
				state = "complete"
			}
			label = fmt.Sprintf("dfs  %-10s %4d schedules (%s)", sc.Name, r.Runs, state)
		}
		if v == nil {
			fmt.Printf("%s  clean  %.1fs\n", label, time.Since(t0).Seconds())
			continue
		}
		fmt.Printf("%s  VIOLATION  %.1fs\n", label, time.Since(t0).Seconds())
		printViolation(sc.Name, v, repro)
		if *out != "" {
			if err := explore.WriteReproducer(*out, sc.Name, repro); err != nil {
				fmt.Fprintf(os.Stderr, "asvmcheck: writing %s: %v\n", *out, err)
			} else {
				fmt.Printf("  reproducer written to %s\n", *out)
			}
		}
		os.Exit(1)
	}

	hit, legal := cover.Exercised()
	frac := float64(hit) / float64(legal)
	fmt.Printf("transition coverage: %d/%d table entries (%.1f%%)\n", hit, legal, 100*frac)
	if *mincover > 0 && frac < *mincover {
		fmt.Fprintf(os.Stderr, "asvmcheck: coverage %.3f below -mincover %.3f; unexercised:\n", frac, *mincover)
		for _, pair := range cover.Unexercised() {
			fmt.Fprintf(os.Stderr, "  %s\n", pair)
		}
		os.Exit(1)
	}
}

// pick resolves the scenario set: one by name, the liveness-focused set
// under -live, or every scenario eligible for the mode (walks may use the
// unbounded ones too).
func pick(name string, walking, live bool) []*explore.Scenario {
	if name != "" {
		sc := explore.Lookup(name)
		if sc == nil {
			fmt.Fprintf(os.Stderr, "asvmcheck: unknown scenario %q (have: %s)\n",
				name, strings.Join(explore.Names(), ", "))
			os.Exit(2)
		}
		return []*explore.Scenario{sc}
	}
	if live {
		return explore.LiveScenarios()
	}
	if walking {
		return explore.Scenarios()
	}
	return explore.BoundedScenarios()
}

func doReplay(path string) int {
	name, ks, err := explore.LoadReproducer(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asvmcheck: %v\n", err)
		return 2
	}
	sc := explore.Lookup(name)
	if sc == nil {
		fmt.Fprintf(os.Stderr, "asvmcheck: reproducer names unknown scenario %q\n", name)
		return 2
	}
	out := explore.Replay(sc, ks, nil)
	if out.V == nil {
		fmt.Printf("replay %s %s: clean (%d choice points seen)\n",
			name, explore.EncodeChoices(ks), len(out.Choices))
		return 0
	}
	fmt.Printf("replay %s %s: VIOLATION\n", name, explore.EncodeChoices(ks))
	printViolation(name, out.V, ks)
	return 1
}

// doSelftest proves the whole pipeline end to end: it re-enables the
// classic lost-reader-list bug on ownership transfer and requires the
// explorer to find, replay and shrink it. Exit 0 means the checker works.
func doSelftest(quick bool) int {
	sc := explore.Lookup("xfer-evict")
	mutate := func(c *machine.Cluster) {
		for _, nd := range c.ASVMs {
			nd.Hooks.DropXferReaders = true
		}
	}
	opt := explore.DFSOptions{}
	if quick {
		opt.MaxChoices, opt.MaxRuns = 8, 400
	}
	r := explore.DFS(sc, opt, mutate)
	if r.V == nil {
		fmt.Fprintf(os.Stderr, "asvmcheck: selftest FAILED — planted bug not found in %d schedules\n", r.Runs)
		return 1
	}
	rep := explore.Replay(sc, r.Reproducer, mutate)
	if rep.V == nil {
		fmt.Fprintf(os.Stderr, "asvmcheck: selftest FAILED — shrunk reproducer does not replay\n")
		return 1
	}
	fmt.Printf("selftest ok: planted reader-list bug found in %d schedules, reproducer %q (%d choices)\n",
		r.Runs, explore.EncodeChoices(r.Reproducer), len(r.Reproducer))
	return 0
}

// doLiveSelftest proves the liveness checker end to end: it re-enables the
// classic crash-handling bug pair — bounced requests are silently discarded
// and faults are not re-driven when a peer dies — so a survivor's fault
// whose request died inside the crashed node never resolves. It requires a
// walk over the crash scenario to find, shrink and replay that hang as a
// liveness violation.
func doLiveSelftest(quick bool, seed uint64) int {
	sc := explore.Lookup("crash3")
	mutate := func(c *machine.Cluster) {
		for _, nd := range c.ASVMs {
			nd.Hooks.DropNackResume = true
			nd.Hooks.DropFaultRedrive = true
		}
	}
	runs := 400
	if quick {
		runs = 150
	}
	r := explore.Walk(sc, runs, seed, mutate)
	if r.V == nil {
		fmt.Fprintf(os.Stderr, "asvmcheck: live selftest FAILED — planted livelock not found in %d schedules\n", r.Runs)
		return 1
	}
	if r.V.Kind != "liveness" {
		fmt.Fprintf(os.Stderr, "asvmcheck: live selftest FAILED — planted livelock surfaced as %q, want liveness\n  %v\n",
			r.V.Kind, r.V.Err)
		return 1
	}
	rep := explore.Replay(sc, r.Reproducer, mutate)
	if rep.V == nil {
		fmt.Fprintf(os.Stderr, "asvmcheck: live selftest FAILED — shrunk reproducer does not replay\n")
		return 1
	}
	fmt.Printf("live selftest ok: planted livelock found in %d schedules, reproducer %q (%d choices)\n",
		r.Runs, explore.EncodeChoices(r.Reproducer), len(r.Reproducer))
	return 0
}

func printViolation(scenario string, v *explore.Violation, repro []int) {
	fmt.Printf("  scenario:   %s\n", scenario)
	fmt.Printf("  kind:       %s\n", v.Kind)
	fmt.Printf("  error:      %v\n", v.Err)
	fmt.Printf("  choices:    %s (%d points)\n", explore.EncodeChoices(explore.Ks(v.Choices)), len(v.Choices))
	fmt.Printf("  reproducer: %s\n", explore.EncodeChoices(repro))
	for _, nt := range v.Nodes {
		fmt.Printf("  node %d trace:\n", nt.Node)
		for _, ln := range nt.Lines {
			fmt.Printf("    %s\n", ln)
		}
	}
}
