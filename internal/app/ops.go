package app

import (
	"fmt"
	"time"
)

// An op stream is the portable workload form both backends execute the
// same way: a fixed sequence of operations, one at a time, each drained
// to protocol quiescence before the next. Sequential-with-drain makes the
// protocol's message schedule deterministic, so the same stream run on
// the real mesh and on the simulator must take identical protocol
// decisions — counter parity between the twins is the correctness anchor
// the loopback tests and the netdemo pin.

// OpKind classifies one step of an op stream.
type OpKind uint8

// The op-stream alphabet. Every backend implements all of it through the
// portable Host subset.
const (
	OpRead OpKind = iota
	OpWrite
	OpLock
	OpUnlock
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpLock:
		return "lock"
	case OpUnlock:
		return "unlock"
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// Op is one step of an op stream. All streams run against object 0 — the
// single shared region both backends provide to op-stream workloads.
type Op struct {
	Label string // for the latency report
	Node  int    // node performing the op
	Kind  OpKind
	Addr  int64  // byte offset in the shared region (read/write)
	Val   uint64 // value to write
	Want  uint64 // expected value (reads with Check)
	Check bool   // verify a read's value
	Lo    int64  // first page (lock/unlock)
	Hi    int64  // one past the last page (lock/unlock)
}

// Pages returns the region size in pages an op stream needs.
func Pages(ops []Op, pageSize int64) int64 {
	var maxAddr int64
	for _, op := range ops {
		if op.Addr > maxAddr {
			maxAddr = op.Addr
		}
		if hi := op.Hi * pageSize; hi > maxAddr {
			maxAddr = hi - 1
		}
	}
	return maxAddr/pageSize + 1
}

// Env executes op streams on one backend: a per-op step primitive that
// drains the system to quiescence afterwards, plus the drained protocol
// counters. simhost and dsmhost both implement it.
type Env interface {
	NumNodes() int

	// Step runs fn as one short thread of control on the given node and
	// drains to quiescence before returning. The returned duration is the
	// operation's own latency on the env's clock — virtual time on the
	// simulator, the daemon-measured wall latency on the mesh.
	Step(node int, label string, fn func(h Host) error) (time.Duration, error)

	// Drain waits for full protocol quiescence (a stricter final check
	// than the per-step drain on backends where frames ride a real wire).
	Drain() error

	// Counters returns the mesh-wide protocol counters summed over nodes.
	Counters() (map[string]int64, error)
}

// Result is one executed op stream: per-op latencies on the env's clock,
// and the drained mesh-wide protocol counters.
type Result struct {
	PerOp    []time.Duration
	Counters map[string]int64
}

// Run executes an op stream on an env: each op as its own drained step,
// then a final drain and the counter harvest.
func Run(env Env, ops []Op) (*Result, error) {
	res := &Result{}
	for _, op := range ops {
		op := op
		lat, err := env.Step(op.Node, op.Label, func(h Host) error {
			switch op.Kind {
			case OpWrite:
				return h.Write(0, op.Addr, op.Val)
			case OpRead:
				v, err := h.Read(0, op.Addr)
				if err == nil && op.Check && v != op.Want {
					err = fmt.Errorf("read %d, want %d", v, op.Want)
				}
				return err
			case OpLock:
				return h.Lock(0, op.Lo, op.Hi)
			case OpUnlock:
				return h.Unlock(0, op.Lo, op.Hi)
			}
			return fmt.Errorf("unknown op kind %v", op.Kind)
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", op.Label, err)
		}
		res.PerOp = append(res.PerOp, lat)
	}
	if err := env.Drain(); err != nil {
		return nil, err
	}
	ctrs, err := env.Counters()
	if err != nil {
		return nil, err
	}
	res.Counters = ctrs
	return res, nil
}
