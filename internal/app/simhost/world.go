// Package simhost implements the portable application layer (app.Host,
// app.Env) over the deterministic simulator: machine-assembled clusters,
// vm tasks, and sim procs. The implementation is deliberately a zero-cost
// veneer — every Host call compiles down to exactly the call sequence the
// pre-refactor workloads made (Touch for untracked data, ReadU64/WriteU64
// for tracked, machine.Barrier.Await, p.Sleep, p.Now), in the same order,
// so seed-1 results_full.txt is byte-identical to the direct-driving era.
package simhost

import (
	"fmt"
	"time"

	"asvm/internal/app"
	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

// Spec describes one shared object of a world, in mapping order: object
// indices and per-task base addresses follow the slice (object i starts
// at the cumulative page offset of objects 0..i-1).
type Spec struct {
	Name  string
	Pages int64
	// Nodes lists the cluster nodes sharing the object (nil = all). The
	// first listed node is the home (ASVM) or manager (XMM).
	Nodes []int
	// File backs the object with a file pager on the home group's I/O
	// node instead of anonymous paging space; Preload fills it first.
	File    bool
	Preload bool
	// Private creates an anonymous object on the home node, mapped
	// copy-inherit into that node's task only — the Figure 11 fork-chain
	// shape. Private objects propagate through Host.Fork.
	Private bool
}

// World is a simulated mesh with its shared objects laid out, handing out
// app.Host views to workload threads. Tasks are one per node, mapping
// every object the node shares at the spec-order base addresses.
//
// Task and barrier creation mutate world state and are not synchronized:
// SPMD workloads must create barriers and Prepare their nodes before Run
// (under the lane-parallel engine, bodies execute concurrently). A
// single-driver workload may instead let Host calls create tasks lazily
// mid-run — task creation and mapping schedule no events, so the executed
// schedule is identical either way.
type World struct {
	C *machine.Cluster

	specs    []Spec
	bases    []vm.Addr
	regions  []*machine.Region // per spec; nil for Private
	privObjs []*vm.Object      // per spec; nil unless Private
	tasks    []*vm.Task
	barriers map[int]*machine.Barrier
	nextBar  int
	errs     []error
}

// NewWorld lays the objects out on an assembled cluster.
func NewWorld(c *machine.Cluster, specs []Spec) (*World, error) {
	w := &World{
		C:        c,
		specs:    specs,
		tasks:    make([]*vm.Task, c.P.Nodes),
		barriers: make(map[int]*machine.Barrier),
	}
	var base vm.Addr
	for _, sp := range specs {
		if sp.Pages <= 0 {
			return nil, fmt.Errorf("simhost: object %q needs pages", sp.Name)
		}
		nodes := sp.Nodes
		if nodes == nil {
			nodes = allNodes(c.P.Nodes)
		}
		w.bases = append(w.bases, base)
		base += vm.Addr(sp.Pages) * vm.PageSize
		switch {
		case sp.Private:
			w.regions = append(w.regions, nil)
			w.privObjs = append(w.privObjs, c.Kerns[nodes[0]].NewAnonymous(vm.PageIdx(sp.Pages)))
		case sp.File:
			r, _ := c.NewMappedFile(sp.Name, vm.PageIdx(sp.Pages), nodes, sp.Preload)
			w.regions = append(w.regions, r)
			w.privObjs = append(w.privObjs, nil)
		default:
			w.regions = append(w.regions, c.NewSharedRegion(sp.Name, vm.PageIdx(sp.Pages), nodes))
			w.privObjs = append(w.privObjs, nil)
		}
	}
	return w, nil
}

func allNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Region returns an object's machine region (nil for Private objects) so
// sim-side harnesses can run protocol-state validation after a drain.
func (w *World) Region(obj int) *machine.Region { return w.regions[obj] }

// Prepare creates the nodes' tasks (with every shared object mapped) up
// front — required before Run for SPMD workloads, and the way to pin the
// task-creation order when it matters for trace readability.
func (w *World) Prepare(nodes ...int) error {
	for _, n := range nodes {
		if _, err := w.task(n); err != nil {
			return err
		}
	}
	return nil
}

// task returns the node's task, creating and mapping it on first use.
func (w *World) task(node int) (*vm.Task, error) {
	if t := w.tasks[node]; t != nil {
		return t, nil
	}
	t := w.C.Kerns[node].NewTask(fmt.Sprintf("app%d", node))
	for i, sp := range w.specs {
		nodes := sp.Nodes
		if nodes == nil {
			nodes = allNodes(w.C.P.Nodes)
		}
		if sp.Private {
			if nodes[0] == node {
				if _, err := t.Map.MapObject(w.bases[i], w.privObjs[i], 0,
					vm.PageIdx(sp.Pages), vm.ProtWrite, vm.InheritCopy); err != nil {
					return nil, err
				}
			}
			continue
		}
		o := w.regions[i].Obj(node)
		if o == nil {
			continue // the node does not share this object
		}
		if _, err := t.Map.MapObject(w.bases[i], o, 0,
			vm.PageIdx(sp.Pages), vm.ProtWrite, vm.InheritShare); err != nil {
			return nil, err
		}
	}
	w.tasks[node] = t
	return t, nil
}

// NewBarrier registers a mesh-wide barrier (one thread per node) and
// returns its id for Host.Barrier. Call before Run.
func (w *World) NewBarrier() int {
	w.nextBar++
	w.barriers[w.nextBar] = w.C.NewBarrier(allNodes(w.C.P.Nodes))
	return w.nextBar
}

// Go starts a driver thread on the engine's default lane, bound to the
// given node (the Table 1 microbenchmarks drive the whole mesh from one
// thread, hopping nodes with Host.On).
func (w *World) Go(node int, name string, body func(h app.Host) error) {
	idx := len(w.errs)
	w.errs = append(w.errs, nil)
	w.C.Spawn(name, func(p *sim.Proc) {
		if err := body(host{w: w, p: p, node: node}); err != nil {
			w.errs[idx] = err
		}
	})
}

// GoOn starts an SPMD thread with event-lane affinity for its node.
func (w *World) GoOn(node int, name string, body func(h app.Host) error) {
	idx := len(w.errs)
	w.errs = append(w.errs, nil)
	w.C.SpawnOn(node, name, func(p *sim.Proc) {
		if err := body(host{w: w, p: p, node: node}); err != nil {
			w.errs[idx] = err
		}
	})
}

// Run drives the simulation to completion and returns the first error any
// thread reported, in start order.
func (w *World) Run() error {
	w.C.Run()
	errs := w.errs
	w.errs = nil
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// host binds a World and a running proc to one node. It is the app.Host
// the simulator hands workload threads.
type host struct {
	w    *World
	p    *sim.Proc
	node int
}

func (h host) NodeID() int   { return h.node }
func (h host) NumNodes() int { return h.w.C.P.Nodes }

func (h host) On(node int) app.Host { return host{w: h.w, p: h.p, node: node} }

// Open ensures the node's task exists (all objects map at task creation,
// so per-object attach is free — like the scale generator's up-front
// mappings, Open/Close gate which objects a tenant touches).
func (h host) Open(obj int) error {
	_, err := h.w.task(h.node)
	return err
}

func (h host) Close(obj int) error { return nil }

func (h host) Read(obj int, off int64) (uint64, error) {
	t, err := h.w.task(h.node)
	if err != nil {
		return 0, err
	}
	addr := h.w.bases[obj] + vm.Addr(off)
	if h.w.C.P.TrackData {
		return t.ReadU64(h.p, addr)
	}
	_, err = t.Touch(h.p, addr, vm.ProtRead)
	return 0, err
}

func (h host) Write(obj int, off int64, val uint64) error {
	t, err := h.w.task(h.node)
	if err != nil {
		return err
	}
	addr := h.w.bases[obj] + vm.Addr(off)
	if h.w.C.P.TrackData {
		return t.WriteU64(h.p, addr, val)
	}
	_, err = t.Touch(h.p, addr, vm.ProtWrite)
	return err
}

func (h host) Lock(obj int, lo, hi int64) error {
	r := h.w.regions[obj]
	if r == nil || h.w.C.P.System != machine.SysASVM {
		return app.ErrUnsupported
	}
	t, err := h.w.task(h.node)
	if err != nil {
		return err
	}
	in := h.w.C.ASVMs[h.node].Instance(r.ID)
	if in == nil {
		return fmt.Errorf("simhost: node %d has no instance of %q", h.node, r.Name)
	}
	return in.AcquireRange(h.p, t, h.w.bases[obj], vm.PageIdx(lo), vm.PageIdx(hi))
}

func (h host) Unlock(obj int, lo, hi int64) error {
	r := h.w.regions[obj]
	if r == nil || h.w.C.P.System != machine.SysASVM {
		return app.ErrUnsupported
	}
	in := h.w.C.ASVMs[h.node].Instance(r.ID)
	if in == nil {
		return fmt.Errorf("simhost: node %d has no instance of %q", h.node, r.Name)
	}
	in.ReleaseRange(vm.PageIdx(lo), vm.PageIdx(hi))
	return nil
}

// Fork copies this node's task to another node under the active system's
// copy semantics and rebinds the destination node to the child.
func (h host) Fork(node int, name string) (app.Host, error) {
	t, err := h.w.task(h.node)
	if err != nil {
		return nil, err
	}
	child, err := h.w.C.RemoteFork(t, node, name)
	if err != nil {
		return nil, err
	}
	h.w.tasks[node] = child
	return host{w: h.w, p: h.p, node: node}, nil
}

func (h host) Barrier(id int) error {
	b := h.w.barriers[id]
	if b == nil {
		return fmt.Errorf("simhost: barrier %d was never created", id)
	}
	b.Await(h.p, h.node)
	return nil
}

func (h host) Now() time.Duration    { return h.p.Now() }
func (h host) Sleep(d time.Duration) { h.p.Sleep(d) }
