package simhost

import (
	"fmt"
	"time"

	"asvm/internal/app"
	"asvm/internal/machine"
	"asvm/internal/sim"
)

// Env executes portable op streams on the simulator: one spawned proc per
// op, the engine drained between ops — the schedule under which the
// protocol's decisions are deterministic, making the simulated run the
// exact twin of a drained real-mesh run. Calibration is the standard
// machine.DefaultParams (modelled 1996 Paragon costs) with data tracked,
// so read checks verify real contents.
type Env struct {
	W *World
}

// NewEnv builds an n-node simulated mesh with one shared region of the
// given size mapped on every node — the same world shape the dsm mesh
// provides (its single region, object 0).
func NewEnv(nodes int, pages int64) (*Env, error) {
	p := machine.DefaultParams(nodes)
	p.TrackData = true
	c := machine.New(p)
	w, err := NewWorld(c, []Spec{{Name: "netdemo", Pages: pages}})
	if err != nil {
		return nil, err
	}
	if err := w.Prepare(allNodes(nodes)...); err != nil {
		return nil, err
	}
	return &Env{W: w}, nil
}

// NumNodes implements app.Env.
func (e *Env) NumNodes() int { return e.W.C.P.Nodes }

// Step runs fn as one proc on the node and drains the engine: the next
// step starts from protocol quiescence. The latency is virtual time.
func (e *Env) Step(node int, label string, fn func(h app.Host) error) (time.Duration, error) {
	var lat time.Duration
	var opErr error
	e.W.C.Spawn(label, func(pr *sim.Proc) {
		start := pr.Now()
		opErr = fn(host{w: e.W, p: pr, node: node})
		lat = time.Duration(pr.Now() - start)
	})
	e.W.C.Run() // drain: the next op starts from protocol quiescence
	return lat, opErr
}

// Drain implements app.Env; per-step Runs already drain the engine, so
// this only asserts nothing is left pending.
func (e *Env) Drain() error {
	if n := e.W.C.Eng.Pending(); n != 0 {
		return fmt.Errorf("simhost: %d events still pending after drain", n)
	}
	return nil
}

// Counters returns the mesh-wide protocol counters: each node's kernel
// counters (faults, zero fills) merged with its ASVM runtime's (messages,
// invalidations), summed over nodes — the same union the real mesh's
// control plane reports.
func (e *Env) Counters() (map[string]int64, error) {
	out := make(map[string]int64)
	c := e.W.C
	for i := 0; i < c.P.Nodes; i++ {
		for _, name := range c.Kerns[i].Ctr.Names() {
			out[name] += c.Kerns[i].Ctr.Get(name)
		}
		for _, name := range c.ASVMs[i].Ctr.Names() {
			out[name] += c.ASVMs[i].Ctr.Get(name)
		}
	}
	return out, nil
}
