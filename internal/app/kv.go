package app

import (
	"fmt"

	"asvm/internal/sim"
	"asvm/internal/vm"
)

// The kv workload is the seam-proving application the portable layer
// exists for: a shared-page key-value store hit by per-node client op
// streams. Keys stripe across a handful of pages (adjacent keys land on
// different pages, so every client's working set spans the whole region),
// clients interleave round-robin, and each client mixes gets, puts, and
// occasional range-locked puts from its own seeded stream. A get carries
// the value the generator's model says the store must hold at that point
// — including zero for never-written keys (zero-fill faults) — so both
// backends verify real data movement, not just fault accounting.

const (
	kvPages      = 4
	kvKeys       = 16 // kvKeys/kvPages slots of 8 bytes per page
	kvOpsPerNode = 8
)

// kvSeedSalt spreads per-client generator streams across the RNG space
// (golden-ratio multiplier, the usual hash constant).
const kvSeedSalt = 0x9E3779B97F4A7C15

func init() {
	Register(Workload{
		Name:  "kv",
		Pages: func(nodes int) int64 { return kvPages },
		Ops:   KVOps,
	})
}

// kvAddr stripes key k across the region's pages.
func kvAddr(k int) int64 {
	return int64((k%kvPages)*vm.PageSize + (k/kvPages)*8)
}

// KVOps generates the kv op stream for an n-node mesh: per-node client
// streams interleaved round-robin into one deterministic global sequence.
// Exported so tests can pin the generator's structural properties.
func KVOps(nodes int, seed uint64) []Op {
	rngs := make([]*sim.RNG, nodes)
	for n := range rngs {
		rngs[n] = sim.NewRNG(seed ^ (uint64(n)+1)*kvSeedSalt)
	}
	model := make(map[int]uint64, kvKeys)

	var ops []Op
	put := func(node, i, k int, locked bool) {
		rng := rngs[node]
		val := uint64(1 + rng.Intn(1_000_000))
		kind := "put"
		if locked {
			kind = "locked put"
			pg := int64(k % kvPages)
			ops = append(ops, Op{
				Label: fmt.Sprintf("kv n%d#%d lock p%d", node, i, pg),
				Node:  node, Kind: OpLock, Lo: pg, Hi: pg + 1})
			defer func() {
				ops = append(ops, Op{
					Label: fmt.Sprintf("kv n%d#%d unlock p%d", node, i, pg),
					Node:  node, Kind: OpUnlock, Lo: pg, Hi: pg + 1})
			}()
		}
		ops = append(ops, Op{
			Label: fmt.Sprintf("kv n%d#%d %s k%d=%d", node, i, kind, k, val),
			Node:  node, Kind: OpWrite, Addr: kvAddr(k), Val: val})
		model[k] = val
	}
	for i := 0; i < kvOpsPerNode; i++ {
		for node := 0; node < nodes; node++ {
			rng := rngs[node]
			k := rng.Intn(kvKeys)
			switch x := rng.Intn(10); {
			case x < 5: // get: verified against the model (0 = zero-fill)
				ops = append(ops, Op{
					Label: fmt.Sprintf("kv n%d#%d get k%d", node, i, k),
					Node:  node, Kind: OpRead, Addr: kvAddr(k),
					Want: model[k], Check: true})
			case x < 9:
				put(node, i, k, false)
			default: // locked put: the range lock rides ownership
				put(node, i, k, true)
			}
		}
	}
	return ops
}
