// Package dsmhost implements the portable application layer (app.Host,
// app.Env) over a real mesh of dsm nodes: OS processes (or in-process
// loopback nodes) running the identical ASVM protocol code on the wall
// clock, with TCP or net.Pipe for a wire. Workloads written against
// app.Host run here unchanged from the simulator; because op streams
// execute one at a time with the mesh drained between steps, the
// protocol's decisions are deterministic and the counters must match the
// simulated twin exactly.
package dsmhost

import (
	"fmt"
	"time"

	"asvm/internal/app"
	"asvm/internal/dsm"
	"asvm/internal/vm"
)

// Conn is one mesh member as the host layer needs it: the shared-region
// operations with their daemon-measured latencies, the merged protocol
// counters, and the drain poll. dsm.Client implements it over the
// control plane (FromClients); dsm.Node is adapted in-process
// (FromNodes).
type Conn interface {
	Read(addr vm.Addr) (uint64, time.Duration, error)
	Write(addr vm.Addr, v uint64) (time.Duration, error)
	Lock(lo, hi int64) (time.Duration, error)
	Unlock(lo, hi int64) (time.Duration, error)
	Counters() (map[string]int64, error)
	QuietFrames() (quiet bool, frames uint64, err error)
}

// Env executes portable op streams on the mesh. Latencies are the
// daemon-measured wall latencies of the operations themselves (injection
// overhead included, control-plane round trip excluded).
type Env struct {
	conns []Conn

	// StepRounds and FinalRounds are the stability windows (consecutive
	// polls with every node quiet and total frame traffic unchanged) for
	// the per-step and the final drain; DrainTimeout bounds each wait.
	StepRounds  int
	FinalRounds int
	// DrainTimeout bounds each drain; on expiry the error is a
	// dsm.ErrDrainTimeout.
	DrainTimeout time.Duration

	start time.Time
}

// New builds an Env over explicit conns (mostly for tests; use
// FromClients or FromNodes).
func New(conns []Conn) *Env {
	return &Env{
		conns:        conns,
		StepRounds:   3,
		FinalRounds:  5,
		DrainTimeout: 30 * time.Second,
		start:        time.Now(),
	}
}

// FromClients builds an Env over control-plane clients, one per mesh
// node in node-ID order — the shape the netdemo orchestrator has after
// dialing its daemons.
func FromClients(clients []*dsm.Client) *Env {
	conns := make([]Conn, len(clients))
	for i, c := range clients {
		conns[i] = c
	}
	return New(conns)
}

// nodeConn adapts an in-process dsm.Node (whose Counters cannot fail) to
// the Conn seam.
type nodeConn struct{ *dsm.Node }

func (c nodeConn) Counters() (map[string]int64, error) { return c.Node.Counters(), nil }

// FromNodes builds an Env over in-process nodes, one per mesh node in
// node-ID order — the shape the loopback tests have.
func FromNodes(nodes []*dsm.Node) *Env {
	conns := make([]Conn, len(nodes))
	for i, n := range nodes {
		conns[i] = nodeConn{n}
	}
	return New(conns)
}

// NumNodes implements app.Env.
func (e *Env) NumNodes() int { return len(e.conns) }

// Step implements app.Env: run fn against the node's host view, then
// drain the mesh so the next step starts from protocol quiescence. The
// latency is the sum of the daemon-measured latencies of the operations
// fn performed.
func (e *Env) Step(node int, label string, fn func(h app.Host) error) (time.Duration, error) {
	if node < 0 || node >= len(e.conns) {
		return 0, fmt.Errorf("dsmhost: no node %d in a %d-node mesh", node, len(e.conns))
	}
	var lat time.Duration
	if err := fn(host{env: e, node: node, lat: &lat}); err != nil {
		return lat, err
	}
	if err := e.drain(e.StepRounds); err != nil {
		return lat, fmt.Errorf("dsmhost: drain after %s: %w", label, err)
	}
	return lat, nil
}

// Drain implements app.Env with the stricter final stability window.
func (e *Env) Drain() error { return e.drain(e.FinalRounds) }

func (e *Env) drain(rounds int) error {
	pollers := make([]dsm.QuietPoller, len(e.conns))
	for i, c := range e.conns {
		pollers[i] = c
	}
	return dsm.DrainPollers(pollers, rounds, e.DrainTimeout)
}

// Counters implements app.Env: every node's merged protocol counters,
// summed across the mesh.
func (e *Env) Counters() (map[string]int64, error) {
	out := make(map[string]int64)
	for i, c := range e.conns {
		ctrs, err := c.Counters()
		if err != nil {
			return nil, fmt.Errorf("dsmhost: counters from node %d: %w", i, err)
		}
		for k, v := range ctrs {
			out[k] += v
		}
	}
	return out, nil
}

// host is the app.Host view of one mesh node. The mesh provides exactly
// one shared region (object 0); tasks, forks and barriers are simulator
// amenities, so the unsupported subset reports app.ErrUnsupported
// rather than guessing.
type host struct {
	env  *Env
	node int
	lat  *time.Duration // daemon-measured latency accumulator for the step
}

func (h host) NodeID() int   { return h.node }
func (h host) NumNodes() int { return len(h.env.conns) }

func (h host) On(node int) app.Host { return host{env: h.env, node: node, lat: h.lat} }

func (h host) conn() Conn { return h.env.conns[h.node] }

func (h host) Open(obj int) error {
	if obj != 0 {
		return app.ErrUnsupported
	}
	return nil
}

func (h host) Close(obj int) error {
	if obj != 0 {
		return app.ErrUnsupported
	}
	return nil
}

func (h host) Read(obj int, off int64) (uint64, error) {
	if obj != 0 {
		return 0, app.ErrUnsupported
	}
	v, lat, err := h.conn().Read(vm.Addr(off))
	*h.lat += lat
	return v, err
}

func (h host) Write(obj int, off int64, val uint64) error {
	if obj != 0 {
		return app.ErrUnsupported
	}
	lat, err := h.conn().Write(vm.Addr(off), val)
	*h.lat += lat
	return err
}

func (h host) Lock(obj int, lo, hi int64) error {
	if obj != 0 {
		return app.ErrUnsupported
	}
	lat, err := h.conn().Lock(lo, hi)
	*h.lat += lat
	return err
}

func (h host) Unlock(obj int, lo, hi int64) error {
	if obj != 0 {
		return app.ErrUnsupported
	}
	lat, err := h.conn().Unlock(lo, hi)
	*h.lat += lat
	return err
}

func (h host) Fork(node int, name string) (app.Host, error) { return nil, app.ErrUnsupported }

func (h host) Barrier(id int) error { return app.ErrUnsupported }

func (h host) Now() time.Duration    { return time.Since(h.env.start) }
func (h host) Sleep(d time.Duration) { time.Sleep(d) }
