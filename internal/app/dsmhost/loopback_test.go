package dsmhost

import (
	"testing"

	"asvm/internal/app"
	"asvm/internal/app/simhost"
	"asvm/internal/dsm"
)

// The parity tests are the portable layer's correctness anchor: the same
// registered workload, through the same app.Run, on a full mesh of real
// dsm nodes (separate engines, wall-clock loops, net.Pipe wires) and on
// the deterministic simulator. Sequential-with-drain execution makes the
// protocol's decisions identical on both, so the protocol counters must
// match exactly — same faults, same invalidation rounds, same messages,
// same state transitions, only the clock and the wire differ.

// parityCounters is the counter set pinned to exact equality between the
// twins.
var parityCounters = []string{
	"faults", "invalidations", "msgs", "nacks",
	"proto_transitions", "ring_scan_hops",
}

// runTwins executes a registered workload on both backends and pins
// counter parity, returning the real mesh's result.
func runTwins(t *testing.T, name string, nodes int, seed uint64) *app.Result {
	t.Helper()
	wl, ok := app.Lookup(name)
	if !ok {
		t.Fatalf("workload %q is not registered", name)
	}
	ops := wl.Ops(nodes, seed)
	pages := wl.Pages(nodes)

	mesh, stop, err := dsm.PipeMesh(nodes, pages)
	if err != nil {
		t.Fatalf("pipe mesh: %v", err)
	}
	t.Cleanup(stop)
	realRes, err := app.Run(FromNodes(mesh), ops)
	if err != nil {
		t.Fatalf("real mesh run: %v", err)
	}

	simEnv, err := simhost.NewEnv(nodes, pages)
	if err != nil {
		t.Fatalf("sim env: %v", err)
	}
	simRes, err := app.Run(simEnv, ops)
	if err != nil {
		t.Fatalf("simulated twin: %v", err)
	}

	if len(realRes.PerOp) != len(ops) || len(simRes.PerOp) != len(ops) {
		t.Fatalf("per-op latencies: real %d, sim %d, want %d",
			len(realRes.PerOp), len(simRes.PerOp), len(ops))
	}
	for _, ctr := range parityCounters {
		if realRes.Counters[ctr] != simRes.Counters[ctr] {
			t.Errorf("counter %q: real mesh %d, simulated %d\nreal: %v\nsim:  %v",
				ctr, realRes.Counters[ctr], simRes.Counters[ctr],
				realRes.Counters, simRes.Counters)
		}
	}
	return realRes
}

func TestTable1ParityLoopback(t *testing.T) {
	res := runTwins(t, "table1", 3, 1)
	if res.Counters["faults"] == 0 {
		t.Error("table1 produced no faults — it tested nothing")
	}
	if res.Counters["invalidations"] == 0 {
		t.Error("table1 produced no invalidation rounds — coverage lost")
	}
}

func TestKVParityLoopback(t *testing.T) {
	res := runTwins(t, "kv", 3, 1)
	if res.Counters["faults"] == 0 {
		t.Error("kv produced no faults — it tested nothing")
	}
}
