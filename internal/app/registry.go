package app

import (
	"fmt"
	"sort"
)

// Workload is one registered portable op-stream workload: a deterministic
// generator parameterized by mesh size and seed. The registry is the
// single catalogue both front ends draw from — asvmbench runs a workload
// on the simulator, the netdemo runs the identical stream across real OS
// processes, and the loopback tests pin counter parity between the two.
type Workload struct {
	Name string
	// Pages returns the shared-region size the workload needs on an
	// n-node mesh.
	Pages func(nodes int) int64
	// Ops generates the deterministic op stream for an n-node mesh.
	Ops func(nodes int, seed uint64) []Op
}

var registry = map[string]Workload{}

// Register adds a workload to the catalogue; duplicate names are a
// programming error.
func Register(w Workload) {
	if w.Name == "" || w.Pages == nil || w.Ops == nil {
		panic("app: incomplete workload registration")
	}
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("app: workload %q registered twice", w.Name))
	}
	registry[w.Name] = w
}

// Lookup returns a registered workload by name.
func Lookup(name string) (Workload, bool) {
	w, ok := registry[name]
	return w, ok
}

// Names lists the registered workloads, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
