package app

import (
	"reflect"
	"testing"

	"asvm/internal/vm"
)

func TestRegistryHasBothWorkloads(t *testing.T) {
	want := []string{"kv", "table1"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		wl, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missed", name)
		}
		if wl.Pages(3) <= 0 {
			t.Errorf("%s: non-positive page count", name)
		}
		if len(wl.Ops(3, 1)) == 0 {
			t.Errorf("%s: empty op stream", name)
		}
	}
}

func TestTable1OpsShape(t *testing.T) {
	const nodes = 3
	ops := table1Ops(nodes)
	// Per page: 1 first write + (nodes-1) reads + 1 invalidating write +
	// 1 re-read.
	if want := table1Pages * (nodes + 2); len(ops) != want {
		t.Fatalf("len(ops) = %d, want %d", len(ops), want)
	}
	if got := Pages(ops, vm.PageSize); got != table1Pages {
		t.Fatalf("Pages = %d, want %d", got, table1Pages)
	}
	for _, op := range ops {
		if op.Node < 0 || op.Node >= nodes {
			t.Fatalf("%s: node %d out of range", op.Label, op.Node)
		}
		if op.Kind == OpRead && !op.Check {
			t.Errorf("%s: table1 reads are all checked", op.Label)
		}
	}
}

func TestKVOpsDeterministicAndBalanced(t *testing.T) {
	const nodes = 4
	a := KVOps(nodes, 7)
	b := KVOps(nodes, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("KVOps is not deterministic for a fixed seed")
	}
	if c := KVOps(nodes, 8); reflect.DeepEqual(a, c) {
		t.Fatal("KVOps ignores the seed")
	}

	if got := Pages(a, vm.PageSize); got != kvPages {
		t.Fatalf("Pages = %d, want %d", got, kvPages)
	}

	// Structural rules: every node issues ops; locks balance with unlocks
	// on the same page range, never nested per node; reads are checked.
	perNode := make([]int, nodes)
	locked := make([]bool, nodes)
	for _, op := range a {
		perNode[op.Node]++
		switch op.Kind {
		case OpLock:
			if locked[op.Node] {
				t.Fatalf("%s: nested lock", op.Label)
			}
			if op.Hi != op.Lo+1 {
				t.Fatalf("%s: kv locks one page, got [%d,%d)", op.Label, op.Lo, op.Hi)
			}
			locked[op.Node] = true
		case OpUnlock:
			if !locked[op.Node] {
				t.Fatalf("%s: unlock without lock", op.Label)
			}
			locked[op.Node] = false
		case OpRead:
			if !op.Check {
				t.Errorf("%s: kv gets are all checked", op.Label)
			}
		}
	}
	for n, held := range locked {
		if held {
			t.Errorf("node %d ends the stream holding a lock", n)
		}
	}
	for n, c := range perNode {
		if c < kvOpsPerNode {
			t.Errorf("node %d issued %d ops, want >= %d", n, c, kvOpsPerNode)
		}
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpRead: "read", OpWrite: "write", OpLock: "lock", OpUnlock: "unlock",
	} {
		if got := k.String(); got != want {
			t.Errorf("OpKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
