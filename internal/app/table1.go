package app

import (
	"fmt"

	"asvm/internal/vm"
)

// The Table-1-style walk the netdemo runs: for each of a few pages, a
// first-touch write at one node (zero-fill fault at the home), a read on
// every other node (read faults, building up a reader list), a write at
// the last node (ownership movement plus an invalidation round over the
// remaining readers), and a re-read at node 0 (read fault from the new
// owner). Every fault class in the paper's microbenchmark appears, on
// every participating node. The stream is seed-independent: it is a fixed
// walk, not a sampled one.

const table1Pages = 4

func init() {
	Register(Workload{
		Name:  "table1",
		Pages: func(nodes int) int64 { return table1Pages },
		Ops:   func(nodes int, seed uint64) []Op { return table1Ops(nodes) },
	})
}

func table1Ops(nodes int) []Op {
	var ops []Op
	writer := 1 % nodes
	far := nodes - 1
	for i := 0; i < table1Pages; i++ {
		addr := int64(i*vm.PageSize + 8)
		v := uint64(1000*(i+1) + 1)
		ops = append(ops, Op{
			Label: fmt.Sprintf("p%d first write @n%d (zero-fill)", i, writer),
			Node:  writer, Kind: OpWrite, Addr: addr, Val: v})
		for j := 0; j < nodes; j++ {
			if j == writer {
				continue
			}
			ops = append(ops, Op{
				Label: fmt.Sprintf("p%d remote read @n%d (read fault)", i, j),
				Node:  j, Kind: OpRead, Addr: addr, Want: v, Check: true})
		}
		ops = append(ops,
			Op{Label: fmt.Sprintf("p%d remote write @n%d (invalidate)", i, far),
				Node: far, Kind: OpWrite, Addr: addr, Val: v + 1},
			Op{Label: fmt.Sprintf("p%d re-read @n%d (read fault)", i, 0),
				Node: 0, Kind: OpRead, Addr: addr, Want: v + 1, Check: true},
		)
	}
	return ops
}
