// Package app is the portable application layer: one workload API that
// runs identically on the deterministic simulator and on the real TCP
// mesh. Workloads program against Host (shared-memory operations bound to
// one node) and Env (a sequential op-stream executor); the two backends —
// app/simhost over machine+vm+sim, app/dsmhost over internal/dsm — supply
// the implementations. The thin-API-over-interchangeable-transports shape
// follows the user-level DSM systems of the era (Ramesh & Varadarajan):
// the application never names the backend, so the same code measures
// modelled 1996 Paragon costs and real wire time.
package app

import (
	"errors"
	"time"
)

// ErrUnsupported is returned by Host methods a backend cannot provide
// (e.g. barriers or copy-inherit forks on the one-region real mesh).
// Portable op-stream workloads restrict themselves to the subset every
// backend implements: Open/Close/Read/Write/Lock/Unlock.
var ErrUnsupported = errors.New("app: operation not supported by this host")

// Host is one node's view of the shared-memory system. Objects are dense
// indices into the world's object table (a single shared region is object
// 0); offsets are byte offsets from the object's start. On the simulator
// every call runs in virtual time on the calling proc's node; on the real
// mesh it runs on the wall clock against the node's daemon.
type Host interface {
	// NodeID is the node this host is bound to; NumNodes the mesh size.
	NodeID() int
	NumNodes() int

	// On returns a host bound to another node but the same thread of
	// control — driver-style workloads (the Table 1 microbenchmarks)
	// issue a sequential op stream across many nodes from one thread.
	On(node int) Host

	// Open attaches this node to an object; Close detaches it. On
	// backends that map every object up front both are free — they gate
	// which objects the workload may touch, mirroring tenant churn.
	Open(obj int) error
	Close(obj int) error

	// Read faults the datum's page in for reading and returns the value
	// (zero when the backend does not track data contents). Write faults
	// the page for writing and stores the value (the store is skipped
	// when data is untracked — the fault is the measured event).
	Read(obj int, off int64) (uint64, error)
	Write(obj int, off int64, val uint64) error

	// Lock acquires object pages [lo, hi) for exclusive use (range locks
	// ride the ownership protocol); Unlock releases them.
	Lock(obj int, lo, hi int64) error
	Unlock(obj int, lo, hi int64) error

	// Fork copies this host's task to another node under the system's
	// copy-inheritance semantics and returns a host bound to the child
	// (the Figure 11 fork chains). Real-mesh hosts return ErrUnsupported.
	Fork(node int, name string) (Host, error)

	// Barrier synchronizes one thread per node across the whole mesh;
	// id names the barrier (stable across calls). Real-mesh hosts return
	// ErrUnsupported: op-stream workloads are sequential by construction.
	Barrier(id int) error

	// Now is the host clock — virtual time on the simulator, wall time on
	// the mesh. Sleep models local computation between memory accesses.
	Now() time.Duration
	Sleep(d time.Duration)
}
