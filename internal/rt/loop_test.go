package rt

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"asvm/internal/sim"
)

// A timer scheduled through the engine must fire on the wall clock, not
// instantly and not never.
func TestLoopFiresTimersOnWallClock(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLoop(eng)
	l.Start(context.Background())
	defer l.Stop()

	fired := make(chan time.Duration, 1)
	wallStart := time.Now()
	l.Inject(func() {
		eng.Schedule(30*time.Millisecond, func() {
			fired <- time.Since(wallStart)
		})
	})
	select {
	case took := <-fired:
		if took < 25*time.Millisecond {
			t.Fatalf("timer fired after %v wall time, want >= ~30ms", took)
		}
		if took > 2*time.Second {
			t.Fatalf("timer took %v, far beyond its 30ms deadline", took)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
}

// Procs — the coroutine layer every workload is written in — must run to
// completion under the wall-clock loop, including virtual sleeps.
func TestLoopRunsProcs(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLoop(eng)
	l.Start(context.Background())
	defer l.Stop()

	done := make(chan sim.Time, 1)
	l.Inject(func() {
		eng.Spawn("worker", func(p *sim.Proc) {
			p.Sleep(5 * time.Millisecond)
			p.Sleep(5 * time.Millisecond)
			done <- p.Now()
		})
	})
	select {
	case now := <-done:
		if now < 10*time.Millisecond {
			t.Fatalf("proc finished at virtual t=%v, want >= 10ms", now)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("proc never finished")
	}
}

// Injections from many goroutines must all execute, and Call must observe
// engine state coherently.
func TestLoopInjectConcurrent(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLoop(eng)
	l.Start(context.Background())
	defer l.Stop()

	const n = 200
	var ran atomic.Int64
	for i := 0; i < n; i++ {
		go l.Inject(func() { ran.Add(1) })
	}
	deadline := time.Now().Add(5 * time.Second)
	for ran.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d injections ran", ran.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}

	var pending int
	if !l.Call(func() { pending = eng.Pending() }) {
		t.Fatal("Call failed on a live loop")
	}
	if pending != 0 {
		t.Fatalf("engine has %d pending events after quiesce", pending)
	}
}

// Stop must terminate the loop goroutine and make later Calls fail
// cleanly instead of hanging.
func TestLoopStop(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLoop(eng)
	l.Start(context.Background())
	l.Stop()
	if l.Call(func() {}) {
		t.Fatal("Call succeeded after Stop")
	}
}
