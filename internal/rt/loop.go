// Package rt is the runtime seam between the deterministic simulator and
// real wall-clock execution. The whole protocol stack — vm kernels, the
// ASVM state machines, the reliability layer's RTO/backoff timers — is
// written against sim.Engine: single-threaded event dispatch over a
// virtual clock. A Loop re-hosts that engine on the wall clock without
// changing a line of protocol code: virtual time is mapped 1:1 onto wall
// time since the loop started, events run when the wall clock catches up
// to their virtual timestamp, and external goroutines (socket readers,
// control servers) hand work to the engine through a thread-safe
// injection queue instead of touching it directly.
//
// The invariant the seam preserves is the engine's own: everything that
// touches engine state — events, procs, protocol handlers, injected
// closures — executes on the loop goroutine, mutually exclusively. The
// rest of the process only ever calls Inject/Call, so the protocol core
// remains as single-threaded (and race-free) live as it is simulated.
package rt

import (
	"context"
	"sync"
	"time"

	"asvm/internal/sim"
)

// Loop drives a serial sim.Engine against the wall clock.
type Loop struct {
	eng   *sim.Engine
	start time.Time

	mu  sync.Mutex
	inj []func()

	wake   chan struct{}
	done   chan struct{}
	cancel context.CancelFunc

	startOnce sync.Once
	stopOnce  sync.Once
}

// NewLoop wraps eng. The engine must be serial (the wall-clock loop has no
// use for event lanes: real concurrency lives in the sockets, not the
// dispatcher) and must not be driven by anyone else once the loop starts.
func NewLoop(eng *sim.Engine) *Loop {
	if eng.Lanes() > 1 {
		panic("rt: wall-clock loop requires a serial engine")
	}
	return &Loop{
		eng:  eng,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
}

// Engine returns the wrapped engine. Callers outside the loop goroutine
// must not touch it directly — go through Inject or Call.
func (l *Loop) Engine() *sim.Engine { return l.eng }

// Start launches the loop goroutine. The loop runs until ctx is cancelled
// or Stop is called. Virtual time zero is the moment Start is called.
func (l *Loop) Start(ctx context.Context) {
	l.startOnce.Do(func() {
		ctx, l.cancel = context.WithCancel(ctx)
		l.start = time.Now()
		go l.run(ctx)
	})
}

// Stop cancels the loop and waits for the loop goroutine to exit.
// Injections queued after Stop are never executed.
func (l *Loop) Stop() {
	l.stopOnce.Do(func() {
		if l.cancel != nil {
			l.cancel()
		}
	})
	if l.cancel != nil {
		<-l.done
	}
}

// Inject queues fn to run on the loop goroutine at the current virtual
// instant, after events already due. It is safe from any goroutine and
// never blocks; this is how socket readers deliver messages and control
// servers start operations. Injections are executed in arrival order.
func (l *Loop) Inject(fn func()) {
	l.mu.Lock()
	l.inj = append(l.inj, fn)
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// Call runs fn on the loop goroutine and waits for it to finish — the
// synchronous flavour of Inject, for reading engine or protocol state
// from outside. Returns false (without running fn) if the loop has
// stopped.
func (l *Loop) Call(fn func()) bool {
	ran := make(chan struct{})
	l.Inject(func() {
		fn()
		close(ran)
	})
	select {
	case <-ran:
		return true
	case <-l.done:
		// The loop may have executed fn on its final drain; report
		// honestly either way.
		select {
		case <-ran:
			return true
		default:
			return false
		}
	}
}

// Elapsed returns the wall time since the loop started — the wall-clock
// reading of the engine's virtual "now".
func (l *Loop) Elapsed() time.Duration { return time.Since(l.start) }

// maxIdleWait bounds how long the loop sleeps with no queued events: a
// periodic wake costs nothing and guards against a missed signal ever
// stalling delivery.
const maxIdleWait = 250 * time.Millisecond

func (l *Loop) run(ctx context.Context) {
	defer close(l.done)
	timer := time.NewTimer(maxIdleWait)
	defer timer.Stop()
	for {
		// Everything injected so far runs first, in arrival order, at the
		// current virtual instant (handlers typically Send or Spawn, which
		// schedule further events).
		l.mu.Lock()
		fns := l.inj
		l.inj = nil
		l.mu.Unlock()
		for _, fn := range fns {
			fn()
		}

		// Advance the virtual clock to the wall clock and run everything
		// due. The nil-fn anchor pins now == elapsed exactly even when the
		// queue is empty, so relative timers armed by injected work are
		// measured from the true wall instant.
		elapsed := time.Since(l.start)
		l.eng.ScheduleAt(elapsed, nil)
		l.eng.RunUntil(elapsed)

		// Sleep until the next timer is due, an injection arrives, or the
		// context ends.
		wait := maxIdleWait
		if at, ok := l.eng.NextEventAt(); ok {
			if w := at - time.Since(l.start); w < wait {
				wait = w
			}
			if wait < 0 {
				wait = 0
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-ctx.Done():
			return
		case <-l.wake:
		case <-timer.C:
		}
	}
}
