package exp

import (
	"fmt"
	"io"
	"time"

	"asvm/internal/asvm"
	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

// This file implements the ablation experiments A1-A3 (DESIGN.md §4):
// design choices the paper calls out, isolated and measured.

// forwardingVariant names one redirector configuration (paper §3.4: each
// of dynamic/static forwarding can be disabled per memory object).
type forwardingVariant struct {
	Name    string
	Dynamic bool
	Static  bool
}

func forwardingVariants() []forwardingVariant {
	return []forwardingVariant{
		{"dynamic+static+global", true, true},
		{"static+global (Li fixed-distributed)", false, true},
		{"dynamic+global", true, false},
		{"global only", false, false},
	}
}

// migrationWorkload makes ownership of a hot page rotate through all
// nodes `rounds` times, returning the mean per-handoff latency. This is
// the access pattern where forwarding strategy matters most: hints go
// stale on every handoff.
func migrationWorkload(cfg asvm.Config, nodes, rounds int, seed uint64) (time.Duration, error) {
	p := machine.DefaultParams(nodes)
	p.System = machine.SysASVM
	p.ASVM = cfg
	p.Seed = seed
	c := machine.New(p)
	all := make([]int, nodes)
	for i := range all {
		all[i] = i
	}
	r := c.NewSharedRegion("mig", 4, all)
	tasks := make([]*vm.Task, nodes)
	for i := range all {
		t, err := c.TaskOn(i, "t", r, 0)
		if err != nil {
			return 0, err
		}
		tasks[i] = t
	}
	var total time.Duration
	var benchErr error
	handoffs := 0
	c.Spawn("bench", func(p *sim.Proc) {
		for round := 0; round < rounds; round++ {
			for n := 0; n < nodes; n++ {
				t0 := p.Now()
				if _, err := tasks[n].Touch(p, 0, vm.ProtWrite); err != nil {
					benchErr = err
					return
				}
				total += p.Now() - t0
				handoffs++
			}
		}
	})
	c.Run()
	if benchErr != nil {
		return 0, benchErr
	}
	if handoffs == 0 {
		return 0, fmt.Errorf("exp: no handoffs measured")
	}
	return total / time.Duration(handoffs), nil
}

// AblationForwarding (A1) compares the forwarding strategies on the
// ownership-migration workload. Each variant is an independent cell.
func AblationForwarding(w io.Writer, nodes, rounds int, seed uint64, workers int) error {
	variants := forwardingVariants()
	lats, err := RunCells(workers, len(variants), func(i int) (time.Duration, error) {
		v := variants[i]
		cfg := asvm.DefaultConfig()
		cfg.DynamicForwarding = v.Dynamic
		cfg.StaticForwarding = v.Static
		lat, err := migrationWorkload(cfg, nodes, rounds, seed)
		if err != nil {
			return 0, fmt.Errorf("A1 %s: %w", v.Name, err)
		}
		return lat, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ablation A1: forwarding strategy (hot page migrating across %d nodes, mean handoff ms)\n", nodes)
	for i, v := range variants {
		fmt.Fprintf(w, "  %-40s %8s ms\n", v.Name, ms(lats[i]))
	}
	return nil
}

// AblationTransport (A2) runs the Table 1 basic faults with the ASVM
// protocol carried over NORMA-IPC instead of the STS, quantifying the
// paper's "NORMA IPC is responsible for about 90 percent of the latency"
// claim.
func AblationTransport(w io.Writer, seed uint64, workers int) error {
	lat := func(overNorma bool) (time.Duration, error) {
		p := machine.DefaultParams(6)
		p.System = machine.SysASVM
		p.ASVMOverNorma = overNorma
		p.TrackData = true
		p.Seed = seed
		c := machine.New(p)
		r := c.NewSharedRegion("a2", 4, []int{0, 1, 2, 3, 4, 5})
		writer, err := c.TaskOn(1, "w", r, 0)
		if err != nil {
			return 0, err
		}
		reader, err := c.TaskOn(4, "r", r, 0)
		if err != nil {
			return 0, err
		}
		var d time.Duration
		var benchErr error
		c.Spawn("bench", func(p *sim.Proc) {
			if err := writer.WriteU64(p, 0, 1); err != nil {
				benchErr = err
				return
			}
			t0 := p.Now()
			if _, err := reader.ReadU64(p, 0); err != nil {
				benchErr = err
				return
			}
			d = p.Now() - t0
		})
		c.Run()
		if benchErr != nil {
			return 0, benchErr
		}
		return d, nil
	}
	names := []string{"sts", "norma"}
	res, err := RunCells(workers, 2, func(i int) (time.Duration, error) {
		d, err := lat(i == 1)
		if err != nil {
			return 0, fmt.Errorf("A2 %s: %w", names[i], err)
		}
		return d, nil
	})
	if err != nil {
		return err
	}
	sts, nrm := res[0], res[1]
	fmt.Fprintln(w, "Ablation A2: ASVM protocol over STS vs. NORMA-IPC (read fault, ms)")
	fmt.Fprintf(w, "  over STS:   %8s ms\n", ms(sts))
	fmt.Fprintf(w, "  over NORMA: %8s ms  (%.1fx; transport share of the NORMA fault: %.0f%%)\n",
		ms(nrm), float64(nrm)/float64(sts), 100*float64(nrm-sts)/float64(nrm))
	return nil
}

// AblationInternodePaging (A3) measures a memory-pressure sweep with and
// without internode paging: without it, every eviction is a disk pageout.
func AblationInternodePaging(w io.Writer, seed uint64, workers int) error {
	run := func(disable bool) (time.Duration, uint64, error) {
		p := machine.DefaultParams(8)
		p.System = machine.SysASVM
		p.MemMB = 8 // 1 MB user memory per node = 128 pages
		p.ASVM.DisableInternodePaging = disable
		p.Seed = seed
		c := machine.New(p)
		all := []int{0, 1, 2, 3, 4, 5, 6, 7}
		r := c.NewSharedRegion("a3", 384, all)
		task, err := c.TaskOn(1, "t", r, 0)
		if err != nil {
			return 0, 0, err
		}
		var d time.Duration
		var benchErr error
		c.Spawn("bench", func(p *sim.Proc) {
			t0 := p.Now()
			for pass := 0; pass < 2; pass++ {
				for i := 0; i < 384; i++ {
					if _, err := task.Touch(p, vm.Addr(i*vm.PageSize), vm.ProtWrite); err != nil {
						benchErr = err
						return
					}
				}
			}
			d = p.Now() - t0
		})
		c.Run()
		if benchErr != nil {
			return 0, 0, benchErr
		}
		return d, c.HW[0].Disk.Writes, nil
	}
	type result struct {
		d    time.Duration
		disk uint64
	}
	names := []string{"on", "off"}
	res, err := RunCells(workers, 2, func(i int) (result, error) {
		d, disk, err := run(i == 1)
		if err != nil {
			return result{}, fmt.Errorf("A3 %s: %w", names[i], err)
		}
		return result{d, disk}, nil
	})
	if err != nil {
		return err
	}
	on, diskOn := res[0].d, res[0].disk
	off, diskOff := res[1].d, res[1].disk
	fmt.Fprintln(w, "Ablation A3: internode paging on/off (one node sweeps 3x its memory; others idle)")
	fmt.Fprintf(w, "  internode paging ON:  %8.1f ms, %4d disk pageouts\n",
		float64(on)/float64(time.Millisecond), diskOn)
	fmt.Fprintf(w, "  internode paging OFF: %8.1f ms, %4d disk pageouts (%.1fx slower)\n",
		float64(off)/float64(time.Millisecond), diskOff, float64(off)/float64(on))
	return nil
}

// AblationChainThreads (A4) demonstrates the copy-pager thread hazard the
// paper's asynchronous design eliminates: every in-flight XMM chain fault
// holds a kernel thread on every node it crosses, so concurrent faults
// serialize on a small pool — while ASVM's asynchronous state transitions
// hold no threads at all.
func AblationChainThreads(w io.Writer, seed uint64, workers int) error {
	pools := []int{64, 2, 1}
	lats, err := RunCells(workers, len(pools), func(i int) (time.Duration, error) {
		lat, err := chainWithThreads(pools[i], seed)
		if err != nil {
			return 0, fmt.Errorf("A4 threads=%d: %w", pools[i], err)
		}
		return lat, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation A4: XMM copy-pager thread pool vs. 8 concurrent chain faults (total ms, chain of 6)")
	for i, threads := range pools {
		fmt.Fprintf(w, "  XMM, %2d copy threads/node: %8s ms\n", threads, ms(lats[i]))
	}
	return nil
}

func chainWithThreads(threads int, seed uint64) (time.Duration, error) {
	const chain = 6
	p := machine.DefaultParams(chain + 1)
	p.System = machine.SysXMM
	p.XMMCopyThreads = threads
	p.TrackData = true
	p.Seed = seed
	c := machine.New(p)
	parent := c.Kerns[0].NewTask("parent")
	region := c.Kerns[0].NewAnonymous(8)
	if _, err := parent.Map.MapObject(0, region, 0, 8, vm.ProtWrite, vm.InheritCopy); err != nil {
		return 0, err
	}
	var mean time.Duration
	var benchErr error
	c.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			if err := parent.WriteU64(p, vm.Addr(i*vm.PageSize), uint64(i)); err != nil {
				benchErr = err
				return
			}
		}
		cur := parent
		for i := 1; i <= chain; i++ {
			child, err := c.RemoteFork(cur, i, "child")
			if err != nil {
				benchErr = err
				return
			}
			cur = child
		}
		// All pages faulted concurrently: each in-flight fault pins one
		// copy-pager thread per chain node until it resolves, so a small
		// pool serializes the chains.
		t0 := p.Now()
		futs := make([]*sim.Future, 8)
		for i := 0; i < 8; i++ {
			i := i
			f := sim.NewFuture(c.Eng)
			futs[i] = f
			c.Spawn(fmt.Sprintf("faulter%d", i), func(fp *sim.Proc) {
				if _, err := cur.ReadU64(fp, vm.Addr(i*vm.PageSize)); err != nil {
					benchErr = err
				}
				f.Set(nil)
			})
		}
		sim.Join(p, futs...)
		mean = p.Now() - t0
	})
	c.Run()
	if benchErr != nil {
		return 0, benchErr
	}
	return mean, nil
}
