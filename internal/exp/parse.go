package exp

import (
	"fmt"
	"strings"
)

// expNames is the closed set of -exp selectors asvmbench accepts, in the
// order the experiments run. "all" runs the paper-reproduction set (chaos
// and crash stay opt-in; see cmd/asvmbench).
var expNames = []string{
	"table1", "fig10", "fig11", "table2", "table3", "dist", "ablations", "chaos", "crash", "scale", "kv", "all",
}

// ExpNames returns the valid -exp selectors in run order.
func ExpNames() []string {
	out := make([]string, len(expNames))
	copy(out, expNames)
	return out
}

// ParseExp validates an -exp selector. It returns the canonical name, or an
// error that lists the valid set so the CLI message stays in sync with the
// experiments that actually exist.
func ParseExp(name string) (string, error) {
	for _, n := range expNames {
		if name == n {
			return n, nil
		}
	}
	return "", fmt.Errorf("unknown experiment %q (want %s)", name, strings.Join(expNames, "|"))
}
