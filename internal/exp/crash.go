package exp

import (
	"fmt"
	"io"
	"time"

	"asvm/internal/workload"
)

// This file is the crash sweep: the crash-churn workload crossed over
// crashed-node counts and message-drop rates, with a restart column. Every
// cell must complete with zero panics, pass the Down-aware global
// invariants on the survivors, and report its degradation explicitly —
// crash-stop loses work by design, and the sweep quantifies exactly how
// much instead of hiding it.

// CrashCounts is the crashed-node axis of the sweep.
var CrashCounts = []int{0, 1, 2}

// CrashDropRates is the message-drop axis: a clean wire, and 1% drop so
// crashes overlap retransmission recovery.
var CrashDropRates = []float64{0, 0.01}

// CrashCell is one sweep point.
type CrashCell struct {
	Crashed int
	Restart bool
	Rate    float64
}

// CrashCells builds the sweep grid: every crashed count crossed with every
// drop rate (permanent crashes), plus restart variants of the 1-crash
// column.
func CrashCells() []CrashCell {
	var cells []CrashCell
	for _, k := range CrashCounts {
		for _, rate := range CrashDropRates {
			cells = append(cells, CrashCell{Crashed: k, Rate: rate})
		}
	}
	for _, rate := range CrashDropRates {
		cells = append(cells, CrashCell{Crashed: 1, Restart: true, Rate: rate})
	}
	return cells
}

// CrashConfigFor translates one cell into a workload config.
func CrashConfigFor(cell CrashCell, seed uint64, quick bool) workload.CrashConfig {
	nodes := 8
	if quick {
		nodes = 6
	}
	cfg := workload.DefaultCrash(nodes, cell.Crashed, seed)
	if quick {
		cfg.Rounds = 80
	}
	if cell.Restart {
		cfg.RestartAfter = 6 * time.Millisecond
	}
	return cfg
}

// RunCrashCells executes the sweep grid and returns per-cell results,
// deterministic for a given seed regardless of the worker count.
func RunCrashCells(cells []CrashCell, seed uint64, workers int, quick bool) ([]workload.ChaosResult, error) {
	return RunCells(workers, len(cells), func(i int) (workload.ChaosResult, error) {
		cell := cells[i]
		res, err := workload.ChaosCrash(CrashConfigFor(cell, seed, quick), ChaosPlanFor(cell.Rate))
		if err != nil {
			return workload.ChaosResult{}, fmt.Errorf("crash sweep crashed=%d restart=%v drop=%.2f%%: %w",
				cell.Crashed, cell.Restart, cell.Rate*100, err)
		}
		return res, nil
	})
}

// Crash runs the crash sweep and renders the degradation report.
func Crash(w io.Writer, seed uint64, workers int, quick bool) error {
	cells := CrashCells()
	results, err := RunCrashCells(cells, seed, workers, quick)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "Crash sweep: crash-stop degradation of the crash-churn workload")
	fmt.Fprintln(w, "(every cell drained and invariant-checked on the survivors; ops = completed operations)")
	fmt.Fprintf(w, "%8s %8s %7s %8s %8s %8s %8s %8s %8s %8s %8s %8s\n",
		"crashed", "restart", "drop", "ops", "vs 0", "aborted", "redrive", "ownlost", "pglost", "cpdrop", "hintevt", "ringsc")
	var base float64
	for i, cell := range cells {
		r := results[i]
		if cell.Crashed == 0 && !cell.Restart && cell.Rate == 0 {
			base = r.Metric
		}
		delta := "-"
		if base > 0 && !(cell.Crashed == 0 && cell.Rate == 0) {
			delta = fmt.Sprintf("%+.1f%%", (r.Metric-base)/base*100)
		}
		fmt.Fprintf(w, "%8d %8v %6.2f%% %8.0f %8s %8d %8d %8d %8d %8d %8d %8d\n",
			cell.Crashed, cell.Restart, cell.Rate*100, r.Metric, delta,
			r.FaultsAborted, r.FaultRedrives, r.OwnershipLost, r.PagesLost,
			r.CopiesDropped, r.HintEvictions, r.RingScanHops)
	}
	return nil
}
