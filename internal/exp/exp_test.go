package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestFitLine(t *testing.T) {
	// y = 3 + 2x
	lb, la := fitLine([]int{1, 2, 3, 4}, []float64{5, 7, 9, 11})
	if lb < 2.99 || lb > 3.01 || la < 1.99 || la > 2.01 {
		t.Fatalf("fit = %v + %v x, want 3 + 2x", lb, la)
	}
	lb, la = fitLine([]int{5}, []float64{7})
	if lb != 7 || la != 0 {
		t.Fatalf("single point fit = %v/%v", lb, la)
	}
	lb, la = fitLine(nil, nil)
	if lb != 0 || la != 0 {
		t.Fatalf("empty fit = %v/%v", lb, la)
	}
}

func TestPaperReferenceTablesComplete(t *testing.T) {
	if len(Table1Paper) != 2 {
		t.Fatal("Table1Paper missing a system")
	}
	for sys, vals := range Table1Paper {
		if len(vals) != 7 {
			t.Fatalf("%v: %d Table 1 rows, want 7", sys, len(vals))
		}
	}
	for series, vals := range Table2Paper {
		for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
			if vals[n] == 0 {
				t.Fatalf("Table2Paper[%s][%d] missing", series, n)
			}
		}
	}
	for sys, sizes := range Table3Paper {
		for _, cells := range []int{64000, 256000, 1024000} {
			if len(sizes[cells]) == 0 {
				t.Fatalf("Table3Paper[%v][%d] missing", sys, cells)
			}
		}
	}
}

func TestFigure11SmallSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure11(&buf, []int{1, 2}, 1, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 11") || !strings.Contains(out, "fit: lb=") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestTable2SmallSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(&buf, []int{1, 2}, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ASVM write") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

func TestTable3TinySweep(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(&buf, []int{64000}, []int{1, 2}, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ASVM 64000") || !strings.Contains(out, "XMM 64000") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestTable3MarksInfeasible(t *testing.T) {
	var buf bytes.Buffer
	// 1024000 cells on 2 nodes: infeasible, must print ** without running.
	if err := Table3(&buf, []int{1024000}, []int{2}, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "**") {
		t.Fatalf("infeasible run not marked:\n%s", buf.String())
	}
}

func TestAblationForwardingRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationForwarding(&buf, 4, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, v := range forwardingVariants() {
		if !strings.Contains(out, v.Name) {
			t.Fatalf("missing variant %q:\n%s", v.Name, out)
		}
	}
}

func TestAblationTransportShowsNormaOverhead(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationTransport(&buf, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "over NORMA") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

func TestAblationInternodePagingRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationInternodePaging(&buf, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "internode paging ON") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

func TestRenderChart(t *testing.T) {
	var buf bytes.Buffer
	RenderChart(&buf, "demo", "x", "y", []int{1, 2, 4}, []Series{
		{Name: "up", Marker: 'u', Ys: []float64{1, 2, 4}},
		{Name: "down", Marker: 'd', Ys: []float64{4, 2, 1}},
	}, false)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "u = up") {
		t.Fatalf("chart missing parts:\n%s", out)
	}
	if !strings.Contains(out, "u") || !strings.Contains(out, "d") {
		t.Fatal("markers not plotted")
	}
	// Log scale with zero/negative values must not panic.
	RenderChart(&buf, "log", "x", "y", []int{1, 2}, []Series{
		{Name: "s", Marker: 's', Ys: []float64{0, 10}},
	}, true)
	// Single x value must not panic.
	RenderChart(&buf, "one", "x", "y", []int{1}, []Series{
		{Name: "s", Marker: 's', Ys: []float64{5}},
	}, false)
}

func TestDistributionRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Distribution(&buf, 4, 8, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "P99") || !strings.Contains(out, "ASVM") || !strings.Contains(out, "XMM") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}
