package exp

import (
	"fmt"
	"io"

	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

// Distribution measures the *tail* of fault latency under contention — a
// view the paper's mean-based tables cannot show. All nodes fault pages of
// a shared region concurrently for several rounds; every individual fault
// is sampled and the percentiles reported. The centralized manager's queue
// shows up as a heavy tail long before it dominates the mean.
func Distribution(w io.Writer, nodes, pages, rounds int, seed uint64, workers int) error {
	systems := []machine.System{machine.SysASVM, machine.SysXMM}
	series, err := RunCells(workers, len(systems), func(i int) (*sim.Series, error) {
		s, _, err := distRun(systems[i], nodes, pages, rounds, seed)
		if err != nil {
			return nil, fmt.Errorf("dist %v: %w", systems[i], err)
		}
		return s, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fault latency distribution under contention (%d nodes, %d pages, %d rounds)\n",
		nodes, pages, rounds)
	fmt.Fprintf(w, "%-6s %10s %10s %10s %10s %10s\n", "system", "P50", "P90", "P99", "max", "mean")
	for i, sys := range systems {
		s := series[i]
		fmt.Fprintf(w, "%-6v %10s %10s %10s %10s %10s\n", sys,
			ms(s.Percentile(50)), ms(s.Percentile(90)), ms(s.Percentile(99)),
			ms(s.Max()), ms(s.Mean()))
	}
	return nil
}

// distRun executes the contention workload and returns the latency samples
// plus the finished cluster (so callers can read engine counters).
func distRun(sys machine.System, nodes, pages, rounds int, seed uint64) (*sim.Series, *machine.Cluster, error) {
	p := machine.DefaultParams(nodes)
	p.System = sys
	p.Seed = seed
	c := machine.New(p)
	all := make([]int, nodes)
	for i := range all {
		all[i] = i
	}
	r := c.NewSharedRegion("dist", vm.PageIdx(pages), all)
	series := sim.NewSeries(sys.String())
	errs := make([]error, nodes)
	rng := sim.NewRNG(seed)
	for n := 0; n < nodes; n++ {
		n := n
		task, err := c.TaskOn(n, "t", r, 0)
		if err != nil {
			return nil, nil, err
		}
		// Per-proc deterministic access order.
		order := rng.Perm(pages)
		c.SpawnOn(n, "dist", func(pr *sim.Proc) {
			for round := 0; round < rounds; round++ {
				for _, pg := range order {
					want := vm.ProtRead
					if (pg+round+n)%3 == 0 {
						want = vm.ProtWrite
					}
					t0 := pr.Now()
					if _, err := task.Touch(pr, vm.Addr(pg*vm.PageSize), want); err != nil {
						errs[n] = err
						return
					}
					if d := pr.Now() - t0; d > 0 {
						series.Add(d)
					}
				}
			}
		})
	}
	c.Run()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	if series.N() == 0 {
		return nil, nil, fmt.Errorf("exp: no faults sampled")
	}
	return series, c, nil
}
