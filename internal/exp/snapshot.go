package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"asvm/internal/machine"
	"asvm/internal/workload"
)

// Snapshot is a machine-readable record of one asvmbench run: the real
// wall-clock performance of the simulator plus the simulated metrics of the
// main paper artifacts. Snapshots are written by `asvmbench -json out.json`
// and committed as BENCH_*.json files, so the simulator's perf trajectory
// across PRs is tracked next to the reproduction quality. The simulated
// metrics are deterministic given the seed; the wall-clock fields are not
// (they measure this machine, this build).
type Snapshot struct {
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`

	// Simulator speed: events executed per wall-clock second on a busy
	// 16-node coherence workload (the cost of the reproduction itself),
	// on the serial engine and on the parallel lane engine (identical
	// schedule, EngineLanes event lanes).
	EngineEventsPerSec         float64 `json:"engine_events_per_sec"`
	EngineEvents               uint64  `json:"engine_events"`
	EngineEventsPerSecParallel float64 `json:"engine_events_per_sec_parallel"`
	EngineLanes                int     `json:"engine_lanes"`

	// Hot-path allocation guards, allocs per operation (contract: 0).
	EngineAllocsPerOp  float64 `json:"engine_allocs_per_op"`
	MsgPathAllocsPerOp float64 `json:"msgpath_allocs_per_op"`

	// Paper artifacts, in simulated units.
	Table1MS    map[string][]float64 `json:"table1_ms"`    // system -> fault ms per Table 1 scenario
	Table2Nodes []int                `json:"table2_nodes"` // node counts for the Table2MBs columns
	Table2MBs   map[string][]float64 `json:"table2_mbps"`  // series -> MB/s per node count
	Fig11FitMS  map[string][]float64 `json:"fig11_fit_ms"` // system -> [lb, la] of latency = lb + n*la

	// Crash-stop degradation (simulated, deterministic): the quick crash
	// sweep's 1-crashed-node / 1%-drop cell, the sweep's stress point. Ops
	// are completed operations (crash-free cell vs degraded cell); the rest
	// count what the crash cost.
	CrashOpsBaseline float64 `json:"crash_ops_baseline"`
	CrashOpsDegraded float64 `json:"crash_ops_degraded"`
	CrashAborted     int64   `json:"crash_faults_aborted"`
	CrashRedrives    int64   `json:"crash_fault_redrives"`
	CrashOwnLost     int64   `json:"crash_ownership_lost"`
	CrashPagesLost   int64   `json:"crash_pages_lost"`

	// Scale-out sweep (simulated, deterministic): the machine-size ladder's
	// fault latency and ring-fallback profile. One entry per node count; the
	// fallback rate is the fraction of data requests resolved by the global
	// ring scan (the O(n) path the hint caches keep rare).
	ScaleNodes        []int     `json:"scale_nodes"`
	ScaleFaultP50MS   []float64 `json:"scale_fault_p50_ms"`
	ScaleFaultP99MS   []float64 `json:"scale_fault_p99_ms"`
	ScaleFallbackRate []float64 `json:"scale_fallback_rate"`
	ScaleRingScanHops []int64   `json:"scale_ring_scan_hops"`

	// WallSeconds is the wall-clock time each artifact sweep took with the
	// configured worker count.
	WallSeconds map[string]float64 `json:"wall_seconds"`
}

// EngineThroughput runs a busy multi-node coherence workload and reports
// the engine's wall-clock event rate — the single number the engine
// microbenchmarks optimize for, measured on a realistic protocol mix
// instead of an empty callback.
func EngineThroughput(seed uint64) (eventsPerSec float64, events uint64, err error) {
	start := time.Now()
	_, c, err := distRun(machine.SysASVM, 16, 32, 4, seed)
	if err != nil {
		return 0, 0, err
	}
	wall := time.Since(start).Seconds()
	if wall <= 0 {
		wall = 1e-9
	}
	return float64(c.Eng.Executed) / wall, c.Eng.Executed, nil
}

// SnapshotEngineLanes is the lane count the snapshot's parallel engine
// measurement uses (and the default asvmbench -engine=parallel lane count).
const SnapshotEngineLanes = 4

// EngineThroughputParallel is EngineThroughput on the parallel lane engine.
// It temporarily overrides machine.DefaultEngineLanes, so it must not run
// concurrently with cluster construction elsewhere (CollectSnapshot calls
// it before any worker fan-out).
func EngineThroughputParallel(seed uint64, lanes int) (eventsPerSec float64, events uint64, err error) {
	old := machine.DefaultEngineLanes
	machine.DefaultEngineLanes = lanes
	defer func() { machine.DefaultEngineLanes = old }()
	return EngineThroughput(seed)
}

// CollectSnapshot measures the snapshot artifact set. quick shrinks the
// sweeps the same way asvmbench -quick does.
func CollectSnapshot(seed uint64, workers int, quick bool) (*Snapshot, error) {
	nodes := []int{1, 2, 4, 8, 16, 32, 64}
	chains := []int{1, 2, 4, 8, 12, 16}
	if quick {
		nodes = []int{1, 2, 4, 8}
		chains = []int{1, 2, 4}
	}
	snap := &Snapshot{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workers:     workers,
		Seed:        seed,
		Quick:       quick,
		Table1MS:    map[string][]float64{},
		Table2Nodes: nodes,
		Table2MBs:   map[string][]float64{},
		Fig11FitMS:  map[string][]float64{},
		WallSeconds: map[string]float64{},
	}
	timed := func(name string, fn func() error) error {
		t0 := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("snapshot %s: %w", name, err)
		}
		snap.WallSeconds[name] = time.Since(t0).Seconds()
		return nil
	}

	if err := timed("engine", func() error {
		eps, n, err := EngineThroughput(seed)
		if err != nil {
			return err
		}
		snap.EngineEventsPerSec, snap.EngineEvents = eps, n
		peps, pn, err := EngineThroughputParallel(seed, SnapshotEngineLanes)
		if err != nil {
			return err
		}
		if pn != n {
			return fmt.Errorf("snapshot: parallel engine executed %d events, serial %d — schedules diverged", pn, n)
		}
		snap.EngineEventsPerSecParallel = peps
		snap.EngineLanes = SnapshotEngineLanes
		snap.EngineAllocsPerOp = EngineAllocsPerOp()
		snap.MsgPathAllocsPerOp = MsgPathAllocsPerOp()
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("table1", func() error {
		lats, err := Table1Latencies(seed, workers)
		if err != nil {
			return err
		}
		for sys, ds := range lats {
			for _, d := range ds {
				snap.Table1MS[sys.String()] = append(snap.Table1MS[sys.String()],
					float64(d)/float64(time.Millisecond))
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("table2", func() error {
		rates, err := Table2Rates(nodes, seed, workers)
		if err != nil {
			return err
		}
		for series, vs := range rates {
			snap.Table2MBs[series] = vs
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("fig11", func() error {
		systems := []machine.System{machine.SysASVM, machine.SysXMM}
		lats, err := RunCells(workers, 2*len(chains), func(i int) (time.Duration, error) {
			return workload.MeasureChainFault(systems[i%2], chains[i/2], seed)
		})
		if err != nil {
			return err
		}
		for si, sys := range systems {
			ys := make([]float64, len(chains))
			for ci := range chains {
				ys[ci] = float64(lats[2*ci+si]) / float64(time.Millisecond)
			}
			lb, la := fitLine(chains, ys)
			snap.Fig11FitMS[sys.String()] = []float64{lb, la}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("scale", func() error {
		// The machine-size ladder only (the cache-sizing rows are a report
		// detail, not a trajectory worth tracking per PR).
		var ladder []ScaleCell
		for _, cell := range ScaleCells(seed, quick) {
			if cell.DynCacheSize == 0 {
				ladder = append(ladder, cell)
			}
		}
		results, err := RunCells(workers, len(ladder), func(i int) (ScaleResult, error) {
			return RunScaleCell(ladder[i])
		})
		if err != nil {
			return err
		}
		for _, r := range results {
			snap.ScaleNodes = append(snap.ScaleNodes, r.Cell.Nodes)
			snap.ScaleFaultP50MS = append(snap.ScaleFaultP50MS, float64(r.P50)/float64(time.Millisecond))
			snap.ScaleFaultP99MS = append(snap.ScaleFaultP99MS, float64(r.P99)/float64(time.Millisecond))
			snap.ScaleFallbackRate = append(snap.ScaleFallbackRate, r.FallbackRate())
			snap.ScaleRingScanHops = append(snap.ScaleRingScanHops, r.RingScanHops)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("crash", func() error {
		cells := []CrashCell{
			{Crashed: 0, Rate: 0.01},
			{Crashed: 1, Rate: 0.01},
		}
		results, err := RunCrashCells(cells, seed, workers, true)
		if err != nil {
			return err
		}
		snap.CrashOpsBaseline = results[0].Metric
		snap.CrashOpsDegraded = results[1].Metric
		snap.CrashAborted = results[1].FaultsAborted
		snap.CrashRedrives = results[1].FaultRedrives
		snap.CrashOwnLost = results[1].OwnershipLost
		snap.CrashPagesLost = results[1].PagesLost
		return nil
	}); err != nil {
		return nil, err
	}

	return snap, nil
}

// WriteFile writes the snapshot as indented JSON.
func (s *Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
