package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunCells executes n independent experiment cells on a bounded worker pool
// and returns their results indexed by cell — result ordering is by cell
// index, never by completion order, so output assembled from the slice is
// byte-identical no matter how many workers ran.
//
// Every cell in this package is a complete seeded simulation (its own
// engine, cluster and RNGs, sharing no state with any other cell), which is
// what makes fanning them out across cores safe: parallelism changes only
// wall-clock time, not a single simulated metric. workers <= 0 means
// GOMAXPROCS. With one worker the cells run inline on the calling
// goroutine, which keeps stack traces and CPU profiles of a single cell
// easy to read.
//
// The first error by cell index is returned (again independent of worker
// count); the result slice is still returned so callers can inspect the
// cells that did complete.
func RunCells[T any](workers, n int, run func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	if workers == 1 {
		for i := range out {
			out[i], errs[i] = run(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					out[i], errs[i] = run(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
