package exp

import (
	"fmt"
	"io"
	"time"

	"asvm/internal/workload"
	"asvm/internal/xport"
)

// This file is the chaos harness: it re-runs the paper's measurement
// workloads while the transport deterministically drops, duplicates and
// delays messages, and reports how gracefully the protocols degrade. Every
// cell drains its simulation and passes the ASVM global invariants —
// a slower answer is acceptable under faults, a corrupted one is not.

// ChaosRates is the default fault-intensity sweep: the drop probability per
// message. 0 runs the reliability layer with no faults (its pure overhead).
var ChaosRates = []float64{0, 0.001, 0.01}

// ChaosPlanFor derives the full fault plan from a drop rate: duplicates at
// half the drop rate, delays at twice it (delays are the common failure in
// real interconnects), with delays uniform in [200µs, 2ms] — spanning the
// retransmission timeout so some delayed messages race their own retries.
func ChaosPlanFor(rate float64) xport.FaultPlan {
	if rate == 0 {
		return xport.FaultPlan{}
	}
	return xport.FaultPlan{Default: xport.Rates{
		Drop:     rate,
		Dup:      rate / 2,
		Delay:    2 * rate,
		DelayMin: 200 * time.Microsecond,
		DelayMax: 2 * time.Millisecond,
	}}
}

// chaosCell is one (workload, rate) grid point.
type chaosCell struct {
	workload string
	unit     string
	rate     float64
	run      func(plan xport.FaultPlan) (workload.ChaosResult, error)
}

// chaosCells builds the sweep grid: every workload crossed with every rate,
// grouped by workload so each group's zero-rate row is its baseline.
func chaosCells(rates []float64, seed uint64, quick bool) []chaosCell {
	scs := workload.Table1Scenarios()
	fileNodes := 4
	em3d := workload.DefaultEM3D(64000, 4, 3)
	if quick {
		scs = scs[:3]
		fileNodes = 2
		em3d = workload.DefaultEM3D(8000, 2, 2)
		em3d.MemMB = 8 // keep paging pressure despite the small dataset
	}

	var cells []chaosCell
	add := func(name, unit string, run func(plan xport.FaultPlan) (workload.ChaosResult, error)) {
		for _, rate := range rates {
			cells = append(cells, chaosCell{workload: name, unit: unit, rate: rate, run: run})
		}
	}
	for _, sc := range scs {
		sc := sc
		add("fault: "+sc.Name, "ms", func(plan xport.FaultPlan) (workload.ChaosResult, error) {
			return workload.ChaosFault(sc, seed, plan)
		})
	}
	add(fmt.Sprintf("filebench write, %d nodes", fileNodes), "MB/s",
		func(plan xport.FaultPlan) (workload.ChaosResult, error) {
			return workload.ChaosFileWrite(fileNodes, seed, plan)
		})
	add(fmt.Sprintf("filebench read, %d nodes", fileNodes), "MB/s",
		func(plan xport.FaultPlan) (workload.ChaosResult, error) {
			return workload.ChaosFileRead(fileNodes, seed, plan)
		})
	add(fmt.Sprintf("em3d %dc/%dn/%di", em3d.Cells, em3d.Nodes, em3d.Iters), "s",
		func(plan xport.FaultPlan) (workload.ChaosResult, error) {
			return workload.ChaosEM3D(em3d, plan)
		})
	return cells
}

// chaosMetric renders a result's metric in its workload's unit.
func chaosMetric(r workload.ChaosResult, unit string) string {
	switch unit {
	case "ms":
		return fmt.Sprintf("%.2f ms", r.Metric*1e3)
	case "s":
		return fmt.Sprintf("%.2f s", r.Metric)
	default:
		return fmt.Sprintf("%.2f %s", r.Metric, unit)
	}
}

// chaosDelta renders the metric's change against the same workload's
// zero-fault baseline. For latencies (ms, s) positive is slower; for
// throughput (MB/s) the sign is flipped so "+" always means degradation.
func chaosDelta(r, base workload.ChaosResult, unit string) string {
	if base.Metric == 0 {
		return "-"
	}
	pct := (r.Metric - base.Metric) / base.Metric * 100
	if unit == "MB/s" {
		pct = -pct
	}
	return fmt.Sprintf("%+.1f%%", pct)
}

// Chaos runs the degradation sweep: every workload at every fault rate,
// each cell an independent seeded simulation validated by the ASVM global
// invariants after drain. The report shows the workload metric, its
// degradation vs. the zero-fault run, and the fault/recovery counters that
// explain it (retransmissions track drops; suppressed duplicates track
// dups plus retransmissions whose original survived).
func Chaos(w io.Writer, rates []float64, seed uint64, workers int, quick bool) error {
	cells := chaosCells(rates, seed, quick)
	results, err := RunCells(workers, len(cells), func(i int) (workload.ChaosResult, error) {
		c := cells[i]
		res, err := c.run(ChaosPlanFor(c.rate))
		if err != nil {
			return workload.ChaosResult{}, fmt.Errorf("chaos %q drop=%.3f%%: %w", c.workload, c.rate*100, err)
		}
		return res, nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "Chaos sweep: degradation under deterministic message drop/dup/delay")
	fmt.Fprintln(w, "(every cell drained and invariant-checked; drop rate shown, dup = drop/2, delay = 2*drop)")
	fmt.Fprintf(w, "%-42s %8s %12s %8s %8s %6s %6s %6s %7s %7s %7s\n",
		"workload", "drop", "metric", "vs 0", "msgs", "drop", "dup", "delay", "rexmit", "supprs", "ringsc")
	nRates := len(rates)
	for i, c := range cells {
		r := results[i]
		base := results[i-i%nRates] // first rate in this workload's group
		delta := chaosDelta(r, base, c.unit)
		if i%nRates == 0 {
			delta = "-"
		}
		fmt.Fprintf(w, "%-42s %7.2f%% %12s %8s %8d %6d %6d %6d %7d %7d %7d\n",
			c.workload, c.rate*100, chaosMetric(r, c.unit), delta,
			r.Msgs, r.Dropped, r.Duplicated, r.Delayed, r.Retransmits, r.DupsSuppressed,
			r.RingScanHops)
	}
	return nil
}
