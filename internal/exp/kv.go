package exp

import (
	"fmt"
	"io"
	"time"

	"asvm/internal/app"
	"asvm/internal/app/simhost"
)

// The kv experiment runs the portable kv workload (internal/app) on the
// simulator: the same registered op stream the netdemo drives across real
// TCP processes, here under modelled 1996 Paragon costs. Opt-in — never
// part of "all" — because it demonstrates the portable application layer,
// not a table from the paper, so it never lands in results_full.txt.

// kvCellResult is one drained kv cell's simulated metrics. No field is
// wall-clock derived, so a rendered row is byte-identical across worker
// counts and engines.
type kvCellResult struct {
	Nodes int
	Ops   int
	Total time.Duration
	Max   time.Duration
	Ctrs  map[string]int64
}

func runKVCell(nodes int, seed uint64) (kvCellResult, error) {
	wl, ok := app.Lookup("kv")
	if !ok {
		return kvCellResult{}, fmt.Errorf("kv workload not registered")
	}
	ops := wl.Ops(nodes, seed)
	env, err := simhost.NewEnv(nodes, wl.Pages(nodes))
	if err != nil {
		return kvCellResult{}, err
	}
	res, err := app.Run(env, ops)
	if err != nil {
		return kvCellResult{}, err
	}
	out := kvCellResult{Nodes: nodes, Ops: len(ops), Ctrs: res.Counters}
	for _, d := range res.PerOp {
		out.Total += d
		if d > out.Max {
			out.Max = d
		}
	}
	return out, nil
}

// KV runs the kv workload across a small node sweep and renders the
// summary: op counts, virtual latency aggregates, and the protocol
// ledger per cell — the numbers `examples/netdemo -workload kv` prints
// next to its wall-clock measurements.
func KV(w io.Writer, seed uint64, workers int, quick bool) error {
	nodeCounts := []int{2, 3, 4}
	if quick {
		nodeCounts = []int{3}
	}
	results, err := RunCells(workers, len(nodeCounts), func(i int) (kvCellResult, error) {
		res, err := runKVCell(nodeCounts[i], seed)
		if err != nil {
			return kvCellResult{}, fmt.Errorf("kv cell (%d nodes): %w", nodeCounts[i], err)
		}
		return res, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "KV store on the portable application layer (simulated twin of `netdemo -workload kv`)")
	fmt.Fprintln(w, "(per-node client streams over striped keys, checked gets, occasional range-locked puts; latencies virtual)")
	fmt.Fprintf(w, "%6s %5s %9s %9s %7s %7s %7s %6s %8s %6s\n",
		"nodes", "ops", "total", "max", "faults", "inval", "msgs", "nacks", "transit", "hops")
	for _, r := range results {
		fmt.Fprintf(w, "%6d %5d %9s %9s %7d %7d %7d %6d %8d %6d\n",
			r.Nodes, r.Ops, ms(r.Total), ms(r.Max),
			r.Ctrs["faults"], r.Ctrs["invalidations"], r.Ctrs["msgs"], r.Ctrs["nacks"],
			r.Ctrs["proto_transitions"], r.Ctrs["ring_scan_hops"])
	}
	return nil
}
