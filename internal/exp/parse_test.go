package exp

import (
	"strings"
	"testing"
)

func TestParseExpAcceptsEveryListedName(t *testing.T) {
	for _, n := range ExpNames() {
		got, err := ParseExp(n)
		if err != nil {
			t.Errorf("ParseExp(%q): unexpected error %v", n, err)
		}
		if got != n {
			t.Errorf("ParseExp(%q) = %q, want identity", n, got)
		}
	}
}

func TestParseExpRejectsUnknownNames(t *testing.T) {
	for _, bad := range []string{"", "tabel1", "table4", "ALL", "chaos ", "figure10"} {
		got, err := ParseExp(bad)
		if err == nil {
			t.Errorf("ParseExp(%q) = %q, want error", bad, got)
			continue
		}
		// The error must name the valid set: it is the CLI's usage message.
		for _, n := range ExpNames() {
			if !strings.Contains(err.Error(), n) {
				t.Errorf("ParseExp(%q) error %q does not mention %q", bad, err, n)
			}
		}
	}
}

func TestExpNamesIsACopy(t *testing.T) {
	a := ExpNames()
	a[0] = "clobbered"
	if b := ExpNames(); b[0] != "table1" {
		t.Fatalf("ExpNames returns shared backing storage: %v", b)
	}
}
