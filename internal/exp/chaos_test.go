package exp

import (
	"bytes"
	"strings"
	"testing"

	"asvm/internal/workload"
)

// TestChaosSweepCompletes runs the quick chaos grid at the default rates:
// every cell must finish (no deadlock under drops), drain, and pass the
// ASVM global invariants — Chaos returns the first cell error otherwise.
func TestChaosSweepCompletes(t *testing.T) {
	var out bytes.Buffer
	if err := Chaos(&out, ChaosRates, 1, 0, true); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"fault: write fault, 1 read copy",
		"filebench write, 2 nodes",
		"filebench read, 2 nodes",
		"em3d 8000c/2n/2i",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
	if n := strings.Count(s, "fault: "); n != 3*len(ChaosRates) {
		t.Fatalf("want %d fault rows, got %d:\n%s", 3*len(ChaosRates), n, s)
	}
}

// TestChaosRecoversEveryDrop checks the ledger balances on a faulted cell:
// messages are actually being dropped, and the reliability layer retransmits
// at least once per dropped frame (acks can be dropped too, so retransmits
// can exceed drops, and every redundant delivery is suppressed).
func TestChaosRecoversEveryDrop(t *testing.T) {
	res, err := workload.ChaosFileWrite(2, 1, ChaosPlanFor(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatalf("1%% drop plan dropped nothing: %+v", res)
	}
	if res.Retransmits < res.Dropped {
		t.Fatalf("%d drops but only %d retransmits: %+v", res.Dropped, res.Retransmits, res)
	}
	if res.Duplicated > 0 && res.DupsSuppressed == 0 {
		t.Fatalf("transport duplicated %d messages, none suppressed: %+v", res.Duplicated, res)
	}
}

// TestChaosZeroRatePlanInactive pins the contract the determinism argument
// rests on: rate 0 yields an inactive plan, so the zero-fault rows measure
// only the reliability layer's own overhead.
func TestChaosZeroRatePlanInactive(t *testing.T) {
	if ChaosPlanFor(0).Active() {
		t.Fatal("ChaosPlanFor(0) must be inactive")
	}
	if !ChaosPlanFor(0.001).Active() {
		t.Fatal("ChaosPlanFor(0.001) must be active")
	}
}

// TestChaosDeterministicCells re-runs one faulted cell and requires every
// counter — including the fault-injection ones — to come back identical:
// chaos is seeded, not random.
func TestChaosDeterministicCells(t *testing.T) {
	plan := ChaosPlanFor(0.01)
	a, err := workload.ChaosFault(workload.Table1Scenarios()[0], 1, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.ChaosFault(workload.Table1Scenarios()[0], 1, plan)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different chaos:\n a=%+v\n b=%+v", a, b)
	}
	// A different workload seed shifts the fault stream too (the fault RNG
	// is derived from the cluster seed).
	c, err := workload.ChaosFault(workload.Table1Scenarios()[0], 2, plan)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatalf("seeds 1 and 2 produced identical chaos: %+v", a)
	}
}

// TestChaosSerialParallelByteIdentical extends the harness determinism
// regression to the chaos sweep: the rendered report must be byte-identical
// across worker counts.
func TestChaosSerialParallelByteIdentical(t *testing.T) {
	rates := []float64{0, 0.01}
	var serial bytes.Buffer
	if err := Chaos(&serial, rates, 1, 1, true); err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, workers := range []int{2, 8} {
		var parallel bytes.Buffer
		if err := Chaos(&parallel, rates, 1, workers, true); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
			t.Fatalf("workers=%d output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, serial.String(), parallel.String())
		}
	}
}

// TestChaosEM3DUnderFaults exercises the paging-pressure configuration (the
// quick grid's EM3D cell) at the sweep's heaviest rate on its own, so a
// failure here isn't buried in the full grid.
func TestChaosEM3DUnderFaults(t *testing.T) {
	cfg := workload.DefaultEM3D(8000, 2, 2)
	cfg.MemMB = 8
	res, err := workload.ChaosEM3D(cfg, ChaosPlanFor(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metric <= 0 || res.Msgs == 0 {
		t.Fatalf("em3d cell produced no work: %+v", res)
	}
}
