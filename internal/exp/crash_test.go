package exp

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"asvm/internal/workload"
)

// TestCrashSweepQuick runs the full quick grid once and checks the
// degradation contract cell by cell: the crash-free cell is perfectly
// clean, every crashed cell records its executed fates, and nothing
// panics or corrupts survivor state (ChaosCrash invariant-checks each
// drained cluster internally).
func TestCrashSweepQuick(t *testing.T) {
	cells := CrashCells()
	results, err := RunCrashCells(cells, 1, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	var base float64
	for i, cell := range cells {
		r := results[i]
		if cell.Crashed == 0 {
			if cell.Rate == 0 {
				base = r.Metric
				if got := float64(6 * 80); r.Metric != got {
					t.Errorf("crash-free cell completed %v ops, want all %v", r.Metric, got)
				}
			}
			if r.Crashes != 0 || r.Restarts != 0 || r.PeersDowned != 0 ||
				r.FaultsAborted != 0 || r.FaultRedrives != 0 || r.OwnershipLost != 0 ||
				r.PagesLost != 0 || r.CopiesDropped != 0 || r.HintEvictions != 0 {
				t.Errorf("crash-free cell (drop=%v) shows degradation: %+v", cell.Rate, r)
			}
			continue
		}
		if r.Crashes != cell.Crashed {
			t.Errorf("cell %+v: executed %d crashes, want %d", cell, r.Crashes, cell.Crashed)
		}
		wantRestarts := 0
		if cell.Restart {
			wantRestarts = cell.Crashed
		}
		if r.Restarts != wantRestarts {
			t.Errorf("cell %+v: executed %d restarts, want %d", cell, r.Restarts, wantRestarts)
		}
		// PeersDowned counts only organic retransmit-exhaustion verdicts;
		// planned crashes use the immediate MarkPeerDown path, so the
		// evidence of degradation is in the protocol counters instead.
		if r.FaultsAborted+r.FaultRedrives+r.OwnershipLost+r.CopiesDropped+r.HintEvictions == 0 {
			t.Errorf("cell %+v: crashes executed but no degradation recorded: %+v", cell, r)
		}
		if r.Metric >= base {
			t.Errorf("cell %+v: %v ops, expected degradation below crash-free %v", cell, r.Metric, base)
		}
		if r.Metric == 0 {
			t.Errorf("cell %+v: survivors made no progress at all", cell)
		}
	}
}

// TestCrashSweepWorkersDeterministic pins the sweep's ledger and counters
// to be byte-identical regardless of the -workers split.
func TestCrashSweepWorkersDeterministic(t *testing.T) {
	cells := []CrashCell{
		{Crashed: 1, Rate: 0.01},
		{Crashed: 2, Rate: 0},
		{Crashed: 1, Restart: true, Rate: 0.01},
	}
	seq, err := RunCrashCells(cells, 7, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCrashCells(cells, 7, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sweep differs across worker counts:\n workers=1: %+v\n workers=3: %+v", seq, par)
	}
}

// TestCrashReport smoke-tests the rendered table.
func TestCrashReport(t *testing.T) {
	var buf bytes.Buffer
	if err := Crash(&buf, 1, 2, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Crash sweep", "crashed", "ownlost", "vs 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestCrashCellRestartRecovers pins the restart path end to end at the
// workload level: with a restart planned, the crashed node's proc rejoins
// cold and completes additional work, and the run still drains clean.
func TestCrashCellRestartRecovers(t *testing.T) {
	seed := uint64(3)
	cfgPerm := CrashConfigFor(CrashCell{Crashed: 1}, seed, true)
	cfgRest := CrashConfigFor(CrashCell{Crashed: 1, Restart: true}, seed, true)
	perm, err := workload.ChaosCrash(cfgPerm, ChaosPlanFor(0))
	if err != nil {
		t.Fatal(err)
	}
	rest, err := workload.ChaosCrash(cfgRest, ChaosPlanFor(0))
	if err != nil {
		t.Fatal(err)
	}
	if rest.Restarts != 1 || perm.Restarts != 0 {
		t.Fatalf("restarts: perm=%d rest=%d", perm.Restarts, rest.Restarts)
	}
	if rest.Metric <= perm.Metric {
		t.Errorf("restarted cell completed %v ops, permanent %v; rejoin should recover work",
			rest.Metric, perm.Metric)
	}
}
