package exp

import (
	"fmt"
	"io"
	"time"

	"asvm/internal/app"
	"asvm/internal/app/simhost"
	"asvm/internal/asvm"
	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

// This file is the scale-out scenario generator: seeded 64–1024-node cells
// with many concurrent shared objects, zipf-skewed access, per-node
// open/close churn and mixed read/write tenants, run through the machine
// layer (serial or lane-parallel engine — byte-identical either way) with
// per-cell invariant checks and a forwarding-cost ledger. It is the
// workload the O(1) membership work exists for: nothing here may scan a
// node list on the protocol path.

// ScaleCell describes one scale cell: the machine, the object population,
// the access skew, and the churn/tenant knobs. Everything is derived from
// Seed — two runs of the same cell produce identical simulated metrics.
type ScaleCell struct {
	Nodes           int     // machine size
	Objects         int     // concurrent shared objects
	PagesPerObject  int     // pages per object
	OpsPerNode      int     // touches each node performs
	ZipfSkew        float64 // object-popularity exponent (s=1: classic skew)
	ChurnEvery      int     // close+reopen an object every N touches (0: never)
	OpenObjects     int     // objects each node starts with open
	DynCacheSize    int     // dynamic hint cache entries (0: default)
	StaticCacheSize int     // static manager cache entries (0: default)
	HopBound        int     // forwarding hop bound (0: legacy 2*ring+8)
	SamplePages     int     // >0: sampled invariant sweep (big meshes)
	Seed            uint64
}

// ScaleOpKind classifies a generated operation.
type ScaleOpKind uint8

// The generator's op alphabet. Open/Close model a tenant attaching to and
// detaching from an object (mappings are set up front, so they cost
// nothing in simulation — they gate which objects the node may touch);
// Touch is a page access that can fault.
const (
	OpOpen ScaleOpKind = iota
	OpClose
	OpTouch
)

// ScaleOp is one generated operation.
type ScaleOp struct {
	Kind  ScaleOpKind
	Obj   int
	Page  int  // touches only
	Write bool // touches only
}

// scaleSeedSalt spreads per-node generator streams across the RNG space
// (golden-ratio multiplier, the usual hash constant).
const scaleSeedSalt = 0x9E3779B97F4A7C15

// scaleWriteFrac is the per-tenant write mix: node index mod 4 picks the
// tenant class — balanced, read-mostly, write-heavy, read-only.
func scaleWriteFrac(node int) float64 {
	switch node % 4 {
	case 0:
		return 0.5
	case 1:
		return 0.1
	case 2:
		return 0.9
	default:
		return 0
	}
}

// GenScaleOps deterministically generates one node's operation stream: an
// initial burst of opens, then zipf-skewed touches over the currently open
// objects, with a close+reopen churn pair every ChurnEvery touches. The
// stream obeys two structural rules the tests pin: at every prefix each
// object's opens ≥ its closes (never close what is not open, never open
// what is), and no touch lands on an object that is closed at that point.
func GenScaleOps(cell ScaleCell, node int) []ScaleOp {
	rng := sim.NewRNG(cell.Seed ^ (uint64(node)+1)*scaleSeedSalt)
	z := sim.NewZipf(cell.Objects, cell.ZipfSkew)

	nOpen := cell.OpenObjects
	if nOpen < 1 {
		nOpen = 1
	}
	if nOpen > cell.Objects {
		nOpen = cell.Objects
	}
	open := make([]int, 0, nOpen) // FIFO of open objects
	isOpen := make([]bool, cell.Objects)
	ops := make([]ScaleOp, 0, cell.OpsPerNode+2*nOpen)

	openObj := func(o int) {
		open = append(open, o)
		isOpen[o] = true
		ops = append(ops, ScaleOp{Kind: OpOpen, Obj: o})
	}
	// Each node starts on its own window of the object space so the homes
	// and ring positions all see traffic from the first touch.
	for k := 0; k < nOpen; k++ {
		openObj((node + k) % cell.Objects)
	}

	frac := scaleWriteFrac(node)
	nextProbe := (node + nOpen) % cell.Objects // scan cursor for reopens
	for i := 0; i < cell.OpsPerNode; i++ {
		if cell.ChurnEvery > 0 && i > 0 && i%cell.ChurnEvery == 0 &&
			len(open) > 1 && len(open) < cell.Objects {
			// Close the oldest open object, reopen the next closed one in
			// scan order: the node's working set slides across the space.
			old := open[0]
			open = open[1:]
			isOpen[old] = false
			ops = append(ops, ScaleOp{Kind: OpClose, Obj: old})
			for isOpen[nextProbe] {
				nextProbe = (nextProbe + 1) % cell.Objects
			}
			openObj(nextProbe)
		}
		rank := z.Draw(rng)
		obj := open[rank%len(open)]
		page := rng.Intn(cell.PagesPerObject)
		write := rng.Float64() < frac
		ops = append(ops, ScaleOp{Kind: OpTouch, Obj: obj, Page: page, Write: write})
	}
	return ops
}

// ScaleResult is one drained, invariant-checked cell's simulated metrics:
// the fault-latency distribution plus the forwarding-cost ledger. No field
// is wall-clock derived, so a cell's rendered row is byte-identical across
// worker counts and engines.
type ScaleResult struct {
	Cell    ScaleCell
	Touches int
	Faults  int // faults with nonzero latency (local hits excluded)
	P50     time.Duration
	P99     time.Duration
	Mean    time.Duration
	End     sim.Time // final virtual time

	DataRequests   int64
	FwdDynamic     int64
	FwdStatic      int64
	FwdGlobal      int64
	HopEscalations int64
	RingScanHops   int64
}

// FallbackRate is the fraction of data requests that resolved through the
// global ring scan — the O(n) path the hint caches exist to keep rare.
func (r ScaleResult) FallbackRate() float64 {
	if r.DataRequests == 0 {
		return 0
	}
	return float64(r.FwdGlobal) / float64(r.DataRequests)
}

// RunScaleCell assembles the machine, lays the objects out with rotated
// ring order (homes and static managers spread across the mesh), drives
// every node's generated stream concurrently, drains, checks the global
// invariants (full sweep, or sampled when the cell asks for it), and
// gathers the ledger.
func RunScaleCell(cell ScaleCell) (ScaleResult, error) {
	p := machine.DefaultParams(cell.Nodes)
	p.Seed = cell.Seed
	if cell.DynCacheSize > 0 {
		p.ASVM.DynamicCacheSize = cell.DynCacheSize
	}
	if cell.StaticCacheSize > 0 {
		p.ASVM.StaticCacheSize = cell.StaticCacheSize
	}
	p.ASVM.HopBound = cell.HopBound
	c := machine.New(p)

	specs := make([]simhost.Spec, cell.Objects)
	for o := range specs {
		idxs := make([]int, cell.Nodes)
		for i := range idxs {
			idxs[i] = (o + i) % cell.Nodes
		}
		specs[o] = simhost.Spec{
			Name:  fmt.Sprintf("s%d", o),
			Pages: int64(cell.PagesPerObject),
			Nodes: idxs,
		}
	}
	w, err := simhost.NewWorld(c, specs)
	if err != nil {
		return ScaleResult{}, err
	}

	series := sim.NewSeries("fault")
	touches := 0
	for n := 0; n < cell.Nodes; n++ {
		if err := w.Prepare(n); err != nil {
			return ScaleResult{}, err
		}
		ops := GenScaleOps(cell, n)
		w.GoOn(n, "scale", func(h app.Host) error {
			for _, op := range ops {
				switch op.Kind {
				case OpOpen:
					if err := h.Open(op.Obj); err != nil {
						return err
					}
				case OpClose:
					if err := h.Close(op.Obj); err != nil {
						return err
					}
				case OpTouch:
					off := int64(op.Page * vm.PageSize)
					t0 := h.Now()
					if op.Write {
						if err := h.Write(op.Obj, off, 0); err != nil {
							return err
						}
					} else if _, err := h.Read(op.Obj, off); err != nil {
						return err
					}
					if d := h.Now() - t0; d > 0 {
						series.Add(d)
					}
				}
			}
			return nil
		})
		for _, op := range ops {
			if op.Kind == OpTouch {
				touches++
			}
		}
	}
	if err := w.Run(); err != nil {
		return ScaleResult{}, err
	}
	end := c.Eng.Now()

	if n := c.Eng.Pending(); n != 0 {
		return ScaleResult{}, fmt.Errorf("scale: %d events still pending after drain", n)
	}
	for o := 0; o < cell.Objects; o++ {
		r := w.Region(o)
		var err error
		if cell.SamplePages > 0 {
			err = asvm.CheckInvariantsSampled(c.ASVMCluster(), r.ASVMInfo(),
				cell.SamplePages, cell.Seed)
		} else {
			err = c.CheckInvariants(r)
		}
		if err != nil {
			return ScaleResult{}, fmt.Errorf("scale %s: %w", r.Name, err)
		}
	}

	res := ScaleResult{
		Cell:    cell,
		Touches: touches,
		Faults:  series.N(),
		P50:     series.Percentile(50),
		P99:     series.Percentile(99),
		Mean:    series.Mean(),
		End:     end,
	}
	for _, nd := range c.ASVMs {
		res.DataRequests += nd.Ctr.V[sim.CtrDataRequests]
		res.FwdDynamic += nd.Ctr.V[sim.CtrFwdDynamic]
		res.FwdStatic += nd.Ctr.V[sim.CtrFwdStatic]
		res.FwdGlobal += nd.Ctr.V[sim.CtrFwdGlobal]
		res.HopEscalations += nd.Ctr.V[sim.CtrHopEscalations]
		res.RingScanHops += nd.Ctr.V[sim.CtrRingScanHops]
	}
	return res, nil
}

// ScaleCells builds the sweep: the machine-size ladder (64 → 256 → 1024,
// ops scaled down so the big cells stay tractable) plus a hint-cache sizing
// sweep at 64 nodes (default, tiny, and mid-size caches — the tiny row
// shows the ring scan absorbing the misses). quick keeps the single
// 64-node cell CI smokes.
func ScaleCells(seed uint64, quick bool) []ScaleCell {
	base := ScaleCell{
		Objects:        16,
		PagesPerObject: 8,
		ZipfSkew:       1.0,
		ChurnEvery:     12,
		OpenObjects:    4,
		Seed:           seed,
	}
	c64 := base
	c64.Nodes, c64.OpsPerNode = 64, 48
	if quick {
		return []ScaleCell{c64}
	}
	c256 := base
	c256.Nodes, c256.OpsPerNode = 256, 16
	c1024 := base
	c1024.Nodes, c1024.OpsPerNode = 1024, 6
	c1024.SamplePages = 4 // sampled sweep: full per-page pass is the small-mesh luxury

	tiny := c64
	tiny.DynCacheSize, tiny.StaticCacheSize = 2, 2
	small := c64
	small.DynCacheSize, small.StaticCacheSize = 4, 4
	return []ScaleCell{c64, c256, c1024, tiny, small}
}

// Scale runs the scale-out sweep and renders the report: fault latency
// percentiles and the forwarding ledger per cell. Nothing in the output is
// wall-clock derived — the bytes are identical across -workers and
// -engine settings.
func Scale(w io.Writer, seed uint64, workers int, quick bool) error {
	cells := ScaleCells(seed, quick)
	results, err := RunCells(workers, len(cells), func(i int) (ScaleResult, error) {
		res, err := RunScaleCell(cells[i])
		if err != nil {
			return ScaleResult{}, fmt.Errorf("scale cell %d (%d nodes): %w", i, cells[i].Nodes, err)
		}
		return res, nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "Scale-out sweep: zipf object churn across machine sizes")
	fmt.Fprintln(w, "(every cell drained and invariant-checked; fallback = fraction of data requests resolved by the global ring scan)")
	fmt.Fprintf(w, "%6s %5s %7s %6s %7s %9s %9s %9s %8s %7s %7s %7s %6s %8s\n",
		"nodes", "objs", "touches", "faults", "p50", "p99", "mean", "vtime",
		"datareq", "dyn", "static", "global", "hops", "fallback")
	for i, r := range results {
		cell := cells[i]
		label := fmt.Sprintf("%d", cell.Nodes)
		if cell.DynCacheSize > 0 {
			label = fmt.Sprintf("%d/c%d", cell.Nodes, cell.DynCacheSize)
		}
		fmt.Fprintf(w, "%6s %5d %7d %6d %7s %9s %9s %9s %8d %7d %7d %7d %6d %7.2f%%\n",
			label, cell.Objects, r.Touches, r.Faults,
			ms(r.P50), ms(r.P99), ms(r.Mean), ms(time.Duration(r.End)),
			r.DataRequests, r.FwdDynamic, r.FwdStatic, r.FwdGlobal,
			r.RingScanHops, r.FallbackRate()*100)
	}
	return nil
}
