package exp

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one line of an ASCII chart.
type Series struct {
	Name   string
	Marker byte
	Ys     []float64
}

// RenderChart draws an ASCII chart of one or more series over shared X
// values — terminal-friendly renderings of the paper's figures. logY
// plots a log10 axis (the paper's Figure 10/11 span two decades).
func RenderChart(w io.Writer, title, xLabel, yLabel string, xs []int, series []Series, logY bool) {
	const (
		width  = 64
		height = 16
	)
	fmt.Fprintf(w, "%s\n", title)

	tx := func(v float64) float64 {
		if logY {
			if v <= 0 {
				return 0
			}
			return math.Log10(v)
		}
		return v
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, y := range s.Ys {
			ty := tx(y)
			if ty < lo {
				lo = ty
			}
			if ty > hi {
				hi = ty
			}
		}
	}
	if math.IsInf(lo, 1) || lo == hi {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for i, y := range s.Ys {
			if len(xs) < 2 {
				continue
			}
			col := i * (width - 1) / (len(xs) - 1)
			row := int(math.Round((tx(y) - lo) / (hi - lo) * float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row > height-1 {
				row = height - 1
			}
			grid[height-1-row][col] = s.Marker
		}
	}

	yAt := func(row int) float64 {
		v := lo + (hi-lo)*float64(height-1-row)/float64(height-1)
		if logY {
			return math.Pow(10, v)
		}
		return v
	}
	for r := 0; r < height; r++ {
		label := ""
		if r == 0 || r == height/2 || r == height-1 {
			label = fmt.Sprintf("%8.2f", yAt(r))
		}
		fmt.Fprintf(w, "%8s |%s|\n", label, string(grid[r]))
	}
	fmt.Fprintf(w, "%8s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%8s  %-8d%*d   (%s vs %s)\n", "", xs[0], width-10, xs[len(xs)-1], yLabel, xLabel)
	for _, s := range series {
		fmt.Fprintf(w, "          %c = %s\n", s.Marker, s.Name)
	}
}
