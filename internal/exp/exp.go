// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§4) and prints the measured values
// next to the paper's, so the reproduction quality is visible at a glance.
//
// Experiment index (DESIGN.md §4): T1 = Table 1, F10/F11 = Figures 10/11,
// T2 = Table 2 (+ Figures 12/13), T3 = Table 3, A1..A3 = ablations.
package exp

import (
	"fmt"
	"io"
	"time"

	"asvm/internal/machine"
	"asvm/internal/workload"
)

// ms renders a duration in paper-style milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// Table1Paper holds the paper's measured latencies (ms) row-aligned with
// workload.Table1Scenarios.
var Table1Paper = map[machine.System][]float64{
	machine.SysASVM: {2.24, 3.10, 8.96, 1.51, 7.75, 2.35, 2.35},
	machine.SysXMM:  {38.42, 12.92, 72.18, 3.83, 63.72, 38.59, 10.06},
}

// Table1 regenerates Table 1: basic page-fault latencies. The 14 cells
// (7 scenarios x 2 systems) are independent simulations and run on workers
// goroutines (see RunCells); the table is assembled in scenario order.
func Table1(w io.Writer, seed uint64, workers int) error {
	scs := workload.Table1Scenarios()
	type cell struct {
		sys machine.System
		sc  workload.FaultScenario
	}
	cells := make([]cell, 0, 2*len(scs))
	for _, sc := range scs {
		cells = append(cells, cell{machine.SysASVM, sc}, cell{machine.SysXMM, sc})
	}
	lats, err := RunCells(workers, len(cells), func(i int) (time.Duration, error) {
		lat, err := workload.MeasureFault(cells[i].sys, cells[i].sc, seed)
		if err != nil {
			return 0, fmt.Errorf("T1 %v %q: %w", cells[i].sys, cells[i].sc.Name, err)
		}
		return lat, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 1: Page Fault Latencies (ms)")
	fmt.Fprintf(w, "%-52s %10s %10s %10s %10s\n", "Fault Type", "ASVM", "paper", "XMM", "paper")
	for i, sc := range scs {
		fmt.Fprintf(w, "%-52s %10s %10.2f %10s %10.2f\n", sc.Name,
			ms(lats[2*i]), Table1Paper[machine.SysASVM][i],
			ms(lats[2*i+1]), Table1Paper[machine.SysXMM][i])
	}
	return nil
}

// Table1Latencies runs the Table 1 grid and returns the measured latencies
// keyed by system, row-aligned with workload.Table1Scenarios — the
// machine-readable form behind Table1, used by benchmark snapshots.
func Table1Latencies(seed uint64, workers int) (map[machine.System][]time.Duration, error) {
	scs := workload.Table1Scenarios()
	systems := []machine.System{machine.SysASVM, machine.SysXMM}
	lats, err := RunCells(workers, len(scs)*len(systems), func(i int) (time.Duration, error) {
		return workload.MeasureFault(systems[i%2], scs[i/2], seed)
	})
	if err != nil {
		return nil, err
	}
	out := map[machine.System][]time.Duration{}
	for i := range scs {
		out[machine.SysASVM] = append(out[machine.SysASVM], lats[2*i])
		out[machine.SysXMM] = append(out[machine.SysXMM], lats[2*i+1])
	}
	return out, nil
}

// Figure10 regenerates Figure 10: write-fault latency vs. read copies.
// Every (readers, configuration) pair is an independent cell.
func Figure10(w io.Writer, readers []int, seed uint64, workers int) error {
	names := []string{"ASVM write fault", "ASVM upgrade fault", "XMM write fault", "XMM upgrade fault"}
	markers := []byte{'a', 'A', 'x', 'X'}
	chart := make([]Series, 4)
	for i := range chart {
		chart[i] = Series{Name: names[i], Marker: markers[i]}
	}
	cfgs := []struct {
		sys     machine.System
		upgrade bool
	}{
		{machine.SysASVM, false}, {machine.SysASVM, true},
		{machine.SysXMM, false}, {machine.SysXMM, true},
	}
	type cell struct{ r, cfg int }
	var cells []cell
	for _, r := range readers {
		for ci, cf := range cfgs {
			if cf.upgrade && r < 1 {
				continue
			}
			cells = append(cells, cell{r, ci})
		}
	}
	lats, err := RunCells(workers, len(cells), func(i int) (time.Duration, error) {
		c := cells[i]
		lat, err := workload.MeasureFault(cfgs[c.cfg].sys, workload.FaultScenario{
			Name: "fig10", Readers: c.r, Write: true, FaulterHasCopy: cfgs[c.cfg].upgrade,
		}, seed)
		if err != nil {
			return 0, fmt.Errorf("F10 %v r=%d: %w", cfgs[c.cfg].sys, c.r, err)
		}
		return lat, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 10: Write fault latency vs. number of read copies (ms)")
	fmt.Fprintf(w, "%8s %14s %14s %14s %14s\n", "readers",
		"ASVM wf", "ASVM upgrade", "XMM wf", "XMM upgrade")
	k := 0
	for _, r := range readers {
		row := make([]time.Duration, 4)
		for ci, cf := range cfgs {
			if cf.upgrade && r < 1 {
				continue
			}
			lat := lats[k]
			k++
			row[ci] = lat
			chart[ci].Ys = append(chart[ci].Ys, float64(lat)/float64(time.Millisecond))
		}
		fmt.Fprintf(w, "%8d %14s %14s %14s %14s\n", r,
			ms(row[0]), ms(row[1]), ms(row[2]), ms(row[3]))
	}
	fmt.Fprintln(w, "paper slopes: ASVM ~0.09-0.10 ms/reader, XMM ~0.9-1.0 ms/reader")
	fmt.Fprintln(w)
	RenderChart(w, "Figure 10 (log ms)", "read copies", "latency", readers, chart, true)
	return nil
}

// Figure11Paper gives the paper's fitted model: latency = lb + n*la.
var Figure11Paper = map[machine.System]struct{ Lb, La float64 }{
	machine.SysASVM: {2.7, 0.48},
	machine.SysXMM:  {5.0, 4.3},
}

// Figure11 regenerates Figure 11: inherited-memory fault latency vs. copy
// chain length, and fits lb + n*la. Each (chain, system) pair is a cell.
func Figure11(w io.Writer, chains []int, seed uint64, workers int) error {
	systems := []machine.System{machine.SysASVM, machine.SysXMM}
	lats, err := RunCells(workers, 2*len(chains), func(i int) (time.Duration, error) {
		n, sys := chains[i/2], systems[i%2]
		lat, err := workload.MeasureChainFault(sys, n, seed)
		if err != nil {
			return 0, fmt.Errorf("F11 %v n=%d: %w", sys, n, err)
		}
		return lat, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 11: Page fault latency across copy chains (ms/page)")
	fmt.Fprintf(w, "%8s %12s %12s\n", "chain", "ASVM", "XMM")
	lat := map[machine.System][]float64{}
	for i, n := range chains {
		a, x := lats[2*i], lats[2*i+1]
		lat[machine.SysASVM] = append(lat[machine.SysASVM], float64(a)/float64(time.Millisecond))
		lat[machine.SysXMM] = append(lat[machine.SysXMM], float64(x)/float64(time.Millisecond))
		fmt.Fprintf(w, "%8d %12s %12s\n", n, ms(a), ms(x))
	}
	for _, sys := range []machine.System{machine.SysASVM, machine.SysXMM} {
		lb, la := fitLine(chains, lat[sys])
		p := Figure11Paper[sys]
		fmt.Fprintf(w, "%v fit: lb=%.2f ms la=%.2f ms/hop   (paper: lb=%.1f la=%.2f)\n",
			sys, lb, la, p.Lb, p.La)
	}
	fmt.Fprintln(w)
	RenderChart(w, "Figure 11 (ms per page)", "chain length", "latency", chains, []Series{
		{Name: "ASVM", Marker: 'a', Ys: lat[machine.SysASVM]},
		{Name: "XMM", Marker: 'x', Ys: lat[machine.SysXMM]},
	}, false)
	return nil
}

// fitLine least-squares fits y = lb + la*x.
func fitLine(xs []int, ys []float64) (lb, la float64) {
	n := float64(len(xs))
	if n < 2 {
		if n == 1 {
			return ys[0], 0
		}
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i, x := range xs {
		fx := float64(x)
		sx += fx
		sy += ys[i]
		sxx += fx * fx
		sxy += fx * ys[i]
	}
	la = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	lb = (sy - la*sx) / n
	return lb, la
}

// Table2Paper holds the paper's MB/s values indexed by node count.
var Table2Paper = map[string]map[int]float64{
	"ASVM write": {1: 2.80, 2: 2.60, 4: 2.05, 8: 1.22, 16: 0.62, 32: 0.30, 64: 0.15},
	"XMM write":  {1: 2.15, 2: 1.77, 4: 0.90, 8: 0.49, 16: 0.24, 32: 0.12, 64: 0.06},
	"ASVM read":  {1: 1.57, 2: 1.53, 4: 1.14, 8: 0.91, 16: 0.70, 32: 0.66, 64: 0.66},
	"XMM read":   {1: 1.18, 2: 0.38, 4: 0.25, 8: 0.11, 16: 0.05, 32: 0.02, 64: 0.01},
}

// Table2Series lists the Table 2 series in column order.
var Table2Series = []string{"ASVM write", "XMM write", "ASVM read", "XMM read"}

// Table2Rates measures the Table 2 grid and returns MB/s-per-node values
// keyed by series, index-aligned with nodes — the machine-readable form
// behind Table2, used by benchmark snapshots.
func Table2Rates(nodes []int, seed uint64, workers int) (map[string][]float64, error) {
	measure := func(series string, n int) (float64, error) {
		switch series {
		case "ASVM write":
			return workload.MeasureFileWrite(machine.SysASVM, n, seed)
		case "XMM write":
			return workload.MeasureFileWrite(machine.SysXMM, n, seed)
		case "ASVM read":
			return workload.MeasureFileRead(machine.SysASVM, n, seed)
		default:
			return workload.MeasureFileRead(machine.SysXMM, n, seed)
		}
	}
	vals, err := RunCells(workers, 4*len(nodes), func(i int) (float64, error) {
		n, series := nodes[i/4], Table2Series[i%4]
		v, err := measure(series, n)
		if err != nil {
			return 0, fmt.Errorf("T2 %s n=%d: %w", series, n, err)
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	rates := map[string][]float64{}
	for i := range nodes {
		for j, s := range Table2Series {
			rates[s] = append(rates[s], vals[4*i+j])
		}
	}
	return rates, nil
}

// Table2 regenerates Table 2 (and Figures 12/13): mapped-file transfer
// rates. Each (nodes, series) pair is a cell; Table2Rates does the
// measuring.
func Table2(w io.Writer, nodes []int, seed uint64, workers int) error {
	rates, err := Table2Rates(nodes, seed, workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 2: File Transfer Rates (MB/s per node; paper value in parens)")
	fmt.Fprintf(w, "%8s %22s %22s %22s %22s\n", "nodes",
		"ASVM write", "XMM write", "ASVM read", "XMM read")
	for i, n := range nodes {
		cell := func(series string) string {
			return fmt.Sprintf("%6.2f (%5.2f)", rates[series][i], Table2Paper[series][n])
		}
		fmt.Fprintf(w, "%8d %22s %22s %22s %22s\n", n,
			cell("ASVM write"), cell("XMM write"),
			cell("ASVM read"), cell("XMM read"))
	}
	fmt.Fprintln(w)
	RenderChart(w, "Figure 13: write transfer rates (MB/s per node)", "nodes", "MB/s", nodes, []Series{
		{Name: "ASVM write", Marker: 'a', Ys: rates["ASVM write"]},
		{Name: "XMM write", Marker: 'x', Ys: rates["XMM write"]},
	}, false)
	fmt.Fprintln(w)
	RenderChart(w, "Figure 12: read transfer rates (MB/s per node)", "nodes", "MB/s", nodes, []Series{
		{Name: "ASVM read", Marker: 'a', Ys: rates["ASVM read"]},
		{Name: "XMM read", Marker: 'x', Ys: rates["XMM read"]},
	}, false)
	return nil
}

// Table3Paper holds the paper's EM3D timings (seconds) [cells][nodes].
var Table3Paper = map[machine.System]map[int]map[int]float64{
	machine.SysASVM: {
		64000:   {1: 43.6, 2: 32.0, 4: 19.9, 8: 13.9, 16: 11.2, 32: 9.86, 64: 9.55},
		256000:  {1: 174, 8: 33.6, 16: 21.5, 32: 15.6, 64: 12.8},
		1024000: {1: 698, 32: 54.2, 64: 24.4},
	},
	machine.SysXMM: {
		64000:   {1: 43.6, 2: 151, 4: 213, 8: 392, 16: 755, 32: 1405, 64: 2735},
		256000:  {1: 174, 8: 520, 16: 842, 32: 1604, 64: 2957},
		1024000: {1: 698, 32: 1863, 64: 3373},
	},
}

// Table3 regenerates Table 3: EM3D execution times. Infeasible
// combinations print ** like the paper; the sequential column runs with
// unlimited memory (the paper's 32 MB node, marked *).
func Table3(w io.Writer, sizes, nodes []int, iters int, seed uint64, workers int) error {
	// Build the grid of feasible cells first; EM3D runs are the longest
	// simulations in the suite, so they benefit most from the worker pool.
	type cell struct {
		sys   machine.System
		cells int
		n     int
		cfg   workload.EM3DConfig
	}
	var grid []cell
	for _, sys := range []machine.System{machine.SysASVM, machine.SysXMM} {
		for _, cells := range sizes {
			for _, n := range nodes {
				cfg := workload.DefaultEM3D(cells, n, iters)
				cfg.Seed = seed
				if n == 1 {
					cfg.MemMB = 0 // the paper's 32 MB reference node
				}
				if !cfg.Feasible() {
					continue
				}
				grid = append(grid, cell{sys, cells, n, cfg})
			}
		}
	}
	durs, err := RunCells(workers, len(grid), func(i int) (time.Duration, error) {
		c := grid[i]
		d, err := workload.RunEM3D(c.sys, c.cfg)
		if err != nil {
			return 0, fmt.Errorf("T3 %v cells=%d n=%d: %w", c.sys, c.cells, c.n, err)
		}
		return d, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 3: EM3D Timings (seconds; paper value in parens)")
	header := fmt.Sprintf("%-16s", "system/cells")
	for _, n := range nodes {
		header += fmt.Sprintf(" %16d", n)
	}
	fmt.Fprintln(w, header)
	k := 0
	for _, sys := range []machine.System{machine.SysASVM, machine.SysXMM} {
		for _, cells := range sizes {
			row := fmt.Sprintf("%-16s", fmt.Sprintf("%v %d", sys, cells))
			for _, n := range nodes {
				if k >= len(grid) || grid[k].sys != sys || grid[k].cells != cells || grid[k].n != n {
					row += fmt.Sprintf(" %16s", "**")
					continue
				}
				// Scale to the paper's 100 iterations when running fewer.
				secs := durs[k].Seconds() * 100 / float64(iters)
				k++
				if paper := Table3Paper[sys][cells][n]; paper > 0 {
					row += fmt.Sprintf(" %7.1f (%6.1f)", secs, paper)
				} else {
					row += fmt.Sprintf(" %16.1f", secs)
				}
			}
			fmt.Fprintln(w, row)
		}
	}
	return nil
}
