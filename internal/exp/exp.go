// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§4) and prints the measured values
// next to the paper's, so the reproduction quality is visible at a glance.
//
// Experiment index (DESIGN.md §4): T1 = Table 1, F10/F11 = Figures 10/11,
// T2 = Table 2 (+ Figures 12/13), T3 = Table 3, A1..A3 = ablations.
package exp

import (
	"fmt"
	"io"
	"time"

	"asvm/internal/machine"
	"asvm/internal/workload"
)

// ms renders a duration in paper-style milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// Table1Paper holds the paper's measured latencies (ms) row-aligned with
// workload.Table1Scenarios.
var Table1Paper = map[machine.System][]float64{
	machine.SysASVM: {2.24, 3.10, 8.96, 1.51, 7.75, 2.35, 2.35},
	machine.SysXMM:  {38.42, 12.92, 72.18, 3.83, 63.72, 38.59, 10.06},
}

// Table1 regenerates Table 1: basic page-fault latencies.
func Table1(w io.Writer, seed uint64) error {
	fmt.Fprintln(w, "Table 1: Page Fault Latencies (ms)")
	fmt.Fprintf(w, "%-52s %10s %10s %10s %10s\n", "Fault Type", "ASVM", "paper", "XMM", "paper")
	for i, sc := range workload.Table1Scenarios() {
		a, err := workload.MeasureFault(machine.SysASVM, sc, seed)
		if err != nil {
			return fmt.Errorf("T1 ASVM %q: %w", sc.Name, err)
		}
		x, err := workload.MeasureFault(machine.SysXMM, sc, seed)
		if err != nil {
			return fmt.Errorf("T1 XMM %q: %w", sc.Name, err)
		}
		fmt.Fprintf(w, "%-52s %10s %10.2f %10s %10.2f\n", sc.Name,
			ms(a), Table1Paper[machine.SysASVM][i],
			ms(x), Table1Paper[machine.SysXMM][i])
	}
	return nil
}

// Figure10 regenerates Figure 10: write-fault latency vs. read copies.
func Figure10(w io.Writer, readers []int, seed uint64) error {
	fmt.Fprintln(w, "Figure 10: Write fault latency vs. number of read copies (ms)")
	fmt.Fprintf(w, "%8s %14s %14s %14s %14s\n", "readers",
		"ASVM wf", "ASVM upgrade", "XMM wf", "XMM upgrade")
	names := []string{"ASVM write fault", "ASVM upgrade fault", "XMM write fault", "XMM upgrade fault"}
	markers := []byte{'a', 'A', 'x', 'X'}
	chart := make([]Series, 4)
	for i := range chart {
		chart[i] = Series{Name: names[i], Marker: markers[i]}
	}
	for _, r := range readers {
		row := make([]time.Duration, 4)
		cfgs := []struct {
			sys     machine.System
			upgrade bool
		}{
			{machine.SysASVM, false}, {machine.SysASVM, true},
			{machine.SysXMM, false}, {machine.SysXMM, true},
		}
		for i, cf := range cfgs {
			if cf.upgrade && r < 1 {
				continue
			}
			lat, err := workload.MeasureFault(cf.sys, workload.FaultScenario{
				Name: "fig10", Readers: r, Write: true, FaulterHasCopy: cf.upgrade,
			}, seed)
			if err != nil {
				return fmt.Errorf("F10 %v r=%d: %w", cf.sys, r, err)
			}
			row[i] = lat
			chart[i].Ys = append(chart[i].Ys, float64(lat)/float64(time.Millisecond))
		}
		fmt.Fprintf(w, "%8d %14s %14s %14s %14s\n", r,
			ms(row[0]), ms(row[1]), ms(row[2]), ms(row[3]))
	}
	fmt.Fprintln(w, "paper slopes: ASVM ~0.09-0.10 ms/reader, XMM ~0.9-1.0 ms/reader")
	fmt.Fprintln(w)
	RenderChart(w, "Figure 10 (log ms)", "read copies", "latency", readers, chart, true)
	return nil
}

// Figure11Paper gives the paper's fitted model: latency = lb + n*la.
var Figure11Paper = map[machine.System]struct{ Lb, La float64 }{
	machine.SysASVM: {2.7, 0.48},
	machine.SysXMM:  {5.0, 4.3},
}

// Figure11 regenerates Figure 11: inherited-memory fault latency vs. copy
// chain length, and fits lb + n*la.
func Figure11(w io.Writer, chains []int, seed uint64) error {
	fmt.Fprintln(w, "Figure 11: Page fault latency across copy chains (ms/page)")
	fmt.Fprintf(w, "%8s %12s %12s\n", "chain", "ASVM", "XMM")
	lat := map[machine.System][]float64{}
	for _, n := range chains {
		a, err := workload.MeasureChainFault(machine.SysASVM, n, seed)
		if err != nil {
			return fmt.Errorf("F11 ASVM n=%d: %w", n, err)
		}
		x, err := workload.MeasureChainFault(machine.SysXMM, n, seed)
		if err != nil {
			return fmt.Errorf("F11 XMM n=%d: %w", n, err)
		}
		lat[machine.SysASVM] = append(lat[machine.SysASVM], float64(a)/float64(time.Millisecond))
		lat[machine.SysXMM] = append(lat[machine.SysXMM], float64(x)/float64(time.Millisecond))
		fmt.Fprintf(w, "%8d %12s %12s\n", n, ms(a), ms(x))
	}
	for _, sys := range []machine.System{machine.SysASVM, machine.SysXMM} {
		lb, la := fitLine(chains, lat[sys])
		p := Figure11Paper[sys]
		fmt.Fprintf(w, "%v fit: lb=%.2f ms la=%.2f ms/hop   (paper: lb=%.1f la=%.2f)\n",
			sys, lb, la, p.Lb, p.La)
	}
	fmt.Fprintln(w)
	RenderChart(w, "Figure 11 (ms per page)", "chain length", "latency", chains, []Series{
		{Name: "ASVM", Marker: 'a', Ys: lat[machine.SysASVM]},
		{Name: "XMM", Marker: 'x', Ys: lat[machine.SysXMM]},
	}, false)
	return nil
}

// fitLine least-squares fits y = lb + la*x.
func fitLine(xs []int, ys []float64) (lb, la float64) {
	n := float64(len(xs))
	if n < 2 {
		if n == 1 {
			return ys[0], 0
		}
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i, x := range xs {
		fx := float64(x)
		sx += fx
		sy += ys[i]
		sxx += fx * fx
		sxy += fx * ys[i]
	}
	la = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	lb = (sy - la*sx) / n
	return lb, la
}

// Table2Paper holds the paper's MB/s values indexed by node count.
var Table2Paper = map[string]map[int]float64{
	"ASVM write": {1: 2.80, 2: 2.60, 4: 2.05, 8: 1.22, 16: 0.62, 32: 0.30, 64: 0.15},
	"XMM write":  {1: 2.15, 2: 1.77, 4: 0.90, 8: 0.49, 16: 0.24, 32: 0.12, 64: 0.06},
	"ASVM read":  {1: 1.57, 2: 1.53, 4: 1.14, 8: 0.91, 16: 0.70, 32: 0.66, 64: 0.66},
	"XMM read":   {1: 1.18, 2: 0.38, 4: 0.25, 8: 0.11, 16: 0.05, 32: 0.02, 64: 0.01},
}

// Table2 regenerates Table 2 (and Figures 12/13): mapped-file transfer
// rates.
func Table2(w io.Writer, nodes []int, seed uint64) error {
	fmt.Fprintln(w, "Table 2: File Transfer Rates (MB/s per node; paper value in parens)")
	fmt.Fprintf(w, "%8s %22s %22s %22s %22s\n", "nodes",
		"ASVM write", "XMM write", "ASVM read", "XMM read")
	rates := map[string][]float64{}
	for _, n := range nodes {
		aw, err := workload.MeasureFileWrite(machine.SysASVM, n, seed)
		if err != nil {
			return fmt.Errorf("T2 ASVM write n=%d: %w", n, err)
		}
		xw, err := workload.MeasureFileWrite(machine.SysXMM, n, seed)
		if err != nil {
			return fmt.Errorf("T2 XMM write n=%d: %w", n, err)
		}
		ar, err := workload.MeasureFileRead(machine.SysASVM, n, seed)
		if err != nil {
			return fmt.Errorf("T2 ASVM read n=%d: %w", n, err)
		}
		xr, err := workload.MeasureFileRead(machine.SysXMM, n, seed)
		if err != nil {
			return fmt.Errorf("T2 XMM read n=%d: %w", n, err)
		}
		cell := func(series string, v float64) string {
			return fmt.Sprintf("%6.2f (%5.2f)", v, Table2Paper[series][n])
		}
		fmt.Fprintf(w, "%8d %22s %22s %22s %22s\n", n,
			cell("ASVM write", aw), cell("XMM write", xw),
			cell("ASVM read", ar), cell("XMM read", xr))
		rates["ASVM write"] = append(rates["ASVM write"], aw)
		rates["XMM write"] = append(rates["XMM write"], xw)
		rates["ASVM read"] = append(rates["ASVM read"], ar)
		rates["XMM read"] = append(rates["XMM read"], xr)
	}
	fmt.Fprintln(w)
	RenderChart(w, "Figure 13: write transfer rates (MB/s per node)", "nodes", "MB/s", nodes, []Series{
		{Name: "ASVM write", Marker: 'a', Ys: rates["ASVM write"]},
		{Name: "XMM write", Marker: 'x', Ys: rates["XMM write"]},
	}, false)
	fmt.Fprintln(w)
	RenderChart(w, "Figure 12: read transfer rates (MB/s per node)", "nodes", "MB/s", nodes, []Series{
		{Name: "ASVM read", Marker: 'a', Ys: rates["ASVM read"]},
		{Name: "XMM read", Marker: 'x', Ys: rates["XMM read"]},
	}, false)
	return nil
}

// Table3Paper holds the paper's EM3D timings (seconds) [cells][nodes].
var Table3Paper = map[machine.System]map[int]map[int]float64{
	machine.SysASVM: {
		64000:   {1: 43.6, 2: 32.0, 4: 19.9, 8: 13.9, 16: 11.2, 32: 9.86, 64: 9.55},
		256000:  {1: 174, 8: 33.6, 16: 21.5, 32: 15.6, 64: 12.8},
		1024000: {1: 698, 32: 54.2, 64: 24.4},
	},
	machine.SysXMM: {
		64000:   {1: 43.6, 2: 151, 4: 213, 8: 392, 16: 755, 32: 1405, 64: 2735},
		256000:  {1: 174, 8: 520, 16: 842, 32: 1604, 64: 2957},
		1024000: {1: 698, 32: 1863, 64: 3373},
	},
}

// Table3 regenerates Table 3: EM3D execution times. Infeasible
// combinations print ** like the paper; the sequential column runs with
// unlimited memory (the paper's 32 MB node, marked *).
func Table3(w io.Writer, sizes, nodes []int, iters int, seed uint64) error {
	fmt.Fprintln(w, "Table 3: EM3D Timings (seconds; paper value in parens)")
	header := fmt.Sprintf("%-16s", "system/cells")
	for _, n := range nodes {
		header += fmt.Sprintf(" %16d", n)
	}
	fmt.Fprintln(w, header)
	for _, sys := range []machine.System{machine.SysASVM, machine.SysXMM} {
		for _, cells := range sizes {
			row := fmt.Sprintf("%-16s", fmt.Sprintf("%v %d", sys, cells))
			for _, n := range nodes {
				cfg := workload.DefaultEM3D(cells, n, iters)
				cfg.Seed = seed
				if n == 1 {
					cfg.MemMB = 0 // the paper's 32 MB reference node
				}
				paper := Table3Paper[sys][cells][n]
				if !cfg.Feasible() {
					row += fmt.Sprintf(" %16s", "**")
					continue
				}
				d, err := workload.RunEM3D(sys, cfg)
				if err != nil {
					return fmt.Errorf("T3 %v cells=%d n=%d: %w", sys, cells, n, err)
				}
				// Scale to the paper's 100 iterations when running fewer.
				secs := d.Seconds() * 100 / float64(iters)
				if paper > 0 {
					row += fmt.Sprintf(" %7.1f (%6.1f)", secs, paper)
				} else {
					row += fmt.Sprintf(" %16.1f", secs)
				}
			}
			fmt.Fprintln(w, row)
		}
	}
	return nil
}
