package exp

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"asvm/internal/machine"
)

func TestRunCellsOrderedResults(t *testing.T) {
	// Later cells finish first (earlier cells sleep longer), so completion
	// order is roughly reversed — results must still come back by index.
	for _, workers := range []int{1, 2, 8} {
		out, err := RunCells(workers, 20, func(i int) (int, error) {
			time.Sleep(time.Duration(20-i) * time.Millisecond / 4)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunCellsFirstErrorByIndex(t *testing.T) {
	boom3 := errors.New("cell three failed")
	boom7 := errors.New("cell seven failed")
	for _, workers := range []int{1, 4} {
		out, err := RunCells(workers, 10, func(i int) (int, error) {
			switch i {
			case 3:
				// Make the higher-index failure finish first under
				// parallelism; the reported error must still be cell 3's.
				time.Sleep(10 * time.Millisecond)
				return 0, boom3
			case 7:
				return 0, boom7
			}
			return i, nil
		})
		if !errors.Is(err, boom3) {
			t.Fatalf("workers=%d: err = %v, want cell 3's error", workers, err)
		}
		if out[9] != 9 {
			t.Fatalf("workers=%d: completed cells not returned alongside error", workers)
		}
	}
}

func TestRunCellsEdgeCases(t *testing.T) {
	if out, err := RunCells(4, 0, func(i int) (int, error) { return 0, nil }); err != nil || out != nil {
		t.Fatalf("n=0: out=%v err=%v", out, err)
	}
	// More workers than cells must not deadlock or double-run cells.
	var runs atomic.Int32
	out, err := RunCells(32, 3, func(i int) (int, error) {
		runs.Add(1)
		return i, nil
	})
	if err != nil || len(out) != 3 || runs.Load() != 3 {
		t.Fatalf("out=%v err=%v runs=%d", out, err, runs.Load())
	}
}

// TestSerialParallelByteIdentical is the determinism regression test for
// the parallel harness: for the same seeds, every experiment's rendered
// output must be byte-identical whether cells run on one worker or many.
// Parallelism may only change wall-clock time.
func TestSerialParallelByteIdentical(t *testing.T) {
	experiments := []struct {
		name string
		run  func(w *bytes.Buffer, workers int) error
	}{
		{"table1", func(w *bytes.Buffer, k int) error { return Table1(w, 1, k) }},
		{"fig10", func(w *bytes.Buffer, k int) error { return Figure10(w, []int{1, 2, 4}, 1, k) }},
		{"fig11", func(w *bytes.Buffer, k int) error { return Figure11(w, []int{1, 2}, 1, k) }},
		{"table2", func(w *bytes.Buffer, k int) error { return Table2(w, []int{1, 2}, 1, k) }},
		{"table3", func(w *bytes.Buffer, k int) error { return Table3(w, []int{64000}, []int{1, 2}, 2, 1, k) }},
		{"dist", func(w *bytes.Buffer, k int) error { return Distribution(w, 4, 8, 2, 1, k) }},
		{"scale", func(w *bytes.Buffer, k int) error { return Scale(w, 1, k, true) }},
		{"ablation-forwarding", func(w *bytes.Buffer, k int) error { return AblationForwarding(w, 4, 2, 1, k) }},
		{"ablation-transport", func(w *bytes.Buffer, k int) error { return AblationTransport(w, 1, k) }},
		{"ablation-internode-paging", func(w *bytes.Buffer, k int) error { return AblationInternodePaging(w, 1, k) }},
		{"ablation-chain-threads", func(w *bytes.Buffer, k int) error { return AblationChainThreads(w, 1, k) }},
	}
	for _, e := range experiments {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			var serial bytes.Buffer
			if err := e.run(&serial, 1); err != nil {
				t.Fatalf("serial: %v", err)
			}
			for _, workers := range []int{2, 8} {
				var parallel bytes.Buffer
				if err := e.run(&parallel, workers); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
					t.Fatalf("workers=%d output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
						workers, serial.String(), parallel.String())
				}
			}
		})
	}
}

// TestEngineParallelByteIdentical extends the determinism contract to
// engine-level parallelism: with machine.DefaultEngineLanes raised, every
// cluster runs on the parallel lane engine, and each experiment's rendered
// output must still be byte-identical to the serial engine's. This is the
// whole-repo version of sim's TestLaneMergeMatchesSerial: the executed
// schedule, every counter and every Series must survive lane sharding.
//
// Deliberately not t.Parallel: it mutates the package-level default that
// cluster construction reads.
func TestEngineParallelByteIdentical(t *testing.T) {
	experiments := []struct {
		name string
		run  func(w *bytes.Buffer) error
	}{
		{"table1", func(w *bytes.Buffer) error { return Table1(w, 1, 1) }},
		{"table2", func(w *bytes.Buffer) error { return Table2(w, []int{1, 2, 4}, 1, 1) }},
		{"fig11", func(w *bytes.Buffer) error { return Figure11(w, []int{1, 2}, 1, 1) }},
		{"dist", func(w *bytes.Buffer) error { return Distribution(w, 4, 8, 2, 1, 1) }},
		{"scale", func(w *bytes.Buffer) error { return Scale(w, 1, 1, true) }},
		{"ablation-transport", func(w *bytes.Buffer) error { return AblationTransport(w, 1, 1) }},
	}
	old := machine.DefaultEngineLanes
	defer func() { machine.DefaultEngineLanes = old }()
	for _, e := range experiments {
		var serial bytes.Buffer
		machine.DefaultEngineLanes = 1
		if err := e.run(&serial); err != nil {
			t.Fatalf("%s serial: %v", e.name, err)
		}
		for _, lanes := range []int{2, 4, 7} {
			var parallel bytes.Buffer
			machine.DefaultEngineLanes = lanes
			if err := e.run(&parallel); err != nil {
				t.Fatalf("%s lanes=%d: %v", e.name, lanes, err)
			}
			if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
				t.Fatalf("%s: lanes=%d output differs from serial:\n--- serial ---\n%s\n--- lanes=%d ---\n%s",
					e.name, lanes, serial.String(), lanes, parallel.String())
			}
		}
	}
}

// TestSnapshotQuick checks CollectSnapshot fills every section and that the
// simulated metrics (not the wall-clock ones) are reproducible.
func TestSnapshotQuick(t *testing.T) {
	a, err := CollectSnapshot(1, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.EngineEventsPerSec <= 0 || a.EngineEvents == 0 {
		t.Fatalf("engine throughput not measured: %+v", a)
	}
	if len(a.Table1MS["ASVM"]) != 7 || len(a.Table1MS["XMM"]) != 7 {
		t.Fatalf("table1 section incomplete: %v", a.Table1MS)
	}
	for _, series := range Table2Series {
		if len(a.Table2MBs[series]) != len(a.Table2Nodes) {
			t.Fatalf("table2 series %q incomplete: %v", series, a.Table2MBs)
		}
	}
	if len(a.Fig11FitMS["ASVM"]) != 2 || len(a.Fig11FitMS["XMM"]) != 2 {
		t.Fatalf("fig11 fit missing: %v", a.Fig11FitMS)
	}
	if len(a.ScaleNodes) == 0 || a.ScaleNodes[0] != 64 || a.ScaleFaultP50MS[0] <= 0 ||
		a.ScaleRingScanHops[0] == 0 {
		t.Fatalf("scale section incomplete: nodes=%v p50=%v hops=%v",
			a.ScaleNodes, a.ScaleFaultP50MS, a.ScaleRingScanHops)
	}
	b, err := CollectSnapshot(1, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Table1MS) != fmt.Sprint(b.Table1MS) ||
		fmt.Sprint(a.Table2MBs) != fmt.Sprint(b.Table2MBs) ||
		fmt.Sprint(a.Fig11FitMS) != fmt.Sprint(b.Fig11FitMS) ||
		fmt.Sprint(a.ScaleFaultP99MS) != fmt.Sprint(b.ScaleFaultP99MS) ||
		fmt.Sprint(a.ScaleRingScanHops) != fmt.Sprint(b.ScaleRingScanHops) {
		t.Fatal("simulated snapshot metrics changed with worker count")
	}
}

func TestTable1LatenciesMatchesTable1(t *testing.T) {
	lats, err := Table1Latencies(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var rendered bytes.Buffer
	if err := Table1(&rendered, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Spot-check: the first ASVM latency appears in the rendered table.
	first := fmt.Sprintf("%.2f", float64(lats[machine.SysASVM][0])/float64(time.Millisecond))
	if !bytes.Contains(rendered.Bytes(), []byte(first)) {
		t.Fatalf("rendered Table 1 missing measured value %s:\n%s", first, rendered.String())
	}
}
