package exp

import (
	"runtime"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/sim"
	"asvm/internal/sts"
	"asvm/internal/xport"
)

// allocsPerOp reports steady-state heap allocations per fn call, measured
// with the runtime's malloc counter after a warmup pass (the warmup sizes
// pools and free lists, which is the state the hot paths are specified
// against). It is the same measurement testing.AllocsPerRun makes; having
// it here lets asvmbench record allocs/op in BENCH_*.json snapshots
// without linking the testing package.
func allocsPerOp(n int, fn func()) float64 {
	for i := 0; i < n/4+1; i++ {
		fn()
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		fn()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(n)
}

// EngineAllocsPerOp measures the engine's schedule+dispatch hot path (the
// BenchmarkScheduleRun shape): it must be 0 in steady state with no
// chooser installed.
func EngineAllocsPerOp() float64 {
	e := sim.NewEngine()
	fn := func() {}
	i := 0
	return allocsPerOp(20000, func() {
		e.Schedule(time.Duration(i%64)*time.Microsecond, fn)
		i++
		if e.Pending() >= 1024 {
			e.RunUntil(e.Now() + time.Millisecond)
		}
	})
}

// MsgPathAllocsPerOp measures one STS request/grant round trip (the
// BenchmarkMessagePath shape): also 0 in steady state.
func MsgPathAllocsPerOp() float64 {
	eng := sim.NewEngine()
	net := mesh.New(eng, 2, mesh.DefaultConfig(2))
	nodes := []*node.Node{node.New(eng, 0), node.New(eng, 1)}
	tr := sts.New(eng, net, nodes, sts.DefaultCosts())
	proto := xport.RegisterProto("bench")
	tr.Register(1, proto, func(src mesh.NodeID, m interface{}) {
		tr.Send(1, 0, proto, sts.PageBytes, m)
	})
	tr.Register(0, proto, func(src mesh.NodeID, m interface{}) {})
	msg := struct{ pg int }{pg: 7}
	return allocsPerOp(5000, func() {
		tr.Send(0, 1, proto, 0, msg)
		eng.Run()
	})
}
