package exp

import (
	"testing"
)

// TestGenScaleOpsChurnBalance pins the generator's structural contract: at
// every prefix each object's opens exceed its closes by at most one (open
// only what is closed, close only what is open), no touch lands on a closed
// object, and the touch count is exactly OpsPerNode.
func TestGenScaleOpsChurnBalance(t *testing.T) {
	cells := []ScaleCell{
		{Objects: 16, PagesPerObject: 8, OpsPerNode: 200, ZipfSkew: 1.0, ChurnEvery: 12, OpenObjects: 4, Seed: 1},
		{Objects: 5, PagesPerObject: 4, OpsPerNode: 100, ZipfSkew: 0.8, ChurnEvery: 3, OpenObjects: 2, Seed: 42},
		// Degenerate corners: one object (churn can never fire), churn off,
		// OpenObjects over-asked (clamped to Objects).
		{Objects: 1, PagesPerObject: 2, OpsPerNode: 30, ZipfSkew: 1.0, ChurnEvery: 4, OpenObjects: 3, Seed: 7},
		{Objects: 8, PagesPerObject: 8, OpsPerNode: 50, ZipfSkew: 1.0, ChurnEvery: 0, OpenObjects: 8, Seed: 9},
	}
	for ci, cell := range cells {
		for _, node := range []int{0, 1, 2, 3, 17} {
			ops := GenScaleOps(cell, node)
			open := make(map[int]bool)
			touches := 0
			for i, op := range ops {
				if op.Obj < 0 || op.Obj >= cell.Objects {
					t.Fatalf("cell %d node %d op %d: object %d out of range", ci, node, i, op.Obj)
				}
				switch op.Kind {
				case OpOpen:
					if open[op.Obj] {
						t.Fatalf("cell %d node %d op %d: open of already-open object %d", ci, node, i, op.Obj)
					}
					open[op.Obj] = true
				case OpClose:
					if !open[op.Obj] {
						t.Fatalf("cell %d node %d op %d: close of closed object %d", ci, node, i, op.Obj)
					}
					delete(open, op.Obj)
					if len(open) == 0 {
						t.Fatalf("cell %d node %d op %d: close left nothing open", ci, node, i)
					}
				case OpTouch:
					if !open[op.Obj] {
						t.Fatalf("cell %d node %d op %d: touch on closed object %d", ci, node, i, op.Obj)
					}
					if op.Page < 0 || op.Page >= cell.PagesPerObject {
						t.Fatalf("cell %d node %d op %d: page %d out of range", ci, node, i, op.Page)
					}
					touches++
				default:
					t.Fatalf("cell %d node %d op %d: unknown kind %d", ci, node, i, op.Kind)
				}
			}
			if touches != cell.OpsPerNode {
				t.Fatalf("cell %d node %d: %d touches, want %d", ci, node, touches, cell.OpsPerNode)
			}
			if len(open) == 0 {
				t.Fatalf("cell %d node %d: stream ends with nothing open", ci, node)
			}
		}
	}
}

// TestGenScaleOpsDeterministic: the stream is a pure function of (cell,
// node) — and distinct nodes get distinct streams (the per-node salt works).
func TestGenScaleOpsDeterministic(t *testing.T) {
	cell := ScaleCell{Objects: 16, PagesPerObject: 8, OpsPerNode: 64,
		ZipfSkew: 1.0, ChurnEvery: 12, OpenObjects: 4, Seed: 5}
	a := GenScaleOps(cell, 3)
	b := GenScaleOps(cell, 3)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs on replay: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := GenScaleOps(cell, 4)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("nodes 3 and 4 generated identical streams")
	}
}

// TestRunScaleCellQuick runs the quick 64-node cell end to end and checks
// the ledger is self-consistent: traffic actually flowed, the forwarding
// classes sum sensibly, and the fallback rate is a valid fraction.
func TestRunScaleCellQuick(t *testing.T) {
	res, err := RunScaleCell(ScaleCells(1, true)[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Touches == 0 || res.Faults == 0 || res.DataRequests == 0 {
		t.Fatalf("cell saw no traffic: %+v", res)
	}
	if res.P99 < res.P50 || res.Mean <= 0 {
		t.Fatalf("latency summary inconsistent: p50=%v p99=%v mean=%v", res.P50, res.P99, res.Mean)
	}
	if f := res.FallbackRate(); f < 0 || f > 1 {
		t.Fatalf("fallback rate %v out of [0,1]", f)
	}
}
