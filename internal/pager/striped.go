package pager

import (
	"asvm/internal/mesh"
	"asvm/internal/sim"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// PagerIO is the client-side interface to a memory object's backing store:
// one pager, or — the paper's §6 future-work file system — several pagers
// used in round-robin fashion for a striped file.
type PagerIO interface {
	// PageIn requests page contents; cb receives them (found=false: the
	// page may be zero-filled).
	PageIn(obj vm.ObjID, idx vm.PageIdx, cb func(data []byte, found bool))
	// PageOut writes page contents to the backing store; cb runs when
	// stable.
	PageOut(obj vm.ObjID, idx vm.PageIdx, data []byte, dirty bool, cb func())
}

var _ PagerIO = (*Client)(nil)

// Striped fans a memory object's paging traffic out over multiple pager
// servers round-robin by page index — the paper's §6 sketch of combining
// PFS-style striping with UFS-style mapped-file caching. Page idx lives on
// server idx % stripes, so sequential access spreads across all I/O nodes.
type Striped struct {
	clients []*Client
}

// NewStriped builds the round-robin client set on node self for the given
// stripe servers (one per I/O node).
func NewStriped(eng *sim.Engine, tr xport.Transport, self mesh.NodeID, servers []*Server) *Striped {
	if len(servers) == 0 {
		panic("pager: striped file needs at least one stripe")
	}
	s := &Striped{}
	for _, srv := range servers {
		s.clients = append(s.clients, NewClient(eng, tr, self, srv))
	}
	return s
}

// Stripes returns the stripe count.
func (s *Striped) Stripes() int { return len(s.clients) }

func (s *Striped) stripe(idx vm.PageIdx) *Client {
	return s.clients[int(idx)%len(s.clients)]
}

// PageIn implements PagerIO.
func (s *Striped) PageIn(obj vm.ObjID, idx vm.PageIdx, cb func(data []byte, found bool)) {
	s.stripe(idx).PageIn(obj, idx, cb)
}

// PageOut implements PagerIO.
func (s *Striped) PageOut(obj vm.ObjID, idx vm.PageIdx, data []byte, dirty bool, cb func()) {
	s.stripe(idx).PageOut(obj, idx, data, dirty, cb)
}

var _ PagerIO = (*Striped)(nil)

// StripedBinding plugs a striped file directly into a kernel as its
// memory manager (the single-node mapped-file configuration).
type StripedBinding struct {
	K  *vm.Kernel
	IO PagerIO
}

// DataRequest implements vm.MemoryManager.
func (b *StripedBinding) DataRequest(o *vm.Object, idx vm.PageIdx, desired vm.Prot) {
	b.IO.PageIn(o.ID, idx, func(data []byte, found bool) {
		if found {
			b.K.DataSupply(o, idx, data, vm.ProtWrite, false)
		} else {
			b.K.DataUnavailable(o, idx, vm.ProtWrite)
		}
	})
}

// DataUnlock implements vm.MemoryManager.
func (b *StripedBinding) DataUnlock(o *vm.Object, idx vm.PageIdx, desired vm.Prot) {
	b.K.LockGrant(o, idx, desired)
}

// DataReturn implements vm.MemoryManager.
func (b *StripedBinding) DataReturn(o *vm.Object, idx vm.PageIdx, data []byte, dirty, kept bool) {
	b.IO.PageOut(o.ID, idx, data, dirty, func() {
		if !kept {
			b.K.RemovePage(o, idx)
		}
	})
}

// Terminate implements vm.MemoryManager.
func (b *StripedBinding) Terminate(o *vm.Object) {}

var _ vm.MemoryManager = (*StripedBinding)(nil)
