// Package pager implements user-level memory managers: the default pager
// (paging space for anonymous memory) and the file pager (UFS-style memory
// mapped files), both running on I/O nodes with attached disks — the
// Paragon typically had one disk node per 32 compute nodes.
//
// A pager is a Server reachable over a transport channel; kernels and
// distribution layers (XMM, ASVM) talk to it through a Client, or bind it
// directly into a kernel as its MemoryManager with a Binding.
package pager

import (
	"fmt"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/sim"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// IONodeFor returns the I/O node serving a compute node: one disk node per
// ioRatio compute nodes, at the start of each group.
func IONodeFor(n mesh.NodeID, total, ioRatio int) mesh.NodeID {
	if ioRatio <= 0 {
		return 0
	}
	io := (int(n) / ioRatio) * ioRatio
	if io >= total {
		io = 0
	}
	return mesh.NodeID(io)
}

// Costs are the pager task's software costs.
type Costs struct {
	// ServeCPU is the pager's per-request processing time (its user task
	// runs on the node's compute processor).
	ServeCPU time.Duration
	// ZeroSupplyCPU is the cost of supplying an initially zero-filled page
	// (fresh file page / unbacked anonymous page).
	ZeroSupplyCPU time.Duration
}

// DefaultCosts returns calibrated pager costs (DESIGN.md §6).
func DefaultCosts() Costs {
	return Costs{
		ServeCPU:      350 * time.Microsecond,
		ZeroSupplyCPU: 500 * time.Microsecond,
	}
}

// Protocol messages.
type (
	// PageInReq asks the pager for a page's backing contents. ReplyTo is
	// the requesting client's private reply channel.
	PageInReq struct {
		ID      uint64
		Obj     vm.ObjID
		Idx     vm.PageIdx
		ReplyTo xport.ProtoID
	}
	// PageInReply answers a PageInReq. Found=false means the pager has no
	// contents: the page may be zero-filled.
	PageInReply struct {
		ID    uint64
		Data  []byte
		Found bool
	}
	// PageOutMsg writes page contents to backing store.
	PageOutMsg struct {
		ID      uint64
		Obj     vm.ObjID
		Idx     vm.PageIdx
		Data    []byte
		Dirty   bool
		ReplyTo xport.ProtoID
	}
	// PageOutAck confirms a PageOutMsg reached stable storage.
	PageOutAck struct {
		ID uint64
	}
)

type backingKey struct {
	obj vm.ObjID
	idx vm.PageIdx
}

// Server is a pager task instance on an I/O node.
type Server struct {
	Name string

	// proto is the interned transport channel the server listens on.
	proto xport.ProtoID

	eng   *sim.Engine
	tr    xport.Transport
	node  mesh.NodeID
	disk  *node.Disk
	costs Costs
	srv   *sim.Server // the pager task's CPU

	// CacheInMemory keeps served pages in the pager's own memory (the UFS
	// buffer behaviour); the default pager always goes to disk.
	CacheInMemory bool

	trackData bool
	backing   map[backingKey][]byte // contents (or nil placeholders when !trackData)
	exists    map[backingKey]bool
	cached    map[backingKey]bool

	// Stats.
	PageIns, PageOuts   uint64
	DiskReads, DiskSkip uint64

	clients uint64 // reply-channel namer for NewClient
}

// NewServer registers a pager server on ioNode under the given channel
// name. disk may be nil (infinitely fast backing store, for tests).
func NewServer(eng *sim.Engine, tr xport.Transport, ioNode mesh.NodeID, d *node.Disk,
	costs Costs, name string, trackData bool) *Server {
	s := &Server{
		Name: name, eng: eng, tr: tr, node: ioNode, disk: d, costs: costs,
		proto:     xport.RegisterProto("pager/" + name),
		srv:       sim.NewServer(eng, "pager/"+name),
		trackData: trackData,
		backing:   make(map[backingKey][]byte),
		exists:    make(map[backingKey]bool),
		cached:    make(map[backingKey]bool),
	}
	tr.Register(ioNode, s.proto, s.handle)
	return s
}

// NodeID returns the I/O node the server runs on.
func (s *Server) NodeID() mesh.NodeID { return s.node }

// Proto returns the interned transport channel the server listens on.
func (s *Server) Proto() xport.ProtoID { return s.proto }

// Preload seeds backing contents for a page without any simulated cost
// (building initial file contents for an experiment).
func (s *Server) Preload(obj vm.ObjID, idx vm.PageIdx, data []byte) {
	key := backingKey{obj, idx}
	s.exists[key] = true
	if s.trackData {
		buf := make([]byte, vm.PageSize)
		copy(buf, data)
		s.backing[key] = buf
	}
}

// Has reports whether backing contents exist for the page.
func (s *Server) Has(obj vm.ObjID, idx vm.PageIdx) bool {
	return s.exists[backingKey{obj, idx}]
}

// Contents returns stored contents (tests only).
func (s *Server) Contents(obj vm.ObjID, idx vm.PageIdx) []byte {
	return s.backing[backingKey{obj, idx}]
}

func (s *Server) handle(src mesh.NodeID, m interface{}) {
	switch msg := m.(type) {
	case PageInReq:
		s.pageIn(src, msg)
	case PageOutMsg:
		s.pageOut(src, msg)
	default:
		panic(fmt.Sprintf("pager %s: unknown message %T", s.Name, m))
	}
}

func (s *Server) pageIn(src mesh.NodeID, req PageInReq) {
	s.PageIns++
	key := backingKey{req.Obj, req.Idx}
	if !s.exists[key] {
		// Nothing backing the page: zero fill at the requester.
		s.srv.Do(s.costs.ZeroSupplyCPU, func() {
			s.tr.Send(s.node, src, req.ReplyTo, 0, PageInReply{ID: req.ID, Found: false})
		})
		return
	}
	reply := func() {
		data := s.backing[key]
		s.tr.Send(s.node, src, req.ReplyTo, vm.PageSize, PageInReply{ID: req.ID, Data: data, Found: true})
	}
	s.srv.Do(s.costs.ServeCPU, func() {
		if s.CacheInMemory && s.cached[key] || s.disk == nil {
			s.DiskSkip++
			reply()
			return
		}
		s.DiskReads++
		s.disk.Read(vm.PageSize, func() {
			if s.CacheInMemory {
				s.cached[key] = true
			}
			reply()
		})
	})
}

func (s *Server) pageOut(src mesh.NodeID, msg PageOutMsg) {
	s.PageOuts++
	key := backingKey{msg.Obj, msg.Idx}
	s.exists[key] = true
	if s.trackData {
		buf := make([]byte, vm.PageSize)
		copy(buf, msg.Data)
		s.backing[key] = buf
	}
	if s.CacheInMemory {
		s.cached[key] = true
	}
	ack := func() {
		s.tr.Send(s.node, src, msg.ReplyTo, 0, PageOutAck{ID: msg.ID})
	}
	s.srv.Do(s.costs.ServeCPU, func() {
		if s.disk == nil {
			ack()
			return
		}
		s.disk.Write(vm.PageSize, ack)
	})
}

// ---------------------------------------------------------------------------
// Client

// Client issues pager requests from one node and routes replies back to
// callbacks. Each client has its own private reply channel, so any number
// of clients may talk to the same server from the same node.
type Client struct {
	eng     *sim.Engine
	tr      xport.Transport
	self    mesh.NodeID
	server  mesh.NodeID
	proto   xport.ProtoID
	replyTo xport.ProtoID
	nextID  uint64
	pendIn  map[uint64]func(data []byte, found bool)
	pendOut map[uint64]func()
}

// NewClient creates a client on node self for the given server. Reply
// channels are named by a per-server counter, not a package global: a
// global would race (and make names run-order dependent) when independent
// simulations execute in parallel in the experiment harness. (The interned
// ProtoID values themselves may vary with cross-cell registration order,
// but they are opaque dispatch keys — only names reach reports.)
func NewClient(eng *sim.Engine, tr xport.Transport, self mesh.NodeID, server *Server) *Client {
	server.clients++
	c := &Client{
		eng: eng, tr: tr, self: self,
		server: server.NodeID(), proto: server.Proto(),
		replyTo: xport.RegisterProto(fmt.Sprintf("pager/%s/r%d", server.Name, server.clients)),
		pendIn:  make(map[uint64]func([]byte, bool)),
		pendOut: make(map[uint64]func()),
	}
	tr.Register(self, c.replyTo, c.handleReply)
	return c
}

func (c *Client) handleReply(src mesh.NodeID, m interface{}) {
	switch msg := m.(type) {
	case PageInReply:
		cb, ok := c.pendIn[msg.ID]
		if !ok {
			panic(fmt.Sprintf("pager client: stray page-in reply %d", msg.ID))
		}
		delete(c.pendIn, msg.ID)
		cb(msg.Data, msg.Found)
	case PageOutAck:
		cb, ok := c.pendOut[msg.ID]
		if !ok {
			panic(fmt.Sprintf("pager client: stray page-out ack %d", msg.ID))
		}
		delete(c.pendOut, msg.ID)
		cb()
	default:
		panic(fmt.Sprintf("pager client: unknown reply %T", m))
	}
}

// PageIn requests page contents; cb receives them (found=false: zero
// fill).
func (c *Client) PageIn(obj vm.ObjID, idx vm.PageIdx, cb func(data []byte, found bool)) {
	c.nextID++
	id := c.nextID
	c.pendIn[id] = cb
	c.tr.Send(c.self, c.server, c.proto, 0, PageInReq{ID: id, Obj: obj, Idx: idx, ReplyTo: c.replyTo})
}

// PageOut writes page contents to the pager; cb runs when stable.
func (c *Client) PageOut(obj vm.ObjID, idx vm.PageIdx, data []byte, dirty bool, cb func()) {
	c.nextID++
	id := c.nextID
	c.pendOut[id] = cb
	c.tr.Send(c.self, c.server, c.proto, vm.PageSize, PageOutMsg{ID: id, Obj: obj, Idx: idx, Data: data, Dirty: dirty, ReplyTo: c.replyTo})
}

// ---------------------------------------------------------------------------
// Binding: plug a pager directly into a kernel as its MemoryManager.

// Binding adapts a Client to vm.MemoryManager for a single kernel — the
// configuration of a node whose memory object is backed directly by a
// pager with no distribution layer (single-node mappings, and the default
// pager for anonymous pageout).
type Binding struct {
	K *vm.Kernel
	C *Client
}

// NewBinding builds a binding for kernel k talking to server through tr.
func NewBinding(k *vm.Kernel, eng *sim.Engine, tr xport.Transport, server *Server) *Binding {
	return &Binding{K: k, C: NewClient(eng, tr, k.Node, server)}
}

// DataRequest implements vm.MemoryManager.
func (b *Binding) DataRequest(o *vm.Object, idx vm.PageIdx, desired vm.Prot) {
	b.C.PageIn(o.ID, idx, func(data []byte, found bool) {
		if found {
			b.K.DataSupply(o, idx, data, vm.ProtWrite, false)
		} else {
			b.K.DataUnavailable(o, idx, vm.ProtWrite)
		}
	})
}

// DataUnlock implements vm.MemoryManager; pager-backed pages are never
// lock-restricted by the pager, so upgrades are immediate.
func (b *Binding) DataUnlock(o *vm.Object, idx vm.PageIdx, desired vm.Prot) {
	b.K.LockGrant(o, idx, desired)
}

// DataReturn implements vm.MemoryManager.
func (b *Binding) DataReturn(o *vm.Object, idx vm.PageIdx, data []byte, dirty, kept bool) {
	b.C.PageOut(o.ID, idx, data, dirty, func() {
		if !kept {
			b.K.RemovePage(o, idx)
		}
	})
}

// Terminate implements vm.MemoryManager.
func (b *Binding) Terminate(o *vm.Object) {}

var _ vm.MemoryManager = (*Binding)(nil)
