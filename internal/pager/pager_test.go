package pager

import (
	"testing"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/sim"
	"asvm/internal/sts"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

type penv struct {
	eng   *sim.Engine
	nodes []*node.Node
	tr    xport.Transport
}

func newPenv(n int, withDisk bool) *penv {
	e := sim.NewEngine()
	net := mesh.New(e, n, mesh.DefaultConfig(n))
	nodes := make([]*node.Node, n)
	for i := range nodes {
		nodes[i] = node.New(e, mesh.NodeID(i))
	}
	if withDisk {
		nodes[0].AttachDisk(e, 8*time.Millisecond, 4e6)
	}
	return &penv{eng: e, nodes: nodes, tr: sts.New(e, net, nodes, sts.DefaultCosts())}
}

func TestIONodeFor(t *testing.T) {
	cases := []struct {
		n     int
		total int
		ratio int
		want  mesh.NodeID
	}{
		{0, 64, 32, 0}, {31, 64, 32, 0}, {32, 64, 32, 32}, {63, 64, 32, 32},
		{5, 16, 32, 0}, {7, 8, 0, 0},
	}
	for _, c := range cases {
		if got := IONodeFor(mesh.NodeID(c.n), c.total, c.ratio); got != c.want {
			t.Errorf("IONodeFor(%d,%d,%d) = %v, want %v", c.n, c.total, c.ratio, got, c.want)
		}
	}
}

func TestPageOutThenPageIn(t *testing.T) {
	ev := newPenv(4, true)
	srv := NewServer(ev.eng, ev.tr, 0, ev.nodes[0].Disk, DefaultCosts(), "dp", true)
	cli := NewClient(ev.eng, ev.tr, 2, srv)
	obj := vm.ObjID{Node: 2, Seq: 1}
	data := make([]byte, vm.PageSize)
	data[5] = 0x77
	var gotBack []byte
	cli.PageOut(obj, 3, data, true, func() {
		cli.PageIn(obj, 3, func(d []byte, found bool) {
			if !found {
				t.Error("paged-out page not found")
			}
			gotBack = d
		})
	})
	ev.eng.Run()
	if gotBack == nil || gotBack[5] != 0x77 {
		t.Fatal("page contents lost through paging space")
	}
	if srv.PageOuts != 1 || srv.PageIns != 1 {
		t.Fatalf("server stats: %d outs %d ins", srv.PageOuts, srv.PageIns)
	}
	if ev.nodes[0].Disk.Writes != 1 {
		t.Fatalf("disk writes = %d", ev.nodes[0].Disk.Writes)
	}
}

func TestPageInMissingReportsNotFound(t *testing.T) {
	ev := newPenv(2, false)
	srv := NewServer(ev.eng, ev.tr, 0, nil, DefaultCosts(), "dp", true)
	cli := NewClient(ev.eng, ev.tr, 1, srv)
	called := false
	cli.PageIn(vm.ObjID{Node: 1, Seq: 9}, 0, func(d []byte, found bool) {
		called = true
		if found {
			t.Error("missing page reported found")
		}
	})
	ev.eng.Run()
	if !called {
		t.Fatal("no reply")
	}
}

func TestPreloadAndCache(t *testing.T) {
	ev := newPenv(2, true)
	srv := NewServer(ev.eng, ev.tr, 0, ev.nodes[0].Disk, DefaultCosts(), "fp", true)
	srv.CacheInMemory = true
	data := make([]byte, vm.PageSize)
	data[0] = 9
	obj := vm.ObjID{Node: 0, Seq: 50}
	srv.Preload(obj, 0, data)
	if !srv.Has(obj, 0) {
		t.Fatal("preloaded page not present")
	}
	cli := NewClient(ev.eng, ev.tr, 1, srv)
	reads := 0
	cli.PageIn(obj, 0, func(d []byte, found bool) {
		if !found || d[0] != 9 {
			t.Error("preload contents lost")
		}
		reads++
		// Second read must hit the pager cache, not the disk.
		cli.PageIn(obj, 0, func(d []byte, found bool) {
			if !found {
				t.Error("cached page lost")
			}
			reads++
		})
	})
	ev.eng.Run()
	if reads != 2 {
		t.Fatalf("reads = %d", reads)
	}
	if srv.DiskReads != 1 || srv.DiskSkip != 1 {
		t.Fatalf("disk reads = %d, skips = %d; cache not working", srv.DiskReads, srv.DiskSkip)
	}
}

func TestDiskSerializationLimitsThroughput(t *testing.T) {
	ev := newPenv(2, true)
	srv := NewServer(ev.eng, ev.tr, 0, ev.nodes[0].Disk, DefaultCosts(), "dp", true)
	cli := NewClient(ev.eng, ev.tr, 1, srv)
	obj := vm.ObjID{Node: 1, Seq: 1}
	done := 0
	for i := 0; i < 10; i++ {
		cli.PageOut(obj, vm.PageIdx(i), make([]byte, vm.PageSize), true, func() { done++ })
	}
	end := ev.eng.Run()
	if done != 10 {
		t.Fatalf("done = %d", done)
	}
	// 10 disk writes at 8ms seek + 2ms transfer each = at least 100ms.
	if end < 100*time.Millisecond {
		t.Fatalf("10 disk writes finished in %v; disk not serializing", end)
	}
}

func TestBindingIntoKernel(t *testing.T) {
	ev := newPenv(2, false)
	srv := NewServer(ev.eng, ev.tr, 0, nil, DefaultCosts(), "dp", true)
	k := vm.NewKernel(ev.eng, 1, vm.DefaultCosts(), vm.NewPhysMem(4), true)
	k.DefaultMgr = NewBinding(k, ev.eng, ev.tr, srv)
	task := k.NewTask("t")
	obj := k.NewAnonymous(16)
	task.Map.MapObject(0, obj, 0, 16, vm.ProtWrite, vm.InheritCopy)
	var err error
	ev.eng.Spawn("t", func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			if err = task.WriteU64(p, vm.Addr(i*vm.PageSize), uint64(i+1)); err != nil {
				return
			}
		}
		for i := 0; i < 16; i++ {
			var v uint64
			v, err = task.ReadU64(p, vm.Addr(i*vm.PageSize))
			if err != nil {
				return
			}
			if v != uint64(i+1) {
				t.Errorf("page %d = %d", i, v)
			}
		}
	})
	ev.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if srv.PageOuts == 0 || srv.PageIns == 0 {
		t.Fatalf("paging space unused: %d outs %d ins", srv.PageOuts, srv.PageIns)
	}
	if k.Mem.ResidentPages > 4 {
		t.Fatalf("resident = %d", k.Mem.ResidentPages)
	}
}

func TestBindingManagedObjectFaults(t *testing.T) {
	// A memory object backed directly by a file pager on another node.
	ev := newPenv(2, false)
	srv := NewServer(ev.eng, ev.tr, 0, nil, DefaultCosts(), "fp", true)
	k := vm.NewKernel(ev.eng, 1, vm.DefaultCosts(), vm.NewPhysMem(0), true)
	id := vm.ObjID{Node: 0, Seq: 77}
	data := make([]byte, vm.PageSize)
	data[100] = 0x5A
	srv.Preload(id, 2, data)

	b := &Binding{K: k, C: NewClient(ev.eng, ev.tr, 1, srv)}
	obj := k.NewObject(id, 8, b, vm.CopyNone)
	task := k.NewTask("t")
	task.Map.MapObject(0, obj, 0, 8, vm.ProtWrite, vm.InheritShare)
	ev.eng.Spawn("t", func(p *sim.Proc) {
		pg, err := task.Touch(p, 2*vm.PageSize, vm.ProtRead)
		if err != nil {
			t.Error(err)
			return
		}
		if pg.Data[100] != 0x5A {
			t.Error("file contents lost")
		}
		// A page with no backing zero-fills through DataUnavailable.
		pg2, err := task.Touch(p, 5*vm.PageSize, vm.ProtWrite)
		if err != nil {
			t.Error(err)
			return
		}
		if pg2.Data[0] != 0 {
			t.Error("fresh page not zero")
		}
	})
	ev.eng.Run()
}
