package norma

import (
	"testing"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/sim"
	"asvm/internal/xport"
)

var protoP = xport.RegisterProto("p")

func TestMessageCostBreakdown(t *testing.T) {
	e := sim.NewEngine()
	net := mesh.New(e, 2, mesh.DefaultConfig(2))
	hw := []*node.Node{node.New(e, 0), node.New(e, 1)}
	costs := Costs{
		SendCPU: 100 * time.Microsecond, RecvCPU: 200 * time.Microsecond,
		PortTranslateCPU: 50 * time.Microsecond, PerKBCPU: 10 * time.Microsecond,
		HeaderBytes: 256,
	}
	tr := New(e, net, hw, costs)
	var at sim.Time
	tr.Register(1, protoP, func(src mesh.NodeID, m interface{}) { at = e.Now() })
	tr.Send(0, 1, protoP, 1024, "x")
	e.Run()
	// send: 100+50+10 = 160µs; recv: 200+50+10 = 260µs; plus wire time.
	sw := 160*time.Microsecond + 260*time.Microsecond
	if at < sw {
		t.Fatalf("delivered at %v, must include %v software cost", at, sw)
	}
	if at > sw+time.Millisecond {
		t.Fatalf("delivered at %v; wire should only add microseconds", at)
	}
	if tr.Bytes != 1024+256 {
		t.Fatalf("wire bytes = %d", tr.Bytes)
	}
}

func TestDefaultCostsShape(t *testing.T) {
	c := DefaultCosts()
	if c.SendCPU <= 0 || c.RecvCPU <= 0 || c.PortTranslateCPU <= 0 {
		t.Fatal("non-positive NORMA costs")
	}
	if c.RecvBufferMsgs <= 0 || c.RetransmitDelay <= 0 {
		t.Fatal("flow-control model disabled by default")
	}
}
