// Package norma models Mach NORMA-IPC: the typed-message, port-based IPC
// the NORMA kernel distribution extends across nodes, and which XMM uses as
// its transport. Its defining property for this system is cost: every
// message pays heavy software overhead for typed-message marshalling and
// port-right translation — the paper measures NORMA-IPC at roughly 90 % of
// the latency of an XMM remote page fault.
package norma

import (
	"fmt"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/sim"
	"asvm/internal/xport"
)

// Costs are the per-message software costs of NORMA-IPC.
type Costs struct {
	// SendCPU is the sender-side cost: typed-message marshalling, port
	// name lookup, kernel entry.
	SendCPU time.Duration
	// RecvCPU is the receiver-side cost: demarshalling, port translation,
	// thread dispatch.
	RecvCPU time.Duration
	// PortTranslateCPU is paid on each side for translating port rights
	// carried in the message.
	PortTranslateCPU time.Duration
	// PerKBCPU is the copy/marshal cost per KB of payload on each side.
	PerKBCPU time.Duration
	// HeaderBytes is the wire overhead per message (typed-message headers,
	// NORMA interposition records).
	HeaderBytes int

	// RecvBufferMsgs models NORMA's broken flow control in many-to-one
	// scenarios (paper §1): a receiver has this many message buffers; a
	// message arriving with that many already queued is dropped and pays
	// RetransmitDelay before redelivery. Zero disables the model.
	RecvBufferMsgs  int
	RetransmitDelay time.Duration
}

// DefaultCosts returns values calibrated so that one NORMA round trip with
// a page lands near the paper's measured XMM latencies (DESIGN.md §6).
func DefaultCosts() Costs {
	return Costs{
		SendCPU:          400 * time.Microsecond,
		RecvCPU:          450 * time.Microsecond,
		PortTranslateCPU: 150 * time.Microsecond,
		PerKBCPU:         25 * time.Microsecond,
		HeaderBytes:      256,
		RecvBufferMsgs:   32,
		RetransmitDelay:  4 * time.Millisecond,
	}
}

// Transport implements xport.Transport with NORMA-IPC cost modelling.
type Transport struct {
	eng   *sim.Engine
	net   *mesh.Network
	nodes []*node.Node
	costs Costs

	// handlers[node][proto] is the registered handler, nil when absent
	// (dense ProtoID-indexed dispatch; see xport.RegisterProto).
	handlers [][]xport.Handler

	// Stats.
	Msgs        uint64
	Bytes       uint64
	Retransmits uint64
	Nacks       uint64
}

// New builds a NORMA transport over the mesh for the given nodes.
func New(e *sim.Engine, net *mesh.Network, nodes []*node.Node, costs Costs) *Transport {
	return &Transport{
		eng: e, net: net, nodes: nodes, costs: costs,
		handlers: make([][]xport.Handler, len(nodes)),
	}
}

// Name implements xport.Transport.
func (t *Transport) Name() string { return "norma" }

// Register implements xport.Transport.
func (t *Transport) Register(n mesh.NodeID, proto xport.ProtoID, h xport.Handler) {
	row := t.handlers[n]
	for int(proto) >= len(row) {
		row = append(row, nil)
	}
	if row[proto] != nil {
		panic(fmt.Sprintf("norma: duplicate registration %v/%s", n, proto))
	}
	row[proto] = h
	t.handlers[n] = row
}

// lookup returns the handler for (n, proto), nil when unregistered.
func (t *Transport) lookup(n mesh.NodeID, proto xport.ProtoID) xport.Handler {
	if row := t.handlers[n]; int(proto) < len(row) {
		return row[proto]
	}
	return nil
}

// Send implements xport.Transport.
func (t *Transport) Send(src, dst mesh.NodeID, proto xport.ProtoID, payloadBytes int, m interface{}) {
	h := t.lookup(dst, proto)
	if h == nil {
		t.nack(src, dst, proto, payloadBytes, m)
		return
	}
	t.Msgs++
	wire := payloadBytes + t.costs.HeaderBytes
	t.Bytes += uint64(wire)
	perSide := t.costs.PortTranslateCPU + t.perKB(payloadBytes)
	sendCost := t.costs.SendCPU + perSide
	recvCost := t.costs.RecvCPU + perSide
	// Sender message processor, then the wire, then the receiver message
	// processor, then the handler.
	t.nodes[src].MsgProc.Do(sendCost, func() {
		t.net.Send(src, dst, wire, func() {
			t.deliver(src, dst, recvCost, h, m)
		})
	})
}

// deliver hands the message to the receiver's message processor, modelling
// the many-to-one buffer exhaustion: when too many messages already queue
// there, this one bounces and is retransmitted after a delay.
func (t *Transport) deliver(src, dst mesh.NodeID, recvCost time.Duration, h xport.Handler, m interface{}) {
	mp := t.nodes[dst].MsgProc
	if t.costs.RecvBufferMsgs > 0 && recvCost > 0 {
		backlog := mp.BusyUntil() - t.eng.Now()
		if backlog > 0 && int(backlog/recvCost) >= t.costs.RecvBufferMsgs {
			t.Retransmits++
			t.eng.Schedule(t.costs.RetransmitDelay, func() {
				t.deliver(src, dst, recvCost, h, m)
			})
			return
		}
	}
	mp.Do(recvCost, func() {
		h(src, m)
	})
}

// nack bounces a message addressed to an unregistered destination back to
// the sender as an xport.Nack (NORMA's dead-port notification): the attempt
// pays the full outbound cost, the rejection comes back as a header-only
// message. Panics if the sender has no handler for the bounce either.
func (t *Transport) nack(src, dst mesh.NodeID, proto xport.ProtoID, payloadBytes int, m interface{}) {
	back := t.lookup(src, proto)
	if back == nil {
		panic(fmt.Sprintf("norma: no handler for %v/%s (and no %v/%s sender handler for the bounce)",
			dst, proto, src, proto))
	}
	t.Nacks++
	t.Msgs += 2
	wire := payloadBytes + t.costs.HeaderBytes
	t.Bytes += uint64(wire + t.costs.HeaderBytes)
	perSide := t.costs.PortTranslateCPU + t.perKB(payloadBytes)
	t.nodes[src].MsgProc.Do(t.costs.SendCPU+perSide, func() {
		t.net.Send(src, dst, wire, func() {
			t.nodes[dst].MsgProc.Do(t.costs.RecvCPU+perSide, func() {
				t.net.Send(dst, src, t.costs.HeaderBytes, func() {
					t.nodes[src].MsgProc.Do(t.costs.RecvCPU, func() {
						back(dst, xport.Nack{Dst: dst, Proto: proto, Msg: m})
					})
				})
			})
		})
	})
}

func (t *Transport) perKB(payloadBytes int) time.Duration {
	return time.Duration(float64(payloadBytes) / 1024 * float64(t.costs.PerKBCPU))
}

var _ xport.Transport = (*Transport)(nil)
