// Package node models the per-node hardware resources of the Paragon that
// the memory system competes for: the dedicated message co-processor that
// handles all protocol traffic serially, and (on I/O nodes) a disk.
package node

import (
	"fmt"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/sim"
)

// Node is one Paragon node's shared resources.
type Node struct {
	ID mesh.NodeID

	// MsgProc is the dedicated message processor: every incoming and
	// outgoing protocol message consumes serial time here. Contention on
	// this server is what melts centralized managers at scale.
	MsgProc *sim.Server

	// Disk is non-nil on I/O nodes.
	Disk *Disk
}

// New creates a node without a disk.
func New(e *sim.Engine, id mesh.NodeID) *Node {
	return &Node{
		ID:      id,
		MsgProc: sim.NewServer(e, fmt.Sprintf("msgproc%d", id)),
	}
}

// AttachDisk gives the node a disk with the given characteristics. Writes
// pay the same positioning cost as reads unless SetWriteSeek raises it
// (1996 paging spaces allocated blocks on the write path, making pageouts
// much slower than pageins).
func (n *Node) AttachDisk(e *sim.Engine, seek time.Duration, bytesPerSecond float64) *Disk {
	n.Disk = &Disk{
		srv:            sim.NewServer(e, fmt.Sprintf("disk%d", n.ID)),
		SeekTime:       seek,
		WriteSeek:      seek,
		BytesPerSecond: bytesPerSecond,
	}
	return n.Disk
}

// Disk is a serial storage device: each operation pays a positioning cost
// plus transfer time, and operations queue.
type Disk struct {
	srv            *sim.Server
	SeekTime       time.Duration // read positioning
	WriteSeek      time.Duration // write positioning (+ allocation)
	BytesPerSecond float64

	// Stats.
	Reads, Writes           uint64
	BytesRead, BytesWritten uint64
}

// SetWriteSeek overrides the write positioning cost.
func (d *Disk) SetWriteSeek(seek time.Duration) { d.WriteSeek = seek }

func (d *Disk) xferTime(bytes int) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / d.BytesPerSecond * float64(time.Second))
}

// Read performs a read of the given size; fn runs at completion.
func (d *Disk) Read(bytes int, fn func()) {
	d.Reads++
	d.BytesRead += uint64(bytes)
	d.srv.Do(d.SeekTime+d.xferTime(bytes), fn)
}

// Write performs a write of the given size; fn runs at completion.
func (d *Disk) Write(bytes int, fn func()) {
	d.Writes++
	d.BytesWritten += uint64(bytes)
	d.srv.Do(d.WriteSeek+d.xferTime(bytes), fn)
}

// Busy reports whether the disk has queued work.
func (d *Disk) Busy() bool { return !d.srv.Idle() }

// Server exposes the underlying serial server for accounting.
func (d *Disk) Server() *sim.Server { return d.srv }
