package node

import (
	"testing"
	"time"

	"asvm/internal/sim"
)

func TestDiskTiming(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, 0)
	d := n.AttachDisk(e, 10*time.Millisecond, 1e6) // 1 MB/s
	var done sim.Time
	d.Write(1000, func() { done = e.Now() }) // 10ms seek + 1ms transfer
	e.Run()
	if done != 11*time.Millisecond {
		t.Fatalf("write done at %v, want 11ms", done)
	}
	if d.Writes != 1 || d.BytesWritten != 1000 {
		t.Fatalf("stats: %d writes %d bytes", d.Writes, d.BytesWritten)
	}
}

func TestDiskQueues(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, 0)
	d := n.AttachDisk(e, 10*time.Millisecond, 1e9)
	var times []sim.Time
	for i := 0; i < 3; i++ {
		d.Read(0, func() { times = append(times, e.Now()) })
	}
	if !d.Busy() {
		t.Fatal("disk should be busy")
	}
	e.Run()
	for i, want := range []sim.Time{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond} {
		if times[i] != want {
			t.Fatalf("ops at %v, want 10/20/30ms", times)
		}
	}
	if d.Reads != 3 {
		t.Fatalf("Reads = %d", d.Reads)
	}
}

func TestNodeHasMsgProc(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, 7)
	if n.MsgProc == nil || n.ID != 7 {
		t.Fatal("node misconstructed")
	}
	if n.Disk != nil {
		t.Fatal("node should have no disk by default")
	}
}
