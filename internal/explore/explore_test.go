package explore

import (
	"path/filepath"
	"reflect"
	"testing"

	"asvm/internal/asvm"
	"asvm/internal/machine"
)

// dropXferReaders re-plants the classic lost-reader-list bug: an ownership
// transfer that forgets the old owner's reader list (asvm.Node.Hooks).
func dropXferReaders(c *machine.Cluster) {
	for _, nd := range c.ASVMs {
		nd.Hooks.DropXferReaders = true
	}
}

// TestMutationDFSFindsPlantedBug proves the whole pipeline end to end:
// plant a protocol bug, have DFS find it, shrink the reproducer, and show
// the reproducer both replays the failure and is specific to the bug.
func TestMutationDFSFindsPlantedBug(t *testing.T) {
	sc := Lookup("xfer-evict")
	if sc == nil {
		t.Fatal("scenario xfer-evict missing")
	}
	r := DFS(sc, DFSOptions{MaxChoices: 8, MaxRuns: 400}, dropXferReaders)
	if r.V == nil {
		t.Fatalf("planted reader-list bug not found in %d schedules", r.Runs)
	}
	if r.V.Kind != "invariant" {
		t.Errorf("violation kind = %q, want invariant (err: %v)", r.V.Kind, r.V.Err)
	}
	if len(r.Reproducer) > 12 {
		t.Errorf("shrunk reproducer has %d choices, want <= 12 (%s)",
			len(r.Reproducer), EncodeChoices(r.Reproducer))
	}
	rep := Replay(sc, r.Reproducer, dropXferReaders)
	if rep.V == nil {
		t.Fatal("shrunk reproducer does not replay the violation")
	}
	// The reproducer captures the bug, not a scenario quirk: without the
	// mutation the identical schedule must be clean.
	if clean := Replay(sc, r.Reproducer, nil); clean.V != nil {
		t.Errorf("reproducer fails without the planted bug: %v", clean.V)
	}
}

// TestWalkFindsPlantedBug checks the random-walk driver reaches the same
// planted bug.
func TestWalkFindsPlantedBug(t *testing.T) {
	sc := Lookup("xfer-evict")
	r := Walk(sc, 100, 1, dropXferReaders)
	if r.V == nil {
		t.Fatalf("planted bug not found in %d random schedules", r.Runs)
	}
	if rep := Replay(sc, r.Reproducer, dropXferReaders); rep.V == nil {
		t.Error("walk reproducer does not replay the violation")
	}
}

// TestReplayBitIdentical pins the reproducibility contract: replaying one
// choice string twice yields identical recorded traces, and a violation
// renders identically.
func TestReplayBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		sc     string
		ks     []int
		mutate Mutate
	}{
		{"rw2", nil, nil},
		{"rw2", []int{1, 0, 2, 1}, nil},
		{"ring4", []int{0, 1, 1, 0, 2}, nil},
		{"xfer-evict", nil, dropXferReaders},
	} {
		sc := Lookup(tc.sc)
		a := Replay(sc, tc.ks, tc.mutate)
		b := Replay(sc, tc.ks, tc.mutate)
		if !reflect.DeepEqual(a.Choices, b.Choices) {
			t.Errorf("%s %v: replays diverged: %d vs %d choice points",
				tc.sc, tc.ks, len(a.Choices), len(b.Choices))
		}
		if (a.V == nil) != (b.V == nil) {
			t.Fatalf("%s %v: one replay failed, the other did not", tc.sc, tc.ks)
		}
		if a.V != nil && a.V.String() != b.V.String() {
			t.Errorf("%s %v: violations differ:\n  %v\n  %v", tc.sc, tc.ks, a.V, b.V)
		}
	}
}

// TestScenariosCleanUnderExploration is the in-tree smoke: every scenario
// survives a short walk and every bounded scenario a shallow DFS.
func TestScenariosCleanUnderExploration(t *testing.T) {
	for _, sc := range BoundedScenarios() {
		if r := DFS(sc, DFSOptions{MaxChoices: 6, MaxRuns: 120}, nil); r.V != nil {
			t.Errorf("dfs %s: %v", sc.Name, r.V)
		}
	}
	for _, sc := range Scenarios() {
		if r := Walk(sc, 40, 7, nil); r.V != nil {
			t.Errorf("walk %s: %v", sc.Name, r.V)
		}
	}
}

// TestStaleGrantRegression replays the schedule that exposed the real
// grant-vs-invalidation race the explorer found (an invalidation overtaking
// an in-flight read grant left a copy unknown to the new owner). The
// committed reproducer must stay clean forever.
func TestStaleGrantRegression(t *testing.T) {
	name, ks, err := LoadReproducer(filepath.Join("testdata", "stale-grant.repro"))
	if err != nil {
		t.Fatal(err)
	}
	sc := Lookup(name)
	if sc == nil {
		t.Fatalf("reproducer names unknown scenario %q", name)
	}
	if out := Replay(sc, ks, nil); out.V != nil {
		t.Errorf("stale-grant schedule regressed: %v", out.V)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	for _, ks := range [][]int{nil, {0}, {1, 0, 3}, {35, 0, 12, 7}, {0, 0, 0}} {
		enc := EncodeChoices(ks)
		dec, err := DecodeChoices(enc)
		if err != nil {
			t.Fatalf("DecodeChoices(%q): %v", enc, err)
		}
		if len(ks) == 0 && len(dec) == 0 {
			continue
		}
		if !reflect.DeepEqual(dec, ks) {
			t.Errorf("roundtrip %v -> %q -> %v", ks, enc, dec)
		}
	}
	if got := EncodeChoices(nil); got != "-" {
		t.Errorf("EncodeChoices(nil) = %q, want \"-\"", got)
	}
	if _, err := DecodeChoices("10!2"); err == nil {
		t.Error("DecodeChoices accepted an invalid digit")
	}
}

func TestReproducerFileRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.repro")
	ks := []int{2, 0, 1, 4}
	if err := WriteReproducer(path, "rw2", ks); err != nil {
		t.Fatal(err)
	}
	name, got, err := LoadReproducer(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "rw2" || !reflect.DeepEqual(got, ks) {
		t.Errorf("roundtrip = (%q, %v), want (rw2, %v)", name, got, ks)
	}
}

// TestShrinkPreservesFailure: shrinking output is always validated by
// replay, so a shrunk trace still fails and is no longer than the input.
func TestShrinkPreservesFailure(t *testing.T) {
	sc := Lookup("xfer-evict")
	out := Replay(sc, nil, dropXferReaders)
	if out.V == nil {
		t.Skip("default schedule does not trip the planted bug on this scenario")
	}
	full := Ks(out.Choices)
	shrunk := Shrink(sc, full, dropXferReaders)
	if len(shrunk) > len(full) {
		t.Errorf("shrink grew the trace: %d -> %d", len(full), len(shrunk))
	}
	if rep := Replay(sc, shrunk, dropXferReaders); rep.V == nil {
		t.Errorf("shrunk trace %s no longer fails", EncodeChoices(shrunk))
	}
}

// TestExplorationReportsCoverage pins the coverage plumbing: a campaign
// over any scenario must exercise protocol transitions and report them,
// and single-run outcomes must carry per-run coverage that the campaign
// totals dominate.
func TestExplorationReportsCoverage(t *testing.T) {
	sc := Lookup("rw2")
	if sc == nil {
		t.Fatal("scenario rw2 missing")
	}
	w := Walk(sc, 20, 7, nil)
	hit, legal := w.Cover.Exercised()
	if hit == 0 {
		t.Fatal("walk campaign exercised zero transitions")
	}
	if hit > legal {
		t.Fatalf("hit %d > legal %d", hit, legal)
	}
	d := DFS(sc, DFSOptions{MaxChoices: 4, MaxRuns: 40}, nil)
	if dh, _ := d.Cover.Exercised(); dh == 0 {
		t.Fatal("dfs campaign exercised zero transitions")
	}
	one := Replay(sc, nil, nil)
	oh, _ := one.Cover.Exercised()
	if oh == 0 {
		t.Fatal("single replay exercised zero transitions")
	}
	// The default schedule is one of the walk's sampled schedules' peers:
	// each cell the replay exercised at least exists in the same table.
	for s := range one.Cover {
		for e := range one.Cover[s] {
			if one.Cover[s][e] > 0 && !asvm.TransitionLegal(asvm.PageProtoState(s), asvm.ProtoEvent(e)) {
				t.Fatalf("coverage recorded on illegal cell %d×%d", s, e)
			}
		}
	}
}
