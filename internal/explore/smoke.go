package explore

import (
	"fmt"
	"io"
)

// Smoke is the CI-sized exploration pass shared by `asvmbench -explore` and
// the workflow smoke leg: a quick DFS over every bounded scenario plus a
// random walk of walkRuns schedules over the full registry. It stops at the
// first violation, printing the failure the same way asvmcheck does, and
// returns an error carrying the reproducer.
func Smoke(w io.Writer, walkRuns int, seed uint64) error {
	opt := DFSOptions{MaxChoices: 8, MaxRuns: 400}
	for _, sc := range BoundedScenarios() {
		r := DFS(sc, opt, nil)
		if r.V != nil {
			fmt.Fprintf(w, "explore dfs  %-10s VIOLATION: %v\n", sc.Name, r.V)
			return fmt.Errorf("scenario %s: %v (reproducer %s)",
				sc.Name, r.V.Err, EncodeChoices(r.Reproducer))
		}
		fmt.Fprintf(w, "explore dfs  %-10s %4d schedules clean\n", sc.Name, r.Runs)
	}
	for _, sc := range Scenarios() {
		r := Walk(sc, walkRuns, seed, nil)
		if r.V != nil {
			fmt.Fprintf(w, "explore walk %-10s VIOLATION: %v\n", sc.Name, r.V)
			return fmt.Errorf("scenario %s: %v (reproducer %s)",
				sc.Name, r.V.Err, EncodeChoices(r.Reproducer))
		}
		fmt.Fprintf(w, "explore walk %-10s %4d schedules clean\n", sc.Name, r.Runs)
	}
	return nil
}
