package explore

import (
	"asvm/internal/asvm"
	"asvm/internal/sim"
)

// WalkResult summarizes a random-walk campaign.
type WalkResult struct {
	Runs int
	// V is the first violation found (nil: none); Reproducer its shrunk
	// choice string.
	V          *Violation
	Reproducer []int
	// Cover accumulates transition coverage over every sampled schedule —
	// the campaign's measure of how much of the protocol table it reached.
	Cover asvm.Coverage
}

// Walk samples runs schedules of sc uniformly at random from seed,
// stopping at the first violation (which it shrinks). Unlike DFS it
// perturbs every choice point of a run, so it reaches deep interleavings
// of Table-1-scale scenarios that exhaustive search cannot.
func Walk(sc *Scenario, runs int, seed uint64, mutate Mutate) WalkResult {
	var res WalkResult
	rng := sim.NewRNG(seed)
	for i := 0; i < runs; i++ {
		out := runOne(sc, nil, sim.NewRNG(rng.Uint64()), mutate)
		res.Runs++
		res.Cover.Merge(&out.Cover)
		if out.V != nil {
			res.V = out.V
			res.Reproducer = Shrink(sc, Ks(out.Choices), mutate)
			return res
		}
	}
	return res
}
