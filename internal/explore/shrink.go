package explore

// Shrink reduces a failing choice string to a minimal reproducer. Zero is
// special in this encoding — it is the default alternative, and choices
// past the string's end are implicitly zero — so minimization is two
// moves: set a choice to 0, and strip trailing zeros. The result is the
// shortest suffix-free string this greedy pass can reach whose replay
// still fails; it is verified by re-running every candidate.
//
// Random-walk traces can be hundreds of choices long, so a bisection pass
// first truncates the tail (violations trigger early in these scenarios)
// before the quadratic zeroing pass runs.
func Shrink(sc *Scenario, ks []int, mutate Mutate) []int {
	fails := func(cand []int) bool {
		return Replay(sc, cand, mutate).V != nil
	}
	cur := trimZeros(ks)
	if !fails(cur) {
		// Flaky under re-execution would mean broken determinism; be
		// conservative and return the original string unshrunk.
		return ks
	}

	// Coarse truncation for long traces: find a short failing prefix by
	// bisection. The predicate is not strictly monotonic, so the result is
	// validated before being adopted.
	if len(cur) > 48 {
		lo, hi := 0, len(cur)
		for lo < hi {
			mid := (lo + hi) / 2
			if fails(trimZeros(cur[:mid])) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if cand := trimZeros(cur[:hi]); len(cand) < len(cur) && fails(cand) {
			cur = cand
		}
	}

	// Greedy zeroing to fixpoint, deepest choices first (zeroing the tail
	// also shortens the string via trimZeros).
	for changed := true; changed; {
		changed = false
		for i := len(cur) - 1; i >= 0; i-- {
			if cur[i] == 0 {
				continue
			}
			cand := append([]int(nil), cur[:i]...)
			cand = append(cand, 0)
			cand = append(cand, cur[i+1:]...)
			cand = trimZeros(cand)
			if fails(cand) {
				cur = cand
				changed = true
				if i >= len(cur) {
					i = len(cur)
				}
			}
		}
	}
	return cur
}

func trimZeros(ks []int) []int {
	n := len(ks)
	for n > 0 && ks[n-1] == 0 {
		n--
	}
	return append([]int(nil), ks[:n]...)
}
