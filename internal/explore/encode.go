package explore

import (
	"fmt"
	"strings"
)

// Choice strings are one base36 digit per choice point (alternative
// indices never approach 36: event ties are capped at 8, latency steps at
// 3, fault fates at 4). The empty sequence — the unperturbed default
// schedule — encodes as "-" so it survives whitespace-delimited file
// formats.

const choiceDigits = "0123456789abcdefghijklmnopqrstuvwxyz"

// EncodeChoices renders a choice sequence as a compact string.
func EncodeChoices(ks []int) string {
	if len(ks) == 0 {
		return "-"
	}
	var b strings.Builder
	b.Grow(len(ks))
	for _, k := range ks {
		if k < 0 || k >= len(choiceDigits) {
			panic(fmt.Sprintf("explore: choice %d out of encodable range", k))
		}
		b.WriteByte(choiceDigits[k])
	}
	return b.String()
}

// DecodeChoices parses a choice string produced by EncodeChoices.
func DecodeChoices(s string) ([]int, error) {
	if s == "-" {
		return nil, nil
	}
	out := make([]int, len(s))
	for i := 0; i < len(s); i++ {
		j := strings.IndexByte(choiceDigits, s[i])
		if j < 0 {
			return nil, fmt.Errorf("explore: invalid choice digit %q at offset %d", s[i], i)
		}
		out[i] = j
	}
	return out, nil
}
