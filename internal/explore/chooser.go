package explore

import "asvm/internal/sim"

// recChooser implements sim.Chooser. The first len(prefix) choice points
// are answered from prefix; later points take alternative 0 (the default
// schedule) or, when rng is set, a uniformly random alternative. Every
// point is recorded, so the full trace of a run — and therefore its exact
// replay — is always available.
//
// A prefix entry can exceed the point's width when the file being replayed
// desynchronized from the scenario (edited reproducer, changed code). The
// chooser clamps to the last alternative rather than crashing, and flags
// the run so drivers can warn.
type recChooser struct {
	prefix  []int
	rng     *sim.RNG
	trace   []Choice
	clamped bool
}

// Choose implements sim.Chooser.
func (c *recChooser) Choose(kind sim.ChoiceKind, n int) int {
	k := 0
	if i := len(c.trace); i < len(c.prefix) {
		k = c.prefix[i]
		if k >= n {
			k = n - 1
			c.clamped = true
		}
	} else if c.rng != nil {
		k = c.rng.Intn(n)
	}
	c.trace = append(c.trace, Choice{Kind: kind, N: n, K: k})
	return k
}
