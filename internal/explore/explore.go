// Package explore is a schedule-exploration subsystem — a small stateless
// model checker for the ASVM protocol machines. It re-runs bounded
// scenarios under a sim.Chooser that perturbs the orders the protocol must
// not depend on (same-timestamp event dispatch, message delivery latency,
// fault-injected message fates) and checks safety at every busy-bit
// quiesce, at drain, and for termination.
//
// Every run is identified by its *choice string*: the sequence of
// alternatives taken at each choice point, base36-encoded. Choices beyond
// the string's end default to alternative 0 (the unperturbed schedule), so
// a choice string is simultaneously a schedule, a reproducer, and a node
// in the search tree. Three drivers share this representation:
//
//   - DFS enumerates all schedules whose first MaxChoices points stay
//     within MaxBranch alternatives (exhaustive on bounded scenarios);
//   - Walk samples schedules uniformly at random from a seed;
//   - Replay re-executes one choice string exactly.
//
// On a failing run the subsystem reports the violation, the per-node
// protocol traces, and a reproducer shrunk by Shrink.
package explore

import (
	"fmt"

	"asvm/internal/asvm"
	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

// StepBound caps events per run: a bounded scenario finishes in well under
// a hundred thousand events, so hitting the bound means livelock (e.g. a
// forwarding loop that a perturbed schedule failed to break).
const StepBound = 2_000_000

// RetransmitBound caps the reliability layer's total retransmissions per
// run. A bounded scenario retransmits at most a few hundred times even
// under hostile fault fates; blowing through this bound means a retransmit
// storm — a frame that can never be acknowledged yet is never declared
// dead, the transport-level flavor of livelock.
const RetransmitBound = 10_000

// Choice is one resolved choice point: its kind, how many alternatives the
// engine offered, and which was taken.
type Choice struct {
	Kind sim.ChoiceKind
	N    int
	K    int
}

// NodeTrace is one node's retained protocol trace at the moment of failure.
type NodeTrace struct {
	Node  int
	Lines []string
}

// Violation describes a failing run.
type Violation struct {
	// Kind is "invariant", "deadlock", "step-bound", "liveness", "workload"
	// or "panic".
	Kind string
	Err  error
	// Choices is the full recorded choice trace of the failing run (its
	// encoding replays the failure exactly).
	Choices []Choice
	// Nodes holds the per-node ring-buffer traces captured at failure.
	Nodes []NodeTrace
}

// String implements fmt.Stringer.
func (v *Violation) String() string {
	return fmt.Sprintf("%s: %v [choices %s]", v.Kind, v.Err, EncodeChoices(Ks(v.Choices)))
}

// Outcome is the result of executing one schedule.
type Outcome struct {
	// Choices is the recorded trace, failing or clean.
	Choices []Choice
	// V is nil when the run completed cleanly.
	V *Violation
	// Cover is the run's protocol transition coverage, merged across all
	// nodes — which (state, event) cells of the asvm table the schedule
	// actually exercised.
	Cover asvm.Coverage
}

// Ks projects a choice trace to its taken alternatives.
func Ks(t []Choice) []int {
	out := make([]int, len(t))
	for i, c := range t {
		out[i] = c.K
	}
	return out
}

// Mutate optionally perturbs a freshly built cluster before the workload
// starts — mutation tests use it to re-enable known-bad behaviours via
// asvm.Node.Hooks.
type Mutate func(*machine.Cluster)

// runOne executes scenario sc under one schedule: the first len(prefix)
// choice points answer from prefix, later ones take 0 (rng nil) or a
// uniformly random alternative. It never panics: failures of any kind are
// folded into the returned Outcome.
func runOne(sc *Scenario, prefix []int, rng *sim.RNG, mutate Mutate) Outcome {
	ch := &recChooser{prefix: prefix, rng: rng}
	var vioKind string
	var vioErr error
	report := func(kind string, err error) {
		if vioErr == nil {
			vioKind, vioErr = kind, err
		}
	}

	c := machine.New(sc.Params())
	if mutate != nil {
		mutate(c)
	}
	for _, nd := range c.ASVMs {
		nd.Trace.Enable()
	}

	var regions []*machine.Region
	drained := false
	func() {
		// Protocol panics on the engine goroutine (stray acks, transport
		// misuse) are findings, not crashes.
		defer func() {
			if r := recover(); r != nil {
				report("panic", fmt.Errorf("panic: %v", r))
			}
		}()
		c.Eng.SetChooser(ch)
		regions = sc.Run(c, func(err error) { report("workload", err) })
		for _, nd := range c.ASVMs {
			nd.MidCheck = func(info *asvm.DomainInfo, idx vm.PageIdx) {
				// Record only the first finding; the run still drains so
				// parked procs unwind instead of leaking.
				if vioErr != nil {
					return
				}
				if err := asvm.CheckPageInvariants(c.ASVMCluster(), info, idx); err != nil {
					report("invariant", fmt.Errorf("%v\n%s", err, asvm.DumpPage(c.ASVMCluster(), info, idx)))
				}
			}
		}
		drained = c.Eng.RunMax(StepBound)
	}()

	if vioErr == nil && !drained {
		report("step-bound", fmt.Errorf("run exceeded %d events (livelock?)", StepBound))
	}
	// Liveness: the run drained, so every fault a surviving node started
	// must have resolved — granted, or failed with a typed error — and the
	// reliability layer must not have ground through a retransmit storm.
	// Checked before the generic deadlock verdict: a proc parked on a
	// never-resolving fault is a liveness bug first, and the fault dump
	// says which page and why.
	if vioErr == nil && c.RelTR != nil && c.RelTR.Retransmits > RetransmitBound {
		report("liveness", fmt.Errorf("%d retransmissions (bound %d): retransmit storm",
			c.RelTR.Retransmits, RetransmitBound))
	}
	if vioErr == nil {
		for _, r := range regions {
			if stuck := asvm.OutstandingFaults(c.ASVMCluster(), r.ASVMInfo()); len(stuck) > 0 {
				report("liveness", fmt.Errorf("%d faults never granted nor typed-failed (pages %v)\n%s",
					len(stuck), stuck, asvm.DumpPage(c.ASVMCluster(), r.ASVMInfo(), stuck[0])))
				break
			}
		}
	}
	if vioErr == nil && c.Eng.LiveProcs() > 0 {
		report("deadlock", fmt.Errorf("%d procs blocked with no events pending", c.Eng.LiveProcs()))
	}
	if vioErr == nil {
		for _, r := range regions {
			if err := c.CheckInvariants(r); err != nil {
				report("invariant", err)
				break
			}
		}
	}

	out := Outcome{Choices: ch.trace}
	for _, nd := range c.ASVMs {
		out.Cover.Merge(&nd.Cover)
	}
	if vioErr != nil {
		out.V = &Violation{
			Kind:    vioKind,
			Err:     vioErr,
			Choices: ch.trace,
			Nodes:   snapshotTraces(c),
		}
	}
	return out
}

// Replay executes exactly the schedule described by ks and returns the
// outcome (clean or failing). Two replays of the same choice string are
// bit-identical.
func Replay(sc *Scenario, ks []int, mutate Mutate) Outcome {
	return runOne(sc, ks, nil, mutate)
}

func snapshotTraces(c *machine.Cluster) []NodeTrace {
	var out []NodeTrace
	for i, nd := range c.ASVMs {
		if lines := nd.Trace.Lines(); len(lines) > 0 {
			out = append(out, NodeTrace{Node: i, Lines: lines})
		}
	}
	return out
}
