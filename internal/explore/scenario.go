package explore

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// Scenario is one exploration workload: a small cluster, a deterministic
// set of tasks driving the protocol, and the regions whose invariants must
// hold. All schedule variation comes from the chooser — scenarios
// themselves are seed-fixed.
type Scenario struct {
	Name  string
	About string
	// Bounded marks scenarios small enough for exhaustive DFS (2–4 nodes,
	// a handful of faults). Walk accepts any scenario.
	Bounded bool
	// Live marks the liveness-focused set (crash plans, lossy links): the
	// scenarios asvmcheck -live walks. Every run already enforces the
	// liveness contract — these are the ones built to stress it.
	Live bool
	// Params returns the cluster configuration.
	Params func() machine.Params
	// Run builds regions and spawns the workload procs; errors a proc hits
	// (fault retries exhausted, mapping failures) go to fail. The returned
	// regions are invariant-checked at every busy quiesce and at drain.
	Run func(c *machine.Cluster, fail func(error)) []*machine.Region
}

// worker spawns one task-driving proc on a node of the region.
func worker(c *machine.Cluster, fail func(error), node int, r *machine.Region,
	body func(p *sim.Proc, t *vm.Task) error) {
	c.Spawn(fmt.Sprintf("%s-n%d", r.Name, node), func(p *sim.Proc) {
		t, err := c.TaskOn(node, fmt.Sprintf("w%d", node), r, 0)
		if err != nil {
			fail(err)
			return
		}
		if err := body(p, t); err != nil {
			fail(err)
		}
	})
}

func smallParams(nodes int) machine.Params {
	p := machine.DefaultParams(nodes)
	p.TrackData = true
	return p
}

// tolerate maps crash-stop degradation errors to nil: a worker whose node
// died or whose page became unreachable has been degraded, not failed. Any
// other error is a real workload failure.
func tolerate(err error) error {
	var nc *vm.ErrNodeCrashed
	var ou *vm.ErrObjectUnavailable
	if errors.As(err, &nc) || errors.As(err, &ou) {
		return nil
	}
	return err
}

// addr returns the byte address of word w inside page pg.
func addr(pg, w int) vm.Addr {
	return vm.Addr(pg)*vm.PageSize + vm.Addr(w*8)
}

var scenarios = []*Scenario{
	{
		Name:    "rw2",
		About:   "2 nodes, 1 page: concurrent write/read ping-pong",
		Bounded: true,
		Params:  func() machine.Params { return smallParams(2) },
		Run: func(c *machine.Cluster, fail func(error)) []*machine.Region {
			r := c.NewSharedRegion("rw2", 1, []int{0, 1})
			for n := 0; n < 2; n++ {
				n := n
				worker(c, fail, n, r, func(p *sim.Proc, t *vm.Task) error {
					for i := 0; i < 3; i++ {
						if err := t.WriteU64(p, addr(0, n), uint64(n*10+i)); err != nil {
							return err
						}
						if _, err := t.ReadU64(p, addr(0, 2)); err != nil {
							return err
						}
						p.Sleep(100 * time.Microsecond)
					}
					return nil
				})
			}
			return []*machine.Region{r}
		},
	},
	{
		Name:    "rw3",
		About:   "3 nodes, 2 pages: writers collide across pages",
		Bounded: true,
		Params:  func() machine.Params { return smallParams(3) },
		Run: func(c *machine.Cluster, fail func(error)) []*machine.Region {
			r := c.NewSharedRegion("rw3", 2, []int{0, 1, 2})
			for n := 0; n < 3; n++ {
				n := n
				worker(c, fail, n, r, func(p *sim.Proc, t *vm.Task) error {
					for i := 0; i < 2; i++ {
						pg := (n + i) % 2
						if err := t.WriteU64(p, addr(pg, n), uint64(100*n+i)); err != nil {
							return err
						}
						if _, err := t.ReadU64(p, addr(1-pg, 3)); err != nil {
							return err
						}
					}
					return nil
				})
			}
			return []*machine.Region{r}
		},
	},
	{
		Name:    "ring4",
		About:   "4 nodes, 1 page: ownership rings around staggered writers",
		Bounded: true,
		Params:  func() machine.Params { return smallParams(4) },
		Run: func(c *machine.Cluster, fail func(error)) []*machine.Region {
			r := c.NewSharedRegion("ring4", 1, []int{0, 1, 2, 3})
			for n := 0; n < 4; n++ {
				n := n
				worker(c, fail, n, r, func(p *sim.Proc, t *vm.Task) error {
					p.Sleep(time.Duration(n) * 50 * time.Microsecond)
					if err := t.WriteU64(p, addr(0, n), uint64(n)); err != nil {
						return err
					}
					if _, err := t.ReadU64(p, addr(0, (n+1)%4)); err != nil {
						return err
					}
					return t.WriteU64(p, addr(0, n+4), uint64(n))
				})
			}
			return []*machine.Region{r}
		},
	},
	{
		Name:    "xfer-evict",
		About:   "3 nodes, 2-page caches: eviction hands ownership to a reader, then the new owner must invalidate the other",
		Bounded: true,
		Params: func() machine.Params {
			p := smallParams(3)
			// Tiny caches make the owner evict the contended page while
			// read copies are still out — the ownerXfer/pageOffer path.
			p.MemPages = 2
			return p
		},
		Run: func(c *machine.Cluster, fail func(error)) []*machine.Region {
			r := c.NewSharedRegion("xe", 3, []int{0, 1, 2})
			// Node 0: owns p0, then touches p1/p2 so p0 is evicted to a
			// reader via ownership transfer.
			worker(c, fail, 0, r, func(p *sim.Proc, t *vm.Task) error {
				if err := t.WriteU64(p, addr(0, 0), 7); err != nil {
					return err
				}
				p.Sleep(2 * time.Millisecond)
				if err := t.WriteU64(p, addr(1, 0), 8); err != nil {
					return err
				}
				return t.WriteU64(p, addr(2, 0), 9)
			})
			// Node 1: reads p0 (becomes a reader), later writes it — after
			// the transfer it is the owner and must invalidate node 2.
			// (Sleeps are sized around the ~2.4 ms initial-fault latency —
			// the home consults its pager on first touch — so the eviction
			// transfer lands between the reads and this write.)
			worker(c, fail, 1, r, func(p *sim.Proc, t *vm.Task) error {
				p.Sleep(1 * time.Millisecond)
				if _, err := t.ReadU64(p, addr(0, 0)); err != nil {
					return err
				}
				p.Sleep(8 * time.Millisecond)
				return t.WriteU64(p, addr(0, 1), 11)
			})
			// Node 2: reads p0 twice; between the reads its copy must be
			// invalidated by node 1's write.
			worker(c, fail, 2, r, func(p *sim.Proc, t *vm.Task) error {
				p.Sleep(1 * time.Millisecond)
				if _, err := t.ReadU64(p, addr(0, 0)); err != nil {
					return err
				}
				p.Sleep(11 * time.Millisecond)
				_, err := t.ReadU64(p, addr(0, 0))
				return err
			})
			return []*machine.Region{r}
		},
	},
	{
		Name:    "fault2",
		About:   "2 nodes, 1 page, lossy link under the reliability layer: drops and dups become explorable choices",
		Bounded: true,
		Live:    true,
		Params: func() machine.Params {
			p := smallParams(2)
			// Nonzero rates arm the fault classes; under exploration the
			// chooser picks fates, so the exact values only matter off the
			// explorer (they are never used there — scenarios run with a
			// chooser installed).
			p.Fault = xport.FaultPlan{Default: xport.Rates{Drop: 0.05, Dup: 0.05}}
			p.Reliable = true
			return p
		},
		Run: func(c *machine.Cluster, fail func(error)) []*machine.Region {
			r := c.NewSharedRegion("f2", 1, []int{0, 1})
			for n := 0; n < 2; n++ {
				n := n
				worker(c, fail, n, r, func(p *sim.Proc, t *vm.Task) error {
					for i := 0; i < 2; i++ {
						if err := t.WriteU64(p, addr(0, n), uint64(n+i)); err != nil {
							return err
						}
						if _, err := t.ReadU64(p, addr(0, 2)); err != nil {
							return err
						}
					}
					return nil
				})
			}
			return []*machine.Region{r}
		},
	},
	{
		Name:  "crash3",
		About: "3 nodes, 2 pages: node 2 dies mid-run (fate is a choice point); survivors must resolve every fault — granted or typed-failed — never hang",
		Live:  true,
		Params: func() machine.Params {
			p := smallParams(3)
			// The plan implies the reliability layer. Under the explorer the
			// crash is a ChoiceCrash point: alternative 0 keeps the default
			// schedule crash-free, so only perturbed runs kill the node.
			// The crash lands after the ~2.4 ms initial-fault window, when
			// node 2 plausibly owns a contended page and survivors are
			// mid-fault on it — the state the recovery paths exist for.
			p.Crash = machine.CrashPlan{Crashes: []machine.NodeCrash{
				{Node: 2, At: 8 * time.Millisecond},
			}}
			return p
		},
		Run: func(c *machine.Cluster, fail func(error)) []*machine.Region {
			r := c.NewSharedRegion("c3", 2, []int{0, 1, 2})
			for n := 0; n < 3; n++ {
				n := n
				worker(c, fail, n, r, func(p *sim.Proc, t *vm.Task) error {
					for i := 0; i < 3; i++ {
						pg := (n + i) % 2
						if err := tolerate(t.WriteU64(p, addr(pg, n), uint64(n*10+i))); err != nil {
							return err
						}
						if c.NodeIsCrashed(n) {
							return nil // our node died; the task died with it
						}
						if _, err := t.ReadU64(p, addr(1-pg, 3)); tolerate(err) != nil {
							return err
						}
						p.Sleep(300 * time.Microsecond)
					}
					return nil
				})
			}
			return []*machine.Region{r}
		},
	},
	{
		Name:  "crash-restart3",
		About: "3 nodes, 2 pages: node 2 dies and rejoins cold; post-restart traffic routes through its ring position and the home's grant ledger must stay coherent",
		Live:  true,
		Params: func() machine.Params {
			p := smallParams(3)
			p.Crash = machine.CrashPlan{Crashes: []machine.NodeCrash{
				{Node: 2, At: 800 * time.Microsecond, Restart: 3 * time.Millisecond},
			}}
			return p
		},
		Run: func(c *machine.Cluster, fail func(error)) []*machine.Region {
			r := c.NewSharedRegion("cr3", 2, []int{0, 1, 2})
			for n := 0; n < 2; n++ {
				n := n
				worker(c, fail, n, r, func(p *sim.Proc, t *vm.Task) error {
					if err := tolerate(t.WriteU64(p, addr(n, n), uint64(n+1))); err != nil {
						return err
					}
					// Sleep past the restart, then touch both pages again so
					// requests forward through the reborn node's (unchanged)
					// static-hash position.
					p.Sleep(6 * time.Millisecond)
					if err := tolerate(t.WriteU64(p, addr(1-n, n), uint64(n+7))); err != nil {
						return err
					}
					_, err := t.ReadU64(p, addr(n, 4))
					return tolerate(err)
				})
			}
			worker(c, fail, 2, r, func(p *sim.Proc, t *vm.Task) error {
				// Rides into the crash window; every outcome is legal except
				// an untyped error or a hang.
				for i := 0; i < 2; i++ {
					if err := tolerate(t.WriteU64(p, addr(i, 2), uint64(i+3))); err != nil {
						return err
					}
					if c.NodeIsCrashed(2) {
						return nil
					}
					p.Sleep(200 * time.Microsecond)
				}
				return nil
			})
			return []*machine.Region{r}
		},
	},
	{
		Name:    "mix8",
		About:   "8 nodes, 4 pages: Table-1-scale mixed sharing for random walks",
		Bounded: false,
		Params:  func() machine.Params { return smallParams(8) },
		Run: func(c *machine.Cluster, fail func(error)) []*machine.Region {
			nodes := []int{0, 1, 2, 3, 4, 5, 6, 7}
			r := c.NewSharedRegion("mix8", 4, nodes)
			for _, n := range nodes {
				n := n
				worker(c, fail, n, r, func(p *sim.Proc, t *vm.Task) error {
					for i := 0; i < 3; i++ {
						pg := (n + i) % 4
						if n%2 == 0 {
							if err := t.WriteU64(p, addr(pg, n), uint64(n*100+i)); err != nil {
								return err
							}
						} else if _, err := t.ReadU64(p, addr(pg, 0)); err != nil {
							return err
						}
						p.Sleep(time.Duration(50+10*n) * time.Microsecond)
					}
					return nil
				})
			}
			return []*machine.Region{r}
		},
	},
}

// Scenarios returns the registry in its fixed order.
func Scenarios() []*Scenario { return scenarios }

// BoundedScenarios returns the scenarios eligible for exhaustive DFS.
func BoundedScenarios() []*Scenario {
	var out []*Scenario
	for _, sc := range scenarios {
		if sc.Bounded {
			out = append(out, sc)
		}
	}
	return out
}

// LiveScenarios returns the liveness-focused set (asvmcheck -live).
func LiveScenarios() []*Scenario {
	var out []*Scenario
	for _, sc := range scenarios {
		if sc.Live {
			out = append(out, sc)
		}
	}
	return out
}

// Lookup returns the named scenario, or nil.
func Lookup(name string) *Scenario {
	for _, sc := range scenarios {
		if sc.Name == name {
			return sc
		}
	}
	return nil
}

// Names lists all scenario names, sorted.
func Names() []string {
	out := make([]string, len(scenarios))
	for i, sc := range scenarios {
		out[i] = sc.Name
	}
	sort.Strings(out)
	return out
}
