package explore

import (
	"fmt"
	"os"
	"strings"
)

// Reproducer files pin a failing schedule to disk so it can be committed
// next to the fix and replayed in CI. The format is two whitespace-keyed
// lines, with '#' comments:
//
//	# found by asvmcheck -walk
//	scenario xfer-evict
//	choices 1020013        # base36 digits; "-" is the default schedule

// WriteReproducer saves a reproducer file.
func WriteReproducer(path, scenario string, ks []int) error {
	body := fmt.Sprintf("scenario %s\nchoices %s\n", scenario, EncodeChoices(ks))
	return os.WriteFile(path, []byte(body), 0o644)
}

// LoadReproducer parses a reproducer file, returning the scenario name and
// decoded choice string.
func LoadReproducer(path string) (scenario string, ks []int, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	for ln, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			return "", nil, fmt.Errorf("%s:%d: want \"key value\", got %q", path, ln+1, line)
		}
		val = strings.TrimSpace(val)
		switch key {
		case "scenario":
			scenario = val
		case "choices":
			if ks, err = DecodeChoices(val); err != nil {
				return "", nil, fmt.Errorf("%s:%d: %v", path, ln+1, err)
			}
		default:
			return "", nil, fmt.Errorf("%s:%d: unknown key %q", path, ln+1, key)
		}
	}
	if scenario == "" {
		return "", nil, fmt.Errorf("%s: missing \"scenario\" line", path)
	}
	return scenario, ks, nil
}
