package explore

import "asvm/internal/asvm"

// DFS systematically enumerates schedules: the search tree's nodes are
// choice strings, and a run's recorded trace tells the driver how wide
// each point was. Backtracking is classic depth-first iteration — take the
// deepest point that has an untried alternative, bump it, truncate
// everything after it (later points depend on earlier outcomes, so they
// must be rediscovered).

// DFSOptions bound the exhaustive search. The zero value picks defaults.
type DFSOptions struct {
	// MaxChoices is the perturbation depth: choice points past this index
	// always take the default alternative.
	MaxChoices int
	// MaxBranch caps how many alternatives are tried per point.
	MaxBranch int
	// MaxRuns is the schedule budget; the search reports Complete=false
	// when it runs out.
	MaxRuns int
}

func (o DFSOptions) withDefaults() DFSOptions {
	if o.MaxChoices <= 0 {
		o.MaxChoices = 12
	}
	if o.MaxBranch <= 0 {
		o.MaxBranch = 4
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 3000
	}
	return o
}

// DFSResult summarizes a search.
type DFSResult struct {
	Runs     int
	Complete bool // the bounded space was exhausted within MaxRuns
	// V is the first violation found (nil: none). Reproducer is its
	// shrunk choice string.
	V          *Violation
	Reproducer []int
	// Cover accumulates transition coverage over every schedule run.
	Cover asvm.Coverage
}

// DFS exhaustively explores sc within opt's bounds, stopping at the first
// violation (which it shrinks) or when the space or budget is exhausted.
func DFS(sc *Scenario, opt DFSOptions, mutate Mutate) DFSResult {
	opt = opt.withDefaults()
	var res DFSResult
	var prefix []int
	for {
		out := runOne(sc, prefix, nil, mutate)
		res.Runs++
		res.Cover.Merge(&out.Cover)
		if out.V != nil {
			res.V = out.V
			res.Reproducer = Shrink(sc, Ks(out.Choices), mutate)
			return res
		}
		if res.Runs >= opt.MaxRuns {
			return res
		}
		prefix = nextPrefix(out.Choices, opt)
		if prefix == nil {
			res.Complete = true
			return res
		}
	}
}

// nextPrefix advances the search: it returns the choice prefix of the next
// schedule in depth-first order, or nil when the bounded space is
// exhausted. t is the full trace of the schedule just run (whose first
// len(prefix) entries were forced, and the rest defaulted to 0).
func nextPrefix(t []Choice, opt DFSOptions) []int {
	limit := len(t)
	if limit > opt.MaxChoices {
		limit = opt.MaxChoices
	}
	for i := limit - 1; i >= 0; i-- {
		width := t[i].N
		if width > opt.MaxBranch {
			width = opt.MaxBranch
		}
		if t[i].K+1 < width {
			out := make([]int, i+1)
			for j := 0; j < i; j++ {
				out[j] = t[j].K
			}
			out[i] = t[i].K + 1
			return out
		}
	}
	return nil
}
