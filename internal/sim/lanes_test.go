package sim

import (
	"runtime"
	"testing"
	"time"
)

// genWorkload drives e with a randomized self-extending event mix and
// returns the execution order as event ids. Every event appends its id and
// may schedule children with random delays (including zero — same-instant
// chains) on random lanes. The generator is seeded, so two engines given
// the same seed see the exact same schedule requests; only the engine's
// internal queuing differs.
func genWorkload(e *Engine, seed uint64, roots, maxDepth int, lanes int) []int {
	rng := NewRNG(seed)
	var order []int
	nextID := 0
	var spawn func(depth int) func()
	spawn = func(depth int) func() {
		id := nextID
		nextID++
		return func() {
			order = append(order, id)
			if depth >= maxDepth {
				return
			}
			// The rng draw sequence must not depend on the engine mode:
			// always draw the lane and the tag coin so serial and parallel
			// runs see identical schedule requests.
			for k := rng.Intn(3); k > 0; k-- {
				delay := Time(rng.Intn(5)) * time.Microsecond
				lane := rng.Intn(max(lanes, 1))
				tagged := rng.Intn(2) == 0
				child := spawn(depth + 1)
				if lanes > 0 && tagged {
					e.ScheduleLane(lane, delay, child)
				} else {
					e.Schedule(delay, child)
				}
			}
		}
	}
	for i := 0; i < roots; i++ {
		e.ScheduleLane(rng.Intn(max(lanes, 1)), Time(rng.Intn(50))*time.Microsecond, spawn(0))
	}
	e.Run()
	return order
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestLaneMergeMatchesSerial is the fuzz-style determinism test for the
// parallel engine: across many seeds and lane counts, a workload with
// random lane assignment executes in exactly the serial (time, seq) order.
// Lane assignment is a load-balancing hint; this test is the contract that
// it can never change the schedule.
func TestLaneMergeMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		serial := genWorkload(NewEngine(), seed, 20, 6, 0)
		for _, lanes := range []int{2, 3, 4, 8} {
			// Deliberately mis-sized lane hints too: clampLane sends
			// out-of-range hints to lane 0, order must still hold.
			par := genWorkload(NewParallelEngine(lanes, 10*time.Microsecond), seed, 20, 6, lanes+2)
			if len(par) != len(serial) {
				t.Fatalf("seed %d lanes %d: %d events parallel vs %d serial", seed, lanes, len(par), len(serial))
			}
			for i := range par {
				if par[i] != serial[i] {
					t.Fatalf("seed %d lanes %d: order diverges at %d: parallel %d serial %d",
						seed, lanes, i, par[i], serial[i])
				}
			}
		}
	}
}

// TestLaneMergeLookaheadInvariance checks the conservative window width is
// performance-only: any lookahead produces the identical schedule.
func TestLaneMergeLookaheadInvariance(t *testing.T) {
	want := genWorkload(NewEngine(), 7, 16, 5, 0)
	for _, la := range []Time{1, time.Microsecond, 3 * time.Microsecond, time.Millisecond, time.Hour} {
		got := genWorkload(NewParallelEngine(4, la), 7, 16, 5, 4)
		if len(got) != len(want) {
			t.Fatalf("lookahead %v: %d events vs %d", la, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("lookahead %v: order diverges at %d", la, i)
			}
		}
	}
}

// TestParallelProcsMatchSerial runs proc-based workloads (coroutine wakeups
// travel the scheduleProcAt path with the proc's own lane) on both engines
// and compares the interleaving trace.
func TestParallelProcsMatchSerial(t *testing.T) {
	run := func(e *Engine, lanes int) []string {
		var trace []string
		for i := 0; i < 8; i++ {
			i := i
			name := string(rune('a' + i))
			body := func(p *Proc) {
				for s := 0; s < 20; s++ {
					trace = append(trace, name)
					p.Sleep(Time(1+(i*7+s*3)%5) * time.Microsecond)
				}
			}
			if lanes > 0 {
				e.SpawnOn(i%lanes, name, body)
			} else {
				e.Spawn(name, body)
			}
		}
		e.Run()
		return trace
	}
	want := run(NewEngine(), 0)
	got := run(NewParallelEngine(4, 2*time.Microsecond), 4)
	if len(got) != len(want) {
		t.Fatalf("trace lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("proc interleaving diverges at %d: %q vs %q", i, got[i], want[i])
		}
	}
}

// TestParallelRunUntilDeadline checks deadline semantics match serial:
// events beyond the deadline stay queued and the clock parks exactly on
// the deadline, even when the deadline splits a conservative window.
func TestParallelRunUntilDeadline(t *testing.T) {
	e := NewParallelEngine(4, 10*time.Microsecond)
	var fired []int
	for i := 1; i <= 8; i++ {
		i := i
		e.ScheduleLane(i%4, Time(i)*time.Microsecond, func() { fired = append(fired, i) })
	}
	// Deadline inside the first window: only events at <= 3µs may run.
	if got := e.RunUntil(3 * time.Microsecond); got != 3*time.Microsecond {
		t.Fatalf("RunUntil returned %v, want 3µs", got)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %v, want exactly events 1..3", fired)
	}
	if e.Pending() != 5 {
		t.Fatalf("pending %d after deadline, want 5", e.Pending())
	}
	e.Run()
	for i, id := range fired {
		if id != i+1 {
			t.Fatalf("fired order %v, want 1..8", fired)
		}
	}
}

// TestParallelHaltSpills checks a mid-window Halt parks undispatched events
// back in the lanes with keys intact: resuming completes the same schedule.
func TestParallelHaltSpills(t *testing.T) {
	e := NewParallelEngine(4, time.Hour) // one giant window: Halt lands mid-merge
	var fired []int
	for i := 1; i <= 16; i++ {
		i := i
		e.ScheduleLane(i%4, Time(i)*time.Microsecond, func() {
			fired = append(fired, i)
			if i == 5 {
				e.Halt()
			}
		})
	}
	e.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events before halt, want 5", len(fired))
	}
	if e.Pending() != 11 {
		t.Fatalf("pending %d after halt, want 11", e.Pending())
	}
	e.Run()
	if len(fired) != 16 {
		t.Fatalf("fired %d events total, want 16", len(fired))
	}
	for i, id := range fired {
		if id != i+1 {
			t.Fatalf("fired order %v, want 1..16", fired)
		}
	}
}

// TestParallelChooserRetires checks that installing a Chooser permanently
// drops a parallel engine onto the serial path with the schedule intact.
func TestParallelChooserRetires(t *testing.T) {
	e := NewParallelEngine(4, 10*time.Microsecond)
	var fired []int
	for i := 1; i <= 12; i++ {
		i := i
		e.ScheduleLane(i%4, Time(i%3)*time.Microsecond, func() { fired = append(fired, i) })
	}
	if e.Lanes() != 4 {
		t.Fatalf("Lanes() = %d before retire, want 4", e.Lanes())
	}
	e.SetChooser(zeroChooser{})
	if e.Lanes() != 1 {
		t.Fatalf("Lanes() = %d after SetChooser, want 1 (retired)", e.Lanes())
	}
	if e.Pending() != 12 {
		t.Fatalf("pending %d after retire, want 12", e.Pending())
	}
	e.Run()
	want := genChooserWant()
	for i := range fired {
		if fired[i] != want[i] {
			t.Fatalf("retired schedule diverges at %d: %v", i, fired)
		}
	}
}

// genChooserWant is the serial order of TestParallelChooserRetires's
// workload: sorted by (i%3 µs, schedule order).
func genChooserWant() []int {
	var want []int
	for _, rem := range []int{0, 1, 2} {
		for i := 1; i <= 12; i++ {
			if i%3 == rem {
				want = append(want, i)
			}
		}
	}
	return want
}

// zeroChooser always picks the default alternative.
type zeroChooser struct{}

func (zeroChooser) Choose(ChoiceKind, int) int { return 0 }

// TestParallelRunMaxRetires checks RunMax (the explorer's bounded loop)
// also forces the serial path and honors its event bound.
func TestParallelRunMaxRetires(t *testing.T) {
	e := NewParallelEngine(4, 10*time.Microsecond)
	n := 0
	for i := 0; i < 10; i++ {
		e.ScheduleLane(i%4, Time(i)*time.Microsecond, func() { n++ })
	}
	if done := e.RunMax(4); done {
		t.Fatal("RunMax(4) reported drained with 10 events queued")
	}
	if n != 4 {
		t.Fatalf("RunMax(4) executed %d events, want 4", n)
	}
	if !e.RunMax(100) {
		t.Fatal("RunMax(100) did not drain")
	}
	if n != 10 {
		t.Fatalf("executed %d events total, want 10", n)
	}
}

// TestLaneWorkerPoolMatchesSerial forces the worker pool on (it is skipped
// when GOMAXPROCS would leave no core for a worker) and re-checks schedule
// identity, so the barrier protocol in barrier.go is exercised — including
// under -race — even on single-core machines.
func TestLaneWorkerPoolMatchesSerial(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for seed := uint64(1); seed <= 10; seed++ {
		serial := genWorkload(NewEngine(), seed, 20, 6, 0)
		par := genWorkload(NewParallelEngine(4, 10*time.Microsecond), seed, 20, 6, 4)
		if len(par) != len(serial) {
			t.Fatalf("seed %d: %d events parallel vs %d serial", seed, len(par), len(serial))
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("seed %d: order diverges at %d", seed, i)
			}
		}
	}
}

// TestBatchedSameInstantFIFO is the property test for batched dispatch:
// events that fan out same-instant work mid-dispatch, across several
// cohorts, must still execute in global (time, seq) FIFO order — the batch
// bypasses the heap, never the ordering contract.
func TestBatchedSameInstantFIFO(t *testing.T) {
	for _, mk := range []func() *Engine{
		NewEngine,
		func() *Engine { return NewParallelEngine(4, 5*time.Microsecond) },
	} {
		e := mk()
		var order []int
		id := 0
		add := func(delay Time, fanout int) {
			var fn func()
			myID := id
			id++
			fn = func() {
				order = append(order, myID)
				for f := 0; f < fanout; f++ {
					// Same-instant children: these must run after
					// everything already scheduled for this instant.
					child := id
					id++
					order := &order
					e.Schedule(0, func() { *order = append(*order, child) })
				}
			}
			e.Schedule(delay, fn)
		}
		// Three cohorts at 0µs, 1µs, 2µs; each root fans out two
		// same-instant children.
		for c := 0; c < 3; c++ {
			add(Time(c)*time.Microsecond, 2)
			add(Time(c)*time.Microsecond, 0)
		}
		e.Run()
		if len(order) != 12 {
			t.Fatalf("executed %d events, want 12", len(order))
		}
		// Roots get ids 0..5 at schedule time (two per cohort); children
		// get ids at execution time (6,7 then 8,9 then 10,11). Per cohort
		// the two roots run in schedule order, then the first root's
		// same-instant children run after both — FIFO across the
		// batch/heap boundary.
		want := []int{0, 1, 6, 7, 2, 3, 8, 9, 4, 5, 10, 11}
		for i := range order {
			if order[i] != want[i] {
				t.Fatalf("order %v, want %v", order, want)
			}
		}
	}
}

// TestDrainAtCohortFIFO is the heap-level property test: drainAt pops a
// whole timestamp cohort in (seq) FIFO order, and repeated drains walk
// cohort boundaries without mixing timestamps.
func TestDrainAtCohortFIFO(t *testing.T) {
	var q eventQueue
	rng := NewRNG(42)
	type key struct {
		at  Time
		seq uint64
	}
	var keys []key
	seq := uint64(0)
	for i := 0; i < 2000; i++ {
		at := Time(rng.Intn(20)) * time.Microsecond
		seq++
		keys = append(keys, key{at, seq})
		q.push(event{at: at, seq: seq})
	}
	var buf []event
	var prev key
	first := true
	for q.len() > 0 {
		t0 := q.ev[0].at
		buf = q.drainAt(t0, buf[:0])
		for _, ev := range buf {
			if ev.at != t0 {
				t.Fatalf("drainAt(%v) yielded event at %v", t0, ev.at)
			}
			k := key{ev.at, ev.seq}
			if !first && (k.at < prev.at || (k.at == prev.at && k.seq <= prev.seq)) {
				t.Fatalf("drain order violated: %v after %v", k, prev)
			}
			prev, first = k, false
		}
		if q.len() > 0 && q.ev[0].at == t0 {
			t.Fatalf("drainAt(%v) left cohort events behind", t0)
		}
	}
}

// TestDrainBeforeSortedRuns is drainBefore's property test: the parallel
// lanes depend on ready runs coming out sorted by (time, seq) and strictly
// below the bound, with everything at or beyond the bound left queued.
func TestDrainBeforeSortedRuns(t *testing.T) {
	var q eventQueue
	rng := NewRNG(99)
	for i := 0; i < 2000; i++ {
		q.push(event{at: Time(rng.Intn(100)) * time.Microsecond, seq: uint64(i + 1)})
	}
	total := 0
	for bound := Time(10 * time.Microsecond); q.len() > 0; bound += 25 * time.Microsecond {
		run := q.drainBefore(bound, nil)
		total += len(run)
		for i, ev := range run {
			if ev.at >= bound {
				t.Fatalf("drainBefore(%v) yielded event at %v", bound, ev.at)
			}
			if i > 0 && ev.before(&run[i-1]) {
				t.Fatalf("ready run not sorted at %d", i)
			}
		}
		if q.len() > 0 && q.ev[0].at < bound {
			t.Fatalf("drainBefore(%v) left early events queued", bound)
		}
	}
	if total != 2000 {
		t.Fatalf("drained %d events, want 2000", total)
	}
}

// TestQueueShrinksAfterBurst pins the fix for the queue's backing array
// never shrinking: after a 1M-event burst fully drains, Run releases the
// backing memory, while steady-state queues below shrinkCap keep their
// free-list array.
func TestQueueShrinksAfterBurst(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	const burst = 1 << 20
	for i := 0; i < burst; i++ {
		e.Schedule(Time(i%1000)*time.Microsecond, fn)
	}
	if got := cap(e.q.ev); got < burst {
		t.Fatalf("burst capacity %d, want >= %d", got, burst)
	}
	e.Run()
	if got := cap(e.q.ev); got > shrinkCap {
		t.Fatalf("post-run capacity %d, want <= shrinkCap (%d)", got, shrinkCap)
	}
	// Steady state below the threshold: capacity must be retained (the
	// free-list trick), not churned.
	for i := 0; i < 100; i++ {
		e.Schedule(time.Microsecond, fn)
	}
	e.Run()
	c := cap(e.q.ev)
	for i := 0; i < 100; i++ {
		e.Schedule(time.Microsecond, fn)
	}
	e.Run()
	if cap(e.q.ev) != c {
		t.Fatalf("steady-state capacity churned: %d -> %d", c, cap(e.q.ev))
	}
}

// TestParallelQueueShrinksAfterBurst is the lane-engine variant: lane
// heaps and ready runs release their burst capacity too.
func TestParallelQueueShrinksAfterBurst(t *testing.T) {
	e := NewParallelEngine(4, 10*time.Microsecond)
	fn := func() {}
	const burst = 1 << 20
	for i := 0; i < burst; i++ {
		e.ScheduleLane(i%4, Time(i%1000)*time.Microsecond, fn)
	}
	e.Run()
	for i := range e.par.lanes {
		la := &e.par.lanes[i]
		if cap(la.q.ev) > shrinkCap {
			t.Fatalf("lane %d heap capacity %d, want <= %d", i, cap(la.q.ev), shrinkCap)
		}
		if cap(la.ready) > shrinkCap {
			t.Fatalf("lane %d ready capacity %d, want <= %d", i, cap(la.ready), shrinkCap)
		}
	}
}

// TestScheduleRunZeroAllocs guards the serial hot path at 0 allocs/op with
// no chooser installed (the CI benchmark-regression leg runs this).
func TestScheduleRunZeroAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	i := 0
	allocs := testing.AllocsPerRun(20000, func() {
		e.Schedule(Time(i%64)*time.Microsecond, fn)
		i++
		if e.Pending() >= 1024 {
			e.RunUntil(e.Now() + time.Millisecond)
		}
	})
	if allocs != 0 {
		t.Fatalf("schedule/run path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestParallelScheduleRunZeroAllocs is the same guard for the lane engine's
// steady state (after warmup has sized lane heaps and ready runs).
func TestParallelScheduleRunZeroAllocs(t *testing.T) {
	e := NewParallelEngine(4, 10*time.Microsecond)
	fn := func() {}
	i := 0
	warm := func() {
		e.ScheduleLane(i%4, Time(i%64)*time.Microsecond, fn)
		i++
		if e.Pending() >= 1024 {
			e.RunUntil(e.Now() + time.Millisecond)
		}
	}
	for j := 0; j < 4096; j++ {
		warm()
	}
	allocs := testing.AllocsPerRun(20000, warm)
	if allocs != 0 {
		t.Fatalf("parallel schedule/run path allocates %.1f allocs/op, want 0", allocs)
	}
}
