package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(5)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGFloat64Distribution(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.48 || mean > 0.52 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	check := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + int(seed%64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGForkIndependent(t *testing.T) {
	r := NewRNG(77)
	f := r.Fork()
	// The fork must not replay the parent's stream.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("fork correlated with parent: %d/100 identical", same)
	}
}
