package sim

import (
	"runtime"
	"sync"
)

// This file is the only concurrency in the simulator. The parallel engine's
// workers never run user code: they drain disjoint lane heaps between
// windows, bracketed by a start signal (coordinator → worker, one channel
// send) and a completion barrier (worker → coordinator, WaitGroup). Both
// edges are happens-before, so the lanes' memory is handed cleanly back and
// forth and the whole scheme is race-free by phase discipline: workers only
// touch lanes while the coordinator waits, the coordinator only touches
// them while the workers are parked.

// lanePool drains lanes on worker goroutines. Lane i belongs to stripe
// i % stripes; the coordinator drains stripe 0 itself (it would otherwise
// idle at the barrier), workers take stripes 1..stripes-1.
type lanePool struct {
	pe      *parEngine
	stripes int
	start   []chan Time
	wg      sync.WaitGroup
}

// startPool attaches a worker pool for the duration of one run loop if the
// machine and lane count can use one. On a single-core machine (or a
// 2-lane engine on 2 cores, etc.) the pool is skipped and drains run
// inline — the drained runs, and therefore the schedule, are identical.
func (pe *parEngine) startPool() {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pe.lanes) {
		workers = len(pe.lanes)
	}
	workers-- // the coordinator drains a stripe too
	if workers <= 0 {
		return
	}
	p := &lanePool{pe: pe, stripes: workers + 1, start: make([]chan Time, workers)}
	for w := range p.start {
		p.start[w] = make(chan Time, 1)
		go p.worker(w)
	}
	pe.pool = p
}

// stopPool detaches and shuts down the pool; workers exit on channel close.
// Started per run loop rather than per engine so an abandoned engine never
// leaks parked goroutines.
func (pe *parEngine) stopPool() {
	p := pe.pool
	if p == nil {
		return
	}
	pe.pool = nil
	for _, c := range p.start {
		close(c)
	}
}

// worker drains stripe w+1 each window (stripe 0 is the coordinator's).
func (p *lanePool) worker(w int) {
	lanes := p.pe.lanes
	for bound := range p.start[w] {
		for i := w + 1; i < len(lanes); i += p.stripes {
			lanes[i].drain(bound)
		}
		p.wg.Done()
	}
}

// drainWindow runs one parallel drain: release the workers, drain the
// coordinator's own stripe, wait for the barrier.
func (p *lanePool) drainWindow(bound Time) {
	p.wg.Add(len(p.start))
	for _, c := range p.start {
		c <- bound
	}
	lanes := p.pe.lanes
	for i := 0; i < len(lanes); i += p.stripes {
		lanes[i].drain(bound)
	}
	p.wg.Wait()
}
