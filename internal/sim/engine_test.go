package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("final time = %v, want 30ms", e.Now())
	}
}

func TestScheduleSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestScheduleNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-time.Second, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
	if e.Now() != 0 {
		t.Fatalf("time advanced to %v for clamped event", e.Now())
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		e.ScheduleAt(0, func() {}) // in the past: must not rewind the clock
	})
	e.Run()
	if e.Now() != time.Second {
		t.Fatalf("clock rewound: now=%v", e.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.Schedule(time.Microsecond, rec)
		}
	}
	e.Schedule(0, rec)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99*time.Microsecond {
		t.Fatalf("now = %v, want 99µs", e.Now())
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	var ran []int
	e.Schedule(time.Millisecond, func() { ran = append(ran, 1) })
	e.Schedule(time.Hour, func() { ran = append(ran, 2) })
	end := e.RunUntil(time.Second)
	if end != time.Second {
		t.Fatalf("RunUntil returned %v, want 1s", end)
	}
	if len(ran) != 1 {
		t.Fatalf("wrong events ran: %v", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(ran) != 2 {
		t.Fatalf("deferred event never ran: %v", ran)
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {
			n++
			if n == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if n != 3 {
		t.Fatalf("executed %d events after Halt, want 3", n)
	}
	// Run can be resumed.
	e.Run()
	if n != 10 {
		t.Fatalf("resume after halt executed %d, want 10", n)
	}
}

func TestExecutedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(0, func() {})
	}
	e.Run()
	if e.Executed != 5 {
		t.Fatalf("Executed = %d, want 5", e.Executed)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := NewEngine()
		rng := NewRNG(42)
		var times []time.Duration
		var spawn func(depth int)
		spawn = func(depth int) {
			times = append(times, e.Now())
			if depth > 4 {
				return
			}
			k := rng.Intn(3) + 1
			for i := 0; i < k; i++ {
				d := time.Duration(rng.Intn(1000)) * time.Microsecond
				e.Schedule(d, func() { spawn(depth + 1) })
			}
		}
		e.Schedule(0, func() { spawn(0) })
		e.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
