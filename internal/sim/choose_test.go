package sim

import (
	"reflect"
	"testing"
	"time"
)

// fixedChooser answers from a script, then 0.
type fixedChooser struct {
	script []int
	calls  []int // n offered at each point
}

func (f *fixedChooser) Choose(kind ChoiceKind, n int) int {
	i := len(f.calls)
	f.calls = append(f.calls, n)
	if i < len(f.script) {
		return f.script[i]
	}
	return 0
}

// schedule four same-timestamp events plus a later one; return run order.
func runTied(t *testing.T, ch Chooser) []int {
	t.Helper()
	e := NewEngine()
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Schedule(0, func() { order = append(order, i) })
	}
	e.Schedule(time.Microsecond, func() { order = append(order, 99) })
	e.SetChooser(ch)
	if !e.RunMax(100) {
		t.Fatal("queue did not drain")
	}
	return order
}

func TestChooseNilAndDegenerate(t *testing.T) {
	e := NewEngine()
	if e.Exploring() {
		t.Fatal("fresh engine claims to be exploring")
	}
	if k := e.Choose(ChoiceLatency, 5); k != 0 {
		t.Fatalf("nil chooser Choose = %d, want 0", k)
	}
	f := &fixedChooser{}
	e.SetChooser(f)
	if !e.Exploring() {
		t.Fatal("Exploring false with chooser installed")
	}
	if k := e.Choose(ChoiceFault, 1); k != 0 || len(f.calls) != 0 {
		t.Fatal("degenerate point (n=1) must not consult the chooser")
	}
}

func TestChooseOutOfRangePanics(t *testing.T) {
	e := NewEngine()
	e.SetChooser(&fixedChooser{script: []int{7}})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range chooser answer did not panic")
		}
	}()
	e.Choose(ChoiceEvent, 3)
}

func TestPopChooseZeroIsDefaultSchedule(t *testing.T) {
	def := runTied(t, nil)
	zero := runTied(t, &fixedChooser{})
	if !reflect.DeepEqual(def, zero) {
		t.Fatalf("all-zeros chooser diverged from default: %v vs %v", def, zero)
	}
	if want := []int{0, 1, 2, 3, 99}; !reflect.DeepEqual(def, want) {
		t.Fatalf("default order = %v, want %v", def, want)
	}
}

func TestPopChooseReordersTies(t *testing.T) {
	// Pick the third candidate first; the rest keep FIFO order, and the
	// later-timestamp event is never part of the tie.
	f := &fixedChooser{script: []int{2}}
	got := runTied(t, f)
	if want := []int{2, 0, 1, 3, 99}; !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if f.calls[0] != 4 {
		t.Fatalf("first point offered %d alternatives, want 4", f.calls[0])
	}
}

func TestRunMaxBound(t *testing.T) {
	e := NewEngine()
	var n int
	// A self-rescheduling event never drains.
	var tick func()
	tick = func() { n++; e.Schedule(time.Nanosecond, tick) }
	e.Schedule(0, tick)
	if e.RunMax(50) {
		t.Fatal("RunMax claimed drain on an infinite schedule")
	}
	if n != 50 {
		t.Fatalf("executed %d events under a bound of 50", n)
	}
}
