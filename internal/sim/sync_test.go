package sim

import (
	"testing"
	"time"
)

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, 2)
	active, peak := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn("worker", func(p *Proc) {
			sem.Acquire(p)
			active++
			if active > peak {
				peak = active
			}
			p.Sleep(time.Millisecond)
			active--
			sem.Release()
		})
	}
	e.Run()
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
	if sem.Available() != 2 {
		t.Fatalf("tokens leaked: %d available, want 2", sem.Available())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, 1)
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire failed with token available")
	}
	if sem.TryAcquire() {
		t.Fatal("TryAcquire succeeded with no tokens")
	}
	sem.Release()
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire failed after release")
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, 0)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond) // arrival order 0..4
			sem.Acquire(p)
			order = append(order, i)
		})
	}
	e.Schedule(time.Millisecond, func() {
		for i := 0; i < 5; i++ {
			sem.Release()
		}
	})
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("wakeup order = %v, want FIFO", order)
		}
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	e := NewEngine()
	mu := NewMutex(e)
	inside := false
	violations := 0
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Proc) {
			mu.Lock(p)
			if inside {
				violations++
			}
			inside = true
			p.Sleep(time.Millisecond)
			inside = false
			mu.Unlock()
		})
	}
	e.Run()
	if violations != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations)
	}
}

func TestBarrierReleasesAllTogether(t *testing.T) {
	e := NewEngine()
	bar := NewBarrier(e, 3)
	var release []Time
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			p.Sleep(time.Duration(i+1) * time.Millisecond)
			bar.Await(p)
			release = append(release, p.Now())
		})
	}
	e.Run()
	if len(release) != 3 {
		t.Fatalf("released %d, want 3", len(release))
	}
	for _, r := range release {
		if r != 3*time.Millisecond {
			t.Fatalf("release times %v, want all 3ms", release)
		}
	}
	if bar.Generations != 1 {
		t.Fatalf("generations = %d, want 1", bar.Generations)
	}
}

func TestBarrierReusable(t *testing.T) {
	e := NewEngine()
	bar := NewBarrier(e, 2)
	laps := 0
	for i := 0; i < 2; i++ {
		e.Spawn("w", func(p *Proc) {
			for lap := 0; lap < 5; lap++ {
				p.Sleep(time.Millisecond)
				bar.Await(p)
				if p.Name() == "w" {
					laps++
				}
			}
		})
	}
	e.Run()
	if bar.Generations != 5 {
		t.Fatalf("generations = %d, want 5", bar.Generations)
	}
	if laps != 10 {
		t.Fatalf("laps = %d, want 10", laps)
	}
}

func TestBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(NewEngine(), 0)
}

func TestCondQueueSignalBroadcast(t *testing.T) {
	e := NewEngine()
	q := NewCondQueue(e)
	woken := 0
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Proc) {
			q.Wait(p)
			woken++
		})
	}
	e.Schedule(time.Millisecond, func() {
		if !q.Signal() {
			t.Error("Signal found no waiter")
		}
	})
	e.Schedule(2*time.Millisecond, func() {
		if n := q.Broadcast(); n != 3 {
			t.Errorf("Broadcast woke %d, want 3", n)
		}
	})
	e.Run()
	if woken != 4 {
		t.Fatalf("woken = %d, want 4", woken)
	}
	if q.Signal() {
		t.Fatal("Signal on empty queue reported a wake")
	}
}
