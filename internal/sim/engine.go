// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock by executing events in (time, sequence)
// order. Protocol state machines run as plain event callbacks; sequential
// user code (tasks that fault, compute and block) runs as a Proc, a
// coroutine that is always executed mutually exclusively with the engine, so
// the whole simulation is single-threaded in the logical sense and therefore
// reproducible bit-for-bit.
//
// The event queue is the simulator's hottest data structure: every paper
// artifact re-runs millions of events, so the queue is a hand-specialized
// 4-ary min-heap storing events by value in one backing slice. Pops only
// shrink the slice length, so the array doubles as a free list and
// steady-state Schedule/dispatch allocates nothing. Proc wakeups carry the
// *Proc in the event itself (no method-value closure), keeping the
// park/resume path allocation-free too.
//
// Dispatch batches same-instant work: once the heap is clean at the
// current instant, anything scheduled for that instant (proc wakeups,
// future completions, zero-delay chains) is appended to a flat dispatch
// batch instead of round-tripping through the heap — global sequence
// numbers keep the FIFO contract, and each batched event saves a full
// push+siftDown+pop. drainAt/drainBefore pop whole timestamp cohorts in
// one pass for the batch-order tests and the parallel lanes. See lanes.go
// for the deterministic parallel mode built on top of this.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, expressed as the duration since the start
// of the simulation.
type Time = time.Duration

// Runnable is an event target carried by interface value instead of a
// closure: a long-lived (typically pooled) object whose Run method resumes
// a multi-stage operation. Scheduling one allocates nothing — storing a
// pointer in an interface is allocation-free — which is what lets the
// transport message path run without per-message closures.
type Runnable interface {
	Run()
}

// event is a scheduled callback, stored by value in the queue. Exactly one
// of fn, proc and run is set: fn for plain callbacks, proc for the
// allocation-free proc-wakeup fast path, run for pooled Runnable stages
// (all nil is a no-op event, used to anchor time).
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among events with equal time
	fn   func()
	proc *Proc
	run  Runnable
}

// before reports heap order by (at, seq). seq is unique and monotonic, so
// equal-time events dispatch FIFO in scheduling order.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is an index-addressed 4-ary min-heap: children of slot i live
// at 4i+1..4i+4. Compared to container/heap this removes the per-event box
// allocation and the interface dispatch on every comparison, and the wider
// fan-out halves the tree depth (shallower sift-downs, and sift-down is the
// expensive direction because pops move the last element to the root).
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	// Sift the hole up; the event is written once at its final slot.
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !e.before(&q.ev[parent]) {
			break
		}
		q.ev[i] = q.ev[parent]
		i = parent
	}
	q.ev[i] = e
}

func (q *eventQueue) pop() event {
	root := q.ev[0]
	n := len(q.ev) - 1
	last := q.ev[n]
	q.ev[n] = event{} // release fn/proc so the free slot pins nothing
	q.ev = q.ev[:n]
	if n > 0 {
		q.siftDown(last)
	}
	return root
}

// siftDown re-inserts e starting from the root, moving the smallest child up
// into the hole until e fits.
func (q *eventQueue) siftDown(e event) {
	n := len(q.ev)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		min := c
		for j := c + 1; j < end; j++ {
			if q.ev[j].before(&q.ev[min]) {
				min = j
			}
		}
		if !q.ev[min].before(&e) {
			break
		}
		q.ev[i] = q.ev[min]
		i = min
	}
	q.ev[i] = e
}

// drainAt pops every event with the given timestamp into buf. The heap
// yields them in (at, seq) order, so the cohort lands in buf already FIFO
// by sequence number. The timestamp must be the root's.
func (q *eventQueue) drainAt(t Time, buf []event) []event {
	for {
		buf = append(buf, q.pop())
		if len(q.ev) == 0 || q.ev[0].at != t {
			return buf
		}
	}
}

// drainBefore pops every event with time < bound into buf (used by the
// parallel lanes to pre-pop a conservative window). Events come out in
// (at, seq) order, so buf stays sorted.
func (q *eventQueue) drainBefore(bound Time, buf []event) []event {
	for len(q.ev) > 0 && q.ev[0].at < bound {
		buf = append(buf, q.pop())
	}
	return buf
}

// shrinkCap is the backing-array capacity above which a drained queue
// releases its memory when a run completes. Steady-state runs (and the
// engine microbenchmarks, which cycle ~1k events) never cross it, so the
// free-list behaviour of the backing array is unchanged; only a queue left
// huge by a large scenario gives the memory back.
const shrinkCap = 1 << 12

// shrink releases an oversized backing array once the queue is empty.
func (q *eventQueue) shrink() {
	if len(q.ev) == 0 && cap(q.ev) > shrinkCap {
		q.ev = nil
	}
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	q      eventQueue
	nprocs int // live procs, for leak detection
	halted bool

	// batch holds the same-timestamp cohort currently being dispatched:
	// batch[batchPos:] are executed in order, and events scheduled for the
	// current instant are appended (their sequence numbers are globally
	// monotonic, so append preserves FIFO) instead of round-tripping
	// through the heap. The cohort head itself dispatches straight off the
	// heap; only the rest of a multi-event cohort transits the batch.
	batch    []event
	batchPos int
	// dispatching is true while the serial run loop is executing events —
	// the window in which a same-instant schedule may join the batch even
	// when the batch is momentarily empty (singleton cohorts skip it).
	dispatching bool

	// par holds the parallel-lane state; nil on serial engines (see
	// lanes.go).
	par *parEngine

	// chooser is the schedule-exploration hook (see choose.go); nil in
	// every production run, and the hot loop pays one nil check for it.
	chooser Chooser
	// scratch holds same-timestamp candidates while the chooser picks.
	scratch []event

	// Executed is the total number of events executed so far.
	Executed uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// enqueue routes one fully-formed event to its resting place: the live
// dispatch batch for same-instant work, the parallel lane structures when
// lanes are enabled, or the serial heap.
func (e *Engine) enqueue(ev event, lane int) {
	if e.par != nil && !e.par.retired {
		e.par.enqueue(ev, lane)
		return
	}
	if ev.at == e.now && e.chooser == nil &&
		(e.dispatching || e.batchPos < len(e.batch)) &&
		(e.q.len() == 0 || e.q.ev[0].at != ev.at) {
		// Same-instant schedule during dispatch with the heap clean at the
		// current instant: ev's sequence number exceeds every queued
		// event's, and once the heap is clean at an instant it stays clean
		// (every later same-instant schedule takes this path too), so
		// appending to the batch preserves global FIFO while skipping a
		// heap push+pop round trip. The batch-live disjunct covers
		// scheduling against a batch parked by a mid-cohort Halt.
		e.batch = append(e.batch, ev)
		return
	}
	e.q.push(ev)
}

// Schedule arranges for fn to run after delay. A negative delay is treated
// as zero. Events scheduled for the same instant run in scheduling order.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt arranges for fn to run at absolute virtual time at. Times in
// the past are clamped to the present. A nil fn schedules a no-op event,
// which still anchors the clock (RunUntil sees activity up to at).
func (e *Engine) ScheduleAt(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.enqueue(event{at: at, seq: e.seq, fn: fn}, e.curLane())
}

// ScheduleRun arranges for r.Run to execute after delay, allocation-free.
// A negative delay is treated as zero.
func (e *Engine) ScheduleRun(delay time.Duration, r Runnable) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleRunAt(e.now+delay, r)
}

// ScheduleRunAt arranges for r.Run to execute at absolute virtual time at.
// Times in the past are clamped to the present. Like ScheduleAt but the
// event carries the Runnable itself, so no closure is materialized.
func (e *Engine) ScheduleRunAt(at Time, r Runnable) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.enqueue(event{at: at, seq: e.seq, run: r}, e.curLane())
}

// scheduleProcAt enqueues a wakeup for p at absolute time at. This is the
// allocation-free fast path behind Sleep, Future and the sync primitives:
// the event carries the proc pointer directly instead of a p.step method
// value (which Go materializes as a fresh closure on every use).
func (e *Engine) scheduleProcAt(at Time, p *Proc) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.enqueue(event{at: at, seq: e.seq, proc: p}, int(p.lane))
}

// wake enqueues a wakeup for p at the current instant, after events already
// queued for this instant (FIFO by sequence).
func (e *Engine) wake(p *Proc) { e.scheduleProcAt(e.now, p) }

// Halt stops the run loop after the current event finishes.
func (e *Engine) Halt() { e.halted = true }

// maxTime is the largest representable deadline (Run's "no deadline").
const maxTime = Time(1<<62 - 1)

// Run executes events until no events remain or Halt is called. It returns
// the final virtual time. When a large scenario has drained, the queue's
// backing memory is released (see shrinkCap), so a long-lived engine does
// not pin the high-water mark of its biggest burst.
func (e *Engine) Run() Time {
	t := e.RunUntil(maxTime)
	if e.Pending() == 0 {
		e.q.shrink()
		if e.par != nil {
			e.par.shrink()
		}
	}
	return t
}

// RunUntil executes events with time <= deadline, then stops. Events beyond
// the deadline remain queued. It returns the virtual time when it stopped
// (the deadline if it was reached, otherwise the time of the last event).
func (e *Engine) RunUntil(deadline Time) Time {
	e.halted = false
	if e.par != nil && !e.par.retired {
		return e.par.run(deadline)
	}
	if e.chooser != nil {
		return e.runChoose(deadline)
	}
	e.dispatching = true
	for !e.halted {
		var ev event
		if i := e.batchPos; i < len(e.batch) {
			ev = e.batch[i]
			e.batch[i] = event{} // release fn/proc so the slot pins nothing
			e.batchPos = i + 1
		} else {
			// Batch drained: execute the heap head directly. Cohort mates
			// still in the heap pop one at a time (cheaper than staging
			// them through the batch); only same-instant events born during
			// dispatch transit the batch, and each of those saves a full
			// heap push+pop.
			e.batch = e.batch[:0]
			e.batchPos = 0
			if e.q.len() == 0 {
				break
			}
			t := e.q.ev[0].at
			if t > deadline {
				e.now = deadline
				e.dispatching = false
				return e.now
			}
			e.now = t
			ev = e.q.pop()
		}
		e.Executed++
		if ev.proc != nil {
			ev.proc.step()
		} else if ev.run != nil {
			ev.run.Run()
		} else if ev.fn != nil {
			ev.fn()
		}
	}
	e.dispatching = false
	return e.now
}

// runChoose is the schedule-exploration run loop: per-event pops under
// chooser control. Batched dispatch is disabled here — the chooser's
// ChoiceEvent points are defined against the heap's same-timestamp
// candidate set, so cohorts must stay in the heap for it to see them.
func (e *Engine) runChoose(deadline Time) Time {
	e.flushBatch()
	for e.q.len() > 0 && !e.halted {
		if e.q.ev[0].at > deadline {
			e.now = deadline
			return e.now
		}
		ev := e.popChoose()
		e.now = ev.at
		e.Executed++
		if ev.proc != nil {
			ev.proc.step()
		} else if ev.run != nil {
			ev.run.Run()
		} else if ev.fn != nil {
			ev.fn()
		}
	}
	return e.now
}

// flushBatch returns any not-yet-dispatched cohort events to the heap (they
// keep their (time, seq) keys, so order is unchanged). Called when leaving
// batched dispatch: installing a chooser, or draining into RunMax.
func (e *Engine) flushBatch() {
	for ; e.batchPos < len(e.batch); e.batchPos++ {
		e.q.push(e.batch[e.batchPos])
		e.batch[e.batchPos] = event{}
	}
	e.batch = e.batch[:0]
	e.batchPos = 0
}

// NextEventAt reports the virtual time of the earliest queued event, or
// false when no events are queued. Only meaningful between runs (it does
// not look inside a dispatch batch mid-run) and only on a serial engine —
// the wall-clock runtime loop uses it to decide how long to sleep before
// the next timer is due.
func (e *Engine) NextEventAt() (Time, bool) {
	if e.par != nil && !e.par.retired {
		panic("sim: NextEventAt on a parallel engine")
	}
	if e.batchPos < len(e.batch) {
		return e.now, true
	}
	if e.q.len() == 0 {
		return 0, false
	}
	return e.q.ev[0].at, true
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int {
	n := e.q.len() + len(e.batch) - e.batchPos
	if e.par != nil {
		n += e.par.pending()
	}
	return n
}

// LiveProcs reports the number of procs that have been spawned and have not
// yet finished. Useful for detecting stuck protocol operations in tests.
func (e *Engine) LiveProcs() int { return e.nprocs }

// String implements fmt.Stringer for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%v pending=%d procs=%d}", e.now, e.Pending(), e.nprocs)
}
