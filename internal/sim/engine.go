// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock by executing events in (time, sequence)
// order. Protocol state machines run as plain event callbacks; sequential
// user code (tasks that fault, compute and block) runs as a Proc, a
// coroutine that is always executed mutually exclusively with the engine, so
// the whole simulation is single-threaded in the logical sense and therefore
// reproducible bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, expressed as the duration since the start
// of the simulation.
type Time = time.Duration

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events with equal time
	fn  func()
}

// eventHeap is a min-heap of events ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	heap   eventHeap
	nprocs int // live procs, for leak detection
	halted bool

	// Executed is the total number of events executed so far.
	Executed uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule arranges for fn to run after delay. A negative delay is treated
// as zero. Events scheduled for the same instant run in scheduling order.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt arranges for fn to run at absolute virtual time at. Times in
// the past are clamped to the present.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	if fn == nil {
		fn = func() {}
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.heap, &event{at: at, seq: e.seq, fn: fn})
}

// Halt stops the run loop after the current event finishes.
func (e *Engine) Halt() { e.halted = true }

// Run executes events until no events remain or Halt is called. It returns
// the final virtual time.
func (e *Engine) Run() Time {
	return e.RunUntil(1<<62 - 1)
}

// RunUntil executes events with time <= deadline, then stops. Events beyond
// the deadline remain queued. It returns the virtual time when it stopped
// (the deadline if it was reached, otherwise the time of the last event).
func (e *Engine) RunUntil(deadline Time) Time {
	e.halted = false
	for len(e.heap) > 0 && !e.halted {
		ev := e.heap[0]
		if ev.at > deadline {
			e.now = deadline
			return e.now
		}
		heap.Pop(&e.heap)
		e.now = ev.at
		e.Executed++
		ev.fn()
	}
	return e.now
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }

// LiveProcs reports the number of procs that have been spawned and have not
// yet finished. Useful for detecting stuck protocol operations in tests.
func (e *Engine) LiveProcs() int { return e.nprocs }

// String implements fmt.Stringer for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%v pending=%d procs=%d}", e.now, len(e.heap), e.nprocs)
}
