package sim

import (
	"sort"
	"testing"
	"time"
)

// Property and edge-case tests for the hand-specialized event queue and the
// run loop. These pin down the determinism contract the parallel experiment
// harness relies on: dispatch order is exactly (time, seq), regardless of
// the order events were pushed or how the heap happened to rebalance.

// TestHeapPropertyRandomized pushes events with randomized times (heavy on
// duplicates) in random order and checks the queue pops a perfect
// (time, seq) sort.
func TestHeapPropertyRandomized(t *testing.T) {
	rng := NewRNG(1234)
	for trial := 0; trial < 50; trial++ {
		var q eventQueue
		n := 1 + rng.Intn(300)
		type key struct {
			at  Time
			seq uint64
		}
		keys := make([]key, n)
		for i := 0; i < n; i++ {
			// Few distinct times: ties are the interesting case.
			at := Time(rng.Intn(8)) * time.Millisecond
			k := key{at: at, seq: uint64(i + 1)}
			keys[i] = k
			q.push(event{at: k.at, seq: k.seq})
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].at != keys[j].at {
				return keys[i].at < keys[j].at
			}
			return keys[i].seq < keys[j].seq
		})
		for i, want := range keys {
			got := q.pop()
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("trial %d pop %d: got (%v,%d), want (%v,%d)",
					trial, i, got.at, got.seq, want.at, want.seq)
			}
		}
		if q.len() != 0 {
			t.Fatalf("trial %d: %d events left after full drain", trial, q.len())
		}
	}
}

// TestEqualTimeFIFOInterleaved schedules same-instant events from several
// "sources" in interleaved order, with unrelated events pushed and popped in
// between to force heap rebalancing, and checks FIFO survives.
func TestEqualTimeFIFOInterleaved(t *testing.T) {
	rng := NewRNG(99)
	e := NewEngine()
	var order []int
	next := 0
	// Background noise: events before and after the interesting instant.
	for i := 0; i < 64; i++ {
		e.Schedule(time.Duration(rng.Intn(20))*time.Millisecond, func() {})
	}
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(10*time.Millisecond, func() { order = append(order, i) })
		next++
	}
	e.Run()
	if len(order) != 100 {
		t.Fatalf("ran %d tagged events, want 100", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO at %d: %v", i, order[:i+1])
		}
	}
}

// TestRunUntilExactDeadline checks the boundary: an event at exactly the
// deadline runs; an event one nanosecond past it stays queued and the clock
// parks on the deadline.
func TestRunUntilExactDeadline(t *testing.T) {
	e := NewEngine()
	var ran []string
	e.Schedule(time.Second, func() { ran = append(ran, "at") })
	e.Schedule(time.Second+time.Nanosecond, func() { ran = append(ran, "past") })
	end := e.RunUntil(time.Second)
	if end != time.Second || e.Now() != time.Second {
		t.Fatalf("stopped at %v, want exactly 1s", end)
	}
	if len(ran) != 1 || ran[0] != "at" {
		t.Fatalf("ran %v, want exactly the at-deadline event", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want the past-deadline event", e.Pending())
	}
	// Resuming runs the rest.
	e.Run()
	if len(ran) != 2 || ran[1] != "past" {
		t.Fatalf("resume ran %v", ran)
	}
}

// TestRunUntilDeadlineBeforeAnyEvent checks RunUntil advances the clock to
// the deadline even when nothing is runnable before it.
func TestRunUntilDeadlineBeforeAnyEvent(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Hour, func() {})
	if end := e.RunUntil(time.Minute); end != time.Minute {
		t.Fatalf("RunUntil returned %v, want 1m", end)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

// TestHaltInsideEvent halts from within an event handler with more events
// queued at the same instant, and checks none of them run until resumed —
// Halt takes effect after the current event, not after the current instant.
func TestHaltInsideEvent(t *testing.T) {
	e := NewEngine()
	var ran []int
	e.Schedule(time.Millisecond, func() {
		ran = append(ran, 0)
		e.Halt()
	})
	for i := 1; i <= 3; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { ran = append(ran, i) })
	}
	e.Run()
	if len(ran) != 1 {
		t.Fatalf("events ran after Halt at the same instant: %v", ran)
	}
	if e.Now() != time.Millisecond {
		t.Fatalf("now = %v, want 1ms", e.Now())
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("resume ran %v, want all four", ran)
	}
}

// TestHaltFromProc halts the engine from inside a proc, which must park the
// run loop without deadlocking the proc handoff.
func TestHaltFromProc(t *testing.T) {
	e := NewEngine()
	var after bool
	e.Spawn("h", func(p *Proc) {
		p.Sleep(time.Millisecond)
		e.Halt()
		p.Sleep(time.Millisecond) // resumes only on the next Run
		after = true
	})
	e.Run()
	if after {
		t.Fatal("proc ran past Halt within the same Run")
	}
	if e.LiveProcs() != 1 {
		t.Fatalf("live procs = %d, want the halted sleeper", e.LiveProcs())
	}
	e.Run()
	if !after || e.LiveProcs() != 0 {
		t.Fatalf("after=%v live=%d after resume", after, e.LiveProcs())
	}
}

// TestLiveProcsLeakDetection: a proc abandoned on a never-completed future
// shows up in LiveProcs after the run drains — exactly how stuck protocol
// operations are caught in tests.
func TestLiveProcsLeakDetection(t *testing.T) {
	e := NewEngine()
	leak := NewFuture(e)
	e.Spawn("stuck", func(p *Proc) { leak.Wait(p) })
	e.Spawn("fine", func(p *Proc) { p.Sleep(time.Millisecond) })
	e.Run()
	if e.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d, want 1 leaked proc", e.LiveProcs())
	}
	// Completing the future drains the leak.
	leak.Set(nil)
	e.Run()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after unblocking, want 0", e.LiveProcs())
	}
}

// TestZeroSleepYieldsFairness documents the Sleep(0) contract: a zero-length
// sleep (and a negative one, which clamps to zero) parks the proc behind
// everything already queued for this instant, so same-instant work
// interleaves instead of one proc monopolizing the engine.
func TestZeroSleepYieldsFairness(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Spawn("spinner", func(p *Proc) {
		for i := 0; i < 3; i++ {
			trace = append(trace, "spin")
			p.Sleep(0)
		}
	})
	e.Spawn("other", func(p *Proc) {
		for i := 0; i < 3; i++ {
			trace = append(trace, "other")
			p.Sleep(-time.Second) // negative clamps to zero and still yields
		}
	})
	e.Run()
	if e.Now() != 0 {
		t.Fatalf("zero sleeps advanced time to %v", e.Now())
	}
	want := []string{"spin", "other", "spin", "other", "spin", "other"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("zero-sleep did not interleave: %v", trace)
		}
	}
}

// TestScheduleNilFn checks a nil callback is a legal no-op event that still
// anchors virtual time (sim.Server relies on this to mark busy periods).
func TestScheduleNilFn(t *testing.T) {
	e := NewEngine()
	e.Schedule(5*time.Millisecond, nil)
	e.Run()
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("now = %v, want 5ms", e.Now())
	}
	if e.Executed != 1 {
		t.Fatalf("Executed = %d, want 1", e.Executed)
	}
}

// TestTypedFutureNoBoxing exercises the generic future with a concrete
// payload type end to end.
func TestTypedFutureNoBoxing(t *testing.T) {
	e := NewEngine()
	f := NewFutureOf[int](e)
	var got int
	e.Spawn("w", func(p *Proc) {
		v, err := f.Wait(p)
		if err != nil {
			t.Errorf("unexpected error: %v", err)
		}
		got = v
	})
	e.Schedule(time.Millisecond, func() { f.Set(42) })
	e.Run()
	if got != 42 {
		t.Fatalf("typed future value = %d, want 42", got)
	}
}

// TestFutureManyWaitersOrder checks waiters wake in Wait order even past the
// inlined first-waiter slot.
func TestFutureManyWaitersOrder(t *testing.T) {
	e := NewEngine()
	f := NewFuture(e)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			f.Wait(p)
			order = append(order, i)
		})
	}
	e.Schedule(time.Millisecond, func() { f.Set(nil) })
	e.Run()
	if len(order) != 5 {
		t.Fatalf("woke %d of 5 waiters", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("waiters woke out of order: %v", order)
		}
	}
}
