package sim

import (
	"testing"
	"time"
)

func TestServerSerializesJobs(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "dev")
	var done []Time
	for i := 0; i < 3; i++ {
		s.Do(10*time.Millisecond, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []Time{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
	if s.Jobs != 3 {
		t.Fatalf("Jobs = %d", s.Jobs)
	}
	if s.BusyTime != 30*time.Millisecond {
		t.Fatalf("BusyTime = %v", s.BusyTime)
	}
}

func TestServerIdleGapsDontAccumulate(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "dev")
	var second Time
	s.Do(time.Millisecond, nil)
	e.Schedule(100*time.Millisecond, func() {
		s.Do(time.Millisecond, func() { second = e.Now() })
	})
	e.Run()
	if second != 101*time.Millisecond {
		t.Fatalf("second job done at %v, want 101ms (no phantom backlog)", second)
	}
}

func TestServerReturnsCompletionTime(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "dev")
	if got := s.Do(5*time.Millisecond, nil); got != 5*time.Millisecond {
		t.Fatalf("completion = %v", got)
	}
	if got := s.Do(5*time.Millisecond, nil); got != 10*time.Millisecond {
		t.Fatalf("completion = %v", got)
	}
	if s.Idle() {
		t.Fatal("server should be busy")
	}
	e.Run()
	if !s.Idle() {
		t.Fatal("server should be idle after run")
	}
}

func TestServerNegativeCostClamped(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "dev")
	ran := false
	s.Do(-time.Second, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative cost mishandled: ran=%v now=%v", ran, e.Now())
	}
}

func TestServerBacklogTracking(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "dev")
	s.Do(10*time.Millisecond, nil)
	s.Do(10*time.Millisecond, nil) // arrives with 10ms backlog
	if s.MaxBacklog() != 10*time.Millisecond {
		t.Fatalf("MaxBacklog = %v, want 10ms", s.MaxBacklog())
	}
	e.Run()
}

func TestServerUtilization(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "dev")
	s.Do(time.Second, nil)
	e.Schedule(2*time.Second, func() {})
	e.Run()
	u := s.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}
