package sim

import "fmt"

// Proc is a simulated sequential process (a coroutine). Procs model user
// tasks: code that computes for simulated durations and blocks on events
// such as page faults. A proc runs on its own goroutine, but the engine and
// all procs execute mutually exclusively: the engine is blocked while a proc
// runs and vice versa, so execution order is deterministic.
//
// All Proc methods must be called from the proc's own code (inside the
// function passed to Spawn); Wake-style operations happen through Future and
// the other synchronization types.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	yield  chan struct{}
	dead   bool
	lane   int32 // event lane for this proc's wakeups (0 on serial engines)
}

// Spawn creates a proc and schedules it to start immediately (at the current
// virtual time, after already-queued events for this instant). fn runs to
// completion in simulated time; when it returns the proc is dead. The proc's
// wakeups inherit the lane of the event that spawned it.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnOn(e.curLane(), name, fn)
}

// SpawnOn is Spawn with an explicit event lane: the proc's wakeups are
// queued on that lane for the engine's parallel mode. On a serial engine the
// lane is ignored.
func (e *Engine) SpawnOn(lane int, name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		lane:   int32(e.clampLane(lane)),
	}
	e.nprocs++
	go func() {
		<-p.resume
		fn(p)
		p.dead = true
		p.eng.nprocs--
		p.yield <- struct{}{}
	}()
	e.wake(p)
	return p
}

// step runs the proc from the engine context until it parks or finishes.
func (p *Proc) step() {
	if p.dead {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
}

// park returns control to the engine and waits until some event calls step.
func (p *Proc) park() {
	p.yield <- struct{}{}
	<-p.resume
}

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Sleep advances the proc by d of simulated time (e.g. modelled CPU work).
// A negative d is clamped to zero, and even a zero-length sleep parks the
// proc behind events already queued for this instant — Sleep(0) is the
// fairness point that lets other procs and protocol events interleave.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.scheduleProcAt(p.eng.now+d, p)
	p.park()
}

// Yield gives other events scheduled for the current instant a chance to run.
func (p *Proc) Yield() { p.Sleep(0) }

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }

// WaitGroup-like completion tracking -----------------------------------------

// Join blocks the calling proc until all the given futures are set.
func Join(p *Proc, fs ...*Future) {
	for _, f := range fs {
		f.Wait(p)
	}
}
