package sim

import (
	"testing"
	"time"
)

// The engine microbenchmarks measure the simulator's own hot path, not a
// paper artifact: the cost of scheduling and dispatching one event, of one
// proc step (park/resume handoff), and of one future completion. The
// interesting numbers are events/sec (wall clock) and allocs/op — the
// schedule/run path must stay allocation-free in steady state so that large
// sweeps are not dominated by GC.

// BenchmarkScheduleRun measures the steady-state Schedule+dispatch cost per
// event. The queue is kept partially filled (drained every 1024 events) so
// sift operations see a realistic heap depth, and delays are jittered so
// events do not degenerate into pure FIFO order.
func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i%64)*time.Microsecond, fn)
		if e.Pending() >= 1024 {
			e.Run()
		}
	}
	e.Run()
	b.StopTimer()
	b.ReportMetric(float64(e.Executed)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkScheduleRunParallel is BenchmarkScheduleRun on the lane-parallel
// engine: four lanes, events spread round-robin, the same (time, seq) merge
// order as serial. It prices the lane machinery — per-window drains plus the
// merge scan — against the serial heap; worker goroutines only engage when
// GOMAXPROCS allows, so on a single-core host this measures the coordinator
// path alone.
func BenchmarkScheduleRunParallel(b *testing.B) {
	e := NewParallelEngine(4, 64*time.Microsecond)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleLane(i%4, time.Duration(i%64)*time.Microsecond, fn)
		if e.Pending() >= 1024 {
			e.Run()
		}
	}
	e.Run()
	b.StopTimer()
	b.ReportMetric(float64(e.Executed)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkScheduleRunDeep is BenchmarkScheduleRun with 64k cold events
// parked far in the future, so every sift traverses a deep heap.
func BenchmarkScheduleRunDeep(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 1<<16; i++ {
		e.Schedule(time.Duration(1+i)*time.Hour, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i%64)*time.Microsecond, fn)
		if e.Pending() >= 1<<16+1024 {
			e.RunUntil(e.Now() + time.Second)
		}
	}
	e.RunUntil(e.Now() + time.Second)
	b.StopTimer()
	b.ReportMetric(float64(e.Executed)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkProcPingPong measures one proc step: the engine dispatching a
// proc wakeup plus the two-way channel handoff of park/resume. Two procs
// alternate microsecond sleeps, which is the access pattern of every
// simulated task in the repo (compute, block, repeat).
func BenchmarkProcPingPong(b *testing.B) {
	e := NewEngine()
	steps := 0
	body := func(p *Proc) {
		for steps < b.N {
			steps++
			p.Sleep(time.Microsecond)
		}
	}
	e.Spawn("a", body)
	e.Spawn("b", body)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	b.StopTimer()
	if steps < b.N {
		b.Fatalf("ran %d steps, want >= %d", steps, b.N)
	}
	b.ReportMetric(float64(e.Executed)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkFutureSetWait measures the future completion path: a proc waits,
// an event completes the future, the proc wakes. The Future itself is
// one-shot so one allocation per round is inherent; the benchmark guards
// the wake path against growing extra allocations.
func BenchmarkFutureSetWait(b *testing.B) {
	e := NewEngine()
	e.Spawn("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			f := NewFuture(e)
			e.Schedule(time.Microsecond, func() { f.Set(nil) })
			f.Wait(p)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	b.StopTimer()
	b.ReportMetric(float64(e.Executed)/b.Elapsed().Seconds(), "events/sec")
}
