package sim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Series accumulates duration samples and summarizes them. It is used by
// the experiment harness to report fault latencies and the like.
type Series struct {
	Name    string
	samples []time.Duration
}

// NewSeries returns an empty, named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends one sample.
func (s *Series) Add(d time.Duration) { s.samples = append(s.samples, d) }

// N returns the sample count.
func (s *Series) N() int { return len(s.samples) }

// Sum returns the total of all samples.
func (s *Series) Sum() time.Duration {
	var t time.Duration
	for _, d := range s.samples {
		t += d
	}
	return t
}

// Mean returns the average sample, or zero when empty.
func (s *Series) Mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	return s.Sum() / time.Duration(len(s.samples))
}

// Min returns the smallest sample, or zero when empty.
func (s *Series) Min() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	m := s.samples[0]
	for _, d := range s.samples[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// Max returns the largest sample, or zero when empty.
func (s *Series) Max() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	m := s.samples[0]
	for _, d := range s.samples[1:] {
		if d > m {
			m = d
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank, or zero when empty.
func (s *Series) Percentile(p float64) time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Stddev returns the population standard deviation in seconds.
func (s *Series) Stddev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean().Seconds()
	var ss float64
	for _, d := range s.samples {
		dev := d.Seconds() - mean
		ss += dev * dev
	}
	return math.Sqrt(ss / float64(n))
}

// String implements fmt.Stringer with a one-line summary.
func (s *Series) String() string {
	return fmt.Sprintf("%s: n=%d mean=%v min=%v max=%v",
		s.Name, s.N(), s.Mean(), s.Min(), s.Max())
}

// Counters is a named set of monotonically increasing counters used for
// protocol accounting (messages sent, faults served, pageouts, ...).
type Counters struct {
	m map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Inc adds delta (typically 1) to the named counter.
func (c *Counters) Inc(name string, delta int64) { c.m[name] += delta }

// Get returns the counter's value (zero if never incremented).
func (c *Counters) Get(name string) int64 { return c.m[name] }

// Names returns all counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes all counters.
func (c *Counters) Reset() { c.m = make(map[string]int64) }
