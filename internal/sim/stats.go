package sim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Series accumulates duration samples and summarizes them. It is used by
// the experiment harness to report fault latencies and the like.
type Series struct {
	Name    string
	samples []time.Duration

	// sorted caches the ascending-order view shared by Percentile, Min and
	// Max; Add invalidates it. Repeated percentile queries over a stable
	// series (how reports read it) sort once instead of copy+sort per call.
	sorted []time.Duration
}

// NewSeries returns an empty, named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends one sample.
func (s *Series) Add(d time.Duration) {
	s.samples = append(s.samples, d)
	s.sorted = nil
}

// N returns the sample count.
func (s *Series) N() int { return len(s.samples) }

// Sum returns the total of all samples.
func (s *Series) Sum() time.Duration {
	var t time.Duration
	for _, d := range s.samples {
		t += d
	}
	return t
}

// Mean returns the average sample, or zero when empty.
func (s *Series) Mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	return s.Sum() / time.Duration(len(s.samples))
}

// sortedView returns the cached ascending-order copy of the samples,
// (re)building it if an Add invalidated it.
func (s *Series) sortedView() []time.Duration {
	if s.sorted == nil {
		s.sorted = append([]time.Duration(nil), s.samples...)
		sort.Slice(s.sorted, func(i, j int) bool { return s.sorted[i] < s.sorted[j] })
	}
	return s.sorted
}

// Min returns the smallest sample, or zero when empty.
func (s *Series) Min() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sortedView()[0]
}

// Max returns the largest sample, or zero when empty.
func (s *Series) Max() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	v := s.sortedView()
	return v[len(v)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank, or zero when empty.
func (s *Series) Percentile(p float64) time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	sorted := s.sortedView()
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Stddev returns the population standard deviation in seconds.
func (s *Series) Stddev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean().Seconds()
	var ss float64
	for _, d := range s.samples {
		dev := d.Seconds() - mean
		ss += dev * dev
	}
	return math.Sqrt(ss / float64(n))
}

// String implements fmt.Stringer with a one-line summary.
func (s *Series) String() string {
	return fmt.Sprintf("%s: n=%d mean=%v min=%v max=%v",
		s.Name, s.N(), s.Mean(), s.Min(), s.Max())
}

// Ctr identifies one of the fixed protocol counters. Every counter the
// memory system bumps on its steady-state paths has an enum value, so the
// per-message accounting is an array index, not a map op on a string key.
// The names the enum values map to (see ctrNames) are the exact strings
// experiment reports have always printed; a golden test pins them.
type Ctr uint8

const (
	CtrAsymCopies Ctr = iota
	CtrCopiesDropped
	CtrCopyPagerFaults
	CtrCopyRequests
	CtrCowCopies
	CtrDataRequests
	CtrDataSupplies
	CtrDataUnavailable
	CtrDataUnlocks
	CtrEvictCancelled
	CtrEvictDiscard
	CtrEvictDrop
	CtrEvictOwner
	CtrEvictOwnerXfer
	CtrEvictPageXfer
	CtrEvictStuck
	CtrEvictToPager
	CtrEvictions
	CtrFaultRedrives
	CtrFaults
	CtrFaultsAborted
	CtrFreshGrants
	CtrFwdDynamic
	CtrFwdGlobal
	CtrFwdStatic
	CtrGrantRetries
	CtrHintEvictions
	CtrHintNacks
	CtrHomeFreshGrants
	CtrHomePagerSupplies
	CtrHomeRetries
	CtrHopEscalations
	CtrInvalidations
	CtrLateAcks
	CtrLateGrants
	CtrLocalPushes
	CtrMgrDirtyToPager
	CtrMgrFlushes
	CtrMgrPageouts
	CtrMgrRequests
	CtrMgrUpgrades
	CtrMsgs
	CtrNacks
	CtrOwnershipLost
	CtrOwnershipReclaimed
	CtrOwnerXferAccepted
	CtrPageOfferAccepted
	CtrPageOfferDeclined
	CtrPagesLost
	CtrPeerDowns
	CtrProtoTransitions
	CtrProxyEvicts
	CtrProxyRequests
	CtrPullGrants
	CtrPullRequests
	CtrPullRetries
	CtrPulls
	CtrPushLocks
	CtrPushSupplies
	CtrPushesCancelled
	CtrPushesInstalled
	CtrPushesStarted
	CtrPushScanInflight
	CtrRangeLocks
	CtrRangeUnlocks
	CtrReadGrants
	CtrReqNacks
	CtrRingScanHops
	CtrSelfUpgrades
	CtrShadowInterpose
	CtrStaleGrants
	CtrStaticMisses
	CtrStaticOwnerHits
	CtrStaticPagedHits
	CtrWriteGrants
	CtrZeroFills

	// NumCtrs is the number of fixed counters (array length for V).
	NumCtrs
)

// ctrNames is the stable enum→name table. Report output is built from
// these strings, so they must never change: they are the counter names the
// committed experiment records (results_full.txt) were produced with.
var ctrNames = [NumCtrs]string{
	CtrAsymCopies:         "asym_copies",
	CtrCopiesDropped:      "copies_dropped",
	CtrCopyPagerFaults:    "copy_pager_faults",
	CtrCopyRequests:       "copy_requests",
	CtrCowCopies:          "cow_copies",
	CtrDataRequests:       "data_requests",
	CtrDataSupplies:       "data_supplies",
	CtrDataUnavailable:    "data_unavailable",
	CtrDataUnlocks:        "data_unlocks",
	CtrEvictCancelled:     "evict_cancelled",
	CtrEvictDiscard:       "evict_discard",
	CtrEvictDrop:          "evict_drop",
	CtrEvictOwner:         "evict_owner",
	CtrEvictOwnerXfer:     "evict_owner_xfer",
	CtrEvictPageXfer:      "evict_page_xfer",
	CtrEvictStuck:         "evict_stuck",
	CtrEvictToPager:       "evict_to_pager",
	CtrEvictions:          "evictions",
	CtrFaultRedrives:      "fault_redrives",
	CtrFaults:             "faults",
	CtrFaultsAborted:      "faults_aborted",
	CtrFreshGrants:        "fresh_grants",
	CtrFwdDynamic:         "fwd_dynamic",
	CtrFwdGlobal:          "fwd_global",
	CtrFwdStatic:          "fwd_static",
	CtrGrantRetries:       "grant_retries",
	CtrHintEvictions:      "hint_evictions",
	CtrHintNacks:          "hint_nacks",
	CtrHomeFreshGrants:    "home_fresh_grants",
	CtrHomePagerSupplies:  "home_pager_supplies",
	CtrHomeRetries:        "home_retries",
	CtrHopEscalations:     "hop_escalations",
	CtrInvalidations:      "invalidations",
	CtrLateAcks:           "late_acks",
	CtrLateGrants:         "late_grants",
	CtrLocalPushes:        "local_pushes",
	CtrMgrDirtyToPager:    "mgr_dirty_to_pager",
	CtrMgrFlushes:         "mgr_flushes",
	CtrMgrPageouts:        "mgr_pageouts",
	CtrMgrRequests:        "mgr_requests",
	CtrMgrUpgrades:        "mgr_upgrades",
	CtrMsgs:               "msgs",
	CtrNacks:              "nacks",
	CtrOwnershipLost:      "ownership_lost",
	CtrOwnershipReclaimed: "ownership_reclaimed",
	CtrOwnerXferAccepted:  "ownerxfer_accepted",
	CtrPageOfferAccepted:  "pageoffer_accepted",
	CtrPageOfferDeclined:  "pageoffer_declined",
	CtrPagesLost:          "pages_lost",
	CtrPeerDowns:          "peer_downs",
	CtrProtoTransitions:   "proto_transitions",
	CtrProxyEvicts:        "proxy_evicts",
	CtrProxyRequests:      "proxy_requests",
	CtrPullGrants:         "pull_grants",
	CtrPullRequests:       "pull_requests",
	CtrPullRetries:        "pull_retries",
	CtrPulls:              "pulls",
	CtrPushLocks:          "push_locks",
	CtrPushSupplies:       "push_supplies",
	CtrPushesCancelled:    "pushes_cancelled",
	CtrPushesInstalled:    "pushes_installed",
	CtrPushesStarted:      "pushes_started",
	CtrPushScanInflight:   "pushscan_inflight",
	CtrRangeLocks:         "range_locks",
	CtrRangeUnlocks:       "range_unlocks",
	CtrReadGrants:         "read_grants",
	CtrReqNacks:           "req_nacks",
	CtrRingScanHops:       "ring_scan_hops",
	CtrSelfUpgrades:       "self_upgrades",
	CtrShadowInterpose:    "shadow_interpose",
	CtrStaleGrants:        "stale_grants",
	CtrStaticMisses:       "static_misses",
	CtrStaticOwnerHits:    "static_owner_hits",
	CtrStaticPagedHits:    "static_paged_hits",
	CtrWriteGrants:        "write_grants",
	CtrZeroFills:          "zero_fills",
}

// ctrByName inverts ctrNames so string-keyed Inc/Get route to the array.
var ctrByName = func() map[string]Ctr {
	m := make(map[string]Ctr, NumCtrs)
	for k, name := range ctrNames {
		m[name] = Ctr(k)
	}
	return m
}()

// String returns the counter's stable report name.
func (k Ctr) String() string {
	if k >= NumCtrs {
		return fmt.Sprintf("ctr#%d", uint8(k))
	}
	return ctrNames[k]
}

// Counters is a named set of monotonically increasing counters used for
// protocol accounting (messages sent, faults served, pageouts, ...).
//
// The fixed counters live in the enum-indexed array V — the fast path is
// c.V[CtrMsgs]++, one indexed add with no hashing. The string API (Inc,
// Get) still works for any name: known names route to the array, unknown
// ones overflow to a map, so ad-hoc counters in tests and tools keep
// working. Names()/Get make both kinds indistinguishable to reports.
type Counters struct {
	// V is the enum-indexed fast path; increment entries directly.
	V [NumCtrs]int64

	m map[string]int64 // overflow: dynamically named counters
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{} }

// Inc adds delta (typically 1) to the named counter.
func (c *Counters) Inc(name string, delta int64) {
	if k, ok := ctrByName[name]; ok {
		c.V[k] += delta
		return
	}
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += delta
}

// Get returns the counter's value (zero if never incremented).
func (c *Counters) Get(name string) int64 {
	if k, ok := ctrByName[name]; ok {
		return c.V[k]
	}
	return c.m[name]
}

// Names returns the names of all touched counters in sorted order. A fixed
// counter is touched when nonzero (every production site increments by 1);
// overflow counters are touched once Inc'd, as before.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m)+8)
	for k, v := range c.V {
		if v != 0 {
			names = append(names, ctrNames[k])
		}
	}
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.V = [NumCtrs]int64{}
	c.m = nil
}
