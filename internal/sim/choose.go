package sim

import "fmt"

// This file is the engine's schedule-exploration hook. A Chooser, when
// installed, resolves *choice points*: places where the simulation's outcome
// is determined by an order the protocol must not depend on — which of
// several same-timestamp events runs first, how much extra latency a message
// delivery sees, whether a faulty link drops a message. Production runs
// never install one (the field is nil and every path below short-circuits),
// so the seed-1 determinism contract and the zero-allocation hot paths are
// untouched; the explore package installs one to enumerate or sample
// schedules.

// ChoiceKind labels a choice point, for traces and reproducer files.
type ChoiceKind uint8

const (
	// ChoiceEvent picks which of n same-timestamp events runs next.
	// Alternative 0 is always the default (FIFO by schedule order).
	ChoiceEvent ChoiceKind = iota
	// ChoiceLatency picks an extra delivery-latency step for a message.
	// Alternative 0 is always "no extra latency".
	ChoiceLatency
	// ChoiceFault picks the fate of a message on a fault-injected link.
	// Alternative 0 is always "deliver normally".
	ChoiceFault
	// ChoiceCrash picks the fate of a planned node crash when it comes due.
	// Alternative 0 is always "the node survives"; 1 is crash (with the
	// plan's restart, if any); 2, where offered, is crash with the restart
	// suppressed (a permanent fate for a plan that scheduled a comeback).
	ChoiceCrash
)

// String implements fmt.Stringer.
func (k ChoiceKind) String() string {
	switch k {
	case ChoiceEvent:
		return "event"
	case ChoiceLatency:
		return "latency"
	case ChoiceFault:
		return "fault"
	case ChoiceCrash:
		return "crash"
	}
	return fmt.Sprintf("ChoiceKind(%d)", uint8(k))
}

// Chooser resolves schedule choice points. Choose must return an index in
// [0, n) and must be a deterministic function of the sequence of calls it
// has seen — the engine replays a schedule exactly by replaying the choice
// sequence. Returning 0 everywhere reproduces the default schedule
// bit-for-bit.
type Chooser interface {
	Choose(kind ChoiceKind, n int) int
}

// maxEventChoices caps how many same-timestamp events one ChoiceEvent point
// offers. Ties wider than this are still executed correctly — the chooser
// just cannot reorder beyond the first maxEventChoices candidates.
const maxEventChoices = 8

// SetChooser installs (or, with nil, removes) the schedule-exploration
// hook. Must not be called while the engine is running events.
//
// Installing a chooser permanently retires the engine's parallel lanes and
// returns any live dispatch batch to the heap: ChoiceEvent points are
// defined against the heap's same-timestamp candidate sets, which batching
// and lanes deliberately avoid materializing. Exploration always runs on
// the serial per-event path (DESIGN.md §10).
func (e *Engine) SetChooser(c Chooser) {
	if c != nil {
		e.dropFastPaths()
	}
	e.chooser = c
}

// dropFastPaths moves every event onto the serial heap: the dispatch batch
// is flushed and, if parallel lanes are live, they are drained and retired.
// Event keys are untouched, so the schedule is unchanged.
func (e *Engine) dropFastPaths() {
	if e.par != nil && !e.par.retired {
		e.par.retire()
	}
	e.flushBatch()
}

// Exploring reports whether a Chooser is installed. Cost-model code uses it
// to gate choice points off the hot path with a single nil check.
func (e *Engine) Exploring() bool { return e.chooser != nil }

// Choose resolves one choice point against the installed chooser. With no
// chooser (every production run) or a degenerate point (n <= 1) it returns
// 0, the default alternative, without any side effect.
func (e *Engine) Choose(kind ChoiceKind, n int) int {
	if e.chooser == nil || n <= 1 {
		return 0
	}
	k := e.chooser.Choose(kind, n)
	if k < 0 || k >= n {
		panic(fmt.Sprintf("sim: chooser returned %d for a %v point with %d alternatives", k, kind, n))
	}
	return k
}

// popChoose pops the next event under chooser control: when several events
// share the earliest timestamp, the chooser picks which runs first.
// Candidates are presented in (seq) FIFO order, so alternative 0 is exactly
// the default schedule and a chooser that always answers 0 is a no-op.
func (e *Engine) popChoose() event {
	first := e.q.pop()
	if e.q.len() == 0 || e.q.ev[0].at != first.at {
		return first
	}
	e.scratch = append(e.scratch[:0], first)
	for e.q.len() > 0 && e.q.ev[0].at == first.at && len(e.scratch) < maxEventChoices {
		e.scratch = append(e.scratch, e.q.pop())
	}
	k := e.Choose(ChoiceEvent, len(e.scratch))
	chosen := e.scratch[k]
	for i := range e.scratch {
		if i != k {
			// Pushing back preserves seq, so the relative order of the
			// remaining candidates is unchanged and later choice points see
			// a stable candidate list.
			e.q.push(e.scratch[i])
		}
		e.scratch[i] = event{} // release fn/proc/run
	}
	return chosen
}

// RunMax executes events until the queue drains, Halt is called, or max
// events have run — the explorer's non-termination bound. It reports
// whether the queue drained (false means the bound was hit or the engine
// was halted with events still pending).
func (e *Engine) RunMax(max uint64) bool {
	e.halted = false
	e.dropFastPaths() // per-event pops need everything on the serial heap
	for e.q.len() > 0 && !e.halted {
		if max == 0 {
			return false
		}
		max--
		var ev event
		if e.chooser != nil {
			ev = e.popChoose()
		} else {
			ev = e.q.pop()
		}
		e.now = ev.at
		e.Executed++
		if ev.proc != nil {
			ev.proc.step()
		} else if ev.run != nil {
			ev.run.Run()
		} else if ev.fn != nil {
			ev.fn()
		}
	}
	return e.q.len() == 0
}
