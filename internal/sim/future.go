package sim

// FutureOf is a one-shot completion carrying a typed value and an optional
// error. Procs block on it with Wait; event-driven code completes it with
// Set or Fail and may attach callbacks with OnDone. A future may be
// completed only once; completing it twice panics, because in a protocol
// simulation a double completion is always a protocol bug worth crashing on.
//
// The single-waiter and single-callback cases (by far the most common) are
// stored inline, so waiting on a future does not allocate; waking a waiter
// goes through the engine's proc fast path and does not allocate either.
type FutureOf[T any] struct {
	eng   *Engine
	done  bool
	value T
	err   error

	w0      *Proc   // first waiter, inlined
	waiters []*Proc // overflow beyond the first

	cb0 func(T, error) // first callback, inlined
	cbs []func(T, error)
}

// Future is the untyped future used by protocol code that carries no value
// or a dynamically-typed one. It is an alias, not a distinct type: the
// typed and untyped APIs are the same implementation.
type Future = FutureOf[any]

// NewFuture returns an incomplete untyped future bound to the engine.
func NewFuture(e *Engine) *Future {
	return &Future{eng: e}
}

// NewFutureOf returns an incomplete typed future bound to the engine. Using
// a concrete T avoids boxing the value in an interface on Set/Wait.
func NewFutureOf[T any](e *Engine) *FutureOf[T] {
	return &FutureOf[T]{eng: e}
}

// Reinit returns a future to the incomplete state, binding it to e — the
// hook that lets callers embed futures in pooled structures and reuse the
// allocation. It panics if a waiter or callback is still attached: those
// hold the future's identity across events, and rebinding under them would
// hand a stale completion to the next user. (A completed future has no
// attachments left — complete() clears them as it wakes/schedules.)
func (f *FutureOf[T]) Reinit(e *Engine) {
	if f.w0 != nil || len(f.waiters) != 0 || f.cb0 != nil || len(f.cbs) != 0 {
		panic("sim: Reinit of a future with waiters or callbacks attached")
	}
	var zero T
	f.eng = e
	f.done = false
	f.value = zero
	f.err = nil
}

// Done reports whether the future has been completed.
func (f *FutureOf[T]) Done() bool { return f.done }

// Value returns the value the future was completed with (the zero value
// before completion).
func (f *FutureOf[T]) Value() T { return f.value }

// Err returns the error the future was completed with, if any.
func (f *FutureOf[T]) Err() error { return f.err }

// Set completes the future successfully, waking all waiting procs and firing
// callbacks in registration order.
func (f *FutureOf[T]) Set(v T) { f.complete(v, nil) }

// Fail completes the future with an error.
func (f *FutureOf[T]) Fail(err error) {
	var zero T
	f.complete(zero, err)
}

func (f *FutureOf[T]) complete(v T, err error) {
	if f.done {
		panic("sim: Future completed twice")
	}
	f.done = true
	f.value = v
	f.err = err
	if p := f.w0; p != nil {
		f.w0 = nil
		f.eng.wake(p)
	}
	for _, p := range f.waiters {
		f.eng.wake(p)
	}
	f.waiters = nil
	if cb := f.cb0; cb != nil {
		f.cb0 = nil
		f.eng.Schedule(0, func() { cb(v, err) })
	}
	for _, cb := range f.cbs {
		cb := cb
		f.eng.Schedule(0, func() { cb(v, err) })
	}
	f.cbs = nil
}

// Wait blocks the proc until the future is complete and returns its value
// and error. If already complete it returns immediately without yielding.
func (f *FutureOf[T]) Wait(p *Proc) (T, error) {
	if !f.done {
		if f.w0 == nil && len(f.waiters) == 0 {
			f.w0 = p
		} else {
			f.waiters = append(f.waiters, p)
		}
		p.park()
	}
	return f.value, f.err
}

// OnDone registers a callback to run (as its own event) when the future
// completes. If the future is already complete the callback is scheduled
// immediately.
func (f *FutureOf[T]) OnDone(cb func(v T, err error)) {
	if f.done {
		v, err := f.value, f.err
		f.eng.Schedule(0, func() { cb(v, err) })
		return
	}
	if f.cb0 == nil && len(f.cbs) == 0 {
		f.cb0 = cb
	} else {
		f.cbs = append(f.cbs, cb)
	}
}
