package sim

// Future is a one-shot completion carrying an optional value and error.
// Procs block on it with Wait; event-driven code completes it with Set or
// Fail and may attach callbacks with OnDone. A Future may be completed only
// once; completing it twice panics, because in a protocol simulation a
// double completion is always a protocol bug worth crashing on.
type Future struct {
	eng     *Engine
	done    bool
	value   interface{}
	err     error
	waiters []*Proc
	cbs     []func(interface{}, error)
}

// NewFuture returns an incomplete future bound to the engine.
func NewFuture(e *Engine) *Future {
	return &Future{eng: e}
}

// Done reports whether the future has been completed.
func (f *Future) Done() bool { return f.done }

// Value returns the value the future was completed with (nil before
// completion).
func (f *Future) Value() interface{} { return f.value }

// Err returns the error the future was completed with, if any.
func (f *Future) Err() error { return f.err }

// Set completes the future successfully, waking all waiting procs and firing
// callbacks in registration order.
func (f *Future) Set(v interface{}) { f.complete(v, nil) }

// Fail completes the future with an error.
func (f *Future) Fail(err error) { f.complete(nil, err) }

func (f *Future) complete(v interface{}, err error) {
	if f.done {
		panic("sim: Future completed twice")
	}
	f.done = true
	f.value = v
	f.err = err
	for _, p := range f.waiters {
		f.eng.Schedule(0, p.step)
	}
	f.waiters = nil
	for _, cb := range f.cbs {
		cb := cb
		f.eng.Schedule(0, func() { cb(v, err) })
	}
	f.cbs = nil
}

// Wait blocks the proc until the future is complete and returns its value
// and error. If already complete it returns immediately without yielding.
func (f *Future) Wait(p *Proc) (interface{}, error) {
	if !f.done {
		f.waiters = append(f.waiters, p)
		p.park()
	}
	return f.value, f.err
}

// OnDone registers a callback to run (as its own event) when the future
// completes. If the future is already complete the callback is scheduled
// immediately.
func (f *Future) OnDone(cb func(v interface{}, err error)) {
	if f.done {
		v, err := f.value, f.err
		f.eng.Schedule(0, func() { cb(v, err) })
		return
	}
	f.cbs = append(f.cbs, cb)
}
