package sim

import "time"

// Server models a serial resource: a device that handles one request at a
// time in FIFO order (a Paragon message processor, a NIC serializing bytes
// onto a link, a disk arm). Submitting work when the server is busy queues
// it; queueing delay is how contention emerges in the simulation.
type Server struct {
	eng  *Engine
	name string

	busyUntil Time

	// Accounting.
	Jobs     uint64        // total jobs accepted
	BusyTime time.Duration // total service time accumulated
	maxQueue time.Duration // largest backlog observed (in service time)
}

// NewServer returns an idle server.
func NewServer(e *Engine, name string) *Server {
	return &Server{eng: e, name: name}
}

// Do enqueues a job with the given service time; fn (may be nil) runs when
// the job completes. Returns the completion time.
func (s *Server) Do(cost time.Duration, fn func()) Time {
	if cost < 0 {
		cost = 0
	}
	now := s.eng.Now()
	start := s.busyUntil
	if start < now {
		start = now
	}
	if backlog := start - now; backlog > s.maxQueue {
		s.maxQueue = backlog
	}
	s.busyUntil = start + cost
	s.Jobs++
	s.BusyTime += cost
	done := s.busyUntil
	if fn != nil {
		s.eng.ScheduleAt(done, fn)
	} else {
		// Still anchor the busy period so RunUntil sees activity.
		s.eng.ScheduleAt(done, func() {})
	}
	return done
}

// DoRun enqueues a job like Do but completion resumes a Runnable instead
// of a closure, keeping the caller's path allocation-free.
func (s *Server) DoRun(cost time.Duration, r Runnable) Time {
	if cost < 0 {
		cost = 0
	}
	now := s.eng.Now()
	start := s.busyUntil
	if start < now {
		start = now
	}
	if backlog := start - now; backlog > s.maxQueue {
		s.maxQueue = backlog
	}
	s.busyUntil = start + cost
	s.Jobs++
	s.BusyTime += cost
	done := s.busyUntil
	s.eng.ScheduleRunAt(done, r)
	return done
}

// BusyUntil returns the time at which all currently queued work finishes.
func (s *Server) BusyUntil() Time { return s.busyUntil }

// Idle reports whether the server has no queued or in-progress work.
func (s *Server) Idle() bool { return s.busyUntil <= s.eng.Now() }

// MaxBacklog returns the largest queueing delay (in service time ahead of a
// new arrival) observed so far.
func (s *Server) MaxBacklog() time.Duration { return s.maxQueue }

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Utilization returns BusyTime / elapsed as a fraction (0 when no time has
// passed).
func (s *Server) Utilization() float64 {
	now := s.eng.Now()
	if now == 0 {
		return 0
	}
	return s.BusyTime.Seconds() / now.Seconds()
}
