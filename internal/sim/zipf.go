package sim

import (
	"math"
	"sort"
)

// Zipf draws ranks 0..n-1 with probability proportional to 1/(rank+1)^s —
// the access skew the scale scenarios use so a few hot objects see most of
// the traffic while a long tail stays warm. Draws consume exactly one RNG
// value each, so a generator's stream stays aligned no matter which ranks
// come out; the distribution itself is a precomputed CDF (binary-searched),
// keeping Draw O(log n) with no floating-point accumulation at draw time.
type Zipf struct {
	cdf []float64 // cdf[k] = P(rank <= k); cdf[n-1] == 1 exactly
}

// NewZipf builds the distribution over n ranks with exponent s. n must be
// positive; s = 0 degenerates to uniform, larger s concentrates mass on the
// low ranks (s ~ 1 is the classic object-popularity curve).
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		panic("sim: Zipf needs at least one rank")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	cdf[n-1] = 1 // close the interval against rounding
	return &Zipf{cdf: cdf}
}

// Draw returns one rank, consuming exactly one RNG draw.
func (z *Zipf) Draw(r *RNG) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }
