package sim

// RNG is a small, fast, seedable pseudo-random generator (xorshift64*).
// The simulator cannot use math/rand's global state: every source of
// randomness must be explicitly seeded so runs are reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is mapped to a fixed
// non-zero constant, since xorshift has an all-zero fixed point).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fork derives an independent generator, useful for giving each component
// its own deterministic stream.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
