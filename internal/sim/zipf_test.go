package sim

import (
	"math"
	"testing"
)

// TestZipfGoldenDraws pins the first 32 draws of the 64-rank s=1.0
// distribution for three seeds. The scale scenario generator derives every
// access pattern from these streams, so the sequences are part of the
// deterministic-results contract: a change here silently reshuffles every
// scale cell. Changing them is a deliberate act reviewed as a diff.
func TestZipfGoldenDraws(t *testing.T) {
	golden := map[uint64][32]int{
		1:     {1, 13, 17, 1, 0, 22, 26, 13, 2, 19, 5, 0, 0, 17, 35, 10, 0, 0, 5, 37, 4, 1, 12, 0, 0, 30, 6, 36, 2, 1, 1, 2},
		42:    {2, 22, 23, 48, 20, 29, 0, 4, 1, 13, 3, 2, 35, 0, 0, 9, 2, 1, 63, 2, 3, 13, 2, 2, 2, 1, 8, 16, 8, 23, 0, 0},
		12345: {8, 19, 0, 17, 0, 0, 63, 6, 19, 4, 20, 1, 0, 0, 5, 1, 0, 35, 8, 0, 27, 19, 13, 15, 29, 15, 39, 0, 1, 11, 0, 0},
	}
	for seed, want := range golden {
		z := NewZipf(64, 1.0)
		r := NewRNG(seed)
		for i, w := range want {
			if got := z.Draw(r); got != w {
				t.Errorf("seed %d draw %d = %d, want %d", seed, i, got, w)
			}
		}
	}
}

// TestZipfDistributionShape checks the draws actually follow the skew: with
// s=1, rank 0 must dominate rank 15 by roughly its theoretical 16x factor,
// and every rank must stay reachable.
func TestZipfDistributionShape(t *testing.T) {
	const n, draws = 16, 200000
	z := NewZipf(n, 1.0)
	r := NewRNG(7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Draw(r)]++
	}
	for k, c := range counts {
		if c == 0 {
			t.Errorf("rank %d never drawn in %d draws", k, draws)
		}
	}
	ratio := float64(counts[0]) / float64(counts[15])
	if ratio < 12 || ratio > 21 {
		t.Errorf("rank0/rank15 ratio = %.1f, want ~16", ratio)
	}
}

// TestZipfUniformWhenSZero: s=0 degenerates to uniform — each rank within a
// few percent of draws/n.
func TestZipfUniformWhenSZero(t *testing.T) {
	const n, draws = 8, 80000
	z := NewZipf(n, 0)
	r := NewRNG(3)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Draw(r)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Errorf("rank %d drawn %d times, want ~%.0f", k, c, want)
		}
	}
}

// TestZipfDrawBounds: every draw lands in [0, n), including the u→1 edge
// (cdf[n-1] is pinned to exactly 1).
func TestZipfDrawBounds(t *testing.T) {
	z := NewZipf(5, 1.2)
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		if k := z.Draw(r); k < 0 || k >= 5 {
			t.Fatalf("draw %d out of range", k)
		}
	}
	if z.N() != 5 {
		t.Fatalf("N = %d", z.N())
	}
}
