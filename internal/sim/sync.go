package sim

// Synchronization primitives for procs. All of these follow the engine's
// determinism rules: wakeups are scheduled events, FIFO among equal times.

// Semaphore is a counting semaphore for procs.
type Semaphore struct {
	eng     *Engine
	tokens  int
	waiters []*Proc
}

// NewSemaphore returns a semaphore holding n tokens.
func NewSemaphore(e *Engine, n int) *Semaphore {
	return &Semaphore{eng: e, tokens: n}
}

// Acquire takes one token, blocking the proc until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.tokens > 0 {
		s.tokens--
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// TryAcquire takes a token without blocking; it reports whether it got one.
func (s *Semaphore) TryAcquire() bool {
	if s.tokens > 0 {
		s.tokens--
		return true
	}
	return false
}

// Release returns one token, waking the longest-waiting proc if any.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		p := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.eng.wake(p)
		return
	}
	s.tokens++
}

// Available reports the current token count.
func (s *Semaphore) Available() int { return s.tokens }

// Mutex is a binary semaphore with Lock/Unlock naming.
type Mutex struct{ sem *Semaphore }

// NewMutex returns an unlocked mutex.
func NewMutex(e *Engine) *Mutex { return &Mutex{sem: NewSemaphore(e, 1)} }

// Lock acquires the mutex, blocking the proc until it is free.
func (m *Mutex) Lock(p *Proc) { m.sem.Acquire(p) }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.sem.Release() }

// Barrier blocks procs until a fixed number have arrived, then releases them
// all; it is reusable (generation-counted).
type Barrier struct {
	eng     *Engine
	n       int
	arrived int
	waiters []*Proc
	// Generations counts completed barrier episodes.
	Generations int
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(e *Engine, n int) *Barrier {
	if n < 1 {
		panic("sim: barrier needs at least one participant")
	}
	return &Barrier{eng: e, n: n}
}

// Await blocks the proc until n procs (including this one) have arrived.
func (b *Barrier) Await(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.Generations++
		ws := b.waiters
		b.waiters = nil
		for _, w := range ws {
			b.eng.wake(w)
		}
		return
	}
	b.waiters = append(b.waiters, p)
	p.park()
}

// CondQueue is a FIFO wait queue: procs Wait, event code Signals one or
// Broadcasts all. Unlike sync.Cond there is no associated lock; the
// simulation is logically single-threaded.
type CondQueue struct {
	eng     *Engine
	waiters []*Proc
}

// NewCondQueue returns an empty queue bound to the engine.
func NewCondQueue(e *Engine) *CondQueue { return &CondQueue{eng: e} }

// Wait enqueues the proc and blocks it until signalled.
func (c *CondQueue) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes the longest-waiting proc, if any, and reports whether one was
// woken.
func (c *CondQueue) Signal() bool {
	if len(c.waiters) == 0 {
		return false
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.eng.wake(p)
	return true
}

// Broadcast wakes all waiting procs and returns how many were woken.
func (c *CondQueue) Broadcast() int {
	n := len(c.waiters)
	for _, p := range c.waiters {
		c.eng.wake(p)
	}
	c.waiters = nil
	return n
}

// Len reports the number of waiting procs.
func (c *CondQueue) Len() int { return len(c.waiters) }
