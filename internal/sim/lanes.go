package sim

// This file is the deterministic parallel mode of the engine: per-lane event
// queues drained concurrently under a conservative lookahead window, then
// merged and executed in global (time, seq) order.
//
// The design splits the engine's work into two roles. Lane workers own the
// expensive heap maintenance: each lane is its own 4-ary min-heap, and
// draining the events of a window out of P lanes costs P-way parallel
// sift-downs over heaps a P-th of the size. The coordinator owns execution:
// it k-way merges the lanes' (already sorted) ready runs and dispatches
// every event on one goroutine, in exactly the (time, seq) order the serial
// engine would have used. Determinism is therefore structural, not
// probabilistic — the executed schedule is identical to the serial engine's
// by construction, and lane assignment is purely a load-balancing hint:
// a misrouted event costs locality, never correctness.
//
// The conservative window comes from the interconnect's latency floor
// (mesh.Config.LookaheadFloor): a window [t, t+lookahead) is drained at
// once because cross-node messages born inside it cannot be delivered
// inside it. Events that *are* scheduled into the open window while it
// executes (same-instant wakeups, sub-lookahead local work) do not break
// the merge: same-instant events join the live dispatch batch, and
// anything else below the window bound goes to a small overflow heap that
// the merge consults alongside the lane runs. Correctness never depends on
// the lookahead value — a too-large window only grows the overflow heap.
//
// Two operations force a permanent fallback to the serial engine: installing
// a schedule Chooser (its ChoiceEvent points are defined against the global
// heap's same-timestamp candidate sets, which lanes deliberately do not
// materialize) and RunMax (the explorer's bounded-step loop). retire() moves
// every queued event back into the serial heap — keys are untouched, so the
// schedule is unchanged.

// lane is one event shard: a heap plus the sorted ready run its drainer
// produced for the current window. The pad keeps concurrently-drained
// neighbours off each other's cache lines.
type lane struct {
	q     eventQueue
	ready []event
	pos   int
	_     [64]byte
}

// drain pre-pops this lane's slice of the window: every event strictly
// before bound moves from the heap to the ready run, in (time, seq) order.
func (la *lane) drain(bound Time) {
	la.ready = la.q.drainBefore(bound, la.ready)
}

// merge sources beyond the lanes themselves.
const (
	srcOverflow = -1
	srcBatch    = -2
)

// parEngine is the lane state hung off an Engine by NewParallelEngine.
type parEngine struct {
	e         *Engine
	lanes     []lane
	lookahead Time

	// overflow holds events scheduled during a window's execution for a
	// time inside the window but after the current instant — the only
	// events the pre-drained ready runs cannot contain.
	overflow eventQueue

	// curLane is the lane of the event being dispatched; untagged schedules
	// inherit it, so protocol chains stay on their node's lane without
	// every call site being annotated.
	curLane int

	// merging marks the coordinator's execution phase: new events must
	// route to the batch/overflow/lane split. Outside it (setup, between
	// windows) everything goes straight to its lane heap.
	merging   bool
	windowEnd Time

	// pool drains lanes on worker goroutines; nil when GOMAXPROCS or the
	// lane count make inline draining the faster plan (the schedule is
	// identical either way).
	pool *lanePool

	// retired means a Chooser or RunMax forced this engine back onto the
	// serial heap for good.
	retired bool
}

// NewParallelEngine returns an engine that executes the exact serial
// schedule while sharding queue maintenance across the given number of
// event lanes. lookahead is the conservative window width, normally the
// interconnect's minimum cross-node latency (mesh.Config.LookaheadFloor);
// it affects performance only, never the schedule. lanes <= 1 returns a
// plain serial engine.
func NewParallelEngine(lanes int, lookahead Time) *Engine {
	e := NewEngine()
	if lanes <= 1 {
		return e
	}
	if lookahead < 1 {
		lookahead = 1
	}
	e.par = &parEngine{e: e, lanes: make([]lane, lanes), lookahead: lookahead}
	return e
}

// Lanes reports the engine's event-lane count (1 when serial).
func (e *Engine) Lanes() int {
	if e.par == nil || e.par.retired {
		return 1
	}
	return len(e.par.lanes)
}

// Lookahead reports the conservative window width (0 when serial).
func (e *Engine) Lookahead() Time {
	if e.par == nil || e.par.retired {
		return 0
	}
	return e.par.lookahead
}

// LaneFor maps an entity index (normally a node id) onto a lane. Serial
// engines map everything to lane 0.
func (e *Engine) LaneFor(n int) int {
	if e.par == nil || e.par.retired {
		return 0
	}
	l := n % len(e.par.lanes)
	if l < 0 {
		l += len(e.par.lanes)
	}
	return l
}

// curLane is the lane untagged schedules inherit: the lane of the event
// being dispatched (lane 0 on serial engines and outside dispatch).
func (e *Engine) curLane() int {
	if e.par == nil || e.par.retired {
		return 0
	}
	return e.par.curLane
}

// ScheduleLane is Schedule with an explicit lane hint for the parallel
// engine (cross-node message deliveries tag their destination's lane).
// On a serial engine it is exactly Schedule.
func (e *Engine) ScheduleLane(lane int, delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	at := e.now + delay
	e.seq++
	e.enqueue(event{at: at, seq: e.seq, fn: fn}, e.clampLane(lane))
}

// ScheduleRunLane is ScheduleRun with an explicit lane hint.
func (e *Engine) ScheduleRunLane(lane int, delay Time, r Runnable) {
	if delay < 0 {
		delay = 0
	}
	at := e.now + delay
	e.seq++
	e.enqueue(event{at: at, seq: e.seq, run: r}, e.clampLane(lane))
}

// clampLane bounds an externally supplied lane index.
func (e *Engine) clampLane(lane int) int {
	if e.par == nil || e.par.retired {
		return 0
	}
	if lane < 0 || lane >= len(e.par.lanes) {
		return 0
	}
	return lane
}

// enqueue routes an event while lanes are live. During the merge phase the
// split is: current instant → live batch (FIFO by construction — see
// Engine.enqueue), inside the open window → overflow heap, beyond it → the
// target lane's heap (safe: workers are parked between windows).
func (pe *parEngine) enqueue(ev event, lane int) {
	if pe.merging {
		if ev.at == pe.e.now {
			pe.e.batch = append(pe.e.batch, ev)
			return
		}
		if ev.at < pe.windowEnd {
			pe.overflow.push(ev)
			return
		}
	}
	pe.lanes[lane].q.push(ev)
}

// minNext returns the earliest lane-head timestamp, reporting false when
// every lane is empty.
func (pe *parEngine) minNext() (Time, bool) {
	var t Time
	ok := false
	for i := range pe.lanes {
		q := &pe.lanes[i].q
		if q.len() == 0 {
			continue
		}
		if !ok || q.ev[0].at < t {
			t = q.ev[0].at
			ok = true
		}
	}
	return t, ok
}

// run is the parallel run loop: windows of conservative width are drained
// lane-parallel and merged serially until the queues empty, the deadline
// passes, or Halt.
func (pe *parEngine) run(deadline Time) Time {
	e := pe.e
	pe.startPool()
	defer pe.stopPool()
	for !e.halted {
		tmin, ok := pe.minNext()
		if !ok {
			break
		}
		if tmin > deadline {
			e.now = deadline
			return e.now
		}
		wend := tmin + pe.lookahead
		if wend <= tmin {
			wend = tmin + 1 // lookahead overflow guard
		}
		if wend > deadline+1 {
			wend = deadline + 1 // never pre-pop beyond the deadline
		}
		pe.windowEnd = wend
		pe.drainWindow(wend)
		pe.merge()
	}
	if e.halted {
		pe.spill()
	}
	return e.now
}

// drainWindow fills every lane's ready run with its events before bound,
// in parallel when a pool is attached.
func (pe *parEngine) drainWindow(bound Time) {
	if pe.pool != nil {
		pe.pool.drainWindow(bound)
		return
	}
	for i := range pe.lanes {
		pe.lanes[i].drain(bound)
	}
}

// merge executes the window: repeatedly pick the global (time, seq) minimum
// across the lane ready runs, the overflow heap and the live batch, and
// dispatch it. This ordering rule is the whole determinism argument — it is
// the serial heap's ordering rule, computed over a partition of the same
// events.
func (pe *parEngine) merge() {
	e := pe.e
	pe.merging = true
	for !e.halted {
		var best *event
		src := srcOverflow - 100
		for i := range pe.lanes {
			la := &pe.lanes[i]
			if la.pos < len(la.ready) {
				c := &la.ready[la.pos]
				if best == nil || c.before(best) {
					best, src = c, i
				}
			}
		}
		if pe.overflow.len() > 0 {
			if c := &pe.overflow.ev[0]; best == nil || c.before(best) {
				best, src = c, srcOverflow
			}
		}
		if e.batchPos < len(e.batch) {
			if c := &e.batch[e.batchPos]; best == nil || c.before(best) {
				best, src = c, srcBatch
			}
		}
		if best == nil {
			break
		}
		var ev event
		switch src {
		case srcOverflow:
			ev = pe.overflow.pop()
		case srcBatch:
			ev = e.batch[e.batchPos]
			e.batch[e.batchPos] = event{}
			e.batchPos++
		default:
			la := &pe.lanes[src]
			ev = la.ready[la.pos]
			la.ready[la.pos] = event{}
			la.pos++
			pe.curLane = src
		}
		e.now = ev.at
		e.Executed++
		if ev.proc != nil {
			ev.proc.step()
		} else if ev.run != nil {
			ev.run.Run()
		} else if ev.fn != nil {
			ev.fn()
		}
	}
	pe.merging = false
	if !e.halted {
		for i := range pe.lanes {
			pe.lanes[i].ready = pe.lanes[i].ready[:0]
			pe.lanes[i].pos = 0
		}
		e.batch = e.batch[:0]
		e.batchPos = 0
	}
}

// spill returns every undispatched window event (ready runs, overflow,
// batch) to the lane heaps after a mid-window Halt. Keys are untouched, so
// a later RunUntil resumes the exact schedule.
func (pe *parEngine) spill() {
	e := pe.e
	for i := range pe.lanes {
		la := &pe.lanes[i]
		for ; la.pos < len(la.ready); la.pos++ {
			la.q.push(la.ready[la.pos])
			la.ready[la.pos] = event{}
		}
		la.ready = la.ready[:0]
		la.pos = 0
	}
	for pe.overflow.len() > 0 {
		pe.lanes[0].q.push(pe.overflow.pop())
	}
	for ; e.batchPos < len(e.batch); e.batchPos++ {
		pe.lanes[0].q.push(e.batch[e.batchPos])
		e.batch[e.batchPos] = event{}
	}
	e.batch = e.batch[:0]
	e.batchPos = 0
}

// pending counts events parked in lane structures.
func (pe *parEngine) pending() int {
	n := pe.overflow.len()
	for i := range pe.lanes {
		la := &pe.lanes[i]
		n += la.q.len() + len(la.ready) - la.pos
	}
	return n
}

// retire migrates every lane event back to the serial heap and pins the
// engine to the serial path. Installing a Chooser does this: schedule
// exploration's event-order choice points are defined against the global
// heap's same-timestamp cohorts, which the lanes never materialize, so
// exploration always runs serial (DESIGN.md §10).
func (pe *parEngine) retire() {
	pe.spill()
	for i := range pe.lanes {
		la := &pe.lanes[i]
		for la.q.len() > 0 {
			pe.e.q.push(la.q.pop())
		}
		la.q.ev = nil
	}
	pe.retired = true
}

// shrink releases oversized lane buffers once a run has fully drained.
func (pe *parEngine) shrink() {
	pe.overflow.shrink()
	for i := range pe.lanes {
		la := &pe.lanes[i]
		la.q.shrink()
		if cap(la.ready) > shrinkCap {
			la.ready = nil
		}
	}
}
