package sim

import (
	"testing"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("lat")
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.N() != 0 {
		t.Fatal("empty series should report zeros")
	}
	s.Add(2 * time.Millisecond)
	s.Add(4 * time.Millisecond)
	s.Add(6 * time.Millisecond)
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 4*time.Millisecond {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 2*time.Millisecond || s.Max() != 6*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 12*time.Millisecond {
		t.Fatalf("Sum = %v", s.Sum())
	}
}

func TestSeriesPercentile(t *testing.T) {
	s := NewSeries("p")
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if got := s.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("P50 = %v, want 50ms", got)
	}
	if got := s.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("P99 = %v, want 99ms", got)
	}
	if got := s.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("P100 = %v, want 100ms", got)
	}
	if got := s.Percentile(0); got != 1*time.Millisecond {
		t.Fatalf("P0 = %v, want 1ms", got)
	}
}

func TestSeriesStddev(t *testing.T) {
	s := NewSeries("sd")
	s.Add(time.Second)
	s.Add(time.Second)
	if s.Stddev() != 0 {
		t.Fatalf("constant series stddev = %v", s.Stddev())
	}
	s2 := NewSeries("sd2")
	s2.Add(0)
	s2.Add(2 * time.Second)
	if got := s2.Stddev(); got < 0.99 || got > 1.01 {
		t.Fatalf("stddev = %v, want ~1s", got)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("msg", 1)
	c.Inc("msg", 2)
	c.Inc("fault", 1)
	if c.Get("msg") != 3 {
		t.Fatalf("msg = %d", c.Get("msg"))
	}
	if c.Get("absent") != 0 {
		t.Fatal("absent counter nonzero")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "fault" || names[1] != "msg" {
		t.Fatalf("Names = %v", names)
	}
	c.Reset()
	if c.Get("msg") != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

// TestSeriesPercentileInterleaved interleaves Add with Percentile/Min/Max
// queries: the sorted cache must be invalidated by every Add, never serving
// an order computed before later samples arrived.
func TestSeriesPercentileInterleaved(t *testing.T) {
	s := NewSeries("interleaved")
	s.Add(10 * time.Millisecond)
	if got := s.Percentile(100); got != 10*time.Millisecond {
		t.Fatalf("P100 after first Add = %v, want 10ms", got)
	}
	// A new maximum after a query: a stale cache would still report 10ms.
	s.Add(40 * time.Millisecond)
	if got := s.Percentile(100); got != 40*time.Millisecond {
		t.Fatalf("P100 after second Add = %v, want 40ms", got)
	}
	if got := s.Max(); got != 40*time.Millisecond {
		t.Fatalf("Max = %v, want 40ms", got)
	}
	// A new minimum after a query.
	s.Add(1 * time.Millisecond)
	if got := s.Min(); got != 1*time.Millisecond {
		t.Fatalf("Min = %v, want 1ms", got)
	}
	if got := s.Percentile(0); got != 1*time.Millisecond {
		t.Fatalf("P0 = %v, want 1ms", got)
	}
	// The median moves as samples land between queries.
	s.Add(2 * time.Millisecond)
	s.Add(3 * time.Millisecond)
	if got := s.Percentile(50); got != 3*time.Millisecond {
		t.Fatalf("P50 over {1,2,3,10,40}ms = %v, want 3ms", got)
	}
	// Repeated queries with no Add in between must agree (cached path).
	if a, b := s.Percentile(50), s.Percentile(50); a != b {
		t.Fatalf("repeated P50 disagreed: %v vs %v", a, b)
	}
}

// TestCountersTypedStringInterop: the typed array and the string API are
// views of the same counter — increments through either must be visible
// through both, and Names must report array entries exactly once.
func TestCountersTypedStringInterop(t *testing.T) {
	c := NewCounters()
	c.V[CtrMsgs]++
	c.V[CtrMsgs]++
	c.Inc("msgs", 1)
	if got := c.Get("msgs"); got != 3 {
		t.Fatalf(`Get("msgs") = %d, want 3`, got)
	}
	if got := c.V[CtrMsgs]; got != 3 {
		t.Fatalf("V[CtrMsgs] = %d, want 3", got)
	}
	c.Inc("dyn", 1) // overflow-map counter rides along
	names := c.Names()
	if len(names) != 2 || names[0] != "dyn" || names[1] != "msgs" {
		t.Fatalf("Names = %v, want [dyn msgs]", names)
	}
	c.Reset()
	if c.Get("msgs") != 0 || c.Get("dyn") != 0 || len(c.Names()) != 0 {
		t.Fatal("Reset did not clear both counter kinds")
	}
}

// TestCounterNameTableGolden pins the enum→name table to the exact strings
// the protocol counters have always reported under (the names embedded in
// results_full.txt and every committed experiment record). The enum values
// may be reordered freely; these strings may not change.
func TestCounterNameTableGolden(t *testing.T) {
	golden := map[Ctr]string{
		CtrAsymCopies:         "asym_copies",
		CtrCopiesDropped:      "copies_dropped",
		CtrCopyPagerFaults:    "copy_pager_faults",
		CtrCopyRequests:       "copy_requests",
		CtrCowCopies:          "cow_copies",
		CtrDataRequests:       "data_requests",
		CtrDataSupplies:       "data_supplies",
		CtrDataUnavailable:    "data_unavailable",
		CtrDataUnlocks:        "data_unlocks",
		CtrEvictCancelled:     "evict_cancelled",
		CtrEvictDiscard:       "evict_discard",
		CtrEvictDrop:          "evict_drop",
		CtrEvictOwner:         "evict_owner",
		CtrEvictOwnerXfer:     "evict_owner_xfer",
		CtrEvictPageXfer:      "evict_page_xfer",
		CtrEvictStuck:         "evict_stuck",
		CtrEvictToPager:       "evict_to_pager",
		CtrEvictions:          "evictions",
		CtrFaultRedrives:      "fault_redrives",
		CtrFaults:             "faults",
		CtrFaultsAborted:      "faults_aborted",
		CtrFreshGrants:        "fresh_grants",
		CtrFwdDynamic:         "fwd_dynamic",
		CtrFwdGlobal:          "fwd_global",
		CtrFwdStatic:          "fwd_static",
		CtrGrantRetries:       "grant_retries",
		CtrHintEvictions:      "hint_evictions",
		CtrHintNacks:          "hint_nacks",
		CtrHomeFreshGrants:    "home_fresh_grants",
		CtrHomePagerSupplies:  "home_pager_supplies",
		CtrHomeRetries:        "home_retries",
		CtrHopEscalations:     "hop_escalations",
		CtrInvalidations:      "invalidations",
		CtrLateAcks:           "late_acks",
		CtrLateGrants:         "late_grants",
		CtrLocalPushes:        "local_pushes",
		CtrMgrDirtyToPager:    "mgr_dirty_to_pager",
		CtrMgrFlushes:         "mgr_flushes",
		CtrMgrPageouts:        "mgr_pageouts",
		CtrMgrRequests:        "mgr_requests",
		CtrMgrUpgrades:        "mgr_upgrades",
		CtrMsgs:               "msgs",
		CtrNacks:              "nacks",
		CtrOwnershipLost:      "ownership_lost",
		CtrOwnershipReclaimed: "ownership_reclaimed",
		CtrOwnerXferAccepted:  "ownerxfer_accepted",
		CtrPageOfferAccepted:  "pageoffer_accepted",
		CtrPageOfferDeclined:  "pageoffer_declined",
		CtrPagesLost:          "pages_lost",
		CtrPeerDowns:          "peer_downs",
		CtrProtoTransitions:   "proto_transitions",
		CtrProxyEvicts:        "proxy_evicts",
		CtrProxyRequests:      "proxy_requests",
		CtrPullGrants:         "pull_grants",
		CtrPullRequests:       "pull_requests",
		CtrPullRetries:        "pull_retries",
		CtrPulls:              "pulls",
		CtrPushLocks:          "push_locks",
		CtrPushSupplies:       "push_supplies",
		CtrPushesCancelled:    "pushes_cancelled",
		CtrPushesInstalled:    "pushes_installed",
		CtrPushesStarted:      "pushes_started",
		CtrPushScanInflight:   "pushscan_inflight",
		CtrRangeLocks:         "range_locks",
		CtrRangeUnlocks:       "range_unlocks",
		CtrReadGrants:         "read_grants",
		CtrReqNacks:           "req_nacks",
		CtrRingScanHops:       "ring_scan_hops",
		CtrSelfUpgrades:       "self_upgrades",
		CtrShadowInterpose:    "shadow_interpose",
		CtrStaleGrants:        "stale_grants",
		CtrStaticMisses:       "static_misses",
		CtrStaticOwnerHits:    "static_owner_hits",
		CtrStaticPagedHits:    "static_paged_hits",
		CtrWriteGrants:        "write_grants",
		CtrZeroFills:          "zero_fills",
	}
	if len(golden) != int(NumCtrs) {
		t.Fatalf("golden table has %d entries, enum has %d", len(golden), NumCtrs)
	}
	for k, want := range golden {
		if got := k.String(); got != want {
			t.Errorf("Ctr(%d).String() = %q, want %q", uint8(k), got, want)
		}
		// Round trip: the string API must route the name back to the enum.
		c := NewCounters()
		c.Inc(want, 1)
		if c.V[k] != 1 {
			t.Errorf("Inc(%q) did not land in V[%s]", want, want)
		}
	}
}
