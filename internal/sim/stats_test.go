package sim

import (
	"testing"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("lat")
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.N() != 0 {
		t.Fatal("empty series should report zeros")
	}
	s.Add(2 * time.Millisecond)
	s.Add(4 * time.Millisecond)
	s.Add(6 * time.Millisecond)
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 4*time.Millisecond {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 2*time.Millisecond || s.Max() != 6*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 12*time.Millisecond {
		t.Fatalf("Sum = %v", s.Sum())
	}
}

func TestSeriesPercentile(t *testing.T) {
	s := NewSeries("p")
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if got := s.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("P50 = %v, want 50ms", got)
	}
	if got := s.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("P99 = %v, want 99ms", got)
	}
	if got := s.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("P100 = %v, want 100ms", got)
	}
	if got := s.Percentile(0); got != 1*time.Millisecond {
		t.Fatalf("P0 = %v, want 1ms", got)
	}
}

func TestSeriesStddev(t *testing.T) {
	s := NewSeries("sd")
	s.Add(time.Second)
	s.Add(time.Second)
	if s.Stddev() != 0 {
		t.Fatalf("constant series stddev = %v", s.Stddev())
	}
	s2 := NewSeries("sd2")
	s2.Add(0)
	s2.Add(2 * time.Second)
	if got := s2.Stddev(); got < 0.99 || got > 1.01 {
		t.Fatalf("stddev = %v, want ~1s", got)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("msg", 1)
	c.Inc("msg", 2)
	c.Inc("fault", 1)
	if c.Get("msg") != 3 {
		t.Fatalf("msg = %d", c.Get("msg"))
	}
	if c.Get("absent") != 0 {
		t.Fatal("absent counter nonzero")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "fault" || names[1] != "msg" {
		t.Fatalf("Names = %v", names)
	}
	c.Reset()
	if c.Get("msg") != 0 {
		t.Fatal("Reset did not zero counters")
	}
}
