package sim

import (
	"testing"
	"time"
)

func TestProcSleepAdvancesTime(t *testing.T) {
	e := NewEngine()
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		woke = p.Now()
	})
	e.Run()
	if woke != 5*time.Millisecond {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("proc leak: %d live", e.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(2 * time.Millisecond)
		trace = append(trace, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(time.Millisecond)
		trace = append(trace, "b1")
		p.Sleep(2 * time.Millisecond)
		trace = append(trace, "b3")
	})
	e.Run()
	want := []string{"a0", "b0", "b1", "a2", "b3"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestProcFutureWait(t *testing.T) {
	e := NewEngine()
	f := NewFuture(e)
	var got interface{}
	e.Spawn("waiter", func(p *Proc) {
		v, err := f.Wait(p)
		if err != nil {
			t.Errorf("unexpected error: %v", err)
		}
		got = v
	})
	e.Schedule(7*time.Millisecond, func() { f.Set(99) })
	e.Run()
	if got != 99 {
		t.Fatalf("future value = %v, want 99", got)
	}
	if e.Now() != 7*time.Millisecond {
		t.Fatalf("now = %v, want 7ms", e.Now())
	}
}

func TestFutureWaitAfterSet(t *testing.T) {
	e := NewEngine()
	f := NewFuture(e)
	f.Set("x")
	var got interface{}
	e.Spawn("late", func(p *Proc) {
		before := p.Now()
		v, _ := f.Wait(p)
		got = v
		if p.Now() != before {
			t.Errorf("Wait on done future advanced time")
		}
	})
	e.Run()
	if got != "x" {
		t.Fatalf("got %v, want x", got)
	}
}

func TestFutureMultipleWaiters(t *testing.T) {
	e := NewEngine()
	f := NewFuture(e)
	n := 0
	for i := 0; i < 8; i++ {
		e.Spawn("w", func(p *Proc) {
			f.Wait(p)
			n++
		})
	}
	e.Schedule(time.Millisecond, func() { f.Set(nil) })
	e.Run()
	if n != 8 {
		t.Fatalf("only %d of 8 waiters woke", n)
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	e := NewEngine()
	f := NewFuture(e)
	f.Set(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double Set did not panic")
		}
	}()
	f.Set(2)
}

func TestFutureOnDone(t *testing.T) {
	e := NewEngine()
	f := NewFuture(e)
	var got interface{}
	f.OnDone(func(v interface{}, err error) { got = v })
	e.Schedule(time.Millisecond, func() { f.Set(5) })
	e.Run()
	if got != 5 {
		t.Fatalf("OnDone saw %v, want 5", got)
	}
	// Registration after completion fires too.
	fired := false
	f.OnDone(func(v interface{}, err error) { fired = true })
	e.Run()
	if !fired {
		t.Fatal("OnDone after completion never fired")
	}
}

func TestJoin(t *testing.T) {
	e := NewEngine()
	fs := []*Future{NewFuture(e), NewFuture(e), NewFuture(e)}
	var doneAt Time
	e.Spawn("joiner", func(p *Proc) {
		Join(p, fs...)
		doneAt = p.Now()
	})
	e.Schedule(3*time.Millisecond, func() { fs[1].Set(nil) })
	e.Schedule(1*time.Millisecond, func() { fs[0].Set(nil) })
	e.Schedule(9*time.Millisecond, func() { fs[2].Set(nil) })
	e.Run()
	if doneAt != 9*time.Millisecond {
		t.Fatalf("join completed at %v, want 9ms", doneAt)
	}
}

func TestProcYield(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a1")
		p.Yield()
		trace = append(trace, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b1")
	})
	e.Run()
	// a yields after a1 so b runs before a2.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if i >= len(trace) || trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func() Time {
		e := NewEngine()
		rng := NewRNG(7)
		bar := NewBarrier(e, 50)
		for i := 0; i < 50; i++ {
			d := time.Duration(rng.Intn(5000)) * time.Microsecond
			e.Spawn("p", func(p *Proc) {
				p.Sleep(d)
				bar.Await(p)
				p.Sleep(time.Millisecond)
			})
		}
		return e.Run()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic end time: %v vs %v", a, b)
	}
}
