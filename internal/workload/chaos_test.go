package workload

import (
	"testing"
	"time"

	"asvm/internal/xport"
)

// A delay-heavy plan spanning the default 4ms RTO: with the calibrated
// timeout some delayed messages race their own retransmissions; with a
// much longer RTO they do not.
func slowPlan() xport.FaultPlan {
	return xport.FaultPlan{Default: xport.Rates{
		Delay:    0.5,
		DelayMin: 2 * time.Millisecond,
		DelayMax: 20 * time.Millisecond,
	}}
}

// The ReliableCfg knob: its zero value must leave chaos results
// bit-identical (the sweeps' published numbers do not move), and a tuned
// RTO must actually reach the reliability layer and change its recovery
// behavior.
func TestReliableCfgTunesRecovery(t *testing.T) {
	defer func() { ReliableCfg = xport.ReliableConfig{} }()

	sc := Table1Scenarios()[0]

	ReliableCfg = xport.ReliableConfig{}
	base, err := ChaosFault(sc, 1, slowPlan())
	if err != nil {
		t.Fatal(err)
	}
	again, err := ChaosFault(sc, 1, slowPlan())
	if err != nil {
		t.Fatal(err)
	}
	if base != again {
		t.Fatalf("zero ReliableCfg not deterministic:\n%+v\n%+v", base, again)
	}
	if base.Retransmits == 0 {
		t.Fatalf("plan produced no retransmits under the default 4ms RTO; the test exercises nothing: %+v", base)
	}

	// An RTO past the plan's maximum delay: no delayed message can race
	// its own retransmission, so recovery work must drop.
	ReliableCfg = xport.ReliableConfig{RTO: 100 * time.Millisecond}
	slow, err := ChaosFault(sc, 1, slowPlan())
	if err != nil {
		t.Fatal(err)
	}
	if slow.Retransmits >= base.Retransmits {
		t.Fatalf("100ms RTO retransmits (%d) not below default's (%d) — the knob did not reach the reliability layer",
			slow.Retransmits, base.Retransmits)
	}
}
