package workload

import (
	"fmt"
	"time"

	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

// FileBenchBytes is the benchmark file size (paper §4.2: 4 MB).
const FileBenchBytes = 4 << 20

// FileBenchPages is the file size in pages.
const FileBenchPages = FileBenchBytes / vm.PageSize

// FileClusterSize returns the node count the file benchmarks use for
// nNodes active clients (one extra so the I/O node stays off the clients).
func FileClusterSize(nNodes int) int {
	total := nNodes + 1
	if total < 2 {
		total = 2
	}
	return total
}

// MeasureFileWrite reproduces Table 2's write rows: nNodes map the same
// (initially empty) 4 MB file and each writes a disjoint section using
// asynchronous writes (dirty pages are not forced out). Returned is the
// mean per-node effective transfer rate in MB/s.
func MeasureFileWrite(sys machine.System, nNodes int, seed uint64) (float64, error) {
	p := machine.DefaultParams(FileClusterSize(nNodes))
	p.System = sys
	p.Seed = seed
	rate, _, err := fileWriteOn(machine.New(p), nNodes)
	return rate, err
}

// fileWriteOn runs the write benchmark on an existing cluster (which must
// have FileClusterSize(nNodes) nodes), returning the rate and the file
// region for protocol-state validation.
func fileWriteOn(c *machine.Cluster, nNodes int) (float64, *machine.Region, error) {
	total := c.P.Nodes

	users := make([]int, nNodes)
	for i := range users {
		users[i] = i + 1
		if users[i] >= total {
			users[i] = 0
		}
	}
	if nNodes == 1 {
		users = []int{1}
	}
	r, _ := c.NewMappedFile("bench", FileBenchPages, users, false)

	perNode := FileBenchPages / nNodes
	times := make([]time.Duration, nNodes)
	errs := make([]error, nNodes)
	for i, nIdx := range users {
		i, nIdx := i, nIdx
		task, err := c.TaskOn(nIdx, fmt.Sprintf("w%d", i), r, 0)
		if err != nil {
			return 0, nil, err
		}
		c.SpawnOn(nIdx, "writer", func(p *sim.Proc) {
			t0 := p.Now()
			base := i * perNode
			for pg := 0; pg < perNode; pg++ {
				if _, err := task.Touch(p, vm.Addr((base+pg)*vm.PageSize), vm.ProtWrite); err != nil {
					errs[i] = err
					return
				}
			}
			times[i] = p.Now() - t0
		})
	}
	c.Run()
	var sumRate float64
	for i := range times {
		if errs[i] != nil {
			return 0, nil, errs[i]
		}
		if times[i] == 0 {
			return 0, nil, fmt.Errorf("workload: writer %d made no progress", i)
		}
		bytes := float64(perNode * vm.PageSize)
		sumRate += bytes / times[i].Seconds() / 1e6
	}
	return sumRate / float64(nNodes), r, nil
}

// MeasureFileRead reproduces Table 2's read rows: nNodes read the entire
// preloaded 4 MB file in parallel. Returned is the mean per-node rate in
// MB/s.
func MeasureFileRead(sys machine.System, nNodes int, seed uint64) (float64, error) {
	p := machine.DefaultParams(FileClusterSize(nNodes))
	p.System = sys
	p.Seed = seed
	rate, _, err := fileReadOn(machine.New(p), nNodes)
	return rate, err
}

// fileReadOn runs the read benchmark on an existing cluster (which must
// have FileClusterSize(nNodes) nodes).
func fileReadOn(c *machine.Cluster, nNodes int) (float64, *machine.Region, error) {
	users := make([]int, nNodes)
	for i := range users {
		users[i] = i + 1
	}
	if nNodes == 1 {
		users = []int{1}
	}
	r, _ := c.NewMappedFile("bench", FileBenchPages, users, true)

	times := make([]time.Duration, nNodes)
	errs := make([]error, nNodes)
	for i, nIdx := range users {
		i, nIdx := i, nIdx
		task, err := c.TaskOn(nIdx, fmt.Sprintf("r%d", i), r, 0)
		if err != nil {
			return 0, nil, err
		}
		c.SpawnOn(nIdx, "reader", func(p *sim.Proc) {
			t0 := p.Now()
			// Stagger starting offsets so nodes don't convoy on the same
			// page, like independent readers would.
			start := (i * FileBenchPages) / max(nNodes, 1)
			for k := 0; k < FileBenchPages; k++ {
				pg := (start + k) % FileBenchPages
				if _, err := task.Touch(p, vm.Addr(pg*vm.PageSize), vm.ProtRead); err != nil {
					errs[i] = err
					return
				}
			}
			times[i] = p.Now() - t0
		})
	}
	c.Run()
	var sumRate float64
	for i := range times {
		if errs[i] != nil {
			return 0, nil, errs[i]
		}
		if times[i] == 0 {
			return 0, nil, fmt.Errorf("workload: reader %d made no progress", i)
		}
		sumRate += float64(FileBenchBytes) / times[i].Seconds() / 1e6
	}
	return sumRate / float64(nNodes), r, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
