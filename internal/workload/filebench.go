package workload

import (
	"fmt"
	"time"

	"asvm/internal/app"
	"asvm/internal/app/simhost"
	"asvm/internal/machine"
	"asvm/internal/vm"
)

// FileBenchBytes is the benchmark file size (paper §4.2: 4 MB).
const FileBenchBytes = 4 << 20

// FileBenchPages is the file size in pages.
const FileBenchPages = FileBenchBytes / vm.PageSize

// FileClusterSize returns the node count the file benchmarks use for
// nNodes active clients (one extra so the I/O node stays off the clients).
func FileClusterSize(nNodes int) int {
	total := nNodes + 1
	if total < 2 {
		total = 2
	}
	return total
}

// fileUsers returns the client node indices for the benchmarks (node 0 —
// the I/O node — stays off the client list except in the 1-node corner).
func fileUsers(total, nNodes int) []int {
	users := make([]int, nNodes)
	for i := range users {
		users[i] = i + 1
		if users[i] >= total {
			users[i] = 0
		}
	}
	if nNodes == 1 {
		users = []int{1}
	}
	return users
}

// MeasureFileWrite reproduces Table 2's write rows: nNodes map the same
// (initially empty) 4 MB file and each writes a disjoint section using
// asynchronous writes (dirty pages are not forced out). Returned is the
// mean per-node effective transfer rate in MB/s.
func MeasureFileWrite(sys machine.System, nNodes int, seed uint64) (float64, error) {
	p := machine.DefaultParams(FileClusterSize(nNodes))
	p.System = sys
	p.Seed = seed
	rate, _, err := fileWriteOn(machine.New(p), nNodes)
	return rate, err
}

// fileWriteOn runs the write benchmark on an existing cluster (which must
// have FileClusterSize(nNodes) nodes), returning the rate and the file
// region for protocol-state validation.
func fileWriteOn(c *machine.Cluster, nNodes int) (float64, *machine.Region, error) {
	users := fileUsers(c.P.Nodes, nNodes)
	w, err := simhost.NewWorld(c, []simhost.Spec{
		{Name: "bench", Pages: FileBenchPages, Nodes: users, File: true},
	})
	if err != nil {
		return 0, nil, err
	}
	if err := w.Prepare(users...); err != nil {
		return 0, nil, err
	}

	perNode := FileBenchPages / nNodes
	times := make([]time.Duration, nNodes)
	for i, nIdx := range users {
		i := i
		w.GoOn(nIdx, "writer", func(h app.Host) error {
			t0 := h.Now()
			base := i * perNode
			for pg := 0; pg < perNode; pg++ {
				if err := h.Write(0, int64((base+pg)*vm.PageSize), 0); err != nil {
					return err
				}
			}
			times[i] = h.Now() - t0
			return nil
		})
	}
	if err := w.Run(); err != nil {
		return 0, nil, err
	}
	var sumRate float64
	for i := range times {
		if times[i] == 0 {
			return 0, nil, fmt.Errorf("workload: writer %d made no progress", i)
		}
		bytes := float64(perNode * vm.PageSize)
		sumRate += bytes / times[i].Seconds() / 1e6
	}
	return sumRate / float64(nNodes), w.Region(0), nil
}

// MeasureFileRead reproduces Table 2's read rows: nNodes read the entire
// preloaded 4 MB file in parallel. Returned is the mean per-node rate in
// MB/s.
func MeasureFileRead(sys machine.System, nNodes int, seed uint64) (float64, error) {
	p := machine.DefaultParams(FileClusterSize(nNodes))
	p.System = sys
	p.Seed = seed
	rate, _, err := fileReadOn(machine.New(p), nNodes)
	return rate, err
}

// fileReadOn runs the read benchmark on an existing cluster (which must
// have FileClusterSize(nNodes) nodes).
func fileReadOn(c *machine.Cluster, nNodes int) (float64, *machine.Region, error) {
	users := make([]int, nNodes)
	for i := range users {
		users[i] = i + 1
	}
	if nNodes == 1 {
		users = []int{1}
	}
	w, err := simhost.NewWorld(c, []simhost.Spec{
		{Name: "bench", Pages: FileBenchPages, Nodes: users, File: true, Preload: true},
	})
	if err != nil {
		return 0, nil, err
	}
	if err := w.Prepare(users...); err != nil {
		return 0, nil, err
	}

	times := make([]time.Duration, nNodes)
	for i, nIdx := range users {
		i := i
		w.GoOn(nIdx, "reader", func(h app.Host) error {
			t0 := h.Now()
			// Stagger starting offsets so nodes don't convoy on the same
			// page, like independent readers would.
			start := (i * FileBenchPages) / max(nNodes, 1)
			for k := 0; k < FileBenchPages; k++ {
				pg := (start + k) % FileBenchPages
				if _, err := h.Read(0, int64(pg*vm.PageSize)); err != nil {
					return err
				}
			}
			times[i] = h.Now() - t0
			return nil
		})
	}
	if err := w.Run(); err != nil {
		return 0, nil, err
	}
	var sumRate float64
	for i := range times {
		if times[i] == 0 {
			return 0, nil, fmt.Errorf("workload: reader %d made no progress", i)
		}
		sumRate += float64(FileBenchBytes) / times[i].Seconds() / 1e6
	}
	return sumRate / float64(nNodes), w.Region(0), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
