package workload

import (
	"errors"
	"fmt"
	"time"

	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// This file is the crash-sweep workload: a churning read/write mix over one
// shared region while a crash plan kills nodes mid-run. Survivors must keep
// making progress — faults re-drive or fail with typed errors, never panic
// — and the drained cluster must pass the (Down-aware) global invariants.
// The figure of merit is completed operations: under crash-stop some work
// is necessarily lost, and the degradation counters say exactly how much.

// CrashConfig describes one crash-churn cell.
type CrashConfig struct {
	// Nodes is the cluster size; node 0 is the region's home.
	Nodes int
	// Pages is the shared region size.
	Pages vm.PageIdx
	// Rounds is the per-node operation budget.
	Rounds int
	// Seed drives both the workload mix and the chaos RNG.
	Seed uint64
	// Crashed lists the node indices the plan kills, staggered 2 ms apart
	// starting at CrashAt.
	Crashed []int
	// CrashAt is the first crash's virtual time.
	CrashAt time.Duration
	// RestartAfter, when positive, restarts each crashed node that long
	// after its crash; zero makes every crash permanent.
	RestartAfter time.Duration
}

// DefaultCrash returns the standard cell: crashed highest-index nodes (the
// home at node 0 survives; dedicated tests cover home death), killed far
// enough into the run that the dying nodes hold ownership, dirty contents,
// and read copies — so every degradation path is exercised — while most of
// the workload still runs degraded.
func DefaultCrash(nodes, crashed int, seed uint64) CrashConfig {
	cfg := CrashConfig{
		Nodes:   nodes,
		Pages:   48,
		Rounds:  200,
		Seed:    seed,
		CrashAt: 20 * time.Millisecond,
	}
	for i := 0; i < crashed && i < nodes-1; i++ {
		cfg.Crashed = append(cfg.Crashed, nodes-1-i)
	}
	return cfg
}

// Plan translates the config into the machine layer's crash plan.
func (cfg CrashConfig) Plan() machine.CrashPlan {
	var p machine.CrashPlan
	for i, n := range cfg.Crashed {
		nc := machine.NodeCrash{Node: n, At: cfg.CrashAt + time.Duration(i)*2*time.Millisecond}
		if cfg.RestartAfter > 0 {
			nc.Restart = nc.At + cfg.RestartAfter
		}
		p.Crashes = append(p.Crashes, nc)
	}
	return p
}

// ChaosCrash runs the crash-churn workload under a crash plan plus an
// optional message-fault plan. Metric is total completed operations across
// all nodes (higher is better; the zero-crash cell is the baseline).
func ChaosCrash(cfg CrashConfig, plan xport.FaultPlan) (ChaosResult, error) {
	p := chaosParams(cfg.Nodes, cfg.Seed, plan)
	p.TrackData = true
	p.Crash = cfg.Plan()
	c := machine.New(p)

	all := make([]int, cfg.Nodes)
	for i := range all {
		all[i] = i
	}
	r := c.NewSharedRegion("crash-churn", cfg.Pages, all)

	completed := 0
	var benchErr error
	for n := 0; n < cfg.Nodes; n++ {
		n := n
		task, err := c.TaskOn(n, fmt.Sprintf("churn%d", n), r, 0)
		if err != nil {
			return ChaosResult{}, err
		}
		rng := sim.NewRNG(cfg.Seed<<16 ^ uint64(n)*0x9E3779B97F4A7C15)
		c.SpawnOn(n, fmt.Sprintf("churn%d", n), func(p *sim.Proc) {
			for round := 0; round < cfg.Rounds; round++ {
				idx := vm.PageIdx(rng.Intn(int(cfg.Pages)))
				addr := vm.Addr(idx) * vm.PageSize
				var err error
				if rng.Intn(3) == 0 {
					err = task.WriteU64(p, addr, uint64(round)+1)
				} else {
					_, err = task.ReadU64(p, addr)
				}
				switch {
				case err == nil:
					completed++
				case isNodeCrashed(err):
					// Our own node died; the task dies with it. If a restart
					// is planned, rejoin cold with a fresh task and keep
					// churning — otherwise this proc's work is lost.
					if cfg.RestartAfter <= 0 {
						return
					}
					p.Sleep(sim.Time(cfg.RestartAfter + 4*time.Millisecond))
					task, err = c.TaskOn(n, fmt.Sprintf("churn%d-r", n), r, 0)
					if err != nil {
						benchErr = err
						return
					}
				case isObjectUnavailable(err):
					// Typed degradation: the page's home or owner died and
					// the contents are unreachable. Count nothing, move on.
				default:
					benchErr = fmt.Errorf("node %d round %d: %w", n, round, err)
					return
				}
				p.Sleep(sim.Time(40 * time.Microsecond))
			}
		})
	}
	c.Run()
	if benchErr != nil {
		return ChaosResult{}, benchErr
	}
	return collectChaos(c, r, float64(completed))
}

func isNodeCrashed(err error) bool {
	var e *vm.ErrNodeCrashed
	return errors.As(err, &e)
}

func isObjectUnavailable(err error) bool {
	var e *vm.ErrObjectUnavailable
	return errors.As(err, &e)
}
