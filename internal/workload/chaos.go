package workload

import (
	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/xport"
)

// This file runs the measurement workloads under deterministic chaos: the
// transport drops/duplicates/delays messages per a FaultPlan while the
// reliability layer (sequence numbers, acks, retransmission) restores
// exactly-once delivery. Every run drains the simulation and checks the
// ASVM global invariants — degraded performance is acceptable, corrupted
// protocol state is not.

// ChaosResult is one chaos cell: the workload's own metric plus the fault
// and recovery counters that explain the degradation.
type ChaosResult struct {
	// Metric is the workload's figure of merit (seconds for fault latency
	// and EM3D, MB/s for the file benchmarks).
	Metric float64

	// Msgs is total transport traffic (both wire protocols).
	Msgs uint64
	// Injected faults.
	Dropped, Duplicated, Delayed uint64
	// Recovery work done by the reliability layer.
	Retransmits, DupsSuppressed, AcksSent, Nacks uint64

	// RingScanHops counts global ring-scan forwarding hops — the O(n)
	// fallback the hint caches exist to avoid. A healthy run keeps it near
	// zero; faults and crashes push requests onto the ring.
	RingScanHops int64

	// Crash-stop degradation (crash-sweep cells; all zero on crash-free
	// runs). Crashes/Restarts are executed plan fates; the rest aggregate
	// the protocol counters across nodes: faults aborted with typed
	// errors, faults re-driven past a dead peer, ownership and dirty
	// contents that died with a node, surviving read copies dropped, and
	// forwarding hints evicted.
	Crashes, Restarts int
	FaultsAborted     int64
	FaultRedrives     int64
	OwnershipLost     int64
	PagesLost         int64
	CopiesDropped     int64
	HintEvictions     int64
	PeersDowned       uint64
}

// ReliableCfg tunes the reliability layer (initial RTO, backoff cap,
// retry budget) for every chaos and crash cell this package builds. The
// zero value means the calibrated defaults (4ms initial RTO, 64ms cap,
// 30 retries) — existing sweep output is bit-identical unless a run sets
// it, e.g. via asvmbench -rto/-rtomax/-retries. Set once at startup,
// before any cells run, like machine.DefaultEngineLanes.
var ReliableCfg xport.ReliableConfig

// chaosParams builds cluster parameters with the chaos stack enabled:
// fault injection below, the reliability layer above.
func chaosParams(nodes int, seed uint64, plan xport.FaultPlan) machine.Params {
	p := machine.DefaultParams(nodes)
	p.Seed = seed
	p.Fault = plan
	p.Reliable = true
	p.ReliableCfg = ReliableCfg
	return p
}

// collectChaos validates the drained cluster and gathers the counters.
func collectChaos(c *machine.Cluster, r *machine.Region, metric float64) (ChaosResult, error) {
	if err := c.CheckInvariants(r); err != nil {
		return ChaosResult{}, err
	}
	res := ChaosResult{Metric: metric}
	if c.STSTR != nil {
		res.Msgs += c.STSTR.Msgs
	}
	if c.NormaTR != nil {
		res.Msgs += c.NormaTR.Msgs
	}
	if f := c.FaultTR; f != nil {
		res.Dropped, res.Duplicated, res.Delayed = f.Dropped, f.Duplicated, f.Delayed
	}
	if rel := c.RelTR; rel != nil {
		res.Retransmits, res.DupsSuppressed = rel.Retransmits, rel.DupsSuppressed
		res.AcksSent, res.Nacks = rel.AcksSent, rel.Nacks
		res.PeersDowned = rel.PeersDowned
	}
	res.Crashes, res.Restarts = c.CrashStats.Crashes, c.CrashStats.Restarts
	// The dying nodes' own in-flight faults, failed by the kernel at the
	// crash instant, count as aborted alongside the survivors' typed
	// failures below.
	res.FaultsAborted += int64(c.CrashStats.FaultsAborted)
	for _, nd := range c.ASVMs {
		res.FaultsAborted += nd.Ctr.V[sim.CtrFaultsAborted]
		res.FaultRedrives += nd.Ctr.V[sim.CtrFaultRedrives]
		res.OwnershipLost += nd.Ctr.V[sim.CtrOwnershipLost]
		res.PagesLost += nd.Ctr.V[sim.CtrPagesLost]
		res.CopiesDropped += nd.Ctr.V[sim.CtrCopiesDropped]
		res.HintEvictions += nd.Ctr.V[sim.CtrHintEvictions]
		res.RingScanHops += nd.Ctr.V[sim.CtrRingScanHops]
	}
	return res, nil
}

// ChaosFault runs one Table 1 fault scenario under the plan; Metric is the
// measured fault latency in seconds.
func ChaosFault(sc FaultScenario, seed uint64, plan xport.FaultPlan) (ChaosResult, error) {
	p := chaosParams(FaultClusterSize(sc), seed, plan)
	p.TrackData = true
	c := machine.New(p)
	lat, r, err := measureFaultOn(c, sc)
	if err != nil {
		return ChaosResult{}, err
	}
	return collectChaos(c, r, lat.Seconds())
}

// ChaosFileWrite runs the parallel file-write benchmark under the plan;
// Metric is the mean per-node rate in MB/s.
func ChaosFileWrite(nNodes int, seed uint64, plan xport.FaultPlan) (ChaosResult, error) {
	c := machine.New(chaosParams(FileClusterSize(nNodes), seed, plan))
	rate, r, err := fileWriteOn(c, nNodes)
	if err != nil {
		return ChaosResult{}, err
	}
	return collectChaos(c, r, rate)
}

// ChaosFileRead runs the parallel file-read benchmark under the plan;
// Metric is the mean per-node rate in MB/s.
func ChaosFileRead(nNodes int, seed uint64, plan xport.FaultPlan) (ChaosResult, error) {
	c := machine.New(chaosParams(FileClusterSize(nNodes), seed, plan))
	rate, r, err := fileReadOn(c, nNodes)
	if err != nil {
		return ChaosResult{}, err
	}
	return collectChaos(c, r, rate)
}

// ChaosEM3D runs EM3D under the plan; Metric is the computation time in
// seconds.
func ChaosEM3D(cfg EM3DConfig, plan xport.FaultPlan) (ChaosResult, error) {
	p := chaosParams(cfg.Nodes, cfg.Seed, plan)
	p.MemMB = cfg.MemMB
	c := machine.New(p)
	d, r, err := runEM3DRegion(c, cfg)
	if err != nil {
		return ChaosResult{}, err
	}
	return collectChaos(c, r, d.Seconds())
}
