// Package workload implements the paper's three measurement workloads:
// the basic page-fault latency microbenchmarks (Table 1, Figures 10/11),
// the mapped-file transfer benchmark (Table 2, Figures 12/13), and the
// EM3D application (Table 3). Every workload body programs against the
// portable app.Host API; this package supplies the simulator harness
// around it (cluster assembly, measurement, validation).
package workload

import (
	"fmt"
	"time"

	"asvm/internal/app"
	"asvm/internal/app/simhost"
	"asvm/internal/machine"
	"asvm/internal/vm"
)

// FaultScenario describes one Table 1 row.
type FaultScenario struct {
	Name string
	// Readers is the number of nodes holding read copies before the
	// measured fault.
	Readers int
	// Write selects a write fault (vs. read fault).
	Write bool
	// FaulterHasCopy makes the faulting node one of the readers (the
	// "write upgrade fault" of Figure 10).
	FaulterHasCopy bool
	// SecondReader measures the second read fault (page already clean at
	// the pager / owned by a reader) instead of the first.
	SecondReader bool
}

// Table1Scenarios returns the paper's seven rows.
func Table1Scenarios() []FaultScenario {
	return []FaultScenario{
		{Name: "write fault, 1 read copy", Readers: 1, Write: true},
		{Name: "write fault, 2 read copies", Readers: 2, Write: true},
		{Name: "write fault, 64 read copies", Readers: 64, Write: true},
		{Name: "write fault, 2 read copies, faulter has copy", Readers: 2, Write: true, FaulterHasCopy: true},
		{Name: "write fault, 64 read copies, faulter has copy", Readers: 64, Write: true, FaulterHasCopy: true},
		{Name: "read fault, first reader", Readers: 0, Write: false},
		{Name: "read fault, second reader", Readers: 0, Write: false, SecondReader: true},
	}
}

// FaultClusterSize returns the node count MeasureFault uses for a scenario
// (chaos runs build their own cluster of this size).
func FaultClusterSize(sc FaultScenario) int {
	n := sc.Readers + 3
	if n < 5 {
		n = 5
	}
	return n
}

// MeasureFault runs one scenario on a fresh cluster of the given system
// and returns the observed fault latency. Node roles: node 0 hosts the
// manager/home stack (remote from everyone else, like the paper's "XMM
// stack is remote" setup), node 1 is the initial writer — whose retained
// copy is the first "read copy" of the write scenarios, which is what
// makes the measured fault the *first* request by another node in the
// single-copy row — and the last node faults.
func MeasureFault(sys machine.System, sc FaultScenario, seed uint64) (time.Duration, error) {
	p := machine.DefaultParams(FaultClusterSize(sc))
	p.System = sys
	p.Seed = seed
	p.TrackData = true
	lat, _, err := measureFaultOn(machine.New(p), sc)
	return lat, err
}

// measureFaultOn runs one scenario on an existing cluster (which must have
// FaultClusterSize(sc) nodes) and also returns the benchmark region so the
// caller can validate protocol state.
func measureFaultOn(c *machine.Cluster, sc FaultScenario) (time.Duration, *machine.Region, error) {
	n := c.P.Nodes

	w, err := simhost.NewWorld(c, []simhost.Spec{{Name: "bench", Pages: 4}})
	if err != nil {
		return 0, nil, err
	}

	// Extra reading nodes beyond the writer's own copy (and beyond the
	// faulter's, when it holds one).
	extra := 0
	if sc.Write {
		extra = sc.Readers - 1
		if sc.FaulterHasCopy {
			extra--
		}
		if extra < 0 {
			extra = 0
		}
	}
	readerNodes := make([]int, extra)
	for i := range readerNodes {
		readerNodes[i] = 2 + i
	}
	faulterNode := n - 1
	if err := w.Prepare(1); err != nil {
		return 0, nil, err
	}
	if err := w.Prepare(readerNodes...); err != nil {
		return 0, nil, err
	}
	if err := w.Prepare(faulterNode); err != nil {
		return 0, nil, err
	}

	var lat time.Duration
	w.Go(1, "bench", func(h app.Host) error {
		// The initial writer dirties the page (and keeps its copy).
		if err := h.Write(0, 0, 1); err != nil {
			return err
		}
		// Establish additional read copies.
		for _, rn := range readerNodes {
			if _, err := h.On(rn).Read(0, 0); err != nil {
				return err
			}
		}
		faulter := h.On(faulterNode)
		if sc.FaulterHasCopy {
			if _, err := faulter.Read(0, 0); err != nil {
				return err
			}
		}
		if !sc.Write && sc.SecondReader {
			// The first reader's fault cleans the page; measure the next
			// node's read (its task springs into existence here, exactly
			// like the direct-driving era's mid-run TaskOn).
			if _, err := h.On(faulterNode-1).Read(0, 0); err != nil {
				return err
			}
		}
		t0 := h.Now()
		if sc.Write {
			if err := faulter.Write(0, 0, 2); err != nil {
				return err
			}
		} else {
			if _, err := faulter.Read(0, 0); err != nil {
				return err
			}
		}
		lat = h.Now() - t0
		return nil
	})
	if err := w.Run(); err != nil {
		return 0, nil, err
	}
	if lat == 0 {
		return 0, nil, fmt.Errorf("workload: scenario %q measured no fault", sc.Name)
	}
	return lat, w.Region(0), nil
}

// MeasureWriteFaultVsReaders sweeps Figure 10: write-fault (and upgrade)
// latency against the number of read copies.
func MeasureWriteFaultVsReaders(sys machine.System, readers []int, upgrade bool, seed uint64) ([]time.Duration, error) {
	out := make([]time.Duration, len(readers))
	for i, r := range readers {
		lat, err := MeasureFault(sys, FaultScenario{
			Name:           fmt.Sprintf("fig10 r=%d", r),
			Readers:        r,
			Write:          true,
			FaulterHasCopy: upgrade,
		}, seed)
		if err != nil {
			return nil, err
		}
		out[i] = lat
	}
	return out, nil
}

// MeasureChainFault reproduces Figure 11: a 128 KB region is initialized
// on node 0, a chain of copies spans `chain` additional nodes (one remote
// fork per node), and the last node faults in every page. Returned is the
// mean per-page fault latency.
func MeasureChainFault(sys machine.System, chain int, seed uint64) (time.Duration, error) {
	const regionPages = 16 // 128 KByte
	n := chain + 1
	if n < 2 {
		return 0, fmt.Errorf("workload: chain needs at least 1 hop")
	}
	p := machine.DefaultParams(n)
	p.System = sys
	p.Seed = seed
	p.TrackData = true
	c := machine.New(p)

	w, err := simhost.NewWorld(c, []simhost.Spec{
		{Name: "chain", Pages: regionPages, Nodes: []int{0}, Private: true},
	})
	if err != nil {
		return 0, err
	}

	var mean time.Duration
	w.Go(0, "bench", func(h app.Host) error {
		for i := 0; i < regionPages; i++ {
			if err := h.Write(0, int64(i*vm.PageSize), uint64(i+1)); err != nil {
				return err
			}
		}
		cur := h
		for i := 1; i <= chain; i++ {
			child, err := cur.Fork(i, fmt.Sprintf("child%d", i))
			if err != nil {
				return err
			}
			cur = child
		}
		t0 := cur.Now()
		for i := 0; i < regionPages; i++ {
			v, err := cur.Read(0, int64(i*vm.PageSize))
			if err != nil {
				return err
			}
			if v != uint64(i+1) {
				return fmt.Errorf("workload: chain content corrupted: page %d = %d", i, v)
			}
		}
		mean = (cur.Now() - t0) / regionPages
		return nil
	})
	if err := w.Run(); err != nil {
		return 0, err
	}
	return mean, nil
}
