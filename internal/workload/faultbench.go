// Package workload implements the paper's three measurement workloads:
// the basic page-fault latency microbenchmarks (Table 1, Figures 10/11),
// the mapped-file transfer benchmark (Table 2, Figures 12/13), and the
// EM3D application (Table 3).
package workload

import (
	"fmt"
	"time"

	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

// FaultScenario describes one Table 1 row.
type FaultScenario struct {
	Name string
	// Readers is the number of nodes holding read copies before the
	// measured fault.
	Readers int
	// Write selects a write fault (vs. read fault).
	Write bool
	// FaulterHasCopy makes the faulting node one of the readers (the
	// "write upgrade fault" of Figure 10).
	FaulterHasCopy bool
	// SecondReader measures the second read fault (page already clean at
	// the pager / owned by a reader) instead of the first.
	SecondReader bool
}

// Table1Scenarios returns the paper's seven rows.
func Table1Scenarios() []FaultScenario {
	return []FaultScenario{
		{Name: "write fault, 1 read copy", Readers: 1, Write: true},
		{Name: "write fault, 2 read copies", Readers: 2, Write: true},
		{Name: "write fault, 64 read copies", Readers: 64, Write: true},
		{Name: "write fault, 2 read copies, faulter has copy", Readers: 2, Write: true, FaulterHasCopy: true},
		{Name: "write fault, 64 read copies, faulter has copy", Readers: 64, Write: true, FaulterHasCopy: true},
		{Name: "read fault, first reader", Readers: 0, Write: false},
		{Name: "read fault, second reader", Readers: 0, Write: false, SecondReader: true},
	}
}

// FaultClusterSize returns the node count MeasureFault uses for a scenario
// (chaos runs build their own cluster of this size).
func FaultClusterSize(sc FaultScenario) int {
	n := sc.Readers + 3
	if n < 5 {
		n = 5
	}
	return n
}

// MeasureFault runs one scenario on a fresh cluster of the given system
// and returns the observed fault latency. Node roles: node 0 hosts the
// manager/home stack (remote from everyone else, like the paper's "XMM
// stack is remote" setup), node 1 is the initial writer — whose retained
// copy is the first "read copy" of the write scenarios, which is what
// makes the measured fault the *first* request by another node in the
// single-copy row — and the last node faults.
func MeasureFault(sys machine.System, sc FaultScenario, seed uint64) (time.Duration, error) {
	p := machine.DefaultParams(FaultClusterSize(sc))
	p.System = sys
	p.Seed = seed
	p.TrackData = true
	lat, _, err := measureFaultOn(machine.New(p), sc)
	return lat, err
}

// measureFaultOn runs one scenario on an existing cluster (which must have
// FaultClusterSize(sc) nodes) and also returns the benchmark region so the
// caller can validate protocol state.
func measureFaultOn(c *machine.Cluster, sc FaultScenario) (time.Duration, *machine.Region, error) {
	n := c.P.Nodes

	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	r := c.NewSharedRegion("bench", 4, all)

	writer, err := c.TaskOn(1, "writer", r, 0)
	if err != nil {
		return 0, nil, err
	}
	// Extra reading nodes beyond the writer's own copy (and beyond the
	// faulter's, when it holds one).
	extra := 0
	if sc.Write {
		extra = sc.Readers - 1
		if sc.FaulterHasCopy {
			extra--
		}
		if extra < 0 {
			extra = 0
		}
	}
	readers := make([]*vm.Task, extra)
	for i := range readers {
		readers[i], err = c.TaskOn(2+i, "reader", r, 0)
		if err != nil {
			return 0, nil, err
		}
	}
	faulterNode := n - 1
	faulter, err := c.TaskOn(faulterNode, "faulter", r, 0)
	if err != nil {
		return 0, nil, err
	}

	var lat time.Duration
	var benchErr error
	c.Spawn("bench", func(p *sim.Proc) {
		// The initial writer dirties the page (and keeps its copy).
		if err := writer.WriteU64(p, 0, 1); err != nil {
			benchErr = err
			return
		}
		// Establish additional read copies.
		for _, rt := range readers {
			if _, err := rt.ReadU64(p, 0); err != nil {
				benchErr = err
				return
			}
		}
		if sc.FaulterHasCopy {
			if _, err := faulter.ReadU64(p, 0); err != nil {
				benchErr = err
				return
			}
		}
		want := vm.ProtRead
		if sc.Write {
			want = vm.ProtWrite
		}
		if !sc.Write && sc.SecondReader {
			// The first reader's fault cleans the page; measure the next
			// node's read.
			second, err := c.TaskOn(faulterNode-1, "first", r, 0)
			if err != nil {
				benchErr = err
				return
			}
			if _, err := second.ReadU64(p, 0); err != nil {
				benchErr = err
				return
			}
		}
		t0 := p.Now()
		if _, err := faulter.Touch(p, 0, want); err != nil {
			benchErr = err
			return
		}
		lat = p.Now() - t0
	})
	c.Run()
	if benchErr != nil {
		return 0, nil, benchErr
	}
	if lat == 0 {
		return 0, nil, fmt.Errorf("workload: scenario %q measured no fault", sc.Name)
	}
	return lat, r, nil
}

// MeasureWriteFaultVsReaders sweeps Figure 10: write-fault (and upgrade)
// latency against the number of read copies.
func MeasureWriteFaultVsReaders(sys machine.System, readers []int, upgrade bool, seed uint64) ([]time.Duration, error) {
	out := make([]time.Duration, len(readers))
	for i, r := range readers {
		lat, err := MeasureFault(sys, FaultScenario{
			Name:           fmt.Sprintf("fig10 r=%d", r),
			Readers:        r,
			Write:          true,
			FaulterHasCopy: upgrade,
		}, seed)
		if err != nil {
			return nil, err
		}
		out[i] = lat
	}
	return out, nil
}

// MeasureChainFault reproduces Figure 11: a 128 KB region is initialized
// on node 0, a chain of copies spans `chain` additional nodes (one remote
// fork per node), and the last node faults in every page. Returned is the
// mean per-page fault latency.
func MeasureChainFault(sys machine.System, chain int, seed uint64) (time.Duration, error) {
	const regionPages = 16 // 128 KByte
	n := chain + 1
	if n < 2 {
		return 0, fmt.Errorf("workload: chain needs at least 1 hop")
	}
	p := machine.DefaultParams(n)
	p.System = sys
	p.Seed = seed
	p.TrackData = true
	c := machine.New(p)

	parent := c.Kerns[0].NewTask("parent")
	region := c.Kerns[0].NewAnonymous(regionPages)
	if _, err := parent.Map.MapObject(0, region, 0, regionPages, vm.ProtWrite, vm.InheritCopy); err != nil {
		return 0, err
	}

	var mean time.Duration
	var benchErr error
	c.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < regionPages; i++ {
			if err := parent.WriteU64(p, vm.Addr(i*vm.PageSize), uint64(i+1)); err != nil {
				benchErr = err
				return
			}
		}
		cur := parent
		for i := 1; i <= chain; i++ {
			child, err := c.RemoteFork(cur, i, fmt.Sprintf("child%d", i))
			if err != nil {
				benchErr = err
				return
			}
			cur = child
		}
		t0 := p.Now()
		for i := 0; i < regionPages; i++ {
			v, err := cur.ReadU64(p, vm.Addr(i*vm.PageSize))
			if err != nil {
				benchErr = err
				return
			}
			if v != uint64(i+1) {
				benchErr = fmt.Errorf("workload: chain content corrupted: page %d = %d", i, v)
				return
			}
		}
		mean = (p.Now() - t0) / regionPages
	})
	c.Run()
	if benchErr != nil {
		return 0, benchErr
	}
	return mean, nil
}
