package workload

import (
	"fmt"
	"time"

	"asvm/internal/app"
	"asvm/internal/app/simhost"
	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

// SORConfig parameterizes a red-black successive over-relaxation solver
// over a shared 2-D grid — the other canonical SVM application of the era
// (Li's thesis and the TreadMarks paper both use it). Rows are partitioned
// across nodes; each iteration reads the neighbour partitions' boundary
// rows, which is exactly the page-sharing pattern that separates a
// distributed manager from a centralized one.
type SORConfig struct {
	// Rows and Cols give the grid size; each element is 8 bytes.
	Rows, Cols int
	// Iters is the number of red/black iteration pairs.
	Iters int
	// Nodes is the number of compute nodes.
	Nodes int
	// PerElemCompute is the update cost per grid element.
	PerElemCompute time.Duration
	// MemMB is per-node memory (0 = unlimited).
	MemMB int
	// Seed drives nothing yet (the grid is deterministic) but keeps the
	// interface uniform.
	Seed uint64
}

// DefaultSOR returns a medium-size configuration.
func DefaultSOR(rows, cols, nodes, iters int) SORConfig {
	return SORConfig{
		Rows: rows, Cols: cols, Iters: iters, Nodes: nodes,
		PerElemCompute: 150 * time.Nanosecond,
		MemMB:          0,
		Seed:           1,
	}
}

// RunSOR executes the solver and returns the time for the iteration loop.
func RunSOR(sys machine.System, cfg SORConfig) (time.Duration, error) {
	if cfg.Rows%cfg.Nodes != 0 {
		return 0, fmt.Errorf("workload: %d rows not divisible by %d nodes", cfg.Rows, cfg.Nodes)
	}
	mp := machine.DefaultParams(cfg.Nodes)
	mp.System = sys
	mp.MemMB = cfg.MemMB
	mp.Seed = cfg.Seed
	c := machine.New(mp)
	return RunSOROn(c, cfg)
}

// RunSOROn executes the solver on an existing cluster.
func RunSOROn(c *machine.Cluster, cfg SORConfig) (time.Duration, error) {
	rowBytes := int64(cfg.Cols) * 8
	gridBytes := rowBytes * int64(cfg.Rows)
	regionPages := vm.PageIdx((gridBytes + vm.PageSize - 1) / vm.PageSize)
	all := make([]int, cfg.Nodes)
	for i := range all {
		all[i] = i
	}
	w, err := simhost.NewWorld(c, []simhost.Spec{{Name: "sor", Pages: int64(regionPages)}})
	if err != nil {
		return 0, err
	}
	bar := w.NewBarrier()

	rowsPer := cfg.Rows / cfg.Nodes
	rowPages := func(row int) (vm.PageIdx, vm.PageIdx) {
		lo := vm.PageIdx(int64(row) * rowBytes / vm.PageSize)
		hi := vm.PageIdx((int64(row+1)*rowBytes - 1) / vm.PageSize)
		return lo, hi
	}
	pageSpan := func(firstRow, lastRow int) []vm.PageIdx {
		lo, _ := rowPages(firstRow)
		_, hi := rowPages(lastRow)
		out := make([]vm.PageIdx, 0, hi-lo+1)
		for pg := lo; pg <= hi; pg++ {
			out = append(out, pg)
		}
		return out
	}

	starts := make([]sim.Time, cfg.Nodes)
	ends := make([]sim.Time, cfg.Nodes)
	for n := range all {
		n := n
		first, last := n*rowsPer, (n+1)*rowsPer-1
		own := pageSpan(first, last)
		var halo []vm.PageIdx
		if n > 0 {
			halo = append(halo, pageSpan(first-1, first-1)...)
		}
		if n < cfg.Nodes-1 {
			halo = append(halo, pageSpan(last+1, last+1)...)
		}
		compute := time.Duration(rowsPer*cfg.Cols) * cfg.PerElemCompute

		if err := w.Prepare(n); err != nil {
			return 0, err
		}
		w.GoOn(n, fmt.Sprintf("sor%d", n), func(h app.Host) error {
			touch := func(pages []vm.PageIdx, write bool) error {
				for _, pg := range pages {
					off := int64(pg) * vm.PageSize
					if write {
						if err := h.Write(0, off, 0); err != nil {
							return err
						}
					} else if _, err := h.Read(0, off); err != nil {
						return err
					}
				}
				return nil
			}
			if err := touch(own, true); err != nil {
				return err
			}
			if err := h.Barrier(bar); err != nil {
				return err
			}
			starts[n] = h.Now()
			for iter := 0; iter < cfg.Iters; iter++ {
				// Red sweep then black sweep: read neighbour halos, update
				// own rows.
				for half := 0; half < 2; half++ {
					if err := touch(halo, false); err != nil {
						return err
					}
					if err := touch(own, true); err != nil {
						return err
					}
					h.Sleep(compute / 2)
					if err := h.Barrier(bar); err != nil {
						return err
					}
				}
			}
			ends[n] = h.Now()
			return nil
		})
	}
	if err := w.Run(); err != nil {
		return 0, err
	}
	var first, last sim.Time
	for n := range all {
		if ends[n] == 0 {
			return 0, fmt.Errorf("workload: sor node %d never finished", n)
		}
		if n == 0 || starts[n] < first {
			first = starts[n]
		}
		if ends[n] > last {
			last = ends[n]
		}
	}
	return last - first, nil
}
