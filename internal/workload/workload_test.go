package workload

import (
	"testing"
	"time"

	"asvm/internal/machine"
)

func TestTable1ScenarioCount(t *testing.T) {
	if n := len(Table1Scenarios()); n != 7 {
		t.Fatalf("scenarios = %d, want 7 (paper Table 1 rows)", n)
	}
}

func TestFaultASVMBeatsXMMOnEveryRow(t *testing.T) {
	for _, sc := range Table1Scenarios() {
		if sc.Readers > 4 {
			sc.Readers = 4 // keep the unit test fast; the bench runs full size
		}
		a, err := MeasureFault(machine.SysASVM, sc, 1)
		if err != nil {
			t.Fatalf("%s ASVM: %v", sc.Name, err)
		}
		x, err := MeasureFault(machine.SysXMM, sc, 1)
		if err != nil {
			t.Fatalf("%s XMM: %v", sc.Name, err)
		}
		if a >= x {
			t.Errorf("%s: ASVM %v not faster than XMM %v", sc.Name, a, x)
		}
	}
}

func TestFaultLatencyGrowsWithReaders(t *testing.T) {
	for _, sys := range []machine.System{machine.SysASVM, machine.SysXMM} {
		lat2, err := MeasureFault(sys, FaultScenario{Readers: 2, Write: true}, 1)
		if err != nil {
			t.Fatal(err)
		}
		lat8, err := MeasureFault(sys, FaultScenario{Readers: 8, Write: true}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if lat8 <= lat2 {
			t.Errorf("%v: 8 readers (%v) not slower than 2 (%v)", sys, lat8, lat2)
		}
	}
}

func TestMeasureFaultDeterministic(t *testing.T) {
	sc := FaultScenario{Readers: 2, Write: true}
	a, err := MeasureFault(machine.SysASVM, sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureFault(machine.SysASVM, sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestChainFaultGrowsLinearly(t *testing.T) {
	for _, sys := range []machine.System{machine.SysASVM, machine.SysXMM} {
		l1, err := MeasureChainFault(sys, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		l3, err := MeasureChainFault(sys, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		if l3 <= l1 {
			t.Errorf("%v: chain 3 (%v) not slower than chain 1 (%v)", sys, l3, l1)
		}
	}
}

func TestChainASVMMuchFlatterThanXMM(t *testing.T) {
	slope := func(sys machine.System) time.Duration {
		l1, err := MeasureChainFault(sys, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		l5, err := MeasureChainFault(sys, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		return (l5 - l1) / 4
	}
	a, x := slope(machine.SysASVM), slope(machine.SysXMM)
	if x < 3*a {
		t.Fatalf("XMM per-hop (%v) should be several times ASVM's (%v)", x, a)
	}
}

func TestFileWriteRatesDeclineWithNodes(t *testing.T) {
	r1, err := MeasureFileWrite(machine.SysASVM, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := MeasureFileWrite(machine.SysASVM, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1 <= 0 || r8 <= 0 {
		t.Fatalf("non-positive rates: %v %v", r1, r8)
	}
	if r8 >= r1 {
		t.Fatalf("per-node write rate should decline: 1 node %.2f, 8 nodes %.2f", r1, r8)
	}
}

func TestFileReadASVMSustainsXMMCollapses(t *testing.T) {
	a2, err := MeasureFileRead(machine.SysASVM, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	a8, err := MeasureFileRead(machine.SysASVM, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := MeasureFileRead(machine.SysXMM, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	x8, err := MeasureFileRead(machine.SysXMM, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// ASVM's distributed manager sustains the rate; XMM collapses.
	if a8 < a2/2 {
		t.Errorf("ASVM read rate collapsed: %v -> %v", a2, a8)
	}
	if x8 > x2/2 {
		t.Errorf("XMM read rate did not collapse: %v -> %v", x2, x8)
	}
	if a8 < 3*x8 {
		t.Errorf("ASVM (%v) should dominate XMM (%v) at 8 nodes", a8, x8)
	}
}

func TestEM3DFeasibility(t *testing.T) {
	// 64000 cells * 224 B = ~14 MB: too much for one 16 MB node (9 MB
	// user), fine for two.
	cfg := DefaultEM3D(64000, 1, 10)
	if cfg.Feasible() {
		t.Fatal("14 MB dataset should not fit one 16 MB node")
	}
	cfg = DefaultEM3D(64000, 2, 10)
	if !cfg.Feasible() {
		t.Fatal("14 MB dataset should fit two nodes")
	}
	// 1024000 cells on 8 nodes: 229 MB > 72 MB: the paper's **.
	cfg = DefaultEM3D(1024000, 8, 10)
	if cfg.Feasible() {
		t.Fatal("1024000 cells should not fit 8 nodes")
	}
	cfg.MemMB = 0
	if !cfg.Feasible() {
		t.Fatal("unlimited memory is always feasible")
	}
}

func TestEM3DASVMSpeedsUpXMMSlowsDown(t *testing.T) {
	run := func(sys machine.System, nodes int) time.Duration {
		cfg := DefaultEM3D(64000, nodes, 2)
		if nodes == 1 {
			cfg.MemMB = 0
		}
		d, err := RunEM3D(sys, cfg)
		if err != nil {
			t.Fatalf("%v nodes=%d: %v", sys, nodes, err)
		}
		return d
	}
	seq := run(machine.SysASVM, 1)
	a4 := run(machine.SysASVM, 4)
	x4 := run(machine.SysXMM, 4)
	if a4 >= seq {
		t.Errorf("ASVM 4 nodes (%v) not faster than sequential (%v)", a4, seq)
	}
	if x4 <= seq {
		t.Errorf("XMM 4 nodes (%v) not slower than sequential (%v) — the paper's slowdown", x4, seq)
	}
}

func TestEM3DDeterministic(t *testing.T) {
	cfg := DefaultEM3D(8000, 4, 2)
	a, err := RunEM3D(machine.SysASVM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEM3D(machine.SysASVM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic EM3D: %v vs %v", a, b)
	}
}

func TestEM3DPlanCoversAllOwnPages(t *testing.T) {
	cfg := DefaultEM3D(8000, 4, 1)
	plans := planEM3D(cfg)
	if len(plans) != 4 {
		t.Fatalf("plans = %d", len(plans))
	}
	for n, p := range plans {
		if len(p.writeE) == 0 || len(p.writeH) == 0 {
			t.Errorf("node %d has empty write sets", n)
		}
		if p.updatesE+p.updatesH != cfg.Cells/cfg.Nodes {
			t.Errorf("node %d updates %d+%d != %d", n, p.updatesE, p.updatesH, cfg.Cells/cfg.Nodes)
		}
		// Read sets must include the node's own counterpart pages.
		if len(p.readE) < len(p.writeH) {
			t.Errorf("node %d readE misses own H pages", n)
		}
	}
	// With more than one node there must be some remote ghost pages.
	if len(plans[1].readE) == len(plans[1].writeH) {
		t.Error("no remote ghost pages in readE")
	}
}

func TestEM3DRejectsIndivisibleCells(t *testing.T) {
	cfg := DefaultEM3D(1000, 3, 1)
	if _, err := RunEM3D(machine.SysASVM, cfg); err == nil {
		t.Fatal("1000 cells on 3 nodes should be rejected")
	}
}

func TestSORBothSystemsCorrectAndOrdered(t *testing.T) {
	// The SOR halo-exchange pattern: ASVM scales, XMM pays the manager.
	a, err := RunSOR(machine.SysASVM, DefaultSOR(512, 512, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	x, err := RunSOR(machine.SysXMM, DefaultSOR(512, 512, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if a <= 0 || x <= 0 {
		t.Fatalf("non-positive times: %v %v", a, x)
	}
	if x <= a {
		t.Fatalf("XMM (%v) should be slower than ASVM (%v) on halo exchange", x, a)
	}
}

func TestSORScalesUnderASVM(t *testing.T) {
	seq, err := RunSOR(machine.SysASVM, DefaultSOR(1024, 1024, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSOR(machine.SysASVM, DefaultSOR(1024, 1024, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if par >= seq {
		t.Fatalf("4-node SOR (%v) not faster than sequential (%v)", par, seq)
	}
}

func TestSORRejectsIndivisibleRows(t *testing.T) {
	if _, err := RunSOR(machine.SysASVM, DefaultSOR(100, 100, 3, 1)); err == nil {
		t.Fatal("100 rows on 3 nodes accepted")
	}
}

func TestMeasureWriteFaultVsReadersSweep(t *testing.T) {
	lats, err := MeasureWriteFaultVsReaders(machine.SysASVM, []int{1, 4}, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(lats) != 2 || lats[1] <= lats[0] {
		t.Fatalf("sweep = %v, want increasing", lats)
	}
	ups, err := MeasureWriteFaultVsReaders(machine.SysASVM, []int{4}, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ups[0] >= lats[1] {
		t.Fatalf("upgrade (%v) not cheaper than write fault (%v)", ups[0], lats[1])
	}
}
