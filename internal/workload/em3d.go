package workload

import (
	"fmt"
	"time"

	"asvm/internal/app"
	"asvm/internal/app/simhost"
	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

// EM3DConfig parameterizes the EM3D electromagnetic wave propagation
// application (paper §4.3): a bipartite graph of E and H cells, updated in
// alternating phases over shared virtual memory.
type EM3DConfig struct {
	// Cells is the total number of cells (E + H). Paper: 64000, 256000,
	// 1024000.
	Cells int
	// EdgesPerCell is the in-degree of each cell (paper: 6).
	EdgesPerCell int
	// RemotePct is the percentage of edges whose source cell lives on a
	// different node (paper: 20).
	RemotePct int
	// Iters is the number of compute iterations (paper: 100).
	Iters int
	// Nodes is the number of compute nodes.
	Nodes int
	// CellBytes is the memory footprint per cell (paper: 224).
	CellBytes int
	// PerCellCompute is the update cost for one cell including its edge
	// arithmetic; calibrated so the sequential 64000-cell run lands at the
	// paper's 43.6 s.
	PerCellCompute time.Duration
	// GhostCells is the size of the neighbour-boundary window remote edges
	// select their sources from (EM3D graphs are physically local: remote
	// dependencies cluster at partition boundaries).
	GhostCells int
	// MemMB is per-node memory (16 for the paper's GP nodes; 0 for the
	// unlimited sequential reference run marked * in Table 3).
	MemMB int
	// Seed drives graph generation.
	Seed uint64
}

// DefaultEM3D returns the paper's configuration for a problem size and
// node count.
func DefaultEM3D(cells, nodes, iters int) EM3DConfig {
	return EM3DConfig{
		Cells:          cells,
		EdgesPerCell:   6,
		RemotePct:      20,
		Iters:          iters,
		Nodes:          nodes,
		CellBytes:      224,
		PerCellCompute: 6800 * time.Nanosecond,
		GhostCells:     256,
		MemMB:          16,
		Seed:           1,
	}
}

// DatasetBytes returns the problem's memory footprint.
func (cfg EM3DConfig) DatasetBytes() int64 {
	return int64(cfg.Cells) * int64(cfg.CellBytes)
}

// Feasible reports whether the combined user memory of the nodes can hold
// the dataset (the paper omits infeasible combinations, marked **).
func (cfg EM3DConfig) Feasible() bool {
	if cfg.MemMB <= 0 {
		return true
	}
	userBytes := int64(cfg.Nodes) * int64(cfg.MemMB-7) * (1 << 20)
	return cfg.DatasetBytes() <= userBytes
}

// em3dNodePlan is one node's per-phase page working set.
type em3dNodePlan struct {
	readE, writeE []vm.PageIdx // E phase: read H sources, write own E cells
	readH, writeH []vm.PageIdx // H phase: read E sources, write own H cells
	updatesE      int
	updatesH      int
}

// planEM3D derives each node's page sets from the graph structure.
// Layout: node n owns the contiguous cell block [n*cpn, (n+1)*cpn); the
// first half of each block holds E cells, the second half H cells.
func planEM3D(cfg EM3DConfig) []em3dNodePlan {
	rng := sim.NewRNG(cfg.Seed)
	cpn := cfg.Cells / cfg.Nodes
	cellPage := func(cell int) vm.PageIdx {
		return vm.PageIdx(int64(cell) * int64(cfg.CellBytes) / vm.PageSize)
	}
	pagesOf := func(firstCell, nCells int) []vm.PageIdx {
		if nCells <= 0 {
			return nil
		}
		lo := cellPage(firstCell)
		hi := cellPage(firstCell + nCells - 1)
		out := make([]vm.PageIdx, 0, hi-lo+1)
		for pg := lo; pg <= hi; pg++ {
			out = append(out, pg)
		}
		return out
	}
	plans := make([]em3dNodePlan, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		base := n * cpn
		half := cpn / 2
		eFirst, eCount := base, half
		hFirst, hCount := base+half, cpn-half

		var p em3dNodePlan
		p.updatesE = eCount
		p.updatesH = hCount
		p.writeE = pagesOf(eFirst, eCount)
		p.writeH = pagesOf(hFirst, hCount)

		// Remote sources cluster at neighbouring nodes' boundary windows.
		ghost := cfg.GhostCells
		if ghost > half {
			ghost = half
		}
		remoteE := eCount * cfg.EdgesPerCell * cfg.RemotePct / 100
		remoteH := hCount * cfg.EdgesPerCell * cfg.RemotePct / 100

		sample := func(count int, pickHHalf bool) map[vm.PageIdx]bool {
			set := make(map[vm.PageIdx]bool)
			if cfg.Nodes == 1 || ghost == 0 {
				return set
			}
			for k := 0; k < count; k++ {
				var nb int
				if rng.Intn(2) == 0 {
					nb = (n + 1) % cfg.Nodes
				} else {
					nb = (n - 1 + cfg.Nodes) % cfg.Nodes
				}
				nbBase := nb * cpn
				nbHalf := cpn / 2
				var cell int
				if pickHHalf {
					cell = nbBase + nbHalf + rng.Intn(ghost)
				} else {
					cell = nbBase + rng.Intn(ghost)
				}
				set[cellPage(cell)] = true
			}
			return set
		}

		// E update reads H cells: own H pages (fast-path in steady state)
		// plus the remote ghost pages.
		remE := sample(remoteE, true)
		p.readE = append(append([]vm.PageIdx(nil), p.writeH...), setToSlice(remE)...)
		remH := sample(remoteH, false)
		p.readH = append(append([]vm.PageIdx(nil), p.writeE...), setToSlice(remH)...)
		plans[n] = p
	}
	return plans
}

func setToSlice(m map[vm.PageIdx]bool) []vm.PageIdx {
	out := make([]vm.PageIdx, 0, len(m))
	for pg := range m {
		out = append(out, pg)
	}
	// Deterministic order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RunEM3D executes the benchmark on a fresh cluster and returns the
// execution time of the computation loop (initialization excluded, like
// the paper).
func RunEM3D(sys machine.System, cfg EM3DConfig) (time.Duration, error) {
	if cfg.Cells%cfg.Nodes != 0 {
		return 0, fmt.Errorf("workload: %d cells not divisible by %d nodes", cfg.Cells, cfg.Nodes)
	}
	mp := machine.DefaultParams(cfg.Nodes)
	mp.System = sys
	mp.MemMB = cfg.MemMB
	mp.Seed = cfg.Seed
	c := machine.New(mp)
	return RunEM3DOn(c, cfg)
}

// RunEM3DOn executes the benchmark on an existing cluster (so callers can
// inspect its statistics afterwards).
func RunEM3DOn(c *machine.Cluster, cfg EM3DConfig) (time.Duration, error) {
	d, _, err := runEM3DRegion(c, cfg)
	return d, err
}

// runEM3DRegion is RunEM3DOn plus the shared region, for protocol-state
// validation after the run.
func runEM3DRegion(c *machine.Cluster, cfg EM3DConfig) (time.Duration, *machine.Region, error) {
	if cfg.Cells%cfg.Nodes != 0 {
		return 0, nil, fmt.Errorf("workload: %d cells not divisible by %d nodes", cfg.Cells, cfg.Nodes)
	}
	regionPages := vm.PageIdx((cfg.DatasetBytes() + vm.PageSize - 1) / vm.PageSize)
	w, err := simhost.NewWorld(c, []simhost.Spec{{Name: "em3d", Pages: int64(regionPages)}})
	if err != nil {
		return 0, nil, err
	}
	bar := w.NewBarrier()
	plans := planEM3D(cfg)

	all := make([]int, cfg.Nodes)
	for i := range all {
		all[i] = i
	}
	if err := w.Prepare(all...); err != nil {
		return 0, nil, err
	}

	// Initialization phase: every node touches its own block (excluded
	// from the measured time, like the paper).
	initBar := w.NewBarrier()
	starts := make([]sim.Time, cfg.Nodes)
	ends := make([]sim.Time, cfg.Nodes)
	for n := range all {
		n := n
		plan := plans[n]
		w.GoOn(n, fmt.Sprintf("em3d%d", n), func(h app.Host) error {
			touch := func(pages []vm.PageIdx, write bool) error {
				for _, pg := range pages {
					off := int64(pg) * vm.PageSize
					if write {
						if err := h.Write(0, off, 0); err != nil {
							return err
						}
					} else if _, err := h.Read(0, off); err != nil {
						return err
					}
				}
				return nil
			}
			if err := touch(plan.writeE, true); err != nil {
				return err
			}
			if err := touch(plan.writeH, true); err != nil {
				return err
			}
			if err := h.Barrier(initBar); err != nil {
				return err
			}
			starts[n] = h.Now()
			for iter := 0; iter < cfg.Iters; iter++ {
				// E phase: new E from H neighbours.
				if err := touch(plan.readE, false); err != nil {
					return err
				}
				if err := touch(plan.writeE, true); err != nil {
					return err
				}
				h.Sleep(time.Duration(plan.updatesE) * cfg.PerCellCompute)
				if err := h.Barrier(bar); err != nil {
					return err
				}
				// H phase: new H from E neighbours.
				if err := touch(plan.readH, false); err != nil {
					return err
				}
				if err := touch(plan.writeH, true); err != nil {
					return err
				}
				h.Sleep(time.Duration(plan.updatesH) * cfg.PerCellCompute)
				if err := h.Barrier(bar); err != nil {
					return err
				}
			}
			ends[n] = h.Now()
			return nil
		})
	}
	if err := w.Run(); err != nil {
		return 0, nil, err
	}
	var last sim.Time
	var first sim.Time
	for n := range all {
		if ends[n] == 0 {
			return 0, nil, fmt.Errorf("workload: em3d node %d never finished (deadlock?)", n)
		}
		if n == 0 || starts[n] < first {
			first = starts[n]
		}
		if ends[n] > last {
			last = ends[n]
		}
	}
	return last - first, w.Region(0), nil
}
