package asvm

import (
	"fmt"
	"sort"
	"strings"

	"asvm/internal/sim"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// This file is the protocol core's explicit state machine. The paper's
// claim that "protocol engines never block kernel threads" used to be
// encoded implicitly — a busy bool, a pending-fault map and flag logic
// scattered across the asvm files. Here it is explicit: every page is in
// exactly one PageProtoState, every stimulus (incoming message or local
// kernel event) is a ProtoEvent, and the (state, event) pair indexes a
// transition table. Legal pairs name their action; illegal pairs panic
// with both names instead of silently corrupting shared state. Every
// dispatched transition bumps sim.CtrProtoTransitions, feeds the node's
// coverage matrix (which the schedule explorer reports), and emits a
// TraceBuf line when tracing is on.

// PageProtoState is one page's protocol state at one node.
//
// The ordering is load-bearing: states from StOwner up are owner states
// (the node holds page ownership), and states from StServing up are the
// busy-with-reason states — the window the old code spent with the busy
// bit set, during which requests queue and mid-flight invariant checks
// pass vacuously.
type PageProtoState uint8

const (
	// StInvalid: no copy, no ownership, no fault outstanding.
	StInvalid PageProtoState = iota
	// StFaultOutRead: a read fault left this node; a grant is due.
	StFaultOutRead
	// StFaultOutWrite: a write fault (or upgrade) left this node.
	StFaultOutWrite
	// StReadShared: holds a read copy granted by the owner.
	StReadShared
	// StOwner: owner at rest with at least one remote reader.
	StOwner
	// StOwnerSole: owner at rest with no remote readers.
	StOwnerSole
	// StServing: owner processing one request (the synchronous window).
	StServing
	// StPushWait: owner waiting for a push-scan ack before a write grant.
	StPushWait
	// StInvalWait: owner waiting for invalidation acks.
	StInvalWait
	// StXferOut: owner mid-eviction (transfer/offer/pageout in flight).
	StXferOut

	NumPageStates = int(StXferOut) + 1
)

var pageStateNames = [NumPageStates]string{
	StInvalid:       "Invalid",
	StFaultOutRead:  "FaultOutRead",
	StFaultOutWrite: "FaultOutWrite",
	StReadShared:    "ReadShared",
	StOwner:         "Owner",
	StOwnerSole:     "OwnerSole",
	StServing:       "Serving",
	StPushWait:      "PushWait",
	StInvalWait:     "InvalWait",
	StXferOut:       "XferOut",
}

func (s PageProtoState) String() string {
	if int(s) < NumPageStates {
		return pageStateNames[s]
	}
	return fmt.Sprintf("PageProtoState(%d)", int(s))
}

// Owner reports whether the state carries page ownership.
func (s PageProtoState) Owner() bool { return s >= StOwner }

// Busy reports whether the owner is mid-operation (the old busy bit).
func (s PageProtoState) Busy() bool { return s >= StServing }

// AtRest reports an owner with no operation in progress.
func (s PageProtoState) AtRest() bool { return s == StOwner || s == StOwnerSole }

// FaultOut reports an outstanding local fault (the old pend entry).
func (s PageProtoState) FaultOut() bool {
	return s == StFaultOutRead || s == StFaultOutWrite
}

// ProtoEvent is one stimulus to a page's state machine: every incoming
// protocol message kind, plus the local events the kernel and the domain
// lifecycle inject.
type ProtoEvent uint8

const (
	EvAccessReq ProtoEvent = iota
	EvGrant
	EvInval
	EvInvalAck
	EvOwnerUpdate
	EvOwnerXfer
	EvOwnerXferAck
	EvPageOffer
	EvPageOfferAck
	EvToPager
	EvToPagerAck
	EvPushScanAck
	// Local stimuli.
	EvFaultRead  // kernel read miss (vm.MemoryManager.DataRequest)
	EvFaultWrite // kernel write miss or upgrade (DataRequest/DataUnlock)
	EvEvict      // kernel pageout (vm.MemoryManager.DataReturn)
	EvPushStart  // a write grant needs the pre-copy contents pushed first
	EvTeardown   // domain teardown drops the page's protocol state
	EvReqNack    // a forwarded request bounced off a dead node
	EvCrash      // this node crashed: the page's state dies with it
	EvPeerDown   // a peer was declared dead: scrub it / re-drive the fault

	NumProtoEvents = int(EvPeerDown) + 1
)

var protoEventNames = [NumProtoEvents]string{
	EvAccessReq:    "AccessReq",
	EvGrant:        "Grant",
	EvInval:        "Inval",
	EvInvalAck:     "InvalAck",
	EvOwnerUpdate:  "OwnerUpdate",
	EvOwnerXfer:    "OwnerXfer",
	EvOwnerXferAck: "OwnerXferAck",
	EvPageOffer:    "PageOffer",
	EvPageOfferAck: "PageOfferAck",
	EvToPager:      "ToPager",
	EvToPagerAck:   "ToPagerAck",
	EvPushScanAck:  "PushScanAck",
	EvFaultRead:    "FaultRead",
	EvFaultWrite:   "FaultWrite",
	EvEvict:        "Evict",
	EvPushStart:    "PushStart",
	EvTeardown:     "Teardown",
	EvReqNack:      "ReqNack",
	EvCrash:        "Crash",
	EvPeerDown:     "PeerDown",
}

func (e ProtoEvent) String() string {
	if int(e) < NumProtoEvents {
		return protoEventNames[e]
	}
	return fmt.Sprintf("ProtoEvent(%d)", int(e))
}

// eventForMsgKind maps an incoming message kind to its protocol event —
// the exhaustiveness test pins that every kind Node.handle dispatches has
// an entry here.
func eventForMsgKind(k xport.MsgKind) (ProtoEvent, bool) {
	switch k {
	case msgAccessReq:
		return EvAccessReq, true
	case msgGrant:
		return EvGrant, true
	case msgInval:
		return EvInval, true
	case msgInvalAck:
		return EvInvalAck, true
	case msgOwnerUpdate:
		return EvOwnerUpdate, true
	case msgOwnerXfer:
		return EvOwnerXfer, true
	case msgOwnerXferAck:
		return EvOwnerXferAck, true
	case msgPageOffer:
		return EvPageOffer, true
	case msgPageOfferAck:
		return EvPageOfferAck, true
	case msgToPager:
		return EvToPager, true
	case msgToPagerAck:
		return EvToPagerAck, true
	case msgPushScanAck:
		return EvPushScanAck, true
	}
	return 0, false
}

// protoAction executes one legal transition. m is the dispatch payload:
// the incoming message for message events, and a small typed value for
// local stimuli (vm.Prot for faults, *evictEvent for pageout, func() for
// push starts, xport.Nack for bounces, nil for teardown).
type protoAction func(in *Instance, idx vm.PageIdx, m interface{})

// transition is one legal (state, event) table entry. next-state logic
// lives in the action (many transitions pick their successor dynamically:
// a grant lands in ReadShared or Owner/OwnerSole depending on what it
// carries), but the name is static and pinned by the golden matrix test.
type transition struct {
	name string
	act  protoAction
}

// protoTable is the full legality matrix: nil entries are illegal pairs
// and panic on dispatch.
var protoTable [NumPageStates][NumProtoEvents]*transition

func entry(ev ProtoEvent, name string, act protoAction, states ...PageProtoState) {
	t := &transition{name: name, act: act}
	for _, s := range states {
		if protoTable[s][ev] != nil {
			panic(fmt.Sprintf("asvm: duplicate transition %v × %v", s, ev))
		}
		protoTable[s][ev] = t
	}
}

// State groups used while declaring the table.
var (
	allStates = []PageProtoState{
		StInvalid, StFaultOutRead, StFaultOutWrite, StReadShared,
		StOwner, StOwnerSole, StServing, StPushWait, StInvalWait, StXferOut,
	}
	busyStates  = []PageProtoState{StServing, StPushWait, StInvalWait, StXferOut}
	restStates  = []PageProtoState{StOwner, StOwnerSole}
	faultStates = []PageProtoState{StFaultOutRead, StFaultOutWrite}
)

func init() {
	// Requests route by the redirector at non-owners, serve at an owner at
	// rest, and queue at a busy owner (handleAsOwner branches on exactly
	// this state split).
	entry(EvAccessReq, "fwdReq", actAccessReq,
		StInvalid, StFaultOutRead, StFaultOutWrite, StReadShared)
	entry(EvAccessReq, "serveReq", actAccessReq, restStates...)
	entry(EvAccessReq, "queueReq", actAccessReq, busyStates...)

	// Grants normally answer an outstanding fault; the tolerant late
	// variants keep today's behaviour for grants that arrive after the
	// fault was satisfied through another path (retries and races make
	// this reachable). A grant into a busy owner would corrupt the
	// operation in flight — loud, unless a crash-era re-driven fault
	// resolved twice, in which case the duplicate is dead on arrival.
	entry(EvGrant, "grant", actGrant, faultStates...)
	entry(EvGrant, "grantLate", actGrant,
		StInvalid, StReadShared, StOwner, StOwnerSole)
	entry(EvGrant, "grantBusy", actGrantBusy, busyStates...)

	// Invalidation: drop a read copy, mark a stale in-flight grant while
	// faulting (the explorer-found stale-grant transition, PR 4), or just
	// ack when there is nothing left to drop. An owner is never a target
	// of its own invalidation round.
	entry(EvInval, "invalLate", actInval, StInvalid)
	entry(EvInval, "invalStale", actInval, faultStates...)
	entry(EvInval, "invalDrop", actInval, StReadShared)

	entry(EvInvalAck, "invalAck", actInvalAck, StInvalWait)

	// Static-manager cache refresh: orthogonal to the page's own state.
	entry(EvOwnerUpdate, "ownerHint", actOwnerUpdate, allStates...)

	// Eviction offers: a reader may take ownership over; everyone else
	// declines (a faulting node must not adopt a page mid-fault, and an
	// owner already has one).
	entry(EvOwnerXfer, "xferTake", actOwnerXfer, StInvalid, StReadShared)
	entry(EvOwnerXfer, "xferDecline", actOwnerXferDecline,
		StFaultOutRead, StFaultOutWrite,
		StOwner, StOwnerSole, StServing, StPushWait, StInvalWait, StXferOut)
	entry(EvOwnerXferAck, "xferAck", actOwnerXferAck, StXferOut)

	entry(EvPageOffer, "offerTake", actPageOffer, StInvalid)
	entry(EvPageOffer, "offerDecline", actPageOfferDecline,
		StFaultOutRead, StFaultOutWrite, StReadShared,
		StOwner, StOwnerSole, StServing, StPushWait, StInvalWait, StXferOut)
	entry(EvPageOfferAck, "offerAck", actPageOfferAck, StXferOut)

	// Pager parking arrives at the home node, which by definition is not
	// the page's owner at that moment (there is an owner evicting it).
	entry(EvToPager, "pagerPark", actToPager,
		StInvalid, StFaultOutRead, StFaultOutWrite, StReadShared)
	entry(EvToPagerAck, "pagerAck", actToPagerAck, StXferOut)
	// A Lost report's ack is sequence-matched, not state-matched: it may
	// return to a slot the bounced grant left in any state (crash era
	// only; the action panics otherwise).
	entry(EvToPagerAck, "pagerAckLoose", actToPagerAckLoose,
		StInvalid, StFaultOutRead, StFaultOutWrite, StReadShared,
		StOwner, StOwnerSole, StServing, StPushWait, StInvalWait)

	entry(EvPushScanAck, "pushAck", actPushScanAck, StPushWait)

	// Local faults: start a fault, merge into one already outstanding
	// (the kernel coalesces per-page faults, but a read fault can widen
	// to a write while in flight), upgrade a read copy, or self-serve at
	// the owner (queueing behind whatever it is doing).
	entry(EvFaultRead, "faultStart", actFault, StInvalid)
	entry(EvFaultRead, "faultMerge", actFault, faultStates...)
	entry(EvFaultWrite, "faultStart", actFault, StInvalid)
	entry(EvFaultWrite, "faultMerge", actFault, faultStates...)
	entry(EvFaultWrite, "upgradeStart", actFault, StReadShared)
	entry(EvFaultWrite, "upgradeSelf", actFaultOwner, restStates...)
	entry(EvFaultWrite, "upgradeQueue", actFaultOwner, busyStates...)

	// Kernel pageout: discard a non-owned copy, start the owner eviction
	// chain, or cancel when the page is mid-protocol or range-held.
	entry(EvEvict, "evictDiscard", actEvictDiscard,
		StInvalid, StFaultOutRead, StFaultOutWrite, StReadShared)
	entry(EvEvict, "evictOwner", actEvictOwner, restStates...)
	entry(EvEvict, "evictCancel", actEvictCancel, busyStates...)

	entry(EvPushStart, "pushScan", actPushStart, StServing)

	entry(EvTeardown, "teardown", actTeardown, allStates...)

	// A bounced request re-enters the redirector whatever our own page
	// state is — we may even own the page by now and serve it.
	entry(EvReqNack, "nackResume", actReqNack, allStates...)

	// Crash-stop fates. EvCrash runs on the dying node's own instance and
	// is legal everywhere: whatever the page was doing, the state dies with
	// the node. EvPeerDown runs on survivors: a faulting page re-drives its
	// request past the dead node, an owner scrubs the dead node from its
	// reader list. Both are dispatched only by the failure machinery.
	entry(EvCrash, "crash", actCrash, allStates...)
	entry(EvPeerDown, "peerDead", actPeerDown, allStates...)
}

// dispatch funnels one event into the page's state machine: legality
// check, transition counter, coverage cell, trace line, action.
func (in *Instance) dispatch(ev ProtoEvent, idx vm.PageIdx, m interface{}) {
	sl := &in.slots[idx]
	t := protoTable[sl.state][ev]
	if t == nil {
		panic(fmt.Sprintf("asvm: illegal transition %v × %v on %v page %d at node %d",
			sl.state, ev, in.info.ID, idx, in.self()))
	}
	in.nd.Ctr.V[sim.CtrProtoTransitions]++
	in.nd.Cover[sl.state][ev]++
	if in.nd.Trace.on {
		in.trace("s %s: %v×%v p%d", t.name, sl.state, ev, idx)
	}
	t.act(in, idx, m)
}

// setState moves a page to a new protocol state. Actions use it for the
// dynamic successor states the table entries describe.
func (in *Instance) setState(idx vm.PageIdx, to PageProtoState) {
	in.slots[idx].state = to
}

// restOwnerState is the at-rest owner state implied by the reader list.
func restOwnerState(readers int) PageProtoState {
	if readers > 0 {
		return StOwner
	}
	return StOwnerSole
}

// ---------------------------------------------------------------------------
// Coverage

// Coverage counts dispatched transitions per (state, event) cell. Each
// Node accumulates one; the schedule explorer merges them across nodes
// and runs to report which table entries a search actually exercised.
type Coverage [NumPageStates][NumProtoEvents]uint64

// Merge adds o's counts into c.
func (c *Coverage) Merge(o *Coverage) {
	for s := 0; s < NumPageStates; s++ {
		for e := 0; e < NumProtoEvents; e++ {
			c[s][e] += o[s][e]
		}
	}
}

// Exercised returns how many legal table entries have nonzero counts,
// and the total number of legal entries.
func (c *Coverage) Exercised() (hit, legal int) {
	for s := 0; s < NumPageStates; s++ {
		for e := 0; e < NumProtoEvents; e++ {
			if protoTable[s][e] == nil {
				continue
			}
			legal++
			if c[s][e] > 0 {
				hit++
			}
		}
	}
	return hit, legal
}

// Unexercised lists the legal "State×Event" pairs with zero counts.
func (c *Coverage) Unexercised() []string {
	var out []string
	for s := 0; s < NumPageStates; s++ {
		for e := 0; e < NumProtoEvents; e++ {
			if protoTable[s][e] != nil && c[s][e] == 0 {
				out = append(out, fmt.Sprintf("%v×%v", PageProtoState(s), ProtoEvent(e)))
			}
		}
	}
	return out
}

// TransitionLegal reports whether the table has an entry for the pair.
func TransitionLegal(s PageProtoState, e ProtoEvent) bool {
	return protoTable[s][e] != nil
}

// TransitionName returns a legal pair's action name.
func TransitionName(s PageProtoState, e ProtoEvent) (string, bool) {
	if t := protoTable[s][e]; t != nil {
		return t.name, true
	}
	return "", false
}

// LegalTransitions counts the table's legal entries.
func LegalTransitions() int {
	n := 0
	for s := 0; s < NumPageStates; s++ {
		for e := 0; e < NumProtoEvents; e++ {
			if protoTable[s][e] != nil {
				n++
			}
		}
	}
	return n
}

// TransitionMatrix renders the full legality matrix, one line per state,
// as "State: Event=action ..." with events in declaration order. The
// golden test pins this string: changing the protocol's shape is a
// deliberate act, reviewed as a diff of this rendering.
func TransitionMatrix() string {
	var b strings.Builder
	for s := 0; s < NumPageStates; s++ {
		fmt.Fprintf(&b, "%v:", PageProtoState(s))
		for e := 0; e < NumProtoEvents; e++ {
			if t := protoTable[s][e]; t != nil {
				fmt.Fprintf(&b, " %v=%s", ProtoEvent(e), t.name)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TransitionActions lists the distinct action names in the table, sorted.
func TransitionActions() []string {
	seen := map[string]bool{}
	for s := 0; s < NumPageStates; s++ {
		for e := 0; e < NumProtoEvents; e++ {
			if t := protoTable[s][e]; t != nil {
				seen[t.name] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
