package asvm

import (
	"encoding/binary"
	"fmt"

	"asvm/internal/mesh"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// This file is the ASVM wire codec: the binary form of every protocol
// message, registered with the xport wire-codec registry so a real
// network transport (internal/xport/netx) can carry the same messages the
// simulated transports pass as Go values. The layout mirrors the paper's
// STS framing philosophy — a small fixed header of untyped fields,
// optionally followed by one page of contents — but is defined by this
// codec alone: all fields little-endian, one leading kind byte (the same
// xport.MsgKind the in-process dispatcher switches on), strings nowhere.
//
// Variable-length fields use a u32 count with ^0 as the nil sentinel, so
// a nil Data slice (metadata-only grants and offers) survives a round
// trip as nil, not as an 8 KB zero page — decode(encode(m)) == m exactly,
// which the fuzz target holds the codec to.

// wireNil is the length sentinel for a nil slice.
const wireNil = ^uint32(0)

// maxWireSlice bounds decoded slice lengths (defense against a corrupt or
// hostile length field allocating gigabytes). One count of page data plus
// generous headroom for reader lists.
const maxWireSlice = 4 * vm.PageSize

type wireWriter struct{ b []byte }

func (w *wireWriter) u8(v uint8)   { w.b = append(w.b, v) }
func (w *wireWriter) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wireWriter) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wireWriter) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *wireWriter) node(n mesh.NodeID) { w.u32(uint32(int32(n))) }
func (w *wireWriter) obj(id vm.ObjID) {
	w.node(id.Node)
	w.u64(id.Seq)
}
func (w *wireWriter) idx(i vm.PageIdx) { w.u64(uint64(i)) }
func (w *wireWriter) data(b []byte) {
	if b == nil {
		w.u32(wireNil)
		return
	}
	w.u32(uint32(len(b)))
	w.b = append(w.b, b...)
}
func (w *wireWriter) nodes(ns []mesh.NodeID) {
	if ns == nil {
		w.u32(wireNil)
		return
	}
	w.u32(uint32(len(ns)))
	for _, n := range ns {
		w.node(n)
	}
}

type wireReader struct {
	b   []byte
	bad bool
}

func (r *wireReader) take(n int) []byte {
	if r.bad || n < 0 || n > len(r.b) {
		r.bad = true
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}
func (r *wireReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (r *wireReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
func (r *wireReader) boolean() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		// Any other byte is corruption, not a spelling of true.
		r.bad = true
		return false
	}
}
func (r *wireReader) node() mesh.NodeID { return mesh.NodeID(int32(r.u32())) }
func (r *wireReader) obj() vm.ObjID {
	n := r.node()
	return vm.ObjID{Node: n, Seq: r.u64()}
}
func (r *wireReader) idx() vm.PageIdx { return vm.PageIdx(r.u64()) }
func (r *wireReader) data() []byte {
	n := r.u32()
	if n == wireNil {
		return nil
	}
	if n > maxWireSlice {
		r.bad = true
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}
func (r *wireReader) nodes() []mesh.NodeID {
	n := r.u32()
	if n == wireNil {
		return nil
	}
	if n > maxWireSlice/4 {
		r.bad = true
		return nil
	}
	out := make([]mesh.NodeID, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, r.node())
	}
	if r.bad {
		return nil
	}
	return out
}

// wireCodec implements xport.WireCodec for the ASVM channel. Stateless, so
// one value serves every goroutine.
type wireCodec struct{}

// WireCodec returns the codec netx uses for the "asvm" channel. It is
// also registered at package init, so merely importing asvm makes the
// channel wire-capable.
func WireCodec() xport.WireCodec { return wireCodec{} }

func init() {
	xport.RegisterWireCodec(Proto.Name(), wireCodec{})
}

// AppendMsg implements xport.WireCodec. Pointer and value forms both
// encode (the hot kinds travel as pooled pointers in-process; a caller
// holding a value is equally valid).
func (wireCodec) AppendMsg(dst []byte, m interface{}) ([]byte, error) {
	w := wireWriter{b: dst}
	switch v := m.(type) {
	case *accessReq:
		encodeAccessReq(&w, *v)
	case accessReq:
		encodeAccessReq(&w, v)
	case *grantMsg:
		encodeGrant(&w, *v)
	case grantMsg:
		encodeGrant(&w, v)
	case *invalMsg:
		encodeInval(&w, *v)
	case invalMsg:
		encodeInval(&w, v)
	case *invalAck:
		encodeInvalAck(&w, *v)
	case invalAck:
		encodeInvalAck(&w, v)
	case *ownerUpdate:
		encodeOwnerUpdate(&w, *v)
	case ownerUpdate:
		encodeOwnerUpdate(&w, v)
	case ownerXfer:
		w.u8(uint8(msgOwnerXfer))
		w.obj(v.Obj)
		w.idx(v.Idx)
		w.nodes(v.Readers)
		w.u64(v.Version)
		w.u64(v.Seq)
		w.node(v.From)
	case ownerXferAck:
		w.u8(uint8(msgOwnerXferAck))
		w.obj(v.Obj)
		w.idx(v.Idx)
		w.u64(v.Seq)
		w.boolean(v.Accepted)
		w.node(v.From)
	case pageOffer:
		w.u8(uint8(msgPageOffer))
		w.obj(v.Obj)
		w.idx(v.Idx)
		w.data(v.Data)
		w.u64(v.Version)
		w.u64(v.Seq)
		w.node(v.From)
	case pageOfferAck:
		w.u8(uint8(msgPageOfferAck))
		w.obj(v.Obj)
		w.idx(v.Idx)
		w.u64(v.Seq)
		w.boolean(v.Accepted)
		w.node(v.From)
	case toPager:
		w.u8(uint8(msgToPager))
		w.obj(v.Obj)
		w.idx(v.Idx)
		w.data(v.Data)
		w.boolean(v.Dirty)
		w.boolean(v.Lost)
		w.u64(v.Seq)
		w.node(v.From)
	case toPagerAck:
		w.u8(uint8(msgToPagerAck))
		w.obj(v.Obj)
		w.idx(v.Idx)
		w.u64(v.Seq)
	case pushScanAck:
		w.u8(uint8(msgPushScanAck))
		w.obj(v.SrcObj)
		w.idx(v.Idx)
		w.boolean(v.Found)
	default:
		return dst, fmt.Errorf("asvm wire: cannot encode %T", m)
	}
	return w.b, nil
}

func encodeAccessReq(w *wireWriter, v accessReq) {
	w.u8(uint8(msgAccessReq))
	w.obj(v.Obj)
	w.obj(v.Target)
	w.idx(v.Idx)
	w.u8(uint8(v.Want))
	w.u8(uint8(v.ReqKind))
	w.node(v.Origin)
	w.u32(uint32(int32(v.Hops)))
	w.boolean(v.Scanning)
	w.boolean(v.ScannedAll)
	w.boolean(v.ForHome)
	w.node(v.ScanStart)
	w.node(v.LastFrom)
}

func encodeGrant(w *wireWriter, v grantMsg) {
	w.u8(uint8(msgGrant))
	w.obj(v.Obj)
	w.idx(v.Idx)
	w.u8(uint8(v.Lock))
	w.data(v.Data)
	w.boolean(v.HasData)
	w.boolean(v.Fresh)
	w.boolean(v.Ownership)
	w.nodes(v.Readers)
	w.u64(v.Version)
	w.boolean(v.Retry)
	w.boolean(v.AtPagerCopy)
	w.boolean(v.Unavailable)
	w.node(v.From)
}

func encodeInval(w *wireWriter, v invalMsg) {
	w.u8(uint8(msgInval))
	w.obj(v.Obj)
	w.idx(v.Idx)
	w.node(v.NewOwner)
	w.u64(v.Seq)
	w.node(v.From)
}

func encodeInvalAck(w *wireWriter, v invalAck) {
	w.u8(uint8(msgInvalAck))
	w.obj(v.Obj)
	w.idx(v.Idx)
	w.u64(v.Seq)
	w.node(v.From)
}

func encodeOwnerUpdate(w *wireWriter, v ownerUpdate) {
	w.u8(uint8(msgOwnerUpdate))
	w.obj(v.Obj)
	w.idx(v.Idx)
	w.node(v.Owner)
	w.boolean(v.Paged)
}

// DecodeMsg implements xport.WireCodec. The returned form is exactly what
// Node.handle expects: the pooled hot kinds come back as fresh pointers
// (each decode allocates its own box, so pooling at the dispatcher stays
// exactly-once safe), the rest as values.
func (wireCodec) DecodeMsg(b []byte) (interface{}, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("asvm wire: empty message")
	}
	r := wireReader{b: b[1:]}
	var m interface{}
	switch xport.MsgKind(b[0]) {
	case msgAccessReq:
		v := &accessReq{}
		v.Obj = r.obj()
		v.Target = r.obj()
		v.Idx = r.idx()
		v.Want = vm.Prot(r.u8())
		v.ReqKind = reqKind(r.u8())
		v.Origin = r.node()
		v.Hops = int(int32(r.u32()))
		v.Scanning = r.boolean()
		v.ScannedAll = r.boolean()
		v.ForHome = r.boolean()
		v.ScanStart = r.node()
		v.LastFrom = r.node()
		m = v
	case msgGrant:
		v := &grantMsg{}
		v.Obj = r.obj()
		v.Idx = r.idx()
		v.Lock = vm.Prot(r.u8())
		v.Data = r.data()
		v.HasData = r.boolean()
		v.Fresh = r.boolean()
		v.Ownership = r.boolean()
		v.Readers = r.nodes()
		v.Version = r.u64()
		v.Retry = r.boolean()
		v.AtPagerCopy = r.boolean()
		v.Unavailable = r.boolean()
		v.From = r.node()
		m = v
	case msgInval:
		v := &invalMsg{}
		v.Obj = r.obj()
		v.Idx = r.idx()
		v.NewOwner = r.node()
		v.Seq = r.u64()
		v.From = r.node()
		m = v
	case msgInvalAck:
		v := &invalAck{}
		v.Obj = r.obj()
		v.Idx = r.idx()
		v.Seq = r.u64()
		v.From = r.node()
		m = v
	case msgOwnerUpdate:
		v := &ownerUpdate{}
		v.Obj = r.obj()
		v.Idx = r.idx()
		v.Owner = r.node()
		v.Paged = r.boolean()
		m = v
	case msgOwnerXfer:
		var v ownerXfer
		v.Obj = r.obj()
		v.Idx = r.idx()
		v.Readers = r.nodes()
		v.Version = r.u64()
		v.Seq = r.u64()
		v.From = r.node()
		m = v
	case msgOwnerXferAck:
		var v ownerXferAck
		v.Obj = r.obj()
		v.Idx = r.idx()
		v.Seq = r.u64()
		v.Accepted = r.boolean()
		v.From = r.node()
		m = v
	case msgPageOffer:
		var v pageOffer
		v.Obj = r.obj()
		v.Idx = r.idx()
		v.Data = r.data()
		v.Version = r.u64()
		v.Seq = r.u64()
		v.From = r.node()
		m = v
	case msgPageOfferAck:
		var v pageOfferAck
		v.Obj = r.obj()
		v.Idx = r.idx()
		v.Seq = r.u64()
		v.Accepted = r.boolean()
		v.From = r.node()
		m = v
	case msgToPager:
		var v toPager
		v.Obj = r.obj()
		v.Idx = r.idx()
		v.Data = r.data()
		v.Dirty = r.boolean()
		v.Lost = r.boolean()
		v.Seq = r.u64()
		v.From = r.node()
		m = v
	case msgToPagerAck:
		var v toPagerAck
		v.Obj = r.obj()
		v.Idx = r.idx()
		v.Seq = r.u64()
		m = v
	case msgPushScanAck:
		var v pushScanAck
		v.SrcObj = r.obj()
		v.Idx = r.idx()
		v.Found = r.boolean()
		m = v
	default:
		return nil, fmt.Errorf("asvm wire: unknown kind %d", b[0])
	}
	if r.bad {
		return nil, fmt.Errorf("asvm wire: truncated or corrupt kind-%d message", b[0])
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("asvm wire: %d trailing bytes after kind-%d message", len(r.b), b[0])
	}
	return m, nil
}

var _ xport.WireCodec = wireCodec{}
