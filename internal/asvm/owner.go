package asvm

import (
	"asvm/internal/sim"
	"fmt"

	"asvm/internal/vm"
)

// handleAsOwner runs the page state machine (Figure 7) at the page owner.
// Operations on one page are serialized: a busy page queues requests.
func (in *Instance) handleAsOwner(req accessReq) {
	ps := in.pages[req.Idx]
	if ps == nil {
		// Ownership left between queueing and processing: chase it.
		in.forward(req)
		return
	}
	if ps.busy || (ps.held && req.Origin != in.self()) {
		ps.queue = append(ps.queue, req)
		return
	}
	in.process(req, ps)
}

// process executes one request at the owner. It must be entered with
// ps.busy == false and leaves through done().
func (in *Instance) process(req accessReq, ps *pageState) {
	ps.busy = true
	idx := req.Idx
	done := func() {
		in.clearBusy(idx, ps)
		in.drainQueue(idx, ps)
	}
	switch req.ReqKind {
	case kindPushScan:
		// We own this page of the copy domain: the push is unnecessary.
		in.send(req.Origin, pushScanAck{SrcObj: req.Target, Idx: idx, Found: true})
		done()
	case kindPull:
		in.servePull(req, ps, done)
	case kindAccess:
		if req.Want == vm.ProtRead {
			in.serveRead(req, ps, done)
		} else {
			in.serveWrite(req, ps, done)
		}
	default:
		panic(fmt.Sprintf("asvm: unknown request kind %d", req.ReqKind))
	}
}

// drainQueue continues with queued work after an operation completes. If
// ownership moved away, everything queued chases the new owner.
func (in *Instance) drainQueue(idx vm.PageIdx, ps *pageState) {
	if len(ps.queue) == 0 {
		return
	}
	if in.pages[idx] == nil {
		q := ps.queue
		ps.queue = nil
		for _, r := range q {
			in.forward(r)
		}
		return
	}
	next := ps.queue[0]
	if ps.held && next.Origin != in.self() {
		return // range-locked: foreign requests wait for ReleaseRange
	}
	ps.queue = ps.queue[1:]
	in.process(next, ps)
}

// serveRead is transition 5: grant read access, remember the reader.
func (in *Instance) serveRead(req accessReq, ps *pageState, done func()) {
	pg := in.o.Pages[req.Idx]
	if pg == nil {
		// Shouldn't happen (owners keep the page resident) but recover by
		// chasing forwarding.
		delete(in.pages, req.Idx)
		in.forward(req)
		done()
		return
	}
	in.nd.Ctr.V[sim.CtrReadGrants]++
	ps.readers[req.Origin] = true
	in.send(req.Origin, grantMsg{
		Obj: req.Target, Idx: req.Idx, Lock: vm.ProtRead,
		Data: copyData(pg.Data), HasData: true, From: in.self(),
	})
	// Single writer or multiple readers: handing out a read copy
	// downgrades our own access too; our next write re-enters the state
	// machine as transition 7 and invalidates the readers.
	if pg.Lock > vm.ProtRead {
		in.nd.K.LockRequest(in.o, req.Idx, vm.ProtRead, false, nil)
	}
	done()
}

// serveWrite is transitions 2/3/4/6/7: push if a delayed copy needs the
// old contents, invalidate all readers, then grant write (with ownership
// when the requester is remote).
func (in *Instance) serveWrite(req accessReq, ps *pageState, done func()) {
	idx := req.Idx
	in.pushIfNeeded(ps, idx, func() {
		upgrade := ps.readers[req.Origin]
		in.invalidateReaders(ps, idx, req.Origin, func() {
			if req.Origin == in.self() {
				// Transition 7: our own upgrade; we stay owner.
				in.nd.Ctr.V[sim.CtrSelfUpgrades]++
				in.nd.K.LockGrant(in.o, idx, vm.ProtWrite)
				if pg := in.o.Pages[idx]; pg != nil {
					pg.Dirty = true
				}
				done()
				return
			}
			// Transitions 4/6: grant write and transfer ownership.
			pg := in.o.Pages[idx]
			g := grantMsg{
				Obj: req.Target, Idx: idx, Lock: vm.ProtWrite,
				Ownership: true, Version: ps.version, From: in.self(),
			}
			if !upgrade {
				if pg == nil {
					// Our copy vanished mid-protocol (cancelled eviction
					// lost the race): fall back to retrying the request.
					g.Retry = true
				} else {
					g.Data = copyData(pg.Data)
					g.HasData = true
				}
			}
			in.nd.Ctr.V[sim.CtrWriteGrants]++
			in.trace("t xfer: node %d grants ownership of %v p%d to %d (upgrade=%v)", in.self(), in.info.ID, idx, req.Origin, upgrade)
			in.send(req.Origin, g)
			if g.Retry {
				done()
				return
			}
			// Drop our copy; the contents just left with the grant.
			in.transferring = true
			in.nd.K.LockRequest(in.o, idx, vm.ProtNone, false, nil)
			in.transferring = false
			delete(in.pages, idx)
			in.dyn.Put(idx, req.Origin)
			done()
		})
	})
}

// servePull answers a request that originated in a copy object and was
// forwarded into this (source) domain. If the page has already been pushed
// for the newest copy, its current contents may postdate the copy — the
// requester must retry in the copy domain, where the pushed page now has
// an owner (the paper's push/pull synchronization).
func (in *Instance) servePull(req accessReq, ps *pageState, done func()) {
	if in.info.Copy != nil && ps.version == in.info.Version {
		in.nd.Ctr.V[sim.CtrPullRetries]++
		in.send(req.Origin, grantMsg{Obj: req.Target, Idx: req.Idx, Retry: true, From: in.self()})
		done()
		return
	}
	pg := in.o.Pages[req.Idx]
	if pg == nil {
		delete(in.pages, req.Idx)
		in.forward(req)
		done()
		return
	}
	// The contents are still those the copy snapshotted (no push has
	// happened, so no write has happened since the copy was made): supply
	// them into the copy object at the origin, which becomes their owner
	// there. Version 0 keeps the copy's own future pushes armed.
	in.nd.Ctr.V[sim.CtrPullGrants]++
	in.send(req.Origin, grantMsg{
		Obj: req.Target, Idx: req.Idx, Lock: req.Want,
		Data: copyData(pg.Data), HasData: true,
		Ownership: true, Version: 0, From: in.self(),
	})
	done()
}
