package asvm

import (
	"asvm/internal/sim"
	"fmt"

	"asvm/internal/vm"
)

// actAccessReq routes one request through the page state machine: at a
// non-owner it re-enters the redirector, at an owner at rest it is served,
// and at a busy owner it queues. (fwdReq/serveReq/queueReq)
func actAccessReq(in *Instance, idx vm.PageIdx, m interface{}) {
	in.handleAsOwner(*m.(*accessReq))
}

// handleAsOwner runs the page state machine (Figure 7) at the page owner.
// Operations on one page are serialized: a busy page queues requests.
func (in *Instance) handleAsOwner(req accessReq) {
	sl := &in.slots[req.Idx]
	if !sl.state.Owner() {
		// Ownership left between queueing and processing (or never arrived
		// here): chase it.
		in.forward(req)
		return
	}
	if sl.state.Busy() || (sl.held && req.Origin != in.self()) {
		sl.queue = append(sl.queue, req)
		return
	}
	in.process(req)
}

// process executes one request at the owner. It must be entered with the
// page at rest; the page is Serving (or a deeper busy state) until the
// serve path reaches opDone.
func (in *Instance) process(req accessReq) {
	idx := req.Idx
	in.setState(idx, StServing)
	switch req.ReqKind {
	case kindPushScan:
		// We own this page of the copy domain: the push is unnecessary.
		in.send(req.Origin, pushScanAck{SrcObj: req.Target, Idx: idx, Found: true})
		in.opDone(idx)
	case kindPull:
		in.servePull(req)
	case kindAccess:
		if req.Want == vm.ProtRead {
			in.serveRead(req)
		} else {
			in.serveWrite(req)
		}
	default:
		panic(fmt.Sprintf("asvm: unknown request kind %d", req.ReqKind))
	}
}

// opDone ends one owner operation: quiesce the busy window, then continue
// with queued work. Every serve path terminates here (possibly from an
// async continuation).
func (in *Instance) opDone(idx vm.PageIdx) {
	in.quiesce(idx)
	in.drainQueue(idx)
}

// drainQueue continues with queued work after an operation completes. If
// ownership moved away, everything queued chases the new owner.
func (in *Instance) drainQueue(idx vm.PageIdx) {
	sl := &in.slots[idx]
	if len(sl.queue) == 0 {
		return
	}
	if !sl.state.Owner() {
		q := sl.queue
		sl.queue = nil
		for _, r := range q {
			in.forward(r)
		}
		return
	}
	next := sl.queue[0]
	if sl.held && next.Origin != in.self() {
		return // range-locked: foreign requests wait for ReleaseRange
	}
	sl.queue = sl.queue[1:]
	in.process(next)
}

// serveRead is transition 5: grant read access, remember the reader.
func (in *Instance) serveRead(req accessReq) {
	pg := in.o.Pages[req.Idx]
	if pg == nil {
		// Shouldn't happen (owners keep the page resident) but recover by
		// chasing forwarding.
		in.leaveOwner(req.Idx)
		in.forward(req)
		in.opDone(req.Idx)
		return
	}
	if req.Origin == in.self() && in.nd.crashEra {
		// A crash-era re-driven fault chased back to ourselves after the
		// original resolution made us owner: the kernel already holds the
		// page, and a node must never appear on its own reader list.
		in.nd.K.LockGrant(in.o, req.Idx, vm.ProtRead)
		in.opDone(req.Idx)
		return
	}
	in.nd.Ctr.V[sim.CtrReadGrants]++
	in.slots[req.Idx].readers.Add(req.Origin)
	in.sendGrant(req.Origin, grantMsg{
		Obj: req.Target, Idx: req.Idx, Lock: vm.ProtRead,
		Data: copyData(pg.Data), HasData: true, From: in.self(),
	})
	// Single writer or multiple readers: handing out a read copy
	// downgrades our own access too; our next write re-enters the state
	// machine as transition 7 and invalidates the readers.
	if pg.Lock > vm.ProtRead {
		in.nd.K.LockRequest(in.o, req.Idx, vm.ProtRead, false, nil)
	}
	in.opDone(req.Idx)
}

// serveWrite is transitions 2/3/4/6/7: push if a delayed copy needs the
// old contents, invalidate all readers, then grant write (with ownership
// when the requester is remote).
func (in *Instance) serveWrite(req accessReq) {
	idx := req.Idx
	in.pushIfNeeded(idx, func() {
		sl := &in.slots[idx]
		upgrade := sl.readers.Contains(req.Origin)
		in.invalidateReaders(idx, req.Origin, func() {
			if req.Origin == in.self() {
				// Transition 7: our own upgrade; we stay owner.
				in.nd.Ctr.V[sim.CtrSelfUpgrades]++
				in.nd.K.LockGrant(in.o, idx, vm.ProtWrite)
				if pg := in.o.Pages[idx]; pg != nil {
					pg.Dirty = true
				}
				in.opDone(idx)
				return
			}
			// Transitions 4/6: grant write and transfer ownership.
			pg := in.o.Pages[idx]
			g := grantMsg{
				Obj: req.Target, Idx: idx, Lock: vm.ProtWrite,
				Ownership: true, Version: sl.version, From: in.self(),
			}
			if !upgrade {
				if pg == nil {
					// Our copy vanished mid-protocol (cancelled eviction
					// lost the race): fall back to retrying the request.
					g.Retry = true
				} else {
					g.Data = copyData(pg.Data)
					g.HasData = true
				}
			}
			in.nd.Ctr.V[sim.CtrWriteGrants]++
			in.trace("t xfer: node %d grants ownership of %v p%d to %d (upgrade=%v)", in.self(), in.info.ID, idx, req.Origin, upgrade)
			in.sendGrant(req.Origin, g)
			if g.Retry {
				in.opDone(idx)
				return
			}
			// Drop our copy; the contents just left with the grant.
			in.transferring = true
			in.nd.K.LockRequest(in.o, idx, vm.ProtNone, false, nil)
			in.transferring = false
			in.leaveOwner(idx)
			in.dyn.Put(idx, req.Origin)
			in.opDone(idx)
		})
	})
}

// servePull answers a request that originated in a copy object and was
// forwarded into this (source) domain. If the page has already been pushed
// for the newest copy, its current contents may postdate the copy — the
// requester must retry in the copy domain, where the pushed page now has
// an owner (the paper's push/pull synchronization).
func (in *Instance) servePull(req accessReq) {
	sl := &in.slots[req.Idx]
	if in.info.Copy != nil && sl.version == in.info.Version {
		in.nd.Ctr.V[sim.CtrPullRetries]++
		in.sendGrant(req.Origin, grantMsg{Obj: req.Target, Idx: req.Idx, Retry: true, From: in.self()})
		in.opDone(req.Idx)
		return
	}
	pg := in.o.Pages[req.Idx]
	if pg == nil {
		in.leaveOwner(req.Idx)
		in.forward(req)
		in.opDone(req.Idx)
		return
	}
	// The contents are still those the copy snapshotted (no push has
	// happened, so no write has happened since the copy was made): supply
	// them into the copy object at the origin, which becomes their owner
	// there. Version 0 keeps the copy's own future pushes armed.
	in.nd.Ctr.V[sim.CtrPullGrants]++
	in.sendGrant(req.Origin, grantMsg{
		Obj: req.Target, Idx: req.Idx, Lock: req.Want,
		Data: copyData(pg.Data), HasData: true,
		Ownership: true, Version: 0, From: in.self(),
	})
	in.opDone(req.Idx)
}
