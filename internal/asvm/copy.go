package asvm

import (
	"fmt"

	"asvm/internal/sim"
	"asvm/internal/vm"
)

// This file implements ASVM's cross-node delayed copy support (paper
// §3.7): version-counted pushes with push scans, and pulls that traverse
// local shadow chains via each copy object's peer (home) node.

// pushIfNeeded runs before any write grant: if a copy of the domain was
// made since this page was last pushed, the pre-write contents must reach
// the newest copy domain first. The push itself is the EvPushStart
// transition (Serving → PushWait); an up-to-date page continues
// synchronously without leaving Serving.
func (in *Instance) pushIfNeeded(idx vm.PageIdx, cont func()) {
	if in.info.Copy == nil || in.slots[idx].version == in.info.Version {
		cont()
		return
	}
	in.dispatch(EvPushStart, idx, cont)
}

// actPushStart scans the copy domain for an existing page owner before
// pushing the pre-write contents (paper §3.7.2); the page waits in
// PushWait for the scan's answer. (pushScan)
func actPushStart(in *Instance, idx vm.PageIdx, m interface{}) {
	cont := m.(func())
	cInst := in.nd.instances[in.info.Copy.ID]
	if cInst == nil {
		panic(fmt.Sprintf("asvm: node %d shares %v but has no instance of its copy %v",
			in.self(), in.info.ID, in.info.Copy.ID))
	}
	if in.pendPush[idx] != nil {
		panic(fmt.Sprintf("asvm: concurrent pushes for %v page %d", in.info.ID, idx))
	}
	in.nd.Ctr.V[sim.CtrPushesStarted]++
	in.pendPush[idx] = func(found bool) {
		if !found {
			// No owner in the copy domain: insert the pre-write contents
			// into our local representation of the copy object
			// (data_supply in push mode) and own them there.
			pg := in.o.Pages[idx]
			if pg == nil {
				panic(fmt.Sprintf("asvm: push source page %d vanished", idx))
			}
			in.nd.K.DataSupply(in.o, idx, pg.Data, vm.ProtRead, true)
			if cpg := cInst.o.Pages[idx]; cpg != nil {
				cpg.Dirty = true
				cpg.Lock = vm.ProtRead
			}
			cInst.installOwner(idx, nil, 0)
			cInst.announceOwner(idx)
			in.nd.Ctr.V[sim.CtrPushesInstalled]++
		} else {
			in.nd.Ctr.V[sim.CtrPushesCancelled]++
		}
		in.slots[idx].version = in.info.Version
		cont()
	}
	in.setState(idx, StPushWait)
	// Push scan: does the copy domain already have an owner for the page?
	cInst.forward(accessReq{
		Obj: in.info.Copy.ID, Target: in.info.ID, Idx: idx,
		ReqKind: kindPushScan, Origin: in.self(), LastFrom: in.self(),
	})
}

// homePushScan resolves a push scan that found no owner: if the copy
// domain's backing (home store/pager) already has the contents the push is
// unnecessary; otherwise the page slot is reserved for the pusher.
func (in *Instance) homePushScan(req accessReq, hs *homeState) {
	found := hs.granted || hs.atPager
	if !found {
		// Reserve: the pusher is about to own this page.
		hs.granted = true
		in.dyn.Put(req.Idx, req.Origin)
	} else if hs.granted && !hs.atPager {
		// An owner exists but the scan missed it (in-flight transfer);
		// answering found=true is safe: the contents exist in the domain.
		in.nd.Ctr.V[sim.CtrPushScanInflight]++
	}
	in.send(req.Origin, pushScanAck{SrcObj: req.Target, Idx: req.Idx, Found: found})
}

// actPushScanAck resumes the pushing owner: the page returns to Serving
// and the write grant proceeds (push installed or cancelled). (pushAck)
func actPushScanAck(in *Instance, idx vm.PageIdx, m interface{}) {
	msg := m.(pushScanAck)
	cb := in.pendPush[idx]
	if cb == nil {
		panic(fmt.Sprintf("asvm: stray push scan ack for %v page %d", msg.SrcObj, idx))
	}
	delete(in.pendPush, idx)
	in.setState(idx, StServing)
	cb(msg.Found)
}

// pullLocal resolves a request at a copy domain's home (= peer) node: the
// VM system traverses the local shadow chain (memory_object_pull_request);
// a managed shadow object re-enters the forwarding machinery in the source
// domain with the target unchanged (paper §3.7.3, Figure 9).
func (in *Instance) pullLocal(req accessReq, hs *homeState) {
	if hs.atPager {
		// The copy page went out to this domain's backing store.
		hs.granted = true
		hs.atPager = false
		in.dyn.Put(req.Idx, req.Origin)
		in.homePagerIn(req.Idx, func(data []byte, found bool) {
			if !found {
				panic(fmt.Sprintf("asvm: atPager page %d missing from store", req.Idx))
			}
			in.sendGrant(req.Origin, grantMsg{
				Obj: req.Target, Idx: req.Idx, Lock: req.Want,
				Data: copyData(data), HasData: true, Ownership: true,
				From: in.self(),
			})
		})
		return
	}
	in.nd.Ctr.V[sim.CtrPulls]++
	// The pull traverses the local shadow chain through the EMMI
	// (pull_request/pull_completed): charge one interface crossing.
	in.nd.Eng.Schedule(in.nd.K.Costs.EMMILocal, func() {
		in.pullNow(req, hs)
	})
}

func (in *Instance) pullNow(req accessReq, hs *homeState) {
	in.nd.K.PullRequest(in.o, req.Idx, func(res vm.PullResult, data []byte, shadow *vm.Object) {
		switch res {
		case vm.PullData:
			hs.granted = true
			in.dyn.Put(req.Idx, req.Origin)
			in.sendGrant(req.Origin, grantMsg{
				Obj: req.Target, Idx: req.Idx, Lock: req.Want,
				Data: copyData(data), HasData: true,
				Ownership: true, Version: 0, From: in.self(),
			})
		case vm.PullZeroFill:
			hs.granted = true
			in.dyn.Put(req.Idx, req.Origin)
			in.sendGrant(req.Origin, grantMsg{
				Obj: req.Target, Idx: req.Idx, Lock: req.Want,
				Fresh: true, Ownership: true, From: in.self(),
			})
		case vm.PullAskManager:
			srcInst, ok := shadow.Mgr.(*Instance)
			if !ok {
				// An unmanaged shadow holding the page at the default
				// pager: fault it in locally, then retry the pull.
				in.pullThroughLocalFault(req, hs, shadow)
				return
			}
			// Reserve at this home: the origin will own the page once the
			// source domain answers.
			hs.granted = true
			in.dyn.Put(req.Idx, req.Origin)
			fwd := req
			fwd.Obj = srcInst.info.ID
			fwd.ReqKind = kindPull
			fwd.Scanning = false
			fwd.Hops = 0
			fwd.LastFrom = in.self()
			srcInst.forward(fwd)
		}
	})
}

// pullThroughLocalFault pages an unmanaged shadow page back in (it sits at
// the default pager) and then serves the pull from it.
func (in *Instance) pullThroughLocalFault(req accessReq, hs *homeState, shadow *vm.Object) {
	in.nd.Eng.Spawn("asvm-pullin", func(p *sim.Proc) {
		if _, err := in.nd.K.FaultObject(p, shadow, req.Idx, vm.ProtRead); err != nil {
			panic(fmt.Sprintf("asvm: pull page-in failed: %v", err))
		}
		in.pullLocal(req, hs)
	})
}
