package asvm

import (
	"fmt"
	"os"
)

// debugTrace enables verbose protocol tracing: ownership grants, transfers
// and fresh grants print one line each. It is wired to the ASVM_TRACE
// environment variable so a failing simulation can be replayed with full
// visibility (runs are deterministic, so the trace is too).
var debugTrace = os.Getenv("ASVM_TRACE") != ""

func trace(format string, args ...interface{}) {
	if debugTrace {
		fmt.Printf(format+"\n", args...)
	}
}
