package asvm

import (
	"fmt"
	"os"

	"asvm/internal/mesh"
)

// TraceBuf is a bounded per-node ring buffer of protocol trace lines:
// ownership grants, transfers and fresh grants record one line each. It
// replaces the old process-wide stdout tracing, so parallel experiment
// cells cannot interleave output, and a schedule explorer can attach each
// node's recent history to a failing run. Recording is off by default (one
// bool check per trace site); it turns on when the ASVM_TRACE environment
// variable is set at node creation — which also echoes lines to stdout,
// preserving the old interactive behaviour — or when a checker calls
// Enable.
type TraceBuf struct {
	node  mesh.NodeID
	lines []string
	next  int // overwrite cursor, valid once the buffer is full
	total uint64
	on    bool
	echo  bool
}

// traceBufCap bounds each node's retained history. Failing schedules are
// short (bounded scenarios, shrunk reproducers), so the tail is all that
// matters.
const traceBufCap = 64

func newTraceBuf(node mesh.NodeID) *TraceBuf {
	t := &TraceBuf{node: node}
	if os.Getenv("ASVM_TRACE") != "" {
		t.on, t.echo = true, true
	}
	return t
}

// Enable turns on recording without the stdout echo.
func (t *TraceBuf) Enable() { t.on = true }

// Enabled reports whether trace lines are being recorded.
func (t *TraceBuf) Enabled() bool { return t.on }

// Addf records one formatted line, overwriting the oldest once full.
func (t *TraceBuf) Addf(format string, args ...interface{}) {
	if !t.on {
		return
	}
	line := fmt.Sprintf(format, args...)
	if t.echo {
		fmt.Printf("[n%d] %s\n", t.node, line)
	}
	t.total++
	if len(t.lines) < traceBufCap {
		t.lines = append(t.lines, line)
		return
	}
	t.lines[t.next] = line
	t.next = (t.next + 1) % traceBufCap
}

// Total returns how many lines have been recorded over the buffer's
// lifetime (including ones already overwritten).
func (t *TraceBuf) Total() uint64 { return t.total }

// Lines returns the retained lines, oldest first, as a fresh slice.
func (t *TraceBuf) Lines() []string {
	if len(t.lines) < traceBufCap {
		return append([]string(nil), t.lines...)
	}
	out := make([]string, 0, traceBufCap)
	out = append(out, t.lines[t.next:]...)
	out = append(out, t.lines[:t.next]...)
	return out
}

// trace records one line, stamped with virtual time, into the owning
// node's buffer.
func (in *Instance) trace(format string, args ...interface{}) {
	if !in.nd.Trace.on {
		return
	}
	in.nd.Trace.Addf("@%d "+format, append([]interface{}{int64(in.nd.Eng.Now())}, args...)...)
}
