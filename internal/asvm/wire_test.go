package asvm

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"testing"

	"asvm/internal/mesh"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// wireSpecimens is one representative value per wire kind, exercising
// every field: non-zero IDs, set and unset flags, nil and non-nil slices.
// The hot kinds appear in the pointer form Node.handle dispatches on.
func wireSpecimens() []interface{} {
	return []interface{}{
		&accessReq{
			Obj: vm.ObjID{Node: 1, Seq: 7}, Target: vm.ObjID{Node: 2, Seq: 9},
			Idx: 3, Want: vm.ProtWrite, ReqKind: kindPull, Origin: 4, Hops: 5,
			Scanning: true, ScannedAll: false, ForHome: true, ScanStart: 6, LastFrom: 2,
		},
		&grantMsg{
			Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Lock: vm.ProtRead,
			Data: []byte{0xde, 0xad, 0xbe, 0xef}, HasData: true, Fresh: false,
			Ownership: true, Readers: []mesh.NodeID{1, 3}, Version: 11,
			Retry: false, AtPagerCopy: true, Unavailable: false, From: 2,
		},
		&grantMsg{ // metadata-only grant: nil Data, nil Readers must survive
			Obj: vm.ObjID{Node: 0, Seq: 1}, Idx: 0, Lock: vm.ProtWrite,
			Ownership: true, Version: 2, Retry: true, From: 0,
		},
		&invalMsg{Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, NewOwner: 2, Seq: 41, From: 1},
		&invalAck{Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Seq: 41, From: 3},
		&ownerUpdate{Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Owner: 2, Paged: true},
		ownerXfer{
			Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3,
			Readers: []mesh.NodeID{2}, Version: 5, Seq: 13, From: 0,
		},
		ownerXferAck{Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Seq: 13, Accepted: true, From: 2},
		pageOffer{
			Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3,
			Data: []byte{1, 2, 3}, Version: 5, Seq: 17, From: 0,
		},
		pageOfferAck{Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Seq: 17, Accepted: false, From: 3},
		toPager{
			Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3,
			Data: []byte{9, 8}, Dirty: true, Lost: false, Seq: 19, From: 2,
		},
		toPager{ // lost-page notice: no contents at all
			Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 4, Lost: true, Seq: 23, From: 3,
		},
		toPagerAck{Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Seq: 19},
		pushScanAck{SrcObj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Found: true},
	}
}

// Every kind must survive encode→decode unchanged, in the exact Go form
// (pointer vs value) the dispatcher expects.
func TestWireRoundTrip(t *testing.T) {
	c := WireCodec()
	for _, m := range wireSpecimens() {
		enc, err := c.AppendMsg(nil, m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		got, err := c.DecodeMsg(enc)
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip changed %T:\n  sent %+v\n  got  (%T) %+v", m, m, got, got)
		}
	}
}

// Value forms of the hot kinds must encode identically to their pointer
// forms (a caller holding either is valid).
func TestWireValueFormEncodes(t *testing.T) {
	c := WireCodec()
	ptr := &invalMsg{Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, NewOwner: 2, Seq: 41, From: 1}
	a, err := c.AppendMsg(nil, ptr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.AppendMsg(nil, *ptr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("pointer and value forms encode differently:\n  %x\n  %x", a, b)
	}
}

// AppendMsg must extend dst in place, not replace it.
func TestWireAppendsToDst(t *testing.T) {
	c := WireCodec()
	prefix := []byte{0xAA, 0xBB}
	out, err := c.AppendMsg(append([]byte(nil), prefix...), pushScanAck{Found: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, prefix) {
		t.Fatalf("AppendMsg dropped dst prefix: %x", out)
	}
}

// Golden frames: the byte-for-byte wire form of each kind is a
// compatibility contract between asvmd processes — a codec change that
// alters these breaks mixed-version meshes and must be deliberate (bump
// netx's wire version alongside).
func TestWireGoldenFrames(t *testing.T) {
	c := WireCodec()
	golden := []struct {
		name string
		msg  interface{}
		hex  string
	}{
		{
			"accessReq",
			&accessReq{
				Obj: vm.ObjID{Node: 1, Seq: 7}, Target: vm.ObjID{Node: 2, Seq: 9},
				Idx: 3, Want: vm.ProtWrite, ReqKind: kindPull, Origin: 4, Hops: 5,
				Scanning: true, ForHome: true, ScanStart: 6, LastFrom: 2,
			},
			"00" + // kind
				"01000000" + "0700000000000000" + // Obj
				"02000000" + "0900000000000000" + // Target
				"0300000000000000" + // Idx
				"02" + "01" + // Want=ProtWrite, ReqKind=kindPull
				"04000000" + "05000000" + // Origin, Hops
				"01" + "00" + "01" + // Scanning, ScannedAll, ForHome
				"06000000" + "02000000", // ScanStart, LastFrom
		},
		{
			"grant",
			&grantMsg{
				Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Lock: vm.ProtRead,
				Data: []byte{0xde, 0xad}, HasData: true, Ownership: true,
				Readers: []mesh.NodeID{1, 3}, Version: 11, AtPagerCopy: true, From: 2,
			},
			"01" +
				"01000000" + "0700000000000000" + // Obj
				"0300000000000000" + // Idx
				"01" + // Lock=ProtRead
				"02000000" + "dead" + // Data len+bytes
				"01" + "00" + "01" + // HasData, Fresh, Ownership
				"02000000" + "01000000" + "03000000" + // Readers
				"0b00000000000000" + // Version
				"00" + "01" + "00" + // Retry, AtPagerCopy, Unavailable
				"02000000", // From
		},
		{
			"grantNilSlices",
			&grantMsg{Obj: vm.ObjID{Node: 0, Seq: 1}, Lock: vm.ProtWrite, Version: 2},
			"01" +
				"00000000" + "0100000000000000" +
				"0000000000000000" +
				"02" +
				"ffffffff" + // nil Data sentinel
				"00" + "00" + "00" +
				"ffffffff" + // nil Readers sentinel
				"0200000000000000" +
				"00" + "00" + "00" +
				"00000000",
		},
		{
			"inval",
			&invalMsg{Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, NewOwner: 2, Seq: 41, From: 1},
			"02" + "01000000" + "0700000000000000" + "0300000000000000" +
				"02000000" + "2900000000000000" + "01000000",
		},
		{
			"invalAck",
			&invalAck{Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Seq: 41, From: 3},
			"03" + "01000000" + "0700000000000000" + "0300000000000000" +
				"2900000000000000" + "03000000",
		},
		{
			"ownerUpdate",
			&ownerUpdate{Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Owner: 2, Paged: true},
			"04" + "01000000" + "0700000000000000" + "0300000000000000" +
				"02000000" + "01",
		},
		{
			"ownerXfer",
			ownerXfer{Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Readers: []mesh.NodeID{2}, Version: 5, Seq: 13},
			"05" + "01000000" + "0700000000000000" + "0300000000000000" +
				"01000000" + "02000000" + // Readers
				"0500000000000000" + "0d00000000000000" + "00000000",
		},
		{
			"ownerXferAck",
			ownerXferAck{Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Seq: 13, Accepted: true, From: 2},
			"06" + "01000000" + "0700000000000000" + "0300000000000000" +
				"0d00000000000000" + "01" + "02000000",
		},
		{
			"pageOffer",
			pageOffer{Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Data: []byte{1, 2, 3}, Version: 5, Seq: 17},
			"07" + "01000000" + "0700000000000000" + "0300000000000000" +
				"03000000" + "010203" +
				"0500000000000000" + "1100000000000000" + "00000000",
		},
		{
			"pageOfferAck",
			pageOfferAck{Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Seq: 17, From: 3},
			"08" + "01000000" + "0700000000000000" + "0300000000000000" +
				"1100000000000000" + "00" + "03000000",
		},
		{
			"toPager",
			toPager{Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Data: []byte{9, 8}, Dirty: true, Seq: 19, From: 2},
			"09" + "01000000" + "0700000000000000" + "0300000000000000" +
				"02000000" + "0908" +
				"01" + "00" + "1300000000000000" + "02000000",
		},
		{
			"toPagerAck",
			toPagerAck{Obj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Seq: 19},
			"0a" + "01000000" + "0700000000000000" + "0300000000000000" +
				"1300000000000000",
		},
		{
			"pushScanAck",
			pushScanAck{SrcObj: vm.ObjID{Node: 1, Seq: 7}, Idx: 3, Found: true},
			"0b" + "01000000" + "0700000000000000" + "0300000000000000" + "01",
		},
	}
	for _, g := range golden {
		want, err := hex.DecodeString(g.hex)
		if err != nil {
			t.Fatalf("%s: bad golden hex: %v", g.name, err)
		}
		got, err := c.AppendMsg(nil, g.msg)
		if err != nil {
			t.Fatalf("%s: encode: %v", g.name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: wire form changed\n  got  %x\n  want %x", g.name, got, want)
		}
	}
}

// Corrupt input must come back as errors, never panics or silent
// acceptance.
func TestWireDecodeRejectsCorrupt(t *testing.T) {
	c := WireCodec()
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"unknownKind", []byte{0x7f}},
		{"truncatedHeader", []byte{0x02, 0x01}},
		{"trailingBytes", append(mustEncode(t, pushScanAck{}), 0x00)},
		{"badBool", func() []byte {
			b := mustEncode(t, pushScanAck{Found: true})
			b[len(b)-1] = 2 // Found byte: neither 0 nor 1
			return b
		}()},
		{"hugeLength", func() []byte {
			// pageOffer whose Data length claims ~4 GB.
			b := mustEncode(t, pageOffer{Obj: vm.ObjID{Node: 1, Seq: 1}})
			// Data length field sits right after kind+Obj+Idx = 1+12+8.
			copy(b[21:25], []byte{0xfe, 0xff, 0xff, 0xfe})
			return b
		}()},
	}
	for _, tc := range cases {
		if m, err := c.DecodeMsg(tc.b); err == nil {
			t.Errorf("%s: decode accepted corrupt input as %T %+v", tc.name, m, m)
		}
	}
}

func mustEncode(t *testing.T, m interface{}) []byte {
	t.Helper()
	b, err := WireCodec().AppendMsg(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The codec is registered under the channel's interned name at init.
func TestWireCodecRegistered(t *testing.T) {
	if xport.LookupWireCodec(Proto.Name()) == nil {
		t.Fatalf("no wire codec registered for %q", Proto.Name())
	}
}

// FuzzDecodeFrame holds the codec to two properties on arbitrary bytes:
// decode never panics, and anything that decodes re-encodes and
// re-decodes to a deeply equal value (the wire form is canonical).
func FuzzDecodeFrame(f *testing.F) {
	c := WireCodec()
	for _, m := range wireSpecimens() {
		enc, err := c.AppendMsg(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := c.DecodeMsg(b)
		if err != nil {
			return
		}
		enc, err := c.AppendMsg(nil, m)
		if err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", m, err)
		}
		m2, err := c.DecodeMsg(enc)
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", m, err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode/encode not idempotent:\n  first  %#v\n  second %#v", m, m2)
		}
	})
}
