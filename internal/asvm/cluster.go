package asvm

import (
	"fmt"

	"asvm/internal/mesh"
)

// Cluster is a dense node directory indexed by mesh.NodeID — the O(1)
// replacement for the `[]*Node` + nodeByID linear-scan idiom that every
// cross-node operation (fork plumbing, crash recovery, invariant sweeps,
// teardown) used to pay per lookup. Build it once per assembled machine
// (or test cluster) with NewCluster; every lookup after that is a slice
// index. Test clusters that run ASVM runtimes on a subset of the hardware
// nodes leave nil gaps, which ByID reports as absent.
type Cluster struct {
	byID []*Node
}

// NewCluster indexes nodes by their NodeID. A duplicate ID is a
// construction bug and panics.
func NewCluster(nodes []*Node) Cluster {
	maxID := -1
	for _, n := range nodes {
		if int(n.Self) > maxID {
			maxID = int(n.Self)
		}
	}
	byID := make([]*Node, maxID+1)
	for _, n := range nodes {
		if byID[n.Self] != nil {
			panic(fmt.Sprintf("asvm: duplicate node %d in cluster", n.Self))
		}
		byID[n.Self] = n
	}
	return Cluster{byID: byID}
}

// ByID returns the runtime for a node, or nil when the ID has no ASVM
// runtime in this cluster.
func (c Cluster) ByID(id mesh.NodeID) *Node {
	if int(id) < 0 || int(id) >= len(c.byID) {
		return nil
	}
	return c.byID[id]
}

// node is ByID for IDs that must exist: a mapping-ring member without a
// runtime here is a construction bug.
func (c Cluster) node(id mesh.NodeID) *Node {
	n := c.ByID(id)
	if n == nil {
		panic(fmt.Sprintf("asvm: node %d not in cluster", id))
	}
	return n
}
