package asvm

import (
	"fmt"

	"asvm/internal/mesh"
	"asvm/internal/vm"
)

// CheckInvariants validates a quiesced domain's global state across all
// its nodes — the properties §3.5/§3.6 of the paper promise:
//
//  1. single writer or multiple readers: at most one owner per page, and
//     if any node holds write access it is the owner and nobody else has
//     the page;
//  2. the owner invariant: every owner holds the page in its VM cache;
//  3. readers known to the owner: every node holding a (non-owner) copy
//     appears on the owner's reader list;
//  4. home bookkeeping: an owner exists if and only if the home believes
//     the page is granted (never both granted and at-pager);
//  5. no dangling protocol state: no busy pages, queued requests, pending
//     faults, or unacknowledged transfers.
//
// It must be called with the simulation drained (Engine.Pending() == 0).
func CheckInvariants(cluster []*Node, info *DomainInfo) error {
	type holder struct {
		node mesh.NodeID
		pg   *vm.Page
		in   *Instance
	}
	holders := make(map[vm.PageIdx][]holder)
	owners := make(map[vm.PageIdx][]*Instance)

	for _, nid := range info.Mapping {
		nd := nodeByID(cluster, nid)
		in := nd.instances[info.ID]
		if in == nil {
			return fmt.Errorf("asvm: node %d lost its instance of %v", nid, info.ID)
		}
		if len(in.pend) != 0 {
			return fmt.Errorf("asvm: node %d has %d pending faults", nid, len(in.pend))
		}
		if len(in.pendInval) != 0 || len(in.pendXfer) != 0 || len(in.pendPush) != 0 || len(in.pendPgr) != 0 {
			return fmt.Errorf("asvm: node %d has dangling protocol completions", nid)
		}
		for idx, ps := range in.pages {
			if ps.busy {
				return fmt.Errorf("asvm: node %d page %d still busy", nid, idx)
			}
			if len(ps.queue) != 0 {
				return fmt.Errorf("asvm: node %d page %d has %d queued requests", nid, idx, len(ps.queue))
			}
			owners[idx] = append(owners[idx], in)
			if !in.o.Resident(idx) {
				return fmt.Errorf("asvm: node %d owns page %d without holding it (owner invariant)", nid, idx)
			}
		}
		for idx, pg := range in.o.Pages {
			holders[idx] = append(holders[idx], holder{nid, pg, in})
		}
	}

	for idx, os := range owners {
		if len(os) > 1 {
			ns := make([]mesh.NodeID, len(os))
			for i, in := range os {
				ns[i] = in.self()
			}
			return fmt.Errorf("asvm: page %d has %d owners: %v", idx, len(os), ns)
		}
	}

	for idx, hs := range holders {
		os := owners[idx]
		if len(os) == 0 {
			return fmt.Errorf("asvm: page %d resident on %d nodes with no owner", idx, len(hs))
		}
		owner := os[0]
		writers := 0
		for _, h := range hs {
			if h.pg.Lock >= vm.ProtWrite {
				writers++
				if h.in != owner {
					return fmt.Errorf("asvm: page %d write-held by non-owner node %d", idx, h.node)
				}
			}
			if h.in != owner && !owner.pages[idx].readers[h.node] {
				return fmt.Errorf("asvm: page %d held by node %d unknown to owner %d",
					idx, h.node, owner.self())
			}
		}
		if writers > 0 && len(hs) > 1 {
			return fmt.Errorf("asvm: page %d has a writer and %d other copies", idx, len(hs)-1)
		}
	}

	// Home bookkeeping.
	home := nodeByID(cluster, info.Home).instances[info.ID]
	for idx, hs := range home.home {
		hasOwner := len(owners[idx]) > 0
		if hs.granted && hs.atPager {
			return fmt.Errorf("asvm: page %d both granted and at pager", idx)
		}
		if hs.granted != hasOwner {
			return fmt.Errorf("asvm: page %d home granted=%v but owner-exists=%v", idx, hs.granted, hasOwner)
		}
	}
	for idx := range owners {
		if hs := home.home[idx]; hs == nil || !hs.granted {
			return fmt.Errorf("asvm: page %d owned but home unaware", idx)
		}
	}
	return nil
}
