package asvm

import (
	"fmt"
	"strings"

	"asvm/internal/mesh"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

// CheckInvariants validates a quiesced domain's global state across all
// its nodes — the properties §3.5/§3.6 of the paper promise:
//
//  1. single writer or multiple readers: at most one owner per page, and
//     if any node holds write access it is the owner and nobody else has
//     the page;
//  2. the owner invariant: every owner holds the page in its VM cache;
//  3. readers known to the owner: every node holding a (non-owner) copy
//     appears on the owner's reader list;
//  4. home bookkeeping: an owner exists if and only if the home believes
//     the page is granted (never both granted and at-pager);
//  5. no dangling protocol state: no busy pages, queued requests, pending
//     faults, or unacknowledged transfers;
//  6. protocol-state coherence: each page's PageProtoState agrees with
//     the data it summarizes — Owner has readers, OwnerSole has none, a
//     ReadShared node holds the copy and appears on the owner's list.
//
// It must be called with the simulation drained (Engine.Pending() == 0).
func CheckInvariants(cluster Cluster, info *DomainInfo) error {
	type holder struct {
		node mesh.NodeID
		pg   *vm.Page
		in   *Instance
	}
	holders := make(map[vm.PageIdx][]holder)
	owners := make(map[vm.PageIdx][]*Instance)
	readShared := make(map[vm.PageIdx][]mesh.NodeID)

	for _, nid := range info.Mapping {
		if info.Down[nid] {
			continue // crashed: its state died with it (crash-stop)
		}
		nd := cluster.node(nid)
		in := nd.instances[info.ID]
		if in == nil {
			return fmt.Errorf("asvm: node %d lost its instance of %v", nid, info.ID)
		}
		pend := 0
		for i := range in.slots {
			if in.slots[i].state.FaultOut() {
				pend++
			}
		}
		if pend != 0 {
			return fmt.Errorf("asvm: node %d has %d pending faults", nid, pend)
		}
		if len(in.pendInval) != 0 || len(in.pendXfer) != 0 || len(in.pendPush) != 0 || len(in.pendPgr) != 0 {
			return fmt.Errorf("asvm: node %d has dangling protocol completions", nid)
		}
		for i := range in.slots {
			idx := vm.PageIdx(i)
			sl := &in.slots[i]
			if sl.state.Busy() {
				return fmt.Errorf("asvm: node %d page %d still busy (%v)", nid, idx, sl.state)
			}
			if len(sl.queue) != 0 {
				return fmt.Errorf("asvm: node %d page %d has %d queued requests", nid, idx, len(sl.queue))
			}
			switch sl.state {
			case StOwner, StOwnerSole:
				owners[idx] = append(owners[idx], in)
				if !in.o.Resident(idx) {
					return fmt.Errorf("asvm: node %d owns page %d without holding it (owner invariant)", nid, idx)
				}
				if sl.state == StOwner && sl.readers.Len() == 0 {
					return fmt.Errorf("asvm: node %d page %d in state Owner with no readers", nid, idx)
				}
				if sl.state == StOwnerSole && sl.readers.Len() != 0 {
					return fmt.Errorf("asvm: node %d page %d in state OwnerSole with %d readers", nid, idx, sl.readers.Len())
				}
			case StReadShared:
				if !in.o.Resident(idx) {
					return fmt.Errorf("asvm: node %d page %d in state ReadShared without a copy", nid, idx)
				}
				readShared[idx] = append(readShared[idx], nid)
			}
		}
		for idx, pg := range in.o.Pages {
			holders[idx] = append(holders[idx], holder{nid, pg, in})
		}
	}

	for idx, os := range owners {
		if len(os) > 1 {
			ns := make([]mesh.NodeID, len(os))
			for i, in := range os {
				ns[i] = in.self()
			}
			return fmt.Errorf("asvm: page %d has %d owners: %v", idx, len(os), ns)
		}
	}

	// Protocol-state coherence: a ReadShared node is on its owner's list
	// (the state says "the owner will invalidate me before any write").
	for idx, ns := range readShared {
		os := owners[idx]
		if len(os) == 0 {
			return fmt.Errorf("asvm: page %d read-shared on %v with no owner", idx, ns)
		}
		for _, n := range ns {
			if !os[0].slots[idx].readers.Contains(n) {
				return fmt.Errorf("asvm: page %d read-shared at node %d but absent from owner %d's reader list",
					idx, n, os[0].self())
			}
		}
	}

	for idx, hs := range holders {
		os := owners[idx]
		if len(os) == 0 {
			return fmt.Errorf("asvm: page %d resident on %d nodes with no owner", idx, len(hs))
		}
		owner := os[0]
		writers := 0
		for _, h := range hs {
			if h.pg.Lock >= vm.ProtWrite {
				writers++
				if h.in != owner {
					return fmt.Errorf("asvm: page %d write-held by non-owner node %d", idx, h.node)
				}
			}
			if h.in != owner && !owner.slots[idx].readers.Contains(h.node) {
				return fmt.Errorf("asvm: page %d held by node %d unknown to owner %d",
					idx, h.node, owner.self())
			}
		}
		if writers > 0 && len(hs) > 1 {
			return fmt.Errorf("asvm: page %d has a writer and %d other copies", idx, len(hs)-1)
		}
	}

	// Home bookkeeping. With the home itself crashed there is nothing to
	// compare against: its grant ledger died with it, and the survivors'
	// safety properties above are all that crash-stop still promises.
	if info.Down[info.Home] {
		return nil
	}
	home := cluster.node(info.Home).instances[info.ID]
	for idx, hs := range home.home {
		hasOwner := len(owners[idx]) > 0
		if hs.granted && hs.atPager {
			return fmt.Errorf("asvm: page %d both granted and at pager", idx)
		}
		if hs.granted != hasOwner {
			return fmt.Errorf("asvm: page %d home granted=%v but owner-exists=%v", idx, hs.granted, hasOwner)
		}
	}
	for idx := range owners {
		if hs := home.home[idx]; hs == nil || !hs.granted {
			return fmt.Errorf("asvm: page %d owned but home unaware", idx)
		}
	}
	return nil
}

// CheckPageInvariants validates the safety core of the protocol for one
// page mid-flight — it is sound at any quiesce point, not just at full
// drain. Liveness-flavoured properties (an owner exists, home bookkeeping
// agrees) are deliberately NOT checked here: a grant or transfer
// legitimately in flight leaves zero owners, or a home whose view lags.
// What can never happen, even transiently, once no instance is
// mid-operation on the page:
//
//  1. two owners (an ownership transfer hands over before the sender
//     forgets, but the sender stays busy until it has — so two owners with
//     every node's page at rest is a real protocol bug);
//  2. an owner not holding the page in its VM cache;
//  3. a writer that is not the owner, or a writer coexisting with copies;
//  4. a (non-owner) copy the owner does not know about;
//  5. protocol-state incoherence: an at-rest owner whose Owner/OwnerSole
//     split disagrees with its reader list, or a ReadShared node without
//     its copy or missing from the owner's reader list.
//
// If any instance still has the page in a busy state, the check vacuously
// passes — that instance's operation is mid-protocol and owns the page's
// consistency. Returns nil when the page is consistent.
func CheckPageInvariants(cluster Cluster, info *DomainInfo, idx vm.PageIdx) error {
	var owners []*Instance
	type holder struct {
		node mesh.NodeID
		pg   *vm.Page
		in   *Instance
	}
	var holders []holder
	var readShared []mesh.NodeID

	for _, nid := range info.Mapping {
		if info.Down[nid] {
			continue // crashed: its state died with it (crash-stop)
		}
		nd := cluster.node(nid)
		in := nd.instances[info.ID]
		if in == nil {
			return fmt.Errorf("asvm: node %d lost its instance of %v", nid, info.ID)
		}
		sl := &in.slots[idx]
		if sl.state.Busy() {
			return nil // mid-operation: state legitimately transient
		}
		switch sl.state {
		case StOwner, StOwnerSole:
			owners = append(owners, in)
			if sl.state == StOwner && sl.readers.Len() == 0 {
				return fmt.Errorf("asvm: node %d page %d in state Owner with no readers", nid, idx)
			}
			if sl.state == StOwnerSole && sl.readers.Len() != 0 {
				return fmt.Errorf("asvm: node %d page %d in state OwnerSole with %d readers", nid, idx, sl.readers.Len())
			}
		case StReadShared:
			if !in.o.Resident(idx) {
				return fmt.Errorf("asvm: node %d page %d in state ReadShared without a copy", nid, idx)
			}
			readShared = append(readShared, nid)
		}
		if pg := in.o.Pages[idx]; pg != nil {
			holders = append(holders, holder{nid, pg, in})
		}
	}

	if len(owners) > 1 {
		ns := make([]mesh.NodeID, len(owners))
		for i, in := range owners {
			ns[i] = in.self()
		}
		return fmt.Errorf("asvm: page %d has %d owners: %v", idx, len(owners), ns)
	}
	var owner *Instance
	if len(owners) == 1 {
		owner = owners[0]
		if !owner.o.Resident(idx) {
			return fmt.Errorf("asvm: node %d owns page %d without holding it (owner invariant)", owner.self(), idx)
		}
	}

	writers := 0
	for _, h := range holders {
		if h.pg.Lock >= vm.ProtWrite {
			writers++
			if h.in != owner {
				return fmt.Errorf("asvm: page %d write-held by non-owner node %d", idx, h.node)
			}
		}
		if owner != nil && h.in != owner && !owner.slots[idx].readers.Contains(h.node) {
			return fmt.Errorf("asvm: page %d held by node %d unknown to owner %d",
				idx, h.node, owner.self())
		}
	}
	if writers > 0 && len(holders) > 1 {
		return fmt.Errorf("asvm: page %d has a writer and %d other copies", idx, len(holders)-1)
	}
	if owner != nil {
		for _, n := range readShared {
			if !owner.slots[idx].readers.Contains(n) {
				return fmt.Errorf("asvm: page %d read-shared at node %d but absent from owner %d's reader list",
					idx, n, owner.self())
			}
		}
	}
	return nil
}

// CheckInvariantsSampled is the scale-aware drain check for big meshes.
// The per-node local invariants — no outstanding faults, no dangling
// completions, no busy pages, no queued requests — are cheap (one pass
// over each node's slots) and run in full. The cross-node page invariants
// (single owner, reader-list coherence, writer exclusivity) are what the
// full sweep pays O(nodes·pages) plus map assembly for; here they run
// through CheckPageInvariants on a seeded sample of distinct pages, so a
// 1024-node drain check costs O(nodes·pages + sample·nodes). Home
// bookkeeping is deliberately left to the full sweep: its granted⇔owner
// comparison needs the global owner map. samplePages <= 0 or >= SizePages
// falls back to the full CheckInvariants, which small runs keep using.
func CheckInvariantsSampled(cluster Cluster, info *DomainInfo, samplePages int, seed uint64) error {
	if samplePages <= 0 || vm.PageIdx(samplePages) >= info.SizePages {
		return CheckInvariants(cluster, info)
	}
	for _, nid := range info.Mapping {
		if info.Down[nid] {
			continue
		}
		nd := cluster.node(nid)
		in := nd.instances[info.ID]
		if in == nil {
			return fmt.Errorf("asvm: node %d lost its instance of %v", nid, info.ID)
		}
		if len(in.pendInval) != 0 || len(in.pendXfer) != 0 || len(in.pendPush) != 0 || len(in.pendPgr) != 0 {
			return fmt.Errorf("asvm: node %d has dangling protocol completions", nid)
		}
		for i := range in.slots {
			sl := &in.slots[i]
			if sl.state.FaultOut() {
				return fmt.Errorf("asvm: node %d page %d fault still outstanding", nid, i)
			}
			if sl.state.Busy() {
				return fmt.Errorf("asvm: node %d page %d still busy (%v)", nid, i, sl.state)
			}
			if len(sl.queue) != 0 {
				return fmt.Errorf("asvm: node %d page %d has %d queued requests", nid, i, len(sl.queue))
			}
		}
	}
	rng := sim.NewRNG(seed)
	seen := make(map[vm.PageIdx]bool, samplePages)
	for len(seen) < samplePages {
		idx := vm.PageIdx(rng.Intn(int(info.SizePages)))
		if seen[idx] {
			continue
		}
		seen[idx] = true
		if err := CheckPageInvariants(cluster, info, idx); err != nil {
			return err
		}
	}
	return nil
}

// OutstandingFaults counts surviving nodes' pages still in a FaultOut
// state. At drain this is the liveness contract: every fault a live node
// started must have resolved — granted, or failed with a typed error —
// because a task is parked on each one. (CheckInvariants reports these too;
// this helper lets a liveness checker name the violation precisely and list
// the stuck pages.)
func OutstandingFaults(cluster Cluster, info *DomainInfo) (stuck []vm.PageIdx) {
	for _, nid := range info.Mapping {
		if info.Down[nid] {
			continue
		}
		in := cluster.node(nid).instances[info.ID]
		if in == nil {
			continue
		}
		for i := range in.slots {
			if in.slots[i].state.FaultOut() {
				stuck = append(stuck, vm.PageIdx(i))
			}
		}
	}
	return stuck
}

// DumpPage renders one page's cross-node protocol state — each node's
// PageProtoState, owner reader lists, holders with locks, home
// bookkeeping, in-flight fault state — for invariant-failure reports.
func DumpPage(cluster Cluster, info *DomainInfo, idx vm.PageIdx) string {
	var b strings.Builder
	fmt.Fprintf(&b, "page %d of %v:", idx, info.ID)
	for _, nid := range info.Mapping {
		nd := cluster.ByID(nid)
		if nd == nil {
			continue
		}
		in := nd.instances[info.ID]
		if in == nil {
			continue
		}
		sl := &in.slots[idx]
		var parts []string
		if sl.state != StInvalid {
			parts = append(parts, fmt.Sprintf("state=%v", sl.state))
		}
		if sl.state.Owner() {
			readers := sl.readers.AppendTo(make([]mesh.NodeID, 0, sl.readers.Len()))
			parts = append(parts, fmt.Sprintf("readers=%v held=%v queued=%d ver=%d",
				readers, sl.held, len(sl.queue), sl.version))
		}
		if pg := in.o.Pages[idx]; pg != nil {
			parts = append(parts, fmt.Sprintf("holds lock=%v evicting=%v", pg.Lock, pg.Evicting))
		}
		if sl.state.FaultOut() {
			parts = append(parts, fmt.Sprintf("fault-pending want=%v staleFrom=%v", sl.want, sl.staleFrom))
		}
		if hs := in.home[idx]; hs != nil {
			parts = append(parts, fmt.Sprintf("home granted=%v atPager=%v", hs.granted, hs.atPager))
		}
		if len(parts) > 0 {
			fmt.Fprintf(&b, "\n  n%d: %s", nid, strings.Join(parts, "; "))
		}
	}
	return b.String()
}
