// Package asvm implements the paper's contribution: the Advanced Shared
// Virtual Memory system. Each page has a dynamic distributed manager — its
// *owner*, the node that most recently had write access — found through a
// layered request redirector (dynamic owner-hint caches, static hash-
// distributed ownership managers, global ring scan). Physical memory of all
// mapping nodes forms a cache for each memory object (internode paging),
// and the asymmetric delayed-copy strategy is extended across nodes with
// version-counted pushes, push scans and shadow-chain pulls. All state
// transitions are asynchronous: no kernel thread ever blocks inside the
// protocol. Traffic rides the dedicated STS transport.
package asvm

import (
	"fmt"

	"asvm/internal/mesh"
	"asvm/internal/pager"
	"asvm/internal/sim"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// Config tunes the forwarding machinery (paper §3.4 allows disabling
// dynamic and/or static forwarding per memory object).
type Config struct {
	// DynamicForwarding enables per-node owner-hint caches.
	DynamicForwarding bool
	// StaticForwarding enables the hash-distributed ownership managers.
	StaticForwarding bool
	// DynamicCacheSize bounds each node's dynamic hint cache (entries).
	DynamicCacheSize int
	// StaticCacheSize bounds each static manager's cache (entries).
	StaticCacheSize int
	// PageOfferReserve is the minimum free pages a node must keep to
	// accept an internode page transfer.
	PageOfferReserve int

	// HopBound caps how many forwarding hops a request may take before it
	// escalates to the deterministic ring scan. 0 means the legacy
	// adaptive bound 2*len(Mapping)+8 — fine at paper scale, but at 1024
	// nodes that lets a hint storm burn ~2k hops before tripping, so
	// scale runs set an absolute bound instead.
	HopBound int

	// DisableInternodePaging skips eviction steps 2 and 3 (ownership
	// transfer to readers, page transfer to free nodes): evicted owner
	// pages go straight to the pager. Ablation A3.
	DisableInternodePaging bool
}

// DefaultConfig enables everything with generous caches.
func DefaultConfig() Config {
	return Config{
		DynamicForwarding: true,
		StaticForwarding:  true,
		DynamicCacheSize:  4096,
		StaticCacheSize:   16384,
		PageOfferReserve:  4,
	}
}

// Node is the per-node ASVM runtime.
type Node struct {
	Self mesh.NodeID
	Eng  *sim.Engine
	K    *vm.Kernel
	TR   xport.Transport
	Cfg  Config

	instances map[vm.ObjID]*Instance

	Ctr *sim.Counters

	// Trace is this node's bounded protocol trace sink.
	Trace *TraceBuf

	// MidCheck, when set, is invoked at every quiesce of a page's busy
	// window — the earliest points where the page's cross-node state is
	// supposed to be consistent again. The schedule explorer installs one
	// to run CheckPageInvariants mid-flight; production runs leave it nil.
	// The hook may be called on a proc goroutine (fault path), so it must
	// record findings rather than panic.
	MidCheck func(info *DomainInfo, idx vm.PageIdx)

	// Cover counts every dispatched protocol transition per (state, event)
	// table cell. The schedule explorer merges these across nodes and runs
	// to report which legal table entries a search exercised.
	Cover Coverage

	// Hooks re-enable known-bad behaviours for explorer mutation tests.
	// All false in production.
	Hooks struct {
		// DropXferReaders skips installing the reader list when accepting
		// an ownership transfer — the classic DSM bug where the new owner
		// forgets who holds read copies and never invalidates them.
		DropXferReaders bool

		// DropNackResume silently discards bounced requests instead of
		// re-entering the redirector — the classic crash-handling bug
		// where a fault whose hop died is never re-driven and waits
		// forever. The liveness checker's selftest plants this one.
		DropNackResume bool

		// DropFaultRedrive skips the conservative fault re-drive when a
		// peer is declared dead (actPeerDown) — the complementary
		// crash-handling bug: a request that died inside the crashed node
		// (queued at it, or its grant evaporating in flight) is never
		// re-sent. Planted together with DropNackResume this closes both
		// recovery paths, so a fault that depended on the dead node hangs
		// forever — the livelock the -live selftest must find.
		DropFaultRedrive bool
	}

	// crashEra is set once any crash or peer-down event has touched this
	// node's cluster. It relaxes the stray-completion panics — after a
	// crash, an ack from a dead node can legitimately arrive after the
	// failure machinery already completed its slot. Never set in a
	// crash-free run, so the strict panics keep their full force there.
	crashEra bool

	// poolMsgs enables message-box recycling (see msgPool). On by default;
	// machine.New turns it off when the transport stack can duplicate or
	// retain deliveries (fault injection, reliable retransmission).
	poolMsgs bool

	// Free lists for the hot wire kinds, one per concrete type.
	reqPool   msgPool[accessReq]
	grantPool msgPool[grantMsg]
	invalPool msgPool[invalMsg]
	iackPool  msgPool[invalAck]
	oupdPool  msgPool[ownerUpdate]
}

// SetMsgPooling toggles message-box recycling. It must be off whenever a
// delivery is not exactly-once-and-then-dead: a duplicating fault plan or a
// retransmitting reliability layer may hand the same box to handle twice,
// and a recycled box read twice is memory corruption, not a protocol bug.
func (n *Node) SetMsgPooling(on bool) { n.poolMsgs = on }

func (n *Node) putReq(b *accessReq) {
	if n.poolMsgs {
		n.reqPool.put(b)
	}
}

func (n *Node) putGrant(b *grantMsg) {
	if n.poolMsgs {
		n.grantPool.put(b)
	}
}

func (n *Node) putInval(b *invalMsg) {
	if n.poolMsgs {
		n.invalPool.put(b)
	}
}

func (n *Node) putInvalAck(b *invalAck) {
	if n.poolMsgs {
		n.iackPool.put(b)
	}
}

func (n *Node) putOwnerUpdate(b *ownerUpdate) {
	if n.poolMsgs {
		n.oupdPool.put(b)
	}
}

// NewNode creates the ASVM runtime for one node and registers its
// transport handler.
func NewNode(eng *sim.Engine, k *vm.Kernel, tr xport.Transport, cfg Config) *Node {
	n := &Node{
		Self: k.Node, Eng: eng, K: k, TR: tr, Cfg: cfg,
		instances: make(map[vm.ObjID]*Instance),
		Ctr:       sim.NewCounters(),
		Trace:     newTraceBuf(k.Node),
		poolMsgs:  true,
	}
	tr.Register(n.Self, Proto, n.handle)
	return n
}

// Instance returns this node's instance of a domain, or nil.
func (n *Node) Instance(id vm.ObjID) *Instance { return n.instances[id] }

func (n *Node) inst(id vm.ObjID) *Instance {
	in := n.instances[id]
	if in == nil {
		panic(fmt.Sprintf("asvm: node %d has no instance of %v", n.Self, id))
	}
	return in
}

func (n *Node) handle(src mesh.NodeID, m interface{}) {
	n.Ctr.V[sim.CtrMsgs]++
	env, ok := m.(xport.Msg)
	if !ok {
		if nk, isNack := m.(xport.Nack); isNack {
			n.handleNack(nk)
			return
		}
		panic(fmt.Sprintf("asvm: unknown message %T", m))
	}
	// Dispatch on the envelope's small-int kind: a jump table instead of a
	// chain of per-type comparisons. The concrete assertion in each arm is
	// then unconditional (a mismatched Kind is a construction bug). Each
	// arm feeds the page's state machine, passing the already-boxed m
	// through so the hot path re-boxes nothing. The hot kinds travel as
	// pooled pointers; their boxes are dead once dispatch returns (actions
	// copy the value out, never the interface) and go back to the free list.
	switch env.Kind() {
	case msgAccessReq:
		msg := m.(*accessReq)
		n.inst(msg.Obj).dispatch(EvAccessReq, msg.Idx, m)
		n.putReq(msg)
	case msgGrant:
		msg := m.(*grantMsg)
		n.inst(msg.Obj).dispatch(EvGrant, msg.Idx, m)
		n.putGrant(msg)
	case msgInval:
		msg := m.(*invalMsg)
		n.inst(msg.Obj).dispatch(EvInval, msg.Idx, m)
		n.putInval(msg)
	case msgInvalAck:
		msg := m.(*invalAck)
		n.inst(msg.Obj).dispatch(EvInvalAck, msg.Idx, m)
		n.putInvalAck(msg)
	case msgOwnerUpdate:
		msg := m.(*ownerUpdate)
		n.inst(msg.Obj).dispatch(EvOwnerUpdate, msg.Idx, m)
		n.putOwnerUpdate(msg)
	case msgOwnerXfer:
		msg := m.(ownerXfer)
		n.inst(msg.Obj).dispatch(EvOwnerXfer, msg.Idx, m)
	case msgOwnerXferAck:
		msg := m.(ownerXferAck)
		n.inst(msg.Obj).dispatch(EvOwnerXferAck, msg.Idx, m)
	case msgPageOffer:
		msg := m.(pageOffer)
		n.inst(msg.Obj).dispatch(EvPageOffer, msg.Idx, m)
	case msgPageOfferAck:
		msg := m.(pageOfferAck)
		n.inst(msg.Obj).dispatch(EvPageOfferAck, msg.Idx, m)
	case msgToPager:
		msg := m.(toPager)
		n.inst(msg.Obj).dispatch(EvToPager, msg.Idx, m)
	case msgToPagerAck:
		msg := m.(toPagerAck)
		n.inst(msg.Obj).dispatch(EvToPagerAck, msg.Idx, m)
	case msgPushScanAck:
		msg := m.(pushScanAck)
		n.inst(msg.SrcObj).dispatch(EvPushScanAck, msg.Idx, m)
	default:
		panic(fmt.Sprintf("asvm: unknown message kind %d (%T)", env.Kind(), m))
	}
}

// handleNack routes a transport bounce — the destination node has no ASVM
// runtime, or the reliability layer declared it dead — back into the
// protocol. Every protocol message has a typed degradation here: requests
// fall back down the redirector chain, owner hints are best-effort and
// simply dropped, a grant's bounced authority is reclaimed or declared
// lost, a bounced invalidation or transfer completes as if the dead node
// had answered, and a bounced pageout counts its page lost. Only an
// unknown message type still panics.
func (n *Node) handleNack(nk xport.Nack) {
	n.Ctr.V[sim.CtrNacks]++
	switch msg := nk.Msg.(type) {
	case *accessReq:
		if n.Hooks.DropNackResume {
			n.putReq(msg)
			return
		}
		n.inst(msg.Obj).dispatch(EvReqNack, msg.Idx, nk)
		n.putReq(msg)
	case *ownerUpdate:
		// A hint refresh for an unreachable static manager: lose the hint,
		// requests will fall through to the home instead.
		n.Ctr.V[sim.CtrHintNacks]++
		n.putOwnerUpdate(msg)
	case *grantMsg:
		n.nackGrant(nk.Dst, *msg)
		n.putGrant(msg)
	case *invalMsg:
		// The reader we were invalidating is dead: it holds no copy any
		// more, which is exactly what the invalidation wanted.
		if in := n.instances[msg.Obj]; in != nil {
			in.completeInvalTarget(msg.Seq, nk.Dst)
		}
		n.putInval(msg)
	case *invalAck:
		// Our ack to a dead invalidator: nothing left to confirm.
		n.putInvalAck(msg)
	case ownerXfer:
		// The reader we offered ownership to is dead: treat as declined.
		if in := n.instances[msg.Obj]; in != nil {
			in.completeXfer(msg.Seq, false)
		}
	case pageOffer:
		// The node we offered the page to is dead: treat as declined.
		if in := n.instances[msg.Obj]; in != nil {
			in.completeXfer(msg.Seq, false)
		}
	case toPager:
		// The home is down: the evicted contents have nowhere to go. The
		// data is gone (crash-stop) — count the loss and finish the
		// eviction. A bounced Lost report loses nothing new.
		if in := n.instances[msg.Obj]; in != nil {
			if msg.Dirty && !msg.Lost {
				n.Ctr.V[sim.CtrPagesLost]++
			}
			in.completePgr(msg.Seq)
		}
	case ownerXferAck, pageOfferAck, toPagerAck, pushScanAck:
		// An ack addressed to a dead requester: drop.
	default:
		panic(fmt.Sprintf("asvm: %T bounced off node %d", nk.Msg, nk.Dst))
	}
}

// DomainInfo is the cluster-wide description of an ASVM-managed memory
// object. It is established at setup time (mapping registration carries no
// modelled cost; the paper's benchmarks exclude it too).
type DomainInfo struct {
	ID        vm.ObjID
	SizePages vm.PageIdx

	// Home is the node that speaks for the pager: the pager's node for
	// pager-backed domains, the creating (peer) node for copy domains. It
	// is the serialization point for no-owner resolution.
	Home mesh.NodeID

	// Mapping lists the nodes with instances, in a fixed order used by
	// static hashing and the global ring scan.
	Mapping []mesh.NodeID

	// Version counts copies made from this domain (paper §3.7.2).
	Version uint64

	// Copy is the newest copy domain (pushes go there); Source is the
	// domain this one was copied from (pulls resolve through it at Home).
	Copy, Source *DomainInfo

	// Cfg is the per-object forwarding configuration.
	Cfg Config

	// Down marks mapping nodes currently crashed (crash-stop model). They
	// keep their ring position — scans skip them via the transport's Nack
	// path — and the invariant checker skips their (torn down) instances.
	// A restarting node is removed again by the rejoin path. Nil until the
	// first crash.
	Down map[mesh.NodeID]bool

	// mapIdx is the authoritative membership index: each node's position
	// in Mapping, maintained eagerly by every path that changes Mapping
	// (Setup, AddNode, Promote, CopyDomain). Membership tests, ring
	// successors and crash scrubs are all one map probe — never a list
	// scan, never a rebuild on the forwarding path. Code that edits
	// Mapping directly (tests poisoning the ring) must call Reindex.
	mapIdx map[mesh.NodeID]int
}

// staticNode returns the static ownership manager for a page.
func (d *DomainInfo) staticNode(idx vm.PageIdx) mesh.NodeID {
	return d.Mapping[int(idx)%len(d.Mapping)]
}

// mappingIndex returns a node's position in the mapping ring, or -1.
func (d *DomainInfo) mappingIndex(n mesh.NodeID) int {
	if i, ok := d.mapIdx[n]; ok {
		return i
	}
	return -1
}

// Reindex rebuilds the membership index after a direct edit of Mapping.
// Only code that mutates Mapping outside the API (tests poisoning the
// ring with dead members) needs it; every API path keeps mapIdx
// authoritative on its own.
func (d *DomainInfo) Reindex() { d.rebuildMapIdx() }

// rebuildMapIdx reindexes Mapping into mapIdx.
func (d *DomainInfo) rebuildMapIdx() {
	d.mapIdx = make(map[mesh.NodeID]int, len(d.Mapping))
	for i, m := range d.Mapping {
		d.mapIdx[m] = i
	}
}

// nextInRing returns the mapping node after n.
func (d *DomainInfo) nextInRing(n mesh.NodeID) mesh.NodeID {
	i := d.mappingIndex(n)
	return d.Mapping[(i+1)%len(d.Mapping)]
}

// Setup creates an ASVM domain across the given runtimes. home indexes
// into nodes; pagerSrv may be nil (anonymous: zero-fill at home, page-out
// parks at home in memory). Returns the per-node vm objects, aligned with
// nodes.
func Setup(id vm.ObjID, sizePages vm.PageIdx, nodes []*Node, home int, pagerSrv *pager.Server, cfg Config) (*DomainInfo, []*vm.Object) {
	info := &DomainInfo{
		ID: id, SizePages: sizePages,
		Home: nodes[home].Self,
		Cfg:  cfg,
	}
	for _, n := range nodes {
		info.Mapping = append(info.Mapping, n.Self)
	}
	info.rebuildMapIdx()
	objs := make([]*vm.Object, len(nodes))
	for i, n := range nodes {
		in := newInstance(n, info)
		if i == home && pagerSrv != nil {
			in.pagerCli = pager.NewClient(n.Eng, n.TR, n.Self, pagerSrv)
		}
		objs[i] = in.o
	}
	return info, objs
}

// AddNode extends an existing domain to one more node (used when remote
// forks establish sharing of a source object). Returns the new instance.
// A node already in the mapping ring — say one whose instance was dropped
// by Teardown and is being re-added — keeps its position instead of
// appearing twice (a duplicate would skew static hashing and ring scans).
func AddNode(info *DomainInfo, n *Node) *Instance {
	if in := n.instances[info.ID]; in != nil {
		return in
	}
	if info.mappingIndex(n.Self) < 0 {
		info.Mapping = append(info.Mapping, n.Self)
		info.mapIdx[n.Self] = len(info.Mapping) - 1
	}
	return newInstance(n, info)
}

// actTeardown drops one page's protocol state as its domain goes away.
// (teardown)
func actTeardown(in *Instance, idx vm.PageIdx, m interface{}) {
	in.slots[idx] = pageSlot{}
}

// Teardown removes a domain from every node: every page's protocol state
// retires through the EvTeardown transition, local vm objects are
// destroyed (frames freed) and instances dropped. The caller must have
// quiesced the domain (no faults in flight), as with Mach's
// memory_object_terminate.
func Teardown(cluster Cluster, info *DomainInfo) {
	for _, nid := range info.Mapping {
		nd := cluster.node(nid)
		in := nd.instances[info.ID]
		if in == nil {
			continue
		}
		for idx := range in.slots {
			if in.slots[idx].state != StInvalid {
				in.dispatch(EvTeardown, vm.PageIdx(idx), nil)
			}
		}
		nd.K.DestroyObject(in.o)
		delete(nd.instances, info.ID)
	}
}
