package asvm

import (
	"asvm/internal/sim"
	"fmt"

	"asvm/internal/mesh"
	"asvm/internal/vm"
)

// This file implements internode paging (paper §3.6): the physical memory
// of all mapping nodes is a cache for the memory object. Eviction of an
// owned page prefers (1) ownership transfer to a surviving reader — no
// contents on the wire, (2) a page transfer to a node with free memory —
// selected by a cycling counter that locks onto accepting nodes, and only
// then (3) pageout to the memory object's pager.

// DataReturn implements vm.MemoryManager: the local kernel is evicting (or
// cleaning) a page.
func (in *Instance) DataReturn(o *vm.Object, idx vm.PageIdx, data []byte, dirty, kept bool) {
	if in.transferring {
		return // contents just left with an ownership grant
	}
	if kept {
		// Clean-in-place downgrade (during copy creation): the owner keeps
		// content responsibility; nothing to do.
		return
	}
	ps := in.pages[idx]
	if ps == nil {
		// Not the owner: a read copy is simply discarded (step 1). The
		// owner's reader list self-corrects on its next probe.
		in.nd.Ctr.V[sim.CtrEvictDiscard]++
		in.nd.K.RemovePage(o, idx)
		return
	}
	if ps.busy || ps.held || in.pendPush[idx] != nil {
		// Mid-protocol: let this round of pageout skip the page.
		in.nd.K.CancelEviction(o, idx)
		return
	}
	ps.busy = true
	in.nd.Ctr.V[sim.CtrEvictOwner]++
	if in.info.Cfg.DisableInternodePaging {
		in.evictToPager(idx, ps, copyData(data), dirty)
		return
	}
	in.evictTryReaders(idx, ps, copyData(data), dirty)
}

// evictTryReaders is step 2: ask readers one after another; the first that
// still holds the page takes ownership (no page contents needed).
func (in *Instance) evictTryReaders(idx vm.PageIdx, ps *pageState, data []byte, dirty bool) {
	var reader mesh.NodeID = -1
	for r := range ps.readers {
		if reader == -1 || r < reader {
			reader = r
		}
	}
	if reader == -1 {
		in.evictTryTransfer(idx, ps, data, dirty)
		return
	}
	others := make([]mesh.NodeID, 0, len(ps.readers)-1)
	for r := range ps.readers {
		if r != reader {
			others = append(others, r)
		}
	}
	sortNodeIDs(others)
	in.seq++
	seq := in.seq
	in.pendXfer[seq] = func(accepted bool) {
		if accepted {
			in.nd.Ctr.V[sim.CtrEvictOwnerXfer]++
			in.evictFinish(idx, ps, reader)
			return
		}
		delete(ps.readers, reader)
		in.evictTryReaders(idx, ps, data, dirty)
	}
	in.send(reader, ownerXfer{
		Obj: in.info.ID, Idx: idx, Readers: others,
		Version: ps.version, Seq: seq, From: in.self(),
	})
}

// evictTryTransfer is step 3: offer the page to another mapping node with
// free memory, cycling through the mapping and locking onto the last
// accepter.
func (in *Instance) evictTryTransfer(idx vm.PageIdx, ps *pageState, data []byte, dirty bool) {
	target := in.nextPageoutTarget()
	if target == -1 {
		in.evictToPager(idx, ps, data, dirty)
		return
	}
	in.offerPage(idx, ps, data, dirty, target, func(accepted bool) {
		if accepted {
			in.lastAccepted = target
			in.nd.Ctr.V[sim.CtrEvictPageXfer]++
			in.evictFinish(idx, ps, target)
			return
		}
		// Ask the node that most recently accepted a transfer.
		last := in.lastAccepted
		if last != -1 && last != target && last != in.self() {
			in.offerPage(idx, ps, data, dirty, last, func(accepted bool) {
				if accepted {
					in.nd.Ctr.V[sim.CtrEvictPageXfer]++
					in.evictFinish(idx, ps, last)
					return
				}
				in.lastAccepted = -1
				in.evictToPager(idx, ps, data, dirty)
			})
			return
		}
		in.evictToPager(idx, ps, data, dirty)
	})
}

// nextPageoutTarget returns the next candidate from the cycling counter,
// or -1 when this node is the only mapper.
func (in *Instance) nextPageoutTarget() mesh.NodeID {
	m := in.info.Mapping
	if len(m) <= 1 {
		return -1
	}
	for tries := 0; tries < len(m); tries++ {
		t := m[in.pageoutCounter%len(m)]
		in.pageoutCounter++
		if t != in.self() {
			return t
		}
	}
	return -1
}

func (in *Instance) offerPage(idx vm.PageIdx, ps *pageState, data []byte, dirty bool, to mesh.NodeID, cb func(bool)) {
	in.seq++
	seq := in.seq
	in.pendXfer[seq] = cb
	in.send(to, pageOffer{
		Obj: in.info.ID, Idx: idx, Data: copyData(data),
		Version: ps.version, Seq: seq, From: in.self(),
	})
	_ = dirty
}

// evictToPager is step 4: return the page to the memory object's pager via
// the home instance.
func (in *Instance) evictToPager(idx vm.PageIdx, ps *pageState, data []byte, dirty bool) {
	in.nd.Ctr.V[sim.CtrEvictToPager]++
	if in.info.Home == in.self() {
		in.homePagerOut(idx, data, dirty, func() {
			hs := in.home[idx]
			if hs == nil {
				hs = &homeState{}
				in.home[idx] = hs
			}
			hs.granted = false
			hs.atPager = true
			in.announcePaged(idx)
			in.evictFinish(idx, ps, -1)
		})
		return
	}
	in.seq++
	seq := in.seq
	in.pendPgr[seq] = func() {
		in.evictFinish(idx, ps, -1)
	}
	in.send(in.info.Home, toPager{
		Obj: in.info.ID, Idx: idx, Data: copyData(data),
		Dirty: dirty, Seq: seq, From: in.self(),
	})
}

// announcePaged plants the "paged" hint at the static manager.
func (in *Instance) announcePaged(idx vm.PageIdx) {
	if !in.info.Cfg.StaticForwarding {
		return
	}
	sm := in.info.staticNode(idx)
	upd := ownerUpdate{Obj: in.info.ID, Idx: idx, Paged: true}
	if sm == in.self() {
		in.handleOwnerUpdate(upd)
		return
	}
	in.send(sm, upd)
}

// evictFinish drops local state and releases the frame; queued requests
// chase the new owner (or the pager).
func (in *Instance) evictFinish(idx vm.PageIdx, ps *pageState, newOwner mesh.NodeID) {
	delete(in.pages, idx)
	in.nd.K.RemovePage(in.o, idx)
	if newOwner >= 0 {
		in.dyn.Put(idx, newOwner)
	} else {
		in.dyn.Delete(idx)
	}
	in.clearBusy(idx, ps)
	in.drainQueue(idx, ps)
}

// ---------------------------------------------------------------------------
// Receiving side

func (in *Instance) handleOwnerXfer(x ownerXfer) {
	pg := in.o.Pages[x.Idx]
	accept := pg != nil && !pg.Evicting && in.pages[x.Idx] == nil
	if accept {
		readers := make(map[mesh.NodeID]bool, len(x.Readers))
		if !in.nd.Hooks.DropXferReaders {
			for _, r := range x.Readers {
				if r != in.self() {
					readers[r] = true
				}
			}
		}
		in.pages[x.Idx] = &pageState{readers: readers, version: x.Version}
		pg.Dirty = true // contents now live here alone
		in.announceOwner(x.Idx)
		in.nd.Ctr.V[sim.CtrOwnerXferAccepted]++
	}
	in.send(x.From, ownerXferAck{Obj: in.info.ID, Idx: x.Idx, Seq: x.Seq, Accepted: accept})
}

func (in *Instance) handleOwnerXferAck(a ownerXferAck) {
	cb := in.pendXfer[a.Seq]
	if cb == nil {
		panic(fmt.Sprintf("asvm: stray owner transfer ack seq %d", a.Seq))
	}
	delete(in.pendXfer, a.Seq)
	cb(a.Accepted)
}

func (in *Instance) handlePageOffer(po pageOffer) {
	accept := in.nd.K.Mem.FreePages() > in.info.Cfg.PageOfferReserve &&
		in.o.Pages[po.Idx] == nil && in.pages[po.Idx] == nil
	if accept {
		pg := in.nd.K.InstallPage(in.o, po.Idx, po.Data, vm.ProtRead)
		pg.Dirty = true
		in.pages[po.Idx] = &pageState{readers: map[mesh.NodeID]bool{}, version: po.Version}
		in.announceOwner(po.Idx)
		in.nd.Ctr.V[sim.CtrPageOfferAccepted]++
	} else {
		in.nd.Ctr.V[sim.CtrPageOfferDeclined]++
	}
	in.send(po.From, pageOfferAck{Obj: in.info.ID, Idx: po.Idx, Seq: po.Seq, Accepted: accept})
}

func (in *Instance) handlePageOfferAck(a pageOfferAck) {
	cb := in.pendXfer[a.Seq]
	if cb == nil {
		panic(fmt.Sprintf("asvm: stray page offer ack seq %d", a.Seq))
	}
	delete(in.pendXfer, a.Seq)
	cb(a.Accepted)
}

func (in *Instance) handleToPager(tp toPager) {
	in.homePagerOut(tp.Idx, tp.Data, tp.Dirty, func() {
		hs := in.home[tp.Idx]
		if hs == nil {
			hs = &homeState{}
			in.home[tp.Idx] = hs
		}
		hs.granted = false
		hs.atPager = true
		in.announcePaged(tp.Idx)
		in.send(tp.From, toPagerAck{Obj: in.info.ID, Idx: tp.Idx, Seq: tp.Seq})
	})
}

func (in *Instance) handleToPagerAck(a toPagerAck) {
	cb := in.pendPgr[a.Seq]
	if cb == nil {
		panic(fmt.Sprintf("asvm: stray pager ack seq %d", a.Seq))
	}
	delete(in.pendPgr, a.Seq)
	cb()
}
