package asvm

import (
	"asvm/internal/sim"
	"fmt"

	"asvm/internal/mesh"
	"asvm/internal/vm"
)

// This file implements internode paging (paper §3.6): the physical memory
// of all mapping nodes is a cache for the memory object. Eviction of an
// owned page prefers (1) ownership transfer to a surviving reader — no
// contents on the wire, (2) a page transfer to a node with free memory —
// selected by a cycling counter that locks onto accepting nodes, and only
// then (3) pageout to the memory object's pager.

// evictEvent carries the kernel's pageout notification into the state
// machine dispatch.
type evictEvent struct {
	data  []byte
	dirty bool
}

// DataReturn implements vm.MemoryManager: the local kernel is evicting (or
// cleaning) a page.
func (in *Instance) DataReturn(o *vm.Object, idx vm.PageIdx, data []byte, dirty, kept bool) {
	if in.transferring {
		return // contents just left with an ownership grant
	}
	if kept {
		// Clean-in-place downgrade (during copy creation): the owner keeps
		// content responsibility; nothing to do.
		return
	}
	in.dispatch(EvEvict, idx, &evictEvent{data: data, dirty: dirty})
}

// actEvictDiscard drops a non-owned copy (step 1). The owner's reader list
// self-corrects on its next probe. A faulting page keeps its fault
// bookkeeping — only a read-shared copy settles back to Invalid.
// (evictDiscard)
func actEvictDiscard(in *Instance, idx vm.PageIdx, m interface{}) {
	in.nd.Ctr.V[sim.CtrEvictDiscard]++
	in.nd.K.RemovePage(in.o, idx)
	if in.slots[idx].state == StReadShared {
		in.setState(idx, StInvalid)
	}
}

// actEvictCancel skips this pageout round for a page that is
// mid-protocol. (evictCancel)
func actEvictCancel(in *Instance, idx vm.PageIdx, m interface{}) {
	in.nd.K.CancelEviction(in.o, idx)
}

// actEvictOwner starts the owner eviction chain — unless the page is
// range-held, in which case the pageout daemon skips it. (evictOwner)
func actEvictOwner(in *Instance, idx vm.PageIdx, m interface{}) {
	ev := m.(*evictEvent)
	sl := &in.slots[idx]
	if sl.held || in.pendPush[idx] != nil {
		in.nd.K.CancelEviction(in.o, idx)
		return
	}
	in.setState(idx, StXferOut)
	in.nd.Ctr.V[sim.CtrEvictOwner]++
	if in.info.Cfg.DisableInternodePaging {
		in.evictToPager(idx, copyData(ev.data), ev.dirty)
		return
	}
	in.evictTryReaders(idx, copyData(ev.data), ev.dirty)
}

// evictTryReaders is step 2: ask readers one after another; the first that
// still holds the page takes ownership (no page contents needed). The
// reader probed is always the smallest NodeID still on the list — a
// property the reader set now gives structurally, where the old map scan
// had to re-derive it to stay deterministic.
func (in *Instance) evictTryReaders(idx vm.PageIdx, data []byte, dirty bool) {
	sl := &in.slots[idx]
	reader, ok := sl.readers.Min()
	if !ok {
		in.evictTryTransfer(idx, data, dirty)
		return
	}
	others := sl.readers.AppendTo(make([]mesh.NodeID, 0, sl.readers.Len()))[1:]
	in.seq++
	seq := in.seq
	in.pendXfer[seq] = xferWait{to: reader, cb: func(accepted bool) {
		if accepted {
			in.nd.Ctr.V[sim.CtrEvictOwnerXfer]++
			in.evictFinish(idx, reader)
			return
		}
		sl.readers.Remove(reader)
		in.evictTryReaders(idx, data, dirty)
	}}
	in.send(reader, ownerXfer{
		Obj: in.info.ID, Idx: idx, Readers: others,
		Version: sl.version, Seq: seq, From: in.self(),
	})
}

// evictTryTransfer is step 3: offer the page to another mapping node with
// free memory, cycling through the mapping and locking onto the last
// accepter.
func (in *Instance) evictTryTransfer(idx vm.PageIdx, data []byte, dirty bool) {
	target := in.nextPageoutTarget()
	if target == -1 {
		in.evictToPager(idx, data, dirty)
		return
	}
	in.offerPage(idx, data, dirty, target, func(accepted bool) {
		if accepted {
			in.lastAccepted = target
			in.nd.Ctr.V[sim.CtrEvictPageXfer]++
			in.evictFinish(idx, target)
			return
		}
		// Ask the node that most recently accepted a transfer.
		last := in.lastAccepted
		if last != -1 && last != target && last != in.self() {
			in.offerPage(idx, data, dirty, last, func(accepted bool) {
				if accepted {
					in.nd.Ctr.V[sim.CtrEvictPageXfer]++
					in.evictFinish(idx, last)
					return
				}
				in.lastAccepted = -1
				in.evictToPager(idx, data, dirty)
			})
			return
		}
		in.evictToPager(idx, data, dirty)
	})
}

// nextPageoutTarget returns the next candidate from the cycling counter,
// or -1 when this node is the only mapper.
func (in *Instance) nextPageoutTarget() mesh.NodeID {
	m := in.info.Mapping
	if len(m) <= 1 {
		return -1
	}
	for tries := 0; tries < len(m); tries++ {
		t := m[in.pageoutCounter%len(m)]
		in.pageoutCounter++
		if t != in.self() {
			return t
		}
	}
	return -1
}

func (in *Instance) offerPage(idx vm.PageIdx, data []byte, dirty bool, to mesh.NodeID, cb func(bool)) {
	in.seq++
	seq := in.seq
	in.pendXfer[seq] = xferWait{to: to, cb: cb}
	in.send(to, pageOffer{
		Obj: in.info.ID, Idx: idx, Data: copyData(data),
		Version: in.slots[idx].version, Seq: seq, From: in.self(),
	})
	_ = dirty
}

// evictToPager is step 4: return the page to the memory object's pager via
// the home instance.
func (in *Instance) evictToPager(idx vm.PageIdx, data []byte, dirty bool) {
	in.nd.Ctr.V[sim.CtrEvictToPager]++
	if in.info.Home == in.self() {
		in.homePagerOut(idx, data, dirty, func() {
			hs := in.home[idx]
			if hs == nil {
				hs = &homeState{}
				in.home[idx] = hs
			}
			hs.granted = false
			hs.atPager = true
			in.announcePaged(idx)
			in.evictFinish(idx, -1)
		})
		return
	}
	in.seq++
	seq := in.seq
	in.pendPgr[seq] = pgrWait{to: in.info.Home, dirty: dirty, cb: func() {
		in.evictFinish(idx, -1)
	}}
	in.send(in.info.Home, toPager{
		Obj: in.info.ID, Idx: idx, Data: copyData(data),
		Dirty: dirty, Seq: seq, From: in.self(),
	})
}

// announcePaged plants the "paged" hint at the static manager.
func (in *Instance) announcePaged(idx vm.PageIdx) {
	if !in.info.Cfg.StaticForwarding {
		return
	}
	sm := in.info.staticNode(idx)
	upd := ownerUpdate{Obj: in.info.ID, Idx: idx, Paged: true}
	if sm == in.self() {
		in.handleOwnerUpdate(upd)
		return
	}
	in.sendOwnerUpdate(sm, upd)
}

// evictFinish drops local state and releases the frame; queued requests
// chase the new owner (or the pager).
func (in *Instance) evictFinish(idx vm.PageIdx, newOwner mesh.NodeID) {
	in.leaveOwner(idx)
	in.nd.K.RemovePage(in.o, idx)
	if newOwner >= 0 {
		in.dyn.Put(idx, newOwner)
	} else {
		in.dyn.Delete(idx)
	}
	in.quiesce(idx)
	in.drainQueue(idx)
}

// ---------------------------------------------------------------------------
// Receiving side

// actOwnerXfer is eviction step 2 at a reader: take ownership over if the
// copy is still held (no contents needed). (xferTake)
func actOwnerXfer(in *Instance, idx vm.PageIdx, m interface{}) {
	x := m.(ownerXfer)
	pg := in.o.Pages[idx]
	accept := pg != nil && !pg.Evicting
	if accept {
		readers := x.Readers
		if in.nd.Hooks.DropXferReaders {
			readers = nil
		}
		in.installOwner(idx, readers, x.Version)
		pg.Dirty = true // contents now live here alone
		in.announceOwner(idx)
		in.nd.Ctr.V[sim.CtrOwnerXferAccepted]++
	}
	in.send(x.From, ownerXferAck{Obj: in.info.ID, Idx: idx, Seq: x.Seq, Accepted: accept})
}

// actOwnerXferDecline declines an ownership offer: a faulting node must
// not adopt the page mid-fault, and an owner (or busy owner) already has
// it. (xferDecline)
func actOwnerXferDecline(in *Instance, idx vm.PageIdx, m interface{}) {
	x := m.(ownerXfer)
	in.send(x.From, ownerXferAck{Obj: in.info.ID, Idx: idx, Seq: x.Seq, Accepted: false})
}

// actOwnerXferAck resumes the evicting owner's transfer chain. A stray ack
// is a protocol bug — except after a crash, where the failure machinery
// may have declined the transfer for a dead peer whose ack was still in
// flight. (xferAck)
func actOwnerXferAck(in *Instance, idx vm.PageIdx, m interface{}) {
	a := m.(ownerXferAck)
	if in.completeXfer(a.Seq, a.Accepted) {
		return
	}
	if !in.nd.crashEra {
		panic(fmt.Sprintf("asvm: stray owner transfer ack seq %d", a.Seq))
	}
	in.nd.Ctr.V[sim.CtrLateAcks]++
}

// actPageOffer is eviction step 3 at a candidate: adopt the page if free
// memory allows. (offerTake)
func actPageOffer(in *Instance, idx vm.PageIdx, m interface{}) {
	po := m.(pageOffer)
	accept := in.nd.K.Mem.FreePages() > in.info.Cfg.PageOfferReserve &&
		in.o.Pages[idx] == nil
	if accept {
		pg := in.nd.K.InstallPage(in.o, idx, po.Data, vm.ProtRead)
		pg.Dirty = true
		in.installOwner(idx, nil, po.Version)
		in.announceOwner(idx)
		in.nd.Ctr.V[sim.CtrPageOfferAccepted]++
	} else {
		in.nd.Ctr.V[sim.CtrPageOfferDeclined]++
	}
	in.send(po.From, pageOfferAck{Obj: in.info.ID, Idx: idx, Seq: po.Seq, Accepted: accept})
}

// actPageOfferDecline declines a page transfer at any node already
// involved with the page. (offerDecline)
func actPageOfferDecline(in *Instance, idx vm.PageIdx, m interface{}) {
	po := m.(pageOffer)
	in.nd.Ctr.V[sim.CtrPageOfferDeclined]++
	in.send(po.From, pageOfferAck{Obj: in.info.ID, Idx: idx, Seq: po.Seq, Accepted: false})
}

// actPageOfferAck resumes the evicting owner's offer chain; stray acks are
// tolerated only in the crash era, as with actOwnerXferAck. (offerAck)
func actPageOfferAck(in *Instance, idx vm.PageIdx, m interface{}) {
	a := m.(pageOfferAck)
	if in.completeXfer(a.Seq, a.Accepted) {
		return
	}
	if !in.nd.crashEra {
		panic(fmt.Sprintf("asvm: stray page offer ack seq %d", a.Seq))
	}
	in.nd.Ctr.V[sim.CtrLateAcks]++
}

// actToPager parks an evicted page's contents at the home's backing store
// (eviction step 4 at the home node). A Lost report carries no contents:
// a surviving node is telling the home that the page's ownership died with
// a crashed node, so the home forgets the grant and lets the next fault
// re-resolve from the backing store. (pagerPark)
func actToPager(in *Instance, idx vm.PageIdx, m interface{}) {
	tp := m.(toPager)
	if tp.Lost {
		hs := in.home[idx]
		if hs == nil {
			hs = &homeState{}
			in.home[idx] = hs
		}
		hs.granted = false
		in.send(tp.From, toPagerAck{Obj: in.info.ID, Idx: idx, Seq: tp.Seq})
		return
	}
	in.homePagerOut(idx, tp.Data, tp.Dirty, func() {
		hs := in.home[idx]
		if hs == nil {
			hs = &homeState{}
			in.home[idx] = hs
		}
		hs.granted = false
		hs.atPager = true
		in.announcePaged(idx)
		in.send(tp.From, toPagerAck{Obj: in.info.ID, Idx: idx, Seq: tp.Seq})
	})
}

// actToPagerAck completes the evicting owner's pageout; stray acks are
// tolerated only in the crash era. (pagerAck)
func actToPagerAck(in *Instance, idx vm.PageIdx, m interface{}) {
	a := m.(toPagerAck)
	if in.completePgr(a.Seq) {
		return
	}
	if !in.nd.crashEra {
		panic(fmt.Sprintf("asvm: stray pager ack seq %d", a.Seq))
	}
	in.nd.Ctr.V[sim.CtrLateAcks]++
}

// actToPagerAckLoose absorbs a pager ack landing outside the eviction
// chain. Without crashes that is a protocol bug (only an XferOut slot has a
// pageout in flight); in the crash era it is the normal tail of a Lost
// report — declareLost posts to the home from whatever state the bounced
// grant left the slot in (usually Invalid, possibly re-faulting already),
// and the ack is matched by sequence number, not by page state.
// (pagerAckLoose)
func actToPagerAckLoose(in *Instance, idx vm.PageIdx, m interface{}) {
	a := m.(toPagerAck)
	if !in.nd.crashEra {
		panic(fmt.Sprintf("asvm: pager ack seq %d for %v p%d in %v at node %d",
			a.Seq, in.info.ID, idx, in.slots[idx].state, in.self()))
	}
	if !in.completePgr(a.Seq) {
		in.nd.Ctr.V[sim.CtrLateAcks]++
	}
}
