package asvm

import (
	"testing"
	"testing/quick"

	"asvm/internal/sim"
	"asvm/internal/vm"
)

func TestInvariantsHoldAfterSimpleRun(t *testing.T) {
	c := newCluster(t, 4, 0, DefaultConfig())
	tasks := c.shared(t, 8, DefaultConfig())
	info := c.asvms[0].Instance(sharedID).Info()
	c.run(t, func(p *sim.Proc) error {
		for i := 0; i < 8; i++ {
			if err := tasks[i%4].WriteU64(p, vm.Addr(i*vm.PageSize), uint64(i)); err != nil {
				return err
			}
			if _, err := tasks[(i+1)%4].ReadU64(p, vm.Addr(i*vm.PageSize)); err != nil {
				return err
			}
		}
		return nil
	})
	if err := CheckInvariants(c.cl(), info); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsDetectDoubleOwner(t *testing.T) {
	c := newCluster(t, 2, 0, DefaultConfig())
	tasks := c.shared(t, 2, DefaultConfig())
	info := c.asvms[0].Instance(sharedID).Info()
	c.run(t, func(p *sim.Proc) error {
		return tasks[0].WriteU64(p, 0, 1)
	})
	// Corrupt: force a second owner.
	in1 := c.asvms[1].Instance(sharedID)
	c.kerns[1].InstallPage(in1.o, 0, nil, vm.ProtWrite)
	in1.installOwner(0, nil, 0)
	if err := CheckInvariants(c.cl(), info); err == nil {
		t.Fatal("double owner not detected")
	}
}

// corruptibleCluster runs one write so node 0 owns page 0, then hands the
// drained cluster to corrupt before checking the invariants, which must fail.
func corruptibleCluster(t *testing.T, corrupt func(c *cluster)) error {
	t.Helper()
	c := newCluster(t, 2, 0, DefaultConfig())
	tasks := c.shared(t, 2, DefaultConfig())
	info := c.asvms[0].Instance(sharedID).Info()
	c.run(t, func(p *sim.Proc) error {
		if err := tasks[0].WriteU64(p, 0, 1); err != nil {
			return err
		}
		_, err := tasks[1].ReadU64(p, 0)
		return err
	})
	if err := CheckInvariants(c.cl(), info); err != nil {
		t.Fatalf("healthy cluster failed invariants: %v", err)
	}
	corrupt(c)
	return CheckInvariants(c.cl(), info)
}

func TestInvariantsDetectOwnerWithoutPage(t *testing.T) {
	err := corruptibleCluster(t, func(c *cluster) {
		in0 := c.asvms[0].Instance(sharedID)
		c.kerns[0].RemovePage(in0.o, 0)
	})
	if err == nil {
		t.Fatal("owner without a resident page not detected")
	}
}

func TestInvariantsDetectUnknownReader(t *testing.T) {
	err := corruptibleCluster(t, func(c *cluster) {
		in0 := c.asvms[0].Instance(sharedID)
		in0.slots[0].readers.Remove(1)
	})
	if err == nil {
		t.Fatal("reader unknown to the owner not detected")
	}
}

func TestInvariantsDetectHomeGrantMismatch(t *testing.T) {
	err := corruptibleCluster(t, func(c *cluster) {
		home := c.asvms[0].Instance(sharedID)
		home.home[0].granted = false
	})
	if err == nil {
		t.Fatal("home/granted mismatch not detected")
	}
}

func TestInvariantsDetectDanglingBusy(t *testing.T) {
	err := corruptibleCluster(t, func(c *cluster) {
		in0 := c.asvms[0].Instance(sharedID)
		in0.slots[0].state = StServing
	})
	if err == nil {
		t.Fatal("dangling busy state not detected")
	}
}

// The protocol-state coherence checks added with the explicit state
// machine: each corruption makes the PageProtoState lie about the data it
// summarizes, and CheckInvariants must call it out.

func TestInvariantsDetectOwnerStateWithoutReaders(t *testing.T) {
	// After tasks[0] writes and tasks[1] reads, node 0 is in StOwner with
	// node 1 on its reader list. Empty the list without changing state:
	// StOwner now claims readers that do not exist. (The unknown-reader
	// check also fires for node 1's copy, so corrupt the state first.)
	err := corruptibleCluster(t, func(c *cluster) {
		in0 := c.asvms[0].Instance(sharedID)
		in0.slots[0].state = StOwner
		in0.slots[0].readers.Clear()
		// Silence the holder-based check so the state-coherence check is
		// what must catch this: drop node 1's copy and its ReadShared state.
		in1 := c.asvms[1].Instance(sharedID)
		c.kerns[1].RemovePage(in1.o, 0)
		in1.slots[0] = pageSlot{}
	})
	if err == nil {
		t.Fatal("Owner state with empty reader list not detected")
	}
}

func TestInvariantsDetectOwnerSoleStateWithReaders(t *testing.T) {
	err := corruptibleCluster(t, func(c *cluster) {
		in0 := c.asvms[0].Instance(sharedID)
		in0.slots[0].state = StOwnerSole
	})
	if err == nil {
		t.Fatal("OwnerSole state with readers not detected")
	}
}

func TestInvariantsDetectReadSharedWithoutCopy(t *testing.T) {
	err := corruptibleCluster(t, func(c *cluster) {
		in1 := c.asvms[1].Instance(sharedID)
		c.kerns[1].RemovePage(in1.o, 0)
	})
	if err == nil {
		t.Fatal("ReadShared state without a resident copy not detected")
	}
}

func TestInvariantsDetectReadSharedOffOwnerList(t *testing.T) {
	// Drop node 1 from the owner's reader list and fix up the owner's own
	// Owner/OwnerSole split so only node 1's surviving ReadShared state
	// disagrees: the state-coherence check (which runs before the
	// holder-based checks) must flag it.
	err := corruptibleCluster(t, func(c *cluster) {
		in0 := c.asvms[0].Instance(sharedID)
		in0.slots[0].readers.Remove(1)
		in0.slots[0].state = StOwnerSole
	})
	if err == nil {
		t.Fatal("ReadShared node missing from owner's reader list not detected")
	}
}

// TestInvariantsUnderRandomConcurrentLoad drives random concurrent
// read/write/eviction activity from every node, drains the simulation, and
// requires the paper's global invariants to hold — across seeds.
func TestInvariantsUnderRandomConcurrentLoad(t *testing.T) {
	check := func(seed uint64) bool {
		cfg := DefaultConfig()
		cfg.DynamicCacheSize = 8 // small caches: exercise fallbacks
		cfg.StaticCacheSize = 8
		c := newCluster(t, 5, 48, cfg) // bounded memory: exercise internode paging
		tasks := c.shared(t, 24, cfg)
		info := c.asvms[0].Instance(sharedID).Info()
		rng := sim.NewRNG(seed)
		ok := true
		for n := 0; n < 5; n++ {
			n := n
			order := rng.Perm(24)
			writes := rng.Uint64()
			c.eng.Spawn("stress", func(p *sim.Proc) {
				for round := 0; round < 3; round++ {
					for _, pg := range order {
						want := vm.ProtRead
						if (writes>>(uint(pg)%64))&1 == 1 {
							want = vm.ProtWrite
						}
						if _, err := tasks[n].Touch(p, vm.Addr(pg*vm.PageSize), want); err != nil {
							t.Logf("seed %d node %d: %v", seed, n, err)
							ok = false
							return
						}
					}
				}
			})
		}
		c.eng.Run()
		if !ok {
			return false
		}
		if c.eng.LiveProcs() != 0 {
			t.Logf("seed %d: %d procs leaked", seed, c.eng.LiveProcs())
			return false
		}
		if err := CheckInvariants(c.cl(), info); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
