package asvm

import (
	"asvm/internal/mesh"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// Proto is the STS channel ASVM traffic rides on, interned once at
// package init.
var Proto = xport.RegisterProto("asvm")

// reqKind distinguishes the three request flavours that flow through the
// forwarding machinery.
type reqKind int

const (
	// kindAccess is an ordinary shared-memory access request.
	kindAccess reqKind = iota
	// kindPull is a request that originated in a copy object and is being
	// resolved through shadow chains; the grant is delivered into Target.
	kindPull
	// kindPushScan probes a copy domain for an existing page owner before
	// a push (paper §3.7.2).
	kindPushScan
)

// Wire message types. Every ASVM message is a fixed 32-byte untyped block,
// optionally followed by one page of contents (paper §3.1).
type (
	// accessReq travels through the request redirector to the page owner
	// (or the pager when no owner exists).
	accessReq struct {
		Obj     vm.ObjID // domain currently being searched
		Target  vm.ObjID // domain the grant must be delivered into
		Idx     vm.PageIdx
		Want    vm.Prot
		ReqKind reqKind
		Origin  mesh.NodeID
		Hops    int
		// Scanning marks a request in the global-forwarding ring walk.
		Scanning bool
		// ScannedAll marks a request whose ring walk completed without
		// finding an owner (the home then knows a transfer is in flight).
		ScannedAll bool
		// ForHome routes the request to the home's resolution logic on
		// arrival (set when forwarding decides the pager must answer).
		ForHome bool
		// ScanStart is where the ring walk began (to detect completion).
		ScanStart mesh.NodeID
		// LastFrom is the node that forwarded the request last (loop
		// avoidance for hint chasing).
		LastFrom mesh.NodeID
	}

	// grantMsg answers an accessReq at its origin.
	grantMsg struct {
		Obj       vm.ObjID // == req.Target
		Idx       vm.PageIdx
		Lock      vm.Prot
		Data      []byte
		HasData   bool
		Fresh     bool // zero-fill grant
		Ownership bool
		Readers   []mesh.NodeID // transferred reader list
		Version   uint64        // push version of the page
		Retry     bool          // push/eviction race: re-forward the request
		// AtPagerCopy marks contents the pager also holds (a clean page-in
		// grant): the new owner's copy may stay clean.
		AtPagerCopy bool
		// Unavailable is the typed failure grant: the request chased the
		// page to its home and the home is down, so nothing can ever be
		// granted. The origin aborts its fault with vm.ErrObjectUnavailable
		// instead of waiting forever. From carries the dead home's ID.
		Unavailable bool
		From        mesh.NodeID
	}

	// invalMsg removes a read copy; the reader learns the new owner for
	// its dynamic hint cache.
	invalMsg struct {
		Obj      vm.ObjID
		Idx      vm.PageIdx
		NewOwner mesh.NodeID
		Seq      uint64
		From     mesh.NodeID
	}

	// invalAck confirms an invalidation. From identifies the acking reader
	// so the owner can strike it from the batch's await list (a crashed
	// reader's slot is completed for it by the failure machinery).
	invalAck struct {
		Obj  vm.ObjID
		Idx  vm.PageIdx
		Seq  uint64
		From mesh.NodeID
	}

	// ownerUpdate refreshes the static ownership manager's cache (and
	// marks pages paged out).
	ownerUpdate struct {
		Obj   vm.ObjID
		Idx   vm.PageIdx
		Owner mesh.NodeID
		Paged bool
	}

	// ownerXfer offers ownership to a node on the reader list during
	// eviction (internode paging step 2 — no page contents needed).
	ownerXfer struct {
		Obj     vm.ObjID
		Idx     vm.PageIdx
		Readers []mesh.NodeID
		Version uint64
		Seq     uint64
		From    mesh.NodeID
	}

	// ownerXferAck accepts or declines an ownership transfer.
	ownerXferAck struct {
		Obj      vm.ObjID
		Idx      vm.PageIdx
		Seq      uint64
		Accepted bool
		From     mesh.NodeID
	}

	// pageOffer offers page contents to a node with free memory
	// (internode paging step 3).
	pageOffer struct {
		Obj     vm.ObjID
		Idx     vm.PageIdx
		Data    []byte
		Version uint64
		Seq     uint64
		From    mesh.NodeID
	}

	// pageOfferAck accepts or declines a page transfer.
	pageOfferAck struct {
		Obj      vm.ObjID
		Idx      vm.PageIdx
		Seq      uint64
		Accepted bool
		From     mesh.NodeID
	}

	// toPager returns a page to the memory object's pager (internode
	// paging step 4), via the domain's home instance. With Lost set it
	// carries no contents at all: it tells the home that the page's
	// ownership died with a crashed node, so the home must forget any
	// outstanding grant and let future faults re-resolve from the pager.
	toPager struct {
		Obj   vm.ObjID
		Idx   vm.PageIdx
		Data  []byte
		Dirty bool
		Lost  bool
		Seq   uint64
		From  mesh.NodeID
	}

	// toPagerAck confirms the page reached the pager.
	toPagerAck struct {
		Obj vm.ObjID
		Idx vm.PageIdx
		Seq uint64
	}

	// pushScanAck answers a kindPushScan request back at the pushing
	// owner. Found=true cancels the push.
	pushScanAck struct {
		SrcObj vm.ObjID // the source domain whose owner is pushing
		Idx    vm.PageIdx
		Found  bool
	}
)

// Message kinds, protocol-scoped (see xport.MsgKind). The dispatcher in
// Node.handle switches on these dense values, which the compiler lowers to
// a jump table instead of a linear type-assertion chain.
const (
	msgAccessReq xport.MsgKind = iota
	msgGrant
	msgInval
	msgInvalAck
	msgOwnerUpdate
	msgOwnerXfer
	msgOwnerXferAck
	msgPageOffer
	msgPageOfferAck
	msgToPager
	msgToPagerAck
	msgPushScanAck
)

// The xport.Msg envelope: each message declares its kind and the payload
// it carries on the wire, so send sites never restate the convention.
// Requests, acks and pure-control messages are header-only; a grant
// carries a page exactly when HasData is set (upgrades, retries and fresh
// zero-fill grants ship no contents); pageOffer always ships the page;
// toPager ships it only when dirty (a clean return is just bookkeeping —
// the pager already has the contents).

// msgPool is a free list of boxed messages for one wire kind. The hot
// message kinds are sent as *T so the interface box itself is reusable:
// Node.handle returns each box after its dispatch completes (the protocol
// never retains one — actions copy the value out). Recycling is gated by
// Node.poolMsgs: a transport that can duplicate a delivery or retain a
// message for retransmission (fault injection, the reliable wrapper) makes
// "dead after dispatch" false, so under those wrappers put is a no-op and
// every box is simply garbage collected.
type msgPool[T any] struct {
	free []*T
}

// get boxes v, reusing a recycled box when one is available.
func (p *msgPool[T]) get(v T) *T {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		*b = v
		return b
	}
	b := new(T)
	*b = v
	return b
}

// put recycles a dead box. The zeroing drops payload references (a grant's
// Data slice lives on with the receiver; the box must not pin it).
func (p *msgPool[T]) put(b *T) {
	var zero T
	*b = zero
	p.free = append(p.free, b)
}

func (accessReq) Kind() xport.MsgKind { return msgAccessReq }
func (accessReq) WireBytes() int      { return 0 }

func (grantMsg) Kind() xport.MsgKind { return msgGrant }
func (g grantMsg) WireBytes() int {
	if g.HasData {
		return vm.PageSize
	}
	return 0
}

func (invalMsg) Kind() xport.MsgKind { return msgInval }
func (invalMsg) WireBytes() int      { return 0 }

func (invalAck) Kind() xport.MsgKind { return msgInvalAck }
func (invalAck) WireBytes() int      { return 0 }

func (ownerUpdate) Kind() xport.MsgKind { return msgOwnerUpdate }
func (ownerUpdate) WireBytes() int      { return 0 }

func (ownerXfer) Kind() xport.MsgKind { return msgOwnerXfer }
func (ownerXfer) WireBytes() int      { return 0 }

func (ownerXferAck) Kind() xport.MsgKind { return msgOwnerXferAck }
func (ownerXferAck) WireBytes() int      { return 0 }

func (pageOffer) Kind() xport.MsgKind { return msgPageOffer }
func (pageOffer) WireBytes() int      { return vm.PageSize }

func (pageOfferAck) Kind() xport.MsgKind { return msgPageOfferAck }
func (pageOfferAck) WireBytes() int      { return 0 }

func (toPager) Kind() xport.MsgKind { return msgToPager }
func (t toPager) WireBytes() int {
	if t.Dirty {
		return vm.PageSize
	}
	return 0
}

func (toPagerAck) Kind() xport.MsgKind { return msgToPagerAck }
func (toPagerAck) WireBytes() int      { return 0 }

func (pushScanAck) Kind() xport.MsgKind { return msgPushScanAck }
func (pushScanAck) WireBytes() int      { return 0 }
