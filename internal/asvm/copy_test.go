package asvm

import (
	"testing"

	"asvm/internal/sim"
	"asvm/internal/vm"
)

// forkFixture initializes a parent region on node 0 and remote-forks it to
// node 1, returning both tasks.
func forkFixture(t *testing.T, c *cluster, pages vm.PageIdx, init []uint64) (parent, child *vm.Task) {
	t.Helper()
	parent = c.kerns[0].NewTask("parent")
	region := c.kerns[0].NewAnonymous(pages)
	if _, err := parent.Map.MapObject(0, region, 0, pages, vm.ProtWrite, vm.InheritCopy); err != nil {
		t.Fatal(err)
	}
	c.run(t, func(p *sim.Proc) error {
		for i, v := range init {
			if err := parent.WriteU64(p, vm.Addr(i)*vm.PageSize, v); err != nil {
				return err
			}
		}
		var err error
		child, err = RemoteFork(c.cl(), parent, c.asvms[1], "child", DefaultConfig())
		return err
	})
	return parent, child
}

func TestPushScanCancelsSecondPush(t *testing.T) {
	// After the child pulled a page into the copy domain, the parent's
	// write must see the push scan find that owner and cancel the push.
	c := newCluster(t, 3, 0, DefaultConfig())
	parent, child := forkFixture(t, c, 4, []uint64{10})
	c.run(t, func(p *sim.Proc) error {
		// Child reads the page: it becomes owner of the page in the copy
		// domain (pull grant).
		v, err := child.ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 10 {
			t.Errorf("child read %d", v)
		}
		// Parent writes: push scan finds the child's copy-domain owner.
		if err := parent.WriteU64(p, 0, 20); err != nil {
			return err
		}
		// Child still sees the frozen value.
		v, err = child.ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 10 {
			t.Errorf("child saw %d after parent write, want 10", v)
		}
		return nil
	})
	cancelled := int64(0)
	installed := int64(0)
	for _, a := range c.asvms {
		cancelled += a.Ctr.Get("pushes_cancelled")
		installed += a.Ctr.Get("pushes_installed")
	}
	if cancelled == 0 {
		t.Fatalf("push not cancelled (cancelled=%d installed=%d)", cancelled, installed)
	}
}

func TestTwoRemoteCopiesSnapshotCorrectly(t *testing.T) {
	// Copy 1 at value 1, copy 2 at value 2, source ends at 3 — the
	// cross-node version of the asymmetric-chain snapshot semantics.
	c := newCluster(t, 3, 0, DefaultConfig())
	parent := c.kerns[0].NewTask("parent")
	region := c.kerns[0].NewAnonymous(2)
	if _, err := parent.Map.MapObject(0, region, 0, 2, vm.ProtWrite, vm.InheritCopy); err != nil {
		t.Fatal(err)
	}
	var child1, child2 *vm.Task
	c.run(t, func(p *sim.Proc) error {
		if err := parent.WriteU64(p, 0, 1); err != nil {
			return err
		}
		var err error
		child1, err = RemoteFork(c.cl(), parent, c.asvms[1], "c1", DefaultConfig())
		if err != nil {
			return err
		}
		if err := parent.WriteU64(p, 0, 2); err != nil {
			return err
		}
		child2, err = RemoteFork(c.cl(), parent, c.asvms[2], "c2", DefaultConfig())
		if err != nil {
			return err
		}
		if err := parent.WriteU64(p, 0, 3); err != nil {
			return err
		}
		v1, err := child1.ReadU64(p, 0)
		if err != nil {
			return err
		}
		v2, err := child2.ReadU64(p, 0)
		if err != nil {
			return err
		}
		pv, err := parent.ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v1 != 1 || v2 != 2 || pv != 3 {
			t.Errorf("snapshots %d/%d source %d, want 1/2/3", v1, v2, pv)
		}
		return nil
	})
}

func TestChildWritesPushBackwardsNever(t *testing.T) {
	// Child writes never reach the parent: the copy domain is downstream.
	c := newCluster(t, 2, 0, DefaultConfig())
	parent, child := forkFixture(t, c, 4, []uint64{5, 6})
	c.run(t, func(p *sim.Proc) error {
		if err := child.WriteU64(p, 0, 500); err != nil {
			return err
		}
		if err := child.WriteU64(p, vm.PageSize, 600); err != nil {
			return err
		}
		a, _ := parent.ReadU64(p, 0)
		b, _ := parent.ReadU64(p, vm.PageSize)
		if a != 5 || b != 6 {
			t.Errorf("parent saw %d/%d, want 5/6", a, b)
		}
		return nil
	})
}

func TestForkOfChildSharesGrandparentData(t *testing.T) {
	// Fork the child onward while the grandparent still holds the only
	// copy of an untouched page: the grandchild's pull walks both domains.
	c := newCluster(t, 4, 0, DefaultConfig())
	_, child := forkFixture(t, c, 4, []uint64{11, 22, 33})
	c.run(t, func(p *sim.Proc) error {
		grandchild, err := RemoteFork(c.cl(), child, c.asvms[2], "gc", DefaultConfig())
		if err != nil {
			return err
		}
		for i, want := range []uint64{11, 22, 33} {
			v, err := grandchild.ReadU64(p, vm.Addr(i)*vm.PageSize)
			if err != nil {
				return err
			}
			if v != want {
				t.Errorf("page %d = %d, want %d", i, v, want)
			}
		}
		return nil
	})
}

func TestRemoteForkSharedEntries(t *testing.T) {
	// InheritShare entries stay coherently shared across the fork.
	c := newCluster(t, 2, 0, DefaultConfig())
	parent := c.kerns[0].NewTask("parent")
	region := c.kerns[0].NewAnonymous(2)
	if _, err := parent.Map.MapObject(0, region, 0, 2, vm.ProtWrite, vm.InheritShare); err != nil {
		t.Fatal(err)
	}
	c.run(t, func(p *sim.Proc) error {
		if err := parent.WriteU64(p, 0, 1); err != nil {
			return err
		}
		child, err := RemoteFork(c.cl(), parent, c.asvms[1], "child", DefaultConfig())
		if err != nil {
			return err
		}
		if err := child.WriteU64(p, 0, 2); err != nil {
			return err
		}
		v, err := parent.ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 2 {
			t.Errorf("shared entry lost write: %d", v)
		}
		return nil
	})
}

func TestPromoteRejectsPagedOut(t *testing.T) {
	c := newCluster(t, 2, 0, DefaultConfig())
	o := c.kerns[0].NewAnonymous(4)
	o.PagedOut[1] = true
	if _, err := Promote(c.asvms[0], o, nil, DefaultConfig()); err == nil {
		t.Fatal("promotion with paged-out pages accepted")
	}
}

func TestPromoteIdempotent(t *testing.T) {
	c := newCluster(t, 2, 0, DefaultConfig())
	o := c.kerns[0].NewAnonymous(4)
	info1, err := Promote(c.asvms[0], o, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info2, err := Promote(c.asvms[0], o, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if info1 != info2 {
		t.Fatal("second promotion created a new domain")
	}
}
