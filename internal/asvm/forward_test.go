package asvm

import (
	"testing"
	"testing/quick"

	"asvm/internal/mesh"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

func TestHintCacheBasics(t *testing.T) {
	h := newHintCache(4)
	if _, ok := h.Get(1); ok {
		t.Fatal("empty cache hit")
	}
	h.Put(1, 10)
	h.Put(2, 20)
	if n, ok := h.Get(1); !ok || n != 10 {
		t.Fatalf("Get(1) = %v/%v", n, ok)
	}
	h.Put(1, 11) // update in place
	if n, _ := h.Get(1); n != 11 {
		t.Fatalf("update lost: %v", n)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	h.Delete(1)
	if _, ok := h.Get(1); ok {
		t.Fatal("deleted entry still present")
	}
}

func TestHintCacheEvictsOldest(t *testing.T) {
	h := newHintCache(3)
	for i := 0; i < 5; i++ {
		h.Put(vm.PageIdx(i), mesh.NodeID(i))
	}
	if _, ok := h.Get(0); ok {
		t.Fatal("oldest entry survived")
	}
	if _, ok := h.Get(1); ok {
		t.Fatal("second-oldest entry survived")
	}
	for i := 2; i < 5; i++ {
		if _, ok := h.Get(vm.PageIdx(i)); !ok {
			t.Fatalf("recent entry %d evicted", i)
		}
	}
}

func TestHintCacheDeleteDoesNotStarveLiveHints(t *testing.T) {
	// Regression: Delete used to leave a dead slot in the FIFO order, so a
	// later eviction could land on the dead slot's neighbor — evicting a
	// live hint while the cache was not even full.
	h := newHintCache(3)
	h.Put(1, 10)
	h.Put(2, 20)
	h.Delete(2)
	h.Put(3, 30)
	h.Put(4, 40) // fills to capacity: {1, 3, 4}
	if _, ok := h.Get(1); !ok {
		t.Fatal("live hint 1 evicted while the cache had a free slot")
	}
	h.Put(5, 50) // over capacity now: must evict 1, the oldest live hint
	if _, ok := h.Get(1); ok {
		t.Fatal("oldest live hint survived a genuine eviction")
	}
	for _, idx := range []vm.PageIdx{3, 4, 5} {
		if _, ok := h.Get(idx); !ok {
			t.Fatalf("hint %d lost", idx)
		}
	}
}

func TestHintCacheReadmittedPageGetsFreshSlot(t *testing.T) {
	// Delete then re-Put must renew the page's FIFO position: the old slot
	// is a tombstone and must not evict the readmitted entry early.
	h := newHintCache(2)
	h.Put(1, 10)
	h.Put(2, 20)
	h.Delete(1)
	h.Put(1, 11) // readmitted: now younger than 2
	h.Put(3, 30) // evicts 2, not the readmitted 1
	if _, ok := h.Get(2); ok {
		t.Fatal("page 2 survived; the readmitted page was evicted instead")
	}
	if n, ok := h.Get(1); !ok || n != 11 {
		t.Fatalf("readmitted hint lost: %v/%v", n, ok)
	}
}

func TestHintCacheTombstoneCompaction(t *testing.T) {
	// Hammer Delete/Put cycles: the order slice must stay bounded by
	// live + max rather than growing with every churn.
	const cap = 4
	h := newHintCache(cap)
	for i := 0; i < 1000; i++ {
		idx := vm.PageIdx(i % 8)
		h.Put(idx, mesh.NodeID(i%5))
		if i%3 == 0 {
			h.Delete(idx)
		}
	}
	if h.Len() > cap {
		t.Fatalf("live entries %d exceed capacity %d", h.Len(), cap)
	}
	if len(h.order) > h.Len()+cap+1 {
		t.Fatalf("order grew unboundedly: %d slots for %d live entries", len(h.order), h.Len())
	}
}

func TestHintCacheNeverExceedsCapacity(t *testing.T) {
	check := func(seed uint64) bool {
		const cap = 8
		h := newHintCache(cap)
		r := sim.NewRNG(seed)
		for i := 0; i < 200; i++ {
			h.Put(vm.PageIdx(r.Intn(64)), mesh.NodeID(r.Intn(16)))
			if h.Len() > cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticLRUBasics(t *testing.T) {
	s := newStaticLRU(2)
	s.Put(1, staticEntry{owner: 5})
	s.Put(2, staticEntry{paged: true})
	if e, ok := s.Get(1); !ok || e.owner != 5 {
		t.Fatalf("Get(1) = %+v/%v", e, ok)
	}
	if e, ok := s.Get(2); !ok || !e.paged {
		t.Fatalf("Get(2) = %+v/%v", e, ok)
	}
	s.Put(3, staticEntry{owner: 7}) // evicts page 1
	if _, ok := s.Get(1); ok {
		t.Fatal("LRU entry survived over capacity")
	}
}

func TestMappingRingHelpers(t *testing.T) {
	d := &DomainInfo{Mapping: []mesh.NodeID{3, 7, 11}}
	d.Reindex()
	if d.staticNode(0) != 3 || d.staticNode(1) != 7 || d.staticNode(5) != 11 {
		t.Fatal("staticNode hashing wrong")
	}
	if d.mappingIndex(7) != 1 || d.mappingIndex(99) != -1 {
		t.Fatal("mappingIndex wrong")
	}
	if d.nextInRing(11) != 3 || d.nextInRing(3) != 7 {
		t.Fatal("nextInRing wrong")
	}
}

// TestHintCacheDeleteOwnerChurn drives the cache through a long random mix
// of Put / Delete / DeleteOwner (the peer-down eviction path) against a
// reference model, checking after every operation that lookups, the live
// count, the capacity bound, and DeleteOwner's eviction count all agree —
// and that no hint pointing at a downed node ever survives the eviction.
// This is the workload shape a crash sweep produces: hints churn steadily
// while whole owners vanish at once, exercising the tombstone bookkeeping
// far harder than single deletes.
func TestHintCacheDeleteOwnerChurn(t *testing.T) {
	const (
		capacity = 16
		pages    = 48
		nodes    = 5
		rounds   = 4000
	)
	h := newHintCache(capacity)
	model := make(map[vm.PageIdx]mesh.NodeID)
	var fifo []vm.PageIdx // insertion order of live model entries
	modelDelete := func(idx vm.PageIdx) {
		delete(model, idx)
		for i, p := range fifo {
			if p == idx {
				fifo = append(fifo[:i], fifo[i+1:]...)
				break
			}
		}
	}
	rng := sim.NewRNG(42)
	for round := 0; round < rounds; round++ {
		switch op := rng.Intn(10); {
		case op < 6: // Put dominates, as in real forwarding traffic
			idx := vm.PageIdx(rng.Intn(pages))
			n := mesh.NodeID(rng.Intn(nodes))
			h.Put(idx, n)
			if _, exists := model[idx]; exists {
				model[idx] = n // update in place keeps its slot
				break
			}
			if len(model) >= capacity {
				modelDelete(fifo[0]) // evict oldest live
			}
			model[idx] = n
			fifo = append(fifo, idx)
		case op < 8: // single delete (lazy Nack-driven eviction)
			idx := vm.PageIdx(rng.Intn(pages))
			h.Delete(idx)
			modelDelete(idx)
		default: // a node goes down: every hint at it must die at once
			n := mesh.NodeID(rng.Intn(nodes))
			want := 0
			for idx, owner := range model {
				if owner == n {
					want++
					modelDelete(idx)
				}
			}
			if got := h.DeleteOwner(n); got != want {
				t.Fatalf("round %d: DeleteOwner(%d) evicted %d, want %d", round, n, got, want)
			}
			for idx := vm.PageIdx(0); idx < pages; idx++ {
				if owner, ok := h.Get(idx); ok && owner == n {
					t.Fatalf("round %d: hint p%d -> downed node %d survived", round, idx, n)
				}
			}
		}
		if h.Len() != len(model) {
			t.Fatalf("round %d: Len=%d model=%d", round, h.Len(), len(model))
		}
		if h.Len() > capacity {
			t.Fatalf("round %d: capacity exceeded: %d", round, h.Len())
		}
		for idx, wantN := range model {
			if n, ok := h.Get(idx); !ok || n != wantN {
				t.Fatalf("round %d: Get(%d) = %v/%v, model %v", round, idx, n, ok, wantN)
			}
		}
		// The slot list must stay O(live + capacity) under churn — the
		// compaction invariant that keeps a long-lived node's cache from
		// growing without bound.
		if len(h.order) > 2*capacity+1 {
			t.Fatalf("round %d: order grew to %d slots", round, len(h.order))
		}
	}
}
