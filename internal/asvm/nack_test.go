package asvm

import (
	"strings"
	"testing"

	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/sim"
	"asvm/internal/sts"
	"asvm/internal/vm"
)

// newPartialCluster builds nHW hardware nodes but ASVM runtimes only on
// asvmOn: the others are reachable on the wire yet have no asvm protocol
// handler, so messages sent there bounce as transport NACKs.
func newPartialCluster(t *testing.T, nHW int, asvmOn []int, cfg Config) *cluster {
	t.Helper()
	e := sim.NewEngine()
	net := mesh.New(e, nHW, mesh.DefaultConfig(nHW))
	hw := make([]*node.Node, nHW)
	for i := range hw {
		hw[i] = node.New(e, mesh.NodeID(i))
	}
	tr := sts.New(e, net, hw, sts.DefaultCosts())
	c := &cluster{eng: e, net: net, tr: tr, hw: hw}
	for _, i := range asvmOn {
		k := vm.NewKernel(e, mesh.NodeID(i), vm.DefaultCosts(), vm.NewPhysMem(0), true)
		c.kerns = append(c.kerns, k)
		c.asvms = append(c.asvms, NewNode(e, k, tr, cfg))
	}
	return c
}

// TestNackFallbackChain points the redirector at a node with no ASVM
// runtime — as static manager, ring-scan member, and dynamic hint — and
// checks every request still resolves by falling back down the
// dynamic → static → global → home chain.
func TestNackFallbackChain(t *testing.T) {
	c := newPartialCluster(t, 3, []int{0, 1}, DefaultConfig())
	_, objs := Setup(sharedID, 3, c.asvms, 0, nil, DefaultConfig())
	tasks := make([]*vm.Task, len(c.asvms))
	for i, a := range c.asvms {
		task := a.K.NewTask("t")
		if _, err := task.Map.MapObject(0, objs[i], 0, 3, vm.ProtWrite, vm.InheritShare); err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}
	info := c.asvms[0].Instance(sharedID).info
	// Poison the routing tables: node 2 joins the mapping ring (so it
	// becomes page 2's static manager and a ring-scan hop) without ever
	// getting a runtime.
	info.Mapping = append(info.Mapping, 2)
	info.Reindex()

	in1 := c.asvms[1].Instance(sharedID)
	c.run(t, func(p *sim.Proc) error {
		// Phase A — static manager is dead: node 0 faults page 2, whose
		// static manager hashes to node 2. The NACK must fall through to
		// the home (node 0 itself).
		if err := tasks[0].WriteU64(p, 2*vm.PageSize, 11); err != nil {
			return err
		}
		// Phase B — ring scan crosses the dead node: node 1 faults the same
		// page. Static manager NACKs, the scan reaches node 2, NACKs again,
		// and must continue past it to the owner on node 0.
		v, err := tasks[1].ReadU64(p, 2*vm.PageSize)
		if err != nil {
			return err
		}
		if v != 11 {
			t.Errorf("read %d through NACK fallback, want 11", v)
		}
		// Phase C — stale dynamic hint: node 0 owns page 0; node 1 is told
		// the owner is the dead node. The NACK must drop the hint and
		// re-forward via the static manager.
		if err := tasks[0].WriteU64(p, 0, 22); err != nil {
			return err
		}
		in1.dyn.Put(0, 2)
		v, err = tasks[1].ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 22 {
			t.Errorf("read %d after hint NACK, want 22", v)
		}
		return nil
	})

	if h, ok := in1.dyn.Get(0); ok && h == 2 {
		t.Error("stale hint at the dead node survived the NACK")
	}
	if n := c.asvms[0].Ctr.Get("nacks"); n < 1 {
		t.Errorf("node 0 saw %d nacks, want >=1 (static manager bounce)", n)
	}
	if n := c.asvms[1].Ctr.Get("nacks"); n < 3 {
		t.Errorf("node 1 saw %d nacks, want >=3 (static, scan, hint)", n)
	}
	for _, a := range c.asvms {
		if got, want := a.Ctr.Get("nacks"), a.Ctr.Get("req_nacks")+a.Ctr.Get("hint_nacks"); got != want {
			t.Errorf("node %d: %d nacks but %d accounted for — something else bounced",
				a.Self, got, want)
		}
	}

	// With the dead node out of the mapping again, the surviving state must
	// satisfy every global invariant.
	info.Mapping = info.Mapping[:2]
	info.Reindex()
	if c.eng.Pending() != 0 {
		t.Fatalf("%d events still pending", c.eng.Pending())
	}
	if err := CheckInvariants(c.cl(), info); err != nil {
		t.Fatal(err)
	}
}

// TestNackFallbackOrderGolden pins the fallback chain as a golden sequence
// of forwarding hops, including the ring scan stepping over TWO consecutive
// dead nodes. Nodes 3 and 4 join the mapping ring with no runtime; node 2
// resolves a page whose static manager is dead (static bounce → ring scan
// → skip 3 → skip 4 → owner) and then one with a poisoned dynamic hint
// (dyn bounce → hint dropped → static → owner). The exact hop order —
// dynamic before static before ring before home — is the degradation
// contract; reordering it is a deliberate act reviewed as a diff here.
func TestNackFallbackOrderGolden(t *testing.T) {
	c := newPartialCluster(t, 5, []int{0, 1, 2}, DefaultConfig())
	_, objs := Setup(sharedID, 4, c.asvms, 0, nil, DefaultConfig())
	tasks := make([]*vm.Task, len(c.asvms))
	for i, a := range c.asvms {
		task := a.K.NewTask("t")
		if _, err := task.Map.MapObject(0, objs[i], 0, 4, vm.ProtWrite, vm.InheritShare); err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}
	info := c.asvms[0].Instance(sharedID).info
	in2 := c.asvms[2].Instance(sharedID)

	c.run(t, func(p *sim.Proc) error {
		// Seed ownership at node 0 while the ring is healthy.
		if err := tasks[0].WriteU64(p, 3*vm.PageSize, 33); err != nil {
			return err
		}
		if err := tasks[0].WriteU64(p, 0, 44); err != nil {
			return err
		}
		// Two consecutive ring members with no runtime join the mapping;
		// page 3's static manager now hashes to dead node 3.
		info.Mapping = append(info.Mapping, 3, 4)
		info.Reindex()
		c.asvms[2].Trace.Enable()

		// Phase A — static manager dead, scan crosses both dead nodes.
		v, err := tasks[2].ReadU64(p, 3*vm.PageSize)
		if err != nil {
			return err
		}
		if v != 33 {
			t.Errorf("phase A read %d, want 33", v)
		}
		// Phase B — poisoned dynamic hint at a dead node.
		in2.dyn.Put(0, 3)
		v, err = tasks[2].ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 44 {
			t.Errorf("phase B read %d, want 44", v)
		}
		return nil
	})

	var hops []string
	for _, line := range c.asvms[2].Trace.Lines() {
		parts := strings.SplitN(line, " ", 2) // strip the "@time" stamp
		if len(parts) == 2 && strings.HasPrefix(parts[1], "t fwd: ") {
			hops = append(hops, parts[1])
		}
	}
	golden := []string{
		// Phase A: static attempt at dead 3, escalation to the ring scan,
		// the scan skipping dead 3 and dead 4, landing on owner 0.
		"t fwd: node 2 sends obj0.5000 p3 req (origin=2 want=read forHome=false scan=false hops=1) to 3",
		"t fwd: node 2 sends obj0.5000 p3 req (origin=2 want=read forHome=false scan=true hops=2) to 3",
		"t fwd: node 2 sends obj0.5000 p3 req (origin=2 want=read forHome=false scan=true hops=3) to 4",
		"t fwd: node 2 sends obj0.5000 p3 req (origin=2 want=read forHome=false scan=true hops=4) to 0",
		// Phase B: the dynamic hint is chased first, dies with the Nack,
		// and the retry falls back to the static manager (the owner).
		"t fwd: node 2 sends obj0.5000 p0 req (origin=2 want=read forHome=false scan=false hops=1) to 3",
		"t fwd: node 2 sends obj0.5000 p0 req (origin=2 want=read forHome=false scan=false hops=2) to 0",
	}
	if len(hops) != len(golden) {
		t.Fatalf("hop sequence changed: got %d hops:\n%s", len(hops), strings.Join(hops, "\n"))
	}
	for i := range golden {
		if hops[i] != golden[i] {
			t.Errorf("hop %d:\n got  %s\n want %s", i, hops[i], golden[i])
		}
	}

	if _, ok := in2.dyn.Get(0); ok {
		t.Error("poisoned hint survived its Nack")
	}
	if n := c.asvms[2].Ctr.Get("req_nacks"); n != 4 {
		t.Errorf("node 2 saw %d request nacks, want 4 (static, scan x2, hint)", n)
	}

	info.Mapping = info.Mapping[:3]
	info.Reindex()
	if c.eng.Pending() != 0 {
		t.Fatalf("%d events still pending", c.eng.Pending())
	}
	if err := CheckInvariants(c.cl(), info); err != nil {
		t.Fatal(err)
	}
}
