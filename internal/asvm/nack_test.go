package asvm

import (
	"testing"

	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/sim"
	"asvm/internal/sts"
	"asvm/internal/vm"
)

// newPartialCluster builds nHW hardware nodes but ASVM runtimes only on
// asvmOn: the others are reachable on the wire yet have no asvm protocol
// handler, so messages sent there bounce as transport NACKs.
func newPartialCluster(t *testing.T, nHW int, asvmOn []int, cfg Config) *cluster {
	t.Helper()
	e := sim.NewEngine()
	net := mesh.New(e, nHW, mesh.DefaultConfig(nHW))
	hw := make([]*node.Node, nHW)
	for i := range hw {
		hw[i] = node.New(e, mesh.NodeID(i))
	}
	tr := sts.New(e, net, hw, sts.DefaultCosts())
	c := &cluster{eng: e, net: net, tr: tr, hw: hw}
	for _, i := range asvmOn {
		k := vm.NewKernel(e, mesh.NodeID(i), vm.DefaultCosts(), vm.NewPhysMem(0), true)
		c.kerns = append(c.kerns, k)
		c.asvms = append(c.asvms, NewNode(e, k, tr, cfg))
	}
	return c
}

// TestNackFallbackChain points the redirector at a node with no ASVM
// runtime — as static manager, ring-scan member, and dynamic hint — and
// checks every request still resolves by falling back down the
// dynamic → static → global → home chain.
func TestNackFallbackChain(t *testing.T) {
	c := newPartialCluster(t, 3, []int{0, 1}, DefaultConfig())
	_, objs := Setup(sharedID, 3, c.asvms, 0, nil, DefaultConfig())
	tasks := make([]*vm.Task, len(c.asvms))
	for i, a := range c.asvms {
		task := a.K.NewTask("t")
		if _, err := task.Map.MapObject(0, objs[i], 0, 3, vm.ProtWrite, vm.InheritShare); err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}
	info := c.asvms[0].Instance(sharedID).info
	// Poison the routing tables: node 2 joins the mapping ring (so it
	// becomes page 2's static manager and a ring-scan hop) without ever
	// getting a runtime.
	info.Mapping = append(info.Mapping, 2)

	in1 := c.asvms[1].Instance(sharedID)
	c.run(t, func(p *sim.Proc) error {
		// Phase A — static manager is dead: node 0 faults page 2, whose
		// static manager hashes to node 2. The NACK must fall through to
		// the home (node 0 itself).
		if err := tasks[0].WriteU64(p, 2*vm.PageSize, 11); err != nil {
			return err
		}
		// Phase B — ring scan crosses the dead node: node 1 faults the same
		// page. Static manager NACKs, the scan reaches node 2, NACKs again,
		// and must continue past it to the owner on node 0.
		v, err := tasks[1].ReadU64(p, 2*vm.PageSize)
		if err != nil {
			return err
		}
		if v != 11 {
			t.Errorf("read %d through NACK fallback, want 11", v)
		}
		// Phase C — stale dynamic hint: node 0 owns page 0; node 1 is told
		// the owner is the dead node. The NACK must drop the hint and
		// re-forward via the static manager.
		if err := tasks[0].WriteU64(p, 0, 22); err != nil {
			return err
		}
		in1.dyn.Put(0, 2)
		v, err = tasks[1].ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 22 {
			t.Errorf("read %d after hint NACK, want 22", v)
		}
		return nil
	})

	if h, ok := in1.dyn.Get(0); ok && h == 2 {
		t.Error("stale hint at the dead node survived the NACK")
	}
	if n := c.asvms[0].Ctr.Get("nacks"); n < 1 {
		t.Errorf("node 0 saw %d nacks, want >=1 (static manager bounce)", n)
	}
	if n := c.asvms[1].Ctr.Get("nacks"); n < 3 {
		t.Errorf("node 1 saw %d nacks, want >=3 (static, scan, hint)", n)
	}
	for _, a := range c.asvms {
		if got, want := a.Ctr.Get("nacks"), a.Ctr.Get("req_nacks")+a.Ctr.Get("hint_nacks"); got != want {
			t.Errorf("node %d: %d nacks but %d accounted for — something else bounced",
				a.Self, got, want)
		}
	}

	// With the dead node out of the mapping again, the surviving state must
	// satisfy every global invariant.
	info.Mapping = info.Mapping[:2]
	if c.eng.Pending() != 0 {
		t.Fatalf("%d events still pending", c.eng.Pending())
	}
	if err := CheckInvariants(c.asvms, info); err != nil {
		t.Fatal(err)
	}
}
