package asvm

import (
	"fmt"

	"asvm/internal/mesh"
	"asvm/internal/pager"
	"asvm/internal/vm"
)

// This file builds cross-node delayed-copy relationships (paper §3.7,
// Figures 8/9): a remote fork first establishes a shared mapping of each
// source object on the destination node, then creates a copy *domain*
// whose local representations are spliced into every sharing node's copy
// chain. The domain's home is the destination (the copy's *peer node*),
// where pulls traverse the local shadow chain.
//
// Domain setup itself is modelled cost-free (the paper's measurements
// exclude fork setup; only the subsequent faults are timed).

// Promote turns a node-private object into a single-node ASVM domain so it
// can participate in sharing and remote copies. Resident pages become
// owned by the node. pagerSrv may be nil (home-parked backing store).
func Promote(nd *Node, o *vm.Object, pagerSrv *pager.Server, cfg Config) (*DomainInfo, error) {
	if o.Mgr != nil {
		if in, ok := o.Mgr.(*Instance); ok {
			return in.info, nil // already a domain
		}
		return nil, fmt.Errorf("asvm: %v already has a foreign manager", o.ID)
	}
	if len(o.PagedOut) > 0 {
		return nil, fmt.Errorf("asvm: cannot promote %v with pages at the default pager", o.ID)
	}
	info := &DomainInfo{
		ID: o.ID, SizePages: o.SizePages,
		Home:    nd.Self,
		Mapping: []mesh.NodeID{nd.Self},
		Cfg:     cfg,
	}
	info.rebuildMapIdx()
	in := newInstance(nd, info)
	if pagerSrv != nil {
		in.pagerCli = pager.NewClient(nd.Eng, nd.TR, nd.Self, pagerSrv)
	}
	return info, nil
}

// domainOf returns the ASVM domain backing an object, or nil.
func domainOf(o *vm.Object) *DomainInfo {
	if in, ok := o.Mgr.(*Instance); ok {
		return in.info
	}
	return nil
}

// ensureSharing extends a domain (and its whole copy chain) to a node.
func ensureSharing(cluster Cluster, info *DomainInfo, nd *Node) *Instance {
	in := AddNode(info, nd)
	// The node needs local representations of every copy domain so that
	// pushes it may later perform as an owner have somewhere to land.
	src := nd.K.Object(info.ID)
	for cur := info; cur.Copy != nil; cur = cur.Copy {
		cIn := AddNode(cur.Copy, nd)
		cObj := cIn.o
		if src.Copy != cObj {
			nd.K.LinkCopy(src, cObj)
		}
		src = cObj
	}
	return in
}

// CopyDomain creates a copy domain of src on peer (the node performing the
// copy) and splices local copy objects into every sharing node's chain.
// Returns the new domain.
func CopyDomain(cluster Cluster, src *DomainInfo, peer *Node) *DomainInfo {
	c := &DomainInfo{
		ID:        peer.K.NextID(),
		SizePages: src.SizePages,
		Home:      peer.Self,
		Mapping:   append([]mesh.NodeID(nil), src.Mapping...),
		Source:    src,
		Cfg:       src.Cfg,
	}
	c.rebuildMapIdx()
	for _, nid := range src.Mapping {
		nd := cluster.node(nid)
		cIn := newInstance(nd, c)
		sObj := nd.K.Object(src.ID)
		nd.K.LinkCopy(sObj, cIn.o)
	}
	src.Copy = c
	src.Version++
	// Mark all resident source pages read-only everywhere: the next write
	// anywhere must fault and push (Figure 8).
	for _, nid := range src.Mapping {
		nd := cluster.node(nid)
		sObj := nd.K.Object(src.ID)
		for idx := range sObj.Pages {
			nd.K.LockRequest(sObj, idx, vm.ProtRead, false, nil)
		}
	}
	return c
}

// RemoteFork creates a child task on dst whose address space inherits
// parent's (on its own node) with ASVM delayed-copy semantics: shared
// entries map the same domain; copy entries map a fresh copy domain whose
// peer is dst. Plain anonymous entries are promoted to domains first.
func RemoteFork(cluster Cluster, parent *vm.Task, dst *Node, childName string, cfg Config) (*vm.Task, error) {
	child := dst.K.NewTask(childName)
	for _, e := range parent.Map.Entries() {
		switch e.Inherit {
		case vm.InheritNone:
			continue
		case vm.InheritShare:
			info := domainOf(e.Object)
			if info == nil {
				src := cluster.node(parent.Kernel.Node)
				var err error
				info, err = Promote(src, e.Object, nil, cfg)
				if err != nil {
					return nil, err
				}
			}
			in := ensureSharing(cluster, info, dst)
			if _, err := child.Map.MapObject(e.Start, in.o, e.OffsetPages, e.Pages(), e.MaxProt, e.Inherit); err != nil {
				return nil, err
			}
		case vm.InheritCopy:
			info := domainOf(e.Object)
			if info == nil {
				src := cluster.node(parent.Kernel.Node)
				var err error
				info, err = Promote(src, e.Object, nil, cfg)
				if err != nil {
					return nil, err
				}
			}
			ensureSharing(cluster, info, dst)
			c := CopyDomain(cluster, info, dst)
			cObj := dst.K.Object(c.ID)
			if _, err := child.Map.MapObject(e.Start, cObj, e.OffsetPages, e.Pages(), e.MaxProt, e.Inherit); err != nil {
				return nil, err
			}
		}
	}
	return child, nil
}
