package asvm

import (
	"testing"

	"asvm/internal/vm"
)

// TestStaticLRUGoldenEvictionOrder pins the static manager cache's exact
// replacement behaviour: insertion-order FIFO where a Put that refreshes an
// existing key does NOT move it in the order. The Config.StaticCacheSize
// knob sizes this cache, so the scale sweep's cache-sizing rows depend on
// this precise policy — a change here re-renders those rows.
func TestStaticLRUGoldenEvictionOrder(t *testing.T) {
	s := newStaticLRU(3)
	for _, idx := range []vm.PageIdx{10, 20, 30} {
		s.Put(idx, staticEntry{owner: 1})
	}
	// Refresh the oldest entry: value updates, FIFO position must not.
	s.Put(10, staticEntry{owner: 7})
	if e, ok := s.Get(10); !ok || e.owner != 7 {
		t.Fatalf("refresh did not update value: %+v %v", e, ok)
	}

	// Golden eviction sequence from state [10, 20, 30]: each new key evicts
	// the head in insertion order — 10 first (its refresh moved nothing),
	// then 20, then 30, then the newcomers in their own insertion order.
	steps := []struct {
		put   vm.PageIdx
		evict vm.PageIdx
	}{
		{40, 10},
		{50, 20},
		{60, 30},
		{70, 40},
	}
	for i, st := range steps {
		s.Put(st.put, staticEntry{owner: 2})
		if _, ok := s.Get(st.evict); ok {
			t.Fatalf("step %d: Put(%d) should have evicted %d (FIFO), but it survives", i, st.put, st.evict)
		}
		if _, ok := s.Get(st.put); !ok {
			t.Fatalf("step %d: Put(%d) not retrievable", i, st.put)
		}
		if len(s.m) != 3 {
			t.Fatalf("step %d: cache holds %d entries, want 3", i, len(s.m))
		}
	}
}

// TestStaticLRUMinCapacityAndDeleteOwner: the size knob clamps to 1, and
// DeleteOwner scrubs owner hints for the dead node while keeping "paged"
// markers (the pager's copy does not die with an owner).
func TestStaticLRUMinCapacityAndDeleteOwner(t *testing.T) {
	s := newStaticLRU(0) // clamps to 1
	s.Put(1, staticEntry{owner: 3})
	s.Put(2, staticEntry{owner: 4})
	if _, ok := s.Get(1); ok {
		t.Fatal("capacity-1 cache kept two entries")
	}
	if _, ok := s.Get(2); !ok {
		t.Fatal("capacity-1 cache lost the newest entry")
	}

	s = newStaticLRU(4)
	s.Put(1, staticEntry{owner: 3})
	s.Put(2, staticEntry{owner: 5})
	s.Put(3, staticEntry{owner: 3, paged: true})
	s.DeleteOwner(3)
	if _, ok := s.Get(1); ok {
		t.Fatal("owner hint for dead node 3 survived DeleteOwner")
	}
	if _, ok := s.Get(2); !ok {
		t.Fatal("owner hint for live node 5 was scrubbed")
	}
	if e, ok := s.Get(3); !ok || !e.paged {
		t.Fatal("paged marker was scrubbed with the dead owner")
	}
}
