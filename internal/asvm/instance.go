package asvm

import (
	"asvm/internal/sim"
	"fmt"

	"asvm/internal/mesh"
	"asvm/internal/pager"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// pageSlot is one page's protocol state at this node — one dense table
// entry per page of the domain, replacing the old owner-side pageState map
// and the separate pending-fault map. The slot's PageProtoState encodes
// what the two maps and the busy bool used to say implicitly:
//
//	state.Owner()    ⇔ the old pages[idx] != nil
//	state.Busy()     ⇔ the old pages[idx].busy
//	state.FaultOut() ⇔ the old pend[idx] != nil
//
// The slot array is allocated once per instance and never grows, so
// &in.slots[idx] is a stable pointer the protocol's completion closures
// can capture, and the fault-path lookup is an index, not a map probe.
type pageSlot struct {
	state PageProtoState

	// held marks a range-locked page (§6 extension): foreign requests
	// queue until release. Only meaningful in owner states.
	held bool

	// want is the strongest access the outstanding local fault needs
	// (FaultOut states); retries counts grant retries for it.
	want    vm.Prot
	retries int

	// staleFrom lists nodes that invalidated us while the fault was
	// outstanding: a non-ownership grant one of them sent before the
	// invalidation may still be in flight and must not install.
	staleFrom []mesh.NodeID

	// Owner-side state (owner and busy states). readers iterates in
	// ascending NodeID order by construction (see readerSet).
	readers readerSet
	version uint64 // push version (paper §3.7.2)
	queue   []accessReq
}

// dropStale consumes one stale-grant marker for from, if present.
func (sl *pageSlot) dropStale(from mesh.NodeID) bool {
	for i, n := range sl.staleFrom {
		if n == from {
			sl.staleFrom = append(sl.staleFrom[:i], sl.staleFrom[i+1:]...)
			return true
		}
	}
	return false
}

// homeState is the home node's authoritative view of a page's relationship
// to the pager (conceptually the pager's own metadata).
type homeState struct {
	granted bool // an owner exists (or a grant is in flight)
	atPager bool // latest contents are at the pager
}

// staticEntry is a static ownership manager cache entry.
type staticEntry struct {
	owner mesh.NodeID
	paged bool
}

// Instance is one node's ASVM representation of a memory object.
type Instance struct {
	nd   *Node
	info *DomainInfo
	o    *vm.Object

	pagerCli pager.PagerIO

	slots  []pageSlot
	dyn    *hintCache
	static *staticLRU
	home   map[vm.PageIdx]*homeState
	store  map[vm.PageIdx][]byte // home-side parking when no pager is configured

	seq       uint64
	pendInval map[uint64]invalBatch
	pendXfer  map[uint64]xferWait
	pendPush  map[vm.PageIdx]func(found bool)
	pendPgr   map[uint64]pgrWait

	// awaitFree recycles invalidation await lists so steady-state rounds
	// allocate nothing.
	awaitFree [][]mesh.NodeID

	// transferring suppresses DataReturn while the kernel drops a page
	// whose contents just left with an ownership grant.
	transferring bool

	// invalScratch is the reusable target buffer for invalidation rounds.
	invalScratch []mesh.NodeID

	// Internode paging target selection (paper §3.6).
	pageoutCounter int
	lastAccepted   mesh.NodeID
}

// newInstance creates (or adopts) the node's vm object for the domain and
// wires the instance in as its memory manager.
func newInstance(nd *Node, info *DomainInfo) *Instance {
	in := &Instance{
		nd: nd, info: info,
		slots:     make([]pageSlot, info.SizePages),
		dyn:       newHintCache(info.Cfg.DynamicCacheSize),
		static:    newStaticLRU(info.Cfg.StaticCacheSize),
		home:      make(map[vm.PageIdx]*homeState),
		store:     make(map[vm.PageIdx][]byte),
		pendInval: make(map[uint64]invalBatch),
		pendXfer:  make(map[uint64]xferWait),
		pendPush:  make(map[vm.PageIdx]func(bool)),
		pendPgr:   make(map[uint64]pgrWait),

		lastAccepted: -1,
	}
	if o := nd.K.Object(info.ID); o != nil {
		// Adopt an existing object (promotion of previously node-private
		// memory to an ASVM domain): resident pages become owned here.
		in.o = o
		o.Mgr = in
		o.Strategy = vm.CopyAsymmetric
		for idx := range o.Pages {
			in.installOwner(idx, nil, info.Version)
			if nd.Self == info.Home {
				in.home[idx] = &homeState{granted: true}
			}
		}
	} else {
		in.o = nd.K.NewObject(info.ID, info.SizePages, in, vm.CopyAsymmetric)
	}
	nd.instances[info.ID] = in
	return in
}

// SetPager overrides the home instance's backing-store interface — used
// to wire in a striped multi-pager file (paper §6).
func (in *Instance) SetPager(io pager.PagerIO) { in.pagerCli = io }

// Obj returns the instance's local vm object.
func (in *Instance) Obj() *vm.Object { return in.o }

// Info returns the domain description.
func (in *Instance) Info() *DomainInfo { return in.info }

// Owns reports whether this node currently owns the page.
func (in *Instance) Owns(idx vm.PageIdx) bool { return in.slots[idx].state.Owner() }

// State returns the page's current protocol state at this node.
func (in *Instance) State(idx vm.PageIdx) PageProtoState { return in.slots[idx].state }

func (in *Instance) self() mesh.NodeID { return in.nd.Self }

// installOwner makes this node the page's owner at rest — Owner or
// OwnerSole per the reader list (self is filtered out) — taking over
// whatever state the slot was in. Fault bookkeeping (want/retries/
// staleFrom) is deliberately left in place: ownership can land while a
// local fault is still formally outstanding (push installs), and the
// eventual grant settles it. The slot's reader set keeps its storage
// across ownership episodes, so steady-state transfers allocate nothing.
func (in *Instance) installOwner(idx vm.PageIdx, readerList []mesh.NodeID, version uint64) {
	sl := &in.slots[idx]
	sl.readers.Clear()
	for _, r := range readerList {
		if r != in.self() {
			sl.readers.Add(r)
		}
	}
	sl.version = version
	in.setState(idx, restOwnerState(sl.readers.Len()))
}

// leaveOwner drops ownership: the slot returns to Invalid, keeping any
// queued requests (the drain re-forwards them to the new owner). The
// reader set is emptied but keeps its storage for the slot's next
// ownership episode.
func (in *Instance) leaveOwner(idx vm.PageIdx) {
	sl := &in.slots[idx]
	sl.readers.Clear()
	sl.version = 0
	sl.held = false
	in.setState(idx, StInvalid)
}

// quiesce ends a busy window: the page returns to its at-rest owner state
// (or stays wherever the operation left it, e.g. Invalid after the
// ownership moved away). When a mid-flight checker is attached (schedule
// exploration), this is where it fires: the quiesce is the earliest moment
// the page's cross-node state must be consistent again. Production runs
// pay one nil check.
func (in *Instance) quiesce(idx vm.PageIdx) {
	sl := &in.slots[idx]
	if sl.state.Busy() {
		in.setState(idx, restOwnerState(sl.readers.Len()))
	}
	if in.nd.MidCheck != nil {
		in.nd.MidCheck(in.info, idx)
	}
}

// send ships a protocol message; the payload accounting comes from the
// message itself (xport.Msg), so call sites cannot drift from the wire
// convention.
func (in *Instance) send(to mesh.NodeID, m xport.Msg) {
	in.nd.TR.Send(in.self(), to, Proto, m.WireBytes(), m)
}

// sendGrant ships a grant in a pooled box (see msgPool). The other typed
// senders below do the same for their kinds; together with sendReq they
// cover every hot-path protocol message, so the steady-state send side
// allocates nothing.
func (in *Instance) sendGrant(to mesh.NodeID, g grantMsg) {
	in.send(to, in.nd.grantPool.get(g))
}

func (in *Instance) sendInval(to mesh.NodeID, iv invalMsg) {
	in.send(to, in.nd.invalPool.get(iv))
}

func (in *Instance) sendInvalAck(to mesh.NodeID, a invalAck) {
	in.send(to, in.nd.iackPool.get(a))
}

func (in *Instance) sendOwnerUpdate(to mesh.NodeID, u ownerUpdate) {
	in.send(to, in.nd.oupdPool.get(u))
}

// copyData snapshots page contents for a message (nil stays nil in
// metadata-only runs).
func copyData(d []byte) []byte {
	if d == nil {
		return nil
	}
	buf := make([]byte, len(d))
	copy(buf, d)
	return buf
}

// ---------------------------------------------------------------------------
// EMMI surface (vm.MemoryManager)

// DataRequest implements vm.MemoryManager: the local VM cache misses.
func (in *Instance) DataRequest(o *vm.Object, idx vm.PageIdx, desired vm.Prot) {
	in.nd.Ctr.V[sim.CtrDataRequests]++
	ev := EvFaultRead
	if desired >= vm.ProtWrite {
		ev = EvFaultWrite
	}
	in.dispatch(ev, idx, desired)
}

// DataUnlock implements vm.MemoryManager: a write upgrade on a resident
// page. If we own the page this is transition 7 of the state machine; else
// the owner sees us on its reader list and grants without contents.
func (in *Instance) DataUnlock(o *vm.Object, idx vm.PageIdx, desired vm.Prot) {
	in.nd.Ctr.V[sim.CtrDataUnlocks]++
	in.dispatch(EvFaultWrite, idx, desired)
}

// Terminate implements vm.MemoryManager.
func (in *Instance) Terminate(o *vm.Object) {}

// actFault starts or widens an outstanding fault at a non-owner: remember
// the strongest access wanted, mark the page faulting, and enter the
// request redirector. (faultStart/faultMerge/upgradeStart)
func actFault(in *Instance, idx vm.PageIdx, m interface{}) {
	desired := m.(vm.Prot)
	sl := &in.slots[idx]
	if desired > sl.want {
		sl.want = desired
	}
	if sl.want >= vm.ProtWrite {
		in.setState(idx, StFaultOutWrite)
	} else {
		in.setState(idx, StFaultOutRead)
	}
	in.forward(accessReq{
		Obj: in.info.ID, Target: in.info.ID, Idx: idx,
		Want: desired, ReqKind: kindAccess,
		Origin: in.self(), LastFrom: in.self(),
	})
}

// actFaultOwner serves (or queues) a local write upgrade at the owner —
// transition 7 of the paper's state machine. (upgradeSelf/upgradeQueue)
func actFaultOwner(in *Instance, idx vm.PageIdx, m interface{}) {
	desired := m.(vm.Prot)
	in.handleAsOwner(accessReq{
		Obj: in.info.ID, Target: in.info.ID, Idx: idx,
		Want: desired, ReqKind: kindAccess,
		Origin: in.self(), LastFrom: in.self(),
	})
}

// ---------------------------------------------------------------------------
// Grant / invalidation handling

// actGrant answers this node's outstanding fault — or tolerates a grant
// that arrives after the fault was satisfied through another path (retry
// races and push installs make that reachable). (grant/grantLate)
func actGrant(in *Instance, idx vm.PageIdx, m interface{}) {
	g := *m.(*grantMsg)
	sl := &in.slots[idx]
	faulting := sl.state.FaultOut()
	if g.Unavailable {
		// The home is down: nothing can ever satisfy this fault. Degrade
		// to a typed failure instead of waiting forever (From names the
		// dead home).
		if faulting {
			in.failFault(idx, &vm.ErrObjectUnavailable{Node: g.From, Obj: in.info.ID, Page: idx})
		}
		return
	}
	if g.Retry {
		if !faulting {
			return // request already satisfied through another path
		}
		sl.retries++
		if sl.retries > 10000 {
			panic(fmt.Sprintf("asvm: grant retry livelock on %v page %d at node %d", in.info.ID, idx, in.self()))
		}
		in.nd.Ctr.V[sim.CtrGrantRetries]++
		in.forward(accessReq{
			Obj: in.info.ID, Target: in.info.ID, Idx: idx,
			Want: sl.want, ReqKind: kindAccess,
			Origin: in.self(), LastFrom: in.self(),
		})
		return
	}
	if faulting && !g.Ownership && sl.dropStale(g.From) {
		// The granting owner invalidated us after issuing this grant (the
		// invalidation overtook it in flight): the copy it carries is dead
		// on arrival. Discard it and chase the current owner. Ownership
		// grants are exempt — they carry present authority, not a copy.
		in.nd.Ctr.V[sim.CtrStaleGrants]++
		in.forward(accessReq{
			Obj: in.info.ID, Target: in.info.ID, Idx: idx,
			Want: sl.want, ReqKind: kindAccess,
			Origin: in.self(), LastFrom: in.self(),
		})
		return
	}
	switch {
	case g.Fresh:
		in.nd.Ctr.V[sim.CtrFreshGrants]++
		in.nd.K.DataUnavailable(in.o, idx, g.Lock)
	case g.HasData:
		in.nd.K.DataSupply(in.o, idx, g.Data, g.Lock, false)
	default:
		in.nd.K.LockGrant(in.o, idx, g.Lock)
	}
	if g.Ownership {
		in.trace("t grant: node %d becomes owner of %v p%d (fresh=%v hasData=%v lock=%v from=%d pendnil=%v)", in.self(), in.info.ID, idx, g.Fresh, g.HasData, g.Lock, g.From, !faulting)
		in.installOwner(idx, g.Readers, g.Version)
		if pg := in.o.Pages[idx]; pg != nil && !g.AtPagerCopy {
			// Unless the pager also holds these contents, the owner is
			// solely responsible for them: never drop silently.
			pg.Dirty = true
		}
		in.announceOwner(idx)
	} else if !sl.state.Owner() {
		in.setState(idx, StReadShared)
	}
	sl.want, sl.retries, sl.staleFrom = 0, 0, nil
}

// announceOwner refreshes the static ownership manager's cache.
func (in *Instance) announceOwner(idx vm.PageIdx) {
	if !in.info.Cfg.StaticForwarding {
		return
	}
	sm := in.info.staticNode(idx)
	upd := ownerUpdate{Obj: in.info.ID, Idx: idx, Owner: in.self()}
	if sm == in.self() {
		in.handleOwnerUpdate(upd)
		return
	}
	in.sendOwnerUpdate(sm, upd)
}

// actOwnerUpdate refreshes the static cache; orthogonal to the page's own
// protocol state. (ownerHint)
func actOwnerUpdate(in *Instance, idx vm.PageIdx, m interface{}) {
	in.handleOwnerUpdate(*m.(*ownerUpdate))
}

func (in *Instance) handleOwnerUpdate(u ownerUpdate) {
	if u.Paged {
		in.static.Put(u.Idx, staticEntry{paged: true})
		return
	}
	in.static.Put(u.Idx, staticEntry{owner: u.Owner})
}

// invalBatch tracks one round of reader invalidations. Batches are stored
// by value in pendInval and the completion steps (back to Serving, reader
// list cleared) run in completeInvalTarget, so a round costs no batch box
// and no wrapper closure — only cont, the caller's own continuation; the
// await list itself comes from a per-instance free list. await names the
// readers whose acks are still due, so a crashed reader's slot can be
// completed for it by the failure machinery.
type invalBatch struct {
	idx   vm.PageIdx
	await []mesh.NodeID
	cont  func()
}

// xferWait is one outstanding ownership-transfer/page-offer completion:
// the continuation plus the node it waits on, so the failure machinery can
// decline entries addressed to a node that died.
type xferWait struct {
	to mesh.NodeID
	cb func(accepted bool)
}

// pgrWait is one outstanding pageout completion, likewise tagged with the
// home node it waits on; dirty marks contents that exist nowhere else, so
// the failure machinery can count them lost if the home dies first.
type pgrWait struct {
	to    mesh.NodeID
	dirty bool
	cb    func()
}

// takeAwait copies targets into a recycled await list.
func (in *Instance) takeAwait(targets []mesh.NodeID) []mesh.NodeID {
	var a []mesh.NodeID
	if n := len(in.awaitFree); n > 0 {
		a = in.awaitFree[n-1][:0]
		in.awaitFree = in.awaitFree[:n-1]
	}
	return append(a, targets...)
}

// clearReaders empties the reader list, keeping its storage.
func (in *Instance) clearReaders(idx vm.PageIdx) {
	in.slots[idx].readers.Clear()
}

// invalidateReaders sends invalidations to every reader except keep, waits
// for all acks in the InvalWait state, clears the reader list and resumes
// the Serving window (transitions 6/7). The reader set iterates in
// ascending NodeID order, so the invalidation fan-out order is
// deterministic with no sort.
func (in *Instance) invalidateReaders(idx vm.PageIdx, newOwner mesh.NodeID, cont func()) {
	sl := &in.slots[idx]
	all := sl.readers.AppendTo(in.invalScratch[:0])
	targets := all[:0]
	for _, r := range all {
		if r != newOwner && r != in.self() {
			targets = append(targets, r)
		}
	}
	in.invalScratch = all // keep the grown capacity for the next round
	if len(targets) == 0 {
		in.clearReaders(idx)
		cont()
		return
	}
	in.seq++
	seq := in.seq
	in.setState(idx, StInvalWait)
	in.pendInval[seq] = invalBatch{idx: idx, await: in.takeAwait(targets), cont: cont}
	for _, r := range targets {
		in.nd.Ctr.V[sim.CtrInvalidations]++
		in.sendInval(r, invalMsg{Obj: in.info.ID, Idx: idx, NewOwner: newOwner, Seq: seq, From: in.self()})
	}
}

// actInval is transition 8 at a reader: drop the read copy, learn the new
// owner, and — if our own fault is outstanding — remember the sender so a
// grant it issued before invalidating us is discarded on arrival.
// (invalLate/invalStale/invalDrop)
func actInval(in *Instance, idx vm.PageIdx, m interface{}) {
	iv := *m.(*invalMsg)
	// Dropping a dirty copy re-enters the machine as EvEvict (the kernel
	// returns the contents); a clean copy is just removed.
	in.nd.K.LockRequest(in.o, idx, vm.ProtNone, false, nil)
	sl := &in.slots[idx]
	if sl.state.FaultOut() {
		// The sender may have served our outstanding fault just before
		// invalidating us — that grant is still in flight and now stale.
		sl.staleFrom = append(sl.staleFrom, iv.From)
	}
	if in.info.Cfg.DynamicForwarding {
		in.dyn.Put(idx, iv.NewOwner)
	}
	in.sendInvalAck(iv.From, invalAck{Obj: in.info.ID, Idx: idx, Seq: iv.Seq, From: in.self()})
	if sl.state == StReadShared {
		// A clean copy's removal fires no DataReturn: normalize here.
		in.setState(idx, StInvalid)
	}
}

// actInvalAck completes one invalidation in the owner's InvalWait round.
// An ack whose round (or await slot) is gone is a protocol bug — except
// after a crash, where the failure machinery may have completed the round
// for a dead reader whose ack was still in flight. (invalAck)
func actInvalAck(in *Instance, idx vm.PageIdx, m interface{}) {
	ack := *m.(*invalAck)
	if in.completeInvalTarget(ack.Seq, ack.From) {
		return
	}
	if !in.nd.crashEra {
		panic(fmt.Sprintf("asvm: stray invalidation ack seq %d", ack.Seq))
	}
	in.nd.Ctr.V[sim.CtrLateAcks]++
}

// completeInvalTarget strikes one reader from an invalidation round,
// running the round's completion when it was the last ack due. It reports
// whether the (seq, reader) pair was actually outstanding — a duplicate or
// post-crash completion returns false and changes nothing.
func (in *Instance) completeInvalTarget(seq uint64, from mesh.NodeID) bool {
	b, ok := in.pendInval[seq]
	if !ok {
		return false
	}
	i := -1
	for j, t := range b.await {
		if t == from {
			i = j
			break
		}
	}
	if i < 0 {
		return false
	}
	b.await = append(b.await[:i], b.await[i+1:]...)
	if len(b.await) > 0 {
		in.pendInval[seq] = b
		return true
	}
	delete(in.pendInval, seq)
	in.awaitFree = append(in.awaitFree, b.await)
	in.setState(b.idx, StServing)
	in.clearReaders(b.idx)
	b.cont()
	return true
}

// completeXfer resumes one transfer/offer completion. It reports whether
// the seq was still outstanding.
func (in *Instance) completeXfer(seq uint64, accepted bool) bool {
	w, ok := in.pendXfer[seq]
	if !ok {
		return false
	}
	delete(in.pendXfer, seq)
	w.cb(accepted)
	return true
}

// completePgr resumes one pageout completion. It reports whether the seq
// was still outstanding.
func (in *Instance) completePgr(seq uint64) bool {
	w, ok := in.pendPgr[seq]
	if !ok {
		return false
	}
	delete(in.pendPgr, seq)
	w.cb()
	return true
}

var _ vm.MemoryManager = (*Instance)(nil)
