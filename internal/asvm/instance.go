package asvm

import (
	"asvm/internal/sim"
	"fmt"

	"asvm/internal/mesh"
	"asvm/internal/pager"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// pageState is the owner-side state of a page. Only owners hold one — the
// paper's invariant that a node keeps state only for pages in its VM cache.
type pageState struct {
	readers map[mesh.NodeID]bool
	version uint64 // push version (paper §3.7.2)
	busy    bool
	queue   []accessReq
	// held marks a range-locked page (§6 extension): foreign requests
	// queue until release.
	held bool
}

// pendingFault tracks a fault this node has in flight.
type pendingFault struct {
	want    vm.Prot
	retries int
	// staleFrom lists nodes that invalidated us while this fault was
	// outstanding: a non-ownership grant one of them sent before the
	// invalidation may still be in flight and must not install.
	staleFrom []mesh.NodeID
}

// dropStale consumes one stale-grant marker for from, if present.
func (pf *pendingFault) dropStale(from mesh.NodeID) bool {
	for i, n := range pf.staleFrom {
		if n == from {
			pf.staleFrom = append(pf.staleFrom[:i], pf.staleFrom[i+1:]...)
			return true
		}
	}
	return false
}

// homeState is the home node's authoritative view of a page's relationship
// to the pager (conceptually the pager's own metadata).
type homeState struct {
	granted bool // an owner exists (or a grant is in flight)
	atPager bool // latest contents are at the pager
}

// staticEntry is a static ownership manager cache entry.
type staticEntry struct {
	owner mesh.NodeID
	paged bool
}

// Instance is one node's ASVM representation of a memory object.
type Instance struct {
	nd   *Node
	info *DomainInfo
	o    *vm.Object

	pagerCli pager.PagerIO

	pages  map[vm.PageIdx]*pageState
	pend   map[vm.PageIdx]*pendingFault
	dyn    *hintCache
	static *staticLRU
	home   map[vm.PageIdx]*homeState
	store  map[vm.PageIdx][]byte // home-side parking when no pager is configured

	seq       uint64
	pendInval map[uint64]*invalBatch
	pendXfer  map[uint64]func(accepted bool)
	pendPush  map[vm.PageIdx]func(found bool)
	pendPgr   map[uint64]func()

	// transferring suppresses DataReturn while the kernel drops a page
	// whose contents just left with an ownership grant.
	transferring bool

	// Internode paging target selection (paper §3.6).
	pageoutCounter int
	lastAccepted   mesh.NodeID
}

// newInstance creates (or adopts) the node's vm object for the domain and
// wires the instance in as its memory manager.
func newInstance(nd *Node, info *DomainInfo) *Instance {
	in := &Instance{
		nd: nd, info: info,
		pages:     make(map[vm.PageIdx]*pageState),
		pend:      make(map[vm.PageIdx]*pendingFault),
		dyn:       newHintCache(info.Cfg.DynamicCacheSize),
		static:    newStaticLRU(info.Cfg.StaticCacheSize),
		home:      make(map[vm.PageIdx]*homeState),
		store:     make(map[vm.PageIdx][]byte),
		pendInval: make(map[uint64]*invalBatch),
		pendXfer:  make(map[uint64]func(bool)),
		pendPush:  make(map[vm.PageIdx]func(bool)),
		pendPgr:   make(map[uint64]func()),

		lastAccepted: -1,
	}
	if o := nd.K.Object(info.ID); o != nil {
		// Adopt an existing object (promotion of previously node-private
		// memory to an ASVM domain): resident pages become owned here.
		in.o = o
		o.Mgr = in
		o.Strategy = vm.CopyAsymmetric
		for idx := range o.Pages {
			in.pages[idx] = &pageState{readers: map[mesh.NodeID]bool{}, version: info.Version}
			if nd.Self == info.Home {
				in.home[idx] = &homeState{granted: true}
			}
		}
	} else {
		in.o = nd.K.NewObject(info.ID, info.SizePages, in, vm.CopyAsymmetric)
	}
	nd.instances[info.ID] = in
	return in
}

// SetPager overrides the home instance's backing-store interface — used
// to wire in a striped multi-pager file (paper §6).
func (in *Instance) SetPager(io pager.PagerIO) { in.pagerCli = io }

// Obj returns the instance's local vm object.
func (in *Instance) Obj() *vm.Object { return in.o }

// Info returns the domain description.
func (in *Instance) Info() *DomainInfo { return in.info }

// Owns reports whether this node currently owns the page.
func (in *Instance) Owns(idx vm.PageIdx) bool { return in.pages[idx] != nil }

func (in *Instance) self() mesh.NodeID { return in.nd.Self }

// clearBusy quiesces a page's busy bit. When a mid-flight checker is
// attached (schedule exploration), this is where it fires: the quiesce is
// the earliest moment the page's cross-node state must be consistent
// again. Production runs pay one nil check.
func (in *Instance) clearBusy(idx vm.PageIdx, ps *pageState) {
	ps.busy = false
	if in.nd.MidCheck != nil {
		in.nd.MidCheck(in.info, idx)
	}
}

// send ships a protocol message; the payload accounting comes from the
// message itself (xport.Msg), so call sites cannot drift from the wire
// convention.
func (in *Instance) send(to mesh.NodeID, m xport.Msg) {
	in.nd.TR.Send(in.self(), to, Proto, m.WireBytes(), m)
}

// copyData snapshots page contents for a message (nil stays nil in
// metadata-only runs).
func copyData(d []byte) []byte {
	if d == nil {
		return nil
	}
	buf := make([]byte, len(d))
	copy(buf, d)
	return buf
}

// ---------------------------------------------------------------------------
// EMMI surface (vm.MemoryManager)

// DataRequest implements vm.MemoryManager: the local VM cache misses.
func (in *Instance) DataRequest(o *vm.Object, idx vm.PageIdx, desired vm.Prot) {
	in.nd.Ctr.V[sim.CtrDataRequests]++
	pf := in.pend[idx]
	if pf == nil {
		pf = &pendingFault{}
		in.pend[idx] = pf
	}
	if desired > pf.want {
		pf.want = desired
	}
	in.forward(accessReq{
		Obj: in.info.ID, Target: in.info.ID, Idx: idx,
		Want: desired, ReqKind: kindAccess,
		Origin: in.self(), LastFrom: in.self(),
	})
}

// DataUnlock implements vm.MemoryManager: a write upgrade on a resident
// page. If we own the page this is transition 7 of the state machine; else
// the owner sees us on its reader list and grants without contents.
func (in *Instance) DataUnlock(o *vm.Object, idx vm.PageIdx, desired vm.Prot) {
	in.nd.Ctr.V[sim.CtrDataUnlocks]++
	if ps := in.pages[idx]; ps != nil {
		req := accessReq{
			Obj: in.info.ID, Target: in.info.ID, Idx: idx,
			Want: desired, ReqKind: kindAccess,
			Origin: in.self(), LastFrom: in.self(),
		}
		in.handleAsOwner(req)
		return
	}
	pf := in.pend[idx]
	if pf == nil {
		pf = &pendingFault{}
		in.pend[idx] = pf
	}
	if desired > pf.want {
		pf.want = desired
	}
	in.forward(accessReq{
		Obj: in.info.ID, Target: in.info.ID, Idx: idx,
		Want: desired, ReqKind: kindAccess,
		Origin: in.self(), LastFrom: in.self(),
	})
}

// Terminate implements vm.MemoryManager.
func (in *Instance) Terminate(o *vm.Object) {}

// ---------------------------------------------------------------------------
// Grant / invalidation handling

func (in *Instance) handleGrant(g grantMsg) {
	pf := in.pend[g.Idx]
	if g.Retry {
		if pf == nil {
			return // request already satisfied through another path
		}
		pf.retries++
		if pf.retries > 10000 {
			panic(fmt.Sprintf("asvm: grant retry livelock on %v page %d at node %d", in.info.ID, g.Idx, in.self()))
		}
		in.nd.Ctr.V[sim.CtrGrantRetries]++
		in.forward(accessReq{
			Obj: in.info.ID, Target: in.info.ID, Idx: g.Idx,
			Want: pf.want, ReqKind: kindAccess,
			Origin: in.self(), LastFrom: in.self(),
		})
		return
	}
	if pf != nil && !g.Ownership && pf.dropStale(g.From) {
		// The granting owner invalidated us after issuing this grant (the
		// invalidation overtook it in flight): the copy it carries is dead
		// on arrival. Discard it and chase the current owner. Ownership
		// grants are exempt — they carry present authority, not a copy.
		in.nd.Ctr.V[sim.CtrStaleGrants]++
		in.forward(accessReq{
			Obj: in.info.ID, Target: in.info.ID, Idx: g.Idx,
			Want: pf.want, ReqKind: kindAccess,
			Origin: in.self(), LastFrom: in.self(),
		})
		return
	}
	switch {
	case g.Fresh:
		in.nd.Ctr.V[sim.CtrFreshGrants]++
		in.nd.K.DataUnavailable(in.o, g.Idx, g.Lock)
	case g.HasData:
		in.nd.K.DataSupply(in.o, g.Idx, g.Data, g.Lock, false)
	default:
		in.nd.K.LockGrant(in.o, g.Idx, g.Lock)
	}
	delete(in.pend, g.Idx)
	if g.Ownership {
		in.trace("t grant: node %d becomes owner of %v p%d (fresh=%v hasData=%v lock=%v from=%d pendnil=%v)", in.self(), in.info.ID, g.Idx, g.Fresh, g.HasData, g.Lock, g.From, pf == nil)
		readers := make(map[mesh.NodeID]bool, len(g.Readers))
		for _, r := range g.Readers {
			if r != in.self() {
				readers[r] = true
			}
		}
		in.pages[g.Idx] = &pageState{readers: readers, version: g.Version}
		if pg := in.o.Pages[g.Idx]; pg != nil && !g.AtPagerCopy {
			// Unless the pager also holds these contents, the owner is
			// solely responsible for them: never drop silently.
			pg.Dirty = true
		}
		in.announceOwner(g.Idx)
	}
}

// announceOwner refreshes the static ownership manager's cache.
func (in *Instance) announceOwner(idx vm.PageIdx) {
	if !in.info.Cfg.StaticForwarding {
		return
	}
	sm := in.info.staticNode(idx)
	upd := ownerUpdate{Obj: in.info.ID, Idx: idx, Owner: in.self()}
	if sm == in.self() {
		in.handleOwnerUpdate(upd)
		return
	}
	in.send(sm, upd)
}

func (in *Instance) handleOwnerUpdate(u ownerUpdate) {
	if u.Paged {
		in.static.Put(u.Idx, staticEntry{paged: true})
		return
	}
	in.static.Put(u.Idx, staticEntry{owner: u.Owner})
}

// invalBatch tracks one round of reader invalidations.
type invalBatch struct {
	remaining int
	cont      func()
}

// invalidateReaders sends invalidations to every reader except keep, waits
// for all acks, clears the reader list and continues (transitions 6/7).
func (in *Instance) invalidateReaders(ps *pageState, idx vm.PageIdx, newOwner mesh.NodeID, cont func()) {
	var targets []mesh.NodeID
	for r := range ps.readers {
		if r != newOwner && r != in.self() {
			targets = append(targets, r)
		}
	}
	sortNodeIDs(targets)
	if len(targets) == 0 {
		ps.readers = make(map[mesh.NodeID]bool)
		cont()
		return
	}
	in.seq++
	seq := in.seq
	in.pendInval[seq] = &invalBatch{remaining: len(targets), cont: func() {
		ps.readers = make(map[mesh.NodeID]bool)
		cont()
	}}
	for _, r := range targets {
		in.nd.Ctr.V[sim.CtrInvalidations]++
		in.send(r, invalMsg{Obj: in.info.ID, Idx: idx, NewOwner: newOwner, Seq: seq, From: in.self()})
	}
}

func (in *Instance) handleInval(iv invalMsg) {
	// Transition 8: drop the read copy and learn the new owner.
	in.nd.K.LockRequest(in.o, iv.Idx, vm.ProtNone, false, nil)
	if pf := in.pend[iv.Idx]; pf != nil {
		// The sender may have served our outstanding fault just before
		// invalidating us — that grant is still in flight and now stale.
		// Remember the sender so handleGrant can discard it instead of
		// installing a copy the new owner does not know about.
		pf.staleFrom = append(pf.staleFrom, iv.From)
	}
	if in.info.Cfg.DynamicForwarding {
		in.dyn.Put(iv.Idx, iv.NewOwner)
	}
	in.send(iv.From, invalAck{Obj: in.info.ID, Idx: iv.Idx, Seq: iv.Seq})
}

func (in *Instance) handleInvalAck(ack invalAck) {
	b := in.pendInval[ack.Seq]
	if b == nil {
		panic(fmt.Sprintf("asvm: stray invalidation ack seq %d", ack.Seq))
	}
	b.remaining--
	if b.remaining == 0 {
		delete(in.pendInval, ack.Seq)
		b.cont()
	}
}

func sortNodeIDs(ns []mesh.NodeID) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

var _ vm.MemoryManager = (*Instance)(nil)
