package asvm

import (
	"fmt"
	"math/bits"

	"asvm/internal/mesh"
)

// readerInlineMax is the reader count up to which a readerSet stays in its
// inline array. Paper-scale sharing rarely exceeds a handful of readers per
// page, so the common case allocates nothing.
const readerInlineMax = 4

// readerSet is the owner-side reader list: the set of nodes holding a read
// copy of a page. It replaces the old map[mesh.NodeID]bool with a
// representation whose iteration order is ascending NodeID *by
// construction* — no sort calls, and no map-order hazard on any path that
// walks the readers (invalidation rounds, eviction's reader probe, crash
// scrubs all act in ascending order, as the determinism contract requires).
//
// Up to readerInlineMax readers live in a sorted inline array; the fifth
// Add promotes the set to a bitset indexed by NodeID. A promoted set never
// demotes: Clear zeroes the words in place, so a slot that once saw wide
// sharing keeps its bitset across ownership episodes and steady-state
// rounds allocate nothing. The zero value is an empty inline set, which is
// what slot resets (`pageSlot{}`) rely on.
type readerSet struct {
	n      int
	inline [readerInlineMax]mesh.NodeID
	bits   []uint64 // nil while inline; non-nil once promoted
}

// Len returns the reader count.
func (s *readerSet) Len() int { return s.n }

// Contains reports membership.
func (s *readerSet) Contains(id mesh.NodeID) bool {
	if s.bits != nil {
		w := int(id) >> 6
		return w >= 0 && w < len(s.bits) && s.bits[w]&(1<<(uint(id)&63)) != 0
	}
	for i := 0; i < s.n; i++ {
		if s.inline[i] == id {
			return true
		}
	}
	return false
}

// Add inserts a reader (idempotent).
func (s *readerSet) Add(id mesh.NodeID) {
	if id < 0 {
		panic(fmt.Sprintf("asvm: reader set cannot hold node %d", id))
	}
	if s.bits == nil {
		i := 0
		for i < s.n && s.inline[i] < id {
			i++
		}
		if i < s.n && s.inline[i] == id {
			return
		}
		if s.n < readerInlineMax {
			copy(s.inline[i+1:s.n+1], s.inline[i:s.n])
			s.inline[i] = id
			s.n++
			return
		}
		s.promote(id)
		return
	}
	w, b := int(id)>>6, uint64(1)<<(uint(id)&63)
	for w >= len(s.bits) {
		s.bits = append(s.bits, 0)
	}
	if s.bits[w]&b == 0 {
		s.bits[w] |= b
		s.n++
	}
}

// promote moves the full inline array into a fresh bitset and adds id.
func (s *readerSet) promote(id mesh.NodeID) {
	maxID := id
	for i := 0; i < s.n; i++ {
		if s.inline[i] > maxID {
			maxID = s.inline[i]
		}
	}
	s.bits = make([]uint64, int(maxID)>>6+1)
	for i := 0; i < s.n; i++ {
		s.bits[int(s.inline[i])>>6] |= 1 << (uint(s.inline[i]) & 63)
	}
	s.bits[int(id)>>6] |= 1 << (uint(id) & 63)
	s.n++
}

// Remove deletes a reader if present.
func (s *readerSet) Remove(id mesh.NodeID) {
	if s.bits != nil {
		w, b := int(id)>>6, uint64(1)<<(uint(id)&63)
		if w >= 0 && w < len(s.bits) && s.bits[w]&b != 0 {
			s.bits[w] &^= b
			s.n--
		}
		return
	}
	for i := 0; i < s.n; i++ {
		if s.inline[i] == id {
			copy(s.inline[i:], s.inline[i+1:s.n])
			s.n--
			return
		}
	}
}

// Clear empties the set, keeping a promoted set's bitset storage.
func (s *readerSet) Clear() {
	s.n = 0
	for i := range s.bits {
		s.bits[i] = 0
	}
}

// Min returns the smallest reader, or (-1, false) when empty.
func (s *readerSet) Min() (mesh.NodeID, bool) {
	if s.n == 0 {
		return -1, false
	}
	if s.bits == nil {
		return s.inline[0], true
	}
	for w, word := range s.bits {
		if word != 0 {
			return mesh.NodeID(w<<6 + bits.TrailingZeros64(word)), true
		}
	}
	return -1, false
}

// AppendTo appends the readers to dst in ascending NodeID order.
func (s *readerSet) AppendTo(dst []mesh.NodeID) []mesh.NodeID {
	if s.bits == nil {
		return append(dst, s.inline[:s.n]...)
	}
	for w, word := range s.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, mesh.NodeID(w<<6+b))
			word &^= 1 << uint(b)
		}
	}
	return dst
}
