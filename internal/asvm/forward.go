package asvm

import (
	"asvm/internal/sim"
	"fmt"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// hintCache is a bounded FIFO cache of page -> probable-owner hints (the
// dynamic forwarding cache, Figure 6). Deleting a hint tombstones its FIFO
// slot by generation: a deleted-then-readmitted page gets a fresh slot and a
// fresh generation, so stale slots never evict a live hint early. Tombstones
// are compacted away once they outnumber the capacity.
type hintCache struct {
	max   int
	m     map[vm.PageIdx]hintEntry
	order []hintSlot
	dead  int
	gen   uint64
}

// hintEntry is a live hint plus the generation of its FIFO slot.
type hintEntry struct {
	n   mesh.NodeID
	gen uint64
}

// hintSlot records the insertion order; it is stale once the page was
// deleted or readmitted under a newer generation.
type hintSlot struct {
	idx vm.PageIdx
	gen uint64
}

func newHintCache(max int) *hintCache {
	if max < 1 {
		max = 1
	}
	return &hintCache{max: max, m: make(map[vm.PageIdx]hintEntry)}
}

// Get returns the hinted owner for a page.
func (h *hintCache) Get(idx vm.PageIdx) (mesh.NodeID, bool) {
	e, ok := h.m[idx]
	return e.n, ok
}

// Put records a hint, evicting the oldest live hint when full.
func (h *hintCache) Put(idx vm.PageIdx, n mesh.NodeID) {
	if e, exists := h.m[idx]; exists {
		h.m[idx] = hintEntry{n: n, gen: e.gen}
		return
	}
	if len(h.m) >= h.max {
		for {
			s := h.order[0]
			h.order = h.order[1:]
			if e, ok := h.m[s.idx]; ok && e.gen == s.gen {
				delete(h.m, s.idx)
				break
			}
			h.dead-- // skipped a tombstone
		}
	}
	h.gen++
	h.m[idx] = hintEntry{n: n, gen: h.gen}
	h.order = append(h.order, hintSlot{idx: idx, gen: h.gen})
}

// Delete removes a hint; its FIFO slot becomes a tombstone.
func (h *hintCache) Delete(idx vm.PageIdx) {
	if _, ok := h.m[idx]; !ok {
		return
	}
	delete(h.m, idx)
	h.dead++
	if h.dead > h.max {
		h.compact()
	}
}

// compact drops stale slots so order stays O(live + max).
func (h *hintCache) compact() {
	live := h.order[:0]
	for _, s := range h.order {
		if e, ok := h.m[s.idx]; ok && e.gen == s.gen {
			live = append(live, s)
		}
	}
	h.order = live
	h.dead = 0
}

// DeleteOwner removes every hint pointing at the given node — fired the
// moment the reliability layer declares it down, so no later request
// chases a ghost owner. Returns how many hints were evicted; their FIFO
// slots become tombstones exactly as in Delete.
func (h *hintCache) DeleteOwner(n mesh.NodeID) int {
	evicted := 0
	for idx, e := range h.m {
		if e.n == n {
			delete(h.m, idx)
			h.dead++
			evicted++
		}
	}
	if h.dead > h.max {
		h.compact()
	}
	return evicted
}

// Len reports the live entry count.
func (h *hintCache) Len() int { return len(h.m) }

// staticLRU is the bounded static ownership-manager cache: owner hints
// plus the paper's "paged" markers.
type staticLRU struct {
	max   int
	m     map[vm.PageIdx]staticEntry
	order []vm.PageIdx
}

func newStaticLRU(max int) *staticLRU {
	if max < 1 {
		max = 1
	}
	return &staticLRU{max: max, m: make(map[vm.PageIdx]staticEntry)}
}

// Get looks up an entry.
func (s *staticLRU) Get(idx vm.PageIdx) (staticEntry, bool) {
	e, ok := s.m[idx]
	return e, ok
}

// DeleteOwner drops cached owner entries pointing at a dead node; "paged"
// markers are kept (the pager's copy does not die with an owner). Stale
// order entries are harmless — Put treats an absent key as new.
func (s *staticLRU) DeleteOwner(n mesh.NodeID) {
	for idx, e := range s.m {
		if !e.paged && e.owner == n {
			delete(s.m, idx)
		}
	}
}

// Put inserts or refreshes an entry.
func (s *staticLRU) Put(idx vm.PageIdx, e staticEntry) {
	if _, exists := s.m[idx]; !exists {
		if len(s.order) >= s.max {
			old := s.order[0]
			s.order = s.order[1:]
			delete(s.m, old)
		}
		s.order = append(s.order, idx)
	}
	s.m[idx] = e
}

// ---------------------------------------------------------------------------
// The request redirector

// homeRetryDelay paces re-forwarding when an in-flight ownership transfer
// makes a page momentarily ownerless.
const homeRetryDelay = 300 * time.Microsecond

// forward implements the layered redirector: owner short-circuit, request
// combining, dynamic hints, static managers, global ring scan, and finally
// the home/pager (paper §3.4). Requests arriving on the transport enter
// through the EvAccessReq dispatch; forward is the internal re-entry point
// for chasing, retries and locally generated requests.
func (in *Instance) forward(req accessReq) {
	self := in.self()
	// Owner short-circuit: the request has arrived.
	if in.slots[req.Idx].state.Owner() {
		in.handleAsOwner(req)
		return
	}
	// Home-directed requests go straight to the resolution logic — they
	// must not re-enter hint chasing or scan escalation.
	if req.ForHome {
		req.ForHome = false
		if in.info.Home == self {
			in.handleAtHome(req)
			return
		}
		// Stale routing (home moved? never happens today); fall through.
	}
	// Note: requests are never parked at a node that is itself waiting for
	// a grant — holding them would form circular waits between concurrent
	// writers. They keep chasing hints; the hop limit, ring scan and paced
	// home retry below bound the chase.
	if req.Scanning {
		in.continueScan(req)
		return
	}
	cfg := in.info.Cfg
	bound := cfg.HopBound
	if bound <= 0 {
		bound = 2*len(in.info.Mapping) + 8
	}
	if req.Hops > bound {
		// Hint chasing has gone on too long: escalate to the ring scan,
		// which terminates deterministically.
		in.nd.Ctr.V[sim.CtrHopEscalations]++
		in.startScan(req)
		return
	}
	if cfg.DynamicForwarding {
		if h, ok := in.dyn.Get(req.Idx); ok && h != self && h != req.LastFrom {
			in.nd.Ctr.V[sim.CtrFwdDynamic]++
			in.sendReq(h, req)
			return
		}
	}
	if cfg.StaticForwarding {
		sm := in.info.staticNode(req.Idx)
		if sm == self {
			in.forwardAtStatic(req)
			return
		}
		if sm != req.LastFrom {
			in.nd.Ctr.V[sim.CtrFwdStatic]++
			in.sendReq(sm, req)
			return
		}
	}
	if in.info.Home == self {
		in.handleAtHome(req)
		return
	}
	in.startScan(req)
}

// forwardAtStatic consults the static ownership cache on the page's static
// manager node.
func (in *Instance) forwardAtStatic(req accessReq) {
	if e, ok := in.static.Get(req.Idx); ok {
		if e.paged {
			// "paged" hint: straight to the pager's node, skipping the
			// global scan (paper §3.4).
			in.nd.Ctr.V[sim.CtrStaticPagedHits]++
			in.toHome(req)
			return
		}
		if e.owner != in.self() && e.owner != req.LastFrom {
			in.nd.Ctr.V[sim.CtrStaticOwnerHits]++
			in.sendReq(e.owner, req)
			return
		}
	}
	// Miss: the home node authoritatively resolves fresh/paged/granted
	// (absence here means "fresh" for never-touched pages, and the home
	// confirms).
	in.nd.Ctr.V[sim.CtrStaticMisses]++
	in.toHome(req)
}

func (in *Instance) toHome(req accessReq) {
	if in.info.Home == in.self() {
		in.handleAtHome(req)
		return
	}
	req.ForHome = true
	in.sendReq(in.info.Home, req)
}

// startScan begins the global-forwarding ring walk from this node.
func (in *Instance) startScan(req accessReq) {
	in.nd.Ctr.V[sim.CtrFwdGlobal]++
	req.Scanning = true
	req.ScanStart = in.self()
	in.continueScan(req)
}

// continueScan passes the request around the mapping ring; a full circle
// with no owner ends at the home/pager.
func (in *Instance) continueScan(req accessReq) {
	in.continueScanFrom(in.self(), req)
}

// continueScanFrom advances the ring walk from an arbitrary ring position —
// the node's own for a normal hop, an unreachable member's when a NACK
// skips over it.
func (in *Instance) continueScanFrom(at mesh.NodeID, req accessReq) {
	next := in.info.nextInRing(at)
	if next == req.ScanStart {
		// Full circle: no owner anywhere.
		req.Scanning = false
		req.ScannedAll = true
		in.toHome(req)
		return
	}
	in.nd.Ctr.V[sim.CtrRingScanHops]++
	in.sendReq(next, req)
}

// actReqNack resumes a request that bounced off a dead node, whatever our
// own page state is — we may even own the page by now and serve it.
// (nackResume)
func actReqNack(in *Instance, idx vm.PageIdx, m interface{}) {
	nk := m.(xport.Nack)
	in.handleReqNack(nk.Dst, *nk.Msg.(*accessReq))
}

// handleReqNack resumes a request whose forwarding hop bounced off a dead
// node: drop the stale hint and fall back down the dynamic → static →
// global chain (the paper's own degradation path). The home node has no
// fallback — it is the domain's serialization point — so a home bounce
// degrades to a typed failure at the origin instead of a panic.
func (in *Instance) handleReqNack(dead mesh.NodeID, req accessReq) {
	in.nd.Ctr.V[sim.CtrReqNacks]++
	if req.ForHome {
		in.homeUnreachable(dead, req)
		return
	}
	if h, ok := in.dyn.Get(req.Idx); ok && h == dead {
		in.dyn.Delete(req.Idx)
	}
	if req.Scanning {
		// The ring walk hit the unreachable member: continue past it as if
		// it had forwarded the request onward.
		if in.info.mappingIndex(dead) >= 0 {
			in.continueScanFrom(dead, req)
			return
		}
		req.Scanning = false
	}
	req.LastFrom = dead
	in.forward(req)
}

// homeUnreachable resolves a request whose home — the domain's
// serialization point — is down (crash-stop degradation). A push scan is
// answered "no owner" so the pusher installs locally; an access or pull
// fails typed: locally when this node is the origin, else with an
// Unavailable grant carrying the dead home's ID.
func (in *Instance) homeUnreachable(dead mesh.NodeID, req accessReq) {
	if req.ReqKind == kindPushScan {
		in.send(req.Origin, pushScanAck{SrcObj: req.Target, Idx: req.Idx, Found: false})
		return
	}
	if req.Origin == in.self() {
		if tin := in.nd.instances[req.Target]; tin != nil {
			tin.failFault(req.Idx, &vm.ErrObjectUnavailable{Node: dead, Obj: req.Target, Page: req.Idx})
		}
		return
	}
	in.sendGrant(req.Origin, grantMsg{Obj: req.Target, Idx: req.Idx, Unavailable: true, From: dead})
}

func (in *Instance) sendReq(to mesh.NodeID, req accessReq) {
	req.Hops++
	req.LastFrom = in.self()
	in.trace("t fwd: node %d sends %v p%d req (origin=%d want=%v forHome=%v scan=%v hops=%d) to %d",
		in.self(), req.Target, req.Idx, req.Origin, req.Want, req.ForHome, req.Scanning, req.Hops, to)
	if req.Hops > 10000 {
		panic(fmt.Sprintf("asvm: forwarding livelock for %v page %d", req.Obj, req.Idx))
	}
	in.send(to, in.nd.reqPool.get(req))
}

// handleAtHome resolves requests for pages with no owner: from the pager,
// by zero fill, or — for copy domains — by pulling through the local
// shadow chain (the home of a copy domain is its peer node).
func (in *Instance) handleAtHome(req accessReq) {
	if in.info.Home != in.self() {
		panic(fmt.Sprintf("asvm: handleAtHome on node %d, home is %d", in.self(), in.info.Home))
	}
	hs := in.home[req.Idx]
	if hs == nil {
		hs = &homeState{}
		in.home[req.Idx] = hs
	}
	if req.ReqKind == kindPushScan {
		in.homePushScan(req, hs)
		return
	}
	if hs.granted {
		// An owner exists (or a grant is in flight) but forwarding missed
		// it. Chase the freshest hint; without one, walk the whole ring;
		// if even that failed, the ownership transfer is in flight — pace
		// a retry.
		if h, ok := in.dyn.Get(req.Idx); ok && h != in.self() && h != req.LastFrom {
			in.sendReq(h, req)
			return
		}
		if !req.ScannedAll {
			in.startScan(req)
			return
		}
		in.nd.Ctr.V[sim.CtrHomeRetries]++
		retry := req
		retry.Scanning = false
		retry.ScannedAll = false
		retry.Hops = 0
		in.nd.Eng.Schedule(homeRetryDelay, func() { in.forward(retry) })
		return
	}
	if in.info.Source != nil {
		// Copy domain: resolve through the local shadow chain (pull).
		in.pullLocal(req, hs)
		return
	}
	// Pager-backed or anonymous domain.
	hs.granted = true
	in.dyn.Put(req.Idx, req.Origin)
	hs.atPager = false
	in.homePagerIn(req.Idx, func(data []byte, found bool) {
		if found {
			in.nd.Ctr.V[sim.CtrHomePagerSupplies]++
			in.sendGrant(req.Origin, grantMsg{
				Obj: req.Target, Idx: req.Idx, Lock: req.Want,
				Data: copyData(data), HasData: true, Ownership: true,
				AtPagerCopy: true, From: in.self(),
			})
		} else {
			in.nd.Ctr.V[sim.CtrHomeFreshGrants]++
			in.trace("t fresh: home %d fresh-grants %v p%d to %d", in.self(), in.info.ID, req.Idx, req.Origin)
			in.sendGrant(req.Origin, grantMsg{
				Obj: req.Target, Idx: req.Idx, Lock: req.Want,
				Fresh: true, Ownership: true, From: in.self(),
			})
		}
	})
}

// homePagerIn fetches backing contents at the home: from the pager if one
// is configured, else from the in-memory parking store.
func (in *Instance) homePagerIn(idx vm.PageIdx, cb func(data []byte, found bool)) {
	if in.pagerCli != nil {
		in.pagerCli.PageIn(in.info.ID, idx, cb)
		return
	}
	data, ok := in.store[idx]
	in.nd.Eng.Schedule(0, func() { cb(data, ok) })
}

// homePagerOut stores contents at the home's backing store.
func (in *Instance) homePagerOut(idx vm.PageIdx, data []byte, dirty bool, cb func()) {
	if in.pagerCli != nil {
		if !dirty {
			// The pager already holds identical contents.
			in.nd.Eng.Schedule(0, cb)
			return
		}
		in.pagerCli.PageOut(in.info.ID, idx, data, dirty, cb)
		return
	}
	if dirty {
		buf := copyData(data)
		if buf == nil {
			buf = []byte{} // metadata-only run: remember existence
		}
		in.store[idx] = buf
	}
	in.nd.Eng.Schedule(0, cb)
}
