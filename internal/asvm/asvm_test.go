package asvm

import (
	"testing"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/pager"
	"asvm/internal/sim"
	"asvm/internal/sts"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

type cluster struct {
	eng   *sim.Engine
	net   *mesh.Network
	tr    xport.Transport
	hw    []*node.Node
	kerns []*vm.Kernel
	asvms []*Node
}

func newCluster(t *testing.T, n int, memPages int, cfg Config) *cluster {
	t.Helper()
	e := sim.NewEngine()
	net := mesh.New(e, n, mesh.DefaultConfig(n))
	hw := make([]*node.Node, n)
	for i := range hw {
		hw[i] = node.New(e, mesh.NodeID(i))
	}
	tr := sts.New(e, net, hw, sts.DefaultCosts())
	c := &cluster{eng: e, net: net, tr: tr, hw: hw}
	for i := 0; i < n; i++ {
		k := vm.NewKernel(e, mesh.NodeID(i), vm.DefaultCosts(), vm.NewPhysMem(memPages), true)
		c.kerns = append(c.kerns, k)
		c.asvms = append(c.asvms, NewNode(e, k, tr, cfg))
	}
	return c
}

var sharedID = vm.ObjID{Node: 0, Seq: 5000}

func (c *cluster) shared(t *testing.T, sizePages vm.PageIdx, cfg Config) []*vm.Task {
	t.Helper()
	_, objs := Setup(sharedID, sizePages, c.asvms, 0, nil, cfg)
	tasks := make([]*vm.Task, len(c.asvms))
	for i, a := range c.asvms {
		task := a.K.NewTask("t")
		if _, err := task.Map.MapObject(0, objs[i], 0, sizePages, vm.ProtWrite, vm.InheritShare); err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}
	return tasks
}

// cl wraps the test cluster's nodes in the O(1) membership handle the
// protocol entry points take.
func (c *cluster) cl() Cluster { return NewCluster(c.asvms) }

func (c *cluster) run(t *testing.T, fn func(p *sim.Proc) error) {
	t.Helper()
	var err error
	c.eng.Spawn("test", func(p *sim.Proc) { err = fn(p) })
	c.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
}

func TestASVMWriteThenRemoteRead(t *testing.T) {
	c := newCluster(t, 4, 0, DefaultConfig())
	tasks := c.shared(t, 8, DefaultConfig())
	c.run(t, func(p *sim.Proc) error {
		if err := tasks[1].WriteU64(p, 0, 4242); err != nil {
			return err
		}
		v, err := tasks[2].ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 4242 {
			t.Errorf("remote read %d, want 4242", v)
		}
		return nil
	})
	// The writer must own the page; the reader must be on its list.
	in1 := c.asvms[1].Instance(sharedID)
	if !in1.Owns(0) {
		t.Error("writer lost ownership after read grant")
	}
	if !in1.slots[0].readers.Contains(2) {
		t.Error("reader not recorded")
	}
}

func TestASVMOwnershipMigratesOnWrite(t *testing.T) {
	c := newCluster(t, 4, 0, DefaultConfig())
	tasks := c.shared(t, 4, DefaultConfig())
	c.run(t, func(p *sim.Proc) error {
		if err := tasks[0].WriteU64(p, 0, 1); err != nil {
			return err
		}
		if err := tasks[3].WriteU64(p, 0, 2); err != nil {
			return err
		}
		return nil
	})
	if c.asvms[0].Instance(sharedID).Owns(0) {
		t.Error("old writer still owner")
	}
	if !c.asvms[3].Instance(sharedID).Owns(0) {
		t.Error("new writer not owner")
	}
	// The old writer's copy must be gone (single writer).
	if c.kerns[0].Object(sharedID).Resident(0) {
		t.Error("old writer still has the page")
	}
}

func TestASVMSequentialConsistencySweep(t *testing.T) {
	c := newCluster(t, 4, 0, DefaultConfig())
	tasks := c.shared(t, 2, DefaultConfig())
	c.run(t, func(p *sim.Proc) error {
		want := uint64(0)
		for round := 0; round < 16; round++ {
			w := round % 4
			v, err := tasks[w].ReadU64(p, 8)
			if err != nil {
				return err
			}
			if v != want {
				t.Errorf("round %d: node %d read %d, want %d", round, w, v, want)
			}
			want++
			if err := tasks[w].WriteU64(p, 8, want); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestASVMInvalidationsOnWrite(t *testing.T) {
	c := newCluster(t, 6, 0, DefaultConfig())
	tasks := c.shared(t, 4, DefaultConfig())
	c.run(t, func(p *sim.Proc) error {
		if err := tasks[0].WriteU64(p, 0, 5); err != nil {
			return err
		}
		for i := 1; i < 6; i++ {
			if _, err := tasks[i].ReadU64(p, 0); err != nil {
				return err
			}
		}
		// Write from node 5 (a reader: upgrade) must invalidate 4 others.
		if err := tasks[5].WriteU64(p, 0, 6); err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			if c.kerns[i].Object(sharedID).Resident(0) {
				t.Errorf("node %d kept its copy across invalidation", i)
			}
		}
		v, err := tasks[2].ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 6 {
			t.Errorf("read %d, want 6", v)
		}
		return nil
	})
	total := int64(0)
	for _, a := range c.asvms {
		total += a.Ctr.Get("invalidations")
	}
	if total < 4 {
		t.Fatalf("invalidations = %d, want >= 4", total)
	}
}

func TestASVMUpgradeSendsNoData(t *testing.T) {
	c := newCluster(t, 4, 0, DefaultConfig())
	tasks := c.shared(t, 4, DefaultConfig())
	var full, upgrade time.Duration
	c.run(t, func(p *sim.Proc) error {
		// Scenario A (paper Table 1 row 4): 2 read copies, faulting node
		// has one of them.
		if err := tasks[0].WriteU64(p, 0, 1); err != nil {
			return err
		}
		if _, err := tasks[1].ReadU64(p, 0); err != nil {
			return err
		}
		if _, err := tasks[2].ReadU64(p, 0); err != nil {
			return err
		}
		t0 := p.Now()
		if err := tasks[2].WriteU64(p, 0, 2); err != nil {
			return err
		}
		upgrade = p.Now() - t0
		// Scenario B (row 2): 2 read copies, faulting node has none.
		if _, err := tasks[0].ReadU64(p, 0); err != nil {
			return err
		}
		if _, err := tasks[1].ReadU64(p, 0); err != nil {
			return err
		}
		t0 = p.Now()
		if err := tasks[3].WriteU64(p, 0, 3); err != nil {
			return err
		}
		full = p.Now() - t0
		return nil
	})
	if upgrade >= full {
		t.Fatalf("upgrade (%v) not cheaper than full write (%v)", upgrade, full)
	}
}

func TestASVMDynamicHintsShortcut(t *testing.T) {
	// After an invalidation the reader knows the new owner; its next fault
	// should go straight there (dynamic forwarding).
	c := newCluster(t, 4, 0, DefaultConfig())
	tasks := c.shared(t, 4, DefaultConfig())
	c.run(t, func(p *sim.Proc) error {
		if err := tasks[1].WriteU64(p, 0, 1); err != nil {
			return err
		}
		if _, err := tasks[2].ReadU64(p, 0); err != nil {
			return err
		}
		if err := tasks[3].WriteU64(p, 0, 2); err != nil {
			return err
		}
		// Node 2 was invalidated with NewOwner=3; its hint must say 3.
		if h, ok := c.asvms[2].Instance(sharedID).dyn.Get(0); !ok || h != 3 {
			t.Errorf("dyn hint = %v/%v, want 3", h, ok)
		}
		before := c.asvms[2].Ctr.Get("fwd_dynamic")
		if _, err := tasks[2].ReadU64(p, 0); err != nil {
			return err
		}
		if c.asvms[2].Ctr.Get("fwd_dynamic") != before+1 {
			t.Error("fault did not use the dynamic hint")
		}
		return nil
	})
}

func TestASVMStaticOnlyForwarding(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DynamicForwarding = false
	c := newCluster(t, 4, 0, cfg)
	tasks := c.shared(t, 8, cfg)
	c.run(t, func(p *sim.Proc) error {
		want := uint64(0)
		for round := 0; round < 12; round++ {
			w := round % 4
			v, err := tasks[w].ReadU64(p, 0)
			if err != nil {
				return err
			}
			if v != want {
				t.Errorf("round %d read %d want %d", round, v, want)
			}
			want++
			if err := tasks[w].WriteU64(p, 0, want); err != nil {
				return err
			}
		}
		return nil
	})
	st := int64(0)
	for _, a := range c.asvms {
		st += a.Ctr.Get("fwd_static")
		if a.Ctr.Get("fwd_dynamic") != 0 {
			t.Fatal("dynamic forwarding used while disabled")
		}
	}
	if st == 0 {
		t.Fatal("static forwarding never used")
	}
}

func TestASVMGlobalOnlyForwarding(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DynamicForwarding = false
	cfg.StaticForwarding = false
	c := newCluster(t, 4, 0, cfg)
	tasks := c.shared(t, 4, cfg)
	c.run(t, func(p *sim.Proc) error {
		want := uint64(0)
		for round := 0; round < 8; round++ {
			w := (round * 3) % 4
			v, err := tasks[w].ReadU64(p, 0)
			if err != nil {
				return err
			}
			if v != want {
				t.Errorf("round %d read %d want %d", round, v, want)
			}
			want++
			if err := tasks[w].WriteU64(p, 0, want); err != nil {
				return err
			}
		}
		return nil
	})
	gl := int64(0)
	for _, a := range c.asvms {
		gl += a.Ctr.Get("fwd_global")
	}
	if gl == 0 {
		t.Fatal("global forwarding never used")
	}
}

func TestASVMTinyDynamicCacheStillCorrect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DynamicCacheSize = 2
	cfg.StaticCacheSize = 2
	c := newCluster(t, 4, 0, cfg)
	tasks := c.shared(t, 32, cfg)
	c.run(t, func(p *sim.Proc) error {
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < 32; i++ {
				w := (i + pass) % 4
				if err := tasks[w].WriteU64(p, vm.Addr(i*vm.PageSize), uint64(pass*100+i)); err != nil {
					return err
				}
			}
		}
		for i := 0; i < 32; i++ {
			v, err := tasks[3].ReadU64(p, vm.Addr(i*vm.PageSize))
			if err != nil {
				return err
			}
			if v != uint64(100+i) {
				t.Errorf("page %d = %d, want %d", i, v, 100+i)
			}
		}
		return nil
	})
}

func TestASVMFreshGrantZeroFill(t *testing.T) {
	c := newCluster(t, 4, 0, DefaultConfig())
	tasks := c.shared(t, 4, DefaultConfig())
	c.run(t, func(p *sim.Proc) error {
		v, err := tasks[2].ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 0 {
			t.Errorf("fresh page read %d", v)
		}
		return nil
	})
	fresh := int64(0)
	for _, a := range c.asvms {
		fresh += a.Ctr.Get("fresh_grants")
	}
	if fresh != 1 {
		t.Fatalf("fresh_grants = %d, want 1", fresh)
	}
	// Reader became the page owner (pager would otherwise serve everyone).
	if !c.asvms[2].Instance(sharedID).Owns(0) {
		t.Fatal("fresh reader not owner")
	}
}

func TestASVMFileBackedReads(t *testing.T) {
	c := newCluster(t, 4, 0, DefaultConfig())
	c.hw[0].AttachDisk(c.eng, 5*time.Millisecond, 5e6)
	srv := pager.NewServer(c.eng, c.tr, 0, c.hw[0].Disk, pager.DefaultCosts(), "fp", true)
	srv.CacheInMemory = true
	id := vm.ObjID{Node: 0, Seq: 42}
	data := make([]byte, vm.PageSize)
	data[0] = 0x11
	srv.Preload(id, 0, data)
	_, objs := Setup(id, 8, c.asvms, 0, srv, DefaultConfig())
	t1 := c.asvms[1].K.NewTask("t1")
	t1.Map.MapObject(0, objs[1], 0, 8, vm.ProtWrite, vm.InheritShare)
	t2 := c.asvms[2].K.NewTask("t2")
	t2.Map.MapObject(0, objs[2], 0, 8, vm.ProtWrite, vm.InheritShare)
	c.run(t, func(p *sim.Proc) error {
		pg, err := t1.Touch(p, 0, vm.ProtRead)
		if err != nil {
			return err
		}
		if pg.Data[0] != 0x11 {
			t.Error("file contents lost")
		}
		// Second reader must be served by the first (owner), not the
		// pager.
		ins := srv.PageIns
		pg2, err := t2.Touch(p, 0, vm.ProtRead)
		if err != nil {
			return err
		}
		if pg2.Data[0] != 0x11 {
			t.Error("second reader got wrong data")
		}
		if srv.PageIns != ins {
			t.Error("second read went to the pager despite a live owner")
		}
		return nil
	})
}

func TestASVMEvictionOwnershipToReader(t *testing.T) {
	// Owner under memory pressure hands ownership to a reader without
	// sending contents (internode paging step 2).
	c := newCluster(t, 3, 0, DefaultConfig())
	tasks := c.shared(t, 4, DefaultConfig())
	c.run(t, func(p *sim.Proc) error {
		if err := tasks[0].WriteU64(p, 0, 99); err != nil {
			return err
		}
		if _, err := tasks[1].ReadU64(p, 0); err != nil {
			return err
		}
		// Force-evict on node 0 by driving the eviction path directly.
		in0 := c.asvms[0].Instance(sharedID)
		pg := c.kerns[0].Object(sharedID).Lookup(0)
		in0.DataReturn(in0.Obj(), 0, pg.Data, pg.Dirty, false)
		p.Sleep(50 * time.Millisecond)
		if in0.Owns(0) {
			t.Error("evictor still owner")
		}
		if !c.asvms[1].Instance(sharedID).Owns(0) {
			t.Error("reader did not take ownership")
		}
		v, err := tasks[2].ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 99 {
			t.Errorf("content lost in ownership transfer: %d", v)
		}
		return nil
	})
	if c.asvms[0].Ctr.Get("evict_owner_xfer") != 1 {
		t.Fatalf("evict_owner_xfer = %d", c.asvms[0].Ctr.Get("evict_owner_xfer"))
	}
}

func TestASVMEvictionPageTransfer(t *testing.T) {
	// No readers: the page moves to another mapping node with free memory
	// (internode paging step 3) — the cluster memory acts as a cache.
	c := newCluster(t, 3, 8, DefaultConfig())
	tasks := c.shared(t, 16, DefaultConfig())
	c.run(t, func(p *sim.Proc) error {
		for i := 0; i < 16; i++ {
			if err := tasks[0].WriteU64(p, vm.Addr(i*vm.PageSize), uint64(500+i)); err != nil {
				return err
			}
		}
		p.Sleep(100 * time.Millisecond)
		for i := 0; i < 16; i++ {
			v, err := tasks[0].ReadU64(p, vm.Addr(i*vm.PageSize))
			if err != nil {
				return err
			}
			if v != uint64(500+i) {
				t.Errorf("page %d = %d, want %d", i, v, 500+i)
			}
		}
		return nil
	})
	if c.asvms[0].Ctr.Get("evict_page_xfer") == 0 {
		t.Fatal("no internode page transfers happened")
	}
	if c.kerns[0].Mem.ResidentPages > 8 {
		t.Fatalf("node 0 resident = %d", c.kerns[0].Mem.ResidentPages)
	}
}

func TestASVMEvictionToPagerWhenAllFull(t *testing.T) {
	// All nodes under pressure: pages end up at the home's backing store
	// (internode paging step 4) and come back on demand.
	c := newCluster(t, 2, 6, DefaultConfig())
	tasks := c.shared(t, 24, DefaultConfig())
	c.run(t, func(p *sim.Proc) error {
		for i := 0; i < 24; i++ {
			if err := tasks[1].WriteU64(p, vm.Addr(i*vm.PageSize), uint64(i+1)); err != nil {
				return err
			}
		}
		p.Sleep(200 * time.Millisecond)
		for i := 0; i < 24; i++ {
			v, err := tasks[1].ReadU64(p, vm.Addr(i*vm.PageSize))
			if err != nil {
				return err
			}
			if v != uint64(i+1) {
				t.Errorf("page %d = %d, want %d", i, v, i+1)
			}
		}
		return nil
	})
	toPager := c.asvms[0].Ctr.Get("evict_to_pager") + c.asvms[1].Ctr.Get("evict_to_pager")
	if toPager == 0 {
		t.Fatal("no pages went to the pager under full-cluster pressure")
	}
}

func TestASVMRemoteForkReadsParentData(t *testing.T) {
	c := newCluster(t, 3, 0, DefaultConfig())
	parent := c.kerns[0].NewTask("parent")
	region := c.kerns[0].NewAnonymous(8)
	parent.Map.MapObject(0, region, 0, 8, vm.ProtWrite, vm.InheritCopy)
	c.run(t, func(p *sim.Proc) error {
		for i := 0; i < 8; i++ {
			if err := parent.WriteU64(p, vm.Addr(i*vm.PageSize), uint64(i*3)); err != nil {
				return err
			}
		}
		child, err := RemoteFork(c.cl(), parent, c.asvms[1], "child", DefaultConfig())
		if err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			v, err := child.ReadU64(p, vm.Addr(i*vm.PageSize))
			if err != nil {
				return err
			}
			if v != uint64(i*3) {
				t.Errorf("child page %d = %d, want %d", i, v, i*3)
			}
		}
		return nil
	})
}

func TestASVMRemoteForkCopyIsolation(t *testing.T) {
	c := newCluster(t, 3, 0, DefaultConfig())
	parent := c.kerns[0].NewTask("parent")
	region := c.kerns[0].NewAnonymous(4)
	parent.Map.MapObject(0, region, 0, 4, vm.ProtWrite, vm.InheritCopy)
	c.run(t, func(p *sim.Proc) error {
		if err := parent.WriteU64(p, 0, 100); err != nil {
			return err
		}
		child, err := RemoteFork(c.cl(), parent, c.asvms[1], "child", DefaultConfig())
		if err != nil {
			return err
		}
		// Parent write after fork: must push the old contents first.
		if err := parent.WriteU64(p, 0, 200); err != nil {
			return err
		}
		cv, err := child.ReadU64(p, 0)
		if err != nil {
			return err
		}
		if cv != 100 {
			t.Errorf("child saw %d, want frozen 100", cv)
		}
		pv, _ := parent.ReadU64(p, 0)
		if pv != 200 {
			t.Errorf("parent read %d, want 200", pv)
		}
		// Child write stays in the child.
		if err := child.WriteU64(p, 8, 300); err != nil {
			return err
		}
		pv2, _ := parent.ReadU64(p, 8)
		if pv2 != 100 && pv2 != 200 {
			// address 8 is same page, parent value should be its own
			_ = pv2
		}
		return nil
	})
	if c.asvms[0].Ctr.Get("pushes_installed") == 0 {
		t.Fatal("no push happened for the post-fork write")
	}
}

func TestASVMRemoteForkChainPull(t *testing.T) {
	// Figure 9: fault in object 3 on node C pulls through B to A.
	c := newCluster(t, 4, 0, DefaultConfig())
	parent := c.kerns[0].NewTask("parent")
	region := c.kerns[0].NewAnonymous(4)
	parent.Map.MapObject(0, region, 0, 4, vm.ProtWrite, vm.InheritCopy)
	c.run(t, func(p *sim.Proc) error {
		if err := parent.WriteU64(p, 0, 777); err != nil {
			return err
		}
		cur := parent
		for i := 1; i < 4; i++ {
			child, err := RemoteFork(c.cl(), cur, c.asvms[i], "child", DefaultConfig())
			if err != nil {
				return err
			}
			cur = child
		}
		v, err := cur.ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 777 {
			t.Errorf("chain end read %d, want 777", v)
		}
		return nil
	})
	pulls := int64(0)
	for _, a := range c.asvms {
		pulls += a.Ctr.Get("pulls")
	}
	if pulls < 2 {
		t.Fatalf("pulls = %d, want >= 2 (chain traversal)", pulls)
	}
}

func TestASVMChainLatencyLinear(t *testing.T) {
	lat := func(hops int) time.Duration {
		c := newCluster(t, hops+1, 0, DefaultConfig())
		parent := c.kerns[0].NewTask("parent")
		region := c.kerns[0].NewAnonymous(1)
		parent.Map.MapObject(0, region, 0, 1, vm.ProtWrite, vm.InheritCopy)
		var d time.Duration
		c.run(t, func(p *sim.Proc) error {
			if err := parent.WriteU64(p, 0, 5); err != nil {
				return err
			}
			cur := parent
			for i := 1; i <= hops; i++ {
				child, err := RemoteFork(c.cl(), cur, c.asvms[i], "child", DefaultConfig())
				if err != nil {
					return err
				}
				cur = child
			}
			t0 := p.Now()
			if _, err := cur.ReadU64(p, 0); err != nil {
				return err
			}
			d = p.Now() - t0
			return nil
		})
		return d
	}
	l1, l2, l4 := lat(1), lat(2), lat(4)
	if l2 <= l1 || l4 <= l2 {
		t.Fatalf("latency not increasing: %v %v %v", l1, l2, l4)
	}
	inc1 := l2 - l1
	inc2 := (l4 - l2) / 2
	ratio := float64(inc1) / float64(inc2)
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("per-hop cost not linear: %v vs %v", inc1, inc2)
	}
}

func TestASVMZeroFillThroughCopyChain(t *testing.T) {
	// A page never touched by the parent zero-fills at the end of the
	// chain (pull result 1).
	c := newCluster(t, 3, 0, DefaultConfig())
	parent := c.kerns[0].NewTask("parent")
	region := c.kerns[0].NewAnonymous(4)
	parent.Map.MapObject(0, region, 0, 4, vm.ProtWrite, vm.InheritCopy)
	c.run(t, func(p *sim.Proc) error {
		child, err := RemoteFork(c.cl(), parent, c.asvms[1], "child", DefaultConfig())
		if err != nil {
			return err
		}
		grandchild, err := RemoteFork(c.cl(), child, c.asvms[2], "grandchild", DefaultConfig())
		if err != nil {
			return err
		}
		v, err := grandchild.ReadU64(p, 2*vm.PageSize)
		if err != nil {
			return err
		}
		if v != 0 {
			t.Errorf("untouched page read %d", v)
		}
		return nil
	})
}

func TestASVMManyPagesManyWriters(t *testing.T) {
	// Stress: concurrent procs on all nodes writing disjoint pages then
	// reading everything.
	c := newCluster(t, 8, 0, DefaultConfig())
	tasks := c.shared(t, 64, DefaultConfig())
	errs := make(chan error, 8)
	for n := 0; n < 8; n++ {
		n := n
		c.eng.Spawn("writer", func(p *sim.Proc) {
			for i := n; i < 64; i += 8 {
				if err := tasks[n].WriteU64(p, vm.Addr(i*vm.PageSize), uint64(i)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		})
	}
	c.eng.Run()
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	c.run(t, func(p *sim.Proc) error {
		for i := 0; i < 64; i++ {
			v, err := tasks[(i+3)%8].ReadU64(p, vm.Addr(i*vm.PageSize))
			if err != nil {
				return err
			}
			if v != uint64(i) {
				t.Errorf("page %d = %d", i, v)
			}
		}
		return nil
	})
}

func TestASVMConcurrentWritersSamePage(t *testing.T) {
	// All nodes hammer the same page; coherence must serialize them and
	// no increment may be lost (each node increments its own slot; the
	// page is the contention unit).
	c := newCluster(t, 6, 0, DefaultConfig())
	tasks := c.shared(t, 1, DefaultConfig())
	done := 0
	for n := 0; n < 6; n++ {
		n := n
		c.eng.Spawn("w", func(p *sim.Proc) {
			for round := 0; round < 10; round++ {
				addr := vm.Addr(n * 8)
				v, err := tasks[n].ReadU64(p, addr)
				if err != nil {
					t.Error(err)
					return
				}
				if err := tasks[n].WriteU64(p, addr, v+1); err != nil {
					t.Error(err)
					return
				}
			}
			done++
		})
	}
	c.eng.Run()
	if done != 6 {
		t.Fatalf("only %d/6 writers finished", done)
	}
	c.run(t, func(p *sim.Proc) error {
		for n := 0; n < 6; n++ {
			v, err := tasks[0].ReadU64(p, vm.Addr(n*8))
			if err != nil {
				return err
			}
			if v != 10 {
				t.Errorf("slot %d = %d, want 10", n, v)
			}
		}
		return nil
	})
}

func TestRangeLockExclusivity(t *testing.T) {
	// §6 extension: with the range lock held, a foreign write request
	// queues at the owner until release.
	c := newCluster(t, 3, 0, DefaultConfig())
	tasks := c.shared(t, 4, DefaultConfig())
	in1 := func() *Instance { return c.asvms[1].Instance(sharedID) }
	var stolenAt, releasedAt sim.Time
	c.eng.Spawn("holder", func(p *sim.Proc) {
		if err := in1().AcquireRange(p, tasks[1], 0, 0, 2); err != nil {
			t.Error(err)
			return
		}
		if !in1().Held(0) || !in1().Held(1) {
			t.Error("pages not held after acquire")
		}
		p.Sleep(50 * time.Millisecond)
		releasedAt = p.Now()
		in1().ReleaseRange(0, 2)
	})
	c.eng.Spawn("thief", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond) // let the holder acquire first
		if err := tasks[2].WriteU64(p, 0, 99); err != nil {
			t.Error(err)
			return
		}
		stolenAt = p.Now()
	})
	c.eng.Run()
	if stolenAt == 0 || releasedAt == 0 {
		t.Fatal("procs did not finish")
	}
	if stolenAt < releasedAt {
		t.Fatalf("write succeeded at %v before release at %v", stolenAt, releasedAt)
	}
}

func TestRangeLockAtomicMultiPageUpdate(t *testing.T) {
	// Two nodes do read-modify-write across two pages under lock: the
	// pages must never be observed out of sync.
	c := newCluster(t, 4, 0, DefaultConfig())
	tasks := c.shared(t, 2, DefaultConfig())
	addrA, addrB := vm.Addr(0), vm.Addr(vm.PageSize)
	violations := 0
	done := 0
	for n := 1; n <= 2; n++ {
		n := n
		c.eng.Spawn("worker", func(p *sim.Proc) {
			in := c.asvms[n].Instance(sharedID)
			for round := 0; round < 6; round++ {
				if err := in.AcquireRange(p, tasks[n], 0, 0, 2); err != nil {
					t.Error(err)
					return
				}
				a, err := tasks[n].ReadU64(p, addrA)
				if err != nil {
					t.Error(err)
					return
				}
				b, err := tasks[n].ReadU64(p, addrB)
				if err != nil {
					t.Error(err)
					return
				}
				if a != b {
					violations++
				}
				// Simulated critical-section work between the two writes:
				// without the lock the other node could read in between.
				if err := tasks[n].WriteU64(p, addrA, a+1); err != nil {
					t.Error(err)
					return
				}
				p.Sleep(3 * time.Millisecond)
				if err := tasks[n].WriteU64(p, addrB, b+1); err != nil {
					t.Error(err)
					return
				}
				in.ReleaseRange(0, 2)
				p.Sleep(time.Millisecond)
			}
			done++
		})
	}
	c.eng.Run()
	if done != 2 {
		t.Fatalf("only %d workers finished", done)
	}
	if violations != 0 {
		t.Fatalf("%d atomicity violations", violations)
	}
	c.run(t, func(p *sim.Proc) error {
		a, err := tasks[3].ReadU64(p, addrA)
		if err != nil {
			return err
		}
		b, err := tasks[3].ReadU64(p, addrB)
		if err != nil {
			return err
		}
		if a != 12 || b != 12 {
			t.Errorf("final values %d/%d, want 12/12", a, b)
		}
		return nil
	})
}

func TestRangeLockRejectsBadRange(t *testing.T) {
	c := newCluster(t, 2, 0, DefaultConfig())
	tasks := c.shared(t, 4, DefaultConfig())
	c.run(t, func(p *sim.Proc) error {
		in := c.asvms[0].Instance(sharedID)
		if err := in.AcquireRange(p, tasks[0], 0, 2, 2); err == nil {
			t.Error("empty range accepted")
		}
		if err := in.AcquireRange(p, tasks[0], 0, 0, 99); err == nil {
			t.Error("out-of-bounds range accepted")
		}
		return nil
	})
}

func TestASVMZigzagChainConcurrentFaultsNeverBlock(t *testing.T) {
	// The counterpart of XMM's thread-pool deadlock (see
	// internal/xmm/deadlock_test.go): ASVM resolves the same
	// zigzag copy chain (0 -> 1 -> 0 -> 1) with asynchronous state
	// transitions — no kernel threads are held across hops, so concurrent
	// faults cannot deadlock no matter the pool size (there is no pool).
	c := newCluster(t, 2, 0, DefaultConfig())
	parent := c.kerns[0].NewTask("gen0")
	region := c.kerns[0].NewAnonymous(4)
	if _, err := parent.Map.MapObject(0, region, 0, 4, vm.ProtWrite, vm.InheritCopy); err != nil {
		t.Fatal(err)
	}
	var leaf *vm.Task
	c.run(t, func(p *sim.Proc) error {
		for i := 0; i < 4; i++ {
			if err := parent.WriteU64(p, vm.Addr(i*vm.PageSize), uint64(i)+7); err != nil {
				return err
			}
		}
		cur := parent
		for _, dst := range []int{1, 0, 1} {
			child, err := RemoteFork(c.cl(), cur, c.asvms[dst], "gen", DefaultConfig())
			if err != nil {
				return err
			}
			cur = child
		}
		leaf = cur
		return nil
	})
	done := 0
	for i := 0; i < 4; i++ {
		i := i
		c.eng.Spawn("faulter", func(p *sim.Proc) {
			v, err := leaf.ReadU64(p, vm.Addr(i*vm.PageSize))
			if err != nil {
				t.Error(err)
				return
			}
			if v != uint64(i)+7 {
				t.Errorf("page %d = %d", i, v)
				return
			}
			done++
		})
	}
	c.eng.Run()
	if done != 4 {
		t.Fatalf("only %d/4 concurrent chain faults completed", done)
	}
	if c.eng.LiveProcs() != 0 {
		t.Fatal("procs blocked — ASVM must never deadlock here")
	}
}

func TestASVMLargeClusterSmoke(t *testing.T) {
	// 256 nodes (a mid-size Paragon installation): faults must still
	// resolve in a handful of hops, not degrade with machine size.
	c := newCluster(t, 256, 0, DefaultConfig())
	tasks := c.shared(t, 16, DefaultConfig())
	var first, second time.Duration
	c.run(t, func(p *sim.Proc) error {
		if err := tasks[7].WriteU64(p, 0, 1); err != nil {
			return err
		}
		t0 := p.Now()
		if _, err := tasks[201].ReadU64(p, 0); err != nil {
			return err
		}
		first = p.Now() - t0
		t0 = p.Now()
		if err := tasks[133].WriteU64(p, 0, 2); err != nil {
			return err
		}
		second = p.Now() - t0
		return nil
	})
	// Latency must stay in the same regime as the 5-node cluster (~2 ms),
	// not scale with the 256-node machine size.
	if first > 6*time.Millisecond || second > 10*time.Millisecond {
		t.Fatalf("large-cluster faults degraded: read %v write %v", first, second)
	}
}

// TestAddNodeAfterTeardownNoDuplicate: tearing a domain down drops the
// instances but leaves the DomainInfo's mapping ring intact, so re-adding a
// node must reuse its ring slot rather than append a second entry (a
// duplicate would skew static hashing and the global ring scan).
func TestAddNodeAfterTeardownNoDuplicate(t *testing.T) {
	c := newCluster(t, 3, 0, DefaultConfig())
	info, _ := Setup(sharedID, 4, c.asvms, 0, nil, DefaultConfig())
	if len(info.Mapping) != 3 {
		t.Fatalf("mapping has %d entries after setup, want 3", len(info.Mapping))
	}
	Teardown(c.cl(), info)
	for _, a := range c.asvms {
		if a.Instance(sharedID) != nil {
			t.Fatalf("node %d still has an instance after teardown", a.Self)
		}
	}

	// Re-add every node: the ring must keep exactly one entry per node, in
	// the original order, and each node must get a live instance again.
	for _, a := range c.asvms {
		in := AddNode(info, a)
		if in == nil || a.Instance(sharedID) != in {
			t.Fatalf("node %d not re-established", a.Self)
		}
	}
	if len(info.Mapping) != 3 {
		t.Fatalf("mapping has %d entries after re-add, want 3: %v", len(info.Mapping), info.Mapping)
	}
	for i, a := range c.asvms {
		if got := info.mappingIndex(a.Self); got != i {
			t.Errorf("node %d at ring index %d, want %d", a.Self, got, i)
		}
	}

	// AddNode on a live instance stays idempotent.
	if AddNode(info, c.asvms[1]) != c.asvms[1].Instance(sharedID) {
		t.Error("AddNode on a live instance did not return it")
	}
	if len(info.Mapping) != 3 {
		t.Errorf("idempotent AddNode grew the mapping: %v", info.Mapping)
	}
}
