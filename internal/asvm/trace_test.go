package asvm

import (
	"fmt"
	"testing"
)

func TestTraceBufDisabledRecordsNothing(t *testing.T) {
	tb := &TraceBuf{}
	tb.Addf("grant %d", 1)
	if tb.Total() != 0 || len(tb.Lines()) != 0 {
		t.Fatalf("disabled buffer recorded: total=%d lines=%v", tb.Total(), tb.Lines())
	}
}

func TestTraceBufOrderAndOverwrite(t *testing.T) {
	tb := &TraceBuf{}
	tb.Enable()
	if !tb.Enabled() {
		t.Fatal("Enable did not take")
	}
	n := traceBufCap + 17
	for i := 0; i < n; i++ {
		tb.Addf("line %d", i)
	}
	if got := tb.Total(); got != uint64(n) {
		t.Fatalf("Total = %d, want %d", got, n)
	}
	lines := tb.Lines()
	if len(lines) != traceBufCap {
		t.Fatalf("retained %d lines, want %d", len(lines), traceBufCap)
	}
	// Oldest-first: the buffer keeps exactly the last traceBufCap lines.
	for i, ln := range lines {
		want := fmt.Sprintf("line %d", n-traceBufCap+i)
		if ln != want {
			t.Fatalf("lines[%d] = %q, want %q", i, ln, want)
		}
	}
	// Lines returns a fresh slice, not the ring's backing array.
	lines[0] = "clobbered"
	if tb.Lines()[0] == "clobbered" {
		t.Fatal("Lines exposed the ring's backing storage")
	}
}

func TestTraceBufPartialFill(t *testing.T) {
	tb := &TraceBuf{}
	tb.Enable()
	tb.Addf("a")
	tb.Addf("b")
	lines := tb.Lines()
	if len(lines) != 2 || lines[0] != "a" || lines[1] != "b" {
		t.Fatalf("Lines = %v, want [a b]", lines)
	}
}
