package asvm

import (
	"fmt"
	"strings"
	"testing"

	"asvm/internal/sim"
	"asvm/internal/xport"
)

// goldenMatrix pins the full state×event legality matrix. Changing the
// protocol's shape — adding a state, legalizing a pair, renaming an
// action — is a deliberate act, reviewed as a diff of this rendering.
const goldenMatrix = `Invalid: AccessReq=fwdReq Grant=grantLate Inval=invalLate OwnerUpdate=ownerHint OwnerXfer=xferTake PageOffer=offerTake ToPager=pagerPark ToPagerAck=pagerAckLoose FaultRead=faultStart FaultWrite=faultStart Evict=evictDiscard Teardown=teardown ReqNack=nackResume Crash=crash PeerDown=peerDead
FaultOutRead: AccessReq=fwdReq Grant=grant Inval=invalStale OwnerUpdate=ownerHint OwnerXfer=xferDecline PageOffer=offerDecline ToPager=pagerPark ToPagerAck=pagerAckLoose FaultRead=faultMerge FaultWrite=faultMerge Evict=evictDiscard Teardown=teardown ReqNack=nackResume Crash=crash PeerDown=peerDead
FaultOutWrite: AccessReq=fwdReq Grant=grant Inval=invalStale OwnerUpdate=ownerHint OwnerXfer=xferDecline PageOffer=offerDecline ToPager=pagerPark ToPagerAck=pagerAckLoose FaultRead=faultMerge FaultWrite=faultMerge Evict=evictDiscard Teardown=teardown ReqNack=nackResume Crash=crash PeerDown=peerDead
ReadShared: AccessReq=fwdReq Grant=grantLate Inval=invalDrop OwnerUpdate=ownerHint OwnerXfer=xferTake PageOffer=offerDecline ToPager=pagerPark ToPagerAck=pagerAckLoose FaultWrite=upgradeStart Evict=evictDiscard Teardown=teardown ReqNack=nackResume Crash=crash PeerDown=peerDead
Owner: AccessReq=serveReq Grant=grantLate OwnerUpdate=ownerHint OwnerXfer=xferDecline PageOffer=offerDecline ToPagerAck=pagerAckLoose FaultWrite=upgradeSelf Evict=evictOwner Teardown=teardown ReqNack=nackResume Crash=crash PeerDown=peerDead
OwnerSole: AccessReq=serveReq Grant=grantLate OwnerUpdate=ownerHint OwnerXfer=xferDecline PageOffer=offerDecline ToPagerAck=pagerAckLoose FaultWrite=upgradeSelf Evict=evictOwner Teardown=teardown ReqNack=nackResume Crash=crash PeerDown=peerDead
Serving: AccessReq=queueReq Grant=grantBusy OwnerUpdate=ownerHint OwnerXfer=xferDecline PageOffer=offerDecline ToPagerAck=pagerAckLoose FaultWrite=upgradeQueue Evict=evictCancel PushStart=pushScan Teardown=teardown ReqNack=nackResume Crash=crash PeerDown=peerDead
PushWait: AccessReq=queueReq Grant=grantBusy OwnerUpdate=ownerHint OwnerXfer=xferDecline PageOffer=offerDecline ToPagerAck=pagerAckLoose PushScanAck=pushAck FaultWrite=upgradeQueue Evict=evictCancel Teardown=teardown ReqNack=nackResume Crash=crash PeerDown=peerDead
InvalWait: AccessReq=queueReq Grant=grantBusy InvalAck=invalAck OwnerUpdate=ownerHint OwnerXfer=xferDecline PageOffer=offerDecline ToPagerAck=pagerAckLoose FaultWrite=upgradeQueue Evict=evictCancel Teardown=teardown ReqNack=nackResume Crash=crash PeerDown=peerDead
XferOut: AccessReq=queueReq Grant=grantBusy OwnerUpdate=ownerHint OwnerXfer=xferDecline OwnerXferAck=xferAck PageOffer=offerDecline PageOfferAck=offerAck ToPagerAck=pagerAck FaultWrite=upgradeQueue Evict=evictCancel Teardown=teardown ReqNack=nackResume Crash=crash PeerDown=peerDead
`

// The crash-stop model (this PR) legalized 33 new pairs — Crash and
// PeerDown in every state, grantBusy in the four busy states, and the
// loose pager ack (a Lost report's ack is sequence-matched, so it may
// return to a slot in any non-XferOut state) — taking the legal count
// from 103 to 136.
func TestTransitionMatrixGolden(t *testing.T) {
	if got := TransitionMatrix(); got != goldenMatrix {
		t.Errorf("transition matrix changed.\ngot:\n%s\nwant:\n%s", got, goldenMatrix)
	}
	if got := LegalTransitions(); got != 136 {
		t.Errorf("LegalTransitions() = %d, want 136", got)
	}
}

// TestEveryHandledMsgKindIsAProtoEvent pins the exhaustiveness of the
// event alphabet: each of the message kinds Node.handle dispatches maps
// to a distinct ProtoEvent, those events fill the message half of the
// alphabet exactly (EvAccessReq..EvPushScanAck), and each has at least
// one legal source state.
func TestEveryHandledMsgKindIsAProtoEvent(t *testing.T) {
	kinds := []xport.MsgKind{
		msgAccessReq, msgGrant, msgInval, msgInvalAck,
		msgOwnerUpdate, msgOwnerXfer, msgOwnerXferAck,
		msgPageOffer, msgPageOfferAck, msgToPager, msgToPagerAck,
		msgPushScanAck,
	}
	if len(kinds) != int(msgPushScanAck)+1 {
		t.Fatalf("kind list has %d entries, want %d (a kind was added without updating this test)",
			len(kinds), int(msgPushScanAck)+1)
	}
	seen := map[ProtoEvent]xport.MsgKind{}
	for _, k := range kinds {
		ev, ok := eventForMsgKind(k)
		if !ok {
			t.Errorf("message kind %d has no ProtoEvent", k)
			continue
		}
		if prev, dup := seen[ev]; dup {
			t.Errorf("kinds %d and %d map to the same event %v", prev, k, ev)
		}
		seen[ev] = k
		if ev > EvPushScanAck {
			t.Errorf("kind %d maps to local event %v", k, ev)
		}
		legal := 0
		for s := 0; s < NumPageStates; s++ {
			if TransitionLegal(PageProtoState(s), ev) {
				legal++
			}
		}
		if legal == 0 {
			t.Errorf("event %v has no legal source state", ev)
		}
	}
	if len(seen) != int(EvPushScanAck)+1 {
		t.Errorf("message kinds cover %d events, want %d", len(seen), int(EvPushScanAck)+1)
	}
}

func TestStateAndEventNamesComplete(t *testing.T) {
	for s := 0; s < NumPageStates; s++ {
		if name := PageProtoState(s).String(); name == "" || strings.HasPrefix(name, "PageProtoState(") {
			t.Errorf("state %d has no name", s)
		}
	}
	for e := 0; e < NumProtoEvents; e++ {
		if name := ProtoEvent(e).String(); name == "" || strings.HasPrefix(name, "ProtoEvent(") {
			t.Errorf("event %d has no name", e)
		}
	}
}

// The predicates are what the protocol files branch on; pin their
// meaning against the state ordering they rely on.
func TestStatePredicates(t *testing.T) {
	wantOwner := map[PageProtoState]bool{
		StOwner: true, StOwnerSole: true, StServing: true,
		StPushWait: true, StInvalWait: true, StXferOut: true,
	}
	wantBusy := map[PageProtoState]bool{
		StServing: true, StPushWait: true, StInvalWait: true, StXferOut: true,
	}
	for s := 0; s < NumPageStates; s++ {
		st := PageProtoState(s)
		if st.Owner() != wantOwner[st] {
			t.Errorf("%v.Owner() = %v", st, st.Owner())
		}
		if st.Busy() != wantBusy[st] {
			t.Errorf("%v.Busy() = %v", st, st.Busy())
		}
		if st.AtRest() != (wantOwner[st] && !wantBusy[st]) {
			t.Errorf("%v.AtRest() = %v", st, st.AtRest())
		}
		if st.FaultOut() != (st == StFaultOutRead || st == StFaultOutWrite) {
			t.Errorf("%v.FaultOut() = %v", st, st.FaultOut())
		}
	}
}

func TestIllegalTransitionPanics(t *testing.T) {
	c := newCluster(t, 2, 0, DefaultConfig())
	tasks := c.shared(t, 2, DefaultConfig())
	c.run(t, func(p *sim.Proc) error {
		return tasks[0].WriteU64(p, 0, 1)
	})
	in := c.asvms[0].Instance(sharedID)
	if in.State(0) != StOwnerSole {
		t.Fatalf("writer in state %v, want OwnerSole", in.State(0))
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("illegal transition did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "OwnerSole") || !strings.Contains(msg, "InvalAck") {
			t.Fatalf("panic %q does not name both state and event", msg)
		}
	}()
	in.dispatch(EvInvalAck, 0, &invalAck{Obj: in.info.ID, Idx: 0})
}

func TestCoverageHelpers(t *testing.T) {
	var c Coverage
	hit, legal := c.Exercised()
	if hit != 0 || legal != LegalTransitions() {
		t.Fatalf("empty coverage: hit=%d legal=%d, want 0/%d", hit, legal, LegalTransitions())
	}
	var o Coverage
	o[StInvalid][EvFaultRead] = 3
	c.Merge(&o)
	c.Merge(&o)
	if c[StInvalid][EvFaultRead] != 6 {
		t.Fatalf("merge: cell = %d, want 6", c[StInvalid][EvFaultRead])
	}
	hit, _ = c.Exercised()
	if hit != 1 {
		t.Fatalf("hit = %d, want 1", hit)
	}
	miss := c.Unexercised()
	if len(miss) != legal-1 {
		t.Fatalf("unexercised = %d entries, want %d", len(miss), legal-1)
	}
	for _, m := range miss {
		if m == "Invalid×FaultRead" {
			t.Fatal("exercised pair listed as unexercised")
		}
	}
}
