package asvm

import (
	"testing"

	"asvm/internal/mesh"
	"asvm/internal/sim"
)

// TestReaderSetAgainstMapReference drives a readerSet and a
// map[mesh.NodeID]bool reference with the same random Add/Remove/Clear
// stream and checks they agree after every step — Len, Contains, Min, and
// the full ascending iteration. The ID range straddles the inline→bitset
// promotion point so both representations (and the transition) are covered.
func TestReaderSetAgainstMapReference(t *testing.T) {
	check := func(t *testing.T, step int, s *readerSet, ref map[mesh.NodeID]bool, maxID int) {
		t.Helper()
		if s.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, s.Len(), len(ref))
		}
		for id := mesh.NodeID(0); id <= mesh.NodeID(maxID); id++ {
			if s.Contains(id) != ref[id] {
				t.Fatalf("step %d: Contains(%d) = %v, want %v", step, id, s.Contains(id), ref[id])
			}
		}
		want := make([]mesh.NodeID, 0, len(ref))
		for id := mesh.NodeID(0); id <= mesh.NodeID(maxID); id++ {
			if ref[id] {
				want = append(want, id)
			}
		}
		got := s.AppendTo(nil)
		if len(got) != len(want) {
			t.Fatalf("step %d: AppendTo = %v, want %v", step, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: AppendTo = %v, want %v (ascending)", step, got, want)
			}
		}
		min, ok := s.Min()
		if len(want) == 0 {
			if ok {
				t.Fatalf("step %d: Min = %d on empty set", step, min)
			}
		} else if !ok || min != want[0] {
			t.Fatalf("step %d: Min = %d,%v, want %d", step, min, ok, want[0])
		}
	}

	for _, tc := range []struct {
		name  string
		maxID int
		seed  uint64
	}{
		{"inline-only", 3, 11}, // ≤4 distinct IDs: never promotes
		{"promoting", 9, 12},   // crosses readerInlineMax
		{"wide", 200, 13},      // multiple bitset words, sparse population
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := sim.NewRNG(tc.seed)
			var s readerSet
			ref := map[mesh.NodeID]bool{}
			for step := 0; step < 3000; step++ {
				id := mesh.NodeID(r.Intn(tc.maxID + 1))
				switch op := r.Intn(10); {
				case op < 5:
					s.Add(id)
					ref[id] = true
				case op < 9:
					s.Remove(id)
					delete(ref, id)
				default:
					s.Clear()
					ref = map[mesh.NodeID]bool{}
				}
				check(t, step, &s, ref, tc.maxID)
			}
		})
	}
}

// TestReaderSetPromotionKeepsOrder pins the inline→bitset transition
// directly: adds in descending order still iterate ascending before,
// across, and after the promotion on the fifth Add, and Clear keeps the
// promoted storage (no demotion, no allocation on refill).
func TestReaderSetPromotionKeepsOrder(t *testing.T) {
	var s readerSet
	for _, id := range []mesh.NodeID{80, 60, 40, 20} {
		s.Add(id)
	}
	if s.bits != nil {
		t.Fatal("set promoted before the fifth reader")
	}
	got := s.AppendTo(nil)
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("inline iteration not ascending: %v", got)
		}
	}
	s.Add(70) // fifth distinct reader: promotes
	if s.bits == nil {
		t.Fatal("fifth reader did not promote to bitset")
	}
	want := []mesh.NodeID{20, 40, 60, 70, 80}
	got = s.AppendTo(nil)
	if len(got) != len(want) {
		t.Fatalf("after promotion: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after promotion: %v, want %v", got, want)
		}
	}
	s.Clear()
	if s.Len() != 0 || s.bits == nil {
		t.Fatalf("Clear must empty the set but keep the bitset: n=%d bits=%v", s.n, s.bits)
	}
	s.Add(3)
	if min, ok := s.Min(); !ok || min != 3 {
		t.Fatalf("refill after Clear: Min = %d,%v", min, ok)
	}
}

// TestReaderSetIdempotentAdd: duplicate Adds never inflate Len, inline or
// promoted.
func TestReaderSetIdempotentAdd(t *testing.T) {
	var s readerSet
	for i := 0; i < 3; i++ {
		s.Add(2)
	}
	if s.Len() != 1 {
		t.Fatalf("inline duplicate Adds: Len = %d", s.Len())
	}
	for _, id := range []mesh.NodeID{5, 9, 1, 7} {
		s.Add(id)
	}
	for i := 0; i < 3; i++ {
		s.Add(9)
	}
	if s.Len() != 5 {
		t.Fatalf("promoted duplicate Adds: Len = %d", s.Len())
	}
}
