package asvm

import (
	"fmt"

	"asvm/internal/mesh"
	"asvm/internal/sim"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// This file is the protocol's crash-stop failure model. A crashed node's
// volatile state simply ceases (EvCrash); survivors scrub every reference
// to it (EvPeerDown), re-drive faults that may have died with it, and
// declare ownership it held lost — counted and traced, never silent. The
// no-crash protocol is untouched: everything here runs only when the
// machine layer executes a crash plan or the reliability layer declares a
// peer dead, and Node.crashEra stays false (strict panics intact) until
// either happens.

// CrashLedger counts the degradation one crash inflicted on a domain.
type CrashLedger struct {
	// OwnershipLost counts pages whose ownership died with the node.
	OwnershipLost int
	// PagesLost counts dirty pages whose only copy died with the node —
	// future faults see the pager's stale (but internally consistent)
	// contents, or zero fill.
	PagesLost int
	// CopiesDropped counts surviving read copies invalidated because
	// their owner died (single-source rule: with the owner gone, the
	// pager's copy becomes the page's only authority).
	CopiesDropped int
	// FaultsAborted counts the dead node's own in-flight faults failed
	// with vm.ErrNodeCrashed.
	FaultsAborted int
}

// Add accumulates another ledger into l.
func (l *CrashLedger) Add(o CrashLedger) {
	l.OwnershipLost += o.OwnershipLost
	l.PagesLost += o.PagesLost
	l.CopiesDropped += o.CopiesDropped
	l.FaultsAborted += o.FaultsAborted
}

// actCrash drops one page's protocol state as its node dies: identical to
// teardown — under crash-stop, volatile state simply ceases. (crash)
func actCrash(in *Instance, idx vm.PageIdx, m interface{}) {
	in.slots[idx] = pageSlot{}
}

// actPeerDown reacts, at a survivor, to a peer being declared dead. A
// faulting page re-drives its request from scratch — the original may have
// died with the peer (queued there, or its grant lost); a duplicate
// resolution is benign (grantBusy/grantLate absorb it). An owner scrubs
// the dead node from its reader list: the copy died with it. (peerDead)
func actPeerDown(in *Instance, idx vm.PageIdx, m interface{}) {
	dead := m.(mesh.NodeID)
	sl := &in.slots[idx]
	if sl.state.FaultOut() {
		if in.nd.Hooks.DropFaultRedrive {
			return
		}
		in.nd.Ctr.V[sim.CtrFaultRedrives]++
		in.trace("t redrive: node %d re-drives %v fault on %v p%d past dead %d",
			in.self(), sl.want, in.info.ID, idx, dead)
		in.dyn.Delete(idx)
		in.forward(accessReq{
			Obj: in.info.ID, Target: in.info.ID, Idx: idx,
			Want: sl.want, ReqKind: kindAccess,
			Origin: in.self(), LastFrom: dead,
		})
		return
	}
	if sl.state.Owner() && sl.readers.Contains(dead) {
		sl.readers.Remove(dead)
		in.nd.Ctr.V[sim.CtrCopiesDropped]++
		if sl.state.AtRest() {
			in.setState(idx, restOwnerState(sl.readers.Len()))
		}
	}
}

// actGrantBusy absorbs a grant landing on a busy owner. Without crashes
// this is a protocol bug (the operation in flight would be corrupted); in
// the crash era it is the benign tail of a re-driven fault that resolved
// twice — the first grant made us owner and we are already serving, so the
// duplicate is dead on arrival. Ownership cannot arrive here twice: a
// second request copy finds us owner and is served locally, not granted.
// (grantBusy)
func actGrantBusy(in *Instance, idx vm.PageIdx, m interface{}) {
	if !in.nd.crashEra {
		g := m.(*grantMsg)
		panic(fmt.Sprintf("asvm: grant for %v p%d landed on busy owner %d in %v",
			g.Obj, idx, in.self(), in.slots[idx].state))
	}
	in.nd.Ctr.V[sim.CtrLateGrants]++
}

// failFault aborts this node's outstanding fault with a typed error: the
// kernel's waiters resume with err, the slot returns to Invalid.
func (in *Instance) failFault(idx vm.PageIdx, err error) {
	sl := &in.slots[idx]
	if !sl.state.FaultOut() {
		return
	}
	in.nd.Ctr.V[sim.CtrFaultsAborted]++
	in.trace("t abort: node %d fails fault on %v p%d: %v", in.self(), in.info.ID, idx, err)
	sl.want, sl.retries, sl.staleFrom = 0, 0, nil
	in.setState(idx, StInvalid)
	in.nd.K.FailPending(in.o, idx, err)
}

// nackGrant handles one of our grants bouncing off a dead node. Copies are
// scrubbed from the reader list; bounced ownership — which never landed —
// is reclaimed where possible (back into the home's bookkeeping, or
// reinstalled locally when the contents travelled with the grant) and
// declared lost otherwise.
func (n *Node) nackGrant(dead mesh.NodeID, g grantMsg) {
	if g.Retry || g.Unavailable {
		return // pure control answers carry no authority
	}
	in := n.instances[g.Obj]
	if in == nil {
		// A pull grant into a copy domain we do not map: nothing local to
		// repair. The copy domain's own failure handling (home reset,
		// fault re-drive) recovers it.
		if g.Ownership {
			n.Ctr.V[sim.CtrOwnershipLost]++
		}
		return
	}
	sl := &in.slots[g.Idx]
	if !g.Ownership {
		if sl.state.Owner() && sl.readers.Contains(dead) {
			sl.readers.Remove(dead)
			if sl.state.AtRest() {
				in.setState(g.Idx, restOwnerState(sl.readers.Len()))
			}
		}
		return
	}
	if in.info.Home == in.self() && (g.AtPagerCopy || g.Fresh) {
		// A home-issued grant from the backing store (or zero fill): the
		// authority returns to the home's own bookkeeping; the contents,
		// if any, are still at the pager.
		if hs := in.home[g.Idx]; hs != nil {
			hs.granted = false
			if g.AtPagerCopy {
				hs.atPager = true
			}
		}
		if h, ok := in.dyn.Get(g.Idx); ok && h == dead {
			in.dyn.Delete(g.Idx)
		}
		n.Ctr.V[sim.CtrOwnershipReclaimed]++
		return
	}
	if sl.state == StInvalid && in.o.Pages[g.Idx] == nil && g.HasData {
		// We shipped the contents with the grant and kept nothing: take
		// the page back and own it here again.
		pg := n.K.InstallPage(in.o, g.Idx, copyData(g.Data), vm.ProtRead)
		if !g.AtPagerCopy {
			pg.Dirty = true
		}
		in.installOwner(g.Idx, nil, g.Version)
		in.announceOwner(g.Idx)
		n.Ctr.V[sim.CtrOwnershipReclaimed]++
		in.drainQueue(g.Idx)
		return
	}
	// Upgrade grants carry no contents (the dead node already had the
	// copy — now gone with it), and a mid-protocol slot cannot adopt the
	// page: the ownership, and possibly the last copy, died in flight.
	if g.HasData && !g.AtPagerCopy {
		n.Ctr.V[sim.CtrPagesLost]++
	}
	in.declareLost(g.Idx)
}

// declareLost records that a page's ownership died with a crashed node:
// the home forgets its grant so the next fault re-resolves from the
// backing store instead of chasing a ghost owner forever. Remote homes
// learn via a Lost-flagged toPager message; if the home itself is down,
// that message bounces harmlessly and the home's restart rebuild takes
// over.
func (in *Instance) declareLost(idx vm.PageIdx) {
	in.nd.Ctr.V[sim.CtrOwnershipLost]++
	in.trace("t lost: node %d declares %v p%d ownership lost", in.self(), in.info.ID, idx)
	in.dyn.Delete(idx)
	if in.info.Home == in.self() {
		hs := in.home[idx]
		if hs == nil {
			hs = &homeState{}
			in.home[idx] = hs
		}
		hs.granted = false
		return
	}
	in.seq++
	seq := in.seq
	in.pendPgr[seq] = pgrWait{to: in.info.Home, cb: func() {}}
	in.send(in.info.Home, toPager{Obj: in.info.ID, Idx: idx, Lost: true, Seq: seq, From: in.self()})
}

// PeerDown is the reliability layer's down-handler: the transport has
// declared dead unreachable (retransmit exhaustion), or the machine layer
// is executing a planned crash. Every instance scrubs its forwarding
// caches, completes protocol waits addressed to the dead node, and
// dispatches EvPeerDown for pages that must react (outstanding faults,
// reader-list entries). Idempotent: a second call for the same node finds
// nothing left to scrub.
func (n *Node) PeerDown(dead mesh.NodeID) {
	n.crashEra = true
	n.Ctr.V[sim.CtrPeerDowns]++
	for _, in := range n.instancesSorted() {
		n.Ctr.V[sim.CtrHintEvictions] += int64(in.dyn.DeleteOwner(dead))
		in.static.DeleteOwner(dead)
		in.completePendingFor(dead)
		for i := range in.slots {
			sl := &in.slots[i]
			if sl.state.FaultOut() || (sl.state.Owner() && sl.readers.Contains(dead)) {
				in.dispatch(EvPeerDown, vm.PageIdx(i), dead)
			}
		}
	}
}

// instancesSorted returns this node's instances in ObjID order — map
// iteration order must never reach the protocol (determinism contract).
func (n *Node) instancesSorted() []*Instance {
	out := make([]*Instance, 0, len(n.instances))
	for _, in := range n.instances {
		out = append(out, in)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && lessObjID(out[j].info.ID, out[j-1].info.ID); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func lessObjID(a, b vm.ObjID) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Seq < b.Seq
}

// completePendingFor completes, in deterministic seq order, every protocol
// wait addressed to a dead node: invalidation rounds count the dead reader
// as acked (it holds no copy any more), transfers and offers are declined
// for it, and pageouts to a dead home finish with their dirty contents
// counted lost. This closes the acked-but-unanswered window the transport
// flush cannot see — a message the dead node received (and acked) but
// crashed before answering leaves nothing in flight to bounce.
func (in *Instance) completePendingFor(dead mesh.NodeID) {
	var seqs []uint64
	for s, b := range in.pendInval {
		for _, t := range b.await {
			if t == dead {
				seqs = append(seqs, s)
				break
			}
		}
	}
	sortSeqsAsc(seqs)
	for _, s := range seqs {
		in.completeInvalTarget(s, dead)
	}

	seqs = seqs[:0]
	for s, w := range in.pendXfer {
		if w.to == dead {
			seqs = append(seqs, s)
		}
	}
	sortSeqsAsc(seqs)
	for _, s := range seqs {
		in.completeXfer(s, false)
	}

	seqs = seqs[:0]
	for s, w := range in.pendPgr {
		if w.to == dead {
			seqs = append(seqs, s)
		}
	}
	sortSeqsAsc(seqs)
	for _, s := range seqs {
		if w := in.pendPgr[s]; w.dirty {
			in.nd.Ctr.V[sim.CtrPagesLost]++
		}
		in.completePgr(s)
	}
}

func sortSeqsAsc(ss []uint64) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// CrashRecover tears a dead node out of one domain (crash-stop): the
// ledger records what the cluster lost, survivors scrub every reference to
// the dead node and re-drive faults that may have died with it, and the
// dead node's instance retires through EvCrash. The dead node keeps its
// mapping-ring position (marked Down) so static hashing is undisturbed and
// a restart can rejoin in place via AddNode.
func CrashRecover(cluster Cluster, info *DomainInfo, dead mesh.NodeID, led *CrashLedger) {
	if info.Down == nil {
		info.Down = make(map[mesh.NodeID]bool)
	}
	info.Down[dead] = true

	deadNd := cluster.node(dead)
	deadIn := deadNd.instances[info.ID]
	var homeIn *Instance
	if !info.Down[info.Home] {
		homeIn = cluster.node(info.Home).instances[info.ID]
	}

	// 1. What did the cluster just lose? Ownership held by the dead node
	// is gone: the home forgets its grant (next fault re-resolves from the
	// backing store) and surviving read copies are dropped — with the
	// owner gone, the pager's contents become the page's only authority,
	// and a live copy newer than the pager's must not linger.
	if deadIn != nil {
		for i := range deadIn.slots {
			idx := vm.PageIdx(i)
			sl := &deadIn.slots[i]
			if !sl.state.Owner() {
				continue
			}
			led.OwnershipLost++
			deadNd.Ctr.V[sim.CtrOwnershipLost]++
			if pg := deadIn.o.Pages[idx]; pg != nil && pg.Dirty {
				led.PagesLost++
				deadNd.Ctr.V[sim.CtrPagesLost]++
			}
			if homeIn != nil {
				hs := homeIn.home[idx]
				if hs == nil {
					hs = &homeState{}
					homeIn.home[idx] = hs
				}
				hs.granted = false
			}
			readers := sl.readers.AppendTo(make([]mesh.NodeID, 0, sl.readers.Len()))
			for _, r := range readers {
				if r == dead || info.Down[r] {
					continue
				}
				rin := cluster.node(r).instances[info.ID]
				if rin == nil {
					continue
				}
				rin.nd.K.LockRequest(rin.o, idx, vm.ProtNone, false, nil)
				if rin.slots[idx].state == StReadShared {
					rin.setState(idx, StInvalid)
				}
				rin.dyn.Delete(idx)
				led.CopiesDropped++
				rin.nd.Ctr.V[sim.CtrCopiesDropped]++
			}
		}
	}

	// 2. Survivors scrub the dead node and re-drive what it may have
	// taken with it.
	for _, nid := range info.Mapping {
		if nid == dead || info.Down[nid] {
			continue
		}
		nd := cluster.node(nid)
		if in := nd.instances[info.ID]; in != nil {
			nd.crashEra = true
			n := in.dyn.DeleteOwner(dead)
			nd.Ctr.V[sim.CtrHintEvictions] += int64(n)
			in.static.DeleteOwner(dead)
			in.completePendingFor(dead)
			in.dropQueuedFrom(dead)
			for i := range in.slots {
				sl := &in.slots[i]
				if sl.state.FaultOut() || (sl.state.Owner() && sl.readers.Contains(dead)) {
					in.dispatch(EvPeerDown, vm.PageIdx(i), dead)
				}
			}
		}
	}

	// 3. The dead node's instance retires: every page's state dies with
	// the node, the local vm object is destroyed (frames freed), and the
	// instance is dropped so a restart rejoins cold via AddNode.
	if deadIn != nil {
		for i := range deadIn.slots {
			if deadIn.slots[i].state != StInvalid {
				deadIn.dispatch(EvCrash, vm.PageIdx(i), nil)
			}
		}
		deadNd.K.DestroyObject(deadIn.o)
		delete(deadNd.instances, info.ID)
	}
}

// DeadLetters accounts for authority a crashed node had in flight: frames
// it sent that were never delivered (xport.AbandonedSends) die with its
// incarnation. An ownership grant among them is the dangerous case — the
// sender relinquished the page when it sent the grant, the grantee will
// never receive it, and no survivor's state records the loss. Without this
// the home's ledger says "granted" forever, every fault scans the ring for
// an owner that does not exist, and the home's paced retry livelocks. The
// loss is declared exactly as if the grant had bounced: the home forgets
// the grant, its hint is dropped, and the ledger counts the ownership (and
// dirty contents travelling with it) as dead. Run after CrashRecover so the
// scrub cannot resurrect the hint.
func DeadLetters(cluster Cluster, info *DomainInfo, dead mesh.NodeID, msgs []xport.AbandonedSend, led *CrashLedger) {
	deadNd := cluster.node(dead)
	for _, as := range msgs {
		g, ok := as.Msg.(*grantMsg)
		if !ok || g.Obj != info.ID || !g.Ownership || g.Retry || g.Unavailable {
			continue
		}
		led.OwnershipLost++
		deadNd.Ctr.V[sim.CtrOwnershipLost]++
		if g.HasData && !g.AtPagerCopy {
			led.PagesLost++
			deadNd.Ctr.V[sim.CtrPagesLost]++
		}
		if info.Down[info.Home] {
			continue // the home's own restart rebuild re-derives the ledger
		}
		hin := cluster.node(info.Home).instances[info.ID]
		if hin == nil {
			continue
		}
		hin.nd.crashEra = true
		hin.trace("t dead-letter: node %d voids %v p%d ownership grant %d->%d",
			hin.self(), info.ID, g.Idx, dead, as.Dst)
		hs := hin.home[g.Idx]
		if hs == nil {
			hs = &homeState{}
			hin.home[g.Idx] = hs
		}
		hs.granted = false
		hin.dyn.Delete(g.Idx)
	}
}

// dropQueuedFrom discards queued requests originated by a dead node: the
// faulting task died with it, and serving them would only manufacture
// grants that bounce.
func (in *Instance) dropQueuedFrom(dead mesh.NodeID) {
	for i := range in.slots {
		sl := &in.slots[i]
		if len(sl.queue) == 0 {
			continue
		}
		kept := sl.queue[:0]
		for _, r := range sl.queue {
			if r.Origin != dead {
				kept = append(kept, r)
			}
		}
		sl.queue = kept
	}
}

// RebuildHome reconstructs a restarted home's bookkeeping from the
// cluster's surviving owners: a page is granted iff some live node owns
// it. Backing-store knowledge survives the crash at the pager itself for
// pager-backed domains; an anonymous domain's in-memory parking store is
// volatile and lost with the home — those pages re-resolve as fresh, the
// crash-stop degradation the ledger counts.
func RebuildHome(cluster Cluster, info *DomainInfo) {
	hin := cluster.node(info.Home).instances[info.ID]
	if hin == nil {
		return
	}
	for _, nid := range info.Mapping {
		if nid == info.Home || info.Down[nid] {
			continue
		}
		in := cluster.node(nid).instances[info.ID]
		if in == nil {
			continue
		}
		for i := range in.slots {
			if in.slots[i].state.Owner() {
				hin.home[vm.PageIdx(i)] = &homeState{granted: true}
			}
		}
	}
}
