package asvm

import (
	"fmt"

	"asvm/internal/sim"
	"asvm/internal/vm"
)

// This file implements the paper's §6 extension: "ASVM primitives for
// locking a range of pages in a shared address space for the exclusive
// access of a particular task on a particular node", the building block
// for atomic read/write operations in the sketched striped file system
// (replacing the NORMA-IPC token server of the old scheme).
//
// A locked page is write-owned by this node and *held*: foreign access
// requests queue at the owner instead of stealing the page, and the
// pageout daemon skips it. Ranges are acquired in ascending page order, so
// two nodes locking overlapping ranges cannot deadlock.

// AcquireRange locks object pages [lo, hi) for exclusive access by this
// node. task must map the instance's object at base. Blocks the proc until
// every page is write-owned and held.
func (in *Instance) AcquireRange(p *sim.Proc, task *vm.Task, base vm.Addr, lo, hi vm.PageIdx) error {
	if lo < 0 || hi > in.info.SizePages || lo >= hi {
		return fmt.Errorf("asvm: bad lock range [%d,%d)", lo, hi)
	}
	for idx := lo; idx < hi; idx++ {
		addr := base + vm.Addr(idx)*vm.PageSize
		for attempt := 0; ; attempt++ {
			if attempt > 10000 {
				return fmt.Errorf("asvm: lock livelock on page %d", idx)
			}
			if _, err := task.Touch(p, addr, vm.ProtWrite); err != nil {
				return err
			}
			sl := &in.slots[idx]
			if !sl.state.AtRest() {
				// Ownership was stolen (or is mid-operation) between the
				// fault resolving and now; go again.
				p.Yield()
				continue
			}
			sl.held = true
			in.nd.K.Pin(in.o, idx)
			in.nd.Ctr.V[sim.CtrRangeLocks]++
			break
		}
	}
	return nil
}

// ReleaseRange unlocks [lo, hi): held pages become ordinary owned pages
// and queued foreign requests are served.
func (in *Instance) ReleaseRange(lo, hi vm.PageIdx) {
	for idx := lo; idx < hi; idx++ {
		sl := &in.slots[idx]
		if !sl.held {
			continue
		}
		sl.held = false
		in.nd.K.Unpin(in.o, idx)
		in.nd.Ctr.V[sim.CtrRangeUnlocks]++
		if !sl.state.Busy() {
			in.drainQueue(idx)
		}
	}
}

// Held reports whether the page is currently range-locked by this node.
func (in *Instance) Held(idx vm.PageIdx) bool {
	return in.slots[idx].held
}
