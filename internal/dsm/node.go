package dsm

import (
	"context"
	"fmt"
	"net"
	"sort"
	"time"

	"asvm/internal/asvm"
	"asvm/internal/mesh"
	"asvm/internal/pager"
	"asvm/internal/rt"
	"asvm/internal/sim"
	"asvm/internal/vm"
	"asvm/internal/xport/netx"
)

// regionSeq is the object sequence number for the mesh's shared region.
// It mirrors the simulator's cluster-level ID namespace (machine.nextID
// allocates above 1_000_000) so traces from real and simulated runs of
// the same scenario name the same object.
const regionSeq = 1_000_001

// testDial, when non-nil, replaces outbound connection establishment for
// every Node subsequently Opened — PipeMesh wires a whole mesh out of
// net.Pipe ends instead of sockets. Never set outside test scaffolding.
var testDial func(addr string) (net.Conn, error)

// opTimeout bounds one Read/Write/Lock against a mesh that has lost the
// nodes the operation needs. The protocol's own typed failure grants
// normally answer much sooner; this is the backstop.
const opTimeout = 30 * time.Second

// Node is one live mesh member: an ASVM runtime on the wall clock, its
// TCP transport, and a task with the shared region mapped at address 0.
type Node struct {
	Cfg  *MeshConfig
	Self mesh.NodeID

	loop *rt.Loop
	eng  *sim.Engine
	tr   *netx.Transport
	kern *vm.Kernel
	asn  *asvm.Node
	inst *asvm.Instance
	task *vm.Task

	pagerSrv *pager.Server // home only
}

// Open assembles and starts the mesh node with the given ID: transport
// listening, protocol runtime attached to the shared region, clock
// running. The peer processes do not need to be up yet — connections are
// dialed lazily on first send, and a peer that is down answers with the
// protocol's own Nack fallback.
func Open(cfg *MeshConfig, self int) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec := cfg.Node(self)
	if spec == nil {
		return nil, fmt.Errorf("dsm: node %d is not in the mesh config", self)
	}

	n := &Node{Cfg: cfg, Self: mesh.NodeID(self)}
	n.eng = sim.NewEngine()
	n.loop = rt.NewLoop(n.eng)

	peers := make(map[mesh.NodeID]string)
	for _, ns := range cfg.Nodes {
		if ns.ID != self {
			peers[mesh.NodeID(ns.ID)] = ns.Xport
		}
	}
	xcfg := netx.Config{
		Self:   n.Self,
		Peers:  peers,
		Listen: spec.Xport,
	}
	if testDial != nil {
		// Loopback tests wire the mesh from net.Pipe: no listener, and
		// every outbound dial lands in another in-process transport.
		xcfg.Listen = ""
		xcfg.Dial = testDial
	}
	n.tr = netx.New(n.loop, xcfg)
	if err := n.tr.Start(); err != nil {
		return nil, fmt.Errorf("dsm: node %d transport: %w", self, err)
	}

	// The protocol stack is built exactly as the simulator builds it —
	// same kernel, same runtime, same domain attachment — just one node's
	// worth, with the peers across sockets instead of in-process. Costs
	// are zero: on the wall clock, modelled 1996 CPU charges would just
	// add fixed timer waits to every fault, hiding the thing a real mesh
	// measures (actual compute + wire time). Cost constants never change
	// protocol decisions, so counter parity with the simulated twin
	// holds regardless. Data is tracked (the region holds real bytes) and
	// memory is unlimited (the demo measures fault latency, not
	// eviction).
	n.kern = vm.NewKernel(n.eng, n.Self, vm.Costs{}, vm.NewPhysMem(0), true)
	n.asn = asvm.NewNode(n.eng, n.kern, n.tr, asvm.DefaultConfig())

	home := mesh.NodeID(cfg.Home)
	info := &asvm.DomainInfo{
		ID:        vm.ObjID{Node: home, Seq: regionSeq},
		SizePages: vm.PageIdx(cfg.Pages),
		Home:      home,
		Cfg:       asvm.DefaultConfig(),
	}
	// Mapping order is protocol-significant (static hashing, ring scans):
	// every process must build the identical ring, so it is the sorted
	// node-ID list, independent of config file order.
	ids := make([]int, 0, len(cfg.Nodes))
	for _, ns := range cfg.Nodes {
		ids = append(ids, ns.ID)
	}
	sort.Ints(ids)
	for _, id := range ids {
		info.Mapping = append(info.Mapping, mesh.NodeID(id))
	}
	info.Reindex()
	n.inst = asvm.AddNode(info, n.asn)

	if n.Self == home {
		// The pager lives in the home's process; with no peers involved its
		// traffic is all self-sends, so it needs no wire codec. A nil disk
		// is an infinitely fast backing store — the measured latencies are
		// protocol and wire, not 1996 disk seeks.
		n.pagerSrv = pager.NewServer(n.eng, n.tr, home, nil,
			pager.Costs{}, fmt.Sprintf("dsm-%s", cfg.Region), true)
		n.inst.SetPager(pager.NewClient(n.eng, n.tr, n.Self, n.pagerSrv))
	}

	n.task = n.kern.NewTask(fmt.Sprintf("dsm%d", self))
	if _, err := n.task.Map.MapObject(0, n.inst.Obj(), 0, vm.PageIdx(cfg.Pages), vm.ProtWrite, vm.InheritShare); err != nil {
		n.tr.Close()
		return nil, fmt.Errorf("dsm: mapping region: %w", err)
	}

	n.loop.Start(context.Background())
	return n, nil
}

// Addr returns the transport listen address (resolved, useful with ":0").
func (n *Node) Addr() string {
	if a := n.tr.Addr(); a != nil {
		return a.String()
	}
	return ""
}

// do runs one operation as a proc on the protocol engine and measures its
// wall-clock latency — injection overhead included, exactly what a
// libdsm caller would observe.
func (n *Node) do(name string, fn func(p *sim.Proc) error) (time.Duration, error) {
	done := make(chan error, 1)
	start := time.Now()
	n.loop.Inject(func() {
		n.eng.Spawn(name, func(p *sim.Proc) {
			done <- fn(p)
		})
	})
	select {
	case err := <-done:
		return time.Since(start), err
	case <-time.After(opTimeout):
		return time.Since(start), fmt.Errorf("dsm: %s timed out after %v", name, opTimeout)
	}
}

// Read fetches the u64 at addr in the shared region, faulting the page in
// across the mesh if needed. Returns the value and the wall latency.
func (n *Node) Read(addr vm.Addr) (uint64, time.Duration, error) {
	var val uint64
	lat, err := n.do("read", func(p *sim.Proc) error {
		v, err := n.task.ReadU64(p, addr)
		val = v
		return err
	})
	return val, lat, err
}

// Write stores a u64 at addr, acquiring page ownership across the mesh if
// needed. Returns the wall latency.
func (n *Node) Write(addr vm.Addr, v uint64) (time.Duration, error) {
	return n.do("write", func(p *sim.Proc) error {
		return n.task.WriteU64(p, addr, v)
	})
}

// Lock acquires the region's pages [lo, hi) for exclusive use (ASVM range
// locks ride the ownership protocol). Returns the wall latency.
func (n *Node) Lock(lo, hi int64) (time.Duration, error) {
	return n.do("lock", func(p *sim.Proc) error {
		return n.inst.AcquireRange(p, n.task, 0, vm.PageIdx(lo), vm.PageIdx(hi))
	})
}

// Unlock releases pages [lo, hi).
func (n *Node) Unlock(lo, hi int64) (time.Duration, error) {
	return n.do("unlock", func(p *sim.Proc) error {
		n.inst.ReleaseRange(vm.PageIdx(lo), vm.PageIdx(hi))
		return nil
	})
}

// Quiet reports whether this node is locally drained: no queued engine
// events and nothing outstanding in the transport. Frames in flight on
// the wire are invisible to both endpoints, so mesh-wide drain detection
// must see every node quiet with stable counters over a window, not one
// Quiet reading (see Client.DrainMesh).
func (n *Node) Quiet() bool {
	quiet := false
	ok := n.loop.Call(func() {
		quiet = n.eng.Pending() == 0
	})
	return ok && quiet && n.tr.Outstanding() == 0
}

// QuietFrames implements QuietPoller in-process: local drain state plus
// total frame traffic, the same pair the control plane's quiet op
// reports.
func (n *Node) QuietFrames() (bool, uint64, error) {
	st := n.TransportStats()
	return n.Quiet(), st.FramesSent + st.FramesRecv, nil
}

// Counters returns the node's merged protocol counters: the kernel's
// (faults, zero fills) and the ASVM runtime's (messages, invalidations),
// by name. The sets are disjoint, so merging is a plain union.
func (n *Node) Counters() map[string]int64 {
	out := make(map[string]int64)
	n.loop.Call(func() {
		for _, name := range n.kern.Ctr.Names() {
			out[name] += n.kern.Ctr.Get(name)
		}
		for _, name := range n.asn.Ctr.Names() {
			out[name] += n.asn.Ctr.Get(name)
		}
	})
	return out
}

// TransportStats returns the netx traffic counters.
func (n *Node) TransportStats() netx.Stats { return n.tr.Stats() }

// Close stops the node: clock first (no more protocol progress), then the
// transport (peers see clean EOFs or bounces).
func (n *Node) Close() {
	n.loop.Stop()
	n.tr.Close()
}
