package dsm

import (
	"errors"
	"testing"
	"time"
)

// neverQuiet models a node whose traffic never stops: not locally quiet,
// and the frame total moves on every poll, so no stability window can
// ever form.
type neverQuiet struct{ frames uint64 }

func (f *neverQuiet) QuietFrames() (bool, uint64, error) {
	f.frames++
	return false, f.frames, nil
}

// stillQuiet models a fully drained node: quiet, frame total frozen.
type stillQuiet struct{}

func (stillQuiet) QuietFrames() (bool, uint64, error) { return true, 42, nil }

func TestDrainPollersTimeoutIsTyped(t *testing.T) {
	const timeout = 150 * time.Millisecond
	err := DrainPollers([]QuietPoller{&neverQuiet{}, stillQuiet{}}, 3, timeout)
	if err == nil {
		t.Fatal("drain of a never-quiescing mesh returned nil")
	}
	var dt ErrDrainTimeout
	if !errors.As(err, &dt) {
		t.Fatalf("drain error is %T (%v), want ErrDrainTimeout", err, err)
	}
	if dt.Waited < timeout {
		t.Errorf("Waited = %v, want >= %v", dt.Waited, timeout)
	}
	// The fake's frame total moved on every poll, so the last activity
	// must be recent relative to the whole wait.
	if dt.LastActivity > dt.Waited {
		t.Errorf("LastActivity %v exceeds Waited %v", dt.LastActivity, dt.Waited)
	}
}

func TestDrainPollersQuietMesh(t *testing.T) {
	if err := DrainPollers([]QuietPoller{stillQuiet{}, stillQuiet{}}, 3, 5*time.Second); err != nil {
		t.Fatalf("drain of a quiet mesh: %v", err)
	}
}
