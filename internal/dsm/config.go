// Package dsm assembles one node of a *real* distributed-shared-memory
// mesh: the same vm kernel, ASVM protocol runtime and pager the simulator
// drives, re-hosted on the wall clock (internal/rt) and wired to its
// peers over TCP (internal/xport/netx). It is the library behind
// cmd/asvmd — a libdsm-style surface: Open a configured mesh node, then
// Read/Write/Lock against the shared region while the ASVM protocol
// resolves faults across processes.
package dsm

import (
	"encoding/json"
	"fmt"
	"os"
)

// NodeSpec locates one node of the mesh.
type NodeSpec struct {
	// ID is the node's ASVM identity (dense, 0..n-1, unique).
	ID int `json:"id"`
	// Xport is the address the node's netx transport listens on.
	Xport string `json:"xport"`
	// Ctrl is the address the node's control server listens on.
	Ctrl string `json:"ctrl"`
}

// MeshConfig describes a whole mesh: every process loads the same config
// and picks out its own NodeSpec by ID. One shared region for now — the
// demo's scope; the protocol itself is multi-domain.
type MeshConfig struct {
	// Region names the shared memory object (reports only).
	Region string `json:"region"`
	// Pages is the region size.
	Pages int64 `json:"pages"`
	// Home is the node ID that speaks for the pager (the region's home).
	Home int `json:"home"`
	// Nodes lists every mesh member.
	Nodes []NodeSpec `json:"nodes"`
}

// Validate checks the config is a coherent mesh description.
func (c *MeshConfig) Validate() error {
	if c.Pages <= 0 {
		return fmt.Errorf("dsm: region needs a positive page count, have %d", c.Pages)
	}
	if len(c.Nodes) == 0 {
		return fmt.Errorf("dsm: mesh has no nodes")
	}
	seen := make(map[int]bool)
	homeOK := false
	for _, n := range c.Nodes {
		if n.ID < 0 {
			return fmt.Errorf("dsm: negative node ID %d", n.ID)
		}
		if seen[n.ID] {
			return fmt.Errorf("dsm: duplicate node ID %d", n.ID)
		}
		seen[n.ID] = true
		if n.ID == c.Home {
			homeOK = true
		}
	}
	if !homeOK {
		return fmt.Errorf("dsm: home node %d is not in the mesh", c.Home)
	}
	return nil
}

// Node returns the spec for a node ID, or nil.
func (c *MeshConfig) Node(id int) *NodeSpec {
	for i := range c.Nodes {
		if c.Nodes[i].ID == id {
			return &c.Nodes[i]
		}
	}
	return nil
}

// LoadConfig reads and validates a mesh config file.
func LoadConfig(path string) (*MeshConfig, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c MeshConfig
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("dsm: parsing %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// WriteFile marshals the config to a file (the demo orchestrator writes
// one temp config all daemons share).
func (c *MeshConfig) WriteFile(path string) error {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
