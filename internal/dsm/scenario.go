package dsm

import (
	"fmt"
	"time"

	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

// A scenario is a fixed sequence of shared-memory operations run one at a
// time, each drained before the next. Sequential-with-drain makes the
// protocol's message schedule deterministic, so the same scenario run on
// the real mesh and on the simulator must produce identical protocol
// counters — that equality is what the loopback test pins, and what makes
// the netdemo's real-vs-simulated latency table a like-for-like
// comparison.

// Op is one step of a scenario.
type Op struct {
	Label string  // for the latency report
	Node  int     // node performing the op
	Kind  string  // "read" or "write"
	Addr  vm.Addr // address in the shared region
	Val   uint64  // value to write
	Want  uint64  // expected value (reads with Check)
	Check bool    // verify a read's value
}

// DemoScenario is the Table-1-style walk the netdemo runs: for each of a
// few pages, a first-touch write at one node (zero-fill fault at the
// home), a read on every other node (read faults, building up a reader
// list), a write at the last node (ownership movement plus an
// invalidation round over the remaining readers), and a re-read at node
// 0 (read fault from the new owner). Every fault class in the paper's
// microbenchmark appears, on every participating node.
func DemoScenario(nodes int) []Op {
	const pages = 4
	var ops []Op
	writer := 1 % nodes
	far := nodes - 1
	for i := 0; i < pages; i++ {
		addr := vm.Addr(i*vm.PageSize + 8)
		v := uint64(1000*(i+1) + 1)
		ops = append(ops, Op{
			Label: fmt.Sprintf("p%d first write @n%d (zero-fill)", i, writer),
			Node:  writer, Kind: "write", Addr: addr, Val: v})
		for j := 0; j < nodes; j++ {
			if j == writer {
				continue
			}
			ops = append(ops, Op{
				Label: fmt.Sprintf("p%d remote read @n%d (read fault)", i, j),
				Node:  j, Kind: "read", Addr: addr, Want: v, Check: true})
		}
		ops = append(ops,
			Op{Label: fmt.Sprintf("p%d remote write @n%d (invalidate)", i, far),
				Node: far, Kind: "write", Addr: addr, Val: v + 1},
			Op{Label: fmt.Sprintf("p%d re-read @n%d (read fault)", i, 0),
				Node: 0, Kind: "read", Addr: addr, Want: v + 1, Check: true},
		)
	}
	return ops
}

// ScenarioPages returns the page count a scenario touches (region size
// for configs built around it).
func ScenarioPages(ops []Op) int64 {
	var max vm.Addr
	for _, op := range ops {
		if op.Addr > max {
			max = op.Addr
		}
	}
	return int64(max/vm.PageSize) + 1
}

// SimResult is the deterministic twin's outcome: per-op virtual
// latencies, and the mesh-wide protocol counters.
type SimResult struct {
	PerOp    []time.Duration
	Counters map[string]int64
}

// RunSimulated executes the scenario on the simulator — the identical
// protocol code on the identical op schedule, with modelled 1996 Paragon
// costs instead of real sockets. machine.DefaultParams calibration, data
// tracked so read checks are real.
func RunSimulated(nodes int, ops []Op) (*SimResult, error) {
	p := machine.DefaultParams(nodes)
	p.TrackData = true
	c := machine.New(p)

	nodeIdxs := make([]int, nodes)
	for i := range nodeIdxs {
		nodeIdxs[i] = i
	}
	r := c.NewSharedRegion("netdemo", vm.PageIdx(ScenarioPages(ops)), nodeIdxs)
	tasks := make([]*vm.Task, nodes)
	for i := range tasks {
		t, err := c.TaskOn(i, fmt.Sprintf("dsm%d", i), r, 0)
		if err != nil {
			return nil, err
		}
		tasks[i] = t
	}

	res := &SimResult{Counters: make(map[string]int64)}
	for _, op := range ops {
		op := op
		var lat time.Duration
		var opErr error
		c.Spawn(op.Label, func(pr *sim.Proc) {
			start := pr.Now()
			switch op.Kind {
			case "write":
				opErr = tasks[op.Node].WriteU64(pr, op.Addr, op.Val)
			case "read":
				v, err := tasks[op.Node].ReadU64(pr, op.Addr)
				if err == nil && op.Check && v != op.Want {
					err = fmt.Errorf("read %d, want %d", v, op.Want)
				}
				opErr = err
			default:
				opErr = fmt.Errorf("unknown op kind %q", op.Kind)
			}
			lat = time.Duration(pr.Now() - start)
		})
		c.Run() // drain: the next op starts from protocol quiescence
		if opErr != nil {
			return nil, fmt.Errorf("simulated %s: %w", op.Label, opErr)
		}
		res.PerOp = append(res.PerOp, lat)
	}

	for i := 0; i < nodes; i++ {
		for _, name := range c.Kerns[i].Ctr.Names() {
			res.Counters[name] += c.Kerns[i].Ctr.Get(name)
		}
		for _, name := range c.ASVMs[i].Ctr.Names() {
			res.Counters[name] += c.ASVMs[i].Ctr.Get(name)
		}
	}
	return res, nil
}
