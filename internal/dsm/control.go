package dsm

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"asvm/internal/vm"
)

// The control plane: each asvmd process runs a tiny newline-delimited
// JSON server the demo orchestrator drives operations through. It is
// deliberately trivial — one request, one response, per line — because it
// is scaffolding around the thing under test (the ASVM protocol on the
// data plane), not part of it.

// CtrlRequest is one control operation.
type CtrlRequest struct {
	Op   string `json:"op"` // ping|read|write|lock|unlock|quiet|counters|stats|shutdown
	Addr uint64 `json:"addr,omitempty"`
	Val  uint64 `json:"val,omitempty"`
	Lo   int64  `json:"lo,omitempty"`
	Hi   int64  `json:"hi,omitempty"`
}

// CtrlResponse answers one CtrlRequest.
type CtrlResponse struct {
	OK        bool             `json:"ok"`
	Err       string           `json:"err,omitempty"`
	Val       uint64           `json:"val,omitempty"`
	LatencyNS int64            `json:"latency_ns,omitempty"`
	Quiet     bool             `json:"quiet,omitempty"`
	Counters  map[string]int64 `json:"counters,omitempty"`
	Frames    uint64           `json:"frames,omitempty"`
	Bytes     uint64           `json:"bytes,omitempty"`
	Nacks     uint64           `json:"nacks,omitempty"`
	// stats only: the protocol-health counters a mesh operator watches —
	// page state-machine transitions and global ring-scan hops (the O(n)
	// fallback the hint caches exist to keep rare).
	ProtoTransitions int64 `json:"proto_transitions,omitempty"`
	RingScanHops     int64 `json:"ring_scan_hops,omitempty"`
}

// CtrlServer serves the control protocol for one Node.
type CtrlServer struct {
	node *Node
	ln   net.Listener

	mu    sync.Mutex
	conns map[net.Conn]bool

	// Shutdown is closed when a shutdown request is served; the daemon
	// main waits on it.
	Shutdown chan struct{}
	once     sync.Once
}

// ServeCtrl starts the control server on the node's configured control
// address.
func ServeCtrl(n *Node, addr string) (*CtrlServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dsm: control listen: %w", err)
	}
	s := &CtrlServer{node: n, ln: ln, conns: make(map[net.Conn]bool), Shutdown: make(chan struct{})}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns[c] = true
			s.mu.Unlock()
			go s.serve(c)
		}
	}()
	return s, nil
}

// Addr returns the resolved control listen address.
func (s *CtrlServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and closes live connections.
func (s *CtrlServer) Close() {
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

func (s *CtrlServer) serve(c net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	dec := json.NewDecoder(bufio.NewReader(c))
	enc := json.NewEncoder(c)
	for {
		var req CtrlRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if req.Op == "shutdown" {
			s.once.Do(func() { close(s.Shutdown) })
			return
		}
	}
}

func (s *CtrlServer) handle(req CtrlRequest) CtrlResponse {
	n := s.node
	switch req.Op {
	case "ping":
		return CtrlResponse{OK: true}
	case "read":
		val, lat, err := n.Read(vm.Addr(req.Addr))
		if err != nil {
			return CtrlResponse{Err: err.Error(), LatencyNS: int64(lat)}
		}
		return CtrlResponse{OK: true, Val: val, LatencyNS: int64(lat)}
	case "write":
		lat, err := n.Write(vm.Addr(req.Addr), req.Val)
		if err != nil {
			return CtrlResponse{Err: err.Error(), LatencyNS: int64(lat)}
		}
		return CtrlResponse{OK: true, LatencyNS: int64(lat)}
	case "lock":
		lat, err := n.Lock(req.Lo, req.Hi)
		if err != nil {
			return CtrlResponse{Err: err.Error(), LatencyNS: int64(lat)}
		}
		return CtrlResponse{OK: true, LatencyNS: int64(lat)}
	case "unlock":
		lat, err := n.Unlock(req.Lo, req.Hi)
		if err != nil {
			return CtrlResponse{Err: err.Error(), LatencyNS: int64(lat)}
		}
		return CtrlResponse{OK: true, LatencyNS: int64(lat)}
	case "quiet":
		st := n.TransportStats()
		return CtrlResponse{OK: true, Quiet: n.Quiet(),
			Frames: st.FramesSent + st.FramesRecv, Bytes: st.BytesSent + st.BytesRecv}
	case "counters":
		return CtrlResponse{OK: true, Counters: n.Counters()}
	case "stats":
		st := n.TransportStats()
		ctrs := n.Counters()
		return CtrlResponse{OK: true,
			Frames:           st.FramesSent + st.FramesRecv,
			Bytes:            st.BytesSent + st.BytesRecv,
			Nacks:            st.LocalNacks,
			ProtoTransitions: ctrs["proto_transitions"],
			RingScanHops:     ctrs["ring_scan_hops"]}
	case "shutdown":
		return CtrlResponse{OK: true}
	default:
		return CtrlResponse{Err: fmt.Sprintf("dsm: unknown control op %q", req.Op)}
	}
}
