package dsm

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"asvm/internal/vm"
)

// Client drives one asvmd process over its control connection.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// DialCtrl connects to a node's control server, retrying until the
// daemon is up or the deadline passes (daemons take a moment to bind).
func DialCtrl(addr string, wait time.Duration) (*Client, error) {
	deadline := time.Now().Add(wait)
	var lastErr error
	for {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			cl := &Client{conn: c, dec: json.NewDecoder(bufio.NewReader(c)), enc: json.NewEncoder(c)}
			if _, err := cl.roundTrip(CtrlRequest{Op: "ping"}); err == nil {
				return cl, nil
			} else {
				lastErr = err
				c.Close()
			}
		} else {
			lastErr = err
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dsm: control %s unreachable: %w", addr, lastErr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Close drops the control connection (the daemon keeps running).
func (c *Client) Close() { c.conn.Close() }

func (c *Client) roundTrip(req CtrlRequest) (CtrlResponse, error) {
	var resp CtrlResponse
	if err := c.enc.Encode(req); err != nil {
		return resp, err
	}
	if err := c.dec.Decode(&resp); err != nil {
		return resp, err
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("%s", resp.Err)
	}
	return resp, nil
}

// Read reads the u64 at addr on the remote node, returning the value and
// the latency the node measured for the operation itself.
func (c *Client) Read(addr vm.Addr) (uint64, time.Duration, error) {
	resp, err := c.roundTrip(CtrlRequest{Op: "read", Addr: uint64(addr)})
	return resp.Val, time.Duration(resp.LatencyNS), err
}

// Write writes a u64 on the remote node.
func (c *Client) Write(addr vm.Addr, v uint64) (time.Duration, error) {
	resp, err := c.roundTrip(CtrlRequest{Op: "write", Addr: uint64(addr), Val: v})
	return time.Duration(resp.LatencyNS), err
}

// Lock acquires pages [lo, hi) on the remote node.
func (c *Client) Lock(lo, hi int64) (time.Duration, error) {
	resp, err := c.roundTrip(CtrlRequest{Op: "lock", Lo: lo, Hi: hi})
	return time.Duration(resp.LatencyNS), err
}

// Unlock releases pages [lo, hi) on the remote node.
func (c *Client) Unlock(lo, hi int64) (time.Duration, error) {
	resp, err := c.roundTrip(CtrlRequest{Op: "unlock", Lo: lo, Hi: hi})
	return time.Duration(resp.LatencyNS), err
}

// Quiet polls the node's local drain state; frames is its total frame
// traffic so far (the stability signal for mesh-wide drain).
func (c *Client) Quiet() (quiet bool, frames uint64, err error) {
	resp, err := c.roundTrip(CtrlRequest{Op: "quiet"})
	return resp.Quiet, resp.Frames, err
}

// QuietFrames is Quiet under the QuietPoller seam's name, so a []*Client
// mesh drains through the same loop as in-process []*Node meshes.
func (c *Client) QuietFrames() (bool, uint64, error) { return c.Quiet() }

// Counters fetches the node's merged protocol counters.
func (c *Client) Counters() (map[string]int64, error) {
	resp, err := c.roundTrip(CtrlRequest{Op: "counters"})
	return resp.Counters, err
}

// Stats fetches the node's transport ledger and headline protocol
// counters (frames, bytes, local nacks, protocol-state transitions, ring
// scan hops).
func (c *Client) Stats() (CtrlResponse, error) {
	return c.roundTrip(CtrlRequest{Op: "stats"})
}

// Shutdown asks the daemon to exit cleanly.
func (c *Client) Shutdown() error {
	_, err := c.roundTrip(CtrlRequest{Op: "shutdown"})
	return err
}

// QuietPoller is the drain-detection seam: one mesh member that can
// report "locally quiet right now" plus its monotone total frame count.
// Client implements it over the control plane, Node in-process; tests
// implement it with fakes to pin the timeout path.
type QuietPoller interface {
	QuietFrames() (quiet bool, frames uint64, err error)
}

// ErrDrainTimeout reports a mesh that never reached a stable quiescent
// window: how long the drain polled, and how long before giving up the
// frame total last moved (0 means it was still moving on the final poll —
// genuine ongoing traffic rather than a stuck not-quiet node).
type ErrDrainTimeout struct {
	Waited       time.Duration
	LastActivity time.Duration
}

func (e ErrDrainTimeout) Error() string {
	return fmt.Sprintf("dsm: mesh did not drain within %v (last frame activity %v before giving up)",
		e.Waited, e.LastActivity)
}

// DrainMesh waits until every node reports quiet AND total frame traffic
// has stopped moving for stableRounds consecutive polls. One quiet
// reading per node is not enough: a frame in flight on the wire is
// invisible to both endpoints, so drain is only believable when nothing
// has changed anywhere for a window. On timeout the returned error is an
// ErrDrainTimeout.
func DrainMesh(clients []*Client, stableRounds int, timeout time.Duration) error {
	pollers := make([]QuietPoller, len(clients))
	for i, c := range clients {
		pollers[i] = c
	}
	return DrainPollers(pollers, stableRounds, timeout)
}

// DrainPollers is DrainMesh over the seam: the same stability-window
// logic for any mix of control-plane clients, in-process nodes, or
// fakes.
func DrainPollers(pollers []QuietPoller, stableRounds int, timeout time.Duration) error {
	if stableRounds < 2 {
		stableRounds = 2
	}
	start := time.Now()
	deadline := start.Add(timeout)
	lastChange := start
	var lastFrames uint64
	stable := 0
	for {
		allQuiet := true
		var frames uint64
		for _, c := range pollers {
			q, f, err := c.QuietFrames()
			if err != nil {
				return fmt.Errorf("dsm: drain poll: %w", err)
			}
			allQuiet = allQuiet && q
			frames += f
		}
		if frames != lastFrames {
			lastChange = time.Now()
		}
		if allQuiet && frames == lastFrames {
			stable++
			if stable >= stableRounds {
				return nil
			}
		} else {
			stable = 0
		}
		lastFrames = frames
		if time.Now().After(deadline) {
			return ErrDrainTimeout{
				Waited:       time.Since(start),
				LastActivity: time.Since(lastChange),
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
}
