package dsm

import (
	"fmt"
	"net"
	"sync"
)

// PipeMesh opens an n-node in-process mesh wired with net.Pipe instead of
// sockets: full Nodes — separate engines, wall-clock loops, socket reader
// and writer goroutines — with outbound dials intercepted to land in the
// target node's transport directly. It is test scaffolding, exported
// because the app/dsmhost parity tests live outside this package (they
// need both this mesh and the simulator twin, and dsmhost imports dsm).
// The returned stop function closes every node and restores real dialing;
// only one PipeMesh may be live in a process at a time.
func PipeMesh(n int, pages int64) ([]*Node, func(), error) {
	cfg := &MeshConfig{Region: "loopback", Pages: pages, Home: 0}
	for i := 0; i < n; i++ {
		cfg.Nodes = append(cfg.Nodes, NodeSpec{ID: i, Xport: fmt.Sprintf("pipe:%d", i)})
	}

	var mu sync.Mutex
	transports := make(map[string]*Node)
	testDial = func(addr string) (net.Conn, error) {
		mu.Lock()
		target := transports[addr]
		mu.Unlock()
		if target == nil {
			return nil, fmt.Errorf("dsm: pipe mesh has no node at %q", addr)
		}
		c1, c2 := net.Pipe()
		go target.tr.ServeConn(c2)
		return c1, nil
	}

	var nodes []*Node
	stop := func() {
		for _, nd := range nodes {
			nd.Close()
		}
		testDial = nil
	}
	for i := 0; i < n; i++ {
		nd, err := Open(cfg, i)
		if err != nil {
			stop()
			return nil, nil, fmt.Errorf("dsm: pipe mesh node %d: %w", i, err)
		}
		mu.Lock()
		transports[fmt.Sprintf("pipe:%d", i)] = nd
		mu.Unlock()
		nodes = append(nodes, nd)
	}
	return nodes, stop, nil
}
