package dsm

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// The loopback test is the tentpole's correctness anchor: a full mesh of
// real dsm Nodes — separate engines, wall-clock loops, socket reader and
// writer goroutines — wired together with net.Pipe, running the Table-1
// demo scenario. The values read must be the values written, the mesh
// must drain cleanly, and the protocol counters must match a simulated
// run of the identical scenario exactly: same code, same decisions, only
// the clock and the wire are real.

// pipeMesh opens an n-node dsm mesh connected by net.Pipe.
func pipeMesh(t *testing.T, n int, pages int64) []*Node {
	t.Helper()
	cfg := &MeshConfig{Region: "loopback", Pages: pages, Home: 0}
	for i := 0; i < n; i++ {
		cfg.Nodes = append(cfg.Nodes, NodeSpec{ID: i, Xport: fmt.Sprintf("pipe:%d", i)})
	}

	var mu sync.Mutex
	transports := make(map[string]*Node)
	testDial = func(addr string) (net.Conn, error) {
		mu.Lock()
		target := transports[addr]
		mu.Unlock()
		if target == nil {
			return nil, fmt.Errorf("pipeMesh: no node at %q", addr)
		}
		c1, c2 := net.Pipe()
		go target.tr.ServeConn(c2)
		return c1, nil
	}
	t.Cleanup(func() { testDial = nil })

	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nd, err := Open(cfg, i)
		if err != nil {
			t.Fatalf("opening node %d: %v", i, err)
		}
		t.Cleanup(nd.Close)
		mu.Lock()
		transports[fmt.Sprintf("pipe:%d", i)] = nd
		mu.Unlock()
		nodes[i] = nd
	}
	return nodes
}

// drainNodes waits until every node is locally quiet and total frame
// traffic stops moving — the same stability-window logic DrainMesh uses
// over the control plane, applied in-process.
func drainNodes(t *testing.T, nodes []*Node, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last uint64
	stable := 0
	for {
		quiet := true
		var frames uint64
		for _, nd := range nodes {
			quiet = quiet && nd.Quiet()
			st := nd.TransportStats()
			frames += st.FramesSent + st.FramesRecv
		}
		if quiet && frames == last {
			if stable++; stable >= 3 {
				return
			}
		} else {
			stable = 0
		}
		last = frames
		if time.Now().After(deadline) {
			t.Fatalf("mesh did not drain within %v", timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestLoopbackScenarioMatchesSimulation(t *testing.T) {
	const n = 3
	ops := DemoScenario(n)
	nodes := pipeMesh(t, n, ScenarioPages(ops))

	// Real run: each op on its node, drained to quiescence before the
	// next — the schedule under which protocol decisions are
	// deterministic on both hosts.
	for _, op := range ops {
		switch op.Kind {
		case "write":
			if _, err := nodes[op.Node].Write(op.Addr, op.Val); err != nil {
				t.Fatalf("%s: %v", op.Label, err)
			}
		case "read":
			v, _, err := nodes[op.Node].Read(op.Addr)
			if err != nil {
				t.Fatalf("%s: %v", op.Label, err)
			}
			if op.Check && v != op.Want {
				t.Fatalf("%s: read %d, want %d", op.Label, v, op.Want)
			}
		}
		drainNodes(t, nodes, 10*time.Second)
	}

	real := make(map[string]int64)
	for _, nd := range nodes {
		for k, v := range nd.Counters() {
			real[k] += v
		}
	}

	sim, err := RunSimulated(n, ops)
	if err != nil {
		t.Fatalf("simulated twin: %v", err)
	}

	// The load-bearing protocol counters must agree exactly: the mesh ran
	// the same faults, the same invalidation rounds, the same message
	// count as the simulator — same code, same decisions.
	for _, ctr := range []string{"faults", "invalidations", "msgs", "nacks"} {
		if real[ctr] != sim.Counters[ctr] {
			t.Errorf("counter %q: real mesh %d, simulated %d\nreal: %v\nsim:  %v",
				ctr, real[ctr], sim.Counters[ctr], real, sim.Counters)
		}
	}
	if real["faults"] == 0 {
		t.Error("scenario produced no faults — it tested nothing")
	}
	if real["invalidations"] == 0 {
		t.Error("scenario produced no invalidation rounds — coverage lost")
	}
}

// The control plane end to end, in-process: a CtrlServer fronting a pipe
// mesh node, driven through a Client over real TCP.
func TestControlPlane(t *testing.T) {
	const n = 2
	ops := DemoScenario(n)
	nodes := pipeMesh(t, n, ScenarioPages(ops))

	srvs := make([]*CtrlServer, n)
	clients := make([]*Client, n)
	for i, nd := range nodes {
		s, err := ServeCtrl(nd, "127.0.0.1:0")
		if err != nil {
			t.Fatalf("control server %d: %v", i, err)
		}
		t.Cleanup(s.Close)
		srvs[i] = s
		c, err := DialCtrl(s.Addr(), 5*time.Second)
		if err != nil {
			t.Fatalf("control client %d: %v", i, err)
		}
		t.Cleanup(c.Close)
		clients[i] = c
	}

	if _, err := clients[0].Write(8, 77); err != nil {
		t.Fatalf("ctrl write: %v", err)
	}
	v, lat, err := clients[1].Read(8)
	if err != nil {
		t.Fatalf("ctrl read: %v", err)
	}
	if v != 77 {
		t.Fatalf("ctrl read returned %d, want 77", v)
	}
	if lat <= 0 {
		t.Errorf("ctrl read reported non-positive latency %v", lat)
	}

	// Range locks through the control plane.
	if _, err := clients[1].Lock(0, 1); err != nil {
		t.Fatalf("ctrl lock: %v", err)
	}
	if _, err := clients[1].Unlock(0, 1); err != nil {
		t.Fatalf("ctrl unlock: %v", err)
	}

	if err := DrainMesh(clients, 3, 10*time.Second); err != nil {
		t.Fatalf("drain over control plane: %v", err)
	}
	ctrs, err := clients[0].Counters()
	if err != nil {
		t.Fatalf("ctrl counters: %v", err)
	}
	if ctrs["faults"] == 0 {
		t.Errorf("node 0 reports no faults after a write: %v", ctrs)
	}

	// Shutdown request closes the server's Shutdown gate.
	if err := clients[0].Shutdown(); err != nil {
		t.Fatalf("ctrl shutdown: %v", err)
	}
	select {
	case <-srvs[0].Shutdown:
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown request did not trip the server's Shutdown gate")
	}
}
