package dsm

import (
	"testing"
	"time"
)

// The scenario-level parity tests (real mesh vs simulated twin through
// the portable app layer) live in app/dsmhost, which imports this
// package. What belongs here is the machinery underneath them: the
// net.Pipe mesh builder, the drain loop, and the control plane.

// pipeMesh opens an n-node dsm mesh connected by net.Pipe.
func pipeMesh(t *testing.T, n int, pages int64) []*Node {
	t.Helper()
	nodes, stop, err := PipeMesh(n, pages)
	if err != nil {
		t.Fatalf("pipe mesh: %v", err)
	}
	t.Cleanup(stop)
	return nodes
}

// drainNodes waits until every node is locally quiet and total frame
// traffic stops moving — DrainPollers over the in-process seam.
func drainNodes(t *testing.T, nodes []*Node, timeout time.Duration) {
	t.Helper()
	pollers := make([]QuietPoller, len(nodes))
	for i, nd := range nodes {
		pollers[i] = nd
	}
	if err := DrainPollers(pollers, 3, timeout); err != nil {
		t.Fatalf("mesh did not drain: %v", err)
	}
}

// A minimal end-to-end data-plane check at the Node API: the value
// written on one node is the value read on another, and the mesh drains.
func TestPipeMeshReadYourWrites(t *testing.T) {
	nodes := pipeMesh(t, 2, 4)
	if _, err := nodes[0].Write(8, 41); err != nil {
		t.Fatalf("write: %v", err)
	}
	drainNodes(t, nodes, 10*time.Second)
	v, _, err := nodes[1].Read(8)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if v != 41 {
		t.Fatalf("read %d, want 41", v)
	}
	drainNodes(t, nodes, 10*time.Second)
}

// The control plane end to end, in-process: a CtrlServer fronting a pipe
// mesh node, driven through a Client over real TCP.
func TestControlPlane(t *testing.T) {
	const n = 2
	nodes := pipeMesh(t, n, 4)

	srvs := make([]*CtrlServer, n)
	clients := make([]*Client, n)
	for i, nd := range nodes {
		s, err := ServeCtrl(nd, "127.0.0.1:0")
		if err != nil {
			t.Fatalf("control server %d: %v", i, err)
		}
		t.Cleanup(s.Close)
		srvs[i] = s
		c, err := DialCtrl(s.Addr(), 5*time.Second)
		if err != nil {
			t.Fatalf("control client %d: %v", i, err)
		}
		t.Cleanup(c.Close)
		clients[i] = c
	}

	if _, err := clients[0].Write(8, 77); err != nil {
		t.Fatalf("ctrl write: %v", err)
	}
	v, lat, err := clients[1].Read(8)
	if err != nil {
		t.Fatalf("ctrl read: %v", err)
	}
	if v != 77 {
		t.Fatalf("ctrl read returned %d, want 77", v)
	}
	if lat <= 0 {
		t.Errorf("ctrl read reported non-positive latency %v", lat)
	}

	// Range locks through the control plane.
	if _, err := clients[1].Lock(0, 1); err != nil {
		t.Fatalf("ctrl lock: %v", err)
	}
	if _, err := clients[1].Unlock(0, 1); err != nil {
		t.Fatalf("ctrl unlock: %v", err)
	}

	if err := DrainMesh(clients, 3, 10*time.Second); err != nil {
		t.Fatalf("drain over control plane: %v", err)
	}
	ctrs, err := clients[0].Counters()
	if err != nil {
		t.Fatalf("ctrl counters: %v", err)
	}
	if ctrs["faults"] == 0 {
		t.Errorf("node 0 reports no faults after a write: %v", ctrs)
	}

	// The stats reply surfaces the protocol-health counters: an ownership
	// transfer has happened, so pages changed protocol state somewhere.
	var transitions int64
	for _, c := range clients {
		st, err := c.Stats()
		if err != nil {
			t.Fatalf("ctrl stats: %v", err)
		}
		if st.Frames == 0 {
			t.Error("stats reports zero frames after cross-node traffic")
		}
		transitions += st.ProtoTransitions
	}
	if transitions == 0 {
		t.Error("stats reports zero proto_transitions after an ownership transfer")
	}

	// Shutdown request closes the server's Shutdown gate.
	if err := clients[0].Shutdown(); err != nil {
		t.Fatalf("ctrl shutdown: %v", err)
	}
	select {
	case <-srvs[0].Shutdown:
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown request did not trip the server's Shutdown gate")
	}
}
