// Package machine assembles a simulated Paragon-class multicomputer: mesh
// interconnect, per-node kernels and message processors, I/O nodes with
// disks and pagers, and one of the two distributed memory systems (the XMM
// baseline or ASVM). It owns Params — the single calibration surface for
// every cost constant in the simulation (DESIGN.md §6).
package machine

import (
	"fmt"
	"time"

	"asvm/internal/asvm"
	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/norma"
	"asvm/internal/pager"
	"asvm/internal/sim"
	"asvm/internal/sts"
	"asvm/internal/vm"
	"asvm/internal/xmm"
	"asvm/internal/xport"
)

// System selects the distributed memory system under test.
type System int

// The two systems the paper compares.
const (
	SysASVM System = iota
	SysXMM
)

// String implements fmt.Stringer.
func (s System) String() string {
	if s == SysXMM {
		return "XMM"
	}
	return "ASVM"
}

// Params configures a cluster. All latency/bandwidth constants were
// calibrated once against the paper's Table 1 ASVM column and sequential
// EM3D time; see EXPERIMENTS.md.
type Params struct {
	// Nodes is the machine size (Paragon installations: up to 1792;
	// the paper's testbed: 72).
	Nodes int

	// MemMB is physical memory per node (paper: 16 MB GP nodes, ~9 MB
	// usable for user applications after the OS). Zero disables memory
	// limits entirely (microbenchmarks).
	MemMB int

	// OSMemMB is memory reserved for kernel + OS servers per node.
	OSMemMB int

	// MemPages, when nonzero, sets the per-node VM cache capacity directly
	// in pages, overriding MemMB. The schedule explorer uses it to build
	// tiny caches (2–4 pages) where eviction and ownership transfer
	// interleave within a handful of events.
	MemPages int

	// TrackData carries real page contents (correctness tests; large
	// benchmarks run metadata-only).
	TrackData bool

	// System picks ASVM or XMM.
	System System

	// IORatio is compute nodes per I/O (disk) node; Paragon: 32.
	IORatio int

	// DiskSeek and DiskBytesPerSecond model the I/O node disks (1996
	// SCSI: several ms positioning, a few MB/s sustained). DiskWriteSeek
	// is the pageout positioning cost — paging-space writes also allocate
	// blocks, which made them several times slower than reads and is what
	// the paper's 38 ms XMM rows measure.
	DiskSeek           time.Duration
	DiskWriteSeek      time.Duration
	DiskBytesPerSecond float64

	Mesh  mesh.Config
	Norma norma.Costs
	STS   sts.Costs
	VM    vm.Costs
	Pager pager.Costs
	ASVM  asvm.Config

	// XMMCopyThreads bounds each node's XMM copy-pager thread pool.
	XMMCopyThreads int

	// ASVMOverNorma carries the ASVM protocol over NORMA-IPC instead of
	// the dedicated STS — ablation A2, quantifying the paper's claim that
	// NORMA-IPC accounts for ~90 % of remote fault latency.
	ASVMOverNorma bool

	// Fault injects message drops/duplicates/delays below the reliability
	// layer (chaos runs). The zero plan leaves the wire untouched — no
	// wrapper is even installed.
	Fault xport.FaultPlan

	// Reliable layers per-link sequence numbers, acks and retransmission
	// over the transport. Chaos runs set it together with Fault; it can
	// also run alone to measure the layer's overhead on a clean wire.
	Reliable    bool
	ReliableCfg xport.ReliableConfig

	// Crash schedules crash-stop node failures (and optional restarts) at
	// virtual times. An active plan implies Reliable: peer-down detection
	// and the Nack re-route path live in the reliability layer. The zero
	// plan arms nothing — the no-crash schedule is untouched.
	Crash CrashPlan

	// Seed drives all randomness in workloads.
	Seed uint64

	// EngineLanes, when above 1, runs the simulation on the deterministic
	// parallel engine with that many event lanes (nodes are mapped onto
	// lanes round-robin, lookahead comes from Mesh.LookaheadFloor). The
	// executed schedule — and every simulated metric — is identical to the
	// serial engine's; only wall-clock speed differs. 0/1 = serial.
	EngineLanes int
}

// DefaultEngineLanes is the lane count DefaultParams starts from, so a
// whole experiment sweep can be switched to the parallel engine in one
// place (asvmbench -engine=parallel sets it at startup). It is read at
// Params construction time only and is not safe to change concurrently
// with cluster construction.
var DefaultEngineLanes = 1

// DefaultParams returns the calibrated configuration for n nodes.
func DefaultParams(n int) Params {
	return Params{
		Nodes:              n,
		MemMB:              0, // unlimited unless an experiment sets it
		OSMemMB:            7,
		TrackData:          false,
		System:             SysASVM,
		IORatio:            32,
		DiskSeek:           3 * time.Millisecond,
		DiskWriteSeek:      16 * time.Millisecond,
		DiskBytesPerSecond: 5e6,
		Mesh:               mesh.DefaultConfig(n),
		Norma:              norma.DefaultCosts(),
		STS:                sts.DefaultCosts(),
		VM:                 vm.DefaultCosts(),
		Pager:              pager.DefaultCosts(),
		ASVM:               asvm.DefaultConfig(),
		XMMCopyThreads:     64,
		Seed:               1,
		EngineLanes:        DefaultEngineLanes,
	}
}

// UserPages returns the per-node VM cache capacity in pages (0 =
// unlimited).
func (p Params) UserPages() int {
	if p.MemPages > 0 {
		return p.MemPages
	}
	if p.MemMB <= 0 {
		return 0
	}
	usable := p.MemMB - p.OSMemMB
	if usable < 1 {
		usable = 1
	}
	return usable * (1 << 20) / vm.PageSize
}

// Cluster is an assembled machine.
type Cluster struct {
	P   Params
	Eng *sim.Engine
	Net *mesh.Network
	HW  []*node.Node

	Kerns []*vm.Kernel

	// Transport actually used by the system under test (outermost wrapper).
	TR xport.Transport
	// Both transports exist (the ablation A2 swaps them).
	NormaTR *norma.Transport
	STSTR   *sts.Transport
	// FaultTR/RelTR are the chaos wrappers, nil unless Params enabled them.
	FaultTR *xport.FaultyTransport
	RelTR   *xport.Reliable

	ASVMs []*asvm.Node
	XMMs  []*xmm.Node

	// proto is the O(1) node-lookup handle over ASVMs that the asvm
	// protocol entry points take; built once in New (zero value under XMM).
	proto asvm.Cluster

	// Crash-stop failure model state: which nodes are currently down, what
	// failing them cost, and the regions CrashNode must recover. The
	// registry is only consulted on crash/restart; with an inactive plan
	// and no direct CrashNode calls it is dead weight only.
	crashed    map[int]bool
	regions    []*Region
	CrashStats CrashStats

	// PagingSpace maps each I/O node to its default pager (paging space).
	PagingSpace map[mesh.NodeID]*pager.Server

	RNG *sim.RNG

	barriers *barrierSvc
	nextObj  uint64
}

// New assembles a cluster.
func New(p Params) *Cluster {
	if p.Nodes < 1 {
		panic("machine: need at least one node")
	}
	if p.Crash.Active() {
		p.Reliable = true // crash detection lives in the reliability layer
	}
	e := sim.NewParallelEngine(p.EngineLanes, p.Mesh.LookaheadFloor())
	c := &Cluster{
		P:           p,
		Eng:         e,
		Net:         mesh.New(e, p.Nodes, p.Mesh),
		PagingSpace: make(map[mesh.NodeID]*pager.Server),
		RNG:         sim.NewRNG(p.Seed),
	}
	for i := 0; i < p.Nodes; i++ {
		c.HW = append(c.HW, node.New(e, mesh.NodeID(i)))
	}
	c.NormaTR = norma.New(e, c.Net, c.HW, p.Norma)
	c.STSTR = sts.New(e, c.Net, c.HW, p.STS)
	if p.System == SysXMM || p.ASVMOverNorma {
		c.TR = c.NormaTR
	} else {
		c.TR = c.STSTR
	}
	// Chaos wrappers: reliability over fault injection over the wire, so
	// retransmissions themselves are subject to loss. The fault RNG is a
	// dedicated stream — c.RNG draws stay identical with or without faults.
	if p.Fault.Active() {
		c.FaultTR = xport.NewFaulty(e, c.TR, p.Fault, sim.NewRNG(p.Seed^faultSeedSalt))
		c.TR = c.FaultTR
	}
	if p.Reliable {
		c.RelTR = xport.NewReliable(e, c.TR, p.ReliableCfg)
		c.TR = c.RelTR
	}

	// I/O nodes: disks + paging space (default pager). NORMA carries the
	// pager protocol under XMM; STS under ASVM (the pager interface cost
	// difference is part of what the paper measures).
	for i := 0; i < p.Nodes; i += max(1, p.IORatio) {
		io := mesh.NodeID(i)
		c.HW[i].AttachDisk(e, p.DiskSeek, p.DiskBytesPerSecond).SetWriteSeek(p.DiskWriteSeek)
		c.PagingSpace[io] = pager.NewServer(e, c.TR, io, c.HW[i].Disk,
			p.Pager, fmt.Sprintf("dp%d", i), p.TrackData)
	}

	for i := 0; i < p.Nodes; i++ {
		k := vm.NewKernel(e, mesh.NodeID(i), p.VM, vm.NewPhysMem(p.UserPages()), p.TrackData)
		c.Kerns = append(c.Kerns, k)
	}
	// Anonymous pageout goes to the group's paging space.
	for i, k := range c.Kerns {
		io := pager.IONodeFor(mesh.NodeID(i), p.Nodes, p.IORatio)
		srv := c.PagingSpace[io]
		if srv != nil {
			k.DefaultMgr = pager.NewBinding(k, e, c.TR, srv)
		}
	}

	switch p.System {
	case SysASVM:
		for i := 0; i < p.Nodes; i++ {
			nd := asvm.NewNode(e, c.Kerns[i], c.TR, p.ASVM)
			// Message-box recycling assumes every delivery is exactly-once
			// and dead after dispatch. A duplicating fault plan or the
			// retransmitting reliability layer breaks that, so chaos
			// configurations run un-pooled.
			nd.SetMsgPooling(!p.Fault.Active() && !p.Reliable)
			c.ASVMs = append(c.ASVMs, nd)
		}
		c.proto = asvm.NewCluster(c.ASVMs)
	case SysXMM:
		for i := 0; i < p.Nodes; i++ {
			c.XMMs = append(c.XMMs, xmm.NewNode(e, c.Kerns[i], c.TR, p.XMMCopyThreads))
		}
	}
	if p.System == SysASVM && c.RelTR != nil {
		c.wireDownHandlers()
	}
	if p.Crash.Active() {
		c.armCrashPlan()
	}
	c.barriers = newBarrierSvc(c)
	return c
}

// faultSeedSalt decorrelates the fault-injection RNG stream from the
// workload stream derived from the same Params.Seed.
const faultSeedSalt = 0xFA017_C4A05

// CheckInvariants validates a region's global protocol state. The engine
// must be drained first — with the reliability layer active that also means
// every retransmit timer has fired (acknowledged timers are no-ops).
func (c *Cluster) CheckInvariants(r *Region) error {
	if n := c.Eng.Pending(); n != 0 {
		return fmt.Errorf("machine: %d events still pending; drain before checking invariants", n)
	}
	if c.P.System == SysASVM && r.info != nil {
		return asvm.CheckInvariants(c.proto, r.info)
	}
	return nil
}

// ASVMCluster returns the O(1) membership handle over the machine's ASVM
// nodes (zero value under XMM). Diagnostics like the schedule explorer use
// it to call the asvm invariant checkers directly.
func (c *Cluster) ASVMCluster() asvm.Cluster { return c.proto }

// nextID allocates a cluster-level object ID (home node 0 namespace,
// sequence above any kernel-local IDs).
func (c *Cluster) nextID(home mesh.NodeID) vm.ObjID {
	c.nextObj++
	return vm.ObjID{Node: home, Seq: 1_000_000 + c.nextObj}
}

// Region is a shared memory object mapped across a set of nodes.
type Region struct {
	Name      string
	SizePages vm.PageIdx
	ID        vm.ObjID
	Home      int
	Nodes     []int // cluster node indices sharing the region

	objs     map[int]*vm.Object // node index -> local vm object
	info     *asvm.DomainInfo   // ASVM only
	pagerSrv *pager.Server      // backing store, for restart re-wiring
	nodeSet  map[int]bool       // Nodes as a set, for O(1) membership
}

// newNodeSet builds the O(1) membership view of a region's node list.
func newNodeSet(nodeIdxs []int) map[int]bool {
	s := make(map[int]bool, len(nodeIdxs))
	for _, n := range nodeIdxs {
		s[n] = true
	}
	return s
}

// Obj returns the region's vm object on a node.
func (r *Region) Obj(nodeIdx int) *vm.Object { return r.objs[nodeIdx] }

// ASVMInfo returns the region's ASVM domain description (nil under XMM).
// The schedule explorer uses it to run invariant checks against the
// region's cluster-wide state.
func (r *Region) ASVMInfo() *asvm.DomainInfo { return r.info }

// NewSharedRegion creates a shared memory object across the given node
// indices, backed by the home node group's paging space. Under ASVM the
// home is the first listed node; under XMM the first node runs the
// centralized manager.
func (c *Cluster) NewSharedRegion(name string, sizePages vm.PageIdx, nodeIdxs []int) *Region {
	if len(nodeIdxs) == 0 {
		panic("machine: region needs nodes")
	}
	home := nodeIdxs[0]
	id := c.nextID(mesh.NodeID(home))
	io := pager.IONodeFor(mesh.NodeID(home), c.P.Nodes, c.P.IORatio)
	backing := c.PagingSpace[io]
	r := &Region{
		Name: name, SizePages: sizePages, ID: id, Home: home,
		Nodes:    append([]int(nil), nodeIdxs...),
		objs:     make(map[int]*vm.Object),
		pagerSrv: backing,
		nodeSet:  newNodeSet(nodeIdxs),
	}
	switch c.P.System {
	case SysASVM:
		nodes := make([]*asvm.Node, len(nodeIdxs))
		for i, n := range nodeIdxs {
			nodes[i] = c.ASVMs[n]
		}
		info, objs := asvm.Setup(id, sizePages, nodes, 0, backing, c.P.ASVM)
		r.info = info
		for i, n := range nodeIdxs {
			r.objs[n] = objs[i]
		}
	case SysXMM:
		nodes := make([]*xmm.Node, len(nodeIdxs))
		for i, n := range nodeIdxs {
			nodes[i] = c.XMMs[n]
		}
		objs := xmm.SetupShared(id, sizePages, nodes, 0, backing)
		for i, n := range nodeIdxs {
			r.objs[n] = objs[i]
		}
	}
	c.regions = append(c.regions, r)
	return r
}

// NewMappedFile creates a file-pager-backed shared object (a memory-mapped
// file) on the I/O node serving the home node's group, optionally
// preloading sizePages of content.
func (c *Cluster) NewMappedFile(name string, sizePages vm.PageIdx, nodeIdxs []int, preload bool) (*Region, *pager.Server) {
	home := nodeIdxs[0]
	io := pager.IONodeFor(mesh.NodeID(home), c.P.Nodes, c.P.IORatio)
	id := c.nextID(io)
	srv := pager.NewServer(c.Eng, c.TR, io, c.HW[io].Disk, c.P.Pager, "file-"+name, c.P.TrackData)
	srv.CacheInMemory = true // UFS buffers file pages on the I/O node
	if preload {
		for i := vm.PageIdx(0); i < sizePages; i++ {
			srv.Preload(id, i, nil)
		}
	}
	r := &Region{
		Name: name, SizePages: sizePages, ID: id, Home: home,
		Nodes:    append([]int(nil), nodeIdxs...),
		objs:     make(map[int]*vm.Object),
		pagerSrv: srv,
		nodeSet:  newNodeSet(nodeIdxs),
	}
	switch c.P.System {
	case SysASVM:
		nodes := make([]*asvm.Node, len(nodeIdxs))
		for i, n := range nodeIdxs {
			nodes[i] = c.ASVMs[n]
		}
		info, objs := asvm.Setup(id, sizePages, nodes, 0, srv, c.P.ASVM)
		r.info = info
		for i, n := range nodeIdxs {
			r.objs[n] = objs[i]
		}
	case SysXMM:
		nodes := make([]*xmm.Node, len(nodeIdxs))
		for i, n := range nodeIdxs {
			nodes[i] = c.XMMs[n]
		}
		objs := xmm.SetupShared(id, sizePages, nodes, 0, srv)
		for i, n := range nodeIdxs {
			r.objs[n] = objs[i]
		}
	}
	c.regions = append(c.regions, r)
	return r, srv
}

// TaskOn creates a task on a node and maps the region at base.
func (c *Cluster) TaskOn(nodeIdx int, name string, r *Region, base vm.Addr) (*vm.Task, error) {
	t := c.Kerns[nodeIdx].NewTask(name)
	o := r.objs[nodeIdx]
	if o == nil {
		return nil, fmt.Errorf("machine: region %s not mapped on node %d", r.Name, nodeIdx)
	}
	if _, err := t.Map.MapObject(base, o, 0, r.SizePages, vm.ProtWrite, vm.InheritShare); err != nil {
		return nil, err
	}
	return t, nil
}

// RemoteFork forks a task across nodes under the active system.
func (c *Cluster) RemoteFork(parent *vm.Task, dstIdx int, name string) (*vm.Task, error) {
	srcIdx := int(parent.Kernel.Node)
	switch c.P.System {
	case SysASVM:
		return asvm.RemoteFork(c.proto, parent, c.ASVMs[dstIdx], name, c.P.ASVM)
	case SysXMM:
		return xmm.RemoteFork(parent, c.XMMs[srcIdx], c.XMMs[dstIdx], name)
	}
	return nil, fmt.Errorf("machine: unknown system")
}

// Spawn starts a proc.
func (c *Cluster) Spawn(name string, fn func(p *sim.Proc)) *sim.Proc {
	return c.Eng.Spawn(name, fn)
}

// SpawnOn starts a proc with event-lane affinity for the node it simulates
// work on: its wakeups queue on that node's lane under the parallel engine.
// Identical to Spawn on a serial engine.
func (c *Cluster) SpawnOn(nodeIdx int, name string, fn func(p *sim.Proc)) *sim.Proc {
	return c.Eng.SpawnOn(c.Eng.LaneFor(nodeIdx), name, fn)
}

// Run drives the simulation to completion and returns the final virtual
// time.
func (c *Cluster) Run() sim.Time { return c.Eng.Run() }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// DestroyRegion tears a shared region down on every node, freeing its
// frames and protocol state. The region must be quiesced (no faults in
// flight) and its tasks unmapped or abandoned.
func (c *Cluster) DestroyRegion(r *Region) {
	switch c.P.System {
	case SysASVM:
		if r.info != nil {
			asvm.Teardown(c.proto, r.info)
		}
	case SysXMM:
		nodes := make([]*xmm.Node, 0, len(r.Nodes))
		for _, n := range r.Nodes {
			nodes = append(nodes, c.XMMs[n])
		}
		xmm.Teardown(r.ID, nodes)
	}
	r.objs = map[int]*vm.Object{}
}
