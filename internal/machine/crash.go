package machine

import (
	"fmt"
	"time"

	"asvm/internal/asvm"
	"asvm/internal/mesh"
	"asvm/internal/pager"
	"asvm/internal/sim"
	"asvm/internal/xport"
)

// This file is the machine layer of the crash-stop failure model: a seeded
// per-node crash plan executed at virtual times, node teardown across every
// layer (kernel, transport, protocol), and cold rejoin on restart. The
// empty plan is provably inert — nothing here schedules an event, installs
// a handler, or touches a map unless Crashes is non-empty — so the seed-1
// no-crash contract is untouched.

// NodeCrash schedules one node's fate: crash at At and, when Restart is
// later than At, rejoin cold at Restart. Under the schedule explorer each
// due crash is a ChoiceCrash point (survive / crash / crash permanently)
// instead of a certainty.
type NodeCrash struct {
	Node    int
	At      time.Duration
	Restart time.Duration // <= At means the crash is permanent
}

// CrashPlan is a deterministic crash schedule.
type CrashPlan struct {
	Crashes []NodeCrash
}

// Active reports whether the plan schedules anything.
func (p CrashPlan) Active() bool { return len(p.Crashes) > 0 }

// CrashStats accumulates what the failure model did and what it cost.
type CrashStats struct {
	// Crashes/Restarts count executed fates (under the explorer a planned
	// crash may be skipped, so these can undershoot the plan).
	Crashes  int
	Restarts int
	// FaultsAborted counts kernel faults failed with ErrNodeCrashed at
	// the crashing nodes themselves.
	FaultsAborted int
	// Ledger aggregates the protocol-level degradation across all regions.
	Ledger asvm.CrashLedger
}

// armCrashPlan schedules the plan's fates. Called from New only when the
// plan is active.
func (c *Cluster) armCrashPlan() {
	for _, nc := range c.P.Crash.Crashes {
		if nc.Node < 0 || nc.Node >= c.P.Nodes {
			panic(fmt.Sprintf("machine: crash plan names node %d of %d", nc.Node, c.P.Nodes))
		}
		nc := nc
		c.Eng.Schedule(nc.At, func() {
			alts := 2
			if nc.Restart > nc.At {
				alts = 3
			}
			fate := 1 // production: the plan is a certainty
			if c.Eng.Exploring() {
				// Choice point: 0 survives (the default schedule stays
				// crash-free), 1 crashes per plan, 2 suppresses the restart.
				fate = c.Eng.Choose(sim.ChoiceCrash, alts)
			}
			if fate == 0 || c.crashed[nc.Node] {
				return
			}
			c.CrashNode(nc.Node)
			if nc.Restart > nc.At && fate != 2 {
				c.Eng.Schedule(nc.Restart-nc.At, func() {
					c.RestartNode(nc.Node)
				})
			}
		})
	}
}

// NodeIsCrashed reports whether a node is currently down.
func (c *Cluster) NodeIsCrashed(idx int) bool { return c.crashed[idx] }

// CrashNode executes a crash-stop failure of one node, now, across every
// layer:
//
//  1. the kernel fails its in-flight faults with ErrNodeCrashed and drops
//     task state;
//  2. the reliability layer advances the node's incarnation, gates inbound
//     delivery, and abandons its unacked sends (a dead node's timers fire
//     as no-ops);
//  3. every survivor's transport marks the node down immediately — the
//     failure model is fail-stop with a perfect detector, so survivors
//     fast-fail instead of grinding through retransmit schedules — and
//     in-flight frames toward it bounce back as Nacks;
//  4. the protocol scrubs the dead node from each region it mapped
//     (asvm.CrashRecover): survivors re-drive faults, drop its read
//     copies, and the ledger counts the ownership and contents that died
//     with it.
func (c *Cluster) CrashNode(idx int) {
	if c.crashed[idx] {
		return
	}
	if c.P.System != SysASVM {
		panic("machine: crash-stop model is wired for ASVM only")
	}
	if c.crashed == nil {
		c.crashed = make(map[int]bool)
	}
	c.crashed[idx] = true
	c.CrashStats.Crashes++
	n := mesh.NodeID(idx)

	c.CrashStats.FaultsAborted += c.Kerns[idx].Crash()
	var abandoned []xport.AbandonedSend
	if c.RelTR != nil {
		abandoned = c.RelTR.AbandonedSends(n)
		c.RelTR.NodeCrashed(n)
		for j := 0; j < c.P.Nodes; j++ {
			if j != idx && !c.crashed[j] {
				c.RelTR.MarkPeerDown(mesh.NodeID(j), n)
			}
		}
	}
	for _, r := range c.regions {
		if r.info == nil || r.info.Down[n] || !r.hasNode(idx) {
			continue
		}
		asvm.CrashRecover(c.proto, r.info, n, &c.CrashStats.Ledger)
		// Authority the dead node had in flight (undelivered ownership
		// grants) is lost with certainty; declare it now, after the scrub.
		asvm.DeadLetters(c.proto, r.info, n, abandoned, &c.CrashStats.Ledger)
	}
}

// RestartNode rejoins a crashed node cold: a fresh kernel incarnation, a
// reopened transport, and a cold protocol instance per region in its old
// ring position (static hashing is undisturbed). A restarted home rebuilds
// its grant ledger from the surviving owners; its backing-store knowledge
// lives at the pager and needs no rebuild, while an anonymous region's
// parked pages died with it (they re-resolve as fresh).
func (c *Cluster) RestartNode(idx int) {
	if !c.crashed[idx] {
		return
	}
	delete(c.crashed, idx)
	c.CrashStats.Restarts++
	n := mesh.NodeID(idx)

	c.Kerns[idx].Restart()
	if c.RelTR != nil {
		c.RelTR.PeerRestarted(n)
	}
	for _, r := range c.regions {
		if r.info == nil || !r.hasNode(idx) {
			continue
		}
		delete(r.info.Down, n)
		in := asvm.AddNode(r.info, c.ASVMs[idx])
		r.objs[idx] = in.Obj()
		if r.Home == idx {
			if r.pagerSrv != nil {
				in.SetPager(pager.NewClient(c.Eng, c.TR, n, r.pagerSrv))
			}
			asvm.RebuildHome(c.proto, r.info)
		}
	}
}

// hasNode reports whether the region maps cluster node idx — an O(1) set
// probe, so the crash paths stay flat as regions span hundreds of nodes.
func (r *Region) hasNode(idx int) bool { return r.nodeSet[idx] }

// wireDownHandlers registers each node's peer-down handler with the
// reliability layer: when retransmit exhaustion declares a peer dead (the
// organic detection path, as opposed to CrashNode's immediate one), the
// observing node's protocol layer scrubs the peer before the bounced
// frames arrive.
func (c *Cluster) wireDownHandlers() {
	for i, nd := range c.ASVMs {
		nd := nd
		c.RelTR.OnPeerDown(mesh.NodeID(i), func(e xport.ErrPeerDown) {
			nd.PeerDown(e.Node)
		})
	}
}
