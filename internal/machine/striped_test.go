package machine

import (
	"testing"
	"time"

	"asvm/internal/sim"
	"asvm/internal/vm"
)

func TestStripedFileCorrectness(t *testing.T) {
	p := testParams(8, SysASVM)
	c := New(p)
	r, servers, err := c.NewStripedFile("sf", 32, []int{1, 2, 3}, []int{0, 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 2 {
		t.Fatalf("servers = %d", len(servers))
	}
	task, err := c.TaskOn(1, "t", r, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Spawn("test", func(p *sim.Proc) {
		for i := 0; i < 32; i++ {
			if err := task.WriteU64(p, vm.Addr(i*vm.PageSize), uint64(2000+i)); err != nil {
				t.Error(err)
				return
			}
		}
		for i := 0; i < 32; i++ {
			v, err := task.ReadU64(p, vm.Addr(i*vm.PageSize))
			if err != nil {
				t.Error(err)
				return
			}
			if v != uint64(2000+i) {
				t.Errorf("page %d = %d", i, v)
			}
		}
	})
	c.Run()
}

func TestStripedFileDistributesPageouts(t *testing.T) {
	// Force pageouts by memory pressure with internode paging off: dirty
	// pages go to the striped backing store, round-robin.
	p := testParams(4, SysASVM)
	p.MemMB = 8 // 128 user pages
	p.ASVM.DisableInternodePaging = true
	c := New(p)
	r, servers, err := c.NewStripedFile("sf", 256, []int{1}, []int{0, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	task, err := c.TaskOn(1, "t", r, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Spawn("test", func(p *sim.Proc) {
		for i := 0; i < 256; i++ {
			if _, err := task.Touch(p, vm.Addr(i*vm.PageSize), vm.ProtWrite); err != nil {
				t.Error(err)
				return
			}
		}
	})
	c.Run()
	if servers[0].PageOuts == 0 || servers[1].PageOuts == 0 {
		t.Fatalf("pageouts not striped: %d / %d", servers[0].PageOuts, servers[1].PageOuts)
	}
	// Round-robin: both stripes within 2x of each other.
	a, b := servers[0].PageOuts, servers[1].PageOuts
	if a > 2*b || b > 2*a {
		t.Fatalf("stripe imbalance: %d vs %d", a, b)
	}
}

func TestStripedFileParallelReadThroughput(t *testing.T) {
	// Cold reads of a preloaded striped file: two stripes should beat one
	// (two disks working concurrently) — the §6 motivation.
	measure := func(stripes []int) time.Duration {
		p := testParams(8, SysASVM)
		c := New(p)
		r, _, err := c.NewStripedFile("sf", 64, []int{1, 2}, stripes, true)
		if err != nil {
			t.Fatal(err)
		}
		var worst sim.Time
		for _, n := range []int{1, 2} {
			n := n
			task, err := c.TaskOn(n, "t", r, 0)
			if err != nil {
				t.Fatal(err)
			}
			c.Spawn("reader", func(p *sim.Proc) {
				start := (n - 1) * 32
				for k := 0; k < 64; k++ {
					pg := (start + k) % 64
					if _, err := task.Touch(p, vm.Addr(pg*vm.PageSize), vm.ProtRead); err != nil {
						t.Error(err)
						return
					}
				}
				if p.Now() > worst {
					worst = p.Now()
				}
			})
		}
		c.Run()
		return worst
	}
	one := measure([]int{0})
	two := measure([]int{0, 4})
	if two >= one {
		t.Fatalf("two stripes (%v) not faster than one (%v)", two, one)
	}
}
