package machine

import (
	"strings"
	"testing"

	"asvm/internal/sim"
	"asvm/internal/vm"
)

func testParams(n int, sys System) Params {
	p := DefaultParams(n)
	p.System = sys
	p.TrackData = true
	return p
}

func TestClusterAssembly(t *testing.T) {
	for _, sys := range []System{SysASVM, SysXMM} {
		c := New(testParams(8, sys))
		if len(c.Kerns) != 8 || len(c.HW) != 8 {
			t.Fatalf("%v: bad cluster size", sys)
		}
		if c.HW[0].Disk == nil {
			t.Fatalf("%v: node 0 should be an I/O node", sys)
		}
		if c.HW[1].Disk != nil {
			t.Fatalf("%v: node 1 should not have a disk", sys)
		}
		if sys == SysASVM && len(c.ASVMs) != 8 {
			t.Fatal("missing ASVM runtimes")
		}
		if sys == SysXMM && len(c.XMMs) != 8 {
			t.Fatal("missing XMM runtimes")
		}
	}
}

func TestUserPages(t *testing.T) {
	p := DefaultParams(4)
	p.MemMB = 16
	// 16 - 7 = 9 MB -> 1152 8K pages (the paper: "about 9 MB ... available
	// for user applications" on a 16 MB node).
	if got := p.UserPages(); got != 1152 {
		t.Fatalf("UserPages = %d, want 1152", got)
	}
	p.MemMB = 0
	if p.UserPages() != 0 {
		t.Fatal("unlimited memory should report 0")
	}
}

func TestSharedRegionBothSystems(t *testing.T) {
	for _, sys := range []System{SysASVM, SysXMM} {
		c := New(testParams(4, sys))
		r := c.NewSharedRegion("r", 8, []int{0, 1, 2, 3})
		t0, err := c.TaskOn(0, "t0", r, 0)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := c.TaskOn(2, "t2", r, 0)
		if err != nil {
			t.Fatal(err)
		}
		var gotV uint64
		c.Spawn("test", func(p *sim.Proc) {
			if err := t0.WriteU64(p, 0, 123); err != nil {
				t.Error(err)
				return
			}
			v, err := t2.ReadU64(p, 0)
			if err != nil {
				t.Error(err)
				return
			}
			gotV = v
		})
		c.Run()
		if gotV != 123 {
			t.Fatalf("%v: read %d, want 123", sys, gotV)
		}
	}
}

func TestMappedFileBothSystems(t *testing.T) {
	for _, sys := range []System{SysASVM, SysXMM} {
		c := New(testParams(4, sys))
		r, srv := c.NewMappedFile("f", 16, []int{0, 1, 2, 3}, true)
		task, err := c.TaskOn(1, "t", r, 0)
		if err != nil {
			t.Fatal(err)
		}
		ok := false
		c.Spawn("test", func(p *sim.Proc) {
			// Preloaded pages read as zero content but exist at the pager.
			if _, err := task.Touch(p, 0, vm.ProtRead); err != nil {
				t.Error(err)
				return
			}
			ok = true
		})
		c.Run()
		if !ok {
			t.Fatalf("%v: file read failed", sys)
		}
		if srv.PageIns == 0 {
			t.Fatalf("%v: file pager never consulted", sys)
		}
	}
}

func TestRemoteForkBothSystems(t *testing.T) {
	for _, sys := range []System{SysASVM, SysXMM} {
		c := New(testParams(4, sys))
		parent := c.Kerns[0].NewTask("parent")
		region := c.Kerns[0].NewAnonymous(4)
		parent.Map.MapObject(0, region, 0, 4, vm.ProtWrite, vm.InheritCopy)
		var got uint64
		c.Spawn("test", func(p *sim.Proc) {
			if err := parent.WriteU64(p, 0, 555); err != nil {
				t.Error(err)
				return
			}
			child, err := c.RemoteFork(parent, 2, "child")
			if err != nil {
				t.Error(err)
				return
			}
			got, err = child.ReadU64(p, 0)
			if err != nil {
				t.Error(err)
			}
		})
		c.Run()
		if got != 555 {
			t.Fatalf("%v: child read %d, want 555", sys, got)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	c := New(testParams(4, SysASVM))
	bar := c.NewBarrier([]int{0, 1, 2, 3})
	var release []sim.Time
	for n := 0; n < 4; n++ {
		n := n
		c.Spawn("w", func(p *sim.Proc) {
			p.Sleep(sim.Time(n+1) * 1e6) // stagger arrivals
			bar.Await(p, n)
			release = append(release, p.Now())
		})
	}
	c.Run()
	if len(release) != 4 {
		t.Fatalf("released %d, want 4", len(release))
	}
	min, max := release[0], release[0]
	for _, r := range release {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	// All released after the last arrival (4ms), within message latency of
	// each other.
	if min < 4e6 {
		t.Fatalf("released before last arrival: %v", release)
	}
	if max-min > 5e6 {
		t.Fatalf("release skew too large: %v", release)
	}
}

func TestBarrierReusableAcrossRounds(t *testing.T) {
	c := New(testParams(3, SysASVM))
	bar := c.NewBarrier([]int{0, 1, 2})
	rounds := make([]int, 3)
	for n := 0; n < 3; n++ {
		n := n
		c.Spawn("w", func(p *sim.Proc) {
			for r := 0; r < 5; r++ {
				p.Sleep(sim.Time(n*100) * 1000)
				bar.Await(p, n)
				rounds[n]++
			}
		})
	}
	c.Run()
	for n, r := range rounds {
		if r != 5 {
			t.Fatalf("node %d completed %d rounds", n, r)
		}
	}
}

func TestMemoryPressureEndToEnd(t *testing.T) {
	// A region larger than one node's memory: ASVM internode paging must
	// keep everything correct.
	p := testParams(4, SysASVM)
	p.MemMB = 8 // 1 MB user = 128 pages
	c := New(p)
	r := c.NewSharedRegion("big", 300, []int{0, 1, 2, 3})
	task, err := c.TaskOn(1, "t", r, 0)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	c.Spawn("test", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			if err := task.WriteU64(p, vm.Addr(i*vm.PageSize), uint64(i)); err != nil {
				t.Error(err)
				failed = true
				return
			}
		}
		for i := 0; i < 300; i++ {
			v, err := task.ReadU64(p, vm.Addr(i*vm.PageSize))
			if err != nil {
				t.Error(err)
				failed = true
				return
			}
			if v != uint64(i) {
				t.Errorf("page %d = %d", i, v)
				failed = true
			}
		}
	})
	c.Run()
	if failed {
		t.Fatal("memory pressure run failed")
	}
	if c.Kerns[1].Mem.ResidentPages > 128 {
		t.Fatalf("node 1 resident = %d > 128", c.Kerns[1].Mem.ResidentPages)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() sim.Time {
		c := New(testParams(4, SysASVM))
		r := c.NewSharedRegion("r", 16, []int{0, 1, 2, 3})
		tasks := make([]*vm.Task, 4)
		for i := range tasks {
			var err error
			tasks[i], err = c.TaskOn(i, "t", r, 0)
			if err != nil {
				t.Fatal(err)
			}
		}
		for n := 0; n < 4; n++ {
			n := n
			c.Spawn("w", func(p *sim.Proc) {
				for i := 0; i < 16; i++ {
					tasks[n].WriteU64(p, vm.Addr(((i+n)%16)*vm.PageSize), uint64(i))
				}
			})
		}
		return c.Run()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic cluster runs: %v vs %v", a, b)
	}
}

// TestSystemsDifferentialOracle drives the identical randomized operation
// sequence through ASVM, XMM, and a flat in-memory oracle: every read must
// match the oracle under both systems, including under memory pressure
// (evictions, internode paging, paging space).
func TestSystemsDifferentialOracle(t *testing.T) {
	for _, sys := range []System{SysASVM, SysXMM} {
		for _, memMB := range []int{0, 8} {
			p := testParams(4, sys)
			p.MemMB = memMB
			c := New(p)
			const pages = 48
			r := c.NewSharedRegion("diff", pages, []int{0, 1, 2, 3})
			tasks := make([]*vm.Task, 4)
			for i := range tasks {
				var err error
				tasks[i], err = c.TaskOn(i, "t", r, 0)
				if err != nil {
					t.Fatal(err)
				}
			}
			oracle := make([]uint64, pages)
			rng := sim.NewRNG(99)
			mismatches := 0
			c.Spawn("driver", func(pr *sim.Proc) {
				for step := 0; step < 400; step++ {
					n := rng.Intn(4)
					pg := rng.Intn(pages)
					addr := vm.Addr(pg * vm.PageSize)
					if rng.Intn(2) == 0 {
						v := rng.Uint64()
						if err := tasks[n].WriteU64(pr, addr, v); err != nil {
							t.Error(err)
							return
						}
						oracle[pg] = v
					} else {
						v, err := tasks[n].ReadU64(pr, addr)
						if err != nil {
							t.Error(err)
							return
						}
						if v != oracle[pg] {
							mismatches++
						}
					}
				}
			})
			c.Run()
			if mismatches != 0 {
				t.Fatalf("%v memMB=%d: %d oracle mismatches", sys, memMB, mismatches)
			}
		}
	}
}

func TestDestroyRegionFreesEverything(t *testing.T) {
	for _, sys := range []System{SysASVM, SysXMM} {
		c := New(testParams(4, sys))
		r := c.NewSharedRegion("gone", 16, []int{0, 1, 2, 3})
		tasks := make([]*vm.Task, 4)
		for i := range tasks {
			var err error
			tasks[i], err = c.TaskOn(i, "t", r, 0)
			if err != nil {
				t.Fatal(err)
			}
		}
		c.Spawn("test", func(p *sim.Proc) {
			for i := 0; i < 16; i++ {
				tasks[i%4].WriteU64(p, vm.Addr(i*vm.PageSize), uint64(i))
			}
		})
		c.Run()
		before := 0
		for _, k := range c.Kerns {
			before += k.Mem.ResidentPages
		}
		if before == 0 {
			t.Fatalf("%v: nothing resident before destroy", sys)
		}
		c.DestroyRegion(r)
		after := 0
		for _, k := range c.Kerns {
			after += k.Mem.ResidentPages
			if k.Object(r.ID) != nil {
				t.Fatalf("%v: object survived destroy", sys)
			}
		}
		if after != 0 {
			t.Fatalf("%v: %d pages resident after destroy", sys, after)
		}
	}
}

func TestStatsReportRuns(t *testing.T) {
	for _, sys := range []System{SysASVM, SysXMM} {
		c := New(testParams(4, sys))
		r := c.NewSharedRegion("s", 4, []int{0, 1, 2, 3})
		t0, _ := c.TaskOn(0, "t", r, 0)
		t1, _ := c.TaskOn(1, "t", r, 0)
		c.Spawn("test", func(p *sim.Proc) {
			t0.WriteU64(p, 0, 1)
			t1.ReadU64(p, 0)
		})
		c.Run()
		var sb strings.Builder
		c.StatsReport(&sb)
		out := sb.String()
		for _, want := range []string{"cluster statistics", "kernel:", "transport:", "resident pages"} {
			if !strings.Contains(out, want) {
				t.Fatalf("%v: report missing %q:\n%s", sys, want, out)
			}
		}
	}
}
