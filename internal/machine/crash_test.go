package machine

import (
	"testing"
	"time"

	"asvm/internal/sim"

	"asvm/internal/vm"
)

// TestCrashPlanEmptyIsInert proves the zero-rate plan is a no-op at the
// event level, not just statistically: a cluster built without a plan and
// one built with an explicitly empty plan schedule exactly the same events
// (none, before any workload), run the same workload to the same virtual
// end time with the same executed-event count, and leave every crash
// statistic at zero. The seed-1 no-crash benchmark contract rests on this.
func TestCrashPlanEmptyIsInert(t *testing.T) {
	run := func(plan CrashPlan) (pendingAtBuild int, executed uint64, end time.Duration, stats CrashStats) {
		p := testParams(4, SysASVM)
		p.Reliable = true
		p.Crash = plan
		c := New(p)
		pendingAtBuild = c.Eng.Pending()
		r := c.NewSharedRegion("inert", 4, []int{0, 1, 2, 3})
		for n := 0; n < 4; n++ {
			n := n
			task, err := c.TaskOn(n, "w", r, 0)
			if err != nil {
				t.Fatal(err)
			}
			c.SpawnOn(n, "w", func(pr *sim.Proc) {
				for i := 0; i < 8; i++ {
					idx := vm.PageIdx((n + i) % 4)
					if err := task.WriteU64(pr, vm.Addr(idx)*vm.PageSize, uint64(n*100+i)); err != nil {
						t.Errorf("node %d op %d: %v", n, i, err)
						return
					}
				}
			})
		}
		endT := c.Run()
		return pendingAtBuild, c.Eng.Executed, time.Duration(endT), c.CrashStats
	}

	basePend, baseExec, baseEnd, baseStats := run(CrashPlan{})
	emptyPend, emptyExec, emptyEnd, emptyStats := run(CrashPlan{Crashes: []NodeCrash{}})

	if basePend != 0 || emptyPend != 0 {
		t.Errorf("empty plan scheduled events at build time: %d / %d pending", basePend, emptyPend)
	}
	if baseExec != emptyExec || baseEnd != emptyEnd {
		t.Errorf("empty plan perturbed the run: exec %d/%d end %v/%v",
			baseExec, emptyExec, baseEnd, emptyEnd)
	}
	if baseStats != (CrashStats{}) || emptyStats != (CrashStats{}) {
		t.Errorf("crash stats nonzero on crash-free runs: %+v / %+v", baseStats, emptyStats)
	}

	// Contrast: an actual plan does schedule its fate event up front.
	p := testParams(4, SysASVM)
	p.Reliable = true
	p.Crash = CrashPlan{Crashes: []NodeCrash{{Node: 3, At: 5 * time.Millisecond}}}
	c := New(p)
	if c.Eng.Pending() != 1 {
		t.Errorf("1-crash plan left %d events pending at build, want 1", c.Eng.Pending())
	}
}
