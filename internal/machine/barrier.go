package machine

import (
	"fmt"

	"asvm/internal/mesh"
	"asvm/internal/sim"
	"asvm/internal/xport"
)

// Cluster-wide barriers, message-based over the system transport (the
// Paragon OS synchronizes through the interconnect; barrier traffic
// competes with memory-system traffic on the message processors, which is
// part of the EM3D behaviour).

var barrierProto = xport.RegisterProto("barrier")

type (
	barArrive struct {
		ID   uint64
		Gen  uint64
		From mesh.NodeID
	}
	barRelease struct {
		ID  uint64
		Gen uint64
	}
)

type barKey struct {
	id  uint64
	gen uint64
}

type barrierSvc struct {
	c *Cluster
	// Coordinator-side arrival counts.
	arrivals map[barKey]int
	parties  map[uint64][]int
	// Per-node release futures (index by node then key).
	waits []map[barKey]*sim.Future
	next  uint64
}

func newBarrierSvc(c *Cluster) *barrierSvc {
	s := &barrierSvc{
		c:        c,
		arrivals: make(map[barKey]int),
		parties:  make(map[uint64][]int),
		waits:    make([]map[barKey]*sim.Future, c.P.Nodes),
	}
	for i := 0; i < c.P.Nodes; i++ {
		s.waits[i] = make(map[barKey]*sim.Future)
		i := i
		c.TR.Register(mesh.NodeID(i), barrierProto, func(src mesh.NodeID, m interface{}) {
			s.handle(i, m)
		})
	}
	return s
}

func (s *barrierSvc) handle(nodeIdx int, m interface{}) {
	switch msg := m.(type) {
	case barArrive:
		key := barKey{msg.ID, msg.Gen}
		s.arrivals[key]++
		nodes := s.parties[msg.ID]
		if s.arrivals[key] == len(nodes) {
			delete(s.arrivals, key)
			for _, n := range nodes {
				s.c.TR.Send(mesh.NodeID(nodeIdx), mesh.NodeID(n), barrierProto, 0,
					barRelease{ID: msg.ID, Gen: msg.Gen})
			}
		}
	case barRelease:
		key := barKey{msg.ID, msg.Gen}
		if f, ok := s.waits[nodeIdx][key]; ok {
			delete(s.waits[nodeIdx], key)
			f.Set(nil)
		} else {
			// Release raced ahead of the waiter: park it for Await.
			f := sim.NewFuture(s.c.Eng)
			f.Set(nil)
			s.waits[nodeIdx][key] = f
		}
	default:
		panic(fmt.Sprintf("machine: unknown barrier message %T", m))
	}
}

// Barrier synchronizes one proc per participating node.
type Barrier struct {
	svc   *barrierSvc
	id    uint64
	nodes []int
	gen   map[int]uint64
}

// NewBarrier creates a reusable barrier over the given node indices; its
// coordinator is the first listed node.
func (c *Cluster) NewBarrier(nodes []int) *Barrier {
	c.barriers.next++
	id := c.barriers.next
	c.barriers.parties[id] = append([]int(nil), nodes...)
	return &Barrier{svc: c.barriers, id: id, nodes: nodes, gen: make(map[int]uint64)}
}

// Await blocks the proc (running on nodeIdx) until all participants have
// arrived at the same generation.
func (b *Barrier) Await(p *sim.Proc, nodeIdx int) {
	b.gen[nodeIdx]++
	key := barKey{b.id, b.gen[nodeIdx]}
	svc := b.svc
	f, ok := svc.waits[nodeIdx][key]
	if !ok {
		f = sim.NewFuture(svc.c.Eng)
		svc.waits[nodeIdx][key] = f
	}
	coord := mesh.NodeID(b.nodes[0])
	svc.c.TR.Send(mesh.NodeID(nodeIdx), coord, barrierProto, 0,
		barArrive{ID: b.id, Gen: b.gen[nodeIdx], From: mesh.NodeID(nodeIdx)})
	f.Wait(p)
	delete(svc.waits[nodeIdx], key)
}
