package machine

import (
	"fmt"

	"asvm/internal/asvm"
	"asvm/internal/mesh"
	"asvm/internal/pager"
	"asvm/internal/vm"
	"asvm/internal/xmm"
)

// NewStripedFile creates a mapped file striped round-robin across several
// I/O nodes — the paper's §6 future-work file system that combines PFS
// striping with UFS-style mapped-file caching. Each stripe node gets a
// disk (if it lacks one) and a pager server; page i is backed by stripe
// i % len(stripeNodes). The distribution layer at the region's home talks
// to all stripes through one round-robin PagerIO.
func (c *Cluster) NewStripedFile(name string, sizePages vm.PageIdx, nodeIdxs, stripeNodes []int, preload bool) (*Region, []*pager.Server, error) {
	if len(stripeNodes) == 0 {
		return nil, nil, fmt.Errorf("machine: striped file needs stripe nodes")
	}
	home := nodeIdxs[0]
	id := c.nextID(mesh.NodeID(home))

	servers := make([]*pager.Server, len(stripeNodes))
	for i, sn := range stripeNodes {
		if c.HW[sn].Disk == nil {
			c.HW[sn].AttachDisk(c.Eng, c.P.DiskSeek, c.P.DiskBytesPerSecond).SetWriteSeek(c.P.DiskWriteSeek)
		}
		servers[i] = pager.NewServer(c.Eng, c.TR, mesh.NodeID(sn), c.HW[sn].Disk,
			c.P.Pager, fmt.Sprintf("stripe%d-%s", i, name), c.P.TrackData)
		servers[i].CacheInMemory = true
	}
	if preload {
		for pg := vm.PageIdx(0); pg < sizePages; pg++ {
			servers[int(pg)%len(servers)].Preload(id, pg, nil)
		}
	}

	r := &Region{
		Name: name, SizePages: sizePages, ID: id, Home: home,
		Nodes: append([]int(nil), nodeIdxs...),
		objs:  make(map[int]*vm.Object),
	}
	striped := pager.NewStriped(c.Eng, c.TR, mesh.NodeID(home), servers)
	switch c.P.System {
	case SysASVM:
		nodes := make([]*asvm.Node, len(nodeIdxs))
		for i, n := range nodeIdxs {
			nodes[i] = c.ASVMs[n]
		}
		info, objs := asvm.Setup(id, sizePages, nodes, 0, nil, c.P.ASVM)
		r.info = info
		for i, n := range nodeIdxs {
			r.objs[n] = objs[i]
		}
		c.ASVMs[home].Instance(id).SetPager(striped)
	case SysXMM:
		nodes := make([]*xmm.Node, len(nodeIdxs))
		for i, n := range nodeIdxs {
			nodes[i] = c.XMMs[n]
		}
		objs := xmm.SetupShared(id, sizePages, nodes, 0, nil)
		for i, n := range nodeIdxs {
			r.objs[n] = objs[i]
		}
		c.XMMs[home].SetManagerPager(id, striped)
	}
	return r, servers, nil
}
