package machine

import (
	"fmt"
	"io"
	"sort"
)

// StatsReport writes a cluster-wide view of the run: kernel fault
// statistics, protocol counters aggregated across nodes, transport and
// interconnect traffic, message-processor utilization and disk activity.
// This is the system/application-level monitoring interface the paper's
// §6 alludes to; the per-counter semantics live next to their Inc sites.
func (c *Cluster) StatsReport(w io.Writer) {
	fmt.Fprintf(w, "=== cluster statistics (%v, %d nodes, t=%v) ===\n",
		c.P.System, c.P.Nodes, c.Eng.Now())

	// Aggregate kernel counters.
	kern := map[string]int64{}
	for _, k := range c.Kerns {
		for _, name := range k.Ctr.Names() {
			kern[name] += k.Ctr.Get(name)
		}
	}
	fmt.Fprintln(w, "kernel:")
	writeCounterMap(w, kern)

	// Aggregate protocol counters.
	proto := map[string]int64{}
	switch c.P.System {
	case SysASVM:
		for _, a := range c.ASVMs {
			for _, name := range a.Ctr.Names() {
				proto[name] += a.Ctr.Get(name)
			}
		}
	case SysXMM:
		for _, x := range c.XMMs {
			for _, name := range x.Ctr.Names() {
				proto[name] += x.Ctr.Get(name)
			}
		}
	}
	fmt.Fprintf(w, "%v protocol:\n", c.P.System)
	writeCounterMap(w, proto)

	fmt.Fprintln(w, "transport:")
	fmt.Fprintf(w, "  sts:   %d msgs (%d with pages), %d bytes\n",
		c.STSTR.Msgs, c.STSTR.PageMsgs, c.STSTR.Bytes)
	fmt.Fprintf(w, "  norma: %d msgs, %d bytes\n", c.NormaTR.Msgs, c.NormaTR.Bytes)
	fmt.Fprintf(w, "  mesh:  %d packets, %d bytes\n", c.Net.Stats.Messages, c.Net.Stats.Bytes)

	// Busiest message processors (the contention points).
	type load struct {
		node int
		util float64
	}
	loads := make([]load, 0, len(c.HW))
	for i, hw := range c.HW {
		loads = append(loads, load{i, hw.MsgProc.Utilization()})
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i].util > loads[j].util })
	fmt.Fprintln(w, "busiest message processors:")
	for i := 0; i < len(loads) && i < 4; i++ {
		fmt.Fprintf(w, "  node %d: %.1f%% busy\n", loads[i].node, 100*loads[i].util)
	}

	for i, hw := range c.HW {
		if hw.Disk == nil {
			continue
		}
		fmt.Fprintf(w, "disk %d: %d reads (%d KB), %d writes (%d KB)\n",
			i, hw.Disk.Reads, hw.Disk.BytesRead/1024, hw.Disk.Writes, hw.Disk.BytesWritten/1024)
	}

	// Memory occupancy.
	resident := 0
	for _, k := range c.Kerns {
		resident += k.Mem.ResidentPages
	}
	fmt.Fprintf(w, "resident pages cluster-wide: %d\n", resident)
}

func writeCounterMap(w io.Writer, m map[string]int64) {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %-24s %d\n", name, m[name])
	}
}
