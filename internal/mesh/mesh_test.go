package mesh

import (
	"testing"
	"testing/quick"
	"time"

	"asvm/internal/sim"
)

func testConfig() Config {
	return Config{
		Width:          4,
		Height:         4,
		HopLatency:     100 * time.Nanosecond,
		BytesPerSecond: 100e6,
		SetupLatency:   time.Microsecond,
	}
}

func TestCoordAndHops(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 16, testConfig())
	x, y := nw.Coord(0)
	if x != 0 || y != 0 {
		t.Fatalf("Coord(0) = (%d,%d)", x, y)
	}
	x, y = nw.Coord(5)
	if x != 1 || y != 1 {
		t.Fatalf("Coord(5) = (%d,%d)", x, y)
	}
	if h := nw.Hops(0, 15); h != 6 {
		t.Fatalf("Hops(0,15) = %d, want 6", h)
	}
	if h := nw.Hops(3, 3); h != 0 {
		t.Fatalf("Hops(n,n) = %d, want 0", h)
	}
}

func TestHopsSymmetric(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 16, testConfig())
	f := func(a, b uint8) bool {
		s, d := NodeID(int(a)%16), NodeID(int(b)%16)
		return nw.Hops(s, d) == nw.Hops(d, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 16, testConfig())
	f := func(a, b, c uint8) bool {
		x, y, z := NodeID(int(a)%16), NodeID(int(b)%16), NodeID(int(c)%16)
		return nw.Hops(x, z) <= nw.Hops(x, y)+nw.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSendLatency(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 16, testConfig())
	var at sim.Time
	// 0 -> 5: 2 hops. 1000 bytes at 100MB/s = 10µs serialization.
	nw.Send(0, 5, 1000, func() { at = e.Now() })
	e.Run()
	want := time.Microsecond + 2*100*time.Nanosecond + 10*time.Microsecond
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestSendLoopback(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 16, testConfig())
	var at sim.Time
	nw.Send(3, 3, 1<<20, func() { at = e.Now() })
	e.Run()
	if at != time.Microsecond {
		t.Fatalf("loopback delivered at %v, want setup latency only", at)
	}
}

func TestSenderNICQueues(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 16, testConfig())
	var first, second sim.Time
	// Two 1000-byte messages from node 0: the second must queue behind the
	// first's 10µs serialization.
	nw.Send(0, 1, 1000, func() { first = e.Now() })
	nw.Send(0, 2, 1000, func() { second = e.Now() })
	e.Run()
	if second <= first {
		t.Fatalf("no NIC queueing: first=%v second=%v", first, second)
	}
	if got := second - first; got != 10*time.Microsecond-100*time.Nanosecond {
		// second waits 10µs serialization but travels 1 hop vs 1 hop... both
		// 1 hop? 0->1 is 1 hop, 0->2 is 2 hops.
		want := 10*time.Microsecond + 100*time.Nanosecond
		if second-first != want {
			t.Fatalf("gap = %v, want %v", second-first, want)
		}
	}
}

func TestDifferentSendersDontQueue(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 16, testConfig())
	var a, b sim.Time
	nw.Send(0, 1, 1000, func() { a = e.Now() })
	nw.Send(2, 1, 1000, func() { b = e.Now() })
	e.Run()
	if a != b {
		t.Fatalf("independent senders interfered: %v vs %v", a, b)
	}
}

func TestStatsAccumulate(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 16, testConfig())
	nw.Send(0, 1, 100, nil)
	nw.Send(1, 2, 200, nil)
	e.Run()
	if nw.Stats.Messages != 2 || nw.Stats.Bytes != 300 {
		t.Fatalf("stats = %+v", nw.Stats)
	}
}

func TestDefaultConfigFits(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 64, 72, 1792} {
		cfg := DefaultConfig(n)
		if cfg.Width*cfg.Height < n {
			t.Fatalf("DefaultConfig(%d) = %dx%d too small", n, cfg.Width, cfg.Height)
		}
	}
}

func TestNewPanicsOnTooSmallMesh(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undersized mesh did not panic")
		}
	}()
	New(sim.NewEngine(), 20, testConfig()) // 4x4 < 20
}

func TestWireLatencyMatchesSend(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 16, testConfig())
	want := nw.WireLatency(0, 15, 4096)
	var at sim.Time
	nw.Send(0, 15, 4096, func() { at = e.Now() })
	e.Run()
	if at != want {
		t.Fatalf("Send latency %v != WireLatency %v (idle NIC)", at, want)
	}
}

func TestRouteFollowsXY(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 16, testConfig())
	// 0 (0,0) -> 15 (3,3): 3 x-hops then 3 y-hops.
	r := nw.route(0, 15)
	if len(r) != 6 {
		t.Fatalf("route len = %d, want 6", len(r))
	}
	for i := 0; i < 3; i++ {
		if r[i].dir != 0 {
			t.Fatalf("hop %d dir = %d, want +x", i, r[i].dir)
		}
	}
	for i := 3; i < 6; i++ {
		if r[i].dir != 2 {
			t.Fatalf("hop %d dir = %d, want +y", i, r[i].dir)
		}
	}
	if len(nw.route(5, 5)) != 0 {
		t.Fatal("self route not empty")
	}
}

func TestLinkContentionStallsSharedLinks(t *testing.T) {
	cfg := testConfig()
	cfg.LinkContention = true
	e := sim.NewEngine()
	nw := New(e, 16, cfg)
	// Routes 1->3 (links 1+x, 2+x) and 0->3 (0+x, 1+x, 2+x) share two
	// links; with contention on, the second burst must stall.
	var t1, t2 sim.Time
	nw.Send(1, 3, 100000, func() { t1 = e.Now() }) // 1ms serialization
	nw.Send(0, 3, 100000, func() { t2 = e.Now() })
	e.Run()
	if nw.Stats.LinkStalls == 0 {
		t.Fatal("no link stalls recorded for overlapping routes")
	}
	if t2 <= t1 {
		t.Fatalf("second message (%v) should stall behind first (%v)", t2, t1)
	}
}

func TestLinkContentionOffByDefault(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 16, testConfig())
	nw.Send(1, 3, 100000, nil)
	nw.Send(0, 3, 100000, nil)
	e.Run()
	if nw.Stats.LinkStalls != 0 {
		t.Fatal("link contention active despite being disabled")
	}
}

func TestLinkContentionDisjointRoutesDontStall(t *testing.T) {
	cfg := testConfig()
	cfg.LinkContention = true
	e := sim.NewEngine()
	nw := New(e, 16, cfg)
	nw.Send(0, 1, 100000, nil)   // link 0+x
	nw.Send(12, 13, 100000, nil) // link 12+x
	e.Run()
	if nw.Stats.LinkStalls != 0 {
		t.Fatalf("disjoint routes stalled: %d", nw.Stats.LinkStalls)
	}
}
