// Package mesh models the Paragon's two-dimensional wormhole-routed mesh
// interconnect. Messages travel between nodes with a latency made of a
// per-hop routing delay plus serialization time at the sender's network
// interface; each node's outgoing NIC is a serial resource, so a node
// pushing many pages saturates and queues — the effect that bounds the
// file-pager transfer rates in the paper's Table 2.
package mesh

import (
	"fmt"
	"time"

	"asvm/internal/sim"
)

// NodeID identifies a node in the machine, 0..N-1.
type NodeID int

// Config describes the interconnect geometry and timing.
type Config struct {
	// Width and Height give the mesh dimensions; Width*Height >= number of
	// nodes. Node n sits at (n % Width, n / Width).
	Width, Height int

	// HopLatency is the wormhole routing delay per mesh hop.
	HopLatency time.Duration

	// BytesPerSecond is the link bandwidth (Paragon: 200 MB/s raw per
	// direction; effective payload bandwidth is lower).
	BytesPerSecond float64

	// SetupLatency is the fixed wire-level cost per message independent of
	// size (router setup, DMA initiation).
	SetupLatency time.Duration

	// LinkContention additionally models occupancy of every directed mesh
	// link along a message's XY route: concurrent messages crossing the
	// same links queue behind each other. Off by default — the calibrated
	// results treat the sender NIC as the bandwidth bottleneck, which is
	// accurate until bisection traffic dominates.
	LinkContention bool
}

// LookaheadFloor returns the minimum latency of any cross-node message:
// router setup plus one hop of wormhole routing (serialization, NIC
// queueing and latency choice points only add to it). This is the
// conservative lookahead a parallel engine needs — an event on one node
// cannot cause an event on another node earlier than this floor, so a
// window of this width can be drained per-node in parallel. See
// sim.NewParallelEngine and DESIGN.md §10.
func (c Config) LookaheadFloor() time.Duration {
	return c.SetupLatency + c.HopLatency
}

// DefaultConfig returns Paragon-like interconnect parameters for n nodes,
// arranged in the squarest mesh that fits.
func DefaultConfig(n int) Config {
	w := 1
	for w*w < n {
		w++
	}
	h := (n + w - 1) / w
	return Config{
		Width:          w,
		Height:         h,
		HopLatency:     40 * time.Nanosecond,
		BytesPerSecond: 175e6, // effective payload bandwidth
		SetupLatency:   5 * time.Microsecond,
	}
}

// Network is the interconnect instance.
type Network struct {
	eng  *sim.Engine
	cfg  Config
	nics []*sim.Server // per-node outgoing NIC

	// linkBusy tracks per-directed-link occupancy when LinkContention is
	// on, keyed by the link's source node and direction.
	linkBusy map[linkKey]time.Duration

	// hopPool recycles the in-flight stage objects of SendRun.
	hopPool []*hop

	// Stats counts traffic.
	Stats struct {
		Messages     uint64
		Bytes        uint64
		LinkStalls   uint64
		LinkStallDur time.Duration
	}
}

// linkKey identifies a directed link leaving a node.
type linkKey struct {
	from NodeID
	dir  int // 0 +x, 1 -x, 2 +y, 3 -y
}

// New builds a network for nodes 0..n-1 using cfg.
func New(e *sim.Engine, n int, cfg Config) *Network {
	if cfg.Width <= 0 || cfg.Height <= 0 || cfg.Width*cfg.Height < n {
		panic(fmt.Sprintf("mesh: %dx%d mesh cannot hold %d nodes", cfg.Width, cfg.Height, n))
	}
	nw := &Network{eng: e, cfg: cfg, linkBusy: make(map[linkKey]time.Duration)}
	nw.nics = make([]*sim.Server, n)
	for i := range nw.nics {
		nw.nics[i] = sim.NewServer(e, fmt.Sprintf("nic%d", i))
	}
	return nw
}

// Size returns the number of nodes attached to the network.
func (nw *Network) Size() int { return len(nw.nics) }

// Config returns the interconnect configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Coord returns the mesh coordinates of a node.
func (nw *Network) Coord(n NodeID) (x, y int) {
	return int(n) % nw.cfg.Width, int(n) / nw.cfg.Width
}

// Hops returns the XY-routing hop count between two nodes.
func (nw *Network) Hops(src, dst NodeID) int {
	sx, sy := nw.Coord(src)
	dx, dy := nw.Coord(dst)
	return abs(sx-dx) + abs(sy-dy)
}

// WireLatency returns the in-flight latency for a message of the given size
// between src and dst, excluding sender NIC queueing.
func (nw *Network) WireLatency(src, dst NodeID, bytes int) time.Duration {
	hops := nw.Hops(src, dst)
	ser := nw.serialization(bytes)
	return nw.cfg.SetupLatency + time.Duration(hops)*nw.cfg.HopLatency + ser
}

func (nw *Network) serialization(bytes int) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / nw.cfg.BytesPerSecond * float64(time.Second))
}

// latencyChoiceSteps are the extra in-flight latency alternatives a
// schedule chooser may inject per message (choice point: can this delivery
// overtake, or be overtaken by, nearby protocol activity?). Alternative 0
// is always "none", so the default schedule is the unperturbed one. The
// steps bracket the per-message software costs, which is what makes
// reorderings against neighbouring sends reachable.
var latencyChoiceSteps = [...]time.Duration{0, 30 * time.Microsecond, 150 * time.Microsecond}

// chooseExtraLatency resolves the per-message latency choice point; it is
// free (one nil check inside Choose) when no chooser is installed.
func (nw *Network) chooseExtraLatency() time.Duration {
	return latencyChoiceSteps[nw.eng.Choose(sim.ChoiceLatency, len(latencyChoiceSteps))]
}

// Send transmits a message of the given size from src to dst and runs
// deliver at the destination when the last byte arrives. The sender's NIC
// is occupied for the serialization time, so concurrent sends from the same
// node queue behind each other. Loopback (src == dst) is delivered with
// only the setup latency.
func (nw *Network) Send(src, dst NodeID, bytes int, deliver func()) {
	nw.Stats.Messages++
	nw.Stats.Bytes += uint64(bytes)
	if src == dst {
		nw.eng.Schedule(nw.cfg.SetupLatency+nw.chooseExtraLatency(), deliver)
		return
	}
	ser := nw.serialization(bytes)
	flight := nw.cfg.SetupLatency + time.Duration(nw.Hops(src, dst))*nw.cfg.HopLatency + nw.chooseExtraLatency()
	// The delivery runs on the destination's event lane: the wire crossing
	// is where simulated control transfers between nodes, so it is the one
	// place lane affinity must be re-tagged (everything the handler
	// schedules afterwards inherits the lane).
	lane := nw.eng.LaneFor(int(dst))
	nw.nics[src].Do(ser, func() {
		if nw.cfg.LinkContention {
			stall := nw.occupyRoute(src, dst, ser)
			if stall > 0 {
				nw.Stats.LinkStalls++
				nw.Stats.LinkStallDur += stall
			}
			nw.eng.ScheduleLane(lane, stall+flight, deliver)
			return
		}
		nw.eng.ScheduleLane(lane, flight, deliver)
	})
}

// hop is the pooled in-flight stage of a SendRun: it rides the sender NIC
// as a Runnable and, when serialization completes, schedules the message's
// wire flight to the final target. The pool is a plain slice — the engine
// is logically single-threaded, so no locking is needed.
type hop struct {
	nw     *Network
	flight time.Duration
	next   sim.Runnable
	lane   int // destination node's event lane
}

// Run implements sim.Runnable: serialization finished, enter the wire. The
// arrival is tagged with the destination's event lane (see Send).
func (h *hop) Run() {
	nw, flight, next, lane := h.nw, h.flight, h.next, h.lane
	h.next = nil
	nw.hopPool = append(nw.hopPool, h)
	nw.eng.ScheduleRunLane(lane, flight, next)
}

// SendRun transmits like Send but resumes a Runnable at the destination
// instead of calling a closure, keeping the whole path allocation-free.
// The LinkContention configuration (off in all calibrated runs) falls back
// to the closure path, which is the only place route occupancy is modelled.
func (nw *Network) SendRun(src, dst NodeID, bytes int, r sim.Runnable) {
	if nw.cfg.LinkContention {
		nw.Send(src, dst, bytes, r.Run)
		return
	}
	nw.Stats.Messages++
	nw.Stats.Bytes += uint64(bytes)
	if src == dst {
		nw.eng.ScheduleRun(nw.cfg.SetupLatency+nw.chooseExtraLatency(), r)
		return
	}
	ser := nw.serialization(bytes)
	flight := nw.cfg.SetupLatency + time.Duration(nw.Hops(src, dst))*nw.cfg.HopLatency + nw.chooseExtraLatency()
	var h *hop
	if n := len(nw.hopPool); n > 0 {
		h = nw.hopPool[n-1]
		nw.hopPool = nw.hopPool[:n-1]
	} else {
		h = &hop{nw: nw}
	}
	h.flight = flight
	h.next = r
	h.lane = nw.eng.LaneFor(int(dst))
	nw.nics[src].DoRun(ser, h)
}

// occupyRoute reserves every directed link on the XY route for the
// message's serialization time (a wormhole burst occupies the whole path
// at once). It returns how long the message must stall for the most
// loaded link to free up.
func (nw *Network) occupyRoute(src, dst NodeID, ser time.Duration) time.Duration {
	now := nw.eng.Now()
	avail := now
	route := nw.route(src, dst)
	for _, lk := range route {
		if b := nw.linkBusy[lk]; b > avail {
			avail = b
		}
	}
	for _, lk := range route {
		nw.linkBusy[lk] = avail + ser
	}
	return avail - now
}

// route lists the directed links of the XY path from src to dst.
func (nw *Network) route(src, dst NodeID) []linkKey {
	sx, sy := nw.Coord(src)
	dx, dy := nw.Coord(dst)
	var out []linkKey
	x, y := sx, sy
	for x != dx {
		if dx > x {
			out = append(out, linkKey{nw.nodeAt(x, y), 0})
			x++
		} else {
			out = append(out, linkKey{nw.nodeAt(x, y), 1})
			x--
		}
	}
	for y != dy {
		if dy > y {
			out = append(out, linkKey{nw.nodeAt(x, y), 2})
			y++
		} else {
			out = append(out, linkKey{nw.nodeAt(x, y), 3})
			y--
		}
	}
	return out
}

// nodeAt maps mesh coordinates back to a node id.
func (nw *Network) nodeAt(x, y int) NodeID {
	return NodeID(y*nw.cfg.Width + x)
}

// NIC exposes a node's outgoing NIC server for accounting in tests and
// experiments.
func (nw *Network) NIC(n NodeID) *sim.Server { return nw.nics[n] }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
