// Package sts models ASVM's dedicated SVM Transport Service: messages are
// a fixed 32-byte block of untyped data, optionally followed by one 8 KB
// page of contents. Receive buffers are preallocated (page contents are
// only ever sent on behalf of a request from their receiver), so the
// software path is a small fraction of NORMA-IPC's.
package sts

import (
	"fmt"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/sim"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// HeaderBytes is the fixed untyped message block (paper §3.1).
const HeaderBytes = 32

// Costs are the per-message software costs of the STS.
type Costs struct {
	// SendCPU is the sender-side cost (fill header, DMA start).
	SendCPU time.Duration
	// RecvCPU is the receiver-side cost (dispatch from a preallocated
	// buffer).
	RecvCPU time.Duration
	// PagePrep is the extra cost on each side when a page accompanies the
	// message (pinning/buffer handoff; contents are not copied).
	PagePrep time.Duration
}

// DefaultCosts returns values calibrated against the paper's ASVM
// latencies (DESIGN.md §6).
func DefaultCosts() Costs {
	return Costs{
		SendCPU:  50 * time.Microsecond,
		RecvCPU:  60 * time.Microsecond,
		PagePrep: 30 * time.Microsecond,
	}
}

// Transport implements xport.Transport with STS cost modelling.
type Transport struct {
	eng   *sim.Engine
	net   *mesh.Network
	nodes []*node.Node
	costs Costs

	handlers map[regKey]xport.Handler

	// Stats.
	Msgs     uint64
	PageMsgs uint64
	Bytes    uint64
	Nacks    uint64
}

type regKey struct {
	n     mesh.NodeID
	proto string
}

// New builds an STS transport over the mesh for the given nodes.
func New(e *sim.Engine, net *mesh.Network, nodes []*node.Node, costs Costs) *Transport {
	return &Transport{
		eng: e, net: net, nodes: nodes, costs: costs,
		handlers: make(map[regKey]xport.Handler),
	}
}

// Name implements xport.Transport.
func (t *Transport) Name() string { return "sts" }

// Register implements xport.Transport.
func (t *Transport) Register(n mesh.NodeID, proto string, h xport.Handler) {
	key := regKey{n, proto}
	if _, dup := t.handlers[key]; dup {
		panic(fmt.Sprintf("sts: duplicate registration %v/%s", n, proto))
	}
	t.handlers[key] = h
}

// Send implements xport.Transport. payloadBytes over 0 means a page rides
// along (accounting treats any nonzero payload as page-bearing).
func (t *Transport) Send(src, dst mesh.NodeID, proto string, payloadBytes int, m interface{}) {
	h, ok := t.handlers[regKey{dst, proto}]
	if !ok {
		t.nack(src, dst, proto, payloadBytes, m)
		return
	}
	t.Msgs++
	wire := HeaderBytes + payloadBytes
	t.Bytes += uint64(wire)
	sendCost := t.costs.SendCPU
	recvCost := t.costs.RecvCPU
	if payloadBytes > 0 {
		t.PageMsgs++
		sendCost += t.costs.PagePrep
		recvCost += t.costs.PagePrep
	}
	t.nodes[src].MsgProc.Do(sendCost, func() {
		t.net.Send(src, dst, wire, func() {
			t.nodes[dst].MsgProc.Do(recvCost, func() {
				h(src, m)
			})
		})
	})
}

// nack bounces a message addressed to an unregistered destination back to
// the sender's own handler as an xport.Nack: the attempt still crosses the
// wire (the destination's STS finds no mailbox for the channel and rejects
// with a header-only message). Panics only if the sender has no handler
// either — then the bounce has nowhere to go and it is a real protocol bug.
func (t *Transport) nack(src, dst mesh.NodeID, proto string, payloadBytes int, m interface{}) {
	back, ok := t.handlers[regKey{src, proto}]
	if !ok {
		panic(fmt.Sprintf("sts: no handler for %v/%s (and no %v/%s sender handler for the bounce)",
			dst, proto, src, proto))
	}
	t.Nacks++
	t.Msgs += 2
	wire := HeaderBytes + payloadBytes
	t.Bytes += uint64(wire + HeaderBytes)
	sendCost := t.costs.SendCPU
	recvCost := t.costs.RecvCPU
	if payloadBytes > 0 {
		t.PageMsgs++
		sendCost += t.costs.PagePrep
		recvCost += t.costs.PagePrep
	}
	t.nodes[src].MsgProc.Do(sendCost, func() {
		t.net.Send(src, dst, wire, func() {
			t.nodes[dst].MsgProc.Do(recvCost, func() {
				t.net.Send(dst, src, HeaderBytes, func() {
					t.nodes[src].MsgProc.Do(t.costs.RecvCPU, func() {
						back(dst, xport.Nack{Dst: dst, Proto: proto, Msg: m})
					})
				})
			})
		})
	})
}

// PageBytes is the payload size callers pass when a message carries one
// page.
const PageBytes = vm.PageSize

var _ xport.Transport = (*Transport)(nil)
