// Package sts models ASVM's dedicated SVM Transport Service: messages are
// a fixed 32-byte block of untyped data, optionally followed by one 8 KB
// page of contents. Receive buffers are preallocated (page contents are
// only ever sent on behalf of a request from their receiver), so the
// software path is a small fraction of NORMA-IPC's.
//
// The implementation mirrors that lightness: handlers live in dense
// per-node slices indexed by ProtoID (no string hashing), and a message in
// flight is a pooled delivery object stepped through its stages as a
// sim.Runnable, so the steady-state send/dispatch path allocates nothing.
package sts

import (
	"fmt"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/sim"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// HeaderBytes is the fixed untyped message block (paper §3.1).
const HeaderBytes = 32

// Costs are the per-message software costs of the STS.
type Costs struct {
	// SendCPU is the sender-side cost (fill header, DMA start).
	SendCPU time.Duration
	// RecvCPU is the receiver-side cost (dispatch from a preallocated
	// buffer).
	RecvCPU time.Duration
	// PagePrep is the extra cost on each side when a page accompanies the
	// message (pinning/buffer handoff; contents are not copied).
	PagePrep time.Duration
}

// DefaultCosts returns values calibrated against the paper's ASVM
// latencies (DESIGN.md §6).
func DefaultCosts() Costs {
	return Costs{
		SendCPU:  50 * time.Microsecond,
		RecvCPU:  60 * time.Microsecond,
		PagePrep: 30 * time.Microsecond,
	}
}

// Transport implements xport.Transport with STS cost modelling.
type Transport struct {
	eng   *sim.Engine
	net   *mesh.Network
	nodes []*node.Node
	costs Costs

	// handlers[node][proto] is the registered handler, nil when absent.
	// Inner slices grow on Register; ProtoIDs are small and dense, so the
	// table stays compact and Send is two indexed loads.
	handlers [][]xport.Handler

	// pool recycles in-flight delivery objects (engine is single-threaded).
	pool []*delivery

	// Stats.
	Msgs     uint64
	PageMsgs uint64
	Bytes    uint64
	Nacks    uint64
}

// New builds an STS transport over the mesh for the given nodes.
func New(e *sim.Engine, net *mesh.Network, nodes []*node.Node, costs Costs) *Transport {
	return &Transport{
		eng: e, net: net, nodes: nodes, costs: costs,
		handlers: make([][]xport.Handler, len(nodes)),
	}
}

// Name implements xport.Transport.
func (t *Transport) Name() string { return "sts" }

// Register implements xport.Transport.
func (t *Transport) Register(n mesh.NodeID, proto xport.ProtoID, h xport.Handler) {
	row := t.handlers[n]
	for int(proto) >= len(row) {
		row = append(row, nil)
	}
	if row[proto] != nil {
		panic(fmt.Sprintf("sts: duplicate registration %v/%s", n, proto))
	}
	row[proto] = h
	t.handlers[n] = row
}

// lookup returns the handler for (n, proto), nil when unregistered.
func (t *Transport) lookup(n mesh.NodeID, proto xport.ProtoID) xport.Handler {
	if row := t.handlers[n]; int(proto) < len(row) {
		return row[proto]
	}
	return nil
}

// delivery is one message in flight, stepped through its stages by the
// engine as a pooled sim.Runnable: sender message processor → wire →
// receiver message processor → handler. The nack stages model the bounce
// round trip for a destination with no handler.
type delivery struct {
	t        *Transport
	src, dst mesh.NodeID
	proto    xport.ProtoID
	h        xport.Handler
	m        interface{}
	wire     int
	recvCost time.Duration
	stage    uint8
}

const (
	stSent        uint8 = iota // sender MsgProc done; enter the wire
	stArrived                  // last byte at dst; receiver MsgProc
	stHandle                   // dispatch to the handler, recycle
	stNackSent                 // nack: sender MsgProc done; enter the wire
	stNackArrived              // nack: at dst; its STS rejects the channel
	stNackBounce               // nack: header-only reject crosses back
	stNackReturn               // nack: back at src; src MsgProc
	stNackHandle               // nack: deliver xport.Nack, recycle
)

// Run implements sim.Runnable.
func (d *delivery) Run() {
	t := d.t
	switch d.stage {
	case stSent:
		d.stage = stArrived
		t.net.SendRun(d.src, d.dst, d.wire, d)
	case stArrived:
		d.stage = stHandle
		t.nodes[d.dst].MsgProc.DoRun(d.recvCost, d)
	case stHandle:
		h, src, m := d.h, d.src, d.m
		t.put(d)
		h(src, m)
	case stNackSent:
		d.stage = stNackArrived
		t.net.SendRun(d.src, d.dst, d.wire, d)
	case stNackArrived:
		d.stage = stNackBounce
		t.nodes[d.dst].MsgProc.DoRun(d.recvCost, d)
	case stNackBounce:
		d.stage = stNackReturn
		t.net.SendRun(d.dst, d.src, HeaderBytes, d)
	case stNackReturn:
		d.stage = stNackHandle
		t.nodes[d.src].MsgProc.DoRun(t.costs.RecvCPU, d)
	case stNackHandle:
		h, dst, proto, m := d.h, d.dst, d.proto, d.m
		t.put(d)
		h(dst, xport.Nack{Dst: dst, Proto: proto, Msg: m})
	}
}

func (t *Transport) get() *delivery {
	if n := len(t.pool); n > 0 {
		d := t.pool[n-1]
		t.pool = t.pool[:n-1]
		return d
	}
	return &delivery{t: t}
}

// put recycles d. Callers copy out what they need first: the handler a
// delivery invokes may Send again and reuse d before the call returns.
func (t *Transport) put(d *delivery) {
	d.h = nil
	d.m = nil
	t.pool = append(t.pool, d)
}

// Send implements xport.Transport. payloadBytes over 0 means a page rides
// along (accounting treats any nonzero payload as page-bearing).
func (t *Transport) Send(src, dst mesh.NodeID, proto xport.ProtoID, payloadBytes int, m interface{}) {
	h := t.lookup(dst, proto)
	if h == nil {
		t.nack(src, dst, proto, payloadBytes, m)
		return
	}
	t.Msgs++
	wire := HeaderBytes + payloadBytes
	t.Bytes += uint64(wire)
	sendCost := t.costs.SendCPU
	recvCost := t.costs.RecvCPU
	if payloadBytes > 0 {
		t.PageMsgs++
		sendCost += t.costs.PagePrep
		recvCost += t.costs.PagePrep
	}
	// Choice point: the receiver's message processor may pick this message
	// up one dispatch quantum late, letting a concurrently arriving message
	// overtake it in handler order. Free (Choose short-circuits on the nil
	// chooser) in production runs.
	if k := t.eng.Choose(sim.ChoiceLatency, 2); k == 1 {
		recvCost += t.costs.RecvCPU
	}
	d := t.get()
	d.src, d.dst, d.proto = src, dst, proto
	d.h, d.m = h, m
	d.wire, d.recvCost = wire, recvCost
	d.stage = stSent
	t.nodes[src].MsgProc.DoRun(sendCost, d)
}

// nack bounces a message addressed to an unregistered destination back to
// the sender's own handler as an xport.Nack: the attempt still crosses the
// wire (the destination's STS finds no mailbox for the channel and rejects
// with a header-only message). Panics only if the sender has no handler
// either — then the bounce has nowhere to go and it is a real protocol bug.
func (t *Transport) nack(src, dst mesh.NodeID, proto xport.ProtoID, payloadBytes int, m interface{}) {
	back := t.lookup(src, proto)
	if back == nil {
		panic(fmt.Sprintf("sts: no handler for %v/%s (and no %v/%s sender handler for the bounce)",
			dst, proto, src, proto))
	}
	t.Nacks++
	t.Msgs += 2
	wire := HeaderBytes + payloadBytes
	t.Bytes += uint64(wire + HeaderBytes)
	sendCost := t.costs.SendCPU
	recvCost := t.costs.RecvCPU
	if payloadBytes > 0 {
		t.PageMsgs++
		sendCost += t.costs.PagePrep
		recvCost += t.costs.PagePrep
	}
	d := t.get()
	d.src, d.dst, d.proto = src, dst, proto
	d.h, d.m = back, m
	d.wire, d.recvCost = wire, recvCost
	d.stage = stNackSent
	t.nodes[src].MsgProc.DoRun(sendCost, d)
}

// PageBytes is the payload size callers pass when a message carries one
// page.
const PageBytes = vm.PageSize

var _ xport.Transport = (*Transport)(nil)
