package sts

import (
	"testing"

	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/sim"
	"asvm/internal/xport"
)

// TestMessagePathZeroAllocs guards the steady-state STS round trip at
// 0 allocs/op — the CI benchmark-regression leg runs this alongside the
// sim package's TestScheduleRunZeroAllocs, so an allocation creeping into
// either hot path fails the build rather than silently eroding the
// BENCH_*.json trajectory.
func TestMessagePathZeroAllocs(t *testing.T) {
	eng := sim.NewEngine()
	net := mesh.New(eng, 2, mesh.DefaultConfig(2))
	nodes := []*node.Node{node.New(eng, 0), node.New(eng, 1)}
	tr := New(eng, net, nodes, DefaultCosts())
	proto := xport.RegisterProto("bench")
	tr.Register(1, proto, func(src mesh.NodeID, m interface{}) {
		tr.Send(1, 0, proto, PageBytes, m)
	})
	tr.Register(0, proto, func(src mesh.NodeID, m interface{}) {})
	msg := struct{ pg int }{pg: 7}
	// Warm the delivery/hop pools first; the contract is steady state.
	for i := 0; i < 64; i++ {
		tr.Send(0, 1, proto, 0, msg)
		eng.Run()
	}
	allocs := testing.AllocsPerRun(2000, func() {
		tr.Send(0, 1, proto, 0, msg)
		eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("message path allocates %.1f allocs/op, want 0", allocs)
	}
}
