package sts

import (
	"testing"

	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/sim"
	"asvm/internal/xport"
)

// BenchmarkMessagePath measures one request/grant round trip through the
// STS: node 0 sends a header-only request, node 1 answers with a
// page-bearing grant, and both handlers bump the protocol counter — the
// steady-state message path every ASVM fault exercises.
func BenchmarkMessagePath(b *testing.B) {
	eng := sim.NewEngine()
	net := mesh.New(eng, 2, mesh.DefaultConfig(2))
	nodes := []*node.Node{node.New(eng, 0), node.New(eng, 1)}
	tr := New(eng, net, nodes, DefaultCosts())
	ctr := sim.NewCounters()

	proto := xport.RegisterProto("bench")
	var done int
	tr.Register(1, proto, func(src mesh.NodeID, m interface{}) {
		ctr.V[sim.CtrMsgs]++
		tr.Send(1, 0, proto, PageBytes, m)
	})
	tr.Register(0, proto, func(src mesh.NodeID, m interface{}) {
		ctr.V[sim.CtrMsgs]++
		done++
	})

	msg := struct{ pg int }{pg: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Send(0, 1, proto, 0, msg)
		eng.Run()
	}
	if done != b.N {
		b.Fatalf("round trips: got %d, want %d", done, b.N)
	}
}
