package sts

import (
	"testing"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/sim"
	"asvm/internal/xport"
)

var protoS = xport.RegisterProto("s")

func TestPagePrepChargedOnlyWithPayload(t *testing.T) {
	e := sim.NewEngine()
	net := mesh.New(e, 2, mesh.DefaultConfig(2))
	hw := []*node.Node{node.New(e, 0), node.New(e, 1)}
	costs := Costs{SendCPU: 10 * time.Microsecond, RecvCPU: 20 * time.Microsecond, PagePrep: 100 * time.Microsecond}
	tr := New(e, net, hw, costs)
	var small, big sim.Time
	tr.Register(1, protoS, func(mesh.NodeID, interface{}) { small = e.Now() })
	tr.Send(0, 1, protoS, 0, nil)
	e.Run()
	e2 := sim.NewEngine()
	net2 := mesh.New(e2, 2, mesh.DefaultConfig(2))
	hw2 := []*node.Node{node.New(e2, 0), node.New(e2, 1)}
	tr2 := New(e2, net2, hw2, costs)
	tr2.Register(1, protoS, func(mesh.NodeID, interface{}) { big = e2.Now() })
	tr2.Send(0, 1, protoS, PageBytes, nil)
	e2.Run()
	// The page message pays 2x PagePrep plus serialization of 8 KB.
	if big-small < 200*time.Microsecond {
		t.Fatalf("page message (%v) not dearer than control message (%v)", big, small)
	}
	if tr.PageMsgs != 0 || tr2.PageMsgs != 1 {
		t.Fatalf("page accounting wrong: %d/%d", tr.PageMsgs, tr2.PageMsgs)
	}
}

func TestHeaderIsFixed32Bytes(t *testing.T) {
	if HeaderBytes != 32 {
		t.Fatalf("STS header = %d, the paper specifies 32", HeaderBytes)
	}
}
