package vm

// PhysMem accounts for a node's physical page frames. The available memory
// acts as a cache for memory-object contents: when occupancy exceeds the
// high watermark, the kernel evicts least-recently-used pages until it is
// back under the low watermark — the Mach pageout daemon in miniature.
//
// Like Mach, allocation itself never blocks: a fault may briefly overshoot
// the capacity while evictions (which need protocol round trips) are in
// flight.
type PhysMem struct {
	// CapacityPages is the number of frames usable by the VM cache.
	CapacityPages int

	// ResidentPages counts frames currently holding pages.
	ResidentPages int

	// EvictingPages counts frames whose eviction protocol is in flight;
	// they still occupy memory but are already leaving, so watermark
	// decisions treat them as gone (otherwise one pageout scan would evict
	// the entire cache before any asynchronous removal lands).
	EvictingPages int

	// Evictions counts pages whose eviction has been started.
	Evictions uint64

	lowWater int
}

// NewPhysMem returns an accounting structure for capacityPages frames.
// capacityPages <= 0 means unlimited (microbenchmarks that must not page).
func NewPhysMem(capacityPages int) *PhysMem {
	pm := &PhysMem{CapacityPages: capacityPages}
	if capacityPages > 0 {
		pm.lowWater = capacityPages - capacityPages/16
		if pm.lowWater < 1 {
			pm.lowWater = 1
		}
	}
	return pm
}

// Unlimited reports whether eviction is disabled.
func (pm *PhysMem) Unlimited() bool { return pm.CapacityPages <= 0 }

// NeedsEviction reports whether occupancy (net of in-flight evictions) is
// above the high watermark.
func (pm *PhysMem) NeedsEviction() bool {
	return !pm.Unlimited() && pm.ResidentPages-pm.EvictingPages > pm.CapacityPages
}

// AboveLowWater reports whether the pageout loop should keep going.
func (pm *PhysMem) AboveLowWater() bool {
	return !pm.Unlimited() && pm.ResidentPages-pm.EvictingPages > pm.lowWater
}

// FreePages returns the number of unused frames (0 when over capacity,
// a large number when unlimited).
func (pm *PhysMem) FreePages() int {
	if pm.Unlimited() {
		return 1 << 30
	}
	n := pm.CapacityPages - pm.ResidentPages
	if n < 0 {
		return 0
	}
	return n
}
