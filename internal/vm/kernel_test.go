package vm

import (
	"errors"
	"testing"
	"time"

	"asvm/internal/sim"
)

// testKernel builds a kernel with unlimited memory and data tracking.
func testKernel(e *sim.Engine) *Kernel {
	return NewKernel(e, 0, DefaultCosts(), NewPhysMem(0), true)
}

// runTask spawns a proc, runs fn inside it, and drives the engine to
// completion, failing the test on error.
func runTask(t *testing.T, e *sim.Engine, fn func(p *sim.Proc) error) {
	t.Helper()
	var err error
	e.Spawn("test", func(p *sim.Proc) { err = fn(p) })
	e.Run()
	if err != nil {
		t.Fatal(err)
	}
}

func TestZeroFillFault(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	task := k.NewTask("t")
	obj := k.NewAnonymous(16)
	if _, err := task.Map.MapObject(0x10000, obj, 0, 16, ProtWrite, InheritCopy); err != nil {
		t.Fatal(err)
	}
	runTask(t, e, func(p *sim.Proc) error {
		pg, err := task.Touch(p, 0x10000, ProtRead)
		if err != nil {
			return err
		}
		if pg.Dirty {
			t.Error("read fault produced dirty page")
		}
		for _, b := range pg.Data {
			if b != 0 {
				t.Error("zero-filled page not zero")
				break
			}
		}
		return nil
	})
	if k.Ctr.Get("zero_fills") != 1 {
		t.Fatalf("zero_fills = %d", k.Ctr.Get("zero_fills"))
	}
	if k.Mem.ResidentPages != 1 {
		t.Fatalf("resident = %d", k.Mem.ResidentPages)
	}
}

func TestWriteFaultSetsDirty(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	task := k.NewTask("t")
	obj := k.NewAnonymous(4)
	task.Map.MapObject(0, obj, 0, 4, ProtWrite, InheritCopy)
	runTask(t, e, func(p *sim.Proc) error {
		pg, err := task.Touch(p, PageSize, ProtWrite)
		if err != nil {
			return err
		}
		if !pg.Dirty {
			t.Error("write fault left page clean")
		}
		return nil
	})
}

func TestFastPathAfterFault(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	task := k.NewTask("t")
	obj := k.NewAnonymous(4)
	task.Map.MapObject(0, obj, 0, 4, ProtWrite, InheritCopy)
	runTask(t, e, func(p *sim.Proc) error {
		if _, err := task.Touch(p, 0, ProtWrite); err != nil {
			return err
		}
		before := p.Now()
		faults := k.Ctr.Get("faults")
		if _, err := task.Touch(p, 0, ProtRead); err != nil {
			return err
		}
		if _, err := task.Touch(p, 0, ProtWrite); err != nil {
			return err
		}
		if p.Now() != before {
			t.Error("fast path consumed simulated time")
		}
		if k.Ctr.Get("faults") != faults {
			t.Error("fast path took a fault")
		}
		return nil
	})
}

func TestReadWriteU64Roundtrip(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	task := k.NewTask("t")
	obj := k.NewAnonymous(4)
	task.Map.MapObject(0, obj, 0, 4, ProtWrite, InheritCopy)
	runTask(t, e, func(p *sim.Proc) error {
		if err := task.WriteU64(p, 0x100, 0xDEADBEEFCAFE); err != nil {
			return err
		}
		v, err := task.ReadU64(p, 0x100)
		if err != nil {
			return err
		}
		if v != 0xDEADBEEFCAFE {
			t.Errorf("read %#x", v)
		}
		return nil
	})
}

func TestFaultUnmappedAddress(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	task := k.NewTask("t")
	var ferr error
	e.Spawn("t", func(p *sim.Proc) {
		_, ferr = task.Touch(p, 0x999000, ProtRead)
	})
	e.Run()
	if ferr == nil {
		t.Fatal("fault on unmapped address succeeded")
	}
}

func TestFaultProtectionViolation(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	task := k.NewTask("t")
	obj := k.NewAnonymous(4)
	task.Map.MapObject(0, obj, 0, 4, ProtRead, InheritCopy)
	var ferr error
	e.Spawn("t", func(p *sim.Proc) {
		_, ferr = task.Touch(p, 0, ProtWrite)
	})
	e.Run()
	if ferr == nil {
		t.Fatal("write through read-only mapping succeeded")
	}
}

// fakeMgr is a scriptable MemoryManager for kernel tests.
type fakeMgr struct {
	k        *Kernel
	delay    time.Duration
	lock     Prot
	requests []PageIdx
	unlocks  []PageIdx
	returns  []PageIdx
	dirties  []bool
	// supply controls DataRequest auto-response: "data", "unavailable",
	// "none" (manual).
	supply string
	fill   byte
}

func (f *fakeMgr) DataRequest(o *Object, idx PageIdx, desired Prot) {
	f.requests = append(f.requests, idx)
	switch f.supply {
	case "data":
		data := make([]byte, PageSize)
		for i := range data {
			data[i] = f.fill
		}
		lock := f.lock
		if lock == ProtNone {
			lock = desired
		}
		f.k.Eng.Schedule(f.delay, func() { f.k.DataSupply(o, idx, data, lock, false) })
	case "unavailable":
		f.k.Eng.Schedule(f.delay, func() { f.k.DataUnavailable(o, idx, ProtWrite) })
	}
}

func (f *fakeMgr) DataUnlock(o *Object, idx PageIdx, desired Prot) {
	f.unlocks = append(f.unlocks, idx)
	f.k.Eng.Schedule(f.delay, func() { f.k.LockGrant(o, idx, desired) })
}

func (f *fakeMgr) DataReturn(o *Object, idx PageIdx, data []byte, dirty, kept bool) {
	f.returns = append(f.returns, idx)
	f.dirties = append(f.dirties, dirty)
	if !kept {
		f.k.RemovePage(o, idx)
	}
}

func (f *fakeMgr) Terminate(o *Object) {}

func TestManagedFaultDataSupply(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	mgr := &fakeMgr{k: k, delay: time.Millisecond, supply: "data", fill: 0xAB}
	obj := k.NewObject(ObjID{0, 100}, 8, mgr, CopyNone)
	task := k.NewTask("t")
	task.Map.MapObject(0, obj, 0, 8, ProtWrite, InheritShare)
	runTask(t, e, func(p *sim.Proc) error {
		pg, err := task.Touch(p, 0, ProtRead)
		if err != nil {
			return err
		}
		if pg.Data[0] != 0xAB {
			t.Errorf("supplied data lost: %#x", pg.Data[0])
		}
		return nil
	})
	if len(mgr.requests) != 1 {
		t.Fatalf("requests = %v", mgr.requests)
	}
}

func TestManagedFaultUnavailableZeroFills(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	mgr := &fakeMgr{k: k, supply: "unavailable"}
	obj := k.NewObject(ObjID{0, 101}, 8, mgr, CopyNone)
	task := k.NewTask("t")
	task.Map.MapObject(0, obj, 0, 8, ProtWrite, InheritShare)
	runTask(t, e, func(p *sim.Proc) error {
		pg, err := task.Touch(p, 0, ProtWrite)
		if err != nil {
			return err
		}
		if pg.Data[0] != 0 {
			t.Error("unavailable page not zero-filled")
		}
		return nil
	})
	if k.Ctr.Get("zero_fills") != 1 {
		t.Fatalf("zero_fills = %d", k.Ctr.Get("zero_fills"))
	}
}

func TestConcurrentFaultsCoalesce(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	mgr := &fakeMgr{k: k, delay: 10 * time.Millisecond, supply: "data"}
	obj := k.NewObject(ObjID{0, 102}, 8, mgr, CopyNone)
	done := 0
	for i := 0; i < 5; i++ {
		task := k.NewTask("t")
		task.Map.MapObject(0, obj, 0, 8, ProtRead, InheritShare)
		e.Spawn("t", func(p *sim.Proc) {
			if _, err := task.Touch(p, 0, ProtRead); err == nil {
				done++
			}
		})
	}
	e.Run()
	if done != 5 {
		t.Fatalf("done = %d", done)
	}
	if len(mgr.requests) != 1 {
		t.Fatalf("coalescing failed: %d data requests", len(mgr.requests))
	}
}

func TestLockUpgradeViaDataUnlock(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	mgr := &fakeMgr{k: k, delay: time.Millisecond, supply: "data", lock: ProtRead}
	obj := k.NewObject(ObjID{0, 103}, 8, mgr, CopyNone)
	task := k.NewTask("t")
	task.Map.MapObject(0, obj, 0, 8, ProtWrite, InheritShare)
	runTask(t, e, func(p *sim.Proc) error {
		// First fault gets the page read-locked.
		if _, err := task.Touch(p, 0, ProtRead); err != nil {
			return err
		}
		// Write must go through DataUnlock.
		pg, err := task.Touch(p, 0, ProtWrite)
		if err != nil {
			return err
		}
		if pg.Lock != ProtWrite {
			t.Errorf("lock = %v after unlock", pg.Lock)
		}
		return nil
	})
	if len(mgr.unlocks) != 1 {
		t.Fatalf("unlocks = %v", mgr.unlocks)
	}
}

func TestLockRequestFlushReturnsDirtyData(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	mgr := &fakeMgr{k: k, supply: "data", lock: ProtWrite, fill: 1}
	obj := k.NewObject(ObjID{0, 104}, 8, mgr, CopyNone)
	task := k.NewTask("t")
	task.Map.MapObject(0, obj, 0, 8, ProtWrite, InheritShare)
	runTask(t, e, func(p *sim.Proc) error {
		if err := task.WriteU64(p, 0, 42); err != nil {
			return err
		}
		present := false
		k.LockRequest(obj, 0, ProtNone, false, func(ok bool) { present = ok })
		if !present {
			t.Error("flush reported page absent")
		}
		if obj.Resident(0) {
			t.Error("page still resident after flush")
		}
		return nil
	})
	if len(mgr.returns) != 1 || !mgr.dirties[0] {
		t.Fatalf("dirty flush did not DataReturn: %v %v", mgr.returns, mgr.dirties)
	}
}

func TestLockRequestDowngradeCleansDirty(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	mgr := &fakeMgr{k: k, supply: "data", lock: ProtWrite}
	obj := k.NewObject(ObjID{0, 105}, 8, mgr, CopyNone)
	task := k.NewTask("t")
	task.Map.MapObject(0, obj, 0, 8, ProtWrite, InheritShare)
	runTask(t, e, func(p *sim.Proc) error {
		if err := task.WriteU64(p, 0, 42); err != nil {
			return err
		}
		k.LockRequest(obj, 0, ProtRead, false, nil)
		pg := obj.Lookup(0)
		if pg == nil || pg.Lock != ProtRead {
			t.Error("downgrade failed")
		}
		if pg.Dirty {
			t.Error("downgrade left page dirty")
		}
		return nil
	})
	if len(mgr.returns) != 1 {
		t.Fatalf("downgrade did not clean through DataReturn")
	}
}

func TestLockRequestAbsentPage(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	obj := k.NewAnonymous(8)
	called := false
	k.LockRequest(obj, 3, ProtNone, true, func(present bool) {
		called = true
		if present {
			t.Error("absent page reported present")
		}
	})
	if !called {
		t.Fatal("done callback not invoked")
	}
}

func TestPullRequestOutcomes(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	mgr := &fakeMgr{k: k}
	bottom := k.NewObject(ObjID{0, 110}, 8, mgr, CopyNone)
	mid := k.NewAnonymous(8)
	mid.Shadow = bottom
	top := k.NewAnonymous(8)
	top.Shadow = mid

	// Case: data found in an intermediate anonymous object.
	data := make([]byte, PageSize)
	data[0] = 7
	k.InstallPage(mid, 2, data, ProtWrite)
	k.PullRequest(top, 2, func(res PullResult, d []byte, sh *Object) {
		if res != PullData || d[0] != 7 {
			t.Errorf("pull = %v", res)
		}
	})

	// Case: managed shadow reached.
	k.PullRequest(top, 3, func(res PullResult, d []byte, sh *Object) {
		if res != PullAskManager || sh != bottom {
			t.Errorf("pull = %v sh=%v", res, sh)
		}
	})

	// Case: zero fill (chain with no manager at bottom).
	lone := k.NewAnonymous(8)
	top2 := k.NewAnonymous(8)
	top2.Shadow = lone
	k.PullRequest(top2, 0, func(res PullResult, d []byte, sh *Object) {
		if res != PullZeroFill {
			t.Errorf("pull = %v", res)
		}
	})
}

func TestDataSupplyOnResidentPageUpgradesLock(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	mgr := &fakeMgr{k: k}
	obj := k.NewObject(ObjID{0, 111}, 8, mgr, CopyNone)
	k.InstallPage(obj, 0, nil, ProtRead)
	k.DataSupply(obj, 0, nil, ProtWrite, false)
	if pg := obj.Lookup(0); pg.Lock != ProtWrite {
		t.Fatalf("lock = %v", pg.Lock)
	}
	if k.Mem.ResidentPages != 1 {
		t.Fatalf("double-counted frame: %d", k.Mem.ResidentPages)
	}
}

func TestDoubleInstallPanics(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	obj := k.NewAnonymous(8)
	k.InstallPage(obj, 0, nil, ProtRead)
	defer func() {
		if recover() == nil {
			t.Fatal("double install did not panic")
		}
	}()
	k.InstallPage(obj, 0, nil, ProtRead)
}

func TestDuplicateObjectIDPanics(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	k.NewObject(ObjID{0, 5}, 8, nil, CopyNone)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate object ID did not panic")
		}
	}()
	k.NewObject(ObjID{0, 5}, 8, nil, CopyNone)
}

// livelockMgr completes every data request without ever installing a page:
// the fault retry loop can never converge.
type livelockMgr struct{ k *Kernel }

func (f *livelockMgr) DataRequest(o *Object, idx PageIdx, desired Prot) {
	f.k.Eng.Schedule(0, func() { f.k.LockGrant(o, idx, desired) })
}
func (f *livelockMgr) DataUnlock(o *Object, idx PageIdx, desired Prot)            {}
func (f *livelockMgr) DataReturn(o *Object, idx PageIdx, d []byte, dr, kept bool) {}
func (f *livelockMgr) Terminate(o *Object)                                        {}

func TestFaultRetryExhaustedError(t *testing.T) {
	// A manager that acknowledges requests but never supplies the page must
	// surface the typed livelock error with the spinning access identified,
	// both through a task mapping and through a direct object fault.
	e := sim.NewEngine()
	k := testKernel(e)
	mgr := &livelockMgr{k: k}
	obj := k.NewObject(ObjID{Node: 0, Seq: 321}, 8, mgr, CopyNone)
	task := k.NewTask("t")
	if _, err := task.Map.MapObject(0, obj, 0, 8, ProtWrite, InheritShare); err != nil {
		t.Fatal(err)
	}
	var mapErr, objErr error
	e.Spawn("t", func(p *sim.Proc) {
		_, mapErr = task.Touch(p, 3*PageSize, ProtRead)
		_, objErr = k.FaultObject(p, obj, 5, ProtWrite)
	})
	e.Run()
	for name, err := range map[string]error{"map": mapErr, "object": objErr} {
		var ex *ErrFaultRetryExhausted
		if !errors.As(err, &ex) {
			t.Fatalf("%s fault: got %v, want ErrFaultRetryExhausted", name, err)
		}
		if ex.Node != 0 || ex.Obj != obj.ID || ex.Retries != maxFaultRetries {
			t.Errorf("%s fault: bad context %+v", name, ex)
		}
	}
	var ex *ErrFaultRetryExhausted
	errors.As(mapErr, &ex)
	if ex.Page != 3 {
		t.Errorf("map fault page = %d, want 3", ex.Page)
	}
	errors.As(objErr, &ex)
	if ex.Page != 5 {
		t.Errorf("object fault page = %d, want 5", ex.Page)
	}
}
