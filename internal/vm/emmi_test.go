package vm

// Tests for the paper's EMMI extensions (§3.7.1): the lock_request and
// data_supply "mode" arguments, the lock_completed "result", and
// pull_request/pull_completed — exercised directly against the kernel.

import (
	"testing"

	"asvm/internal/sim"
)

// copyPair builds src -> copy asymmetric objects with one resident source
// page containing marker.
func copyPair(t *testing.T, k *Kernel, marker byte) (src, cp *Object) {
	t.Helper()
	src = k.NewAnonymous(8)
	src.Strategy = CopyAsymmetric
	data := make([]byte, PageSize)
	data[0] = marker
	pg := k.InstallPage(src, 0, data, ProtWrite)
	pg.Dirty = true
	cp = k.CopyAsymmetric(src)
	return src, cp
}

func TestLockRequestPushMode(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	src, cp := copyPair(t, k, 0x3C)
	if !src.NeedsPush(0) {
		t.Fatal("page should need a push after the copy")
	}
	pushed := false
	k.LockRequest(src, 0, ProtRead, true, func(present bool) {
		pushed = present
	})
	if !pushed {
		t.Fatal("lock_completed reported absent for a resident page")
	}
	if !cp.Resident(0) {
		t.Fatal("push mode did not insert the page into the copy")
	}
	if cp.Lookup(0).Data[0] != 0x3C {
		t.Fatal("pushed contents wrong")
	}
	if src.NeedsPush(0) {
		t.Fatal("page version not stamped after push")
	}
	if src.Lookup(0).Lock != ProtRead {
		t.Fatal("lock not applied after push")
	}
}

func TestLockRequestPushModeAbsentPage(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	src, cp := copyPair(t, k, 0)
	// Page 3 is not resident: the reply must say so (the paper's extended
	// lock_completed result), and nothing lands in the copy.
	var present bool
	k.LockRequest(src, 3, ProtRead, true, func(ok bool) { present = ok })
	if present {
		t.Fatal("absent page reported present")
	}
	if cp.Resident(3) {
		t.Fatal("push happened for an absent page")
	}
}

func TestDataSupplyPushMode(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	src, cp := copyPair(t, k, 0)
	// The page owner sent us contents to push down the copy chain
	// (data_supply mode argument).
	data := make([]byte, PageSize)
	data[0] = 0x77
	k.DataSupply(src, 5, data, ProtRead, true)
	if !cp.Resident(5) {
		t.Fatal("push-mode supply did not reach the copy")
	}
	if cp.Lookup(5).Data[0] != 0x77 {
		t.Fatal("pushed supply contents wrong")
	}
	if src.Resident(5) {
		t.Fatal("push-mode supply leaked into the source object")
	}
	if src.NeedsPush(5) {
		t.Fatal("push-mode supply did not stamp the version")
	}
}

func TestDataSupplyPushModeAlreadyPresent(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	src, cp := copyPair(t, k, 0)
	old := make([]byte, PageSize)
	old[0] = 1
	k.InstallPage(cp, 0, old, ProtWrite)
	newer := make([]byte, PageSize)
	newer[0] = 2
	k.DataSupply(src, 0, newer, ProtRead, true)
	if cp.Lookup(0).Data[0] != 1 {
		t.Fatal("push overwrote an existing copy page")
	}
}

func TestLockGrantOnAbsentPage(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	o := k.NewAnonymous(4)
	// Must not crash, and must complete any pending wait.
	k.LockGrant(o, 2, ProtWrite)
}

func TestDataUnavailableOnResidentPage(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	o := k.NewAnonymous(4)
	k.InstallPage(o, 0, nil, ProtRead)
	k.DataUnavailable(o, 0, ProtWrite)
	if k.Mem.ResidentPages != 1 {
		t.Fatalf("resident = %d after redundant unavailable", k.Mem.ResidentPages)
	}
}

func TestCancelEviction(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	o := k.NewAnonymous(4)
	pg := k.InstallPage(o, 0, nil, ProtWrite)
	pg.Dirty = true
	pg.Evicting = true
	k.Mem.EvictingPages++
	k.CancelEviction(o, 0)
	if pg.Evicting {
		t.Fatal("eviction not cancelled")
	}
	if k.Mem.EvictingPages != 0 {
		t.Fatalf("EvictingPages = %d", k.Mem.EvictingPages)
	}
	// Cancelling a non-evicting page is a no-op.
	k.CancelEviction(o, 0)
	k.CancelEviction(o, 3)
}

func TestCancelEvictionWakesWaiters(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	task := k.NewTask("t")
	o := k.NewAnonymous(4)
	task.Map.MapObject(0, o, 0, 4, ProtWrite, InheritCopy)
	woke := false
	runTask(t, e, func(p *sim.Proc) error {
		if err := task.WriteU64(p, 0, 9); err != nil {
			return err
		}
		pg := o.Lookup(0)
		pg.Evicting = true
		k.Mem.EvictingPages++
		e.Schedule(5e6, func() { k.CancelEviction(o, 0) })
		v, err := task.ReadU64(p, 0) // must wait, then see the page again
		if err != nil {
			return err
		}
		if v != 9 {
			t.Errorf("read %d", v)
		}
		woke = true
		return nil
	})
	if !woke {
		t.Fatal("reader never woke after cancelled eviction")
	}
}

func TestPullRequestThroughPagedOutShadow(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	bottom := k.NewAnonymous(8)
	bottom.PagedOut[2] = true
	top := k.NewAnonymous(8)
	top.Shadow = bottom
	k.PullRequest(top, 2, func(res PullResult, d []byte, sh *Object) {
		if res != PullAskManager || sh != bottom {
			t.Errorf("pull through paged-out shadow = %v", res)
		}
	})
}

func TestHasPending(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	mgr := &fakeMgr{k: k} // manual supply
	o := k.NewObject(ObjID{0, 300}, 4, mgr, CopyNone)
	task := k.NewTask("t")
	task.Map.MapObject(0, o, 0, 4, ProtRead, InheritShare)
	e.Spawn("t", func(p *sim.Proc) {
		task.Touch(p, 0, ProtRead)
	})
	e.Run()
	if !k.HasPending(o, 0) {
		t.Fatal("no pending request recorded")
	}
	k.DataSupply(o, 0, nil, ProtRead, false)
	e.Run()
	if k.HasPending(o, 0) {
		t.Fatal("pending not cleared by supply")
	}
}
