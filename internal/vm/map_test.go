package vm

import (
	"testing"

	"asvm/internal/sim"
)

func TestMapObjectAndLookup(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	m := k.NewMap()
	o := k.NewAnonymous(16)
	entry, err := m.MapObject(0x40000, o, 0, 16, ProtWrite, InheritCopy)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Pages() != 16 {
		t.Fatalf("Pages = %d", entry.Pages())
	}
	if got := m.Lookup(0x40000); got != entry {
		t.Fatal("Lookup start failed")
	}
	if got := m.Lookup(0x40000 + 16*PageSize - 1); got != entry {
		t.Fatal("Lookup last byte failed")
	}
	if got := m.Lookup(0x40000 + 16*PageSize); got != nil {
		t.Fatal("Lookup past end succeeded")
	}
	if got := m.Lookup(0x3FFFF); got != nil {
		t.Fatal("Lookup before start succeeded")
	}
}

func TestMapObjectRejectsOverlap(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	m := k.NewMap()
	o := k.NewAnonymous(16)
	if _, err := m.MapObject(0, o, 0, 8, ProtWrite, InheritCopy); err != nil {
		t.Fatal(err)
	}
	if _, err := m.MapObject(4*PageSize, o, 0, 8, ProtWrite, InheritCopy); err == nil {
		t.Fatal("overlap accepted")
	}
	// Adjacent is fine.
	if _, err := m.MapObject(8*PageSize, o, 8, 8, ProtWrite, InheritCopy); err != nil {
		t.Fatal(err)
	}
}

func TestMapObjectRejectsUnaligned(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	m := k.NewMap()
	o := k.NewAnonymous(4)
	if _, err := m.MapObject(100, o, 0, 4, ProtWrite, InheritCopy); err == nil {
		t.Fatal("unaligned mapping accepted")
	}
	if _, err := m.MapObject(0, o, 0, 0, ProtWrite, InheritCopy); err == nil {
		t.Fatal("empty mapping accepted")
	}
}

func TestUnmap(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	m := k.NewMap()
	o := k.NewAnonymous(4)
	m.MapObject(0, o, 0, 4, ProtWrite, InheritCopy)
	if o.MapRefs != 1 {
		t.Fatalf("MapRefs = %d", o.MapRefs)
	}
	if !m.Unmap(PageSize) {
		t.Fatal("Unmap missed")
	}
	if o.MapRefs != 0 {
		t.Fatalf("MapRefs after unmap = %d", o.MapRefs)
	}
	if m.Unmap(0) {
		t.Fatal("double unmap succeeded")
	}
}

func TestPageIndexWithOffset(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	m := k.NewMap()
	o := k.NewAnonymous(32)
	entry, _ := m.MapObject(0x100000, o, 10, 4, ProtWrite, InheritCopy)
	if idx := entry.pageIndex(0x100000); idx != 10 {
		t.Fatalf("pageIndex(start) = %d, want 10", idx)
	}
	if idx := entry.pageIndex(0x100000 + 3*PageSize + 5); idx != 13 {
		t.Fatalf("pageIndex = %d, want 13", idx)
	}
}

func TestProtOrdering(t *testing.T) {
	if !ProtWrite.Allows(ProtRead) || !ProtWrite.Allows(ProtWrite) {
		t.Fatal("write should allow read and write")
	}
	if ProtRead.Allows(ProtWrite) {
		t.Fatal("read should not allow write")
	}
	if !ProtRead.Allows(ProtNone) || !ProtNone.Allows(ProtNone) {
		t.Fatal("anything allows none")
	}
	if ProtNone.Allows(ProtRead) {
		t.Fatal("none should not allow read")
	}
}

func TestPageOf(t *testing.T) {
	cases := []struct {
		off  int64
		want PageIdx
	}{{0, 0}, {1, 0}, {PageSize - 1, 0}, {PageSize, 1}, {10 * PageSize, 10}}
	for _, c := range cases {
		if got := PageOf(c.off); got != c.want {
			t.Errorf("PageOf(%d) = %d, want %d", c.off, got, c.want)
		}
	}
}

func TestChainDepth(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	a := k.NewAnonymous(4)
	b := k.NewAnonymous(4)
	c := k.NewAnonymous(4)
	b.Shadow = a
	c.Shadow = b
	if d := c.ChainDepth(); d != 2 {
		t.Fatalf("ChainDepth = %d", d)
	}
	if d := a.ChainDepth(); d != 0 {
		t.Fatalf("ChainDepth = %d", d)
	}
}

func TestDestroyObjectFreesFrames(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	o := k.NewAnonymous(8)
	k.InstallPage(o, 0, nil, ProtWrite)
	k.InstallPage(o, 1, nil, ProtWrite)
	if k.Mem.ResidentPages != 2 {
		t.Fatalf("resident = %d", k.Mem.ResidentPages)
	}
	k.DestroyObject(o)
	if k.Mem.ResidentPages != 0 {
		t.Fatalf("resident after destroy = %d", k.Mem.ResidentPages)
	}
	if k.Object(o.ID) != nil {
		t.Fatal("object still registered")
	}
	if !o.Terminated {
		t.Fatal("object not marked terminated")
	}
}

func TestPhysMemWatermarks(t *testing.T) {
	pm := NewPhysMem(100)
	pm.ResidentPages = 100
	if pm.NeedsEviction() {
		t.Fatal("at capacity should not trigger eviction")
	}
	pm.ResidentPages = 101
	if !pm.NeedsEviction() {
		t.Fatal("over capacity should trigger eviction")
	}
	if !pm.AboveLowWater() {
		t.Fatal("over capacity is above low water")
	}
	pm.ResidentPages = 90
	if pm.AboveLowWater() {
		t.Fatal("90/100 should be under the low watermark (93)")
	}
	if pm.FreePages() != 10 {
		t.Fatalf("FreePages = %d", pm.FreePages())
	}
}

func TestPhysMemUnlimited(t *testing.T) {
	pm := NewPhysMem(0)
	pm.ResidentPages = 1 << 20
	if pm.NeedsEviction() || pm.AboveLowWater() {
		t.Fatal("unlimited memory should never evict")
	}
	if pm.FreePages() <= 0 {
		t.Fatal("unlimited memory reports no free pages")
	}
}
