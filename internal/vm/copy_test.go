package vm

import (
	"testing"
	"testing/quick"

	"asvm/internal/sim"
)

func TestSymmetricForkCOWChildWrite(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	parent := k.NewTask("parent")
	obj := k.NewAnonymous(8)
	parent.Map.MapObject(0, obj, 0, 8, ProtWrite, InheritCopy)
	runTask(t, e, func(p *sim.Proc) error {
		if err := parent.WriteU64(p, 0, 111); err != nil {
			return err
		}
		child := parent.Fork("child")
		// Child read sees parent data without copying.
		v, err := child.ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 111 {
			t.Errorf("child read %d, want 111", v)
		}
		if k.Ctr.Get("cow_copies") != 0 {
			t.Error("read fault copied a page")
		}
		// Child write interposes a shadow and copies.
		if err := child.WriteU64(p, 0, 222); err != nil {
			return err
		}
		pv, _ := parent.ReadU64(p, 0)
		cv, _ := child.ReadU64(p, 0)
		if pv != 111 || cv != 222 {
			t.Errorf("parent=%d child=%d, want 111/222", pv, cv)
		}
		if k.Ctr.Get("shadow_interpose") != 1 {
			t.Errorf("shadow_interpose = %d", k.Ctr.Get("shadow_interpose"))
		}
		return nil
	})
}

func TestSymmetricForkCOWParentWrite(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	parent := k.NewTask("parent")
	obj := k.NewAnonymous(8)
	parent.Map.MapObject(0, obj, 0, 8, ProtWrite, InheritCopy)
	runTask(t, e, func(p *sim.Proc) error {
		if err := parent.WriteU64(p, 0, 111); err != nil {
			return err
		}
		child := parent.Fork("child")
		// Parent write after fork must not be visible to the child: the
		// parent's entry is interposed with a shadow; the original object
		// keeps the frozen data.
		if err := parent.WriteU64(p, 0, 999); err != nil {
			return err
		}
		cv, err := child.ReadU64(p, 0)
		if err != nil {
			return err
		}
		if cv != 111 {
			t.Errorf("child read %d after parent write, want 111", cv)
		}
		pv, _ := parent.ReadU64(p, 0)
		if pv != 999 {
			t.Errorf("parent read %d, want 999", pv)
		}
		return nil
	})
}

func TestForkChainIsolation(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	t0 := k.NewTask("t0")
	obj := k.NewAnonymous(8)
	t0.Map.MapObject(0, obj, 0, 8, ProtWrite, InheritCopy)
	runTask(t, e, func(p *sim.Proc) error {
		if err := t0.WriteU64(p, 8, 1); err != nil {
			return err
		}
		t1 := t0.Fork("t1")
		if err := t1.WriteU64(p, 8, 2); err != nil {
			return err
		}
		t2 := t1.Fork("t2")
		if err := t2.WriteU64(p, 8, 3); err != nil {
			return err
		}
		v0, _ := t0.ReadU64(p, 8)
		v1, _ := t1.ReadU64(p, 8)
		v2, _ := t2.ReadU64(p, 8)
		if v0 != 1 || v1 != 2 || v2 != 3 {
			t.Errorf("chain reads %d/%d/%d, want 1/2/3", v0, v1, v2)
		}
		return nil
	})
}

func TestInheritShare(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	parent := k.NewTask("parent")
	obj := k.NewAnonymous(8)
	parent.Map.MapObject(0, obj, 0, 8, ProtWrite, InheritShare)
	runTask(t, e, func(p *sim.Proc) error {
		child := parent.Fork("child")
		if err := parent.WriteU64(p, 0, 7); err != nil {
			return err
		}
		v, err := child.ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 7 {
			t.Errorf("shared read %d, want 7", v)
		}
		if err := child.WriteU64(p, 0, 8); err != nil {
			return err
		}
		v, _ = parent.ReadU64(p, 0)
		if v != 8 {
			t.Errorf("share lost write: %d", v)
		}
		return nil
	})
}

func TestInheritNone(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	parent := k.NewTask("parent")
	obj := k.NewAnonymous(8)
	parent.Map.MapObject(0, obj, 0, 8, ProtWrite, InheritNone)
	child := parent.Fork("child")
	if child.Map.Lookup(0) != nil {
		t.Fatal("InheritNone entry appeared in child")
	}
}

func TestAsymmetricCopyPushOnWrite(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	src := k.NewAnonymous(8)
	src.Strategy = CopyAsymmetric
	task := k.NewTask("t")
	task.Map.MapObject(0, src, 0, 8, ProtWrite, InheritCopy)
	runTask(t, e, func(p *sim.Proc) error {
		if err := task.WriteU64(p, 0, 10); err != nil {
			return err
		}
		cp := k.CopyAsymmetric(src)
		ct := k.NewTask("ct")
		ct.Map.MapObject(0, cp, 0, 8, ProtWrite, InheritShare)

		// Copy reads through the shadow link before any source write.
		v, err := ct.ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 10 {
			t.Errorf("copy read %d, want 10", v)
		}
		// Source write pushes old contents into the copy first.
		if err := task.WriteU64(p, 0, 20); err != nil {
			return err
		}
		if k.Ctr.Get("local_pushes") != 1 {
			t.Errorf("local_pushes = %d", k.Ctr.Get("local_pushes"))
		}
		v, _ = ct.ReadU64(p, 0)
		if v != 10 {
			t.Errorf("copy saw source write: %d", v)
		}
		sv, _ := task.ReadU64(p, 0)
		if sv != 20 {
			t.Errorf("source read %d, want 20", sv)
		}
		return nil
	})
}

func TestAsymmetricCopyVersionCounters(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	src := k.NewAnonymous(8)
	src.Strategy = CopyAsymmetric
	if src.Version != 0 {
		t.Fatalf("fresh object version = %d", src.Version)
	}
	k.CopyAsymmetric(src)
	if src.Version != 1 {
		t.Fatalf("version after copy = %d", src.Version)
	}
	if !src.NeedsPush(0) {
		t.Fatal("page should need push after copy")
	}
	src.MarkPushed(0)
	if src.NeedsPush(0) {
		t.Fatal("pushed page still needs push")
	}
	k.CopyAsymmetric(src)
	if !src.NeedsPush(0) {
		t.Fatal("new copy must re-arm push")
	}
}

func TestAsymmetricCopyChainReshadow(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	src := k.NewAnonymous(8)
	src.Strategy = CopyAsymmetric
	c1 := k.CopyAsymmetric(src)
	c2 := k.CopyAsymmetric(src)
	// New copies are inserted immediately after their source: c1 now
	// shadows c2, which shadows src.
	if src.Copy != c2 {
		t.Fatal("src.Copy should be the newest copy")
	}
	if c2.Shadow != src {
		t.Fatal("c2 should shadow src")
	}
	if c1.Shadow != c2 {
		t.Fatal("c1 should have been re-shadowed onto c2")
	}
}

func TestAsymmetricTwoCopiesSeeCorrectSnapshots(t *testing.T) {
	e := sim.NewEngine()
	k := testKernel(e)
	src := k.NewAnonymous(8)
	src.Strategy = CopyAsymmetric
	task := k.NewTask("t")
	task.Map.MapObject(0, src, 0, 8, ProtWrite, InheritCopy)
	runTask(t, e, func(p *sim.Proc) error {
		if err := task.WriteU64(p, 0, 1); err != nil {
			return err
		}
		c1 := k.CopyAsymmetric(src) // snapshot value 1
		if err := task.WriteU64(p, 0, 2); err != nil {
			return err
		}
		c2 := k.CopyAsymmetric(src) // snapshot value 2
		if err := task.WriteU64(p, 0, 3); err != nil {
			return err
		}
		rt1 := k.NewTask("c1")
		rt1.Map.MapObject(0, c1, 0, 8, ProtWrite, InheritShare)
		rt2 := k.NewTask("c2")
		rt2.Map.MapObject(0, c2, 0, 8, ProtWrite, InheritShare)
		v1, err := rt1.ReadU64(p, 0)
		if err != nil {
			return err
		}
		v2, err := rt2.ReadU64(p, 0)
		if err != nil {
			return err
		}
		sv, _ := task.ReadU64(p, 0)
		if v1 != 1 || v2 != 2 || sv != 3 {
			t.Errorf("snapshots %d/%d source %d, want 1/2/3", v1, v2, sv)
		}
		return nil
	})
}

// Property: an arbitrary interleaving of writes in a symmetric fork tree
// keeps every task's view isolated after its own last write.
func TestForkIsolationProperty(t *testing.T) {
	check := func(seed uint64) bool {
		e := sim.NewEngine()
		k := testKernel(e)
		rng := sim.NewRNG(seed)
		root := k.NewTask("root")
		obj := k.NewAnonymous(4)
		root.Map.MapObject(0, obj, 0, 4, ProtWrite, InheritCopy)
		tasks := []*Task{root}
		want := map[int]uint64{} // task index -> expected value at addr 0
		ok := true
		e.Spawn("driver", func(p *sim.Proc) {
			for step := 0; step < 30; step++ {
				switch rng.Intn(3) {
				case 0: // fork a random task
					ti := rng.Intn(len(tasks))
					child := tasks[ti].Fork("child")
					tasks = append(tasks, child)
					want[len(tasks)-1] = want[ti]
				case 1: // write a random task
					ti := rng.Intn(len(tasks))
					v := rng.Uint64()
					if err := tasks[ti].WriteU64(p, 0, v); err != nil {
						ok = false
						return
					}
					want[ti] = v
				case 2: // read and verify a random task
					ti := rng.Intn(len(tasks))
					v, err := tasks[ti].ReadU64(p, 0)
					if err != nil || v != want[ti] {
						ok = false
						return
					}
				}
			}
			// Final full verification.
			for ti, task := range tasks {
				v, err := task.ReadU64(p, 0)
				if err != nil || v != want[ti] {
					ok = false
					return
				}
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
