// Package vm is a faithful-but-simplified model of the Mach kernel's
// virtual memory system, per node: address maps, VM objects with
// shadow/copy chains, the symmetric and asymmetric delayed-copy strategies,
// a resident-page cache over bounded physical memory, and the External
// Memory Management Interface (EMMI) — including the five extensions the
// ASVM paper adds (lock_request/data_supply "mode" arguments,
// lock_completed "result", and pull_request/pull_completed).
//
// One Kernel instance exists per simulated node. Protocol layers (the XMM
// baseline, ASVM, and plain pagers) plug in as MemoryManager
// implementations; the kernel talks to them exactly the way Mach talks to
// an external pager, and they answer through the Kernel's control methods
// (DataSupply, LockRequest, PullRequest, ...).
package vm

import (
	"fmt"
	"time"

	"asvm/internal/mesh"
)

// PageSize is the machine page size in bytes (Paragon: 8 KByte).
const PageSize = 8192

// PageShift is log2(PageSize).
const PageShift = 13

// Addr is a virtual address within a task's address space.
type Addr uint64

// PageIdx is a page index within a memory object.
type PageIdx int64

// PageOf returns the page index containing a byte offset into an object.
func PageOf(off int64) PageIdx { return PageIdx(off >> PageShift) }

// Prot is an access right. Write implies Read.
type Prot int

// Access rights in increasing order of strength.
const (
	ProtNone Prot = iota
	ProtRead
	ProtWrite
)

// Allows reports whether holding p satisfies a request for want.
func (p Prot) Allows(want Prot) bool { return p >= want }

// String implements fmt.Stringer.
func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "none"
	case ProtRead:
		return "read"
	case ProtWrite:
		return "write"
	default:
		return fmt.Sprintf("Prot(%d)", int(p))
	}
}

// ObjID names a memory object globally: the node that created it plus a
// per-node sequence number. Shared objects keep the same ID on every node;
// node-private anonymous objects never leave their node.
type ObjID struct {
	Node mesh.NodeID
	Seq  uint64
}

// String implements fmt.Stringer.
func (id ObjID) String() string { return fmt.Sprintf("obj%d.%d", id.Node, id.Seq) }

// CopyStrategy selects how delayed copies of an object are made (Mach's
// MEMORY_OBJECT_COPY_*).
type CopyStrategy int

// Copy strategies.
const (
	// CopyNone forbids delayed copies: copying is eager.
	CopyNone CopyStrategy = iota
	// CopySymmetric freezes the source by interposing shadow objects at
	// write faults (used for anonymous memory).
	CopySymmetric
	// CopyAsymmetric creates a copy object up front and pushes pages into it
	// before source writes (used when source changes must reach the pager,
	// e.g. mapped files — and by ASVM for all cross-node copies).
	CopyAsymmetric
)

// InheritMode says what fork does with a map entry (Mach's VM_INHERIT_*).
type InheritMode int

// Inheritance modes.
const (
	InheritNone InheritMode = iota
	InheritShare
	InheritCopy
)

// Costs holds the CPU-time constants of the VM layer. They model i860XP
// kernel path lengths and are part of the calibration surface documented in
// machine.Params.
type Costs struct {
	// FaultBase is the trap + map lookup + object chain walk entry cost.
	FaultBase time.Duration
	// PmapEnter is the cost of entering a translation into the pmap.
	PmapEnter time.Duration
	// PageCopy is the cost of copying one page memory-to-memory.
	PageCopy time.Duration
	// PageZero is the cost of zero-filling a page.
	PageZero time.Duration
	// EMMILocal is the cost of one kernel<->manager interface crossing on
	// the same node (message marshalling through a local port).
	EMMILocal time.Duration
}

// DefaultCosts returns calibrated defaults (see DESIGN.md §6).
func DefaultCosts() Costs {
	return Costs{
		FaultBase: 1050 * time.Microsecond,
		PmapEnter: 50 * time.Microsecond,
		PageCopy:  120 * time.Microsecond,
		PageZero:  80 * time.Microsecond,
		EMMILocal: 450 * time.Microsecond,
	}
}

// PullResult is the outcome of a memory_object_pull_request (EMMI
// extension; paper §3.7.1).
type PullResult int

// Pull results, matching the paper's three cases.
const (
	// PullZeroFill: the page is not available anywhere in the chain and can
	// be zero-filled.
	PullZeroFill PullResult = iota
	// PullData: the page was found and its contents are returned.
	PullData
	// PullAskManager: a shadow object with its own memory manager was
	// reached; that manager must be asked for the page.
	PullAskManager
)

// String implements fmt.Stringer.
func (r PullResult) String() string {
	switch r {
	case PullZeroFill:
		return "zero-fill"
	case PullData:
		return "data"
	case PullAskManager:
		return "ask-manager"
	default:
		return fmt.Sprintf("PullResult(%d)", int(r))
	}
}
