package vm

import (
	"testing"

	"asvm/internal/sim"
)

// memKernel builds a kernel with a small physical memory.
func memKernel(e *sim.Engine, pages int) *Kernel {
	return NewKernel(e, 0, DefaultCosts(), NewPhysMem(pages), true)
}

// defaultPagerStub implements MemoryManager as an in-memory paging space.
type defaultPagerStub struct {
	k     *Kernel
	store map[pageKey][]byte
	outs  int
	ins   int
}

func newDefaultPagerStub(k *Kernel) *defaultPagerStub {
	return &defaultPagerStub{k: k, store: make(map[pageKey][]byte)}
}

func (d *defaultPagerStub) DataRequest(o *Object, idx PageIdx, desired Prot) {
	d.ins++
	data := d.store[pageKey{o.ID, idx}]
	d.k.Eng.Schedule(0, func() { d.k.DataSupply(o, idx, data, ProtWrite, false) })
}

func (d *defaultPagerStub) DataUnlock(o *Object, idx PageIdx, desired Prot) {
	d.k.LockGrant(o, idx, desired)
}

func (d *defaultPagerStub) DataReturn(o *Object, idx PageIdx, data []byte, dirty, kept bool) {
	d.outs++
	buf := make([]byte, len(data))
	copy(buf, data)
	d.store[pageKey{o.ID, idx}] = buf
	if !kept {
		d.k.Eng.Schedule(0, func() { d.k.RemovePage(o, idx) })
	}
}

func (d *defaultPagerStub) Terminate(o *Object) {}

func TestEvictionKeepsOccupancyBounded(t *testing.T) {
	e := sim.NewEngine()
	k := memKernel(e, 16)
	k.DefaultMgr = newDefaultPagerStub(k)
	task := k.NewTask("t")
	obj := k.NewAnonymous(64)
	task.Map.MapObject(0, obj, 0, 64, ProtWrite, InheritCopy)
	runTask(t, e, func(p *sim.Proc) error {
		for i := 0; i < 64; i++ {
			if err := task.WriteU64(p, Addr(i*PageSize), uint64(i)); err != nil {
				return err
			}
		}
		return nil
	})
	if k.Mem.ResidentPages > 16 {
		t.Fatalf("resident = %d > capacity 16", k.Mem.ResidentPages)
	}
	if k.Mem.Evictions == 0 {
		t.Fatal("no evictions happened")
	}
}

func TestEvictedDirtyPageRoundTripsThroughPager(t *testing.T) {
	e := sim.NewEngine()
	k := memKernel(e, 8)
	pager := newDefaultPagerStub(k)
	k.DefaultMgr = pager
	task := k.NewTask("t")
	obj := k.NewAnonymous(32)
	task.Map.MapObject(0, obj, 0, 32, ProtWrite, InheritCopy)
	runTask(t, e, func(p *sim.Proc) error {
		// Write all pages, forcing early ones out to the pager.
		for i := 0; i < 32; i++ {
			if err := task.WriteU64(p, Addr(i*PageSize), uint64(1000+i)); err != nil {
				return err
			}
		}
		// Read everything back; early pages must come from paging space.
		for i := 0; i < 32; i++ {
			v, err := task.ReadU64(p, Addr(i*PageSize))
			if err != nil {
				return err
			}
			if v != uint64(1000+i) {
				t.Errorf("page %d read %d, want %d", i, v, 1000+i)
			}
		}
		return nil
	})
	if pager.outs == 0 || pager.ins == 0 {
		t.Fatalf("pager not exercised: outs=%d ins=%d", pager.outs, pager.ins)
	}
}

func TestCleanPagesDroppedWithoutPager(t *testing.T) {
	e := sim.NewEngine()
	k := memKernel(e, 8)
	// No default pager: only clean pages can be evicted.
	task := k.NewTask("t")
	obj := k.NewAnonymous(32)
	task.Map.MapObject(0, obj, 0, 32, ProtWrite, InheritCopy)
	runTask(t, e, func(p *sim.Proc) error {
		for i := 0; i < 32; i++ {
			if _, err := task.Touch(p, Addr(i*PageSize), ProtRead); err != nil {
				return err
			}
		}
		return nil
	})
	if k.Mem.ResidentPages > 8 {
		t.Fatalf("resident = %d", k.Mem.ResidentPages)
	}
	if k.Ctr.Get("evict_drop") == 0 {
		t.Fatal("no clean drops")
	}
	// Re-reading a dropped page re-zero-fills.
	runTask(t, e, func(p *sim.Proc) error {
		v, err := task.ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 0 {
			t.Errorf("dropped zero page read %d", v)
		}
		return nil
	})
}

func TestDirtyPagesStickWithoutPager(t *testing.T) {
	e := sim.NewEngine()
	k := memKernel(e, 4)
	task := k.NewTask("t")
	obj := k.NewAnonymous(8)
	task.Map.MapObject(0, obj, 0, 8, ProtWrite, InheritCopy)
	runTask(t, e, func(p *sim.Proc) error {
		for i := 0; i < 8; i++ {
			if err := task.WriteU64(p, Addr(i*PageSize), uint64(i)); err != nil {
				return err
			}
		}
		// All dirty, no pager: everything must still be readable.
		for i := 0; i < 8; i++ {
			v, err := task.ReadU64(p, Addr(i*PageSize))
			if err != nil {
				return err
			}
			if v != uint64(i) {
				t.Errorf("page %d = %d", i, v)
			}
		}
		return nil
	})
	if k.Ctr.Get("evict_stuck") == 0 {
		t.Fatal("expected stuck evictions without a pager")
	}
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	e := sim.NewEngine()
	k := memKernel(e, 4)
	k.DefaultMgr = newDefaultPagerStub(k)
	task := k.NewTask("t")
	obj := k.NewAnonymous(16)
	task.Map.MapObject(0, obj, 0, 16, ProtWrite, InheritCopy)
	runTask(t, e, func(p *sim.Proc) error {
		if err := task.WriteU64(p, 0, 42); err != nil {
			return err
		}
		k.Pin(obj, 0)
		for i := 1; i < 16; i++ {
			if err := task.WriteU64(p, Addr(i*PageSize), uint64(i)); err != nil {
				return err
			}
		}
		if !obj.Resident(0) {
			t.Error("pinned page was evicted")
		}
		k.Unpin(obj, 0)
		return nil
	})
}

func TestLRUOrdering(t *testing.T) {
	e := sim.NewEngine()
	k := memKernel(e, 0) // unlimited; probe lruVictim directly
	obj := k.NewAnonymous(8)
	k.InstallPage(obj, 0, nil, ProtWrite)
	k.InstallPage(obj, 1, nil, ProtWrite)
	k.InstallPage(obj, 2, nil, ProtWrite)
	// Touch page 0 so page 1 becomes LRU.
	k.touch(obj.Lookup(0))
	_, victim := k.lruVictim(nil)
	if victim == nil || victim.Idx != 1 {
		t.Fatalf("victim = %v, want page 1", victim)
	}
}

func TestFaultWaitsForEviction(t *testing.T) {
	e := sim.NewEngine()
	k := memKernel(e, 0)
	pager := newDefaultPagerStub(k)
	k.DefaultMgr = pager
	task := k.NewTask("t")
	obj := k.NewAnonymous(8)
	task.Map.MapObject(0, obj, 0, 8, ProtWrite, InheritCopy)
	runTask(t, e, func(p *sim.Proc) error {
		if err := task.WriteU64(p, 0, 5); err != nil {
			return err
		}
		// Manually start an eviction, then fault on the page: the fault
		// must wait for the eviction to finish and then page back in.
		pg := obj.Lookup(0)
		k.startEviction(obj, pg)
		obj.PagedOut[0] = true
		v, err := task.ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 5 {
			t.Errorf("read %d after eviction race, want 5", v)
		}
		return nil
	})
}
