package vm

import (
	"encoding/binary"
	"fmt"

	"asvm/internal/sim"
)

// Task is a user task: an address space plus helpers for touching memory
// from a proc. Memory accesses take a fast path (pure bookkeeping, no
// simulated time) when the page is resident with sufficient access, and
// enter the full fault path otherwise — mirroring hardware TLB/pmap hits
// vs. traps.
type Task struct {
	Name   string
	Kernel *Kernel
	Map    *Map
}

// NewTask creates a task with an empty address space.
func (k *Kernel) NewTask(name string) *Task {
	return &Task{Name: name, Kernel: k, Map: k.NewMap()}
}

// resolveFast returns the page satisfying (addr, want) if no fault is
// needed.
func (t *Task) resolveFast(addr Addr, want Prot) *Page {
	e := t.Map.Lookup(addr)
	if e == nil || !e.MaxProt.Allows(want) {
		return nil
	}
	if want == ProtWrite && e.NeedsCopy {
		return nil // symmetric copy must be evaluated first
	}
	idx := e.pageIndex(addr)
	for cur := e.Object; cur != nil; cur = cur.Shadow {
		pg := cur.Pages[idx]
		if pg == nil {
			continue
		}
		if pg.Evicting || !pg.Lock.Allows(want) {
			return nil
		}
		if want == ProtWrite {
			if cur != e.Object {
				return nil // copy-on-write needed
			}
			if cur.Mgr == nil && cur.NeedsPush(idx) {
				return nil // local push needed
			}
			pg.Dirty = true
		}
		return pg
	}
	return nil
}

// Touch performs one memory access of the given kind at addr, faulting if
// necessary, and returns the page backing the access. Like a restarted
// instruction, the access is re-validated after each fault: the page may
// have been invalidated again between fault resolution and the access.
func (t *Task) Touch(p *sim.Proc, addr Addr, want Prot) (*Page, error) {
	for attempt := 0; attempt < 10000; attempt++ {
		if pg := t.resolveFast(addr, want); pg != nil {
			return pg, nil
		}
		if _, err := t.Kernel.Fault(p, t.Map, addr, want); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("vm: access livelock at %#x on node %d", addr, t.Kernel.Node)
}

// ReadU64 reads an 8-byte little-endian value at addr (TrackData runs
// only).
func (t *Task) ReadU64(p *sim.Proc, addr Addr) (uint64, error) {
	pg, err := t.Touch(p, addr, ProtRead)
	if err != nil {
		return 0, err
	}
	if pg.Data == nil {
		return 0, fmt.Errorf("vm: ReadU64 without TrackData")
	}
	off := int(addr % PageSize)
	if off+8 > PageSize {
		return 0, fmt.Errorf("vm: ReadU64 crosses page boundary at %#x", addr)
	}
	return binary.LittleEndian.Uint64(pg.Data[off:]), nil
}

// WriteU64 writes an 8-byte little-endian value at addr (TrackData runs
// only).
func (t *Task) WriteU64(p *sim.Proc, addr Addr, v uint64) error {
	pg, err := t.Touch(p, addr, ProtWrite)
	if err != nil {
		return err
	}
	if pg.Data == nil {
		return fmt.Errorf("vm: WriteU64 without TrackData")
	}
	off := int(addr % PageSize)
	if off+8 > PageSize {
		return fmt.Errorf("vm: WriteU64 crosses page boundary at %#x", addr)
	}
	binary.LittleEndian.PutUint64(pg.Data[off:], v)
	return nil
}

// Fork creates a same-node child task whose address space follows the
// inheritance attributes of this task's map.
func (t *Task) Fork(name string) *Task {
	return &Task{Name: name, Kernel: t.Kernel, Map: t.Map.ForkLocal()}
}
