package vm

import (
	"fmt"

	"asvm/internal/sim"
)

// Page is a resident page of a VM object on one node. Non-resident pages
// simply have no Page struct — the paper's "state information only about
// pages that are cached into physical memory".
type Page struct {
	Idx PageIdx

	// Data holds the page contents when the cluster tracks data; nil in
	// metadata-only runs.
	Data []byte

	// Lock is the maximum access the memory manager currently allows this
	// node (Mach's page lock, set via memory_object_lock_request).
	Lock Prot

	// Dirty is set when the page has been written since it was last cleaned
	// (supplied or returned).
	Dirty bool

	// Pinned pages are exempt from eviction (in-flight protocol transfers).
	Pinned bool

	// Evicting marks a page whose eviction protocol is in progress; faults
	// must wait for it to finish.
	Evicting bool

	lruTick uint64
}

// Object is the per-node representation of a memory object: a cache of its
// pages plus the shadow/copy links of the delayed-copy machinery.
type Object struct {
	ID     ObjID
	Kernel *Kernel

	// SizePages is the object's length; faults beyond it are errors.
	SizePages PageIdx

	// Pages holds the resident pages on this node.
	Pages map[PageIdx]*Page

	// Shadow points toward the source object this object was copied from
	// (data is pulled through this link). Nil for original objects.
	Shadow *Object

	// Copy points to the most recent copy object made from this object
	// (data is pushed through this link before source writes).
	Copy *Object

	// Mgr is the memory manager backing this object: a pager binding, an
	// XMM proxy, or an ASVM instance. Nil for plain anonymous memory.
	Mgr MemoryManager

	// Strategy is the copy strategy the object's manager declared.
	Strategy CopyStrategy

	// Version counts copies made from this object (ASVM delayed-copy
	// version counter; paper §3.7.2). Page pushes stamp PageVersion.
	Version uint64

	// PageVersion records, per page, the object version at the time of the
	// page's last push. A write needs a push iff PageVersion != Version.
	// Only pages that have been pushed at least once appear here; absent
	// means version 0.
	PageVersion map[PageIdx]uint64

	// PagedOut remembers pages this node evicted to the default pager
	// (anonymous objects only; managed objects track this in their
	// manager).
	PagedOut map[PageIdx]bool

	// MapRefs counts map entries referencing this object on this node.
	MapRefs int

	// pending tracks in-flight data requests per page so concurrent faults
	// coalesce onto one EMMI transaction.
	pending map[PageIdx]*pendingReq

	// Terminated is set once the object is torn down.
	Terminated bool
}

// pendingReq is one in-flight data request/unlock. Records are pooled on
// the kernel (reqFree): the future is embedded by value so record and
// future are a single reusable allocation, and refs counts the procs
// currently inside future.Wait so the pool only takes the record back once
// the last of them has resumed.
type pendingReq struct {
	want   Prot
	refs   int
	err    error // non-nil when the request was typed-failed, not granted
	future sim.Future
}

// NewObject creates an empty object of the given size owned by kernel k.
// It is registered under its ID.
func (k *Kernel) NewObject(id ObjID, sizePages PageIdx, mgr MemoryManager, strategy CopyStrategy) *Object {
	if _, dup := k.objects[id]; dup {
		panic(fmt.Sprintf("vm: duplicate object %v on node %d", id, k.Node))
	}
	o := &Object{
		ID:          id,
		Kernel:      k,
		SizePages:   sizePages,
		Pages:       make(map[PageIdx]*Page),
		Mgr:         mgr,
		Strategy:    strategy,
		PageVersion: make(map[PageIdx]uint64),
		PagedOut:    make(map[PageIdx]bool),
		pending:     make(map[PageIdx]*pendingReq),
	}
	k.objects[id] = o
	return o
}

// NewAnonymous creates a node-private zero-filled object with the symmetric
// copy strategy (Mach's default for temporary memory).
func (k *Kernel) NewAnonymous(sizePages PageIdx) *Object {
	return k.NewObject(k.NextID(), sizePages, nil, CopySymmetric)
}

// Resident reports whether the page is resident (and not mid-eviction).
func (o *Object) Resident(idx PageIdx) bool {
	p, ok := o.Pages[idx]
	return ok && !p.Evicting
}

// Lookup returns the resident page or nil.
func (o *Object) Lookup(idx PageIdx) *Page {
	return o.Pages[idx]
}

// ChainDepth returns the length of the shadow chain below this object
// (0 for an original object).
func (o *Object) ChainDepth() int {
	d := 0
	for s := o.Shadow; s != nil; s = s.Shadow {
		d++
	}
	return d
}

// NeedsPush reports whether a write to the page must first push it down the
// copy chain (paper §3.7.2: page version != object version).
func (o *Object) NeedsPush(idx PageIdx) bool {
	return o.Copy != nil && o.PageVersion[idx] != o.Version
}

// MarkPushed stamps the page as pushed at the current object version.
func (o *Object) MarkPushed(idx PageIdx) {
	o.PageVersion[idx] = o.Version
}

// String implements fmt.Stringer.
func (o *Object) String() string {
	return fmt.Sprintf("%v@n%d[%d pages resident]", o.ID, o.Kernel.Node, len(o.Pages))
}

// MemoryManager is the EMMI as seen from the kernel: the operations Mach
// directs at an external pager (or at XMM/ASVM interposing as one). All
// calls are asynchronous — answers come back through the Kernel's control
// methods.
type MemoryManager interface {
	// DataRequest asks the manager to supply a page with at least the
	// desired access (memory_object_data_request).
	DataRequest(o *Object, idx PageIdx, desired Prot)

	// DataUnlock asks for an access upgrade on a resident page
	// (memory_object_data_unlock).
	DataUnlock(o *Object, idx PageIdx, desired Prot)

	// DataReturn hands back page contents (memory_object_data_return).
	// kept=true means the page stays resident and is merely being cleaned
	// (a lock downgrade of a dirty page); kept=false means the page is
	// leaving the cache (eviction or flush) and the manager must finish
	// the removal with Kernel.RemovePage once it has disposed of the data.
	DataReturn(o *Object, idx PageIdx, data []byte, dirty, kept bool)

	// Terminate tells the manager this node no longer maps the object.
	Terminate(o *Object)
}

// ZeroFiller is an optional MemoryManager refinement: managers return true
// from CanZeroFill when the kernel may satisfy an initial-touch fault
// locally instead of issuing a DataRequest. Plain pagers never allow it;
// ASVM allows it for anonymous objects whose page is known fresh.
type ZeroFiller interface {
	CanZeroFill(o *Object, idx PageIdx) bool
}
