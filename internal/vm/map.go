package vm

import (
	"fmt"
	"sort"

	"asvm/internal/sim"
)

// Map is a task address space: a sorted list of entries mapping address
// ranges to memory objects.
type Map struct {
	Kernel  *Kernel
	entries []*Entry
}

// Entry maps [Start, End) to Object starting at page OffsetPages.
type Entry struct {
	Start, End  Addr
	Object      *Object
	OffsetPages PageIdx

	// NeedsCopy marks a symmetric delayed copy that has not yet been
	// evaluated: the first write fault interposes a shadow object.
	NeedsCopy bool

	// MaxProt caps the access this mapping permits.
	MaxProt Prot

	// Inherit controls what Fork does with this entry.
	Inherit InheritMode
}

// pageIndex translates an address covered by the entry to an object page.
func (e *Entry) pageIndex(addr Addr) PageIdx {
	return PageIdx((addr-e.Start)>>PageShift) + e.OffsetPages
}

// Pages returns the number of pages the entry spans.
func (e *Entry) Pages() PageIdx { return PageIdx((e.End - e.Start) >> PageShift) }

// NewMap returns an empty address space on kernel k.
func (k *Kernel) NewMap() *Map { return &Map{Kernel: k} }

// MapObject enters object o into the address space at start for lenPages
// pages beginning at object page offsetPages. Overlapping mappings are
// rejected.
func (m *Map) MapObject(start Addr, o *Object, offsetPages, lenPages PageIdx, prot Prot, inherit InheritMode) (*Entry, error) {
	if start%PageSize != 0 {
		return nil, fmt.Errorf("vm: unaligned mapping at %#x", start)
	}
	if lenPages <= 0 {
		return nil, fmt.Errorf("vm: empty mapping")
	}
	end := start + Addr(lenPages)*PageSize
	for _, e := range m.entries {
		if start < e.End && e.Start < end {
			return nil, fmt.Errorf("vm: mapping [%#x,%#x) overlaps [%#x,%#x)", start, end, e.Start, e.End)
		}
	}
	entry := &Entry{
		Start: start, End: end,
		Object: o, OffsetPages: offsetPages,
		MaxProt: prot, Inherit: inherit,
	}
	o.MapRefs++
	m.entries = append(m.entries, entry)
	sort.Slice(m.entries, func(i, j int) bool { return m.entries[i].Start < m.entries[j].Start })
	return entry, nil
}

// Unmap removes the entry containing addr; it reports whether one existed.
func (m *Map) Unmap(addr Addr) bool {
	for i, e := range m.entries {
		if addr >= e.Start && addr < e.End {
			e.Object.MapRefs--
			m.entries = append(m.entries[:i], m.entries[i+1:]...)
			return true
		}
	}
	return false
}

// Lookup returns the entry containing addr, or nil.
func (m *Map) Lookup(addr Addr) *Entry {
	// Binary search over sorted entries.
	lo, hi := 0, len(m.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		e := m.entries[mid]
		switch {
		case addr < e.Start:
			hi = mid
		case addr >= e.End:
			lo = mid + 1
		default:
			return e
		}
	}
	return nil
}

// Entries returns the map's entries (shared slice; callers must not
// mutate).
func (m *Map) Entries() []*Entry { return m.entries }

// ForkLocal creates a same-node copy of the address space following each
// entry's inheritance mode, exactly like a local fork():
//
//   - InheritShare: parent and child reference the same object.
//   - InheritCopy with the symmetric strategy: both sides keep referencing
//     the object with NeedsCopy set; the first write on either side
//     interposes a shadow object (Figure 2).
//   - InheritCopy with the asymmetric strategy: a copy object is created
//     now and linked into the copy chain (Figure 3).
//   - InheritNone: the child does not get the entry.
func (m *Map) ForkLocal() *Map {
	k := m.Kernel
	child := k.NewMap()
	for _, e := range m.entries {
		switch e.Inherit {
		case InheritNone:
			continue
		case InheritShare:
			ce := &Entry{Start: e.Start, End: e.End, Object: e.Object,
				OffsetPages: e.OffsetPages, MaxProt: e.MaxProt, Inherit: e.Inherit}
			e.Object.MapRefs++
			child.entries = append(child.entries, ce)
		case InheritCopy:
			switch e.Object.Strategy {
			case CopyAsymmetric:
				cp := k.CopyAsymmetric(e.Object)
				ce := &Entry{Start: e.Start, End: e.End, Object: cp,
					OffsetPages: e.OffsetPages, MaxProt: e.MaxProt, Inherit: e.Inherit}
				cp.MapRefs++
				child.entries = append(child.entries, ce)
			default: // symmetric (and CopyNone treated as symmetric here)
				e.NeedsCopy = true
				ce := &Entry{Start: e.Start, End: e.End, Object: e.Object,
					OffsetPages: e.OffsetPages, MaxProt: e.MaxProt,
					Inherit: e.Inherit, NeedsCopy: true}
				e.Object.MapRefs++
				child.entries = append(child.entries, ce)
			}
		}
	}
	sort.Slice(child.entries, func(i, j int) bool { return child.entries[i].Start < child.entries[j].Start })
	return child
}

// CopyAsymmetric creates a delayed copy of src using the asymmetric
// strategy: the new object shadows src, and is spliced into src's copy
// chain immediately after it (any previous newest copy is re-shadowed onto
// the new one). src's version counter advances so subsequent writes know to
// push (paper §3.7.2).
func (k *Kernel) CopyAsymmetric(src *Object) *Object {
	cp := k.NewObject(k.NextID(), src.SizePages, nil, CopyAsymmetric)
	k.LinkCopy(src, cp)
	return cp
}

// LinkCopy splices an existing object cp into src's copy chain as the
// newest copy. Exposed so distribution layers (ASVM) can build cross-node
// copy relationships out of objects they manage.
func (k *Kernel) LinkCopy(src, cp *Object) {
	cp.Shadow = src
	if old := src.Copy; old != nil {
		old.Shadow = cp
	}
	src.Copy = cp
	src.Version++
	k.Ctr.V[sim.CtrAsymCopies]++
}
