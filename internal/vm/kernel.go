package vm

import (
	"fmt"

	"asvm/internal/mesh"
	"asvm/internal/sim"
)

// Kernel is one node's virtual memory system.
type Kernel struct {
	Node  mesh.NodeID
	Eng   *sim.Engine
	Costs Costs
	Mem   *PhysMem

	// TrackData enables real page contents (8 KB buffers); correctness
	// tests use it, large benchmarks run metadata-only.
	TrackData bool

	// DefaultMgr is the default-pager binding used for anonymous memory
	// page-out. Nil disables anonymous pageout (pages are then pinned by
	// cleanliness rules).
	DefaultMgr MemoryManager

	// Ctr accumulates kernel-level statistics (faults, zero fills, ...).
	Ctr *sim.Counters

	objects map[ObjID]*Object
	nextSeq uint64
	lruTick uint64

	evictWaiters  map[pageKey]*sim.Future
	pageoutQueued bool

	// reqFree recycles pendingReq records (with their embedded futures):
	// one is consumed per data request/unlock, which makes them the fault
	// path's last steady-state allocation. A record returns here when its
	// request completed and the last waiter left (see waitPending).
	reqFree []*pendingReq

	// crashed marks a dead node (crash-stop model): every fault fails
	// immediately with ErrNodeCrashed until Restart.
	crashed bool
}

// newPendingReq takes a recycled pendingReq or allocates one; its embedded
// future comes back incomplete and bound to the kernel's engine.
func (k *Kernel) newPendingReq(want Prot) *pendingReq {
	var req *pendingReq
	if n := len(k.reqFree); n > 0 {
		req = k.reqFree[n-1]
		k.reqFree = k.reqFree[:n-1]
	} else {
		req = &pendingReq{}
	}
	req.want = want
	req.err = nil
	req.future.Reinit(k.Eng)
	return req
}

// waitPending parks p on the request's future, and recycles the record
// once it is complete and the last waiter has resumed. The refcount is
// what makes recycling sound: completion wakes waiters asynchronously, so
// the completer cannot know when the record is dead — the last waiter out
// does. It returns the request's verdict: nil when granted, or the typed
// error a failPending carried (node crash, object unavailable).
func (k *Kernel) waitPending(p *sim.Proc, req *pendingReq) error {
	req.refs++
	req.future.Wait(p)
	req.refs--
	err := req.err
	if req.refs == 0 && req.future.Done() {
		k.reqFree = append(k.reqFree, req)
	}
	return err
}

type pageKey struct {
	id  ObjID
	idx PageIdx
}

// NewKernel creates a node kernel.
func NewKernel(eng *sim.Engine, node mesh.NodeID, costs Costs, mem *PhysMem, trackData bool) *Kernel {
	return &Kernel{
		Node:         node,
		Eng:          eng,
		Costs:        costs,
		Mem:          mem,
		TrackData:    trackData,
		Ctr:          sim.NewCounters(),
		objects:      make(map[ObjID]*Object),
		evictWaiters: make(map[pageKey]*sim.Future),
	}
}

// NextID allocates a fresh object ID local to this node.
func (k *Kernel) NextID() ObjID {
	k.nextSeq++
	return ObjID{Node: k.Node, Seq: k.nextSeq}
}

// Object returns the node's representation of id, or nil.
func (k *Kernel) Object(id ObjID) *Object { return k.objects[id] }

// Objects returns the number of live objects on this node.
func (k *Kernel) Objects() int { return len(k.objects) }

// DestroyObject forgets an object (after Terminate handling).
func (k *Kernel) DestroyObject(o *Object) {
	for idx := range o.Pages {
		k.removeFrame(o, idx)
	}
	o.Terminated = true
	delete(k.objects, o.ID)
}

// ---------------------------------------------------------------------------
// Page frame management

func (k *Kernel) touch(pg *Page) {
	k.lruTick++
	pg.lruTick = k.lruTick
}

// InstallPage inserts page contents into an object with the given lock and
// returns the new page. It panics if the page is already resident — callers
// must check. data may be nil (zero / untracked).
func (k *Kernel) InstallPage(o *Object, idx PageIdx, data []byte, lock Prot) *Page {
	if _, dup := o.Pages[idx]; dup {
		panic(fmt.Sprintf("vm: double install of %v page %d on node %d", o.ID, idx, k.Node))
	}
	pg := &Page{Idx: idx, Lock: lock}
	if k.TrackData {
		pg.Data = make([]byte, PageSize)
		copy(pg.Data, data)
	}
	o.Pages[idx] = pg
	k.Mem.ResidentPages++
	k.touch(pg)
	k.kickPageout()
	return pg
}

// removeFrame drops a resident page and frees its frame.
func (k *Kernel) removeFrame(o *Object, idx PageIdx) {
	pg, ok := o.Pages[idx]
	if !ok {
		return
	}
	if pg.Evicting {
		k.Mem.EvictingPages--
	}
	delete(o.Pages, idx)
	k.Mem.ResidentPages--
}

// RemovePage is removeFrame plus waking any procs waiting for an eviction
// to finish. Managers call it to complete flushes and evictions.
func (k *Kernel) RemovePage(o *Object, idx PageIdx) {
	k.removeFrame(o, idx)
	key := pageKey{o.ID, idx}
	if f, ok := k.evictWaiters[key]; ok {
		delete(k.evictWaiters, key)
		f.Set(nil)
	}
}

// Pin protects a page from eviction (in-flight protocol transfer).
func (k *Kernel) Pin(o *Object, idx PageIdx) {
	if pg := o.Pages[idx]; pg != nil {
		pg.Pinned = true
	}
}

// Unpin releases a Pin.
func (k *Kernel) Unpin(o *Object, idx PageIdx) {
	if pg := o.Pages[idx]; pg != nil {
		pg.Pinned = false
	}
}

// ---------------------------------------------------------------------------
// Pageout (eviction)

// kickPageout schedules a pageout scan if occupancy crossed the high
// watermark.
func (k *Kernel) kickPageout() {
	if !k.Mem.NeedsEviction() || k.pageoutQueued {
		return
	}
	k.pageoutQueued = true
	k.Eng.Schedule(0, func() {
		k.pageoutQueued = false
		k.pageoutScan()
	})
}

// pageoutScan evicts LRU pages until occupancy is under the low watermark
// or no evictable pages remain. Evictions complete asynchronously through
// the object's memory manager.
func (k *Kernel) pageoutScan() {
	tried := make(map[*Page]bool)
	for k.Mem.AboveLowWater() {
		o, pg := k.lruVictim(tried)
		if pg == nil {
			return // nothing evictable right now
		}
		tried[pg] = true
		k.startEviction(o, pg)
	}
}

// lruVictim returns the least recently used evictable page not yet tried in
// this scan, or nil.
func (k *Kernel) lruVictim(tried map[*Page]bool) (*Object, *Page) {
	var bestO *Object
	var bestP *Page
	for _, o := range k.objects {
		for _, pg := range o.Pages {
			if pg.Pinned || pg.Evicting || tried[pg] {
				continue
			}
			if bestP == nil || pg.lruTick < bestP.lruTick ||
				(pg.lruTick == bestP.lruTick && o.ID.Seq < bestO.ID.Seq) {
				bestO, bestP = o, pg
			}
		}
	}
	return bestO, bestP
}

// startEviction begins the eviction protocol for one page.
func (k *Kernel) startEviction(o *Object, pg *Page) {
	pg.Evicting = true
	k.Mem.EvictingPages++
	k.Mem.Evictions++
	k.Ctr.V[sim.CtrEvictions]++
	idx := pg.Idx
	if o.Mgr != nil {
		// Managed object: the manager (pager binding / XMM / ASVM) decides
		// where the page goes and finishes with RemovePage.
		o.Mgr.DataReturn(o, idx, pg.Data, pg.Dirty, false)
		return
	}
	// Anonymous memory.
	if pg.Dirty {
		if k.DefaultMgr == nil {
			// Nowhere to put it; give up on this page (stays resident).
			pg.Evicting = false
			k.Mem.EvictingPages--
			k.Ctr.V[sim.CtrEvictStuck]++
			return
		}
		o.PagedOut[idx] = true
		k.DefaultMgr.DataReturn(o, idx, pg.Data, true, false)
		return
	}
	if o.PagedOut[idx] {
		// Clean page with a valid copy at the default pager: drop it; a
		// later fault pages it back in.
		k.Ctr.V[sim.CtrEvictDrop]++
		k.RemovePage(o, idx)
		return
	}
	// Clean anonymous page: contents are reproducible (zero fill or a prior
	// pageout copy) — just drop it.
	k.Ctr.V[sim.CtrEvictDrop]++
	k.RemovePage(o, idx)
}

// CancelEviction aborts an in-progress eviction, leaving the page
// resident. Managers call it when the page is busy in a protocol operation
// and this pageout round should skip it. Waiting faulters are woken to
// retry against the still-resident page.
func (k *Kernel) CancelEviction(o *Object, idx PageIdx) {
	pg := o.Pages[idx]
	if pg == nil || !pg.Evicting {
		return
	}
	pg.Evicting = false
	k.Mem.EvictingPages--
	k.Ctr.V[sim.CtrEvictCancelled]++
	key := pageKey{o.ID, idx}
	if f, ok := k.evictWaiters[key]; ok {
		delete(k.evictWaiters, key)
		f.Set(nil)
	}
}

// waitEviction blocks the faulting proc until the in-progress eviction of
// (o, idx) finishes.
func (k *Kernel) waitEviction(p *sim.Proc, o *Object, idx PageIdx) {
	key := pageKey{o.ID, idx}
	f, ok := k.evictWaiters[key]
	if !ok {
		f = sim.NewFuture(k.Eng)
		k.evictWaiters[key] = f
	}
	f.Wait(p)
}

// ---------------------------------------------------------------------------
// Fault handling

// maxFaultRetries bounds the retry loop; exceeding it means a protocol
// livelock, which we surface loudly rather than spin forever.
const maxFaultRetries = 10000

// ErrFaultRetryExhausted reports a fault whose retry loop never converged:
// every pass found the page's state changed again (a protocol livelock).
// It carries enough context to identify the spinning access.
type ErrFaultRetryExhausted struct {
	Node    mesh.NodeID
	Obj     ObjID
	Page    PageIdx
	Retries int
}

func (e *ErrFaultRetryExhausted) Error() string {
	return fmt.Sprintf("vm: fault livelock on node %d: %v page %d still unresolved after %d retries",
		e.Node, e.Obj, e.Page, e.Retries)
}

// ErrNodeCrashed is the typed verdict every in-flight and future fault on a
// crashed node receives: the node is dead, nothing will be granted until a
// restart rebuilds it cold.
type ErrNodeCrashed struct {
	Node mesh.NodeID
}

func (e *ErrNodeCrashed) Error() string {
	return fmt.Sprintf("vm: node %d crashed", e.Node)
}

// ErrObjectUnavailable is the typed replacement for the old home-bounce
// panic: the fault chased the object all the way to its home node and the
// home is down, so no grant can ever arrive. The fault aborts cleanly
// instead of hanging or crashing the run.
type ErrObjectUnavailable struct {
	Node mesh.NodeID // the unreachable node (the object's home)
	Obj  ObjID
	Page PageIdx
}

func (e *ErrObjectUnavailable) Error() string {
	return fmt.Sprintf("vm: %v page %d unavailable: home node %d is down", e.Obj, e.Page, e.Node)
}

// FailPending delivers a typed failure to every proc waiting on (o, idx):
// the request is complete, but with an error instead of a grant. Managers
// call it when a peer crash makes the grant impossible.
func (k *Kernel) FailPending(o *Object, idx PageIdx, err error) {
	if req := o.pending[idx]; req != nil {
		delete(o.pending, idx)
		req.err = err
		req.future.Set(nil)
	}
}

// Crash kills this node (crash-stop): every outstanding fault and eviction
// wait resolves with ErrNodeCrashed, and new faults fail immediately. The
// node's objects stay in place so a restart (or post-mortem inspection) can
// walk them; the cluster layer tears down distributed state separately.
func (k *Kernel) Crash() int {
	k.crashed = true
	err := &ErrNodeCrashed{Node: k.Node}
	failed := 0
	for _, o := range k.objects {
		for idx := range o.pending {
			k.FailPending(o, idx, err)
			failed++
		}
	}
	for key, f := range k.evictWaiters {
		delete(k.evictWaiters, key)
		f.Set(nil)
	}
	return failed
}

// Restart clears the crash flag; the cluster layer rebuilds the node's
// distributed state (cold caches) around it.
func (k *Kernel) Restart() { k.crashed = false }

// Crashed reports whether the node is currently dead.
func (k *Kernel) Crashed() bool { return k.crashed }

// Fault resolves a page fault for the calling proc: addr in map m with the
// desired access. It blocks the proc in simulated time until the fault is
// resolved and returns the page that satisfied it (which may belong to a
// shadow object for read faults).
func (k *Kernel) Fault(p *sim.Proc, m *Map, addr Addr, want Prot) (*Page, error) {
	if want != ProtRead && want != ProtWrite {
		return nil, fmt.Errorf("vm: fault wants %v", want)
	}
	k.Ctr.V[sim.CtrFaults]++
	p.Sleep(k.Costs.FaultBase)

	var lastObj ObjID
	var lastIdx PageIdx
	for retry := 0; retry < maxFaultRetries; retry++ {
		if k.crashed {
			return nil, &ErrNodeCrashed{Node: k.Node}
		}
		entry := m.Lookup(addr)
		if entry == nil {
			return nil, fmt.Errorf("vm: no mapping for %#x on node %d", addr, k.Node)
		}
		if !entry.MaxProt.Allows(want) {
			return nil, fmt.Errorf("vm: protection violation at %#x (%v > %v)", addr, want, entry.MaxProt)
		}
		// Symmetric delayed copy: interpose a shadow object at the first
		// write fault (paper Figure 2).
		if want == ProtWrite && entry.NeedsCopy {
			k.interposeShadow(entry)
		}
		obj := entry.Object
		idx := entry.pageIndex(addr)
		if idx < 0 || idx >= obj.SizePages {
			return nil, fmt.Errorf("vm: page %d outside %v", idx, obj.ID)
		}
		lastObj, lastIdx = obj.ID, idx

		pg, done, err := k.faultStep(p, obj, idx, want)
		if err != nil {
			return nil, err
		}
		if done {
			return pg, nil
		}
		// State changed while we waited; retry the whole lookup.
	}
	return nil, &ErrFaultRetryExhausted{Node: k.Node, Obj: lastObj, Page: lastIdx, Retries: maxFaultRetries}
}

// FaultObject resolves a fault directly against an object (no address map);
// used by pagers and tests.
func (k *Kernel) FaultObject(p *sim.Proc, obj *Object, idx PageIdx, want Prot) (*Page, error) {
	k.Ctr.V[sim.CtrFaults]++
	p.Sleep(k.Costs.FaultBase)
	for retry := 0; retry < maxFaultRetries; retry++ {
		if k.crashed {
			return nil, &ErrNodeCrashed{Node: k.Node}
		}
		pg, done, err := k.faultStep(p, obj, idx, want)
		if err != nil {
			return nil, err
		}
		if done {
			return pg, nil
		}
	}
	return nil, &ErrFaultRetryExhausted{Node: k.Node, Obj: obj.ID, Page: idx, Retries: maxFaultRetries}
}

// faultStep makes one pass down the shadow chain. It either resolves the
// fault (done=true), or blocks the proc waiting for some asynchronous state
// change and asks the caller to retry (done=false).
func (k *Kernel) faultStep(p *sim.Proc, obj *Object, idx PageIdx, want Prot) (*Page, bool, error) {
	for cur := obj; cur != nil; cur = cur.Shadow {
		pg := cur.Pages[idx]
		if pg != nil {
			if pg.Evicting {
				k.waitEviction(p, cur, idx)
				return nil, false, nil
			}
			if cur == obj {
				return k.faultTopHit(p, obj, idx, pg, want)
			}
			return k.faultShadowHit(p, obj, cur, idx, pg, want)
		}
		if req := cur.pending[idx]; req != nil {
			// Coalesce with the in-flight request for this page.
			return nil, false, k.waitPending(p, req)
		}
		if cur.Mgr != nil {
			// First managed object in the chain: stop the local walk and
			// ask its manager (paper §3.7.3).
			desired := want
			if cur != obj {
				desired = ProtRead // below the top we only ever read
			}
			return nil, false, k.sendDataRequest(p, cur, idx, desired)
		}
		if cur.PagedOut[idx] {
			// Anonymous page that went to the default pager.
			if k.DefaultMgr == nil {
				return nil, false, fmt.Errorf("vm: %v page %d paged out with no default pager", cur.ID, idx)
			}
			return nil, false, k.sendDataRequestTo(p, k.DefaultMgr, cur, idx, ProtRead)
		}
	}
	// Chain exhausted: zero fill in the faulted object.
	p.Sleep(k.Costs.PageZero)
	if obj.Pages[idx] != nil {
		return nil, false, nil // raced with someone else's fill; retry
	}
	k.Ctr.V[sim.CtrZeroFills]++
	pg := k.InstallPage(obj, idx, nil, ProtWrite)
	if want == ProtWrite {
		if obj.Mgr == nil && obj.NeedsPush(idx) {
			k.localPush(p, obj, idx, pg)
		}
		pg.Dirty = true
	}
	p.Sleep(k.Costs.PmapEnter)
	return pg, true, nil
}

// faultTopHit handles a resident page in the faulted object itself.
func (k *Kernel) faultTopHit(p *sim.Proc, obj *Object, idx PageIdx, pg *Page, want Prot) (*Page, bool, error) {
	if pg.Lock.Allows(want) {
		if want == ProtWrite {
			if obj.Mgr == nil && obj.NeedsPush(idx) {
				k.localPush(p, obj, idx, pg)
			}
			pg.Dirty = true
		}
		k.touch(pg)
		p.Sleep(k.Costs.PmapEnter)
		return pg, true, nil
	}
	// Insufficient lock: ask the manager for an upgrade.
	if obj.Mgr == nil {
		// Anonymous memory is never lock-restricted by anyone else.
		pg.Lock = want
		return nil, false, nil
	}
	return nil, false, k.sendDataUnlock(p, obj, idx, want)
}

// faultShadowHit handles a page found in a shadow object below the faulted
// one.
func (k *Kernel) faultShadowHit(p *sim.Proc, obj, src *Object, idx PageIdx, pg *Page, want Prot) (*Page, bool, error) {
	if want == ProtRead {
		if !pg.Lock.Allows(ProtRead) {
			// The source page is lock-restricted (e.g. mid-push); upgrade
			// through its manager, then retry.
			if src.Mgr == nil {
				pg.Lock = ProtRead
				return nil, false, nil
			}
			return nil, false, k.sendDataUnlock(p, src, idx, ProtRead)
		}
		// Map the source page directly — no copy (paper §2.2: pages
		// retrieved through a shadow link on a read fault are not copied).
		k.touch(pg)
		p.Sleep(k.Costs.PmapEnter)
		return pg, true, nil
	}
	// Write fault: copy the page up into the faulted object (copy on
	// write).
	p.Sleep(k.Costs.PageCopy)
	if obj.Pages[idx] != nil || !src.Resident(idx) {
		return nil, false, nil // raced; retry
	}
	k.Ctr.V[sim.CtrCowCopies]++
	newPg := k.InstallPage(obj, idx, pg.Data, ProtWrite)
	if obj.Mgr == nil && obj.NeedsPush(idx) {
		k.localPush(p, obj, idx, newPg)
	}
	newPg.Dirty = true
	p.Sleep(k.Costs.PmapEnter)
	return newPg, true, nil
}

// interposeShadow implements the symmetric copy strategy's write-fault
// interposition: the map entry's object is replaced by a fresh object
// shadowing the original.
func (k *Kernel) interposeShadow(entry *Entry) {
	orig := entry.Object
	sh := k.NewObject(k.NextID(), orig.SizePages, nil, CopySymmetric)
	sh.Shadow = orig
	entry.Object = sh
	entry.NeedsCopy = false
	orig.MapRefs--
	sh.MapRefs++
	k.Ctr.V[sim.CtrShadowInterpose]++
}

// localPush implements the asymmetric copy strategy's push for unmanaged
// objects: before the page is modified, its current contents are inserted
// into the newest copy object (if absent) and the page version stamped.
func (k *Kernel) localPush(p *sim.Proc, obj *Object, idx PageIdx, pg *Page) {
	cp := obj.Copy
	if cp == nil {
		return
	}
	if !cp.Resident(idx) {
		p.Sleep(k.Costs.PageCopy)
		k.Ctr.V[sim.CtrLocalPushes]++
		k.InstallPage(cp, idx, pg.Data, ProtWrite)
	}
	obj.MarkPushed(idx)
}

// ---------------------------------------------------------------------------
// Outbound EMMI (kernel -> manager)

func (k *Kernel) sendDataRequest(p *sim.Proc, o *Object, idx PageIdx, want Prot) error {
	return k.sendDataRequestTo(p, o.Mgr, o, idx, want)
}

func (k *Kernel) sendDataRequestTo(p *sim.Proc, mgr MemoryManager, o *Object, idx PageIdx, want Prot) error {
	req := k.newPendingReq(want)
	o.pending[idx] = req
	k.Ctr.V[sim.CtrDataRequests]++
	p.Sleep(k.Costs.EMMILocal)
	mgr.DataRequest(o, idx, want)
	return k.waitPending(p, req)
}

func (k *Kernel) sendDataUnlock(p *sim.Proc, o *Object, idx PageIdx, want Prot) error {
	if req := o.pending[idx]; req != nil {
		return k.waitPending(p, req)
	}
	req := k.newPendingReq(want)
	o.pending[idx] = req
	k.Ctr.V[sim.CtrDataUnlocks]++
	p.Sleep(k.Costs.EMMILocal)
	o.Mgr.DataUnlock(o, idx, want)
	return k.waitPending(p, req)
}

// completePending wakes fault procs waiting on (o, idx).
func (k *Kernel) completePending(o *Object, idx PageIdx) {
	if req := o.pending[idx]; req != nil {
		delete(o.pending, idx)
		req.future.Set(nil)
	}
}

// HasPending reports whether a data request/unlock is outstanding for the
// page (used by managers to coalesce).
func (k *Kernel) HasPending(o *Object, idx PageIdx) bool {
	return o.pending[idx] != nil
}

// ---------------------------------------------------------------------------
// Inbound EMMI control (manager -> kernel)

// DataSupply provides page contents with the given lock
// (memory_object_data_supply). With push=true — the paper's added "mode"
// argument — the page is pushed down the local copy chain instead of being
// entered into the source object.
func (k *Kernel) DataSupply(o *Object, idx PageIdx, data []byte, lock Prot, push bool) {
	k.Ctr.V[sim.CtrDataSupplies]++
	if push {
		k.pushSupply(o, idx, data)
		return
	}
	// Note: a PagedOut marker is deliberately kept — the pager's copy stays
	// valid until the page is dirtied again, so a clean re-eviction can
	// simply drop the frame.
	if pg := o.Pages[idx]; pg != nil {
		// Already resident (e.g. raced with a local zero fill): treat as a
		// lock delivery.
		if lock > pg.Lock {
			pg.Lock = lock
		}
		if k.TrackData && data != nil && pg.Data != nil {
			copy(pg.Data, data)
		}
		k.completePending(o, idx)
		return
	}
	k.InstallPage(o, idx, data, lock)
	k.completePending(o, idx)
}

// pushSupply inserts supplied data into the newest copy of o (paper
// §3.7.2: the data_supply "mode" that pushes down the copy chain).
func (k *Kernel) pushSupply(o *Object, idx PageIdx, data []byte) {
	cp := o.Copy
	if cp == nil {
		return
	}
	if !cp.Resident(idx) {
		k.InstallPage(cp, idx, data, ProtWrite)
		k.Ctr.V[sim.CtrPushSupplies]++
		k.completePending(cp, idx)
	}
	o.MarkPushed(idx)
}

// DataUnavailable tells the kernel the manager has no data for the page:
// it may be zero-filled with the given lock.
func (k *Kernel) DataUnavailable(o *Object, idx PageIdx, lock Prot) {
	k.Ctr.V[sim.CtrDataUnavailable]++
	if o.Pages[idx] == nil {
		k.Ctr.V[sim.CtrZeroFills]++
		k.InstallPage(o, idx, nil, lock)
	}
	k.completePending(o, idx)
}

// LockGrant raises the page lock (positive lock_request); it completes
// pending unlock waits.
func (k *Kernel) LockGrant(o *Object, idx PageIdx, lock Prot) {
	if pg := o.Pages[idx]; pg != nil && lock > pg.Lock {
		pg.Lock = lock
	}
	k.completePending(o, idx)
}

// LockRequest restricts the page lock (memory_object_lock_request). With
// newLock == ProtNone the page is flushed. pushFirst is the paper's added
// "mode" argument: push the page down the local copy chain before locking.
// done — the paper's extended lock_completed "result" — reports whether the
// page was present (a requested push that finds no resident page returns
// present=false so the caller can fetch the page and push via DataSupply).
// Flushed dirty pages are handed to the object's manager via DataReturn.
func (k *Kernel) LockRequest(o *Object, idx PageIdx, newLock Prot, pushFirst bool, done func(present bool)) {
	pg := o.Pages[idx]
	if pg == nil || pg.Evicting {
		if done != nil {
			done(false)
		}
		return
	}
	if pushFirst {
		if cp := o.Copy; cp != nil && !cp.Resident(idx) {
			k.InstallPage(cp, idx, pg.Data, ProtWrite)
			k.Ctr.V[sim.CtrPushLocks]++
		}
		o.MarkPushed(idx)
	}
	if newLock == ProtNone {
		wasDirty := pg.Dirty
		data := pg.Data
		k.RemovePage(o, idx)
		if wasDirty && o.Mgr != nil {
			o.Mgr.DataReturn(o, idx, data, true, false)
		}
	} else if newLock < pg.Lock {
		if pg.Dirty && newLock < ProtWrite && o.Mgr != nil {
			// Downgrading a dirty page cleans it through the manager.
			o.Mgr.DataReturn(o, idx, pg.Data, true, true)
			pg.Dirty = false
		}
		pg.Lock = newLock
	}
	if done != nil {
		done(true)
	}
}

// PullRequest traverses the local shadow chain *below* o looking for the
// page (memory_object_pull_request, paper §3.7.1/§3.7.3). Outcomes:
// PullData with the contents, PullAskManager with the first managed shadow
// object encountered, or PullZeroFill when the chain ends.
func (k *Kernel) PullRequest(o *Object, idx PageIdx, done func(res PullResult, data []byte, shadow *Object)) {
	k.Ctr.V[sim.CtrPullRequests]++
	for cur := o.Shadow; cur != nil; cur = cur.Shadow {
		if pg := cur.Pages[idx]; pg != nil && !pg.Evicting {
			k.touch(pg)
			done(PullData, pg.Data, nil)
			return
		}
		if cur.Mgr != nil {
			done(PullAskManager, nil, cur)
			return
		}
		if cur.PagedOut[idx] {
			// The page exists but is on the default pager; treat the
			// default pager as the manager to ask.
			done(PullAskManager, nil, cur)
			return
		}
	}
	done(PullZeroFill, nil, nil)
}
