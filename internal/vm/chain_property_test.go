package vm

import (
	"testing"
	"testing/quick"

	"asvm/internal/sim"
)

// Property: an arbitrary interleaving of asymmetric copies and source
// writes preserves every copy's snapshot (the value the source held at the
// copy's creation). This is the invariant ASVM's cross-node push/pull
// machinery inherits from the local VM layer, checked here exhaustively at
// the local layer.
func TestAsymmetricSnapshotProperty(t *testing.T) {
	check := func(seed uint64) bool {
		e := sim.NewEngine()
		k := testKernel(e)
		rng := sim.NewRNG(seed)

		src := k.NewAnonymous(4)
		src.Strategy = CopyAsymmetric
		writer := k.NewTask("writer")
		if _, err := writer.Map.MapObject(0, src, 0, 4, ProtWrite, InheritCopy); err != nil {
			return false
		}

		type snapshot struct {
			task *Task
			want [4]uint64
		}
		var cur [4]uint64
		var snaps []snapshot
		ok := true
		e.Spawn("driver", func(p *sim.Proc) {
			for step := 0; step < 40; step++ {
				switch rng.Intn(3) {
				case 0: // write a random page in the source
					pg := rng.Intn(4)
					v := rng.Uint64()
					if err := writer.WriteU64(p, Addr(pg)*PageSize, v); err != nil {
						ok = false
						return
					}
					cur[pg] = v
				case 1: // snapshot: a new asymmetric copy
					cp := k.CopyAsymmetric(src)
					ct := k.NewTask("copy")
					if _, err := ct.Map.MapObject(0, cp, 0, 4, ProtWrite, InheritShare); err != nil {
						ok = false
						return
					}
					snaps = append(snaps, snapshot{task: ct, want: cur})
				case 2: // verify a random snapshot page
					if len(snaps) == 0 {
						continue
					}
					s := snaps[rng.Intn(len(snaps))]
					pg := rng.Intn(4)
					v, err := s.task.ReadU64(p, Addr(pg)*PageSize)
					if err != nil || v != s.want[pg] {
						ok = false
						return
					}
				}
			}
			// Full verification of every snapshot and the live source.
			for _, s := range snaps {
				for pg := 0; pg < 4; pg++ {
					v, err := s.task.ReadU64(p, Addr(pg)*PageSize)
					if err != nil || v != s.want[pg] {
						ok = false
						return
					}
				}
			}
			for pg := 0; pg < 4; pg++ {
				v, err := writer.ReadU64(p, Addr(pg)*PageSize)
				if err != nil || v != cur[pg] {
					ok = false
					return
				}
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: mixing symmetric fork trees with asymmetric copies never leaks
// a write into a frozen view.
func TestMixedCopyStrategiesProperty(t *testing.T) {
	check := func(seed uint64) bool {
		e := sim.NewEngine()
		k := testKernel(e)
		rng := sim.NewRNG(seed)
		root := k.NewTask("root")
		obj := k.NewAnonymous(2)
		if _, err := root.Map.MapObject(0, obj, 0, 2, ProtWrite, InheritCopy); err != nil {
			return false
		}
		tasks := []*Task{root}
		want := map[int]uint64{0: 0}
		ok := true
		e.Spawn("driver", func(p *sim.Proc) {
			for step := 0; step < 30; step++ {
				ti := rng.Intn(len(tasks))
				switch rng.Intn(3) {
				case 0: // symmetric fork
					child := tasks[ti].Fork("child")
					tasks = append(tasks, child)
					want[len(tasks)-1] = want[ti]
				case 1: // write
					v := rng.Uint64()
					if err := tasks[ti].WriteU64(p, 0, v); err != nil {
						ok = false
						return
					}
					want[ti] = v
				case 2: // read
					v, err := tasks[ti].ReadU64(p, 0)
					if err != nil || v != want[ti] {
						ok = false
						return
					}
				}
			}
			for ti, task := range tasks {
				v, err := task.ReadU64(p, 0)
				if err != nil || v != want[ti] {
					ok = false
					return
				}
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
