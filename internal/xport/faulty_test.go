package xport

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/sim"
)

// fakeXport is an in-memory Transport for exercising the wrapper layers:
// delivery is a zero-delay engine event, sends are recorded, and an optional
// drop hook simulates loss below the layer under test. Unregistered
// destinations bounce per the Transport contract.
type fakeXport struct {
	eng      *sim.Engine
	handlers map[string]Handler
	drop     func(src, dst mesh.NodeID, proto ProtoID, m interface{}) bool

	log []fakeSend
}

type fakeSend struct {
	src, dst mesh.NodeID
	proto    ProtoID
	payload  int
	m        interface{}
}

// protoP is the channel most wrapper-layer tests exercise.
var protoP = RegisterProto("p")

func newFake(e *sim.Engine) *fakeXport {
	return &fakeXport{eng: e, handlers: make(map[string]Handler)}
}

func fkey(n mesh.NodeID, proto ProtoID) string { return fmt.Sprintf("%d/%d", n, proto) }

func (f *fakeXport) Name() string { return "fake" }

func (f *fakeXport) Register(n mesh.NodeID, proto ProtoID, h Handler) {
	k := fkey(n, proto)
	if _, dup := f.handlers[k]; dup {
		panic("fake: duplicate registration " + k)
	}
	f.handlers[k] = h
}

func (f *fakeXport) Send(src, dst mesh.NodeID, proto ProtoID, payloadBytes int, m interface{}) {
	f.log = append(f.log, fakeSend{src, dst, proto, payloadBytes, m})
	if f.drop != nil && f.drop(src, dst, proto, m) {
		return
	}
	h, ok := f.handlers[fkey(dst, proto)]
	if !ok {
		back, ok := f.handlers[fkey(src, proto)]
		if !ok {
			panic("fake: no handler and no bounce for " + fkey(dst, proto))
		}
		f.eng.Schedule(0, func() { back(dst, Nack{Dst: dst, Proto: proto, Msg: m}) })
		return
	}
	f.eng.Schedule(0, func() { h(src, m) })
}

func TestFaultyZeroPlanIsNoOp(t *testing.T) {
	// The zero plan must delegate verbatim without drawing a single random
	// number — the property the determinism suite relies on.
	e := sim.NewEngine()
	fk := newFake(e)
	rng := sim.NewRNG(7)
	ft := NewFaulty(e, fk, FaultPlan{}, rng)
	ft.Register(1, protoP, func(mesh.NodeID, interface{}) {})
	for i := 0; i < 50; i++ {
		ft.Send(0, 1, protoP, i, i)
	}
	e.Run()
	if len(fk.log) != 50 {
		t.Fatalf("inner saw %d sends, want 50", len(fk.log))
	}
	for i, s := range fk.log {
		if s.m != i || s.payload != i {
			t.Fatalf("send %d altered: %+v", i, s)
		}
	}
	if got, want := rng.Uint64(), sim.NewRNG(7).Uint64(); got != want {
		t.Fatalf("zero plan consumed randomness: next draw %d, want %d", got, want)
	}
	if ft.Dropped != 0 || ft.Duplicated != 0 || ft.Delayed != 0 {
		t.Fatalf("zero plan injected faults: %d/%d/%d", ft.Dropped, ft.Duplicated, ft.Delayed)
	}
}

func TestFaultyDropIsDeterministic(t *testing.T) {
	run := func(seed uint64) ([]fakeSend, uint64) {
		e := sim.NewEngine()
		fk := newFake(e)
		ft := NewFaulty(e, fk, FaultPlan{Default: Rates{Drop: 0.5}}, sim.NewRNG(seed))
		ft.Register(1, protoP, func(mesh.NodeID, interface{}) {})
		for i := 0; i < 100; i++ {
			ft.Send(0, 1, protoP, 0, i)
		}
		e.Run()
		return fk.log, ft.Dropped
	}
	logA, dropA := run(3)
	logB, dropB := run(3)
	if dropA == 0 || dropA == 100 {
		t.Fatalf("degenerate drop count %d at rate 0.5", dropA)
	}
	if dropA != dropB || !reflect.DeepEqual(logA, logB) {
		t.Fatalf("same seed diverged: %d vs %d drops", dropA, dropB)
	}
	if logC, _ := run(4); reflect.DeepEqual(logA, logC) {
		t.Fatal("different seeds produced identical fault patterns")
	}
}

func TestFaultyDupAndDelay(t *testing.T) {
	e := sim.NewEngine()
	fk := newFake(e)
	ft := NewFaulty(e, fk, FaultPlan{Default: Rates{Dup: 1}}, sim.NewRNG(1))
	ft.Register(1, protoP, func(mesh.NodeID, interface{}) {})
	ft.Send(0, 1, protoP, 0, "m")
	e.Run()
	if len(fk.log) != 2 || ft.Duplicated != 1 {
		t.Fatalf("dup rate 1: inner saw %d sends, %d duplicated", len(fk.log), ft.Duplicated)
	}

	e2 := sim.NewEngine()
	fk2 := newFake(e2)
	const lag = 5 * time.Millisecond
	ft2 := NewFaulty(e2, fk2, FaultPlan{
		Default: Rates{Delay: 1, DelayMin: lag, DelayMax: lag},
	}, sim.NewRNG(1))
	var at sim.Time
	ft2.Register(1, protoP, func(mesh.NodeID, interface{}) { at = e2.Now() })
	ft2.Send(0, 1, protoP, 0, "m")
	e2.Run()
	if ft2.Delayed != 1 || at != sim.Time(lag) {
		t.Fatalf("delay rate 1: delivered at %v (delayed=%d), want %v", at, ft2.Delayed, lag)
	}
}

func TestFaultyLoopbackExempt(t *testing.T) {
	e := sim.NewEngine()
	fk := newFake(e)
	ft := NewFaulty(e, fk, FaultPlan{Default: Rates{Drop: 1}}, sim.NewRNG(1))
	got := 0
	ft.Register(0, protoP, func(mesh.NodeID, interface{}) { got++ })
	ft.Send(0, 0, protoP, 0, "local")
	e.Run()
	if got != 1 || ft.Dropped != 0 {
		t.Fatalf("loopback faulted: delivered=%d dropped=%d", got, ft.Dropped)
	}
}

func TestFaultyPerLinkOverride(t *testing.T) {
	e := sim.NewEngine()
	fk := newFake(e)
	plan := FaultPlan{
		Default: Rates{Drop: 1},
		Links:   map[Link]Rates{{Src: 0, Dst: 2}: {}}, // exempt this link
	}
	ft := NewFaulty(e, fk, plan, sim.NewRNG(1))
	delivered := map[mesh.NodeID]int{}
	for _, n := range []mesh.NodeID{1, 2} {
		n := n
		ft.Register(n, protoP, func(mesh.NodeID, interface{}) { delivered[n]++ })
	}
	ft.Send(0, 1, protoP, 0, "x")
	ft.Send(0, 2, protoP, 0, "y")
	e.Run()
	if delivered[1] != 0 || delivered[2] != 1 {
		t.Fatalf("per-link override ignored: %v (dropped=%d)", delivered, ft.Dropped)
	}
}
