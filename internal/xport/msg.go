package xport

// MsgKind discriminates message types within one protocol. Kinds are
// protocol-scoped: each protocol package numbers its own messages from 0
// and is the only interpreter of its kinds, so two protocols may reuse the
// same values.
type MsgKind uint8

// Msg is the typed message envelope protocol messages implement. Kind
// lets a handler dispatch through a dense switch (a jump table) instead of
// a linear type-assertion chain, and WireBytes makes payload accounting
// self-describing: the sender passes m.WireBytes() to Send instead of
// recomputing the payload convention at every call site.
type Msg interface {
	// Kind discriminates the message within its protocol.
	Kind() MsgKind
	// WireBytes is the protocol payload this message carries on the wire
	// (page contents ride along; requests and acks are header-only).
	WireBytes() int
}
