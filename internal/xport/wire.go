package xport

import "sync"

// This file is the wire-codec registry: the bridge between the in-process
// transports (which pass messages as Go values) and a real network
// transport (which must serialize them). A protocol package that wants its
// channel to be carried over real sockets registers a WireCodec under its
// channel *name* — names, not ProtoIDs, are the cross-process identity:
// ProtoID values are process-local interning order, so frames on the wire
// carry the interned name and each process maps it back to its own ID.
//
// Registration is setup-time only (package init or daemon assembly);
// lookup happens on socket reader/writer goroutines, so the table is
// guarded by a mutex like the proto registry itself.

// WireCodec serializes one protocol channel's messages. Implementations
// must be safe for concurrent use (socket readers and the engine loop
// encode/decode on different goroutines).
type WireCodec interface {
	// AppendMsg appends m's binary encoding — including whatever kind tag
	// the codec needs to pick a decoder — to dst and returns the extended
	// slice. It fails on message types the codec does not know.
	AppendMsg(dst []byte, m interface{}) ([]byte, error)

	// DecodeMsg parses one encoded message, returning the exact Go form
	// the protocol's registered Handler expects (pointer kinds stay
	// pointers, value kinds stay values). It must return an error — never
	// panic — on corrupt input, and must reject trailing bytes.
	DecodeMsg(b []byte) (interface{}, error)
}

var wireCodecs struct {
	sync.Mutex
	byName map[string]WireCodec
}

// RegisterWireCodec installs the codec for a channel name. Registering a
// name twice panics: two codecs for one channel is a wiring bug, not a
// configuration.
func RegisterWireCodec(protoName string, c WireCodec) {
	wireCodecs.Lock()
	defer wireCodecs.Unlock()
	if wireCodecs.byName == nil {
		wireCodecs.byName = make(map[string]WireCodec)
	}
	if _, dup := wireCodecs.byName[protoName]; dup {
		panic("xport: duplicate wire codec for " + protoName)
	}
	wireCodecs.byName[protoName] = c
}

// LookupWireCodec returns the codec registered for a channel name, or nil.
func LookupWireCodec(protoName string) WireCodec {
	wireCodecs.Lock()
	defer wireCodecs.Unlock()
	return wireCodecs.byName[protoName]
}
