package netx

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/xport"
)

// Exec serializes work onto the goroutine that owns the protocol engine.
// rt.Loop implements it; socket readers and writer goroutines never touch
// protocol state directly — every delivery and every Nack goes through
// Inject, so the protocol core stays single-threaded exactly as it is
// under the simulator.
type Exec interface {
	Inject(fn func())
}

// Config assembles a Transport for one node of a mesh.
type Config struct {
	// Self is this process's node identity; the only node handlers may be
	// registered for.
	Self mesh.NodeID

	// Peers maps every *other* node to the address its process listens
	// on. A destination absent from the map bounces immediately.
	Peers map[mesh.NodeID]string

	// Listen is the address to accept inbound connections on (":0" picks
	// an ephemeral port; empty runs send-only, for tests that wire
	// connections by hand with ServeConn).
	Listen string

	// Dial overrides outbound connection establishment (tests substitute
	// net.Pipe). Nil means TCP with DialTimeout.
	Dial func(addr string) (net.Conn, error)

	// DialTimeout bounds a TCP dial attempt. Zero means 2s.
	DialTimeout time.Duration

	// RedialCooldown is how long a peer stays marked down after a failed
	// dial or broken write; sends during the cooldown bounce immediately
	// instead of blocking on dials that will fail. Zero means 1s.
	RedialCooldown time.Duration

	// MaxFrame bounds inbound frame bodies. Zero means 1 MiB.
	MaxFrame int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.DialTimeout == 0 {
		out.DialTimeout = 2 * time.Second
	}
	if out.RedialCooldown == 0 {
		out.RedialCooldown = time.Second
	}
	if out.MaxFrame == 0 {
		out.MaxFrame = defaultMaxFrame
	}
	if out.Dial == nil {
		timeout := out.DialTimeout
		out.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return out
}

// Stats counts transport-level traffic and failures. All fields are
// totals since Start; read a coherent snapshot with Transport.Stats.
type Stats struct {
	FramesSent, FramesRecv uint64
	BytesSent, BytesRecv   uint64
	BouncesSent            uint64 // inbound messages we echoed back undeliverable
	BouncesRecv            uint64 // our messages a peer echoed back
	LocalNacks             uint64 // sends that bounced without reaching a socket
	Dials, DialFailures    uint64
	DecodeErrors           uint64
}

// Transport is the TCP-backed xport.Transport. One per process; it speaks
// for exactly one node (Config.Self).
type Transport struct {
	cfg  Config
	exec Exec

	mu       sync.RWMutex
	handlers map[xport.ProtoID]xport.Handler
	closed   bool

	peers map[mesh.NodeID]*peerLink

	ln      net.Listener
	inbound sync.Map // net.Conn -> struct{}
	wg      sync.WaitGroup

	outstanding atomic.Int64

	st struct {
		framesSent, framesRecv atomic.Uint64
		bytesSent, bytesRecv   atomic.Uint64
		bouncesSent            atomic.Uint64
		bouncesRecv            atomic.Uint64
		localNacks             atomic.Uint64
		dials, dialFailures    atomic.Uint64
		decodeErrors           atomic.Uint64
	}
}

// outFrame is one queued outbound message: the prebuilt frame body plus
// what a local Nack needs if the peer turns out to be unreachable.
type outFrame struct {
	body  []byte
	proto xport.ProtoID
	dst   mesh.NodeID
	m     interface{}
}

// peerLink is the outbound half of one peering: a queue drained by a
// dedicated writer goroutine that owns the connection and its lifecycle.
type peerLink struct {
	id   mesh.NodeID
	addr string

	mu        sync.Mutex
	cond      *sync.Cond
	q         []outFrame
	closed    bool
	downUntil time.Time
}

// New builds a Transport. Call Start to begin accepting inbound
// connections; outbound writers start lazily on first send.
func New(exec Exec, cfg Config) *Transport {
	t := &Transport{
		cfg:      cfg.withDefaults(),
		exec:     exec,
		handlers: make(map[xport.ProtoID]xport.Handler),
		peers:    make(map[mesh.NodeID]*peerLink),
	}
	for id, addr := range t.cfg.Peers {
		t.AddPeer(id, addr)
	}
	return t
}

// AddPeer installs (or replaces the address of) a peer after
// construction — daemons learn each other's ephemeral ports only once
// every listener is up. Replacing an existing peer's address takes effect
// on its next (re)dial.
func (t *Transport) AddPeer(id mesh.NodeID, addr string) {
	if id == t.cfg.Self {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	if p, ok := t.peers[id]; ok {
		p.mu.Lock()
		p.addr = addr
		p.mu.Unlock()
		return
	}
	p := &peerLink{id: id, addr: addr}
	p.cond = sync.NewCond(&p.mu)
	t.peers[id] = p
	t.wg.Add(1)
	go t.writer(p)
}

func (t *Transport) peer(id mesh.NodeID) *peerLink {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.peers[id]
}

// Name implements xport.Transport.
func (t *Transport) Name() string { return "netx" }

// Register implements xport.Transport. netx speaks for one node, so n
// must be Self.
func (t *Transport) Register(n mesh.NodeID, proto xport.ProtoID, h xport.Handler) {
	if n != t.cfg.Self {
		panic(fmt.Sprintf("netx: Register for node %d on node %d's transport", n, t.cfg.Self))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.handlers[proto]; dup {
		panic(fmt.Sprintf("netx: duplicate handler for (%d, %v)", n, proto))
	}
	t.handlers[proto] = h
}

func (t *Transport) handler(proto xport.ProtoID) xport.Handler {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.handlers[proto]
}

// Send implements xport.Transport. Local destinations deliver through the
// exec without touching a codec; remote destinations are encoded here, on
// the caller's goroutine, and queued to the peer's writer. Every failure
// mode — unknown peer, dead peer, remote bounce — resolves to the
// standard Nack on the sender's own handler, so the protocol's forwarding
// fallback chain works against killed processes exactly as it does
// against crashed simulated nodes.
func (t *Transport) Send(src, dst mesh.NodeID, proto xport.ProtoID, payloadBytes int, m interface{}) {
	if src != t.cfg.Self {
		panic(fmt.Sprintf("netx: Send from node %d on node %d's transport", src, t.cfg.Self))
	}
	if dst == t.cfg.Self {
		h := t.handler(proto)
		if h == nil {
			// Sending to yourself on an unregistered channel: bounce, and
			// with no handler to bounce to either, that is the contract's
			// panic case.
			panic(fmt.Sprintf("netx: message to unregistered (%d, %v) and sender has no handler", dst, proto))
		}
		t.outstanding.Add(1)
		t.exec.Inject(func() {
			t.outstanding.Add(-1)
			h(src, m)
		})
		return
	}

	p := t.peer(dst)
	if p == nil {
		t.nackLocal(dst, proto, m)
		return
	}

	codec := xport.LookupWireCodec(proto.Name())
	if codec == nil {
		panic(fmt.Sprintf("netx: no wire codec registered for channel %q", proto.Name()))
	}
	encoded, err := codec.AppendMsg(nil, m)
	if err != nil {
		panic(fmt.Sprintf("netx: encoding %T for channel %q: %v", m, proto.Name(), err))
	}
	body := appendMsgBody(nil, frameMsg, src, dst, proto.Name(), payloadBytes, encoded)

	t.outstanding.Add(1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		t.outstanding.Add(-1)
		t.nackLocal(dst, proto, m)
		return
	}
	p.q = append(p.q, outFrame{body: body, proto: proto, dst: dst, m: m})
	p.cond.Signal()
	p.mu.Unlock()
}

// nackLocal bounces m back to the sender's own handler, per the Transport
// contract. Panics only if the sender has no handler to tell.
func (t *Transport) nackLocal(dst mesh.NodeID, proto xport.ProtoID, m interface{}) {
	h := t.handler(proto)
	if h == nil {
		panic(fmt.Sprintf("netx: message to unreachable (%d, %v) and sender has no handler", dst, proto))
	}
	t.st.localNacks.Add(1)
	t.outstanding.Add(1)
	t.exec.Inject(func() {
		t.outstanding.Add(-1)
		h(dst, xport.Nack{Dst: dst, Proto: proto, Msg: m})
	})
}

// writer drains one peer's queue onto its connection, dialing lazily and
// bouncing everything queued whenever the peer proves unreachable.
func (t *Transport) writer(p *peerLink) {
	defer t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	var wbuf []byte
	for {
		p.mu.Lock()
		for len(p.q) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			// Bounce whatever is still queued so no message silently
			// vanishes at shutdown.
			batch := p.q
			p.q = nil
			p.mu.Unlock()
			t.failBatch(batch)
			return
		}
		batch := p.q
		p.q = nil
		down := time.Now().Before(p.downUntil)
		addr := p.addr
		p.mu.Unlock()

		if down {
			t.failBatch(batch)
			continue
		}
		if conn == nil {
			t.st.dials.Add(1)
			c, err := t.cfg.Dial(addr)
			if err != nil {
				t.st.dialFailures.Add(1)
				t.markDown(p)
				t.failBatch(batch)
				continue
			}
			hello := appendHello(nil, t.cfg.Self)
			if _, err := c.Write(hello); err != nil {
				c.Close()
				t.markDown(p)
				t.failBatch(batch)
				continue
			}
			conn = c
			// Bounces for our messages come back on the connection they
			// went out on; a dedicated reader turns them into local Nacks.
			// It dies with the connection.
			t.wg.Add(1)
			go t.readBounces(c)
		}
		for i, f := range batch {
			wbuf = appendFrame(wbuf[:0], f.body)
			if _, err := conn.Write(wbuf); err != nil {
				conn.Close()
				conn = nil
				t.markDown(p)
				t.failBatch(batch[i:])
				break
			}
			t.st.framesSent.Add(1)
			t.st.bytesSent.Add(uint64(len(wbuf)))
			t.outstanding.Add(-1)
		}
	}
}

func (t *Transport) markDown(p *peerLink) {
	p.mu.Lock()
	p.downUntil = time.Now().Add(t.cfg.RedialCooldown)
	p.mu.Unlock()
}

// failBatch turns queued frames into local Nacks (peer unreachable).
func (t *Transport) failBatch(batch []outFrame) {
	for _, f := range batch {
		t.outstanding.Add(-1)
		t.nackLocal(f.dst, f.proto, f.m)
	}
}

// Start begins accepting inbound connections on cfg.Listen. It is a
// no-op for send-only configurations (empty Listen).
func (t *Transport) Start() error {
	if t.cfg.Listen == "" {
		return nil
	}
	ln, err := net.Listen("tcp", t.cfg.Listen)
	if err != nil {
		return err
	}
	t.ln = ln
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				t.ServeConn(c)
			}()
		}
	}()
	return nil
}

// Addr returns the inbound listen address (useful with ":0"), or nil when
// not listening.
func (t *Transport) Addr() net.Addr {
	if t.ln == nil {
		return nil
	}
	return t.ln.Addr()
}

// ServeConn runs the inbound half of one connection to completion: hello,
// then a stream of msg/bounce frames. Exported so tests can wire meshes
// out of net.Pipe instead of sockets. Closes c before returning.
func (t *Transport) ServeConn(c net.Conn) {
	defer c.Close()
	t.inbound.Store(c, struct{}{})
	defer t.inbound.Delete(c)

	if _, err := readHello(c, t.cfg.MaxFrame); err != nil {
		return
	}
	var bounceBuf []byte
	for {
		body, err := readFrame(c, t.cfg.MaxFrame)
		if err != nil {
			return // EOF or broken conn: peer's problem to retry
		}
		t.st.framesRecv.Add(1)
		t.st.bytesRecv.Add(uint64(4 + len(body)))
		if len(body) == 0 {
			continue
		}
		switch body[0] {
		case frameMsg:
			wm, err := parseMsgBody(body)
			if err != nil {
				t.st.decodeErrors.Add(1)
				return // framing is broken; nothing downstream is trustworthy
			}
			if !t.deliver(wm) {
				// Undeliverable here: echo the frame back so the sender's
				// transport raises the standard Nack. TCP is full duplex;
				// this reader goroutine is the connection's only writer.
				t.st.bouncesSent.Add(1)
				wm.kind = frameBounce
				body[0] = frameBounce
				bounceBuf = appendFrame(bounceBuf[:0], body)
				if _, err := c.Write(bounceBuf); err != nil {
					return
				}
			}
		case frameBounce:
			t.st.bouncesRecv.Add(1)
			wm, err := parseMsgBody(body)
			if err != nil {
				t.st.decodeErrors.Add(1)
				return
			}
			t.bounceToSender(wm)
		default:
			t.st.decodeErrors.Add(1)
			return
		}
	}
}

// deliver decodes an inbound message and hands it to the registered
// handler via the exec. Returns false when this process cannot accept it
// (wrong destination, no handler, no codec) — the caller bounces.
func (t *Transport) deliver(wm wireMsg) bool {
	if wm.dst != t.cfg.Self {
		return false
	}
	proto := xport.RegisterProto(wm.protoName) // idempotent name->ID mapping
	h := t.handler(proto)
	if h == nil {
		return false
	}
	codec := xport.LookupWireCodec(wm.protoName)
	if codec == nil {
		return false
	}
	m, err := codec.DecodeMsg(wm.encoded)
	if err != nil {
		t.st.decodeErrors.Add(1)
		return false
	}
	src := wm.src
	t.outstanding.Add(1)
	t.exec.Inject(func() {
		t.outstanding.Add(-1)
		h(src, m)
	})
	return true
}

// readBounces drains the inbound half of an *outbound* connection, where
// the only legitimate traffic is bounce frames for messages this process
// sent. It exits when the connection dies.
func (t *Transport) readBounces(c net.Conn) {
	defer t.wg.Done()
	for {
		body, err := readFrame(c, t.cfg.MaxFrame)
		if err != nil {
			return
		}
		if len(body) == 0 || body[0] != frameBounce {
			continue
		}
		wm, err := parseMsgBody(body)
		if err != nil {
			t.st.decodeErrors.Add(1)
			return
		}
		t.st.bouncesRecv.Add(1)
		t.bounceToSender(wm)
	}
}

// bounceToSender turns a bounce frame for one of our own messages back
// into the standard local Nack.
func (t *Transport) bounceToSender(wm wireMsg) {
	if wm.src != t.cfg.Self {
		return // not ours; drop
	}
	proto := xport.RegisterProto(wm.protoName)
	codec := xport.LookupWireCodec(wm.protoName)
	if codec == nil {
		return
	}
	m, err := codec.DecodeMsg(wm.encoded)
	if err != nil {
		t.st.decodeErrors.Add(1)
		return
	}
	t.nackLocal(wm.dst, proto, m)
}

// Outstanding reports messages accepted by Send whose fate is not yet
// settled: queued to a writer, or injected but not yet executed. Zero
// means the transport itself holds nothing — frames already on the wire
// are invisible to both endpoints, which is why drain detection polls for
// a stability window rather than trusting one zero reading.
func (t *Transport) Outstanding() int { return int(t.outstanding.Load()) }

// Stats returns a snapshot of the traffic counters.
func (t *Transport) Stats() Stats {
	return Stats{
		FramesSent:   t.st.framesSent.Load(),
		FramesRecv:   t.st.framesRecv.Load(),
		BytesSent:    t.st.bytesSent.Load(),
		BytesRecv:    t.st.bytesRecv.Load(),
		BouncesSent:  t.st.bouncesSent.Load(),
		BouncesRecv:  t.st.bouncesRecv.Load(),
		LocalNacks:   t.st.localNacks.Load(),
		Dials:        t.st.dials.Load(),
		DialFailures: t.st.dialFailures.Load(),
		DecodeErrors: t.st.decodeErrors.Load(),
	}
}

// Close shuts the transport down: the listener stops, inbound connections
// close, writer goroutines bounce their queues and exit. Close waits for
// all of them.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	peers := make([]*peerLink, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()

	if t.ln != nil {
		t.ln.Close()
	}
	for _, p := range peers {
		p.mu.Lock()
		p.closed = true
		p.cond.Signal()
		p.mu.Unlock()
	}
	t.inbound.Range(func(k, _ interface{}) bool {
		k.(net.Conn).Close()
		return true
	})
	t.wg.Wait()
}

var _ xport.Transport = (*Transport)(nil)
