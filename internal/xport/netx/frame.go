// Package netx is the real-transport backend: an xport.Transport that
// carries protocol messages between OS processes over TCP sockets (or any
// net.Conn, e.g. net.Pipe in tests) instead of simulated delivery events.
// The protocol stacks — ASVM's state machines, the pager, the forwarding
// fallback chain — run against it unchanged: messages are serialized with
// the codec each protocol registered in the xport wire-codec registry,
// and every transport-level failure (unknown peer, dead peer, remote
// process with no handler) surfaces as the same xport.Nack bounce the
// simulated transports produce, so the fallback logic that survives
// crashed nodes in simulation survives killed processes on a real mesh.
//
// What netx deliberately does NOT provide is the simulator's determinism:
// real sockets deliver in real order. The deterministic twin of every
// experiment stays on the simulated transports; netx is for running the
// same protocol code where the latencies are measured, not modelled.
package netx

import (
	"encoding/binary"
	"fmt"
	"io"

	"asvm/internal/mesh"
)

// wireVersion is the frame-format generation. The hello exchange rejects
// mismatched peers instead of misparsing them; bump it on any change to
// the frame layout below or to a registered message codec's golden frames.
const wireVersion = 1

// Frame kinds. Every frame on a connection is a u32 little-endian length
// prefix followed by a body starting with one of these bytes.
const (
	frameHello  = 1 // u16 version | u32 sender node
	frameMsg    = 2 // routed protocol message (layout below)
	frameBounce = 3 // a frameMsg echoed back undeliverable: same layout
)

// A msg/bounce body after the kind byte:
//
//	u32 src | u32 dst | u16 proto-name length | proto name bytes |
//	u32 payloadBytes | u32 encoded-message length | encoded message
//
// Proto *names* travel on the wire, never ProtoIDs: IDs are process-local
// interning order, so each process maps the name back through its own
// registry. payloadBytes is the sender's accounted protocol payload,
// carried for byte statistics (netx models no costs).

// defaultMaxFrame bounds a frame body. A page is 8 KB; headers are tens of
// bytes; 1 MiB is generous headroom and a hard stop against a corrupt
// length prefix allocating gigabytes.
const defaultMaxFrame = 1 << 20

// wireMsg is a parsed msg/bounce frame body.
type wireMsg struct {
	kind         byte
	src, dst     mesh.NodeID
	protoName    string
	payloadBytes int
	encoded      []byte
}

// appendFrame wraps body in a length prefix and appends to dst.
func appendFrame(dst, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	return append(dst, body...)
}

// appendHello appends a complete hello frame.
func appendHello(dst []byte, self mesh.NodeID) []byte {
	var body [7]byte
	body[0] = frameHello
	binary.LittleEndian.PutUint16(body[1:3], wireVersion)
	binary.LittleEndian.PutUint32(body[3:7], uint32(int32(self)))
	return appendFrame(dst, body[:])
}

// appendMsgBody appends a msg/bounce frame *body* (no length prefix) to
// dst. The body is built once at Send time and reused verbatim if the
// receiver bounces it.
func appendMsgBody(dst []byte, kind byte, src, dstNode mesh.NodeID, protoName string, payloadBytes int, encoded []byte) []byte {
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(src)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(dstNode)))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(protoName)))
	dst = append(dst, protoName...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadBytes))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(encoded)))
	return append(dst, encoded...)
}

// parseMsgBody parses a msg/bounce frame body (kind byte included).
func parseMsgBody(body []byte) (wireMsg, error) {
	var m wireMsg
	if len(body) < 1+4+4+2 {
		return m, fmt.Errorf("netx: short message frame (%d bytes)", len(body))
	}
	m.kind = body[0]
	m.src = mesh.NodeID(int32(binary.LittleEndian.Uint32(body[1:5])))
	m.dst = mesh.NodeID(int32(binary.LittleEndian.Uint32(body[5:9])))
	nameLen := int(binary.LittleEndian.Uint16(body[9:11]))
	rest := body[11:]
	if len(rest) < nameLen+8 {
		return m, fmt.Errorf("netx: truncated message frame")
	}
	m.protoName = string(rest[:nameLen])
	rest = rest[nameLen:]
	m.payloadBytes = int(binary.LittleEndian.Uint32(rest[0:4]))
	encLen := int(binary.LittleEndian.Uint32(rest[4:8]))
	rest = rest[8:]
	if len(rest) != encLen {
		return m, fmt.Errorf("netx: message frame length mismatch (have %d, header says %d)", len(rest), encLen)
	}
	m.encoded = rest
	return m, nil
}

// readFrame reads one length-prefixed frame body from r. maxFrame guards
// the allocation implied by the length prefix.
func readFrame(r io.Reader, maxFrame int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if int(n) > maxFrame {
		return nil, fmt.Errorf("netx: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// readHello reads and validates the hello frame that must open every
// connection, returning the peer's claimed node ID.
func readHello(r io.Reader, maxFrame int) (mesh.NodeID, error) {
	body, err := readFrame(r, maxFrame)
	if err != nil {
		return 0, fmt.Errorf("netx: reading hello: %w", err)
	}
	if len(body) != 7 || body[0] != frameHello {
		return 0, fmt.Errorf("netx: connection did not open with a hello frame")
	}
	if v := binary.LittleEndian.Uint16(body[1:3]); v != wireVersion {
		return 0, fmt.Errorf("netx: peer speaks wire version %d, this build speaks %d", v, wireVersion)
	}
	return mesh.NodeID(int32(binary.LittleEndian.Uint32(body[3:7]))), nil
}
