package netx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/xport"
)

// The tests run netx against its own tiny protocol + codec, so they need
// nothing from the real protocol stacks.

var testProto = xport.RegisterProto("netxtest")

type testMsg struct {
	N uint64
	S string
}

type testCodec struct{}

func (testCodec) AppendMsg(dst []byte, m interface{}) ([]byte, error) {
	v, ok := m.(testMsg)
	if !ok {
		return dst, fmt.Errorf("testCodec: cannot encode %T", m)
	}
	dst = binary.LittleEndian.AppendUint64(dst, v.N)
	return append(dst, v.S...), nil
}

func (testCodec) DecodeMsg(b []byte) (interface{}, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("testCodec: short message")
	}
	return testMsg{N: binary.LittleEndian.Uint64(b[:8]), S: string(b[8:])}, nil
}

func init() { xport.RegisterWireCodec("netxtest", testCodec{}) }

// testExec serializes injected closures on one goroutine, standing in for
// the rt.Loop the daemon uses.
type testExec struct{ ch chan func() }

func newTestExec(t *testing.T) *testExec {
	e := &testExec{ch: make(chan func(), 4096)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for fn := range e.ch {
			fn()
		}
	}()
	t.Cleanup(func() { close(e.ch); <-done })
	return e
}

func (e *testExec) Inject(fn func()) { e.ch <- fn }

type recvd struct {
	src mesh.NodeID
	m   interface{}
}

// pipePair wires two transports together with net.Pipe in both
// directions: each side's Dial hands the opposite end to the other
// transport's ServeConn, exactly as a TCP accept loop would.
func pipePair(t *testing.T) (*Transport, *Transport, chan recvd, chan recvd) {
	t.Helper()
	var ta, tb *Transport
	dialInto := func(target **Transport) func(string) (net.Conn, error) {
		return func(string) (net.Conn, error) {
			c1, c2 := net.Pipe()
			tp := *target
			go tp.ServeConn(c2)
			return c1, nil
		}
	}
	ta = New(newTestExec(t), Config{Self: 0, Peers: map[mesh.NodeID]string{1: "pipe:b"}, Dial: dialInto(&tb)})
	tb = New(newTestExec(t), Config{Self: 1, Peers: map[mesh.NodeID]string{0: "pipe:a"}, Dial: dialInto(&ta)})
	t.Cleanup(func() { ta.Close(); tb.Close() })

	chA := make(chan recvd, 64)
	chB := make(chan recvd, 64)
	ta.Register(0, testProto, func(src mesh.NodeID, m interface{}) { chA <- recvd{src, m} })
	tb.Register(1, testProto, func(src mesh.NodeID, m interface{}) { chB <- recvd{src, m} })
	return ta, tb, chA, chB
}

func waitRecv(t *testing.T, ch chan recvd) recvd {
	t.Helper()
	select {
	case r := <-ch:
		return r
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery within 5s")
		return recvd{}
	}
}

// A message sent to a registered remote handler arrives decoded, with the
// true source.
func TestPipeDelivery(t *testing.T) {
	ta, tb, chA, chB := pipePair(t)

	ta.Send(0, 1, testProto, 128, testMsg{N: 42, S: "hello"})
	r := waitRecv(t, chB)
	if r.src != 0 {
		t.Errorf("delivered src = %d, want 0", r.src)
	}
	if got, want := r.m, (testMsg{N: 42, S: "hello"}); got != want {
		t.Errorf("delivered %+v, want %+v", got, want)
	}

	// And the reverse direction, over the other pipe.
	back := testMsg{N: 7, S: "ack"}
	tb.Send(1, 0, testProto, 0, back)
	r = waitRecv(t, chA)
	if r.src != 1 || r.m != back {
		t.Errorf("reverse delivery got src=%d m=%+v", r.src, r.m)
	}
}

// A message to a node whose process has no handler for the channel comes
// back as a Nack on the sender's own handler, with src = the unreachable
// node — the exact contract the forwarding fallback chain relies on.
func TestRemoteBounceBecomesNack(t *testing.T) {
	var ta, tb *Transport
	dialInto := func(target **Transport) func(string) (net.Conn, error) {
		return func(string) (net.Conn, error) {
			c1, c2 := net.Pipe()
			tp := *target
			go tp.ServeConn(c2)
			return c1, nil
		}
	}
	ta = New(newTestExec(t), Config{Self: 0, Peers: map[mesh.NodeID]string{1: "pipe:b"}, Dial: dialInto(&tb)})
	tb = New(newTestExec(t), Config{Self: 1, Peers: map[mesh.NodeID]string{0: "pipe:a"}, Dial: dialInto(&ta)})
	t.Cleanup(func() { ta.Close(); tb.Close() })

	chA := make(chan recvd, 16)
	ta.Register(0, testProto, func(src mesh.NodeID, m interface{}) { chA <- recvd{src, m} })
	// tb registers nothing: node 1 cannot accept testProto traffic.

	sent := testMsg{N: 9, S: "undeliverable"}
	ta.Send(0, 1, testProto, 0, sent)
	r := waitRecv(t, chA)
	if r.src != 1 {
		t.Errorf("Nack delivered with src=%d, want the unreachable node 1", r.src)
	}
	nack, ok := r.m.(xport.Nack)
	if !ok {
		t.Fatalf("expected xport.Nack, got %T", r.m)
	}
	if nack.Dst != 1 || nack.Proto != testProto {
		t.Errorf("Nack{Dst:%d Proto:%v}, want {1 %v}", nack.Dst, nack.Proto, testProto)
	}
	if nack.Msg != sent {
		t.Errorf("Nack carries %+v, want the original %+v", nack.Msg, sent)
	}
	if s := ta.Stats(); s.BouncesRecv == 0 {
		t.Error("sender stats show no received bounce")
	}
	if s := tb.Stats(); s.BouncesSent == 0 {
		t.Error("receiver stats show no sent bounce")
	}
}

// A peer that cannot be dialed at all produces the same Nack — this is
// the dead-process case the fallback chain must survive.
func TestDeadPeerBecomesNack(t *testing.T) {
	ta := New(newTestExec(t), Config{
		Self:  0,
		Peers: map[mesh.NodeID]string{1: "dead"},
		Dial: func(string) (net.Conn, error) {
			return nil, errors.New("connection refused")
		},
		RedialCooldown: time.Millisecond,
	})
	t.Cleanup(ta.Close)
	chA := make(chan recvd, 16)
	ta.Register(0, testProto, func(src mesh.NodeID, m interface{}) { chA <- recvd{src, m} })

	ta.Send(0, 1, testProto, 0, testMsg{N: 1})
	r := waitRecv(t, chA)
	nack, ok := r.m.(xport.Nack)
	if !ok || nack.Dst != 1 {
		t.Fatalf("expected Nack{Dst:1}, got %T %+v", r.m, r.m)
	}
	if s := ta.Stats(); s.DialFailures == 0 || s.LocalNacks == 0 {
		t.Errorf("stats %+v missing the dial failure / local nack", s)
	}
}

// A destination not in the peer map bounces immediately.
func TestUnknownPeerBecomesNack(t *testing.T) {
	ta := New(newTestExec(t), Config{Self: 0, Peers: nil})
	t.Cleanup(ta.Close)
	chA := make(chan recvd, 16)
	ta.Register(0, testProto, func(src mesh.NodeID, m interface{}) { chA <- recvd{src, m} })

	ta.Send(0, 5, testProto, 0, testMsg{N: 2})
	r := waitRecv(t, chA)
	if nack, ok := r.m.(xport.Nack); !ok || nack.Dst != 5 {
		t.Fatalf("expected Nack{Dst:5}, got %T %+v", r.m, r.m)
	}
}

// Self-sends bypass the codec entirely and preserve message identity.
func TestSelfDelivery(t *testing.T) {
	ta := New(newTestExec(t), Config{Self: 3})
	t.Cleanup(ta.Close)
	chA := make(chan recvd, 16)
	ta.Register(3, testProto, func(src mesh.NodeID, m interface{}) { chA <- recvd{src, m} })

	sent := &testMsg{N: 5} // pointer: identity must survive, not just value
	ta.Send(3, 3, testProto, 0, sent)
	r := waitRecv(t, chA)
	if r.src != 3 {
		t.Errorf("self delivery src=%d, want 3", r.src)
	}
	if r.m != interface{}(sent) {
		t.Errorf("self delivery did not preserve message identity")
	}
}

// Full TCP: two transports on localhost ephemeral ports, traffic both
// ways, stats moving, clean close. This is the socket path asvmd runs.
func TestTCPLoopback(t *testing.T) {
	mkNode := func(self mesh.NodeID) (*Transport, chan recvd) {
		tr := New(newTestExec(t), Config{Self: self, Listen: "127.0.0.1:0"})
		if err := tr.Start(); err != nil {
			t.Fatalf("node %d listen: %v", self, err)
		}
		t.Cleanup(tr.Close)
		ch := make(chan recvd, 64)
		tr.Register(self, testProto, func(src mesh.NodeID, m interface{}) { ch <- recvd{src, m} })
		return tr, ch
	}
	ta, chA := mkNode(0)
	tb, chB := mkNode(1)
	// Peer addresses are only known after both listeners are up.
	ta.AddPeer(1, tb.Addr().String())
	tb.AddPeer(0, ta.Addr().String())

	const n = 50
	for i := 0; i < n; i++ {
		ta.Send(0, 1, testProto, 64, testMsg{N: uint64(i), S: "ping"})
		tb.Send(1, 0, testProto, 64, testMsg{N: uint64(i), S: "pong"})
	}
	seenB := make(map[uint64]bool)
	seenA := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		rb := waitRecv(t, chB)
		seenB[rb.m.(testMsg).N] = true
		ra := waitRecv(t, chA)
		seenA[ra.m.(testMsg).N] = true
	}
	if len(seenA) != n || len(seenB) != n {
		t.Fatalf("delivered %d/%d and %d/%d distinct messages", len(seenA), n, len(seenB), n)
	}

	deadline := time.Now().Add(5 * time.Second)
	for ta.Outstanding() != 0 || tb.Outstanding() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("outstanding never drained: a=%d b=%d", ta.Outstanding(), tb.Outstanding())
		}
		time.Sleep(time.Millisecond)
	}
	if s := ta.Stats(); s.FramesSent < n || s.BytesSent == 0 {
		t.Errorf("sender stats did not move: %+v", s)
	}
}

// Closing a transport bounces anything still queued instead of dropping
// it silently.
func TestCloseBouncesQueued(t *testing.T) {
	dialStarted := make(chan struct{})
	release := make(chan struct{})
	ta := New(newTestExec(t), Config{
		Self:  0,
		Peers: map[mesh.NodeID]string{1: "slow"},
		Dial: func(string) (net.Conn, error) {
			close(dialStarted)
			<-release
			return nil, errors.New("gone")
		},
	})
	chA := make(chan recvd, 16)
	ta.Register(0, testProto, func(src mesh.NodeID, m interface{}) { chA <- recvd{src, m} })

	ta.Send(0, 1, testProto, 0, testMsg{N: 1})
	<-dialStarted
	ta.Send(0, 1, testProto, 0, testMsg{N: 2}) // queued behind the stuck dial
	close(release)
	ta.Close()
	// Both messages must come back as Nacks (dial failed; then shutdown).
	for i := 0; i < 2; i++ {
		r := waitRecv(t, chA)
		if _, ok := r.m.(xport.Nack); !ok {
			t.Fatalf("message %d: expected Nack, got %T", i, r.m)
		}
	}
}
