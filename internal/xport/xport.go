// Package xport defines the transport interface shared by the two wire
// protocols of the system: NORMA-IPC (the Mach distribution's heavyweight
// typed-message IPC, used by XMM) and the SVM Transport Service (ASVM's
// dedicated lightweight protocol). Protocol layers address each other by
// (node, proto-channel); each message is an arbitrary Go value plus an
// accounted payload size. Channels are registered names interned to dense
// integer ProtoIDs (see proto.go), so transports dispatch through per-node
// slices with no string hashing on the message path.
package xport

import "asvm/internal/mesh"

// Handler receives a message delivered to a (node, proto) registration.
type Handler func(src mesh.NodeID, m interface{})

// Transport carries protocol messages between nodes, modelling software
// and wire costs. Implementations must deliver messages in a deterministic
// order for fixed inputs.
type Transport interface {
	// Register installs the handler for messages to proto on node n.
	// Registering twice for the same (n, proto) panics.
	Register(n mesh.NodeID, proto ProtoID, h Handler)

	// Send delivers m to (dst, proto). payloadBytes is the protocol
	// payload (page contents etc.); implementations add their own framing
	// overhead. Sending to an unregistered destination bounces: the
	// transport routes a Nack carrying the original message back to the
	// sender's own handler for the same proto, so protocol layers can fall
	// back to another route. Only when the sender itself has no handler —
	// nobody to tell — does the transport panic.
	Send(src, dst mesh.NodeID, proto ProtoID, payloadBytes int, m interface{})

	// Name identifies the transport ("norma" or "sts").
	Name() string
}

// Nack is delivered to the sender's own (src, proto) handler when a message
// addressed to an unregistered (node, proto) destination bounces. The
// handler's src argument is the unreachable node.
type Nack struct {
	// Dst is the destination that had no handler.
	Dst mesh.NodeID
	// Proto is the channel the message was sent on.
	Proto ProtoID
	// Msg is the original message.
	Msg interface{}
}
