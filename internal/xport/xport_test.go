// Package xport_test exercises both transport implementations against the
// shared contract.
package xport_test

import (
	"testing"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/norma"
	"asvm/internal/sim"
	"asvm/internal/sts"
	"asvm/internal/xport"
)

type env struct {
	eng   *sim.Engine
	nodes []*node.Node
	net   *mesh.Network
}

func newEnv(n int) *env {
	e := sim.NewEngine()
	net := mesh.New(e, n, mesh.DefaultConfig(n))
	nodes := make([]*node.Node, n)
	for i := range nodes {
		nodes[i] = node.New(e, mesh.NodeID(i))
	}
	return &env{eng: e, nodes: nodes, net: net}
}

var (
	protoP     = xport.RegisterProto("p")
	protoRT    = xport.RegisterProto("rt")
	protoStorm = xport.RegisterProto("storm")
)

func transports(ev *env) map[string]xport.Transport {
	return map[string]xport.Transport{
		"norma": norma.New(ev.eng, ev.net, ev.nodes, norma.DefaultCosts()),
		"sts":   sts.New(ev.eng, ev.net, ev.nodes, sts.DefaultCosts()),
	}
}

func TestDelivery(t *testing.T) {
	ev := newEnv(4)
	for name, tr := range transports(ev) {
		name, tr := name, tr
		var got interface{}
		var from mesh.NodeID
		tr.Register(2, protoP, func(src mesh.NodeID, m interface{}) {
			got, from = m, src
		})
		tr.Send(0, 2, protoP, 0, "hello-"+name)
		ev.eng.Run()
		if got != "hello-"+name || from != 0 {
			t.Fatalf("%s: got %v from %v", name, got, from)
		}
	}
}

func TestUnregisteredPanics(t *testing.T) {
	ev := newEnv(2)
	for name, tr := range transports(ev) {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: send to unregistered proto did not panic", name)
				}
			}()
			tr.Send(0, 1, xport.RegisterProto("nope"), 0, nil)
		}()
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	ev := newEnv(2)
	for name, tr := range transports(ev) {
		tr.Register(0, protoP, func(mesh.NodeID, interface{}) {})
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: duplicate register did not panic", name)
				}
			}()
			tr.Register(0, protoP, func(mesh.NodeID, interface{}) {})
		}()
	}
}

func TestOrderingBetweenSamePair(t *testing.T) {
	ev := newEnv(2)
	for name, tr := range transports(ev) {
		var order []int
		pn := xport.RegisterProto("p" + name)
		tr.Register(1, pn, func(src mesh.NodeID, m interface{}) {
			order = append(order, m.(int))
		})
		for i := 0; i < 5; i++ {
			tr.Send(0, 1, pn, 0, i)
		}
		ev.eng.Run()
		for i, v := range order {
			if v != i {
				t.Fatalf("%s: out of order: %v", name, order)
			}
		}
	}
}

func TestNormaSlowerThanSTS(t *testing.T) {
	// One round trip with a page payload over each transport: NORMA must
	// be several times slower — the motivation for the STS (paper §3.1).
	measure := func(mk func(ev *env) xport.Transport) time.Duration {
		ev := newEnv(2)
		tr := mk(ev)
		var done sim.Time
		tr.Register(1, protoRT, func(src mesh.NodeID, m interface{}) {
			tr.Send(1, 0, protoRT, 8192, "reply")
		})
		tr.Register(0, protoRT, func(src mesh.NodeID, m interface{}) {
			done = ev.eng.Now()
		})
		tr.Send(0, 1, protoRT, 0, "req")
		ev.eng.Run()
		return done
	}
	nt := measure(func(ev *env) xport.Transport {
		return norma.New(ev.eng, ev.net, ev.nodes, norma.DefaultCosts())
	})
	st := measure(func(ev *env) xport.Transport {
		return sts.New(ev.eng, ev.net, ev.nodes, sts.DefaultCosts())
	})
	if nt < 3*st {
		t.Fatalf("NORMA (%v) not sufficiently slower than STS (%v)", nt, st)
	}
}

func TestMsgProcContention(t *testing.T) {
	// Many nodes sending to one: the receiver's message processor
	// serializes, so the last delivery lags far behind the first.
	ev := newEnv(16)
	tr := sts.New(ev.eng, ev.net, ev.nodes, sts.DefaultCosts())
	var times []sim.Time
	tr.Register(0, protoP, func(src mesh.NodeID, m interface{}) {
		times = append(times, ev.eng.Now())
	})
	for i := 1; i < 16; i++ {
		tr.Send(mesh.NodeID(i), 0, protoP, 0, i)
	}
	ev.eng.Run()
	if len(times) != 15 {
		t.Fatalf("delivered %d", len(times))
	}
	first, last := times[0], times[len(times)-1]
	if last-first < 13*sts.DefaultCosts().RecvCPU {
		t.Fatalf("no receiver serialization: first %v last %v", first, last)
	}
}

func TestStatsCount(t *testing.T) {
	ev := newEnv(2)
	st := sts.New(ev.eng, ev.net, ev.nodes, sts.DefaultCosts())
	st.Register(1, protoP, func(mesh.NodeID, interface{}) {})
	st.Send(0, 1, protoP, 0, nil)
	st.Send(0, 1, protoP, sts.PageBytes, nil)
	ev.eng.Run()
	if st.Msgs != 2 || st.PageMsgs != 1 {
		t.Fatalf("msgs=%d pageMsgs=%d", st.Msgs, st.PageMsgs)
	}
	if st.Bytes != uint64(2*sts.HeaderBytes+sts.PageBytes) {
		t.Fatalf("bytes=%d", st.Bytes)
	}
}

func TestTransportNames(t *testing.T) {
	ev := newEnv(2)
	trs := transports(ev)
	if trs["norma"].Name() != "norma" || trs["sts"].Name() != "sts" {
		t.Fatal("bad names")
	}
}

func TestNormaManyToOneRetransmits(t *testing.T) {
	// NORMA's broken flow control (paper §1): a storm of senders overruns
	// the receiver's buffers and messages pay retransmission delays. The
	// STS never does — page contents only move on behalf of a request from
	// their receiver, so buffers are preallocated.
	ev := newEnv(64)
	costs := norma.DefaultCosts()
	costs.RecvBufferMsgs = 8
	nt := norma.New(ev.eng, ev.net, ev.nodes, costs)
	got := 0
	nt.Register(0, protoStorm, func(src mesh.NodeID, m interface{}) { got++ })
	for round := 0; round < 4; round++ {
		for i := 1; i < 64; i++ {
			nt.Send(mesh.NodeID(i), 0, protoStorm, 1024, round)
		}
	}
	ev.eng.Run()
	if got != 4*63 {
		t.Fatalf("delivered %d, want %d (retransmits must not lose messages)", got, 4*63)
	}
	if nt.Retransmits == 0 {
		t.Fatal("no retransmissions under a many-to-one storm")
	}
}
