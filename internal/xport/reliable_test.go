package xport

import (
	"testing"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/sim"
)

func relTestCfg() ReliableConfig {
	return ReliableConfig{RTO: time.Millisecond, MaxRTO: 4 * time.Millisecond, MaxRetries: 8}
}

// TestReliableRetransmitsLostFrames drops the first transmission of every
// data frame; every message must still arrive exactly once.
func TestReliableRetransmitsLostFrames(t *testing.T) {
	e := sim.NewEngine()
	fk := newFake(e)
	tried := map[uint64]bool{}
	fk.drop = func(src, dst mesh.NodeID, proto ProtoID, m interface{}) bool {
		f, ok := m.(relFrame)
		if !ok || tried[f.Seq] {
			return false
		}
		tried[f.Seq] = true
		return true
	}
	r := NewReliable(e, fk, relTestCfg())
	var got []int
	r.Register(1, protoP, func(src mesh.NodeID, m interface{}) { got = append(got, m.(int)) })
	const n = 5
	for i := 0; i < n; i++ {
		r.Send(0, 1, protoP, 0, i)
	}
	e.Run()
	if len(got) != n {
		t.Fatalf("delivered %d messages, want %d: %v", len(got), n, got)
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("message %d delivered twice: %v", v, got)
		}
		seen[v] = true
	}
	if r.Retransmits != n {
		t.Fatalf("retransmits=%d, want %d", r.Retransmits, n)
	}
}

// TestReliableSuppressesDuplicates drops the first ack of every frame: the
// sender retransmits, the receiver must suppress the duplicate and re-ack.
func TestReliableSuppressesDuplicates(t *testing.T) {
	e := sim.NewEngine()
	fk := newFake(e)
	acked := map[uint64]bool{}
	fk.drop = func(src, dst mesh.NodeID, proto ProtoID, m interface{}) bool {
		a, ok := m.(relAck)
		if !ok || acked[a.Seq] {
			return false
		}
		acked[a.Seq] = true
		return true
	}
	r := NewReliable(e, fk, relTestCfg())
	got := 0
	r.Register(1, protoP, func(mesh.NodeID, interface{}) { got++ })
	const n = 4
	for i := 0; i < n; i++ {
		r.Send(0, 1, protoP, 0, i)
	}
	e.Run()
	if got != n {
		t.Fatalf("handler ran %d times, want %d", got, n)
	}
	if r.DupsSuppressed != n {
		t.Fatalf("dups suppressed=%d, want %d", r.DupsSuppressed, n)
	}
	if r.AcksSent != 2*n {
		t.Fatalf("acks sent=%d, want %d (one lost + one re-ack per frame)", r.AcksSent, 2*n)
	}
}

// TestReliableGivesUpLoudly: a link that never delivers must panic after
// MaxRetries rather than retry forever.
func TestReliableGivesUpLoudly(t *testing.T) {
	e := sim.NewEngine()
	fk := newFake(e)
	fk.drop = func(src, dst mesh.NodeID, proto ProtoID, m interface{}) bool {
		_, isFrame := m.(relFrame)
		return isFrame // black-hole all data frames, let acks through
	}
	r := NewReliable(e, fk, relTestCfg())
	r.Register(1, protoP, func(mesh.NodeID, interface{}) {})
	r.Send(0, 1, protoP, 0, "doomed")
	defer func() {
		if recover() == nil {
			t.Fatal("dead link did not panic after MaxRetries")
		}
		if want := uint64(relTestCfg().MaxRetries); r.Retransmits != want {
			t.Fatalf("retransmits=%d, want %d", r.Retransmits, want)
		}
	}()
	e.Run()
}

// TestReliableNackCancelsAndPassesUp: a bounce off an unregistered node must
// cancel the retransmit timer and surface the unwrapped Nack to the sender.
func TestReliableNackCancelsAndPassesUp(t *testing.T) {
	e := sim.NewEngine()
	fk := newFake(e)
	r := NewReliable(e, fk, relTestCfg())
	var nk *Nack
	r.Register(0, protoP, func(src mesh.NodeID, m interface{}) {
		n := m.(Nack)
		nk = &n
	})
	r.Send(0, 9, protoP, 0, "stray") // node 9 never registered
	e.Run()                          // would panic via MaxRetries if the pending entry survived
	if nk == nil {
		t.Fatal("no Nack surfaced")
	}
	if nk.Dst != 9 || nk.Msg != "stray" {
		t.Fatalf("bad Nack: %+v (Msg must be unwrapped)", *nk)
	}
	if r.Nacks != 1 || r.Retransmits != 0 {
		t.Fatalf("nacks=%d retransmits=%d, want 1/0", r.Nacks, r.Retransmits)
	}
}

// TestReliableBackoffDoubles: retransmit intervals follow RTO<<k capped at
// MaxRTO.
func TestReliableBackoffDoubles(t *testing.T) {
	e := sim.NewEngine()
	fk := newFake(e)
	var attempts []sim.Time
	fk.drop = func(src, dst mesh.NodeID, proto ProtoID, m interface{}) bool {
		if _, ok := m.(relFrame); ok {
			attempts = append(attempts, e.Now())
			return len(attempts) < 5 // deliver the 5th transmission
		}
		return false
	}
	r := NewReliable(e, fk, relTestCfg())
	got := 0
	r.Register(1, protoP, func(mesh.NodeID, interface{}) { got++ })
	r.Send(0, 1, protoP, 0, "x")
	e.Run()
	if got != 1 {
		t.Fatalf("delivered %d times, want 1", got)
	}
	// Gaps between transmissions: 1ms, 2ms, 4ms, then capped at 4ms.
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond}
	if len(attempts) != 5 {
		t.Fatalf("saw %d transmissions, want 5", len(attempts))
	}
	for i, w := range want {
		if gap := attempts[i+1] - attempts[i]; gap != w {
			t.Fatalf("gap %d = %v, want %v (attempts at %v)", i, gap, w, attempts)
		}
	}
}

// TestReliableSeparateLinkSequences: per-link sequence spaces must not
// interfere — traffic on one proto must not mark another's frames as dups.
func TestReliableSeparateLinkSequences(t *testing.T) {
	e := sim.NewEngine()
	fk := newFake(e)
	r := NewReliable(e, fk, relTestCfg())
	protoA, protoB := RegisterProto("a"), RegisterProto("b")
	got := map[ProtoID]int{}
	for _, proto := range []ProtoID{protoA, protoB} {
		proto := proto
		r.Register(1, proto, func(mesh.NodeID, interface{}) { got[proto]++ })
		r.Register(2, proto, func(mesh.NodeID, interface{}) { got[proto]++ })
	}
	for i := 0; i < 3; i++ {
		r.Send(0, 1, protoA, 0, i)
		r.Send(0, 1, protoB, 0, i)
		r.Send(0, 2, protoA, 0, i)
	}
	e.Run()
	if got[protoA] != 6 || got[protoB] != 3 || r.DupsSuppressed != 0 {
		t.Fatalf("cross-link interference: got=%v dups=%d", got, r.DupsSuppressed)
	}
}

// TestRetryWaitGoldenSchedule pins the production backoff schedule as a
// golden sequence: 4 ms doubling to a 64 ms cap, 30 retransmissions, and
// the exhaustion horizon they add up to. Retuning any of the three knobs
// is a deliberate act, reviewed as a diff of this list — the crash
// scenarios' virtual-time budgets (how long a survivor grinds before the
// organic peer-down verdict) are derived from it.
func TestRetryWaitGoldenSchedule(t *testing.T) {
	cfg := DefaultReliableConfig()
	if cfg.RTO != 4*time.Millisecond || cfg.MaxRTO != 64*time.Millisecond || cfg.MaxRetries != 30 {
		t.Fatalf("default config changed: %+v", cfg)
	}
	var golden []time.Duration
	for _, ms := range []int{4, 8, 16, 32} {
		golden = append(golden, time.Duration(ms)*time.Millisecond)
	}
	for k := 4; k <= cfg.MaxRetries; k++ {
		golden = append(golden, 64*time.Millisecond)
	}
	var total time.Duration
	for k := 0; k <= cfg.MaxRetries; k++ {
		w := cfg.RetryWait(k)
		if w != golden[k] {
			t.Errorf("RetryWait(%d) = %v, want %v", k, w, golden[k])
		}
		total += w
	}
	// The horizon an unreachable peer costs before the organic verdict:
	// 4+8+16+32 + 27×64 = 1788 ms. Also pin that the left shift saturates
	// safely far past any real attempt count.
	if want := 1788 * time.Millisecond; total != want {
		t.Errorf("exhaustion horizon = %v, want %v", total, want)
	}
	if w := cfg.RetryWait(200); w != cfg.MaxRTO {
		t.Errorf("RetryWait(200) = %v, want cap %v", w, cfg.MaxRTO)
	}
}

// TestReliableGhostFrameFromDeadIncarnation: a frame a node left in flight
// when it crashed must not be delivered, acked, or — the regression this
// pins — allowed to re-seed the receiver's per-link dedup state, where it
// would mark the restarted sender's fresh sequence numbers as duplicates.
func TestReliableGhostFrameFromDeadIncarnation(t *testing.T) {
	e := sim.NewEngine()
	fk := newFake(e)
	r := NewReliable(e, fk, relTestCfg())
	var got []string
	r.Register(1, protoP, func(_ mesh.NodeID, m interface{}) { got = append(got, m.(string)) })
	r.Send(0, 1, protoP, 0, "ghost") // in flight when the sender dies
	r.NodeCrashed(0)
	e.Run() // the ghost arrives stamped with incarnation 0 of a node now at 1
	if len(got) != 0 {
		t.Fatalf("ghost delivered: %v", got)
	}
	if r.StaleDrops != 1 || r.AcksSent != 0 {
		t.Fatalf("stale=%d acks=%d, want 1/0 (drop without ack)", r.StaleDrops, r.AcksSent)
	}
	r.PeerRestarted(0)
	r.Send(0, 1, protoP, 0, "fresh") // seq 1 of the new incarnation
	e.Run()
	if len(got) != 1 || got[0] != "fresh" {
		t.Fatalf("restarted sender suppressed: got=%v dups=%d", got, r.DupsSuppressed)
	}
}

// TestReliableCrashBounceSkipsDeliveredFrames: when the failure detector
// bounces a dead peer's inbound queue, a frame the peer demonstrably
// delivered (only its ack died) must complete silently, not return as a
// Nack — replaying a delivered ownership grant at its sender would mint a
// second owner. The undelivered frame on the same link must still bounce.
func TestReliableCrashBounceSkipsDeliveredFrames(t *testing.T) {
	e := sim.NewEngine()
	fk := newFake(e)
	dropAcks := false
	fk.drop = func(src, dst mesh.NodeID, proto ProtoID, m interface{}) bool {
		_, isAck := m.(relAck)
		return dropAcks && isAck
	}
	r := NewReliable(e, fk, relTestCfg())
	delivered := 0
	r.Register(1, protoP, func(mesh.NodeID, interface{}) { delivered++ })
	var nacked []interface{}
	r.Register(0, protoP, func(_ mesh.NodeID, m interface{}) {
		if nk, ok := m.(Nack); ok {
			nacked = append(nacked, nk.Msg)
		}
	})
	dropAcks = true
	r.Send(0, 1, protoP, 0, "delivered-unacked")
	e.RunUntil(sim.Time(time.Millisecond / 2)) // first transmission lands; ack is dropped
	if delivered != 1 {
		t.Fatalf("delivered=%d, want 1", delivered)
	}
	fk.drop = func(mesh.NodeID, mesh.NodeID, ProtoID, interface{}) bool { return true }
	r.Send(0, 1, protoP, 0, "never-arrived") // eaten by the wire
	fk.drop = nil
	r.NodeCrashed(1)
	r.MarkPeerDown(0, 1)
	e.Run()
	if len(nacked) != 1 || nacked[0] != "never-arrived" {
		t.Fatalf("bounced %v, want exactly the undelivered frame", nacked)
	}
	if r.DeliveredFlushed != 1 {
		t.Fatalf("DeliveredFlushed=%d, want 1", r.DeliveredFlushed)
	}
	if delivered != 1 {
		t.Fatalf("delivered=%d after crash, want still 1", delivered)
	}
}
