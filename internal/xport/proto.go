package xport

import (
	"fmt"
	"sync"
)

// This file implements the protocol-channel registry. Protocol layers
// register a channel name once, at setup, and receive a small dense
// integer ProtoID; every steady-state operation (dispatch, sequence/ack
// bookkeeping, fault accounting) keys on the integer. The name survives
// only for reports and panics — nothing on the message path compares or
// hashes a string.
//
// The registry is global and append-only: IDs are process-wide interned
// names, not per-simulation state, so independent experiment cells running
// in parallel share one table. The mutex makes concurrent registration
// (parallel cells creating pager reply channels) safe; steady-state code
// never takes it because protocols capture their ProtoID at setup time.
// ID values may vary with registration order across runs, but they are
// opaque keys — only Name() ever reaches output.

// ProtoID identifies a registered protocol channel. The zero value is a
// valid channel (the first one registered), so code that needs "no
// channel" must track that separately.
type ProtoID int32

var protoRegistry struct {
	sync.Mutex
	byName map[string]ProtoID
	names  []string
}

// RegisterProto interns a channel name, returning its ProtoID. Calling it
// again with the same name returns the same ID: registration is idempotent
// so package-level protocols and dynamically-created channels (pager reply
// channels) use the same entry points.
func RegisterProto(name string) ProtoID {
	r := &protoRegistry
	r.Lock()
	defer r.Unlock()
	if r.byName == nil {
		r.byName = make(map[string]ProtoID)
	}
	if id, ok := r.byName[name]; ok {
		return id
	}
	id := ProtoID(len(r.names))
	r.names = append(r.names, name)
	r.byName[name] = id
	return id
}

// Name returns the channel name the ID was registered under, for reports
// and diagnostics only.
func (p ProtoID) Name() string {
	r := &protoRegistry
	r.Lock()
	defer r.Unlock()
	if p < 0 || int(p) >= len(r.names) {
		return fmt.Sprintf("proto#%d", int(p))
	}
	return r.names[p]
}

// String implements fmt.Stringer so %v/%s on a ProtoID prints the name.
func (p ProtoID) String() string { return p.Name() }

// NumProtos returns how many channels have been registered, an upper bound
// transports can use to size dispatch tables.
func NumProtos() int {
	protoRegistry.Lock()
	defer protoRegistry.Unlock()
	return len(protoRegistry.names)
}
