package xport

import (
	"fmt"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/sim"
)

// This file implements the protocol reliability layer: per-link sequence
// numbers, positive acknowledgements, timeout-driven retransmission with
// exponential backoff, and duplicate suppression on receive. Layered over a
// lossy transport (FaultyTransport) it restores exactly-once delivery, which
// is the property every ASVM request engine assumes: seq-matched protocol
// acks (invalidation, ownership transfer, page offer, pager) panic on
// duplicates, so suppression here must be airtight.
//
// Wire model: the sequence number rides in the fixed message header (STS
// messages are a 32-byte untyped block with room to spare), so frames add no
// payload bytes. Acks are header-only messages; they are never themselves
// acknowledged — a lost ack causes a retransmit, which the receiver
// suppresses as a duplicate and re-acks.

// ReliableConfig tunes the retry/ack layer.
type ReliableConfig struct {
	// RTO is the first retransmit timeout; attempt k waits min(RTO<<k,
	// MaxRTO).
	RTO    time.Duration
	MaxRTO time.Duration
	// MaxRetries bounds retransmissions of one message; exceeding it means
	// the link is effectively dead and the run panics loudly (deterministic
	// chaos plans with loss rates well below 1 never get close).
	MaxRetries int
}

// DefaultReliableConfig returns timeouts sized for the simulated Paragon:
// an STS round trip is a few hundred microseconds, so 4 ms catches a loss
// quickly without retransmitting under ordinary queueing delay.
func DefaultReliableConfig() ReliableConfig {
	return ReliableConfig{
		RTO:        4 * time.Millisecond,
		MaxRTO:     64 * time.Millisecond,
		MaxRetries: 30,
	}
}

// withDefaults fills zero fields.
func (c ReliableConfig) withDefaults() ReliableConfig {
	d := DefaultReliableConfig()
	if c.RTO <= 0 {
		c.RTO = d.RTO
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = d.MaxRTO
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = d.MaxRetries
	}
	return c
}

// relFrame wraps an application message with its per-link sequence number.
type relFrame struct {
	Seq uint64
	Msg interface{}
}

// relAck acknowledges one received frame. Acks travel on a dedicated
// per-node channel (relAckProto), not the frame's own proto: many protocols
// are asymmetric (a pager client sends on the server's channel but listens
// only on its private reply channel), so the frame proto is not guaranteed
// to have a handler at the sender. Proto identifies the link being acked.
type relAck struct {
	Proto ProtoID
	Seq   uint64
}

// relAckProto is the reliability layer's own ack channel, registered for a
// node the first time it sends.
var relAckProto = RegisterProto("rel/ack")

// relLink identifies a directed (src, dst, proto) channel — three small
// integers, so the sequence/ack state maps hash and compare without
// touching a string.
type relLink struct {
	src, dst mesh.NodeID
	proto    ProtoID
}

// relPending is one unacknowledged message at the sender.
type relPending struct {
	payloadBytes int
	m            interface{}
	attempts     int
}

// relSendState is the sender side of one link.
type relSendState struct {
	nextSeq uint64
	pending map[uint64]*relPending
}

// relRecvState is the receiver side of one link: contig is the highest
// sequence number below which everything has been delivered; ahead holds
// out-of-order arrivals above it (bounded by the sender's in-flight window).
type relRecvState struct {
	contig uint64
	ahead  map[uint64]bool
}

// Reliable implements Transport over an unreliable inner transport.
type Reliable struct {
	inner Transport
	eng   *sim.Engine
	cfg   ReliableConfig

	send   map[relLink]*relSendState
	recv   map[relLink]*relRecvState
	ackReg map[mesh.NodeID]bool

	// Stats.
	Retransmits    uint64
	DupsSuppressed uint64
	AcksSent       uint64
	Nacks          uint64
}

// NewReliable layers reliability over inner.
func NewReliable(e *sim.Engine, inner Transport, cfg ReliableConfig) *Reliable {
	return &Reliable{
		inner: inner, eng: e, cfg: cfg.withDefaults(),
		send:   make(map[relLink]*relSendState),
		recv:   make(map[relLink]*relRecvState),
		ackReg: make(map[mesh.NodeID]bool),
	}
}

// Inner returns the wrapped transport.
func (r *Reliable) Inner() Transport { return r.inner }

// Name implements Transport; the layer is name-transparent.
func (r *Reliable) Name() string { return r.inner.Name() }

// Register implements Transport: the inner registration decodes frames,
// acks them, suppresses duplicates, and hands fresh messages to h.
func (r *Reliable) Register(n mesh.NodeID, proto ProtoID, h Handler) {
	r.inner.Register(n, proto, func(src mesh.NodeID, m interface{}) {
		switch f := m.(type) {
		case relFrame:
			// Always ack — a duplicate means our previous ack was lost.
			// The sender registered its ack channel before sending.
			r.AcksSent++
			r.inner.Send(n, src, relAckProto, 0, relAck{Proto: proto, Seq: f.Seq})
			if r.markSeen(relLink{src, n, proto}, f.Seq) {
				r.DupsSuppressed++
				return
			}
			h(src, f.Msg)
		case Nack:
			// The inner transport bounced one of our frames: the
			// destination has no handler. Cancel the retransmit and pass
			// the unwrapped Nack up so the protocol can re-route.
			fr, ok := f.Msg.(relFrame)
			if !ok {
				// A bounced ack has no pending state and nobody to inform.
				return
			}
			if ss := r.send[relLink{n, f.Dst, proto}]; ss != nil {
				delete(ss.pending, fr.Seq)
			}
			r.Nacks++
			h(src, Nack{Dst: f.Dst, Proto: f.Proto, Msg: fr.Msg})
		default:
			// Not one of ours (a transport delivering unwrapped traffic);
			// pass through.
			h(src, m)
		}
	})
}

// Send implements Transport: frame, remember, transmit, arm the timer.
func (r *Reliable) Send(src, dst mesh.NodeID, proto ProtoID, payloadBytes int, m interface{}) {
	if !r.ackReg[src] {
		r.ackReg[src] = true
		r.inner.Register(src, relAckProto, func(from mesh.NodeID, m interface{}) {
			ack, ok := m.(relAck)
			if !ok {
				panic(fmt.Sprintf("xport: non-ack %T on %s", m, relAckProto))
			}
			if ss := r.send[relLink{src, from, ack.Proto}]; ss != nil {
				delete(ss.pending, ack.Seq)
			}
		})
	}
	link := relLink{src, dst, proto}
	ss := r.send[link]
	if ss == nil {
		ss = &relSendState{pending: make(map[uint64]*relPending)}
		r.send[link] = ss
	}
	ss.nextSeq++
	seq := ss.nextSeq
	pm := &relPending{payloadBytes: payloadBytes, m: m}
	ss.pending[seq] = pm
	r.inner.Send(src, dst, proto, payloadBytes, relFrame{Seq: seq, Msg: m})
	r.armRetry(link, ss, seq, pm)
}

// armRetry schedules the retransmit check for one in-flight message. The
// engine has no event cancellation: an acked message's timer fires as a
// no-op (the pending entry is gone).
func (r *Reliable) armRetry(link relLink, ss *relSendState, seq uint64, pm *relPending) {
	wait := r.cfg.RTO << uint(pm.attempts)
	if wait > r.cfg.MaxRTO || wait <= 0 {
		wait = r.cfg.MaxRTO
	}
	r.eng.Schedule(wait, func() {
		if ss.pending[seq] != pm {
			return // acked (or nacked) in the meantime
		}
		pm.attempts++
		if pm.attempts > r.cfg.MaxRetries {
			panic(fmt.Sprintf("xport: %T %v->%v/%s unacked after %d retransmits",
				pm.m, link.src, link.dst, link.proto, r.cfg.MaxRetries))
		}
		r.Retransmits++
		r.inner.Send(link.src, link.dst, link.proto, pm.payloadBytes, relFrame{Seq: seq, Msg: pm.m})
		r.armRetry(link, ss, seq, pm)
	})
}

// markSeen records a received sequence number and reports whether it was
// already delivered. Memory is bounded: contiguously-delivered history
// collapses into the low-water mark.
func (r *Reliable) markSeen(link relLink, seq uint64) (dup bool) {
	rs := r.recv[link]
	if rs == nil {
		rs = &relRecvState{ahead: make(map[uint64]bool)}
		r.recv[link] = rs
	}
	if seq <= rs.contig || rs.ahead[seq] {
		return true
	}
	if seq == rs.contig+1 {
		rs.contig++
		for rs.ahead[rs.contig+1] {
			rs.contig++
			delete(rs.ahead, rs.contig)
		}
	} else {
		rs.ahead[seq] = true
	}
	return false
}

var _ Transport = (*Reliable)(nil)
